# Convenience targets for the dplearn reproduction.

GO ?= go

.PHONY: all build test vet lint lint-json certify race cover bench bench-json bench-serve serve-test experiments quick-experiments fmt fmt-check fuzz-smoke chaos chaos-restart

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the privacy-correctness linter (cmd/dplearn-lint) over the module.
# Exits non-zero when any error-severity finding survives suppression.
lint:
	$(GO) run ./cmd/dplearn-lint ./...

# Machine-readable lint report: newline-delimited JSON, one finding per
# line, including suppressed findings with their stated reasons. Always
# writes dplint.json; the exit status still reflects unsuppressed errors.
lint-json:
	$(GO) run ./cmd/dplearn-lint -json ./... > dplint.json; \
	status=$$?; wc -l < dplint.json | xargs -I{} echo "dplint.json: {} finding(s) recorded"; exit $$status

# Regenerate the NDJSON budget certificates: one symbolic worst-case
# (ε, δ) bound per exported entry point, with charge-site witnesses.
# The file is golden-pinned — CI and TestBudgetCertificatesMatchCommitted
# fail when it drifts from the code, so bound changes land in the same
# commit that caused them.
certify:
	@mkdir -p results
	$(GO) run ./cmd/dplearn-lint -certify ./... > results/budget_certificates.ndjson
	@wc -l < results/budget_certificates.ndjson | xargs -I{} echo "results/budget_certificates.ndjson: {} certificate(s)"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over the log-domain primitives and the W3C
# traceparent parser (one -fuzz target per invocation, as `go test`
# requires). Override FUZZTIME for longer campaigns, e.g.
# `make fuzz-smoke FUZZTIME=2m`.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/mathx -run '^$$' -fuzz '^FuzzLogAddExp$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mathx -run '^$$' -fuzz '^FuzzLogSumExp$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mathx -run '^$$' -fuzz '^FuzzLogNormalize$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs -run '^$$' -fuzz '^FuzzTraceparent$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWALRepair$$' -fuzztime $(FUZZTIME)

# Chaos battery: deterministic fault injection (worker panics, budget
# denials, NaN risks, checkpoint-write failures) plus the robustness
# test surfaces it leans on, all under the race detector. The fault
# schedule is a pure function of (seed, class, key), so a failure here
# reproduces exactly with the same seed.
chaos:
	$(GO) test -race -run 'TestChaos' ./internal/faults
	$(GO) test -race ./internal/faults ./internal/checkpoint ./internal/parallel ./internal/mechanism
	$(GO) test -race -run 'TestSweep|TestGoldenDeterminismCheckpointResume|TestBudgetedLedgerMatchesAccountant' ./internal/experiments .

# Serving battery: the multi-tenant release service's integration,
# race, chaos, and drain suites — all under the race detector.
serve-test:
	$(GO) test -race ./internal/serve ./internal/serve/client

# Crash-restart battery: seeded hard-aborts at every WAL phase boundary
# plus kill/restart cycles over one surviving WAL directory, under the
# race detector. Proves spent ε is monotone across reboots and never
# exceeds budget, every request either commits durably or surfaces a
# 5xx, and idempotent retries of crashed requests charge exactly once.
# CHAOS_ARTIFACTS names a directory to receive the final cycle's WAL
# segment and recovery report (CI uploads it).
chaos-restart:
	$(GO) test -race -run 'TestWALCrashChaosEveryBoundary|TestWALKillRestartCycles|TestWALRecoveryRoundTrip' ./internal/serve
	$(GO) test -race ./internal/wal

# Serving benchmark: boot dplearn-serve on a free port with tracing and
# the ε-attributed access log on, drive the deterministic loadgen mix
# across two tenants (loadgen injects a derived traceparent per request),
# SIGINT the server (a graceful drain that cross-checks every tenant's
# ledger), verify the trace/ledger/access-log join with dplearn-trace
# -check, and leave BENCH_serve.json (QPS, p50/p95/p99 latency with
# exemplar trace ids, admission-reject rate) plus serve_trace.ndjson and
# serve_access.ndjson. Override SERVE_REQUESTS / SERVE_SEED for longer
# campaigns.
SERVE_REQUESTS ?= 1000
SERVE_SEED ?= 1
bench-serve:
	$(GO) build -o bin/dplearn-serve ./cmd/dplearn-serve
	$(GO) build -o bin/dplearn-loadgen ./cmd/dplearn-loadgen
	$(GO) build -o bin/dplearn-trace ./cmd/dplearn-trace
	@rm -f serve.addr; \
	./bin/dplearn-serve -addr localhost:0 -addr-file serve.addr \
	  -tenants "alpha=6,beta=2.5" -degrade refuse -timeout 300s \
	  -trace serve_trace.ndjson -access-log serve_access.ndjson & \
	serve_pid=$$!; \
	for i in $$(seq 1 100); do [ -s serve.addr ] && break; sleep 0.1; done; \
	[ -s serve.addr ] || { echo "bench-serve: server never published its address"; kill $$serve_pid; exit 1; }; \
	./bin/dplearn-loadgen -addr "$$(cat serve.addr)" -tenants alpha,beta \
	  -requests $(SERVE_REQUESTS) -seed $(SERVE_SEED) -concurrency 8 -out BENCH_serve.json; \
	load_status=$$?; \
	kill -INT $$serve_pid; wait $$serve_pid; serve_status=$$?; \
	rm -f serve.addr; \
	./bin/dplearn-trace -check serve_trace.ndjson serve_access.ndjson; check_status=$$?; \
	exit $$((load_status + serve_status + check_status))

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark artifacts: runs the parallel-engine and
# mechanism benchmark suites and writes BENCH_parallel.json and
# BENCH_mechanism.json (CI uploads them). Override BENCHTIME for real
# measurements, e.g. `make bench-json BENCHTIME=2s`.
BENCHTIME ?= 1x
bench-json:
	$(GO) run ./cmd/dplearn-bench -benchtime $(BENCHTIME)

# Regenerate every reproduction table at full size (EXPERIMENTS.md data).
experiments:
	$(GO) run ./cmd/dplearn-experiments -seed 42 -parallel 4

quick-experiments:
	$(GO) run ./cmd/dplearn-experiments -seed 42 -quick -parallel 4

fmt:
	gofmt -w .

# Fail (listing the offenders) if any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
