# Convenience targets for the dplearn reproduction.

GO ?= go

.PHONY: all build test vet race cover bench experiments quick-experiments fmt

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every reproduction table at full size (EXPERIMENTS.md data).
experiments:
	$(GO) run ./cmd/dplearn-experiments -seed 42 -parallel 4

quick-experiments:
	$(GO) run ./cmd/dplearn-experiments -seed 42 -quick -parallel 4

fmt:
	gofmt -w .
