package dplearn

// This file holds the benchmark harness of deliverable (d): one
// testing.B benchmark per experiment table (E1–E10 from DESIGN.md's
// per-experiment index), each regenerating its table in Quick mode and
// reporting the experiment's key scalar as a custom metric. Run with
//
//	go test -bench=. -benchmem
//
// The full-size tables are produced by cmd/dplearn-experiments.

import (
	"strconv"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/learn"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// benchOpts returns deterministic quick options; the benchmark index
// varies the seed so -count>1 runs see fresh randomness.
func benchOpts(i int) experiments.Options {
	return experiments.Options{Seed: int64(1000 + i), Quick: true}
}

// lastFloatCell parses the table's last numeric cell in the given column
// of the final row, reported as a ballpark metric.
func lastFloatCell(b *testing.B, t *experiments.Table, col int) float64 {
	b.Helper()
	if len(t.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	row := t.Rows[len(t.Rows)-1]
	if col >= len(row) {
		b.Fatalf("column %d out of range", col)
	}
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		b.Fatalf("cell %q not numeric: %v", row[col], err)
	}
	return v
}

func runExperiment(b *testing.B, id string, metricCol int, metricName string) {
	b.Helper()
	var metric float64
	for i := 0; i < b.N; i++ {
		t, err := experiments.Run(id, benchOpts(i))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		metric = lastFloatCell(b, t, metricCol)
	}
	b.ReportMetric(metric, metricName)
}

// BenchmarkE1LaplacePrivacy regenerates E1 (Theorem 2.1 audit).
// Metric: empirical ε̂ at the largest ε row.
func BenchmarkE1LaplacePrivacy(b *testing.B) { runExperiment(b, "E1", 2, "emp_eps") }

// BenchmarkE2ExpMechPrivacy regenerates E2 (Theorem 2.2 exact audit).
// Metric: audited ε at the largest mechanism ε.
func BenchmarkE2ExpMechPrivacy(b *testing.B) { runExperiment(b, "E2", 2, "audit_eps") }

// BenchmarkE3CatoniBound regenerates E3 (Theorem 3.1 validity).
// Metric: bound-risk gap at the largest n.
func BenchmarkE3CatoniBound(b *testing.B) { runExperiment(b, "E3", 4, "bound_gap") }

// BenchmarkE4GibbsOptimality regenerates E4 (Lemma 3.2).
// Metric: the Gibbs objective value at the largest λ.
func BenchmarkE4GibbsOptimality(b *testing.B) { runExperiment(b, "E4", 1, "gibbs_obj") }

// BenchmarkE5GibbsPrivacy regenerates E5 (Theorem 4.1 exact audit).
// Metric: audited ε at the largest λ.
func BenchmarkE5GibbsPrivacy(b *testing.B) { runExperiment(b, "E5", 3, "audit_eps") }

// BenchmarkE6MIRiskTradeoff regenerates E6 (Theorem 4.2 / Figure 1).
// Metric: I(Ẑ;θ) in nats at the largest λ.
func BenchmarkE6MIRiskTradeoff(b *testing.B) { runExperiment(b, "E6", 2, "mi_nats") }

// BenchmarkE7BaselineComparison regenerates E7 (Chaudhuri et al.
// baselines). Metric: Gibbs test error at the largest (n, ε).
func BenchmarkE7BaselineComparison(b *testing.B) { runExperiment(b, "E7", 3, "gibbs_err") }

// BenchmarkE8LeakageBounds regenerates E8 (leakage caps).
// Metric: measured MI in bits at the largest ε.
func BenchmarkE8LeakageBounds(b *testing.B) { runExperiment(b, "E8", 1, "mi_bits") }

// BenchmarkE9PrivateRegression regenerates E9 (future work: regression).
// Metric: Gibbs true risk at the largest (n, ε).
func BenchmarkE9PrivateRegression(b *testing.B) { runExperiment(b, "E9", 2, "true_risk") }

// BenchmarkE10DensityEstimation regenerates E10 (future work: density
// estimation). Metric: Laplace-histogram L1 error at the largest (n, ε).
func BenchmarkE10DensityEstimation(b *testing.B) { runExperiment(b, "E10", 2, "l1_err") }

// BenchmarkA1PriorAblation regenerates ablation A1 (prior choice).
// Metric: Catoni bound under the narrowest prior.
func BenchmarkA1PriorAblation(b *testing.B) { runExperiment(b, "A1", 3, "bound") }

// BenchmarkA2LambdaSelection regenerates ablation A2 (λ selection).
// Metric: the selected bound at the largest n.
func BenchmarkA2LambdaSelection(b *testing.B) { runExperiment(b, "A2", 4, "sel_bound") }

// BenchmarkA3MCMCvsExact regenerates ablation A3 (exact vs MCMC).
// Metric: MALA's absolute error against the exact posterior mean.
func BenchmarkA3MCMCvsExact(b *testing.B) { runExperiment(b, "A3", 2, "mala_err") }

// BenchmarkA4BoundComparison regenerates ablation A4 (bound family).
// Metric: the Seeger bound at the largest n.
func BenchmarkA4BoundComparison(b *testing.B) { runExperiment(b, "A4", 4, "seeger") }

// BenchmarkA5LeakageMeasures regenerates ablation A5 (leakage measures).
// Metric: min-entropy leakage in bits at the largest ε.
func BenchmarkA5LeakageMeasures(b *testing.B) { runExperiment(b, "A5", 2, "minent_bits") }

// BenchmarkA6PermuteAndFlip regenerates ablation A6 (EM vs PF selection).
// Metric: the PF/EM quality-gap ratio at the largest ε.
func BenchmarkA6PermuteAndFlip(b *testing.B) { runExperiment(b, "A6", 3, "pf_over_em") }

// BenchmarkA7MWEM regenerates ablation A7 (MWEM synthetic data).
// Metric: MWEM max query error at the largest (n, ε).
func BenchmarkA7MWEM(b *testing.B) { runExperiment(b, "A7", 2, "max_err") }

// BenchmarkA8NoisyGD regenerates ablation A8 (iterative private GD).
// Metric: NoisyGD test error at the largest budget.
func BenchmarkA8NoisyGD(b *testing.B) { runExperiment(b, "A8", 3, "gd_err") }

// BenchmarkE11ExpectationBound regenerates E11 (Equation 1 in-expectation
// bound). Metric: the Eq.1 bound at the largest n.
func BenchmarkE11ExpectationBound(b *testing.B) { runExperiment(b, "E11", 3, "eq1_bound") }

// BenchmarkE12Reconstruction regenerates E12 (attack vs Fano limits).
// Metric: the Bayes attack accuracy at the largest ε.
func BenchmarkE12Reconstruction(b *testing.B) { runExperiment(b, "E12", 2, "attack_acc") }

// BenchmarkA9LocalVsCentral regenerates A9 (local vs central DP).
// Metric: the central Laplace L1 error at the largest ε.
func BenchmarkA9LocalVsCentral(b *testing.B) { runExperiment(b, "A9", 1, "central_l1") }

// BenchmarkA10PrivatePCA regenerates A10 (DP-PCA).
// Metric: the private/exact captured-variance ratio at the largest (n, ε).
func BenchmarkA10PrivatePCA(b *testing.B) { runExperiment(b, "A10", 4, "var_ratio") }

// BenchmarkA11SparseVector regenerates A11 (SVT precision/recall).
// Metric: recall at the largest ε.
func BenchmarkA11SparseVector(b *testing.B) { runExperiment(b, "A11", 2, "recall") }

// ---------------------------------------------------------------------
// Serial vs parallel fan-out benchmarks (internal/parallel). Compare the
// *Serial (Workers=1) and *Parallel (Workers=0 = GOMAXPROCS) variants of
// each pair; recorded runs live in results/bench_parallel.txt. Outputs
// are bit-identical across the variants — only wall-clock differs.
// ---------------------------------------------------------------------

// benchRiskSetup builds a 10,000-predictor grid (100² coefficient
// lattice) and a 1,000-example regression sample: 10M loss evaluations
// per risk vector.
func benchRiskSetup() (learn.Loss, [][]float64, *dataset.Dataset) {
	thetas := learn.NewGrid(-2, 2, 2, 100).Thetas()
	model := dataset.LinearModel{Weights: []float64{1.2, -0.6}, Noise: 0.3}
	d := model.Generate(1000, rng.New(7))
	return learn.NewClippedLoss(learn.SquaredLoss{}, 25), thetas, d
}

func benchRiskVector10k(b *testing.B, workers int) {
	loss, thetas, d := benchRiskSetup()
	opts := parallel.Options{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = learn.RiskVectorOpts(loss, thetas, d, opts)
	}
}

// BenchmarkRiskVector10kSerial evaluates the 10k-θ risk grid with one
// worker.
func BenchmarkRiskVector10kSerial(b *testing.B) { benchRiskVector10k(b, 1) }

// BenchmarkRiskVector10kParallel evaluates the same grid with all CPUs.
func BenchmarkRiskVector10kParallel(b *testing.B) { benchRiskVector10k(b, 0) }

func benchLearner(b *testing.B, workers int) *Learner {
	b.Helper()
	loss, thetas, _ := benchRiskSetup()
	l, err := NewLearner(Config{
		Loss:     loss,
		Thetas:   thetas,
		Epsilon:  1,
		Parallel: parallel.Options{Workers: workers},
	})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkCertify10kCold certifies the 10k-θ learner with an empty risk
// cache every iteration (a fresh Learner per iteration).
func BenchmarkCertify10kCold(b *testing.B) {
	_, _, d := benchRiskSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := benchLearner(b, 0)
		b.StartTimer()
		if _, err := l.Certify(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCertify10kWarm certifies repeatedly on one Learner, so every
// iteration after the first hits the fingerprint-keyed risk cache.
func BenchmarkCertify10kWarm(b *testing.B) {
	_, _, d := benchRiskSetup()
	l := benchLearner(b, 0)
	if _, err := l.Certify(d); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Certify(d); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSweepE9(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{Seed: int64(1000 + i), Quick: true, Workers: workers}
		if _, err := experiments.Run("E9", opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepE9Serial runs the E9 regression sweep with its (n, ε)
// cells on one worker.
func BenchmarkSweepE9Serial(b *testing.B) { benchSweepE9(b, 1) }

// BenchmarkSweepE9Parallel fans the same sweep's cells across all CPUs.
func BenchmarkSweepE9Parallel(b *testing.B) { benchSweepE9(b, 0) }
