// Command dplearn-audit empirically audits the privacy of the library's
// mechanisms on worst-case neighbor pairs and prints empirical vs claimed
// ε. It is the command-line face of internal/audit.
//
// Usage:
//
//	dplearn-audit [-mechanism laplace|expmech|gibbs] [-eps 1.0] [-n 100] [-samples 200000] [-seed 1]
//
// Observability (all opt-in): -trace out.ndjson records an audit span
// per run and prints a summary on exit, -metrics-addr serves /metrics
// and /debug/vars, and -pprof adds /debug/pprof on the same endpoint —
// useful because the Monte-Carlo sampler is the costliest loop in the
// repository.
// -timeout bounds the run; ^C cancels the Monte-Carlo sampler (between
// sample batches) or the exact auditor (between neighbor pairs) and
// exits non-zero after flushing the trace. A canceled audit reports no
// partial ε̂ — a truncated sample would silently understate the loss.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/obsglue"
	"repro/internal/parallel"
	"repro/internal/rng"
)

func main() {
	mech := flag.String("mechanism", "laplace", "mechanism to audit: laplace, expmech, or gibbs")
	eps := flag.Float64("eps", 1.0, "claimed privacy budget")
	n := flag.Int("n", 100, "dataset size")
	samples := flag.Int("samples", 200_000, "Monte-Carlo samples (laplace only)")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 0, "abort the audit after this duration (0 = no limit)")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obsglue.Start(obsFlags)
	if err != nil {
		fail(err)
	}
	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()
	if rt.Addr != "" {
		fmt.Fprintf(os.Stderr, "dplearn-audit: metrics on http://%s/metrics\n", rt.Addr)
	}
	sp := rt.Obs.Span("audit")
	sp.SetAttr("mechanism", *mech)
	sp.SetAttr("n", *n)

	g := rng.New(*seed)
	switch *mech {
	case "laplace":
		//dplint:ignore floateq binary dataset records are exact 0/1 codes
		q := mechanism.CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
		m, err := mechanism.NewLaplace(q, *eps)
		if err != nil {
			fail(err)
		}
		pair := audit.WorstCaseBinaryPair(*n)
		res, err := audit.SampleContinuousCtx(ctx, func(d *dataset.Dataset, h *rng.RNG) float64 {
			return m.Release(d, h)[0]
		}, pair, *samples, 60, *samples/200, g)
		if err != nil {
			fail(err)
		}
		fmt.Printf("laplace counting query: claimed eps=%.4g, empirical eps=%.4g (%d events, %d samples/side)\n",
			*eps, res.EmpiricalEpsilon, res.EventsCompared, res.Samples)
		fmt.Printf("analytic worst-case realized loss: %.4g\n", audit.LaplaceAnalyticEpsilon(0, 1, m.Scale()))
	case "expmech":
		grid := mathx.Linspace(0, 1, 41)
		// Calibrate the mechanism so its 2εΔq guarantee equals the claim.
		m, _, err := mechanism.PrivateMedian(0, grid, *eps/2)
		if err != nil {
			fail(err)
		}
		gen := func(h *rng.RNG) *dataset.Dataset {
			d := &dataset.Dataset{}
			for i := 0; i < *n; i++ {
				d.Append(dataset.Example{X: []float64{h.Float64()}})
			}
			return d
		}
		pairs := audit.RandomNeighborPairs(gen, 500, g)
		got, err := audit.ExactAuditCtx(ctx, m, pairs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("exponential mechanism (private median): claimed eps=%.4g, exact audited eps=%.4g over %d pairs\n",
			m.Guarantee().Epsilon, got, len(pairs))
	case "gibbs":
		gridPts := learn.NewGrid(-2, 2, 1, 17)
		lambda := gibbs.LambdaForEpsilon(*eps, learn.ZeroOneLoss{}, *n)
		est, err := gibbs.New(learn.ZeroOneLoss{}, gridPts.Thetas(), nil, lambda)
		if err != nil {
			fail(err)
		}
		est.Parallel = parallel.Options{Obs: rt.Obs}
		model := dataset.LogisticModel{Weights: []float64{2}}
		gen := func(h *rng.RNG) *dataset.Dataset { return model.Generate(*n, h) }
		pairs := audit.RandomNeighborPairs(gen, 500, g)
		got, err := audit.ExactAuditCtx(ctx, est, pairs)
		if err != nil {
			fail(err)
		}
		fmt.Printf("gibbs estimator (0-1 loss, lambda=%.4g): claimed eps=%.4g, exact audited eps=%.4g over %d pairs\n",
			lambda, est.Guarantee(*n).Epsilon, got, len(pairs))
	default:
		fail(fmt.Errorf("unknown mechanism %q", *mech))
	}
	sp.End()
	if err := rt.Close(os.Stderr); err != nil {
		fail(err)
	}
}

func fail(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dplearn-audit: interrupted: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "dplearn-audit: %v\n", err)
	}
	os.Exit(1)
}
