// Command dplearn-bench runs the repository's benchmark suites and
// writes machine-readable BENCH_<name>.json artifacts (parsed from the
// standard `go test -bench` text by internal/obs.ParseBench). CI uploads
// the artifacts so the perf trajectory of the deterministic parallel
// engine and the mechanism family is diffable across commits.
//
// Usage:
//
//	dplearn-bench [-out .] [-benchtime 1x] [-suite parallel,mechanism]
//
// Each suite maps to one package and one artifact:
//
//	parallel  → ./internal/parallel  → BENCH_parallel.json
//	mechanism → ./internal/mechanism → BENCH_mechanism.json
//	lint      → ./internal/analysis  → BENCH_lint.json
//
// -timeout bounds the whole run; ^C or the deadline kills the in-flight
// `go test` child, no partial artifact is written for the interrupted
// suite, and the process exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/obs"
	"repro/internal/obsglue"
)

// suites maps -suite names to the package each one benchmarks.
var suites = map[string]string{
	"parallel":  "./internal/parallel",
	"mechanism": "./internal/mechanism",
	"lint":      "./internal/analysis",
}

// suiteOrder fixes the run order (map iteration is randomized).
var suiteOrder = []string{"parallel", "mechanism", "lint"}

func main() {
	outDir := flag.String("out", ".", "directory for the BENCH_<suite>.json artifacts")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration, CI-friendly)")
	suiteList := flag.String("suite", strings.Join(suiteOrder, ","), "comma-separated suites to run")
	goBin := flag.String("go", "go", "go tool to invoke")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()

	for _, name := range strings.Split(*suiteList, ",") {
		name = strings.TrimSpace(name)
		pkg, ok := suites[name]
		if !ok {
			fatal(fmt.Errorf("unknown suite %q (have: %s)", name, strings.Join(suiteOrder, ", ")))
		}
		if err := runSuite(ctx, *goBin, name, pkg, *benchtime, *outDir); err != nil {
			fatal(err)
		}
	}
}

// runSuite runs one package's benchmarks and writes its JSON artifact.
// The child inherits ctx, so cancellation kills it and the suite's
// artifact is never written from a truncated benchmark log.
func runSuite(ctx context.Context, goBin, name, pkg, benchtime, outDir string) error {
	cmd := exec.CommandContext(ctx, goBin, "test", "-run", "^$", "-bench", ".", "-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%s: %w", name, cerr)
		}
		return fmt.Errorf("%s: %w", name, err)
	}
	rep, err := obs.ParseBench(strings.NewReader(string(out)))
	if err != nil {
		return fmt.Errorf("parse %s: %w", name, err)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("%s produced no benchmark lines", name)
	}
	path := filepath.Join(outDir, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteBenchJSON(f); err != nil {
		f.Close() //dplint:ignore errdrop the write error already aborts the artifact
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("dplearn-bench: wrote %s (%d result(s))\n", path, len(rep.Results))
	return nil
}

// fatal prints the error and exits non-zero; a canceled run gets a
// distinct interruption message so scripts can tell ^C from failure.
func fatal(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dplearn-bench: interrupted: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "dplearn-bench: %v\n", err)
	}
	os.Exit(1)
}
