// Command dplearn-bench runs the repository's benchmark suites and
// writes machine-readable BENCH_<name>.json artifacts (parsed from the
// standard `go test -bench` text by internal/obs.ParseBench). CI uploads
// the artifacts so the perf trajectory of the deterministic parallel
// engine and the mechanism family is diffable across commits.
//
// Usage:
//
//	dplearn-bench [-out .] [-benchtime 1x] [-suite parallel,mechanism]
//
// Each suite maps to one package and one artifact:
//
//	parallel  → ./internal/parallel  → BENCH_parallel.json
//	mechanism → ./internal/mechanism → BENCH_mechanism.json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/obs"
)

// suites maps -suite names to the package each one benchmarks.
var suites = map[string]string{
	"parallel":  "./internal/parallel",
	"mechanism": "./internal/mechanism",
}

// suiteOrder fixes the run order (map iteration is randomized).
var suiteOrder = []string{"parallel", "mechanism"}

func main() {
	outDir := flag.String("out", ".", "directory for the BENCH_<suite>.json artifacts")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration, CI-friendly)")
	suiteList := flag.String("suite", strings.Join(suiteOrder, ","), "comma-separated suites to run")
	goBin := flag.String("go", "go", "go tool to invoke")
	flag.Parse()

	for _, name := range strings.Split(*suiteList, ",") {
		name = strings.TrimSpace(name)
		pkg, ok := suites[name]
		if !ok {
			fatal(fmt.Errorf("unknown suite %q (have: %s)", name, strings.Join(suiteOrder, ", ")))
		}
		if err := runSuite(*goBin, name, pkg, *benchtime, *outDir); err != nil {
			fatal(err)
		}
	}
}

// runSuite runs one package's benchmarks and writes its JSON artifact.
func runSuite(goBin, name, pkg, benchtime, outDir string) error {
	cmd := exec.Command(goBin, "test", "-run", "^$", "-bench", ".", "-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("dplearn-bench: %s: %w", name, err)
	}
	rep, err := obs.ParseBench(strings.NewReader(string(out)))
	if err != nil {
		return fmt.Errorf("dplearn-bench: parse %s: %w", name, err)
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("dplearn-bench: %s produced no benchmark lines", name)
	}
	path := filepath.Join(outDir, "BENCH_"+name+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteBenchJSON(f); err != nil {
		f.Close() //dplint:ignore errdrop the write error already aborts the artifact
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("dplearn-bench: wrote %s (%d result(s))\n", path, len(rep.Results))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dplearn-bench: %v\n", err)
	os.Exit(1)
}
