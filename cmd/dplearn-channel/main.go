// Command dplearn-channel builds the paper's Figure-1 information channel
// for a Gibbs mean-estimation learner over binary data and prints the
// channel matrix, its exact mutual information, its capacity, and the DP
// leakage cap, for a sweep of privacy levels.
//
// Usage:
//
//	dplearn-channel [-n 10] [-p 0.5] [-thetas 5] [-eps 0.1,0.5,2] [-matrix]
//
// -timeout bounds the run; ^C cancels the channel construction and the
// Blahut–Arimoto capacity iteration between chunks and exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/infotheory"
	"repro/internal/mathx"
	"repro/internal/obsglue"
	"repro/internal/parallel"
)

// meanLoss is the bounded mean-estimation loss (θ − x)² on binary records.
type meanLoss struct{}

func (meanLoss) Loss(theta []float64, e dataset.Example) float64 {
	d := theta[0] - e.X[0]
	return d * d
}
func (meanLoss) Bound() float64 { return 1 }
func (meanLoss) Name() string   { return "mean-squared(binary)" }

func main() {
	n := flag.Int("n", 10, "number of records per dataset")
	p := flag.Float64("p", 0.5, "Bernoulli parameter of the records")
	points := flag.Int("thetas", 5, "number of candidate predictors on [0,1]")
	epsList := flag.String("eps", "0.1,0.5,2", "comma-separated per-record privacy levels")
	showMatrix := flag.Bool("matrix", false, "print the full channel matrix")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()

	inputs, logPX := channel.CountSampleSpace(*n, *p)
	axis := mathx.Linspace(0, 1, *points)
	thetas := make([][]float64, *points)
	for i, v := range axis {
		thetas[i] = []float64{v}
	}

	fmt.Printf("Figure-1 channel: sample Z (count of ones, Binomial(%d, %.2f)) -> predictor theta\n\n", *n, *p)
	for _, tok := range strings.Split(*epsList, ",") {
		eps, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fail(fmt.Errorf("bad eps %q: %w", tok, err))
		}
		lambda := gibbs.LambdaForEpsilon(eps, meanLoss{}, *n)
		est, err := gibbs.New(meanLoss{}, thetas, nil, lambda)
		if err != nil {
			fail(err)
		}
		ch, err := channel.FromMechanismCtx(ctx, inputs, logPX, est, parallel.Options{})
		if err != nil {
			fail(err)
		}
		mi, err := ch.MutualInformation()
		if err != nil {
			fail(err)
		}
		capacity, err := ch.CapacityCtx(ctx, 1e-9, 50000)
		if err != nil {
			fail(err)
		}
		cap2 := channel.DPLeakageCapNats(eps, *n)
		fmt.Printf("eps/record=%.3g  lambda=%.4g  I(Z;theta)=%.4g bits  capacity=%.4g bits  eps*n cap=%.4g bits\n",
			eps, lambda, infotheory.Nats2Bits(mi), infotheory.Nats2Bits(capacity), infotheory.Nats2Bits(cap2))
		if *showMatrix {
			fmt.Printf("  p(theta | count): rows=count 0..%d, cols=theta %v\n", *n, axis)
			for i, row := range ch.Rows {
				cells := make([]string, len(row))
				for j, lv := range row {
					cells[j] = fmt.Sprintf("%6.4f", math.Exp(lv))
				}
				fmt.Printf("  %3d | %s\n", i, strings.Join(cells, " "))
			}
		}
		fmt.Println()
	}
}

// fail prints the error and exits non-zero; a canceled run gets a
// distinct interruption message so scripts can tell ^C from failure.
func fail(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dplearn-channel: interrupted: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "dplearn-channel: %v\n", err)
	}
	os.Exit(1)
}
