// Command dplearn-experiments regenerates the reproduction tables
// (E1–E10 in DESIGN.md). Each table validates one theorem or figure of
// "Differentially-private Learning and Information Theory" (Mir, 2012).
//
// Usage:
//
//	dplearn-experiments [-run E1,E5] [-seed 42] [-quick]
//
// Without -run, every experiment runs in ID order. -quick shrinks the
// workloads (the same mode the benchmarks use).
//
// Observability (all opt-in): -trace out.ndjson records per-cell sweep
// spans and prints a summary on exit, -metrics-addr serves /metrics
// (worker utilization, risk-cache hit rates) and /debug/vars, and -pprof
// adds /debug/pprof on the same endpoint. Tables are bit-identical with
// instrumentation on or off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obsglue"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "random seed for reproducibility")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	format := flag.String("format", "text", "output format: text, csv, or json")
	parallel := flag.Int("parallel", 1, "number of experiments to run concurrently")
	workers := flag.Int("workers", 0, "worker fan-out inside each experiment's sweep (0 = all CPUs, 1 = serial; results are identical either way)")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obsglue.Start(obsFlags)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dplearn-experiments: %v\n", err)
		os.Exit(1)
	}
	if rt.Addr != "" {
		fmt.Fprintf(os.Stderr, "dplearn-experiments: metrics on http://%s/metrics\n", rt.Addr)
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Workers: *workers, Obs: rt.Obs}
	ids := experiments.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	tables, err := experiments.RunMany(ids, opts, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dplearn-experiments: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if err := t.RenderAs(os.Stdout, experiments.Format(*format)); err != nil {
			fmt.Fprintf(os.Stderr, "dplearn-experiments: render: %v\n", err)
			os.Exit(1)
		}
	}
	if err := rt.Close(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "dplearn-experiments: %v\n", err)
		os.Exit(1)
	}
}
