// Command dplearn-experiments regenerates the reproduction tables
// (E1–E10 in DESIGN.md). Each table validates one theorem or figure of
// "Differentially-private Learning and Information Theory" (Mir, 2012).
//
// Usage:
//
//	dplearn-experiments [-run E1,E5] [-seed 42] [-quick]
//
// Without -run, every experiment runs in ID order. -quick shrinks the
// workloads (the same mode the benchmarks use).
//
// Observability (all opt-in): -trace out.ndjson records per-cell sweep
// spans and prints a summary on exit, -metrics-addr serves /metrics
// (worker utilization, risk-cache hit rates) and /debug/vars, and -pprof
// adds /debug/pprof on the same endpoint. Tables are bit-identical with
// instrumentation on or off.
//
// Robustness: -timeout bounds the run and ^C drains gracefully (claimed
// sweep cells finish, the ledger flushes, the process exits non-zero).
// -checkpoint DIR persists each completed sweep cell to
// DIR/<ID>.ndjson; rerunning with -resume skips the recorded cells and
// produces bit-identical tables. Checkpointed runs execute the
// experiments sequentially (one log per experiment), so -parallel
// applies only without -checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/obsglue"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 42, "random seed for reproducibility")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	format := flag.String("format", "text", "output format: text, csv, or json")
	parallel := flag.Int("parallel", 1, "number of experiments to run concurrently (ignored with -checkpoint)")
	workers := flag.Int("workers", 0, "worker fan-out inside each experiment's sweep (0 = all CPUs, 1 = serial; results are identical either way)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	ckDir := flag.String("checkpoint", "", "persist completed sweep cells to this directory (one NDJSON log per experiment)")
	resume := flag.Bool("resume", false, "skip sweep cells already recorded in -checkpoint logs")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obsglue.Start(obsFlags)
	if err != nil {
		fatal(nil, err)
	}
	if rt.Addr != "" {
		fmt.Fprintf(os.Stderr, "dplearn-experiments: metrics on http://%s/metrics\n", rt.Addr)
	}
	if *resume && *ckDir == "" {
		fatal(rt, errors.New("-resume requires -checkpoint"))
	}
	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()

	opts := experiments.Options{Seed: *seed, Quick: *quick, Workers: *workers, Obs: rt.Obs, Ctx: ctx}
	ids := experiments.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	var tables []*experiments.Table
	if *ckDir != "" {
		tables, err = runCheckpointed(ids, opts, *ckDir, *resume)
	} else {
		tables, err = experiments.RunMany(ids, opts, *parallel)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Graceful drain: completed cells are checkpointed (when
			// -checkpoint is on) and the ledger flushes on the way out.
			fmt.Fprintf(os.Stderr, "dplearn-experiments: interrupted: %v\n", err)
			if *ckDir != "" {
				fmt.Fprintf(os.Stderr, "dplearn-experiments: rerun with -checkpoint %s -resume to continue\n", *ckDir)
			}
			if cerr := rt.Close(os.Stderr); cerr != nil {
				fmt.Fprintf(os.Stderr, "dplearn-experiments: %v\n", cerr)
			}
			os.Exit(1)
		}
		fatal(rt, err)
	}
	for _, t := range tables {
		if t == nil {
			continue
		}
		if err := t.RenderAs(os.Stdout, experiments.Format(*format)); err != nil {
			fatal(rt, fmt.Errorf("render: %w", err))
		}
	}
	if err := rt.Close(os.Stderr); err != nil {
		fatal(nil, err)
	}
}

// runCheckpointed executes the experiments sequentially, giving each its
// own cell log under dir. Logs must not be shared: experiments derive
// their sweep-cell seeds from the same root seed, so two experiments'
// (cell, seed) keys can collide and cross-poison a shared log.
func runCheckpointed(ids []string, opts experiments.Options, dir string, resume bool) ([]*experiments.Table, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	tables := make([]*experiments.Table, len(ids))
	for i, id := range ids {
		ck, err := checkpoint.Open(filepath.Join(dir, id+".ndjson"), resume)
		if err != nil {
			return tables, fmt.Errorf("%s: checkpoint: %w", id, err)
		}
		if resume && ck.Len() > 0 {
			fmt.Fprintf(os.Stderr, "dplearn-experiments: %s: resuming past %d checkpointed cell(s)\n", id, ck.Len())
		}
		o := opts
		o.Checkpoint = ck
		t, err := experiments.Run(id, o)
		if cerr := ck.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return tables, fmt.Errorf("%s: %w", id, err)
		}
		tables[i] = t
	}
	return tables, nil
}

// fatal flushes the ledger (best effort) before exiting non-zero, so
// even a failed run leaves auditable books.
func fatal(rt *obsglue.Runtime, err error) {
	fmt.Fprintf(os.Stderr, "dplearn-experiments: %v\n", err)
	if cerr := rt.Close(os.Stderr); cerr != nil {
		fmt.Fprintf(os.Stderr, "dplearn-experiments: %v\n", cerr)
	}
	os.Exit(1)
}
