// Command dplearn-lint runs the privacy-correctness checks in
// internal/analysis over the module and reports findings with file:line
// positions. It exits 1 when any error-severity finding survives
// suppression, so `make lint` and CI can gate merges on a lint-clean tree.
//
// Usage:
//
//	dplearn-lint [flags] [patterns]
//
// Patterns follow the go tool convention: a directory, or dir/... for a
// recursive walk ("./..." by default). Flags:
//
//	-json           emit newline-delimited JSON, one finding per line,
//	                including suppressed findings flagged as such
//	-certify        emit NDJSON budget certificates — one per exported
//	                entry point: symbolic (ε, δ) bound, resolved constant
//	                where foldable, and the witness path of charge sites —
//	                then exit (see results/budget_certificates.ndjson)
//	-checks a,b,c   run only the named checks (default: all)
//	-warn a,b,c     downgrade the named checks to warning severity
//	-no-tests       skip _test.go files entirely
//	-list           list registered checks and exit
//	-flow re        dump the CFG of functions matching the regexp and
//	                exit (debug view of the flow-sensitive checks)
//	-timeout d      abort the run after this duration (0 = no limit)
//
// ^C or the -timeout deadline cancels the analysis between passes; an
// interrupted run exits 2 without reporting a partial (and therefore
// misleadingly clean) finding list.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/obsglue"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// jsonDiag is one NDJSON output line. Suppressed findings are included
// (so dashboards can audit what the directives hide, and with what
// stated reason) but never affect the exit status.
type jsonDiag struct {
	Check          string `json:"check"`
	Severity       string `json:"severity"`
	File           string `json:"file"`
	Line           int    `json:"line"`
	Column         int    `json:"column"`
	Message        string `json:"message"`
	Suppressed     bool   `json:"suppressed"`
	SuppressReason string `json:"suppress_reason,omitempty"`
	// Trace is the per-path witness of a flow-sensitive finding: the
	// CFG block labels of one concrete execution exhibiting it.
	Trace []string `json:"trace,omitempty"`
}

// run writes directly to os.Stdout/os.Stderr: the errdrop check exempts
// fmt.Fprint* on the process streams (a write error there has nowhere
// better to go), and the driver holds itself to its own rules.
func run(args []string) int {
	fs := flag.NewFlagSet("dplearn-lint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	certify := fs.Bool("certify", false, "emit NDJSON budget certificates and exit")
	checksFlag := fs.String("checks", "", "comma-separated check ids to run (default: all)")
	warnFlag := fs.String("warn", "", "comma-separated check ids downgraded to warnings")
	noTests := fs.Bool("no-tests", false, "skip _test.go files")
	list := fs.Bool("list", false, "list registered checks and exit")
	flowRe := fs.String("flow", "", "dump the CFG of functions matching this regexp and exit")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stdout, "%-10s %-6s %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}

	checks, err := selectChecks(*checksFlag, *warnFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
		return 2
	}
	// Certificates cover the non-test entry surface only; skip test files
	// so the certify load stays lean and byte-stable.
	pkgs, err := loader.LoadPatterns(patterns, !*noTests && !*certify)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
		return 2
	}

	if *certify {
		enc := json.NewEncoder(os.Stdout)
		for _, cert := range analysis.BudgetCertificates(pkgs, loader.ModuleRoot()) {
			if err := enc.Encode(cert); err != nil {
				fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
				return 2
			}
		}
		return 0
	}

	if *flowRe != "" {
		re, err := regexp.Compile(*flowRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dplearn-lint: -flow:", err)
			return 2
		}
		if err := analysis.DumpCFGs(os.Stdout, pkgs, re.MatchString); err != nil {
			fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
			return 2
		}
		return 0
	}

	failures := 0
	if *jsonOut {
		// NDJSON keeps suppressed findings visible; text mode hides them.
		diags, err := analysis.RunAllCtx(ctx, pkgs, checks)
		if err != nil {
			return interrupted(err)
		}
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonDiag{
				Check:          d.Check,
				Severity:       d.Severity.String(),
				File:           relFile(loader.ModuleRoot(), d.Pos.Filename),
				Line:           d.Pos.Line,
				Column:         d.Pos.Column,
				Message:        d.Message,
				Suppressed:     d.Suppressed,
				SuppressReason: d.SuppressReason,
				Trace:          d.Trace,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
				return 2
			}
			if !d.Suppressed && d.Severity == analysis.Error {
				failures++
			}
		}
	} else {
		diags, err := analysis.RunCtx(ctx, pkgs, checks)
		if err != nil {
			return interrupted(err)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stdout, d.String())
			if d.Severity == analysis.Error {
				failures++
			}
		}
		if failures > 0 {
			fmt.Fprintf(os.Stdout, "dplearn-lint: %d finding(s)\n", len(diags))
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

// relFile renders file relative to the module root with forward slashes,
// so NDJSON lint artifacts are byte-identical across machines and
// checkouts. Files outside the module keep their absolute path.
func relFile(root, file string) string {
	if root != "" {
		if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(file)
}

// interrupted reports a canceled analysis and picks the driver-error
// exit code: an interrupted run must not exit 0, because its (discarded)
// finding list would read as lint-clean.
func interrupted(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "dplearn-lint: interrupted:", err)
	} else {
		fmt.Fprintln(os.Stderr, "dplearn-lint:", err)
	}
	return 2
}

// selectChecks resolves -checks and -warn into the analyzer set to run,
// cloning analyzers whose severity is downgraded so the registry stays
// pristine.
func selectChecks(checksCSV, warnCSV string) ([]*analysis.Analyzer, error) {
	warn := make(map[string]bool)
	for _, name := range splitCSV(warnCSV) {
		if analysis.ByName(name) == nil {
			return nil, fmt.Errorf("unknown check in -warn: %q", name)
		}
		warn[name] = true
	}
	var selected []*analysis.Analyzer
	if checksCSV == "" {
		selected = analysis.Analyzers()
	} else {
		for _, name := range splitCSV(checksCSV) {
			a := analysis.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown check in -checks: %q", name)
			}
			selected = append(selected, a)
		}
	}
	out := make([]*analysis.Analyzer, 0, len(selected))
	for _, a := range selected {
		if warn[a.Name] && a.Severity != analysis.Warn {
			clone := *a
			clone.Severity = analysis.Warn
			out = append(out, &clone)
		} else {
			out = append(out, a)
		}
	}
	return out, nil
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
