// Command dplearn-loadgen drives a deterministic request mix against a
// live dplearn-serve instance and writes the run as a BENCH_serve.json
// artifact (QPS, p50/p95/p99 latency, admission-reject rate).
//
//	dplearn-loadgen -addr localhost:8080 -tenants alpha,beta -requests 1000
//
// The whole request stream — tenant assignment, endpoint mix, per-request
// seeds, and synthetic datasets — is pre-generated from -seed before the
// first byte is sent, so two runs against identically configured servers
// issue byte-identical request bodies in the same order (per worker
// interleaving is the only wall-clock nondeterminism, and it only
// affects timing, never payloads). After the run the generator audits
// every tenant's books via /v1/crosscheck; a failed audit exits
// non-zero.
//
// Requests ride the retry-aware serve client: 429/503 responses back
// off with jitter honoring the server's Retry-After hint (capped by
// -max-retry-wait), spending requests carry deterministic
// Idempotency-Key headers ("lg-<seed>") so 5xx retries settle to the
// original outcome instead of buying a second release, and every
// logical request gets a -deadline. The artifact reports retry counts,
// replayed responses, and goodput (fresh successes per second) beside
// raw QPS.
//
// Every request carries a W3C traceparent header whose trace id is
// derived deterministically from the request's seed (disable with
// -no-traceparent), so a traced server run can be joined request-for-
// request to this generator's stream, and BENCH_serve.json names the
// exact trace ids sitting at the p95/p99 latencies. The shared obsglue
// flags (-trace / -metrics-addr / -pprof) additionally capture the
// client's side of every request as a span in the same trace ids.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obsglue"
	"repro/internal/rng"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// request is one pre-generated unit of load.
type request struct {
	tenant   string
	endpoint string
	body     []byte
	// key is the Idempotency-Key stamped on spending requests
	// ("lg-<seed>"), making their retries exactly-once by protocol.
	key string
	// tc is the deterministic trace context injected as the request's
	// traceparent header (invalid when injection is disabled).
	tc obs.TraceContext
}

// outcome is the measured result of one logical request (all attempts).
type outcome struct {
	code     int
	degraded bool
	retries  int
	replayed bool
	millis   float64
	trace    string
}

func main() {
	addr := flag.String("addr", "", "serve address host:port (required)")
	tenants := flag.String("tenants", "", "comma-separated tenant IDs to spread load across (required)")
	requests := flag.Int("requests", 1000, "total requests to issue")
	seed := flag.Int64("seed", 1, "master seed for the deterministic request stream")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	mix := flag.String("mix", "fit=2,certify=1,select=1,density=2,summary=2", "endpoint weights")
	reqEps := flag.Float64("req-eps", 0.02, "ε quoted by each select/density/summary request")
	rows := flag.Int("rows", 24, "rows per synthetic dataset")
	dim := flag.Int("dim", 2, "feature dimension (must match the server's -dim)")
	degrade := flag.String("degrade", "", "degrade override stamped on fit requests (refuse|fallback|widen; empty = tenant default)")
	out := flag.String("out", "BENCH_serve.json", "bench artifact path")
	noTrace := flag.Bool("no-traceparent", false, "do not inject deterministic traceparent headers")
	retries := flag.Int("retries", 3, "max HTTP attempts per logical request (429/503 back off honoring Retry-After; 5xx retried under the idempotency key)")
	maxRetryWait := flag.Duration("max-retry-wait", 500*time.Millisecond, "cap on how long a server Retry-After hint is honored")
	deadline := flag.Duration("deadline", 30*time.Second, "per-request deadline including all retries and backoff")
	noIdem := flag.Bool("no-idempotency", false, "do not stamp Idempotency-Key headers (disables 5xx retries)")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *addr == "" || *tenants == "" {
		fmt.Fprintln(os.Stderr, "dplearn-loadgen: -addr and -tenants are required")
		flag.Usage()
		os.Exit(2)
	}
	ids := splitIDs(*tenants)
	if len(ids) == 0 {
		fatal(fmt.Errorf("no tenant IDs in %q", *tenants))
	}
	endpoints, weights, err := parseMix(*mix)
	if err != nil {
		fatal(err)
	}

	glueFlags := obsFlags
	if glueFlags.MetricsAddr == "" {
		glueFlags.Pprof = false // nothing to mount pprof on without an address
	}
	rt, err := obsglue.Start(glueFlags)
	if err != nil {
		fatal(err)
	}

	reqs, err := generate(*seed, *requests, ids, endpoints, weights, *rows, *dim, *reqEps, *degrade, !*noTrace, !*noIdem)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dplearn-loadgen: %d requests across %d tenant(s) against http://%s\n",
		len(reqs), len(ids), *addr)

	outcomes := make([]outcome, len(reqs))
	base := "http://" + *addr
	// One retry-aware client shared by all workers: the breaker and the
	// jitter stream are deliberately fleet-wide, so a crashed server is
	// backed off by everyone at once.
	rc := client.New(client.Config{
		BaseURL:       base,
		MaxAttempts:   *retries,
		Deadline:      *deadline,
		MaxRetryAfter: *maxRetryWait,
		Seed:          *seed,
	})
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = issue(rc, rt.Obs, reqs[i])
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	stats := aggregate(reqs, outcomes, elapsed)
	stats.CrossCheckOK = crossCheck(&http.Client{Timeout: 60 * time.Second}, base)

	if err := serve.WriteLoadReport(*out, "serve_load", map[string]any{
		"addr":        *addr,
		"tenants":     ids,
		"requests":    *requests,
		"seed":        *seed,
		"concurrency": *concurrency,
		"mix":         *mix,
		"req_eps":     *reqEps,
		"rows":        *rows,
		"dim":         *dim,
		"degrade":     *degrade,
	}, stats); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "dplearn-loadgen: %d ok, %d rejected (429), %d degraded, %d errors in %.2fs (%.1f qps, %.1f goodput)\n",
		stats.OK, stats.Rejected, stats.Degraded, stats.Errors, stats.ElapsedSeconds, stats.QPS, stats.GoodputQPS)
	fmt.Fprintf(os.Stderr, "dplearn-loadgen: %d retry attempt(s), %d response(s) replayed from the idempotency store\n",
		stats.Retries, stats.Replayed)
	fmt.Fprintf(os.Stderr, "dplearn-loadgen: latency p50=%.2fms p95=%.2fms p99=%.2fms, reject rate %.3f\n",
		stats.P50Millis, stats.P95Millis, stats.P99Millis, stats.AdmissionRejectRate)
	for _, t := range stats.ByTenant {
		fmt.Fprintf(os.Stderr, "dplearn-loadgen: tenant %s: %d requests, %d ok, %d rejected, %d errors\n",
			t.Tenant, t.Requests, t.OK, t.Rejected, t.Errors)
	}
	fmt.Fprintf(os.Stderr, "dplearn-loadgen: wrote %s\n", *out)
	if !stats.CrossCheckOK {
		fatal(fmt.Errorf("tenant ledger cross-check FAILED"))
	}
	fmt.Fprintln(os.Stderr, "dplearn-loadgen: all tenant ledgers cross-check clean")
	if err := rt.Close(os.Stderr); err != nil {
		fatal(err)
	}
	if stats.Errors > 0 {
		fatal(fmt.Errorf("%d request(s) failed with unexpected statuses", stats.Errors))
	}
}

// splitIDs parses the comma-separated tenant list.
func splitIDs(s string) []string {
	var ids []string
	for _, part := range strings.Split(s, ",") {
		if id := strings.TrimSpace(part); id != "" {
			ids = append(ids, id)
		}
	}
	return ids
}

// parseMix parses "fit=2,summary=1" into parallel endpoint/weight
// slices in declaration order.
func parseMix(s string) ([]string, []float64, error) {
	known := map[string]bool{"fit": true, "certify": true, "select": true, "density": true, "summary": true}
	var endpoints []string
	var weights []float64
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || !known[kv[0]] {
			return nil, nil, fmt.Errorf("bad -mix entry %q (want fit|certify|select|density|summary=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil || w < 0 {
			return nil, nil, fmt.Errorf("bad weight in -mix entry %q", part)
		}
		endpoints = append(endpoints, kv[0])
		weights = append(weights, w)
	}
	if len(endpoints) == 0 {
		return nil, nil, fmt.Errorf("empty -mix")
	}
	return endpoints, weights, nil
}

// generate pre-builds the full request stream from the master seed.
// When inject is true every request carries a TraceContext derived
// deterministically from its seed, so the trace ids a traced server
// emits are reproducible from the generator's configuration alone.
func generate(seed int64, n int, ids, endpoints []string, weights []float64, rows, dim int, reqEps float64, degrade string, inject, idem bool) ([]request, error) {
	master := rng.New(seed)
	reqs := make([]request, n)
	for i := range reqs {
		tenant := ids[master.Intn(len(ids))]
		endpoint := endpoints[master.Categorical(weights)]
		reqSeed := master.SplitSeed()
		data := synthData(rng.New(reqSeed), rows, dim)
		var payload any
		switch endpoint {
		case "fit":
			payload = serve.FitRequest{Tenant: tenant, Seed: reqSeed, Degrade: degrade, Data: data}
		case "certify":
			payload = serve.CertifyRequest{Tenant: tenant, Data: data}
		case "select":
			cands := make([]serve.CandidateJSON, 3)
			g := rng.New(reqSeed)
			for c := range cands {
				theta := make([]float64, dim)
				for j := range theta {
					theta[j] = g.Uniform(-1, 1)
				}
				cands[c] = serve.CandidateJSON{Name: fmt.Sprintf("cand-%d", c), Theta: theta}
			}
			payload = serve.SelectRequest{Tenant: tenant, Seed: reqSeed, Epsilon: reqEps, Candidates: cands, Data: data}
		case "density":
			payload = serve.DensityRequest{Tenant: tenant, Seed: reqSeed, Feature: 0, Lo: -1, Hi: 1, Epsilon: reqEps, Bins: 8, Data: data}
		case "summary":
			payload = serve.SummaryRequest{Tenant: tenant, Seed: reqSeed, Feature: 0, Lo: -1, Hi: 1, Bins: 8,
				Quantiles: []float64{0.25, 0.5, 0.75}, Epsilon: reqEps, Data: data}
		}
		body, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		reqs[i] = request{tenant: tenant, endpoint: endpoint, body: body}
		if idem && endpoint != "certify" {
			// Certify is free — no charge to protect. Every spending request
			// gets a key derived from its unique seed, so a retried 5xx
			// settles to the original outcome instead of a second release.
			reqs[i].key = fmt.Sprintf("lg-%d", reqSeed)
		}
		if inject {
			reqs[i].tc = obs.DeriveTraceContext(reqSeed)
		}
	}
	return reqs, nil
}

// synthData draws a labeled dataset with features in [-1, 1].
func synthData(g *rng.RNG, rows, dim int) serve.DataJSON {
	d := serve.DataJSON{X: make([][]float64, rows), Y: make([]float64, rows)}
	for i := range d.X {
		row := make([]float64, dim)
		for j := range row {
			row[j] = g.Uniform(-1, 1)
		}
		d.X[i] = row
		if g.Bernoulli(0.5) {
			d.Y[i] = 1
		} else {
			d.Y[i] = -1
		}
	}
	return d
}

// issue sends one logical request through the retry-aware client and
// measures it end to end (all attempts and backoff sleeps included —
// the latency a caller would actually wait). The request's trace
// context (when valid) travels as the traceparent header on every
// attempt, and the client's side is captured as a request span under
// the same trace id when -trace is on, so a merged client+server trace
// shows both halves of each call.
func issue(rc *client.Client, o *obs.Observer, r request) outcome {
	sp := o.RequestSpan(r.endpoint, r.tc)
	sp.SetAttr("tenant", r.tenant)
	defer sp.End()
	var header http.Header
	if r.tc.Valid() {
		header = http.Header{"Traceparent": []string{r.tc.Traceparent()}}
	}
	start := time.Now()
	res, err := rc.PostRaw(context.Background(), "/v1/"+r.endpoint, r.body, r.key, header)
	millis := float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		retries := 0
		if res != nil {
			retries = res.Retries()
		}
		return outcome{code: 0, retries: retries, millis: millis, trace: r.tc.TraceID()}
	}
	degraded := false
	if r.endpoint == "fit" && res.Status == http.StatusOK {
		var fr serve.FitResponse
		if json.Unmarshal(res.Body, &fr) == nil {
			degraded = fr.Degraded
		}
	}
	sp.SetAttr("status", res.Status)
	return outcome{code: res.Status, degraded: degraded, retries: res.Retries(),
		replayed: res.Replayed, millis: millis, trace: r.tc.TraceID()}
}

// aggregate folds the outcomes into the report stats.
func aggregate(reqs []request, outcomes []outcome, elapsed float64) *serve.LoadStats {
	stats := &serve.LoadStats{Requests: len(reqs), ElapsedSeconds: elapsed}
	latencies := make([]float64, 0, len(outcomes))
	byTenant := map[string]*serve.TenantLoadStats{}
	byEndpoint := map[string]*serve.EndpointLoadStats{}
	for i, o := range outcomes {
		r := reqs[i]
		t := byTenant[r.tenant]
		if t == nil {
			t = &serve.TenantLoadStats{Tenant: r.tenant}
			byTenant[r.tenant] = t
		}
		e := byEndpoint[r.endpoint]
		if e == nil {
			e = &serve.EndpointLoadStats{Endpoint: r.endpoint}
			byEndpoint[r.endpoint] = e
		}
		t.Requests++
		e.Requests++
		latencies = append(latencies, o.millis)
		stats.Retries += o.retries
		switch {
		case o.code >= 200 && o.code < 300:
			stats.OK++
			t.OK++
			e.OK++
			if o.degraded {
				stats.Degraded++
			}
			if o.replayed {
				stats.Replayed++
			}
		case o.code == http.StatusTooManyRequests:
			stats.Rejected++
			t.Rejected++
			e.Rejected++
		default:
			stats.Errors++
			t.Errors++
			e.Errors++
		}
	}
	if elapsed > 0 {
		stats.QPS = float64(stats.Requests) / elapsed
		stats.GoodputQPS = float64(stats.OK-stats.Replayed) / elapsed
	}
	stats.P50Millis = serve.Percentile(latencies, 50)
	stats.P95Millis = serve.Percentile(latencies, 95)
	stats.P99Millis = serve.Percentile(latencies, 99)
	stats.P95TraceID = traceAtPercentile(outcomes, 95)
	stats.P99TraceID = traceAtPercentile(outcomes, 99)
	if stats.Requests > 0 {
		stats.AdmissionRejectRate = float64(stats.Rejected) / float64(stats.Requests)
	}
	// Sorted slices keep the artifact independent of map iteration order.
	for _, t := range byTenant {
		stats.ByTenant = append(stats.ByTenant, *t)
	}
	sort.Slice(stats.ByTenant, func(i, j int) bool { return stats.ByTenant[i].Tenant < stats.ByTenant[j].Tenant })
	for _, e := range byEndpoint {
		stats.ByEndpoint = append(stats.ByEndpoint, *e)
	}
	sort.Slice(stats.ByEndpoint, func(i, j int) bool { return stats.ByEndpoint[i].Endpoint < stats.ByEndpoint[j].Endpoint })
	return stats
}

// traceAtPercentile returns the trace id of the request sitting exactly
// at the nearest-rank p-th latency percentile — the same element
// serve.Percentile reports the latency of — so the bench artifact's
// tail numbers come with the join key into the trace stream. Empty when
// traceparent injection was off.
func traceAtPercentile(outcomes []outcome, p float64) string {
	if len(outcomes) == 0 {
		return ""
	}
	idx := make([]int, len(outcomes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return outcomes[idx[a]].millis < outcomes[idx[b]].millis })
	rank := int(math.Ceil(p / 100 * float64(len(idx))))
	if rank < 1 {
		rank = 1
	}
	return outcomes[idx[rank-1]].trace
}

// crossCheck audits every tenant's books on the server.
func crossCheck(client *http.Client, base string) bool {
	resp, err := client.Get(base + "/v1/crosscheck")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dplearn-loadgen: crosscheck: %v\n", err)
		return false
	}
	defer resp.Body.Close() //dplint:ignore errdrop read-only response body
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body) //dplint:ignore errdrop best-effort diagnostic body
		fmt.Fprintf(os.Stderr, "dplearn-loadgen: crosscheck: HTTP %d: %s\n", resp.StatusCode, strings.TrimSpace(string(b)))
		return false
	}
	return true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dplearn-loadgen: %v\n", err)
	os.Exit(1)
}
