// Command dplearn-serve runs the multi-tenant DP release service: the
// facade (fit / certify / select / density / summary) as JSON endpoints,
// one dedicated budget-enforcing accountant per tenant.
//
//	dplearn-serve -addr localhost:8080 -tenants "alpha=4,beta=1.5"
//
// Each tenant's declared value is its hard ε budget; every spending
// request rides the accountant's two-phase Reserve/Commit protocol, a
// request the budget cannot admit answers 429 + Retry-After (or
// degrades per its refuse/fallback/widen policy), and /metrics exposes
// per-tenant spend gauges next to the service counters.
//
// On SIGINT/SIGTERM or -timeout the server drains gracefully: new /v1
// requests get 503, in-flight requests finish (commit or release —
// never half-spend), and every tenant's NDJSON ledger is cross-checked
// bit-for-bit against its accountant before exit. A failed audit exits
// non-zero.
//
// -addr-file writes the bound address (useful with -addr :0) so
// scripts can wait for readiness; see `make bench-serve`.
//
// -wal-dir makes budgets crash-safe: every spending request writes a
// reserve record before the mechanism runs and a commit record —
// carrying the exact charges and the response fingerprint — before any
// response byte escapes. On boot the WAL is replayed: committed charges
// are rebuilt bit-for-bit (verified against the canonical composition;
// a mismatch refuses to serve), stranded in-flight requests are voided,
// and Idempotency-Key outcomes are restored so client retries replay
// the original response instead of buying a second release. A per-tenant
// recovery report prints at boot.
//
// -tenants-file names a declaration file (same id=eps syntax as
// -tenants, entries separated by commas or newlines, # comments).
// SIGHUP re-reads it live: new tenants are added (WAL attached when
// -wal-dir is set) and existing budgets may be raised; lowering below
// the current cap is refused, because admissions already made against
// the old budget must stay sound.
//
// Observability rides the shared obsglue flag surface: -trace writes
// the NDJSON trace stream (request spans, release child spans, and
// trace-stamped ledger lines — the input of dplearn-trace),
// -metrics-addr serves /metrics on a separate endpoint, and -pprof
// mounts /debug/pprof on the service mux (and on -metrics-addr when
// set). -access-log writes one NDJSON "access" line per /v1 request:
// trace id, tenant, endpoint, status, quoted vs. spent ε, reservation
// outcome, and duration in logical ticks.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obsglue"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (use :0 for a free port with -addr-file)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	tenants := flag.String("tenants", "", "tenant declaration id=eps[,id=eps...] (required unless -tenants-file is set)")
	tenantsFile := flag.String("tenants-file", "", "tenant declaration file (same syntax, newlines allowed); SIGHUP re-reads it live")
	walDir := flag.String("wal-dir", "", "write-ahead privacy ledger directory: crash-safe budgets, idempotent retries, recovery on boot")
	degrade := flag.String("degrade", "refuse", "default degrade policy when a budget cannot admit a fit: refuse, fallback, or widen")
	dim := flag.Int("dim", 2, "feature dimension of the predictor space")
	gridPts := flag.Int("grid", 5, "grid points per dimension")
	box := flag.Float64("box", 2, "coefficient box half-width")
	eps := flag.Float64("eps", 0.5, "ε spent by one non-degraded fit")
	delta := flag.Float64("delta", 0.05, "PAC-Bayes confidence parameter")
	workers := flag.Int("workers", 0, "parallel worker cap for learner hot paths (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "drain and exit after this duration (0 = run until SIGINT)")
	grace := flag.Duration("drain-grace", 10*time.Second, "how long drain waits for in-flight requests")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds on 503 responses and floor of the burn-rate 429 hint")
	accessLog := flag.String("access-log", "", "write one NDJSON access line per /v1 request to this file")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if *tenants == "" && *tenantsFile == "" {
		fmt.Fprintln(os.Stderr, "dplearn-serve: -tenants or -tenants-file is required")
		flag.Usage()
		os.Exit(2)
	}
	policy, err := core.ParseDegradePolicy(*degrade)
	if err != nil {
		fatal(err)
	}
	decl := *tenants
	if *tenantsFile != "" {
		decl, err = readTenantsFile(*tenantsFile)
		if err != nil {
			fatal(err)
		}
		if *tenants != "" {
			fmt.Fprintln(os.Stderr, "dplearn-serve: both -tenants and -tenants-file given; the file wins (it is the SIGHUP reload source)")
		}
	}
	cfgs, err := serve.ParseTenantBudgets(decl, policy)
	if err != nil {
		fatal(err)
	}

	// The service clock is logical (obsglue always injects a
	// LogicalClock): tick-based durations make the ledger and the
	// dplearn_serve_ metric families deterministic functions of the
	// request history (see the obs determinism contract). When -pprof is
	// given without -metrics-addr it mounts on the service mux alone, so
	// only forward it to obsglue alongside an address.
	glueFlags := obsFlags
	if glueFlags.MetricsAddr == "" {
		glueFlags.Pprof = false
	}
	rt, err := obsglue.Start(glueFlags)
	if err != nil {
		fatal(err)
	}
	o := rt.Obs

	var alog *obs.AccessLog
	var alogFile *os.File
	if *accessLog != "" {
		alogFile, err = os.Create(*accessLog)
		if err != nil {
			fatal(fmt.Errorf("access log: %w", err))
		}
		alog = obs.NewAccessLog(alogFile)
	}

	s, err := serve.New(serve.Config{
		Tenants: cfgs,
		Learner: serve.LearnerSpec{
			Dim:        *dim,
			GridPoints: *gridPts,
			Box:        *box,
			Epsilon:    *eps,
			Delta:      *delta,
		},
		Observer:          o,
		Workers:           *workers,
		RetryAfterSeconds: *retryAfter,
		Pprof:             obsFlags.Pprof,
		AccessLog:         alog,
		WALDir:            *walDir,
	})
	if err != nil {
		fatal(err)
	}
	for _, rep := range s.RecoveryReports() {
		fmt.Fprintf(os.Stderr,
			"dplearn-serve: tenant %s recovered: %d commit(s) carrying %d charge(s) (eps=%.4g), %d stranded reserve(s) voided, %d idempotency key(s) restored\n",
			rep.Tenant, rep.Commits, rep.Charges, rep.Epsilon, rep.Unsettled, rep.RestoredKeys)
	}

	if *tenantsFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				decl, err := readTenantsFile(*tenantsFile)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dplearn-serve: reload: %v\n", err)
					continue
				}
				cfgs, err := serve.ParseTenantBudgets(decl, policy)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dplearn-serve: reload: %v\n", err)
					continue
				}
				added, raised, err := s.ReloadTenants(cfgs)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dplearn-serve: reload (partially applied): %v\n", err)
				}
				fmt.Fprintf(os.Stderr, "dplearn-serve: reload: %d tenant(s) added, %d budget(s) raised\n", added, raised)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	fmt.Fprintf(os.Stderr, "dplearn-serve: %d tenant(s) on http://%s (metrics at /metrics)\n", len(cfgs), bound)
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, bound); err != nil {
			fatal(err)
		}
	}

	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-serveErr:
		fatal(fmt.Errorf("listener failed: %w", err))
	}

	// Drain: refuse new work, let in-flight requests commit or release,
	// then audit every tenant's books.
	fmt.Fprintln(os.Stderr, "dplearn-serve: draining")
	s.BeginDrain()
	gctx, cancel := obsglue.RunContext(*grace)
	err = srv.Shutdown(gctx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dplearn-serve: drain grace expired, closing: %v\n", err)
		_ = srv.Close() //dplint:ignore errdrop the hard close after a missed grace deadline is already the error path
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}

	for _, t := range s.Tenants().Tenants() {
		spent := t.Acct.BasicComposition()
		fmt.Fprintf(os.Stderr, "dplearn-serve: tenant %s spent eps=%.4g of %.4g across %d release(s)\n",
			t.ID, spent.Epsilon, t.Budget().Epsilon, t.Acct.Count())
	}
	if err := s.Tenants().CrossCheckAll(); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "dplearn-serve: all tenant ledgers cross-check clean")

	if alogFile != nil {
		if err := alog.Err(); err != nil {
			fatal(fmt.Errorf("access log: %w", err))
		}
		if err := alogFile.Close(); err != nil {
			fatal(fmt.Errorf("access log: %w", err))
		}
	}
	if err := rt.Close(os.Stderr); err != nil {
		fatal(err)
	}
}

// readTenantsFile reads a tenant declaration file: id=eps entries
// separated by commas or newlines, blank lines and # comments ignored.
// The normalized declaration feeds serve.ParseTenantBudgets.
func readTenantsFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("tenants file: %w", err)
	}
	var entries []string
	for _, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, part := range strings.Split(line, ",") {
			if part = strings.TrimSpace(part); part != "" {
				entries = append(entries, part)
			}
		}
	}
	if len(entries) == 0 {
		return "", fmt.Errorf("tenants file %s declares no tenants", path)
	}
	return strings.Join(entries, ","), nil
}

// writeAddrFile publishes the bound address atomically (write + rename)
// so a watcher never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Clean(path)); err != nil {
		return err
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dplearn-serve: %v\n", err)
	os.Exit(1)
}
