// Command dplearn-synth generates ε-DP synthetic data with MWEM over a
// discretized 1-D domain and reports workload error against the true
// distribution.
//
// Usage:
//
//	dplearn-synth [-n 5000] [-domain 16] [-rounds 8] [-eps 1] [-seed 1]
//
// -timeout bounds the run; ^C cancels MWEM at the next round boundary
// (completed rounds have already spent their per-round budget) and
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/obsglue"
	"repro/internal/rng"
)

func main() {
	n := flag.Int("n", 5000, "number of records")
	domain := flag.Int("domain", 16, "domain size after discretization")
	rounds := flag.Int("rounds", 8, "MWEM rounds T")
	eps := flag.Float64("eps", 1.0, "total privacy budget")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()

	g := rng.New(*seed)
	// Synthetic "age-like" skewed integer data.
	d := &dataset.Dataset{}
	for i := 0; i < *n; i++ {
		var v int
		if g.Bernoulli(0.7) {
			v = 2 + g.Intn(*domain/3)
		} else {
			v = g.Intn(*domain)
		}
		d.Append(dataset.Example{X: []float64{float64(v)}})
	}

	queries := mechanism.IntervalQueries(*domain)
	m, err := mechanism.NewMWEM(*domain, queries, *rounds, *eps)
	if err != nil {
		fail(err)
	}
	truth := m.Histogram(d)
	synth, err := m.RunCtx(ctx, d, g)
	if err != nil {
		fail(err)
	}
	uniform := make([]float64, *domain)
	for v := range uniform {
		uniform[v] = 1 / float64(*domain)
	}

	fmt.Printf("MWEM synthetic data: n=%d, domain=%d, %d interval queries, T=%d, %s\n\n",
		*n, *domain, len(queries), *rounds, m.Guarantee())
	fmt.Println("value  true     synthetic  sketch(true | synth)")
	for v := 0; v < *domain; v++ {
		fmt.Printf("%5d  %.4f   %.4f     %-20s| %s\n",
			v, truth[v], synth[v],
			strings.Repeat("#", int(truth[v]*100)),
			strings.Repeat("#", int(synth[v]*100)))
	}
	fmt.Printf("\nmax interval-query error: mwem=%.4f, uniform baseline=%.4f\n",
		m.MaxQueryError(synth, truth), m.MaxQueryError(uniform, truth))
}

// fail prints the error and exits non-zero; a canceled run gets a
// distinct interruption message so scripts can tell ^C from failure.
func fail(err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dplearn-synth: interrupted: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "dplearn-synth: %v\n", err)
	}
	os.Exit(1)
}
