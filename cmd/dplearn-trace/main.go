// Command dplearn-trace reconstructs per-request stories from the NDJSON
// observability artifacts the serve layer emits: the trace stream
// (-trace on dplearn-serve: spans, events, trace-stamped ledger lines)
// and the access log (-access-log: one line per /v1 request). Point it
// at one or more files and it joins them on the 128-bit W3C trace id:
//
//	dplearn-trace serve_trace.ndjson serve_access.ndjson
//	dplearn-trace -trace 4bf92f3577b34da6a3ce929d0e0e4736 serve_trace.ndjson
//	dplearn-trace -tenant beta -top 5 serve_trace.ndjson serve_access.ndjson
//	dplearn-trace -check serve_trace.ndjson serve_access.ndjson
//
// The default view is a top-K-slowest table with ε attribution: trace
// id, tenant, endpoint, status, duration in logical ticks, quoted and
// committed ε, and the request's critical path (the chain of
// longest-duration child spans from the request root). -trace renders
// one request's full span waterfall plus its ledger charges. -check
// verifies the join invariants and exits non-zero on any violation:
// every committed request's spent ε must equal the canonical basic
// composition (obs.ComposeBasic) of the ledger records carrying its
// trace id, bit for bit, and every trace-stamped ledger record must
// join to exactly one access record.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	tenant := flag.String("tenant", "", "only requests of this tenant")
	traceID := flag.String("trace", "", "render the full span waterfall of this trace id")
	endpoint := flag.String("endpoint", "", "only requests of this endpoint")
	top := flag.Int("top", 10, "rows in the top-K-slowest table")
	check := flag.Bool("check", false, "verify the trace/ledger/access join invariants; exit non-zero on violation")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "dplearn-trace: need at least one NDJSON file (trace and/or access log)")
		flag.Usage()
		os.Exit(2)
	}
	data := &obs.TraceData{}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		part, err := obs.ReadTraceNDJSON(f)
		_ = f.Close() //dplint:ignore errdrop read-only input; a close error cannot lose data
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		data.Merge(part)
	}

	reqs := joinRequests(data)
	if *check {
		os.Exit(runCheck(data, reqs))
	}
	reqs = filterRequests(reqs, *tenant, *endpoint)
	if *traceID != "" {
		for _, r := range reqs {
			if r.trace == *traceID {
				renderWaterfall(r)
				return
			}
		}
		fatal(fmt.Errorf("trace %s not found (after filters)", *traceID))
	}
	renderTable(reqs, *top)
}

// requestStory is everything known about one traced request.
type requestStory struct {
	trace  string
	root   *spanNode
	spans  []obs.SpanRecord
	ledger []obs.LedgerRecord
	access *obs.AccessRecord
}

// spanNode is one span in the reconstructed tree.
type spanNode struct {
	rec      obs.SpanRecord
	children []*spanNode
}

func (n *spanNode) duration() int64 { return n.rec.End - n.rec.Start }

// joinRequests groups spans, ledger lines, and access records by trace
// id and reconstructs each request's span tree. A request needs at least
// one of (root span, access record) to appear; ledger records without a
// trace id are left out of every story (they are visible to -check).
func joinRequests(data *obs.TraceData) []*requestStory {
	byTrace := map[string]*requestStory{}
	story := func(trace string) *requestStory {
		s, ok := byTrace[trace]
		if !ok {
			s = &requestStory{trace: trace}
			byTrace[trace] = s
		}
		return s
	}
	for _, sp := range data.Spans {
		if sp.Trace == "" {
			continue
		}
		story(sp.Trace).spans = append(story(sp.Trace).spans, sp)
	}
	for _, lr := range data.Ledger {
		if lr.Trace == "" {
			continue
		}
		story(lr.Trace).ledger = append(story(lr.Trace).ledger, lr)
	}
	for i := range data.Access {
		ar := &data.Access[i]
		if ar.Trace == "" {
			continue
		}
		story(ar.Trace).access = ar
	}
	var out []*requestStory
	for _, s := range byTrace {
		s.root = buildTree(s.spans)
		out = append(out, s)
	}
	// Slowest first; ties (and missing spans) break by trace id so the
	// report is a deterministic function of the artifacts.
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].durationTicks(), out[j].durationTicks()
		if di != dj {
			return di > dj
		}
		return out[i].trace < out[j].trace
	})
	return out
}

// durationTicks is the request's duration: the access record's when
// present (it spans the whole middleware window), else the root span's.
func (s *requestStory) durationTicks() int64 {
	if s.access != nil {
		return s.access.Duration
	}
	if s.root != nil {
		return s.root.duration()
	}
	return 0
}

// buildTree links spans into a tree by id/parent and returns the
// server-side request root: the earliest-starting parentless span
// (a merged client trace contributes its own root, which starts
// earlier but holds no children of interest on the server side).
func buildTree(spans []obs.SpanRecord) *spanNode {
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*spanNode, len(spans))
	for _, sp := range spans {
		nodes[sp.ID] = &spanNode{rec: sp}
	}
	var roots []*spanNode
	for _, n := range nodes {
		if p, ok := nodes[n.rec.Parent]; ok && n.rec.Parent != n.rec.ID {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.children, func(i, j int) bool {
			a, b := n.children[i].rec, n.children[j].rec
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.ID < b.ID
		})
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := roots[i].rec, roots[j].rec
		// Prefer the root with descendants: the server-side request span.
		if (len(roots[i].children) > 0) != (len(roots[j].children) > 0) {
			return len(roots[i].children) > 0
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.ID < b.ID
	})
	return roots[0]
}

// criticalPath walks the tree from the root, descending into the
// longest-duration child at each level: the chain of operations that
// bounded the request's latency.
func criticalPath(n *spanNode) []*spanNode {
	var path []*spanNode
	for n != nil {
		path = append(path, n)
		var next *spanNode
		for _, c := range n.children {
			if next == nil || c.duration() > next.duration() ||
				(c.duration() == next.duration() && c.rec.ID < next.rec.ID) {
				next = c
			}
		}
		n = next
	}
	return path
}

func filterRequests(reqs []*requestStory, tenant, endpoint string) []*requestStory {
	var out []*requestStory
	for _, r := range reqs {
		if tenant != "" && (r.access == nil || r.access.Tenant != tenant) {
			continue
		}
		if endpoint != "" && r.endpointName() != endpoint {
			continue
		}
		out = append(out, r)
	}
	return out
}

func (s *requestStory) endpointName() string {
	if s.access != nil {
		return s.access.Endpoint
	}
	if s.root != nil {
		return s.root.rec.Name
	}
	return ""
}

// spentEpsilon composes the trace's ledger charges canonically.
func (s *requestStory) spentEpsilon() float64 {
	eps := make([]float64, len(s.ledger))
	del := make([]float64, len(s.ledger))
	for i, lr := range s.ledger {
		eps[i], del[i] = lr.Epsilon, lr.Delta
	}
	e, _ := obs.ComposeBasic(eps, del)
	return e
}

// renderTable prints the top-K-slowest requests with ε attribution.
func renderTable(reqs []*requestStory, top int) {
	if len(reqs) == 0 {
		fmt.Fprintln(os.Stdout, "no traced requests (was the server run with -trace and the loadgen with traceparent injection?)")
		return
	}
	fmt.Fprintf(os.Stdout, "%-32s  %-10s  %-9s  %6s  %8s  %10s  %10s  %s\n",
		"TRACE", "TENANT", "ENDPOINT", "STATUS", "TICKS", "QUOTED ε", "SPENT ε", "CRITICAL PATH")
	n := 0
	for _, r := range reqs {
		if n >= top {
			break
		}
		n++
		tenant, status, quoted := "-", "-", "-"
		if r.access != nil {
			tenant = r.access.Tenant
			status = fmt.Sprintf("%d", r.access.Status)
			quoted = fmt.Sprintf("%.4g", r.access.QuotedEpsilon)
		}
		var pathStr string
		if r.root != nil {
			var parts []string
			for _, pn := range criticalPath(r.root) {
				parts = append(parts, fmt.Sprintf("%s(%d)", pn.rec.Name, pn.duration()))
			}
			pathStr = strings.Join(parts, " > ")
		}
		fmt.Fprintf(os.Stdout, "%-32s  %-10s  %-9s  %6s  %8d  %10s  %10.4g  %s\n",
			r.trace, tenant, r.endpointName(), status, r.durationTicks(), quoted, r.spentEpsilon(), pathStr)
	}
	fmt.Fprintf(os.Stdout, "%d traced request(s), showing %d\n", len(reqs), n)
}

// renderWaterfall prints one request's span tree with tick offsets,
// followed by its ledger charges and access-log line.
func renderWaterfall(r *requestStory) {
	fmt.Fprintf(os.Stdout, "trace %s\n", r.trace)
	if r.access != nil {
		fmt.Fprintf(os.Stdout, "access: tenant=%s endpoint=%s status=%d outcome=%s quoted_eps=%.6g spent_eps=%.6g ticks=%d\n",
			r.access.Tenant, r.access.Endpoint, r.access.Status, r.access.Outcome,
			r.access.QuotedEpsilon, r.access.SpentEpsilon, r.access.Duration)
	}
	if r.root != nil {
		base := r.root.rec.Start
		var walk func(n *spanNode, depth int)
		walk = func(n *spanNode, depth int) {
			attrs := ""
			if len(n.rec.Attrs) > 0 {
				keys := make([]string, 0, len(n.rec.Attrs))
				for k := range n.rec.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				var kv []string
				for _, k := range keys {
					kv = append(kv, fmt.Sprintf("%s=%v", k, n.rec.Attrs[k]))
				}
				attrs = "  {" + strings.Join(kv, " ") + "}"
			}
			fmt.Fprintf(os.Stdout, "%s%-24s  +%d..+%d  (%d ticks)%s\n",
				strings.Repeat("  ", depth), n.rec.Name, n.rec.Start-base, n.rec.End-base, n.duration(), attrs)
			for _, c := range n.children {
				walk(c, depth+1)
			}
		}
		walk(r.root, 0)
		var parts []string
		for _, pn := range criticalPath(r.root) {
			parts = append(parts, fmt.Sprintf("%s(%d)", pn.rec.Name, pn.duration()))
		}
		fmt.Fprintf(os.Stdout, "critical path: %s\n", strings.Join(parts, " > "))
	}
	for _, lr := range r.ledger {
		fmt.Fprintf(os.Stdout, "ledger: seq=%d mechanism=%s eps=%.6g delta=%.6g sensitivity=%.6g outcomes=%d span=%d\n",
			lr.Seq, lr.Mechanism, lr.Epsilon, lr.Delta, lr.Sensitivity, lr.Outcomes, lr.Span)
	}
	fmt.Fprintf(os.Stdout, "composed spent eps: %.17g\n", r.spentEpsilon())
}

// runCheck verifies the join invariants and returns the exit code.
func runCheck(data *obs.TraceData, reqs []*requestStory) int {
	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stdout, "FAIL: "+format+"\n", args...)
	}
	// 1. Every trace-stamped ledger record joins to exactly one access
	// record (when an access log was supplied at all).
	haveAccess := len(data.Access) > 0
	accessByTrace := map[string]int{}
	for _, ar := range data.Access {
		if ar.Trace != "" {
			accessByTrace[ar.Trace]++
		}
	}
	for trace, n := range accessByTrace {
		if n > 1 {
			fail("trace %s appears on %d access records (want exactly 1)", trace, n)
		}
	}
	if haveAccess {
		for _, lr := range data.Ledger {
			if lr.Trace == "" {
				continue
			}
			if accessByTrace[lr.Trace] == 0 {
				fail("ledger seq %d carries trace %s with no access record", lr.Seq, lr.Trace)
			}
		}
	}
	// 2. Every committed 2xx request's spent ε equals the canonical
	// composition of its trace's ledger charges, bit for bit.
	checked := 0
	perTenant := map[string][]float64{}
	perTenantDel := map[string][]float64{}
	for _, r := range reqs {
		if r.access == nil || r.access.Status < 200 || r.access.Status >= 300 {
			continue
		}
		for _, lr := range r.ledger {
			perTenant[r.access.Tenant] = append(perTenant[r.access.Tenant], lr.Epsilon)
			perTenantDel[r.access.Tenant] = append(perTenantDel[r.access.Tenant], lr.Delta)
		}
		if r.access.Outcome != "committed" {
			continue
		}
		checked++
		composed := r.spentEpsilon()
		//dplint:ignore floateq bit-exact access-log-vs-ledger agreement is the audited property
		if composed != r.access.SpentEpsilon {
			fail("trace %s: access log says spent=%.17g, ledger composes to %.17g",
				r.trace, r.access.SpentEpsilon, composed)
		}
		if len(r.ledger) == 0 {
			fail("trace %s: committed with spent=%.17g but no ledger charges", r.trace, r.access.SpentEpsilon)
		}
	}
	for _, tenant := range sortedKeys(perTenant) {
		e, _ := obs.ComposeBasic(perTenant[tenant], perTenantDel[tenant])
		fmt.Fprintf(os.Stdout, "tenant %s: %d traced charge(s) compose to eps=%.17g\n",
			tenant, len(perTenant[tenant]), e)
	}
	fmt.Fprintf(os.Stdout, "checked %d committed request(s) across %d trace(s): %d violation(s)\n",
		checked, len(reqs), violations)
	if violations > 0 {
		return 1
	}
	return 0
}

func sortedKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dplearn-trace: %v\n", err)
	os.Exit(1)
}
