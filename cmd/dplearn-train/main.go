// Command dplearn-train trains a differentially-private linear classifier
// on a CSV file with the Gibbs estimator and prints the predictor with
// its privacy and PAC-Bayes certificates.
//
// The CSV must contain numeric feature columns and a label column with
// values ±1 (or use -labelmap "pos=1,neg=-1"). Example:
//
//	dplearn-train -csv data.csv -label 3 -eps 1.0 -grid 9 -box 2
//
// Observability (all opt-in): -trace out.ndjson writes a structured
// trace whose ledger lines account every ε-spending release (the summary
// and a ledger-vs-accountant cross-check print on exit), -metrics-addr
// serves /metrics (Prometheus text) and /debug/vars, and -pprof adds
// /debug/pprof on the same endpoint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/obsglue"
	"repro/internal/parallel"
)

func main() {
	csvPath := flag.String("csv", "", "path to the CSV file (required)")
	labelCol := flag.Int("label", -1, "label column index (required)")
	labelMap := flag.String("labelmap", "", "optional label mapping, e.g. \"spam=1,ham=-1\"")
	hasHeader := flag.Bool("header", true, "CSV has a header row")
	eps := flag.Float64("eps", 1.0, "privacy budget")
	delta := flag.Float64("delta", 0.05, "PAC-Bayes confidence parameter")
	gridPts := flag.Int("grid", 9, "grid points per dimension")
	box := flag.Float64("box", 2, "coefficient box half-width")
	seed := flag.Int64("seed", 1, "random seed")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obsglue.Start(obsFlags)
	if err != nil {
		fatal(err)
	}
	if rt.Addr != "" {
		fmt.Fprintf(os.Stderr, "dplearn-train: metrics on http://%s/metrics\n", rt.Addr)
	}

	if *csvPath == "" || *labelCol < 0 {
		fmt.Fprintln(os.Stderr, "dplearn-train: -csv and -label are required")
		flag.Usage()
		os.Exit(2)
	}
	var lm map[string]float64
	if *labelMap != "" {
		lm = map[string]float64{}
		for _, pair := range strings.Split(*labelMap, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				fatal(fmt.Errorf("bad -labelmap entry %q", pair))
			}
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				fatal(err)
			}
			lm[kv[0]] = v
		}
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close() //dplint:ignore errdrop read-only file: a close error after successful reads cannot lose data
	d, err := dataset.FromCSV(f, dataset.CSVOptions{
		LabelColumn: *labelCol,
		HasHeader:   *hasHeader,
		LabelMap:    lm,
	})
	if err != nil {
		fatal(err)
	}
	d.NormalizeRows()

	var acct dplearn.Accountant
	acct.SetObserver(rt.Sink())
	grid := learn.NewGrid(-*box, *box, d.Dim(), *gridPts)
	learner, err := dplearn.NewLearner(dplearn.Config{
		Loss:     learn.ZeroOneLoss{},
		Thetas:   grid.Thetas(),
		Epsilon:  *eps,
		Delta:    *delta,
		Acct:     &acct,
		Parallel: parallel.Options{Obs: rt.Obs},
	})
	if err != nil {
		fatal(err)
	}
	g := dplearn.NewRNG(*seed)
	fit, err := learner.Fit(d, g)
	if err != nil {
		fatal(err)
	}
	if err := rt.CrossCheck(&acct); err != nil {
		fatal(err)
	}

	fmt.Printf("loaded %d examples with %d features from %s\n", d.Len(), d.Dim(), *csvPath)
	fmt.Printf("predictor: %v\n", fit.Theta)
	fmt.Printf("training 0-1 error: %.4f\n", learn.ClassificationError(fit.Theta, d))
	c := fit.Certificate
	fmt.Printf("privacy certificate (Theorem 4.1): %s at lambda=%.4g\n", c.Privacy, c.Lambda)
	fmt.Printf("risk certificate (Theorem 3.1): true risk <= %.4f w.p. %.0f%%\n", c.RiskBound, 100*(1-c.Delta))
	fmt.Printf("posterior stats: E[emp risk]=%.4f, KL=%.4f nats\n", c.ExpEmpRisk, c.KL)
	if err := rt.Close(os.Stderr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dplearn-train: %v\n", err)
	os.Exit(1)
}
