// Command dplearn-train trains a differentially-private linear classifier
// on a CSV file with the Gibbs estimator and prints the predictor with
// its privacy and PAC-Bayes certificates.
//
// The CSV must contain numeric feature columns and a label column with
// values ±1 (or use -labelmap "pos=1,neg=-1"). Example:
//
//	dplearn-train -csv data.csv -label 3 -eps 1.0 -grid 9 -box 2
//
// Observability (all opt-in): -trace out.ndjson writes a structured
// trace whose ledger lines account every ε-spending release (the summary
// and a ledger-vs-accountant cross-check print on exit), -metrics-addr
// serves /metrics (Prometheus text) and /debug/vars, and -pprof adds
// /debug/pprof on the same endpoint.
//
// Robustness: -timeout bounds the run and ^C drains gracefully (claimed
// work finishes, the ledger flushes, the process exits non-zero).
// -budget caps the total ε the accountant may spend across -fits
// repeated fits; -degrade picks what happens when the cap cannot admit
// another release (refuse the fit, re-release the cached predictor for
// free, or widen the posterior to the remaining budget).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/obsglue"
	"repro/internal/parallel"
)

func main() {
	csvPath := flag.String("csv", "", "path to the CSV file (required)")
	labelCol := flag.Int("label", -1, "label column index (required)")
	labelMap := flag.String("labelmap", "", "optional label mapping, e.g. \"spam=1,ham=-1\"")
	hasHeader := flag.Bool("header", true, "CSV has a header row")
	eps := flag.Float64("eps", 1.0, "privacy budget")
	delta := flag.Float64("delta", 0.05, "PAC-Bayes confidence parameter")
	gridPts := flag.Int("grid", 9, "grid points per dimension")
	box := flag.Float64("box", 2, "coefficient box half-width")
	seed := flag.Int64("seed", 1, "random seed")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	budget := flag.Float64("budget", 0, "total ε the accountant may spend across all fits (0 = unlimited)")
	degrade := flag.String("degrade", "refuse", "what to do when -budget cannot admit a fit: refuse, fallback, or widen")
	fits := flag.Int("fits", 1, "number of repeated fits (each spends ε against -budget)")
	var obsFlags obsglue.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	rt, err := obsglue.Start(obsFlags)
	if err != nil {
		fatal(nil, err)
	}
	if rt.Addr != "" {
		fmt.Fprintf(os.Stderr, "dplearn-train: metrics on http://%s/metrics\n", rt.Addr)
	}

	if *csvPath == "" || *labelCol < 0 {
		fmt.Fprintln(os.Stderr, "dplearn-train: -csv and -label are required")
		flag.Usage()
		os.Exit(2)
	}
	var lm map[string]float64
	if *labelMap != "" {
		lm = map[string]float64{}
		for _, pair := range strings.Split(*labelMap, ",") {
			kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
			if len(kv) != 2 {
				fatal(rt, fmt.Errorf("bad -labelmap entry %q", pair))
			}
			v, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				fatal(rt, err)
			}
			lm[kv[0]] = v
		}
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		fatal(rt, err)
	}
	defer f.Close() //dplint:ignore errdrop read-only file: a close error after successful reads cannot lose data
	d, err := dataset.FromCSV(f, dataset.CSVOptions{
		LabelColumn: *labelCol,
		HasHeader:   *hasHeader,
		LabelMap:    lm,
	})
	if err != nil {
		fatal(rt, err)
	}
	d.NormalizeRows()

	policy, err := dplearn.ParseDegradePolicy(*degrade)
	if err != nil {
		fatal(rt, err)
	}
	ctx, stop := obsglue.RunContext(*timeout)
	defer stop()

	var acct dplearn.Accountant
	acct.SetObserver(rt.Sink())
	if *budget > 0 {
		if err := acct.SetBudget(dplearn.Guarantee{Epsilon: *budget}); err != nil {
			fatal(rt, err)
		}
	}
	grid := learn.NewGrid(-*box, *box, d.Dim(), *gridPts)
	learner, err := dplearn.NewLearner(dplearn.Config{
		Loss:     learn.ZeroOneLoss{},
		Thetas:   grid.Thetas(),
		Epsilon:  *eps,
		Delta:    *delta,
		Acct:     &acct,
		Degrade:  policy,
		Parallel: parallel.Options{Obs: rt.Obs},
	})
	if err != nil {
		fatal(rt, err)
	}
	g := dplearn.NewRNG(*seed)

	fmt.Printf("loaded %d examples with %d features from %s\n", d.Len(), d.Dim(), *csvPath)
	for i := 0; i < *fits; i++ {
		fit, err := learner.FitCtx(ctx, d, g)
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// Graceful drain: the books are balanced; flush them and leave
			// with a non-zero status so scripts see the interruption.
			fmt.Fprintf(os.Stderr, "dplearn-train: fit %d/%d interrupted: %v\n", i+1, *fits, err)
			if cerr := rt.Close(os.Stderr); cerr != nil {
				fmt.Fprintf(os.Stderr, "dplearn-train: %v\n", cerr)
			}
			os.Exit(1)
		case errors.Is(err, dplearn.ErrBudgetExhausted):
			fatal(rt, fmt.Errorf("fit %d/%d refused: %w (retry with -degrade fallback|widen or a larger -budget)", i+1, *fits, err))
		default:
			fatal(rt, err)
		}
		if *fits > 1 {
			fmt.Printf("--- fit %d/%d ---\n", i+1, *fits)
		}
		if fit.Degraded {
			fmt.Printf("degraded: budget could not admit eps=%g; applied policy %s\n", *eps, fit.Policy)
		}
		fmt.Printf("predictor: %v\n", fit.Theta)
		fmt.Printf("training 0-1 error: %.4f\n", learn.ClassificationError(fit.Theta, d))
		c := fit.Certificate
		fmt.Printf("privacy certificate (Theorem 4.1): %s at lambda=%.4g\n", c.Privacy, c.Lambda)
		fmt.Printf("risk certificate (Theorem 3.1): true risk <= %.4f w.p. %.0f%%\n", c.RiskBound, 100*(1-c.Delta))
		fmt.Printf("posterior stats: E[emp risk]=%.4f, KL=%.4f nats\n", c.ExpEmpRisk, c.KL)
	}
	if err := rt.CrossCheck(&acct); err != nil {
		fatal(rt, err)
	}
	if *budget > 0 {
		spent := acct.BasicComposition()
		fmt.Printf("budget: spent eps=%.4g of %.4g across %d accounted release(s)\n", spent.Epsilon, *budget, acct.Count())
	}
	if err := rt.Close(os.Stderr); err != nil {
		fatal(nil, err)
	}
}

// fatal flushes the ledger (best effort) before exiting non-zero, so
// even a failed run leaves auditable books.
func fatal(rt *obsglue.Runtime, err error) {
	fmt.Fprintf(os.Stderr, "dplearn-train: %v\n", err)
	if cerr := rt.Close(os.Stderr); cerr != nil {
		fmt.Fprintf(os.Stderr, "dplearn-train: %v\n", cerr)
	}
	os.Exit(1)
}
