package dplearn

// Golden determinism test: the parallel fan-out engine promises
// bit-for-bit identical results for every Workers setting (see package
// parallel's determinism contract). This test runs the full pipeline —
// Fit, Certify, risk grid, and the Figure-1 information account
// (channel sums + Blahut–Arimoto capacity) — at several worker counts
// and compares every released float by its exact bit pattern.

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/serve"
)

// goldenRun is the bit-level snapshot of one pipeline execution.
type goldenRun struct {
	fitIndex int
	fitTheta []uint64
	risks    []uint64
	cert     []uint64
	account  []uint64
}

func float64Bits(vs ...float64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = math.Float64bits(v)
	}
	return out
}

func bitsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// goldenPipeline executes the full pipeline with the given worker count
// and snapshots every output. Each call rebuilds its own sample space
// and RNG, so runs are independent and comparable.
func goldenPipeline(t *testing.T, workers int) goldenRun {
	t.Helper()
	return goldenPipelineOpts(t, parallel.Options{Workers: workers})
}

// goldenPipelineOpts is goldenPipeline with full fan-out options, so the
// tracing test can attach an Observer and prove instrumentation never
// changes a single released bit.
func goldenPipelineOpts(t *testing.T, opts parallel.Options) goldenRun {
	t.Helper()
	n := 8
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	for _, d := range inputs {
		for i := range d.Examples {
			d.Examples[i].Y = d.Examples[i].X[0]
		}
	}
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	grid := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	learner, err := NewLearner(Config{
		Loss:     loss,
		Thetas:   grid,
		Epsilon:  2,
		Parallel: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := inputs[len(inputs)/2]
	fit, err := learner.Fit(train, NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := learner.Certify(train)
	if err != nil {
		t.Fatal(err)
	}
	est, err := learner.Estimator(n)
	if err != nil {
		t.Fatal(err)
	}
	risks := est.Risks(train)
	acct, err := learner.AccountInformation(inputs, logPX)
	if err != nil {
		t.Fatal(err)
	}
	return goldenRun{
		fitIndex: fit.Index,
		fitTheta: float64Bits(fit.Theta...),
		risks:    float64Bits(risks...),
		cert: float64Bits(cert.Privacy.Epsilon, cert.Lambda, cert.RiskBound,
			cert.Delta, cert.ExpEmpRisk, cert.KL),
		account: float64Bits(acct.MutualInformation, acct.Capacity,
			acct.DPCap, acct.ExpectedRisk),
	}
}

// TestGoldenDeterminismAcrossWorkers pins the determinism contract:
// Workers ∈ {1, 2, 7, GOMAXPROCS} must produce byte-identical fits,
// certificates, risk grids, and information accounts for a fixed seed.
func TestGoldenDeterminismAcrossWorkers(t *testing.T) {
	ref := goldenPipeline(t, 1)
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := goldenPipeline(t, workers)
		if got.fitIndex != ref.fitIndex {
			t.Errorf("workers=%d: fit index %d != %d", workers, got.fitIndex, ref.fitIndex)
		}
		if !bitsEqual(got.fitTheta, ref.fitTheta) {
			t.Errorf("workers=%d: fit theta bits differ", workers)
		}
		if !bitsEqual(got.risks, ref.risks) {
			t.Errorf("workers=%d: risk grid bits differ", workers)
		}
		if !bitsEqual(got.cert, ref.cert) {
			t.Errorf("workers=%d: certificate bits differ", workers)
		}
		if !bitsEqual(got.account, ref.account) {
			t.Errorf("workers=%d: information account bits differ", workers)
		}
	}
}

// TestGoldenDeterminismRepeatedRuns guards against hidden global state:
// the same configuration run twice (same worker count) must reproduce
// the exact bits, including through the risk cache (second Certify on a
// shared learner hits the cache; its certificate must equal the cold
// one bit-for-bit).
func TestGoldenDeterminismRepeatedRuns(t *testing.T) {
	a := goldenPipeline(t, 2)
	b := goldenPipeline(t, 2)
	if a.fitIndex != b.fitIndex || !bitsEqual(a.fitTheta, b.fitTheta) ||
		!bitsEqual(a.risks, b.risks) || !bitsEqual(a.cert, b.cert) ||
		!bitsEqual(a.account, b.account) {
		t.Fatal("identical configurations produced different bits")
	}

	n := 8
	inputs, _ := channel.CountSampleSpace(n, 0.5)
	for _, d := range inputs {
		for i := range d.Examples {
			d.Examples[i].Y = d.Examples[i].X[0]
		}
	}
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	learner, err := NewLearner(Config{
		Loss:    loss,
		Thetas:  [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}},
		Epsilon: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := inputs[len(inputs)/2]
	cold, err := learner.Certify(train)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := learner.Certify(train) // risk cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(
		float64Bits(cold.RiskBound, cold.ExpEmpRisk, cold.KL),
		float64Bits(warm.RiskBound, warm.ExpEmpRisk, warm.KL),
	) {
		t.Fatal("cached Certify differs from cold Certify")
	}
}

// TestGoldenDeterminismWithTracing pins the observability half of the
// determinism contract: running the full pipeline with a live Tracer,
// metrics Registry, and LogicalClock attached must reproduce the exact
// bits of the uninstrumented run — instrumentation observes, it never
// perturbs. It also checks the trace actually recorded something, so the
// test cannot pass vacuously with a disconnected observer.
func TestGoldenDeterminismWithTracing(t *testing.T) {
	ref := goldenPipeline(t, 4)
	var buf bytes.Buffer
	clock := &obs.LogicalClock{}
	o := &obs.Observer{
		Tracer:  obs.NewTracer(&buf, clock),
		Metrics: obs.NewRegistry(),
		Clock:   clock,
	}
	got := goldenPipelineOpts(t, parallel.Options{Workers: 4, Obs: o})
	if got.fitIndex != ref.fitIndex || !bitsEqual(got.fitTheta, ref.fitTheta) ||
		!bitsEqual(got.risks, ref.risks) || !bitsEqual(got.cert, ref.cert) ||
		!bitsEqual(got.account, ref.account) {
		t.Fatal("tracing changed released bits")
	}
	if buf.Len() == 0 {
		t.Fatal("observer attached but trace is empty")
	}
	if err := o.Tracer.Err(); err != nil {
		t.Fatalf("tracer error: %v", err)
	}
}

// ledgerRun drives a batch of concurrent spends through a shared
// accountant observed by a ledger, under the parallel engine with the
// given worker count, and returns both sides' composed guarantees.
func ledgerRun(workers int) (led *obs.Ledger, acct *mechanism.Accountant) {
	acct = &mechanism.Accountant{}
	led = obs.NewLedger(nil)
	acct.SetObserver(func(r mechanism.SpendRecord) {
		led.Record(obs.LedgerRecord{
			Seq:         r.Seq,
			Mechanism:   r.Meta.Mechanism,
			Sensitivity: r.Meta.Sensitivity,
			Epsilon:     r.Guarantee.Epsilon,
			Delta:       r.Guarantee.Delta,
			Outcomes:    r.Meta.Outcomes,
			Duration:    r.Meta.Duration,
			Span:        r.Meta.Span,
		})
	})
	// 101 spends with unequal ε values: Kahan-summing them in different
	// arrival orders WOULD give different low bits, so this detects any
	// regression to arrival-order composition.
	parallel.ForGrain(101, 1, parallel.Options{Workers: workers}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acct.SpendDetail(
				mechanism.Guarantee{Epsilon: 1e-3 * float64(i%7+1), Delta: 1e-9 * float64(i%3)},
				mechanism.SpendMeta{Mechanism: "laplace", Sensitivity: 1, Outcomes: 1},
			)
		}
	})
	return led, acct
}

// TestLedgerMatchesAccountantAcrossWorkers pins satellite invariants of
// the privacy ledger: for every worker count, the ledger holds exactly
// Accountant.Count() records, its canonical composed (ε, δ) equals
// Accountant.BasicComposition bit-for-bit, and the composed value is
// bit-identical between serial and 8-worker runs even though the spend
// arrival order differs.
func TestLedgerMatchesAccountantAcrossWorkers(t *testing.T) {
	_, refAcct := ledgerRun(1)
	refG := refAcct.BasicComposition()
	for _, workers := range []int{1, 8} {
		led, acct := ledgerRun(workers)
		if led.Len() != acct.Count() {
			t.Fatalf("workers=%d: ledger has %d records, accountant %d", workers, led.Len(), acct.Count())
		}
		le, ld := led.Composed()
		g := acct.BasicComposition()
		if !bitsEqual(float64Bits(le, ld), float64Bits(g.Epsilon, g.Delta)) {
			t.Errorf("workers=%d: ledger composed (%.17g, %.17g) != accountant (%.17g, %.17g)",
				workers, le, ld, g.Epsilon, g.Delta)
		}
		if !bitsEqual(float64Bits(g.Epsilon, g.Delta), float64Bits(refG.Epsilon, refG.Delta)) {
			t.Errorf("workers=%d: composed guarantee bits differ from serial run", workers)
		}
		// Seq numbers must be a permutation-free total order 0..n−1: the
		// records sorted by Seq carry each sequence number exactly once.
		for i, r := range led.Records() {
			if r.Seq != uint64(i) {
				t.Fatalf("workers=%d: record %d has seq %d", workers, i, r.Seq)
			}
		}
	}
}

// renderTable flattens a table to bytes for bit-level comparison.
func renderTable(t *testing.T, tab *experiments.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenDeterminismCheckpointResume extends the determinism contract
// to the checkpoint/resume path: an experiment run with a checkpoint
// log, then resumed from that log (recomputing nothing), must reproduce
// the plain run's table byte-for-byte — even when the resumed run uses a
// different worker count than the run that wrote the log.
func TestGoldenDeterminismCheckpointResume(t *testing.T) {
	opts := experiments.Options{Seed: 42, Quick: true, Workers: 1}
	ref, err := experiments.Run("E10", opts)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := renderTable(t, ref)

	path := filepath.Join(t.TempDir(), "E10.ndjson")
	ck, err := checkpoint.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ckOpts := opts
	ckOpts.Checkpoint = ck
	first, err := experiments.Run("E10", ckOpts)
	if err != nil {
		t.Fatal(err)
	}
	cells := ck.Len()
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if cells == 0 {
		t.Fatal("checkpointed run recorded no cells")
	}
	if !bytes.Equal(renderTable(t, first), refBytes) {
		t.Fatal("checkpointed run's table differs from the plain run")
	}

	ck2, err := checkpoint.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	resumed := opts
	resumed.Workers = 8
	resumed.Checkpoint = ck2
	second, err := experiments.Run("E10", resumed)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != cells {
		t.Fatalf("resume recomputed cells: log grew from %d to %d entries", cells, ck2.Len())
	}
	if !bytes.Equal(renderTable(t, second), refBytes) {
		t.Fatal("resumed run's table differs from the plain run")
	}
}

// budgetedLedgerRun drives concurrent two-phase spends against a
// budget-capped accountant under the parallel engine: each worker
// reserves, commits what the budget admits, and releases the rest.
func budgetedLedgerRun(workers int) (led *obs.Ledger, acct *mechanism.Accountant) {
	acct = &mechanism.Accountant{}
	if err := acct.SetBudget(mechanism.Guarantee{Epsilon: 0.05}); err != nil {
		panic(err)
	}
	led = obs.NewLedger(nil)
	acct.SetObserver(func(r mechanism.SpendRecord) {
		led.Record(obs.LedgerRecord{Seq: r.Seq, Mechanism: r.Meta.Mechanism,
			Epsilon: r.Guarantee.Epsilon, Delta: r.Guarantee.Delta})
	})
	parallel.ForGrain(101, 1, parallel.Options{Workers: workers}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res, err := acct.Reserve(mechanism.Guarantee{Epsilon: 1e-3 * float64(i%7+1)})
			if err != nil {
				continue // denied: the budget is the arbiter, not the schedule
			}
			res.Commit(mechanism.SpendMeta{Mechanism: "laplace", Sensitivity: 1, Outcomes: 1})
			res.Release() // no-op after Commit (the defer idiom)
		}
	})
	return led, acct
}

// TestBudgetedLedgerMatchesAccountant pins the budget-enforcement
// half of the ledger contract: with a cap that denies most of the
// concurrent reservations, every committed spend still lands in the
// ledger, the composed (ε, δ) matches Accountant.BasicComposition
// bit-for-bit, stays within the budget, and no reservation leaks.
// Which spends are admitted may differ between worker counts (admission
// is arrival-order under contention) — the invariants may not.
func TestBudgetedLedgerMatchesAccountant(t *testing.T) {
	for _, workers := range []int{1, 8} {
		led, acct := budgetedLedgerRun(workers)
		if led.Len() != acct.Count() {
			t.Fatalf("workers=%d: ledger has %d records, accountant %d", workers, led.Len(), acct.Count())
		}
		if acct.Count() == 0 {
			t.Fatalf("workers=%d: budget admitted nothing", workers)
		}
		if acct.Reserved() != 0 {
			t.Fatalf("workers=%d: %d reservation(s) leaked", workers, acct.Reserved())
		}
		le, ld := led.Composed()
		g := acct.BasicComposition()
		if !bitsEqual(float64Bits(le, ld), float64Bits(g.Epsilon, g.Delta)) {
			t.Errorf("workers=%d: ledger composed (%.17g, %.17g) != accountant (%.17g, %.17g)",
				workers, le, ld, g.Epsilon, g.Delta)
		}
		if g.Epsilon > 0.05 {
			t.Errorf("workers=%d: composed ε=%.17g exceeds the 0.05 budget", workers, g.Epsilon)
		}
		for i, r := range led.Records() {
			if r.Seq != uint64(i) {
				t.Fatalf("workers=%d: record %d has seq %d", workers, i, r.Seq)
			}
		}
	}
}

// recoveryMetrics scrapes /metrics and keeps the dplearn_serve_ and
// dplearn_wal_ families — the surface that must be a pure function of
// the WAL content, independent of the recovered server's worker count.
func recoveryMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var keep []string
	for _, line := range strings.Split(string(b), "\n") {
		if strings.Contains(line, "dplearn_serve_") || strings.Contains(line, "dplearn_wal_") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n") + "\n"
}

// TestRecoveryDeterminismAcrossWorkers builds one write-ahead privacy
// ledger — committed releases, a stranded reserve, and a torn final
// line, the full signature of a killed process — then recovers it at
// Workers=1 and Workers=8. Recovery replay is single-threaded by
// construction, so both boots must rebuild the identical accountant
// state (composition compared by bit pattern) and expose byte-identical
// dplearn_serve_ / dplearn_wal_ metric families.
func TestRecoveryDeterminismAcrossWorkers(t *testing.T) {
	tenants := []serve.TenantConfig{
		{ID: "alpha", Budget: mechanism.Guarantee{Epsilon: 8}},
		{ID: "beta", Budget: mechanism.Guarantee{Epsilon: 4}},
	}
	freshObs := func() *obs.Observer {
		return &obs.Observer{Metrics: obs.NewRegistry(), Clock: &obs.LogicalClock{}}
	}
	post := func(ts *httptest.Server, path string, payload any, key string) (*http.Response, []byte) {
		t.Helper()
		b, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	// Phase 1: write the WAL with a fixed request script.
	seedDir := t.TempDir()
	s, err := serve.New(serve.Config{Tenants: tenants, Observer: freshObs(), WALDir: seedDir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	data := serve.DataJSON{X: [][]float64{{0.2, -0.4}, {-0.6, 0.8}, {0.1, 0.3}, {0.5, -0.9}},
		Y: []float64{1, -1, 1, -1}}
	for i, tenant := range []string{"alpha", "beta", "alpha"} {
		resp, body := post(ts, "/v1/fit", serve.FitRequest{Tenant: tenant, Seed: int64(20 + i), Data: data},
			"det-"+tenant+string(rune('0'+i)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fit %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
	}
	if resp, body := post(ts, "/v1/summary", serve.SummaryRequest{Tenant: "beta", Seed: 5, Feature: 0,
		Lo: -1, Hi: 1, Quantiles: []float64{0.5}, Epsilon: 0.25, Data: data}, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: HTTP %d: %s", resp.StatusCode, body)
	}
	ts.Close()
	s.CloseWALs()

	// A killed writer leaves work in flight: a stranded reserve and a
	// torn final line, both of which recovery must settle identically.
	alphaWAL := filepath.Join(seedDir, "alpha.wal")
	f, err := os.OpenFile(alphaWAL, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"reserve","lsn":9999,"key":"stranded","endpoint":"fit","seed":77,"epsilon":0.5}` + "\n" +
		`{"op":"commit","lsn":10000,"ref":9999,"charges":[{"eps`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	seedWALs := map[string][]byte{}
	for _, id := range []string{"alpha", "beta"} {
		b, err := os.ReadFile(filepath.Join(seedDir, id+".wal"))
		if err != nil {
			t.Fatal(err)
		}
		seedWALs[id] = b
	}

	// Phase 2: recover the identical WAL bytes at each worker count.
	type recovered struct {
		comp    map[string][]uint64
		metrics string
	}
	runs := map[int]recovered{}
	for _, workers := range []int{1, 8} {
		dir := t.TempDir()
		for id, b := range seedWALs {
			if err := os.WriteFile(filepath.Join(dir, id+".wal"), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		s, err := serve.New(serve.Config{Tenants: tenants, Observer: freshObs(), WALDir: dir, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: recovery boot: %v", workers, err)
		}
		ts := httptest.NewServer(s.Handler())
		r := recovered{comp: map[string][]uint64{}, metrics: recoveryMetrics(t, ts.URL)}
		for _, tn := range s.Tenants().Tenants() {
			g := tn.Acct.BasicComposition()
			r.comp[tn.ID] = float64Bits(g.Epsilon, g.Delta)
			if tn.Acct.Count() == 0 {
				t.Fatalf("workers=%d: tenant %s recovered nothing", workers, tn.ID)
			}
			if err := tn.CrossCheck(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
		for _, rep := range s.RecoveryReports() {
			if rep.Tenant == "alpha" && rep.Unsettled != 1 {
				t.Fatalf("workers=%d: alpha recovery settled %d stranded reserve(s), want 1", workers, rep.Unsettled)
			}
		}
		ts.Close()
		s.CloseWALs()
		runs[workers] = r
	}

	ref := runs[1]
	got := runs[8]
	for id, want := range ref.comp {
		if !bitsEqual(got.comp[id], want) {
			t.Errorf("tenant %s: recovered composition bits differ between Workers=1 and Workers=8", id)
		}
	}
	if ref.metrics != got.metrics {
		t.Errorf("recovered metric families differ between Workers=1 and Workers=8:\n--- workers=1\n%s\n--- workers=8\n%s",
			ref.metrics, got.metrics)
	}
}
