package dplearn

// Golden determinism test: the parallel fan-out engine promises
// bit-for-bit identical results for every Workers setting (see package
// parallel's determinism contract). This test runs the full pipeline —
// Fit, Certify, risk grid, and the Figure-1 information account
// (channel sums + Blahut–Arimoto capacity) — at several worker counts
// and compares every released float by its exact bit pattern.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/channel"
	"repro/internal/learn"
	"repro/internal/parallel"
)

// goldenRun is the bit-level snapshot of one pipeline execution.
type goldenRun struct {
	fitIndex int
	fitTheta []uint64
	risks    []uint64
	cert     []uint64
	account  []uint64
}

func float64Bits(vs ...float64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = math.Float64bits(v)
	}
	return out
}

func bitsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// goldenPipeline executes the full pipeline with the given worker count
// and snapshots every output. Each call rebuilds its own sample space
// and RNG, so runs are independent and comparable.
func goldenPipeline(t *testing.T, workers int) goldenRun {
	t.Helper()
	n := 8
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	for _, d := range inputs {
		for i := range d.Examples {
			d.Examples[i].Y = d.Examples[i].X[0]
		}
	}
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	grid := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	learner, err := NewLearner(Config{
		Loss:     loss,
		Thetas:   grid,
		Epsilon:  2,
		Parallel: parallel.Options{Workers: workers},
	})
	if err != nil {
		t.Fatal(err)
	}
	train := inputs[len(inputs)/2]
	fit, err := learner.Fit(train, NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	cert, err := learner.Certify(train)
	if err != nil {
		t.Fatal(err)
	}
	est, err := learner.Estimator(n)
	if err != nil {
		t.Fatal(err)
	}
	risks := est.Risks(train)
	acct, err := learner.AccountInformation(inputs, logPX)
	if err != nil {
		t.Fatal(err)
	}
	return goldenRun{
		fitIndex: fit.Index,
		fitTheta: float64Bits(fit.Theta...),
		risks:    float64Bits(risks...),
		cert: float64Bits(cert.Privacy.Epsilon, cert.Lambda, cert.RiskBound,
			cert.Delta, cert.ExpEmpRisk, cert.KL),
		account: float64Bits(acct.MutualInformation, acct.Capacity,
			acct.DPCap, acct.ExpectedRisk),
	}
}

// TestGoldenDeterminismAcrossWorkers pins the determinism contract:
// Workers ∈ {1, 2, 7, GOMAXPROCS} must produce byte-identical fits,
// certificates, risk grids, and information accounts for a fixed seed.
func TestGoldenDeterminismAcrossWorkers(t *testing.T) {
	ref := goldenPipeline(t, 1)
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := goldenPipeline(t, workers)
		if got.fitIndex != ref.fitIndex {
			t.Errorf("workers=%d: fit index %d != %d", workers, got.fitIndex, ref.fitIndex)
		}
		if !bitsEqual(got.fitTheta, ref.fitTheta) {
			t.Errorf("workers=%d: fit theta bits differ", workers)
		}
		if !bitsEqual(got.risks, ref.risks) {
			t.Errorf("workers=%d: risk grid bits differ", workers)
		}
		if !bitsEqual(got.cert, ref.cert) {
			t.Errorf("workers=%d: certificate bits differ", workers)
		}
		if !bitsEqual(got.account, ref.account) {
			t.Errorf("workers=%d: information account bits differ", workers)
		}
	}
}

// TestGoldenDeterminismRepeatedRuns guards against hidden global state:
// the same configuration run twice (same worker count) must reproduce
// the exact bits, including through the risk cache (second Certify on a
// shared learner hits the cache; its certificate must equal the cold
// one bit-for-bit).
func TestGoldenDeterminismRepeatedRuns(t *testing.T) {
	a := goldenPipeline(t, 2)
	b := goldenPipeline(t, 2)
	if a.fitIndex != b.fitIndex || !bitsEqual(a.fitTheta, b.fitTheta) ||
		!bitsEqual(a.risks, b.risks) || !bitsEqual(a.cert, b.cert) ||
		!bitsEqual(a.account, b.account) {
		t.Fatal("identical configurations produced different bits")
	}

	n := 8
	inputs, _ := channel.CountSampleSpace(n, 0.5)
	for _, d := range inputs {
		for i := range d.Examples {
			d.Examples[i].Y = d.Examples[i].X[0]
		}
	}
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	learner, err := NewLearner(Config{
		Loss:    loss,
		Thetas:  [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}},
		Epsilon: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := inputs[len(inputs)/2]
	cold, err := learner.Certify(train)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := learner.Certify(train) // risk cache hit
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(
		float64Bits(cold.RiskBound, cold.ExpEmpRisk, cold.KL),
		float64Bits(warm.RiskBound, warm.ExpEmpRisk, warm.KL),
	) {
		t.Fatal("cached Certify differs from cold Certify")
	}
}
