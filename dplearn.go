// Package dplearn is a Go reproduction of "Differentially-private
// Learning and Information Theory" (Darakhshan Mir, PAIS/EDBT 2012).
//
// The paper identifies the Gibbs posterior that minimizes PAC-Bayesian
// generalization bounds with McSherry–Talwar's exponential mechanism, and
// recasts differentially-private learning as the design of an information
// channel from the training sample to the released predictor that
// minimizes empirical risk regularized by mutual information. This
// package re-exports the user-facing API assembled from the internal
// subsystems:
//
//   - Learner / Config / Fitted / Certificate — private learning with
//     privacy (Theorem 4.1) and PAC-Bayes risk (Theorem 3.1) certificates
//     (internal/core).
//   - The DP mechanism family (internal/mechanism), the Gibbs estimator
//     (internal/gibbs), PAC-Bayes bounds (internal/pacbayes), the exact
//     Figure-1 information channel (internal/channel), the privacy
//     auditor (internal/audit), and the experiment suite regenerating
//     every validated table (internal/experiments).
//
// # Quickstart
//
//	grid := learn.NewGrid(-2, 2, 1, 17)
//	l, err := dplearn.NewLearner(dplearn.Config{
//		Loss:    learn.ZeroOneLoss{},
//		Thetas:  grid.Thetas(),
//		Epsilon: 1.0,
//	})
//	fit, err := l.Fit(trainingData, rng.New(42))
//	// fit.Theta is the private predictor;
//	// fit.Certificate.Privacy is exactly 1.0-DP (Theorem 4.1);
//	// fit.Certificate.RiskBound bounds its true risk w.p. 0.95 (Theorem 3.1).
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md
// for the reproduction results.
package dplearn

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// Accountant composes the privacy cost of repeated releases on the same
// data. See mechanism.Accountant.
type Accountant = mechanism.Accountant

// Config configures a private learner. See core.Config. Config.Parallel
// sets the worker fan-out for the learner's hot paths (risk grids,
// channel sums); results are bit-identical for every worker count. The
// Learner additionally memoizes risk vectors by dataset fingerprint, so
// Fit + Certify + AccountInformation on the same data evaluate the
// O(|Θ|·n) risk grid once.
type Config = core.Config

// Learner is a configured private learner. See core.Learner.
type Learner = core.Learner

// Fitted is the outcome of a private fit. See core.Fitted.
type Fitted = core.Fitted

// Certificate bundles the privacy and risk guarantees of a fit.
// See core.Certificate.
type Certificate = core.Certificate

// InformationAccount reports the exact leakage of a learner's channel.
// See core.InformationAccount.
type InformationAccount = core.InformationAccount

// DensityEstimate is a piecewise-constant density. See core.DensityEstimate.
type DensityEstimate = core.DensityEstimate

// PrivateSummary is an ε-DP release of one feature's basic statistics.
// See core.PrivateSummary.
type PrivateSummary = core.PrivateSummary

// SummaryConfig configures a PrivateSummary release. See core.SummaryConfig.
type SummaryConfig = core.SummaryConfig

// Dataset re-exports the sample abstraction.
type Dataset = dataset.Dataset

// Example re-exports a single record Z = (X, Y).
type Example = dataset.Example

// Guarantee is a differential-privacy price tag (ε, δ). See
// mechanism.Guarantee.
type Guarantee = mechanism.Guarantee

// DegradePolicy selects what Fit does when the accountant's budget
// cannot admit the planned release. See core.DegradePolicy.
type DegradePolicy = core.DegradePolicy

// The degrade policies: refuse the fit, re-release the cached
// predictor, or widen the posterior to the remaining budget.
const (
	DegradeRefuse   = core.DegradeRefuse
	DegradeFallback = core.DegradeFallback
	DegradeWiden    = core.DegradeWiden
)

// ParseDegradePolicy parses the CLI spelling of a DegradePolicy
// (refuse|fallback|widen). See core.ParseDegradePolicy.
func ParseDegradePolicy(s string) (DegradePolicy, error) { return core.ParseDegradePolicy(s) }

// ErrBadConfig is returned for invalid learner configuration.
var ErrBadConfig = core.ErrBadConfig

// ErrBudgetExhausted reports a release denied by the accountant's
// budget. See mechanism.ErrBudgetExhausted.
var ErrBudgetExhausted = mechanism.ErrBudgetExhausted

// ErrNonFiniteInput reports NaN/Inf dataset values or risks, rejected
// before any ε is spent. See core.ErrNonFiniteInput.
var ErrNonFiniteInput = core.ErrNonFiniteInput

// NewLearner validates a Config and returns a Learner.
func NewLearner(cfg Config) (*Learner, error) { return core.NewLearner(cfg) }

// NewRNG returns a deterministic random source for Fit and the samplers.
func NewRNG(seed int64) *rng.RNG { return rng.New(seed) }

// PrivateHistogramDensity releases an ε-DP histogram density (Laplace
// mechanism + post-processing), registering the spent ε with acct (nil to
// skip accounting). See core.PrivateHistogramDensity.
func PrivateHistogramDensity(d *Dataset, j, bins int, lo, hi, epsilon float64, acct *Accountant, g *rng.RNG) (*DensityEstimate, error) { //dplint:ignore epscheck thin wrapper: core.PrivateHistogramDensity validates epsilon before use
	return core.PrivateHistogramDensity(d, j, bins, lo, hi, epsilon, acct, g)
}

// GibbsHistogramDensity selects a histogram density by the exponential
// mechanism, registering the spent ε with acct (nil to skip accounting).
// See core.GibbsHistogramDensity.
func GibbsHistogramDensity(d *Dataset, j int, binChoices []int, lo, hi, clip, epsilon float64, acct *Accountant, g *rng.RNG) (*DensityEstimate, int, error) { //dplint:ignore epscheck thin wrapper: core.GibbsHistogramDensity validates epsilon before use
	return core.GibbsHistogramDensity(d, j, binChoices, lo, hi, clip, epsilon, acct, g)
}

// ReleaseSummary computes an ε-DP summary of one feature.
// See core.ReleaseSummary.
func ReleaseSummary(d *Dataset, cfg SummaryConfig, g *rng.RNG) (*PrivateSummary, error) {
	return core.ReleaseSummary(d, cfg, g)
}
