package dplearn

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/learn"
)

func TestFacadeEndToEnd(t *testing.T) {
	g := NewRNG(1)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	train := model.Generate(200, g)
	grid := learn.NewGrid(-2, 2, 1, 9)
	l, err := NewLearner(Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := l.Fit(train, g)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Certificate.Privacy.Epsilon != 2 {
		t.Errorf("privacy = %v", fit.Certificate.Privacy)
	}
	if len(fit.Theta) != 1 {
		t.Errorf("theta = %v", fit.Theta)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewLearner(Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("expected ErrBadConfig, got %v", err)
	}
}

func TestFacadeDensity(t *testing.T) {
	g := NewRNG(3)
	mix := dataset.GaussianMixture{Means: []float64{0}, Sigmas: []float64{1}, Weights: []float64{1}}
	d := mix.Generate(1000, g)
	dens, err := PrivateHistogramDensity(d, 0, 16, -4, 4, 1, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if dens.At(0) <= dens.At(3.5) {
		t.Error("density should peak near the mode")
	}
	gd, bins, err := GibbsHistogramDensity(d, 0, []int{8, 16, 32}, -4, 4, 10, 2, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if bins != 8 && bins != 16 && bins != 32 {
		t.Errorf("bins = %d", bins)
	}
	if gd.At(0) <= 0 {
		t.Error("smoothed density must be positive on support")
	}
}
