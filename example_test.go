package dplearn_test

import (
	"fmt"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/learn"
)

// Example is the package-level quickstart: privately fit a classifier and
// read off both certificates.
func Example() {
	g := dplearn.NewRNG(42)
	train := dataset.LogisticModel{Weights: []float64{3}}.Generate(400, g)
	grid := learn.NewGrid(-2, 2, 1, 17)

	learner, err := dplearn.NewLearner(dplearn.Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: 1.0,
	})
	if err != nil {
		panic(err)
	}
	fit, err := learner.Fit(train, g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("privacy: %s\n", fit.Certificate.Privacy)
	fmt.Printf("risk bound below 1: %v\n", fit.Certificate.RiskBound < 1)
	fmt.Printf("predictor dimension: %d\n", len(fit.Theta))
	// Output:
	// privacy: 1-DP
	// risk bound below 1: true
	// predictor dimension: 1
}
