// continuoustheta demonstrates the Gibbs estimator over a CONTINUOUS
// predictor space — the setting where McSherry–Talwar's exponential
// mechanism is defined via a base measure but is "not always
// computationally efficient". We sample the continuous Gibbs density with
// random-walk Metropolis–Hastings and with MALA, check their agreement
// against a fine-grid exact computation, and report mixing diagnostics.
package main

import (
	"fmt"
	"log"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mathx"
)

func main() {
	g := dplearn.NewRNG(23)

	// Private 1-D regression: y = 0.8·x + noise, clipped squared loss.
	model := dataset.LinearModel{Weights: []float64{0.8}, Noise: 0.2}
	train := model.Generate(300, g)
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, 4)
	epsilon := 2.0
	lambda := gibbs.LambdaForEpsilon(epsilon, loss, train.Len())
	fmt.Printf("privacy budget eps = %.1f  =>  lambda = eps*n/(2M) = %.4g (Theorem 4.1)\n\n", epsilon, lambda)

	// Exact reference on a fine grid.
	fineAxis := mathx.Linspace(-2, 2, 2001)
	fine := make([][]float64, len(fineAxis))
	for i, v := range fineAxis {
		fine[i] = []float64{v}
	}
	exact, err := gibbs.New(loss, fine, nil, lambda)
	if err != nil {
		log.Fatal(err)
	}
	ref := exact.PosteriorMeanTheta(train)[0]
	fmt.Printf("exact posterior mean (2001-point grid): %.4f (truth 0.8)\n\n", ref)

	// Continuous samplers on the same unnormalized density.
	target := gibbs.ContinuousTarget(loss, train, lambda, gibbs.BoxLogPrior(-2, 2))
	report := func(name string, samples [][]float64, rate float64) {
		var w mathx.Welford
		chain := make([]float64, len(samples))
		for i, x := range samples {
			w.Add(x[0])
			chain[i] = x[0]
		}
		fmt.Printf("%-22s mean=%.4f  |err|=%.4f  accept=%.2f  ESS=%.0f/%d\n",
			name, w.Mean(), abs(w.Mean()-ref), rate, gibbs.EffectiveSampleSize(chain), len(chain))
	}

	mh := &gibbs.MHSampler{LogTarget: target, Step: 0.05}
	s1, r1, err := mh.Run([]float64{0}, 3000, 8000, 2, g)
	if err != nil {
		log.Fatal(err)
	}
	report("random-walk MH", s1, r1)

	mala := &gibbs.MALASampler{LogTarget: target, Tau: 0.04}
	s2, r2, err := mala.Run([]float64{0}, 3000, 8000, 2, g)
	if err != nil {
		log.Fatal(err)
	}
	report("MALA", s2, r2)

	fmt.Println("\nboth chains target the same exponential-mechanism density, so any")
	fmt.Println("single released draw inherits the eps-DP certificate of Theorem 4.1")
	fmt.Println("(up to MCMC convergence error — which the diagnostics above quantify).")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
