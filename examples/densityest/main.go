// densityest demonstrates the paper's future-work direction (Section 5):
// differentially-private density estimation, comparing the
// Laplace-histogram release with the Gibbs-selected histogram against the
// true mixture density.
package main

import (
	"fmt"
	"log"
	"strings"

	dplearn "repro"
	"repro/internal/dataset"
)

func main() {
	g := dplearn.NewRNG(19)
	mix := dataset.GaussianMixture{
		Means:   []float64{-1.2, 1.2},
		Sigmas:  []float64{0.4, 0.6},
		Weights: []float64{1, 1.5},
	}
	d := mix.Generate(3000, g)
	lo, hi := -4.0, 4.0
	eps := 1.0

	acct := &dplearn.Accountant{}
	lap, err := dplearn.PrivateHistogramDensity(d, 0, 32, lo, hi, eps, acct, g)
	if err != nil {
		log.Fatal(err)
	}
	gibbsDens, bins, err := dplearn.GibbsHistogramDensity(d, 0, []int{8, 16, 32, 64}, lo, hi, 10, eps, acct, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d records, eps=%.1f; Gibbs selected %d bins\n", d.Len(), eps, bins)
	fmt.Printf("total budget spent on this data (basic composition over %d releases): %s\n\n",
		acct.Count(), acct.BasicComposition())
	fmt.Println("   x     true     laplace  gibbs    sketch (laplace)")
	for x := -3.5; x <= 3.51; x += 0.5 {
		lv := lap.At(x)
		fmt.Printf("%+5.1f   %.4f   %.4f   %.4f   %s\n",
			x, mix.Density(x), lv, gibbsDens.At(x), strings.Repeat("#", int(lv*60)))
	}
	fmt.Println("\nboth private estimates track the bimodal shape; the Laplace release is")
	fmt.Println("eps-DP by Theorem 2.1 + post-processing, the Gibbs selection by Theorem 2.2.")
}
