// localfrequency demonstrates LOCAL differential privacy: every record
// randomizes itself (k-ary randomized response / optimized unary
// encoding) before leaving its owner, so no trusted curator is needed —
// each individual passes through their own Figure-1 channel. The
// aggregator then debiases the noisy reports into frequency estimates.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/infotheory"
	"repro/internal/localdp"
	"repro/internal/rng"
)

func main() {
	g := rng.New(37)
	k := 6
	labels := []string{"A", "B", "C", "D", "E", "F"}
	truth := []float64{0.34, 0.26, 0.18, 0.12, 0.07, 0.03}
	n := 50_000
	eps := 1.5

	values := make([]int, n)
	for i := range values {
		values[i] = g.Categorical(truth)
	}

	krr, err := localdp.NewKRR(k, eps)
	if err != nil {
		log.Fatal(err)
	}
	reports := make([]int, n)
	for i, v := range values {
		reports[i] = krr.Perturb(v, g)
	}
	estKRR, err := krr.EstimateFrequencies(reports)
	if err != nil {
		log.Fatal(err)
	}

	oue, err := localdp.NewOUE(k, eps)
	if err != nil {
		log.Fatal(err)
	}
	bitReports := make([][]bool, n)
	for i, v := range values {
		bitReports[i] = oue.Perturb(v, g)
	}
	estOUE, err := oue.EstimateFrequencies(bitReports)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("local DP frequency estimation: n=%d records, each report %.1f-LDP\n\n", n, eps)
	fmt.Println("value  true     KRR est  OUE est  sketch(true)")
	for v := 0; v < k; v++ {
		fmt.Printf("%5s  %.4f   %.4f   %.4f  %s\n",
			labels[v], truth[v], estKRR[v], estOUE[v], strings.Repeat("#", int(truth[v]*60)))
	}

	// Per-record leakage analysis of the KRR channel (Figure 1 per user).
	w := krr.Channel()
	capShannon, _, err := infotheory.BlahutArimoto(w, 1e-9, 20000)
	if err != nil {
		log.Fatal(err)
	}
	capMinEnt, err := infotheory.MinEntropyCapacity(w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-record channel leakage caps: Shannon capacity %.4f nats, min-entropy capacity %.4f nats (both <= eps = %.2f)\n",
		capShannon, capMinEnt, eps)
	fmt.Printf("truth-telling probability: %.3f\n", krr.TruthProbability())
}
