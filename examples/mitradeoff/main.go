// mitradeoff sweeps the privacy level of a Gibbs learner and prints the
// exact mutual information I(Ẑ;θ) of the induced Figure-1 channel
// against the channel-expected risk — the paper's central
// privacy-as-information-minimization tradeoff (Section 4).
package main

import (
	"fmt"
	"log"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/infotheory"
	"repro/internal/mathx"
)

// meanLoss is the bounded mean-estimation loss (θ − x)² on binary records.
type meanLoss struct{}

func (meanLoss) Loss(theta []float64, e dataset.Example) float64 {
	d := theta[0] - e.X[0]
	return d * d
}
func (meanLoss) Bound() float64 { return 1 }
func (meanLoss) Name() string   { return "mean-squared(binary)" }

func main() {
	n := 12
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	axis := mathx.Linspace(0, 1, 9)
	thetas := make([][]float64, len(axis))
	for i, v := range axis {
		thetas[i] = []float64{v}
	}

	fmt.Printf("Gibbs mean estimation over Binomial(%d, 0.5) samples, |Theta| = %d\n\n", n, len(axis))
	fmt.Println("eps/rec  lambda   I(Z;theta) bits  E[risk]   objective E[risk]+I/lambda")
	for _, eps := range []float64{0.05, 0.2, 0.8, 3.2, 12.8} {
		lambda := gibbs.LambdaForEpsilon(eps, meanLoss{}, n)
		est, err := gibbs.New(meanLoss{}, thetas, nil, lambda)
		if err != nil {
			log.Fatal(err)
		}
		ch, err := channel.FromMechanism(inputs, logPX, est)
		if err != nil {
			log.Fatal(err)
		}
		mi, err := ch.MutualInformation()
		if err != nil {
			log.Fatal(err)
		}
		risks := make([][]float64, len(inputs))
		for i, d := range inputs {
			risks[i] = est.Risks(d)
		}
		expRisk, err := ch.ExpectedValue(risks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.3g %-8.4g %-16.4f %-9.4f %.4f\n",
			eps, lambda, infotheory.Nats2Bits(mi), expRisk, expRisk+mi/lambda)
	}
	fmt.Println("\nexpected shape: as eps grows, leakage I rises and risk falls — the")
	fmt.Println("tradeoff of Section 4, with the privacy level weighing the MI term.")
}
