// privatelogit compares four learners on differentially-private logistic
// classification — the scenario the paper's introduction motivates via
// Chaudhuri et al.: non-private ERM, the Gibbs estimator (the paper's
// mechanism), output perturbation, and objective perturbation, across a
// sweep of privacy budgets.
package main

import (
	"fmt"
	"log"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
)

func main() {
	g := dplearn.NewRNG(7)
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0}
	train := model.Generate(1500, g).NormalizeRows()
	test := model.Generate(6000, g).NormalizeRows()
	grid := learn.NewGrid(-2, 2, 2, 17)
	lambdaReg := 0.01
	gd := learn.GDOptions{MaxIter: 400}
	const reps = 20

	erm, err := learn.LogisticRegression(train, lambdaReg, gd)
	if err != nil && err != learn.ErrNotConverged {
		log.Fatal(err)
	}
	fmt.Printf("non-private ERM test error: %.4f (Bayes error ≈ %.4f)\n\n",
		learn.ClassificationError(erm, test), model.BayesError(20000, g))
	fmt.Println("eps     gibbs   output-pert  objective-pert")

	for _, eps := range []float64{0.05, 0.2, 0.8, 3.2} {
		learner, err := dplearn.NewLearner(dplearn.Config{
			Loss:    learn.ZeroOneLoss{},
			Thetas:  grid.Thetas(),
			Epsilon: eps,
		})
		if err != nil {
			log.Fatal(err)
		}
		var gibbsErr, outErr, objErr mathx.Welford
		for r := 0; r < reps; r++ {
			fit, err := learner.Fit(train, g)
			if err != nil {
				log.Fatal(err)
			}
			gibbsErr.Add(learn.ClassificationError(fit.Theta, test))

			thOut, err := learn.OutputPerturbationLogistic(train, lambdaReg, eps, gd, g)
			if err != nil {
				log.Fatal(err)
			}
			outErr.Add(learn.ClassificationError(thOut, test))

			thObj, err := learn.ObjectivePerturbationLogistic(train, lambdaReg, eps, gd, g)
			if err != nil {
				log.Fatal(err)
			}
			objErr.Add(learn.ClassificationError(thObj, test))
		}
		fmt.Printf("%-7.3g %-7.4f %-12.4f %-7.4f\n", eps, gibbsErr.Mean(), outErr.Mean(), objErr.Mean())
	}
	fmt.Println("\nexpected shape: all methods approach the non-private error as eps grows;")
	fmt.Println("gibbs and objective perturbation degrade more gracefully than output perturbation at small eps.")
}
