// privatemedian demonstrates the exponential mechanism (Theorem 2.2) on
// private median selection, including its exact output distribution and
// an exact privacy audit on a neighbor pair — the mechanism the paper
// identifies with the Gibbs estimator.
package main

import (
	"fmt"
	"log"
	"math"

	dplearn "repro"
	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
)

func main() {
	g := dplearn.NewRNG(11)

	// 101 incomes (bounded to [0, 1] after scaling), true median ≈ 0.45.
	d := &dataset.Dataset{}
	for i := 0; i < 101; i++ {
		d.Append(dataset.Example{X: []float64{mathx.Clamp(g.Normal(0.45, 0.12), 0, 1)}})
	}

	grid := mathx.Linspace(0, 1, 21)
	eps := 2.0
	m, candidates, err := mechanism.PrivateMedian(0, grid, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy guarantee (Theorem 2.2): %s\n", m.Guarantee())
	fmt.Printf("utility guarantee: quality within %.3f of optimal w.p. 95%%\n\n", m.UtilityBound(0.05))

	// Exact output distribution (the channel row for this dataset).
	logp := m.LogProbabilities(d)
	fmt.Println("candidate  P(selected)")
	for i, c := range candidates {
		p := math.Exp(logp[i])
		if p > 0.01 {
			fmt.Printf("%9.2f  %.4f\n", c, p)
		}
	}

	// Sample a few private medians, accounting each release.
	acct := &mechanism.Accountant{}
	fmt.Print("\nfive private releases: ")
	for i := 0; i < 5; i++ {
		fmt.Printf("%.2f ", candidates[m.Release(d, g)])
		acct.Spend(m.Guarantee())
	}
	fmt.Println()
	fmt.Printf("budget spent across them (basic composition): %s\n", acct.BasicComposition())

	// Exact audit against a neighbor.
	nb := d.ReplaceOne(0, dataset.Example{X: []float64{0.99}})
	realized := audit.ExactEpsilon(m.LogProbabilities(d), m.LogProbabilities(nb))
	fmt.Printf("\nexact realized privacy loss vs one neighbor: %.4f (budget %.4f)\n",
		realized, m.Guarantee().Epsilon)
}
