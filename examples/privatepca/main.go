// privatepca demonstrates differentially-private principal component
// analysis by symmetric input perturbation: the second-moment matrix of
// row-normalized data is perturbed with symmetric Laplace noise and
// eigendecomposed — the released subspace is ε-DP by post-processing.
package main

import (
	"fmt"
	"log"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
)

func main() {
	g := dplearn.NewRNG(41)

	// Data concentrated along one direction in R³, scaled into the unit
	// ball (required for the sensitivity calibration).
	dir := []float64{3, 1, 0.2}
	dirNorm := mathx.L2Norm(dir)
	d := &dataset.Dataset{}
	for i := 0; i < 4000; i++ {
		s := g.Normal(0, 0.5)
		x := make([]float64, 3)
		for j := range x {
			x[j] = s*dir[j]/dirNorm + g.Normal(0, 0.05)
		}
		d.Append(dataset.Example{X: x})
	}
	d.NormalizeRows()

	exact, err := learn.PCA(d)
	if err != nil {
		log.Fatal(err)
	}
	trueC := learn.SecondMomentMatrix(d)
	fmt.Printf("exact eigenvalues: %.4f %.4f %.4f\n", exact.Values[0], exact.Values[1], exact.Values[2])
	fmt.Printf("exact top-1 captured variance: %.4f\n\n", learn.CapturedVariance(trueC, exact.Components, 1))

	fmt.Println("eps    private top-1 captured  vs exact")
	for _, eps := range []float64{0.1, 0.5, 2, 10} {
		var w mathx.Welford
		for r := 0; r < 20; r++ {
			priv, err := learn.PrivatePCA(d, eps, g)
			if err != nil {
				log.Fatal(err)
			}
			w.Add(learn.CapturedVariance(trueC, priv.Components, 1))
		}
		exactVar := learn.CapturedVariance(trueC, exact.Components, 1)
		fmt.Printf("%-6.2g %-24.4f %.1f%%\n", eps, w.Mean(), 100*w.Mean()/exactVar)
	}
	fmt.Println("\nthe private subspace approaches the exact one as eps grows; the release")
	fmt.Println("is eps-DP because eigendecomposition is post-processing of a Laplace release.")
}
