// privatesummary releases an ε-DP statistical summary of a sensitive
// numeric column — the "statistical database" scenario the paper's
// introduction opens with — using the full mechanism family with an
// explicit budget split: Laplace for count and mean, the exponential
// mechanism for quantiles, and a noised histogram.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func main() {
	g := rng.New(31)

	// Sensitive data: 2000 "incomes" in [0, 1] (scaled), right-skewed.
	d := &dataset.Dataset{}
	for i := 0; i < 2000; i++ {
		v := g.Beta(2, 5)
		d.Append(dataset.Example{X: []float64{v}})
	}

	eps := 4.0
	s, err := core.ReleaseSummary(d, core.SummaryConfig{
		Feature:   0,
		Lo:        0,
		Hi:        1,
		Bins:      12,
		Quantiles: []float64{0.1, 0.5, 0.9},
		Epsilon:   eps,
	}, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("private summary at total budget %s (split across parts):\n\n", s.Spent)
	fmt.Printf("  count  ≈ %.0f  (true %d)\n", s.Count, d.Len())
	trueMean := mathx.SumSlice(d.Feature(0)) / float64(d.Len())
	fmt.Printf("  mean   ≈ %.4f (true %.4f)\n", s.Mean, trueMean)
	ps := make([]float64, 0, len(s.Quantiles))
	for p := range s.Quantiles {
		ps = append(ps, p)
	}
	sort.Float64s(ps)
	for _, p := range ps {
		fmt.Printf("  q%.0f%%   ≈ %.4f\n", p*100, s.Quantiles[p])
	}
	fmt.Println("\n  histogram (normalized, noised):")
	for i, v := range s.Histogram {
		lo := s.Lo + float64(i)*(s.Hi-s.Lo)/float64(len(s.Histogram))
		fmt.Printf("  [%.2f) %.3f %s\n", lo, v, strings.Repeat("#", int(v*80)))
	}
	fmt.Println("\nevery number above is differentially private; the accountant proves")
	fmt.Printf("the whole release costs exactly ε = %.1f by basic composition.\n", eps)
}
