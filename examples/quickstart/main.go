// Quickstart: privately learn a 1-D linear classifier with the Gibbs
// estimator and read off its certificates — the smallest end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	dplearn "repro"
	"repro/internal/dataset"
	"repro/internal/learn"
)

func main() {
	g := dplearn.NewRNG(42)

	// Synthetic binary classification data: P(Y=+1|x) = sigmoid(3x).
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	train := model.Generate(500, g)
	test := model.Generate(5000, g)

	// A finite predictor space: 17 candidate slopes in [-2, 2].
	grid := learn.NewGrid(-2, 2, 1, 17)

	// A private learner with budget ε = 1.
	learner, err := dplearn.NewLearner(dplearn.Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: 1.0,
	})
	if err != nil {
		log.Fatal(err)
	}

	fit, err := learner.Fit(train, g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selected predictor: theta = %.3f\n", fit.Theta[0])
	fmt.Printf("privacy certificate (Theorem 4.1): %s at lambda = %.4g\n",
		fit.Certificate.Privacy, fit.Certificate.Lambda)
	fmt.Printf("PAC-Bayes risk certificate (Theorem 3.1): true risk <= %.4f w.p. %.0f%%\n",
		fit.Certificate.RiskBound, 100*(1-fit.Certificate.Delta))
	fmt.Printf("posterior expected empirical risk: %.4f, KL(posterior||prior) = %.4f nats\n",
		fit.Certificate.ExpEmpRisk, fit.Certificate.KL)
	fmt.Printf("held-out test error of the released predictor: %.4f\n",
		learn.ClassificationError(fit.Theta, test))
}
