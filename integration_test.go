package dplearn

// Integration tests: full pipelines crossing module boundaries — data
// generation → private learning → exact privacy audit → PAC-Bayes
// certification → information accounting — asserting the end-to-end
// invariants the paper's theorems promise.

import (
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/pacbayes"
	"repro/internal/rng"
)

// TestIntegrationLearnAuditCertify drives the full central story: fit a
// private classifier, verify its ε empirically, and confirm the bound
// machinery is mutually consistent.
func TestIntegrationLearnAuditCertify(t *testing.T) {
	g := rng.New(2024)
	model := dataset.LogisticModel{Weights: []float64{2.5, -1}, Bias: 0}
	n := 150
	train := model.Generate(n, g)
	test := model.Generate(5000, g)
	grid := learn.NewGrid(-2, 2, 2, 9)
	eps := 1.5

	learner, err := NewLearner(Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: eps,
		Delta:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := learner.Fit(train, g)
	if err != nil {
		t.Fatal(err)
	}

	// 1. The certificate must equal the configured budget exactly.
	if !mathx.AlmostEqual(fit.Certificate.Privacy.Epsilon, eps, 1e-9) {
		t.Errorf("certificate %v != budget %v", fit.Certificate.Privacy.Epsilon, eps)
	}

	// 2. The exact audit over many neighbor pairs must stay within it.
	est, err := learner.Estimator(n)
	if err != nil {
		t.Fatal(err)
	}
	pairs := audit.RandomNeighborPairs(func(h *rng.RNG) *dataset.Dataset {
		return model.Generate(n, h)
	}, 120, g)
	if got := audit.ExactAudit(est, pairs); got > eps+1e-9 {
		t.Errorf("audited ε̂ %v exceeds budget %v", got, eps)
	}

	// 3. The Catoni bound in the certificate matches an independent
	// recomputation through pacbayes, rescaled for the 0-1 loss.
	st, err := est.Stats(train)
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := pacbayes.CatoniBound(st.ExpEmpRisk, st.KL, est.Lambda, n, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(recomputed, fit.Certificate.RiskBound, 1e-9) {
		t.Errorf("certificate bound %v != recomputed %v", fit.Certificate.RiskBound, recomputed)
	}

	// 4. The released predictor generalizes: held-out error within the
	// certified bound (w.h.p. by Theorem 3.1; deterministic at this seed).
	heldOut := learn.ClassificationError(fit.Theta, test)
	if heldOut > fit.Certificate.RiskBound {
		t.Errorf("held-out error %v exceeds certified bound %v", heldOut, fit.Certificate.RiskBound)
	}
}

// TestIntegrationChannelConsistency cross-checks the three views of the
// same Gibbs learner: the core information account, the channel package's
// direct computation, and the DP caps.
func TestIntegrationChannelConsistency(t *testing.T) {
	n := 8
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	for _, d := range inputs {
		for i := range d.Examples {
			d.Examples[i].Y = d.Examples[i].X[0]
		}
	}
	grid := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	eps := 2.0
	learner, err := NewLearner(Config{Loss: loss, Thetas: grid, Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	acct, err := learner.AccountInformation(inputs, logPX)
	if err != nil {
		t.Fatal(err)
	}
	est, err := learner.Estimator(n)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := ch.MutualInformation()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(mi, acct.MutualInformation, 1e-9) {
		t.Errorf("account MI %v != channel MI %v", acct.MutualInformation, mi)
	}
	if acct.MutualInformation > acct.Capacity+1e-6 || acct.Capacity > acct.DPCap+1e-6 {
		t.Errorf("ordering violated: %+v", acct)
	}
	rep, err := ch.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BayesAccuracy > 1-rep.FanoErrorLB+1e-9 {
		t.Error("reconstruction accuracy violates Fano")
	}
}

// TestIntegrationBudgetedPipeline runs a multi-release pipeline under one
// accountant: summary + learner + density, asserting the composed budget.
func TestIntegrationBudgetedPipeline(t *testing.T) {
	g := rng.New(99)
	mix := dataset.GaussianMixture{Means: []float64{0.4}, Sigmas: []float64{0.1}, Weights: []float64{1}}
	d := mix.Generate(2000, g)
	for i := range d.Examples {
		d.Examples[i].X[0] = mathx.Clamp(d.Examples[i].X[0], 0, 1)
	}
	var acct mechanism.Accountant

	sum, err := ReleaseSummary(d, SummaryConfig{Feature: 0, Lo: 0, Hi: 1, Epsilon: 2}, g)
	if err != nil {
		t.Fatal(err)
	}
	acct.Spend(sum.Spent)

	dens, err := PrivateHistogramDensity(d, 0, 16, 0, 1, 1, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	if dens.At(0.4) <= dens.At(0.9) {
		t.Error("density should peak near the mode")
	}
	acct.Spend(mechanism.Guarantee{Epsilon: 1})

	total := acct.BasicComposition()
	if !mathx.AlmostEqual(total.Epsilon, 3, 1e-9) {
		t.Errorf("composed budget %v, want 3", total.Epsilon)
	}
}

// TestIntegrationMCMCMatchesExactLearner verifies the continuous sampler
// agrees with the exact finite-grid learner it approximates.
func TestIntegrationMCMCMatchesExactLearner(t *testing.T) {
	g := rng.New(7)
	model := dataset.LinearModel{Weights: []float64{0.6}, Noise: 0.15}
	train := model.Generate(250, g)
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, 4)
	lambda := gibbs.LambdaForEpsilon(3, loss, train.Len())

	fineAxis := mathx.Linspace(-2, 2, 1001)
	fine := make([][]float64, len(fineAxis))
	for i, v := range fineAxis {
		fine[i] = []float64{v}
	}
	exact, err := gibbs.New(loss, fine, nil, lambda)
	if err != nil {
		t.Fatal(err)
	}
	ref := exact.PosteriorMeanTheta(train)[0]

	target := gibbs.ContinuousTarget(loss, train, lambda, gibbs.BoxLogPrior(-2, 2))
	mala := &gibbs.MALASampler{LogTarget: target, Tau: 0.05}
	samples, _, err := mala.Run([]float64{0}, 2000, 6000, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	var w mathx.Welford
	for _, x := range samples {
		w.Add(x[0])
	}
	if math.Abs(w.Mean()-ref) > 0.03 {
		t.Errorf("MALA mean %v vs exact %v", w.Mean(), ref)
	}
}
