package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// AcctLint enforces the PINQ-style accounting discipline: every release
// of DP-protected output that is reachable from the exported API must
// register its Guarantee with an Accountant.Spend in the same function,
// unconditionally, and no guarantee may be spent twice.
//
// Composition (Section 2 of the paper; McSherry's PINQ) only certifies
// the budget that is actually registered: a Release whose Guarantee never
// reaches Spend silently under-reports the privacy loss, a Spend nested
// in a branch that the release does not share over-trusts a runtime
// condition, and a double Spend over-reports (burning budget the data
// still has). The check walks the package-level call graph to skip
// functions no exported API can reach, and exempts methods of
// Guarantee-bearing types — a composite mechanism's internal releases
// (MWEM rounds, subsample-and-aggregate parts) are priced by its own
// Guarantee, which its callers must spend.
var AcctLint = register(&Analyzer{
	Name:     "acctlint",
	Doc:      "every reachable Release must flow its Guarantee into Accountant.Spend on all paths, exactly once",
	Severity: Error,
	Run:      runAcctLint,
})

func runAcctLint(p *Pass) {
	reach := p.Prog.Reachable()
	observers, badObs := buildObserverIndex(p.Pkg)
	for _, pos := range badObs {
		if !p.IsTestFile(pos) {
			p.Reportf(pos, "malformed observer directive: want //dp:observer <reason>")
		}
	}
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvHasGuarantee(p, fd) {
				continue
			}
			if observers.isObserverScope(p.Pkg, fd) {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !reach[funcKey(obj)] {
				continue
			}
			checkAccounting(p, fd, observers)
		}
	}
}

// recvHasGuarantee reports whether fd is a method of a Guarantee-bearing
// (mechanism) type.
func recvHasGuarantee(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return hasMethod(p.TypeOf(fd.Recv.List[0].Type), "Guarantee")
}

// checkAccounting matches the release sites of fd.Body against its spend
// sites in source order and reports the violations. Function literals
// marked //dp:observer are skipped whole: their releases are
// measurements of a mechanism's output distribution, not release paths.
func checkAccounting(p *Pass, fd *ast.FuncDecl, observers observerIndex) {
	var releases, spends []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && observers.isObserverScope(p.Pkg, lit) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isReleaseCall(p.Pkg, call):
			releases = append(releases, call)
		case isSpendCall(p.Pkg, call):
			spends = append(spends, call)
		}
		return true
	})
	if len(releases) == 0 {
		reportDoubleSpends(p, spends)
		return
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i].Pos() < releases[j].Pos() })
	sort.Slice(spends, func(i, j int) bool { return spends[i].Pos() < spends[j].Pos() })
	// Greedy source-order matching: each release consumes the first spend
	// positioned after it (a spend-then-release ordering would account the
	// wrong data access).
	used := make([]bool, len(spends))
	for _, rel := range releases {
		matched := -1
		for i, sp := range spends {
			if !used[i] && sp.Pos() > rel.Pos() {
				matched = i
				break
			}
		}
		if matched < 0 {
			p.Reportf(rel.Pos(), "un-accounted release: its Guarantee never reaches an Accountant.Spend in this function, so composition under-reports the privacy loss")
			continue
		}
		used[matched] = true
		if guard := conditionalGuard(fd.Body, rel, spends[matched]); guard != nil {
			p.Reportf(spends[matched].Pos(), "conditionally-accounted release: this Spend is guarded by a branch the release at line %d does not share, so some executions release without paying", p.Fset.Position(rel.Pos()).Line)
		}
	}
	reportDoubleSpends(p, spends)
}

// reportDoubleSpends flags Spend calls re-registering the same
// Guarantee-typed variable.
func reportDoubleSpends(p *Pass, spends []*ast.CallExpr) {
	seen := make(map[types.Object]*ast.CallExpr)
	for _, sp := range spends {
		if len(sp.Args) != 1 {
			continue
		}
		id, ok := sp.Args[0].(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.ObjectOf(id)
		if obj == nil {
			continue
		}
		if first, dup := seen[obj]; dup {
			p.Reportf(sp.Pos(), "double-spend: guarantee %q was already registered at line %d; spending it again over-reports the privacy loss", id.Name, p.Fset.Position(first.Pos()).Line)
			continue
		}
		seen[obj] = sp
	}
}

// conditionalGuard returns the innermost if/switch statement that
// encloses spend but not release, or nil when the spend is on every path
// the release is on. Loops are not guards: a release and spend iterating
// together stay matched.
func conditionalGuard(body *ast.BlockStmt, release, spend ast.Node) ast.Node {
	var stack []ast.Node
	var guard ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == spend {
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					if !encloses(stack[i], release) {
						guard = stack[i]
						return false
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return guard
}

// encloses reports whether outer's source extent contains inner.
func encloses(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}
