package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// AcctLint enforces the PINQ-style accounting discipline: every release
// of DP-protected output that is reachable from the exported API must
// register its Guarantee with an Accountant.Spend in the same function,
// unconditionally, and no guarantee may be spent twice.
//
// Composition (Section 2 of the paper; McSherry's PINQ) only certifies
// the budget that is actually registered: a Release whose Guarantee never
// reaches Spend silently under-reports the privacy loss, a Spend the
// release can bypass under-pays on the bypassing executions, and a double
// Spend over-reports (burning budget the data still has). The
// release-to-spend obligation is checked path-sensitively on the
// function's CFG: a release sets a pending obligation, its matched Spend
// (or Reservation.Commit) clears it, and any function exit a pending
// obligation can reach — a guarded Spend's else path, an early return
// between release and payment — is flagged. A release's own error guard
// voids the obligation on the error edge: a failed draw produced no
// output and charged nothing. Reserve+Commit pairs satisfy the must-spend
// rule here; whether the *hold itself* is settled on every path (early
// returns, panic edges) is the twophase check's job, so the two checks
// jointly cover both halves of the protocol. The check walks the
// package-level call graph to skip functions no exported API can reach,
// and exempts methods of Guarantee-bearing types — a composite
// mechanism's internal releases (MWEM rounds, subsample-and-aggregate
// parts) are priced by its own Guarantee, which its callers must spend.
var AcctLint = register(&Analyzer{
	Name:     "acctlint",
	Doc:      "every reachable Release must flow its Guarantee into Accountant.Spend on all paths, exactly once",
	Severity: Error,
	Run:      runAcctLint,
})

func runAcctLint(p *Pass) {
	reach := p.Prog.Reachable()
	observers, badObs := buildObserverIndex(p.Pkg)
	for _, pos := range badObs {
		if !p.IsTestFile(pos) {
			p.Reportf(pos, "malformed observer directive: want //dp:observer <reason>")
		}
	}
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		obsLits := observerArgLits(p.Pkg, p.Prog, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvHasGuarantee(p, fd) {
				continue
			}
			if observers.isObserverScope(p.Pkg, fd) || isAccessLogScope(p, fd) {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !reach[funcKey(obj)] {
				continue
			}
			checkAccounting(p, fd, observers, obsLits)
		}
	}
}

// recvHasGuarantee reports whether fd is a method of a Guarantee-bearing
// (mechanism) type.
func recvHasGuarantee(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return hasMethod(p.TypeOf(fd.Recv.List[0].Type), "Guarantee")
}

// checkAccounting matches the release sites of fd.Body against its spend
// sites in source order and reports the violations. Function literals
// marked //dp:observer — or passed directly to an observer-annotated
// entry point, possibly in another package — are skipped whole: their
// releases are measurements of a mechanism's output distribution, not
// release paths.
func checkAccounting(p *Pass, fd *ast.FuncDecl, observers observerIndex, obsLits map[*ast.FuncLit]bool) {
	var releases, spends []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && (observers.isObserverScope(p.Pkg, lit) || obsLits[lit]) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isReleaseCall(p.Pkg, call):
			releases = append(releases, call)
		case isSpendCall(p.Pkg, call):
			spends = append(spends, call)
		}
		return true
	})
	if len(releases) == 0 {
		reportDoubleSpends(p, spends)
		return
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i].Pos() < releases[j].Pos() })
	sort.Slice(spends, func(i, j int) bool { return spends[i].Pos() < spends[j].Pos() })
	// Greedy source-order matching: each release consumes the first spend
	// positioned after it (a spend-then-release ordering would account the
	// wrong data access).
	c := buildCFG(fd.Body, cfgOptions{})
	used := make([]bool, len(spends))
	for _, rel := range releases {
		matched := -1
		for i, sp := range spends {
			if !used[i] && sp.Pos() > rel.Pos() {
				matched = i
				break
			}
		}
		if matched < 0 {
			p.Reportf(rel.Pos(), "un-accounted release: its Guarantee never reaches an Accountant.Spend in this function, so composition under-reports the privacy loss")
			continue
		}
		used[matched] = true
		if exit := unpaidExit(p, c, fd.Body, rel, spends[matched]); exit != 0 {
			p.Reportf(spends[matched].Pos(), "conditionally-accounted release: the release at line %d can reach the exit at line %d before this Spend, so some executions release without paying", p.Fset.Position(rel.Pos()).Line, exit)
		}
	}
	reportDoubleSpends(p, spends)
}

// payFact is the per-pair obligation lattice: bottom (unreached) <
// clean < pending, joined by max — "may still owe" wins at merges.
type payFact uint8

const (
	payBottom payFact = iota
	payClean
	payPending
)

// payFlow is the forward may-analysis for one (release, matched spend)
// pair: the release sets a pending obligation, the spend clears it, and
// the release's own error guard voids it on the error edge (a failed
// draw produced no output and charged nothing).
type payFlow struct {
	pkg     *Package
	release *ast.CallExpr
	spend   *ast.CallExpr
	errObj  types.Object
}

func (f *payFlow) Bottom() any { return payBottom }
func (f *payFlow) Entry() any  { return payClean }
func (f *payFlow) Merge(a, b any) any {
	if a.(payFact) > b.(payFact) {
		return a
	}
	return b
}
func (f *payFlow) Equal(a, b any) bool { return a == b }

func (f *payFlow) Step(n ast.Node, fact any) any {
	v := fact.(payFact)
	if v == payBottom {
		return v
	}
	// The spend is positioned after the release, so when one statement
	// holds both the obligation is settled within it.
	if nodeContains(n, f.release) {
		v = payPending
	}
	if nodeContains(n, f.spend) {
		v = payClean
	}
	return v
}

func (f *payFlow) Refine(e cfgEdge, fact any) any {
	if f.errObj == nil || fact != payPending {
		return fact
	}
	obj, errNonNilWhenTrue, _ := errGuard(f.pkg, e.Cond)
	if obj != f.errObj {
		return fact
	}
	if errNonNilWhenTrue != e.Neg {
		return payClean
	}
	return fact
}

// unpaidExit reports the line of a function exit that a pending (released
// but not yet spent) obligation can reach, or 0 when the spend settles it
// on every path.
func unpaidExit(p *Pass, c *cfg, body *ast.BlockStmt, rel, spend *ast.CallExpr) int {
	pf := &payFlow{pkg: p.Pkg, release: rel, spend: spend, errObj: releaseErrObj(p.Pkg, body, rel)}
	in := solveForward(c, pf)
	for _, blk := range c.Blocks {
		fact, _ := in[blk].(payFact)
		if fact == payBottom {
			continue
		}
		out := any(fact)
		for _, n := range blk.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok && out.(payFact) == payPending {
				return p.Fset.Position(ret.Pos()).Line
			}
			out = pf.Step(n, out)
		}
		if blk.Return == nil && out.(payFact) == payPending {
			for _, e := range blk.Succs {
				if e.To == c.Exit {
					return p.Fset.Position(body.Rbrace).Line
				}
			}
		}
	}
	return 0
}

// releaseErrObj finds the error-typed variable bound by the assignment
// that evaluates rel, if any — the handle its error guard refines on.
func releaseErrObj(pkg *Package, body *ast.BlockStmt, rel *ast.CallExpr) types.Object {
	var out types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		holds := false
		for _, r := range st.Rhs {
			if nodeContains(r, rel) {
				holds = true
			}
		}
		if !holds {
			return true
		}
		for _, l := range st.Lhs {
			if obj := identObj(pkg, l); obj != nil && isErrorType(obj.Type()) {
				out = obj
			}
		}
		return false
	})
	return out
}

// nodeContains reports whether node's subtree includes target.
func nodeContains(node ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(node, func(m ast.Node) bool {
		if m == target {
			found = true
		}
		return !found
	})
	return found
}

// reportDoubleSpends flags Spend calls re-registering the same
// Guarantee-typed variable.
func reportDoubleSpends(p *Pass, spends []*ast.CallExpr) {
	seen := make(map[types.Object]*ast.CallExpr)
	for _, sp := range spends {
		if len(sp.Args) != 1 {
			continue
		}
		id, ok := sp.Args[0].(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.ObjectOf(id)
		if obj == nil {
			continue
		}
		if first, dup := seen[obj]; dup {
			p.Reportf(sp.Pos(), "double-spend: guarantee %q was already registered at line %d; spending it again over-reports the privacy loss", id.Name, p.Fset.Position(first.Pos()).Line)
			continue
		}
		seen[obj] = sp
	}
}
