// Package analysis is a self-contained static-analysis framework for the
// privacy-correctness invariants this repository depends on. The paper's
// guarantees (Theorems 2.1/2.2: ε-DP of the Laplace and exponential
// mechanisms) hold only if the implementation respects properties the Go
// type system cannot see: validated ε and sensitivity parameters, seeded
// randomness routed through internal/rng, log-domain arithmetic on
// exponential-mechanism weights, and no floating-point equality on
// probability mass. Each registered Analyzer enforces one such invariant;
// cmd/dplearn-lint is the command-line driver.
//
// The framework is deliberately modelled on golang.org/x/tools/go/analysis
// but is built only on the standard library (go/ast, go/parser, go/types,
// go/build), so the module keeps zero external dependencies.
//
// Findings can be silenced per line with a suppression comment:
//
//	//dplint:ignore <check>[,<check>...] <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory; a directive without one is itself reported (check id
// "dplint") so that suppressions stay auditable.
package analysis

import (
	"context"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity classifies how a finding affects the exit status of the driver:
// Error findings fail the build, Warn findings are reported but do not.
type Severity int

const (
	// Warn marks advisory findings.
	Warn Severity = iota
	// Error marks findings that must be fixed or explicitly suppressed.
	Error
)

// String renders the severity in lower case ("warn", "error").
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Diagnostic is one finding produced by an Analyzer, located at a concrete
// file position.
type Diagnostic struct {
	Check    string         `json:"check"`
	Severity Severity       `json:"-"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// Suppressed marks findings silenced by a //dplint:ignore directive;
	// Run drops them, RunAll keeps them flagged (so tooling such as the
	// -json driver mode can audit what was waived and why).
	Suppressed bool `json:"suppressed"`
	// SuppressReason is the directive's mandatory reason when Suppressed.
	SuppressReason string `json:"suppress_reason,omitempty"`

	// Trace is the per-path witness of a flow-sensitive finding: the CFG
	// block sequence (entry label per block, "b<idx>:L<lines>") along one
	// concrete execution path exhibiting the violation. Empty for
	// findings from flow-insensitive checks.
	Trace []string `json:"trace,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Severity, d.Message, d.Check)
}

// Analyzer is one registered check. Run inspects a single type-checked
// package via its Pass and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name is the check id used in output, suppression directives, and
	// the driver's -checks flag.
	Name string
	// Doc is a one-paragraph description of the invariant enforced and
	// why it matters for the DP guarantees.
	Doc string
	// Severity is the default severity of the check's findings.
	Severity Severity
	// Run inspects one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog is the whole-run view (call graph, cross-package lookup)
	// shared by every pass of one Run.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos with the pass's default severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportTrace(pos, nil, format, args...)
}

// ReportTrace is Reportf with a block-path witness attached: the CFG
// block sequence of one concrete execution exhibiting the violation,
// surfaced through the driver's NDJSON output for audit tooling.
func (p *Pass) ReportTrace(pos token.Pos, trace []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Check:    p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Trace:    trace,
	})
}

// TypeOf returns the type of e in the package under analysis, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, consulting both Defs and Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return isTestFilename(p.Fset.Position(pos).Filename)
}

// registry holds every known Analyzer, keyed by name at registration time.
var registry []*Analyzer

func register(a *Analyzer) *Analyzer {
	for _, old := range registry {
		if old.Name == a.Name {
			panic("analysis: duplicate analyzer " + a.Name)
		}
	}
	registry = append(registry, a)
	return a
}

// Analyzers returns every registered check, sorted by name.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves a check id, returning nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies the given analyzers to the given packages, filters the
// findings through //dplint:ignore directives, and returns the surviving
// diagnostics sorted by position. Malformed or reason-less directives are
// reported under the meta check id "dplint".
func Run(pkgs []*Package, checks []*Analyzer) []Diagnostic {
	out, _ := RunCtx(context.Background(), pkgs, checks)
	return out
}

// RunCtx is Run with cancellation (see RunAllCtx for the contract).
func RunCtx(ctx context.Context, pkgs []*Package, checks []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAllCtx(ctx, pkgs, checks)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// RunAll is Run without the suppression filter: findings silenced by a
// //dplint:ignore directive are returned with Suppressed set and the
// directive's reason attached, instead of being dropped.
func RunAll(pkgs []*Package, checks []*Analyzer) []Diagnostic {
	diags, _ := RunAllCtx(context.Background(), pkgs, checks)
	return diags
}

// RunAllCtx is RunAll with cancellation: ctx is checked once per
// (package, analyzer) pair, so a ^C'd or timed-out lint run stops
// between passes instead of mid-walk. On cancellation the diagnostics
// gathered so far are discarded (a partial report would read as a
// clean bill for the unvisited packages) and the wrapped ctx error is
// returned. A run that completes is identical to RunAll.
func RunAllCtx(ctx context.Context, pkgs []*Package, checks []*Analyzer) ([]Diagnostic, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range checks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("analysis: canceled before %s on %s: %w", a.Name, pkg.Path, err)
			}
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, Prog: prog, diags: &diags}
			a.Run(pass)
		}
	}
	sup := newSuppressionIndex()
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, sup.addPackage(pkg)...)
	}
	for _, d := range diags {
		if dir, ok := sup.directiveFor(d.Pos.Filename, d.Check, d.Pos.Line); ok {
			d.Suppressed = true
			d.SuppressReason = dir.reason
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out, nil
}
