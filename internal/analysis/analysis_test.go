package analysis

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestRegistry pins the public check surface: the nine DP checks must all
// be registered and default to error severity.
func TestRegistry(t *testing.T) {
	want := []string{"acctlint", "epsbound", "epscheck", "errdrop", "expdomain", "floateq", "lockcheck", "maprange", "postproc", "rawrand", "sensann", "twophase"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("registered %d checks, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("check %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Severity != Error {
			t.Errorf("check %q defaults to %v, want error", a.Name, a.Severity)
		}
		if a.Doc == "" {
			t.Errorf("check %q has no Doc", a.Name)
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown check should be nil")
	}
}

// golden drives one check over its fixture tree under testdata/src/<check>
// and compares the diagnostics against // want "regex" annotations.
func golden(t *testing.T, check string) {
	t.Helper()
	a := ByName(check)
	if a == nil {
		t.Fatalf("unknown check %q", check)
	}
	root := filepath.Join("testdata", "src", check)
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("fixture tree missing: %v", err)
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		importPath := check
		if rel != "." {
			importPath = check + "/" + filepath.ToSlash(rel)
		}
		loaded, err := loader.LoadDir(dir, importPath, true)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture tree loaded no packages")
	}
	diags := Run(pkgs, []*Analyzer{a})
	wants := collectWants(t, pkgs)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

type wantAnnotation struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses // want "regex" (or backquoted) comments from every
// fixture file.
func collectWants(t *testing.T, pkgs []*Package) []wantAnnotation {
	t.Helper()
	var wants []wantAnnotation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					lit := strings.TrimSpace(rest)
					pattern, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", pkg.Fset.Position(c.Pos()), lit, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pkg.Fset.Position(c.Pos()), err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, wantAnnotation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func TestRawRandGolden(t *testing.T)   { golden(t, "rawrand") }
func TestEpsCheckGolden(t *testing.T)  { golden(t, "epscheck") }
func TestFloatEqGolden(t *testing.T)   { golden(t, "floateq") }
func TestExpDomainGolden(t *testing.T) { golden(t, "expdomain") }
func TestMapRangeGolden(t *testing.T)  { golden(t, "maprange") }
func TestErrDropGolden(t *testing.T)   { golden(t, "errdrop") }
func TestSensAnnGolden(t *testing.T)   { golden(t, "sensann") }
func TestAcctLintGolden(t *testing.T)  { golden(t, "acctlint") }
func TestPostProcGolden(t *testing.T)  { golden(t, "postproc") }
func TestTwoPhaseGolden(t *testing.T)  { golden(t, "twophase") }
func TestEpsBoundGolden(t *testing.T)  { golden(t, "epsbound") }
func TestLockcheckGolden(t *testing.T) { golden(t, "lockcheck") }

// writeFixtureModule lays out a throwaway module so suppression handling
// can be tested against exact line arithmetic.
func writeFixtureModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fixture\n\ngo 1.22\n"
	for name, content := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadFixtureModule(t *testing.T, dir string) []*Package {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."}, true)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestSuppressionSameLineAndAbove(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Eq compares exactly, twice, with both suppression placements.
func Eq(a, b float64) bool {
	sameLine := a == b //dplint:ignore floateq fixture: same-line suppression
	//dplint:ignore floateq fixture: line-above suppression
	above := a != b
	return sameLine || above
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{FloatEq})
	if len(diags) != 0 {
		t.Fatalf("suppressed findings leaked: %v", diags)
	}
}

func TestSuppressionWrongCheckDoesNotApply(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Eq is covered by a directive for a different check only.
func Eq(a, b float64) bool {
	return a == b //dplint:ignore rawrand fixture: wrong check id
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{FloatEq})
	if len(diags) != 1 || diags[0].Check != "floateq" {
		t.Fatalf("want 1 floateq finding, got %v", diags)
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Eq hides behind a reason-less directive, which must itself be flagged
// and must not suppress the underlying finding.
func Eq(a, b float64) bool {
	return a == b //dplint:ignore floateq
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{FloatEq})
	if len(diags) != 2 {
		t.Fatalf("want malformed-directive + floateq findings, got %v", diags)
	}
	var checks []string
	for _, d := range diags {
		checks = append(checks, d.Check)
	}
	joined := strings.Join(checks, ",")
	if !strings.Contains(joined, "dplint") || !strings.Contains(joined, "floateq") {
		t.Fatalf("want dplint and floateq, got %s", joined)
	}
}

func TestSuppressionCommaListAndWildcard(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Eq and Neq are covered by a comma list and a wildcard respectively.
func Eq(a, b float64) bool {
	return a == b //dplint:ignore rawrand,floateq fixture: comma list
}

// Neq is suppressed for every check on its line.
func Neq(a, b float64) bool {
	return a != b //dplint:ignore * fixture: wildcard
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{FloatEq})
	if len(diags) != 0 {
		t.Fatalf("comma-list/wildcard suppression failed: %v", diags)
	}
}

func TestSeverityString(t *testing.T) {
	if Warn.String() != "warn" || Error.String() != "error" {
		t.Fatalf("severity strings wrong: %q %q", Warn, Error)
	}
	d := Diagnostic{Check: "floateq", Severity: Error, Message: "m"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "f.go", 3, 7
	if got := d.String(); got != "f.go:3:7: error: m [floateq]" {
		t.Fatalf("Diagnostic.String = %q", got)
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"a/a.go":                "package a\n",
		"a/testdata/x/x.go":     "package x\n",
		"b/b.go":                "package b\n",
		"b/.hidden/h.go":        "package h\n",
		"c/nodir.txt":           "not go\n",
		"root.go":               "package root\n",
		"a/inner/vendor/v/v.go": "package v\n",
		"a/inner/i.go":          "package i\n",
	})
	dirs, err := ExpandPatterns(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var rels []string
	for _, d := range dirs {
		rel, _ := filepath.Rel(dir, d)
		rels = append(rels, filepath.ToSlash(rel))
	}
	want := fmt.Sprintf("%v", []string{".", "a", "a/inner", "b"})
	if got := fmt.Sprintf("%v", rels); got != want {
		t.Fatalf("ExpandPatterns = %v, want %v", got, want)
	}
}

// TestRepoIsLintClean is the enforcement test: the entire module must stay
// lint-clean (fix findings or suppress them with a reason). It is also a
// smoke test that the loader can type-check every package from source.
func TestRepoIsLintClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages from the module; loader is missing code", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add //dplint:ignore <check> <reason>", len(diags))
	}
}

// TestRunCtxCancellation pins the driver's interruption contract: a
// canceled context aborts between passes with a wrapped ctx error and no
// partial diagnostics (a truncated list would read as lint-clean for
// the unvisited packages), while an open context matches Run exactly.
func TestRunCtxCancellation(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Eq compares exactly so the fixture has one deterministic finding.
func Eq(a, b float64) bool { return a == b }
`,
	})
	pkgs := loadFixtureModule(t, dir)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	diags, err := RunAllCtx(canceled, pkgs, []*Analyzer{FloatEq})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if diags != nil {
		t.Fatalf("canceled run must discard diagnostics, got %v", diags)
	}
	if diags, err := RunCtx(canceled, pkgs, []*Analyzer{FloatEq}); !errors.Is(err, context.Canceled) || diags != nil {
		t.Fatalf("RunCtx: want (nil, context.Canceled), got (%v, %v)", diags, err)
	}

	got, err := RunCtx(context.Background(), pkgs, []*Analyzer{FloatEq})
	if err != nil {
		t.Fatal(err)
	}
	want := Run(pkgs, []*Analyzer{FloatEq})
	if len(got) != 1 || len(want) != 1 || got[0].String() != want[0].String() {
		t.Fatalf("completed RunCtx diverged from Run: got %v, want %v", got, want)
	}
}
