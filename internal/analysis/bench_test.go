package analysis

import (
	"context"
	"sync"
	"testing"
)

// benchPkgs loads the repository module once and shares it across the
// benchmarks: the load (parse + type-check from source) is measured by
// its own benchmark, and the analysis benchmarks measure analysis only.
var benchPkgs = struct {
	once sync.Once
	pkgs []*Package
	root string
	err  error
}{}

func loadBenchPkgs(b *testing.B) ([]*Package, string) {
	b.Helper()
	benchPkgs.once.Do(func() {
		loader, err := NewLoader(".")
		if err != nil {
			benchPkgs.err = err
			return
		}
		benchPkgs.root = loader.ModuleRoot()
		benchPkgs.pkgs, benchPkgs.err = loader.LoadPatterns([]string{"./..."}, false)
	})
	if benchPkgs.err != nil {
		b.Fatal(benchPkgs.err)
	}
	return benchPkgs.pkgs, benchPkgs.root
}

// BenchmarkLoadModule measures the from-source parse + type-check of the
// whole module, the fixed cost every lint invocation pays first.
func BenchmarkLoadModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loader.LoadPatterns([]string{"./..."}, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllChecks measures one full multi-check sweep over the
// module — the steady-state cost of `dplearn-lint ./...` after loading.
// Each iteration builds a fresh Program, so interprocedural caches
// (call graph, epsbound summaries) are rebuilt, not amortized away.
func BenchmarkRunAllChecks(b *testing.B) {
	pkgs, _ := loadBenchPkgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCtx(context.Background(), pkgs, Analyzers()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBudgetCertificates measures the -certify path: call-graph
// construction plus bottom-up symbolic summaries for every entry point.
func BenchmarkBudgetCertificates(b *testing.B) {
	pkgs, root := loadBenchPkgs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if certs := BudgetCertificates(pkgs, root); len(certs) == 0 {
			b.Fatal("no certificates")
		}
	}
}
