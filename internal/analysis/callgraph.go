package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the package-level half of the dataflow framework: a static
// call graph over every analyzed package, with reachability from the
// exported API surface. The privacy checks that need more than one
// function's worth of context (acctlint's "every release reachable from an
// exported API must be accounted", sensann's cross-package annotation
// lookup) consult the Program attached to their Pass.
//
// Resolution is deliberately simple: direct calls to declared functions
// and methods (including qualified cross-package calls) produce edges;
// calls through function-typed values, fields, and interfaces do not.
// A function mentioned as a *value* (passed as a callback, stored in a
// struct) is treated as called — anyone holding the value may invoke it —
// which keeps reachability conservative in the direction that matters for
// the privacy checks (more code is considered reachable, never less).

// Program is the whole set of packages under one Run, indexed for
// cross-package queries.
type Program struct {
	Pkgs []*Package

	nodes map[string]*FuncNode
	order []string // node keys in deterministic (position) order

	// pkgRefs are functions referenced from package-level variable
	// initializers (registries, tables of callbacks). They have no
	// enclosing FuncNode, so Reachable treats them as roots: whoever
	// reads the variable may invoke them.
	pkgRefs []string

	reachable map[string]bool // lazily computed by Reachable

	// obsIdx caches each package's //dp:observer index for cross-package
	// observer propagation (lazily built by isObserverFunc).
	obsIdx map[*Package]observerIndex

	// epsState is the epsbound summary cache: per-function budget-bound
	// summaries shared by the lint pass and BudgetCertificates (lazily
	// built by epsBound).
	epsState *epsBoundState
}

// FuncNode is one declared function or method in the call graph.
type FuncNode struct {
	// Key is the stable cross-package identifier (types.Func.FullName).
	Key string
	// Obj is the function object in its defining package's type info.
	Obj *types.Func
	// Decl is the syntax, always with a non-nil Body.
	Decl *ast.FuncDecl
	// Pkg is the analyzed package containing the declaration.
	Pkg *Package
	// Calls lists the static call sites in the body, in source order.
	// Call sites inside function literals belong to the enclosing
	// declaration.
	Calls []CallSite
	// refs are keys of functions referenced as values (not called
	// directly) from this body.
	refs []string
}

// CallSite is one resolved static call.
type CallSite struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Key identifies the callee across packages.
	Key string
}

// funcKey returns the cross-instance identity of fn. The loader
// type-checks a package once as an analysis target and possibly again as
// a dependency of other targets, producing distinct types.Func objects
// for the same source declaration; FullName ("pkg/path.Name" or
// "(pkg/path.Recv).Name") unifies them.
func funcKey(fn *types.Func) string { return fn.FullName() }

// NewProgram indexes the packages and builds the call graph.
func NewProgram(pkgs []*Package) *Program {
	pr := &Program{Pkgs: pkgs, nodes: make(map[string]*FuncNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					if gd, isGen := decl.(*ast.GenDecl); isGen {
						pr.collectPkgRefs(pkg, gd)
					}
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Key: funcKey(obj), Obj: obj, Decl: fd, Pkg: pkg}
				pr.collectEdges(pkg, node)
				if _, dup := pr.nodes[node.Key]; !dup {
					pr.nodes[node.Key] = node
					pr.order = append(pr.order, node.Key)
				}
			}
		}
	}
	return pr
}

// collectEdges records every resolved call and function-value reference in
// node's body.
func (pr *Program) collectEdges(pkg *Package, node *FuncNode) {
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pkg, call); fn != nil {
			node.Calls = append(node.Calls, CallSite{Site: call, Key: funcKey(fn)})
		}
		return true
	})
	// Function values referenced outside call position: an Ident or
	// Selector resolving to a *types.Func that is not the Fun of an
	// enclosing call. Cheap over-approximation: count every reference and
	// every direct call; references beyond the direct calls are value uses.
	direct := make(map[*ast.Ident]bool)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			direct[fun] = true
		case *ast.SelectorExpr:
			direct[fun.Sel] = true
		}
		return true
	})
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || direct[id] {
			return true
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			node.refs = append(node.refs, funcKey(fn))
		}
		return true
	})
}

// collectPkgRefs records every function referenced (called or stored) in
// a package-level variable initializer.
func (pr *Program) collectPkgRefs(pkg *Package, gd *ast.GenDecl) {
	ast.Inspect(gd, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if fn, isFn := pkg.Info.Uses[id].(*types.Func); isFn {
				pr.pkgRefs = append(pr.pkgRefs, funcKey(fn))
			}
		}
		return true
	})
}

// calleeFunc resolves the statically-known callee of call, or nil.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Node returns the FuncNode for key, or nil when the function is declared
// outside the analyzed packages.
func (pr *Program) Node(key string) *FuncNode { return pr.nodes[key] }

// NodeOf returns the FuncNode declaring fn, or nil.
func (pr *Program) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return pr.nodes[funcKey(fn)]
}

// Nodes returns every FuncNode in deterministic declaration order.
func (pr *Program) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(pr.order))
	for _, k := range pr.order {
		out = append(out, pr.nodes[k])
	}
	return out
}

// Reachable returns the set of function keys reachable from the exported
// API surface: exported functions and methods, main, and init functions,
// following direct calls and function-value references. The result is
// cached on first use.
func (pr *Program) Reachable() map[string]bool {
	if pr.reachable != nil {
		return pr.reachable
	}
	pr.reachable = make(map[string]bool)
	var queue []string
	enqueue := func(key string) {
		if !pr.reachable[key] {
			pr.reachable[key] = true
			queue = append(queue, key)
		}
	}
	var roots []string
	for _, key := range pr.order {
		node := pr.nodes[key]
		name := node.Decl.Name.Name
		if node.Decl.Name.IsExported() || name == "main" || name == "init" {
			roots = append(roots, key)
		}
	}
	roots = append(roots, pr.pkgRefs...)
	sort.Strings(roots)
	for _, r := range roots {
		enqueue(r)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		node := pr.nodes[key]
		if node == nil {
			continue
		}
		for _, c := range node.Calls {
			enqueue(c.Key)
		}
		for _, r := range node.refs {
			enqueue(r)
		}
	}
	return pr.reachable
}
