package analysis

import (
	"strings"
	"testing"
)

// TestCallGraphReachability pins the reachability semantics the privacy
// checks depend on: exported functions are roots, direct calls and
// function-value references propagate, and dead unexported code is
// unreachable.
func TestCallGraphReachability(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Exported is a root.
func Exported() int { return helper() }

func helper() int { return 1 }

// callback is never called directly, only mentioned as a value.
func callback() int { return 2 }

// Registry holds callback as a value: anyone may invoke it.
var Registry = callback

// orphan is referenced by nothing.
func orphan() int { return 3 }
`,
	})
	pkgs := loadFixtureModule(t, dir)
	prog := NewProgram(pkgs)
	reach := prog.Reachable()

	wantReach := map[string]bool{
		"fixture.Exported": true,
		"fixture.helper":   true,
		"fixture.callback": true,
		"fixture.orphan":   false,
	}
	for key, want := range wantReach {
		if reach[key] != want {
			t.Errorf("reachable[%s] = %v, want %v (full set: %v)", key, reach[key], want, keys(reach))
		}
	}

	// Node lookup round-trips through the declaration.
	node := prog.Node("fixture.helper")
	if node == nil || node.Decl == nil || node.Decl.Name.Name != "helper" {
		t.Fatalf("Node(fixture.helper) = %+v", node)
	}
	if got := prog.NodeOf(node.Obj); got != node {
		t.Error("NodeOf does not round-trip")
	}

	// The edge Exported -> helper was resolved.
	var found bool
	for _, cs := range prog.Node("fixture.Exported").Calls {
		if cs.Key == "fixture.helper" {
			found = true
		}
	}
	if !found {
		t.Error("missing call edge Exported -> helper")
	}
}

// TestCallGraphCrossPackage checks that edges and reachability cross
// package boundaries inside one module, with FullName keys unifying the
// loader's duplicate type-checked instances.
func TestCallGraphCrossPackage(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"a/a.go": `package a

import "fixture/b"

// Run reaches b.Leak through a qualified call.
func Run() int { return b.Leak() }
`,
		"b/b.go": `package b

// Leak is exported, but the point is the cross-package edge.
func Leak() int { return dead() }

func dead() int { return 0 }
`,
	})
	pkgs := loadFixtureModule(t, dir)
	prog := NewProgram(pkgs)

	var edge bool
	for _, cs := range prog.Node("fixture/a.Run").Calls {
		if cs.Key == "fixture/b.Leak" {
			edge = true
		}
	}
	if !edge {
		t.Error("missing cross-package edge a.Run -> b.Leak")
	}
	reach := prog.Reachable()
	if !reach["fixture/b.dead"] {
		t.Error("b.dead should be reachable through b.Leak")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k, v := range m {
		if v {
			out = append(out, k)
		}
	}
	return out
}

// TestRunAllMarksSuppressed pins the NDJSON contract: RunAll keeps
// suppressed findings, flagged with the directive's reason, while Run
// drops them.
func TestRunAllMarksSuppressed(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Eq exposes one finding and hides another (the directive also covers
// the line below it, so the open finding comes first).
func Eq(a, b float64) bool {
	y := a != b
	x := a == b //dplint:ignore floateq fixture: exact sentinel comparison
	return x || y
}
`,
	})
	pkgs := loadFixtureModule(t, dir)
	all := RunAll(pkgs, []*Analyzer{FloatEq})
	if len(all) != 2 {
		t.Fatalf("RunAll returned %d findings, want 2: %v", len(all), all)
	}
	var suppressed, open int
	for _, d := range all {
		if d.Suppressed {
			suppressed++
			if d.SuppressReason != "fixture: exact sentinel comparison" {
				t.Errorf("suppress reason = %q", d.SuppressReason)
			}
		} else {
			open++
			if d.SuppressReason != "" {
				t.Errorf("open finding carries a reason: %q", d.SuppressReason)
			}
		}
	}
	if suppressed != 1 || open != 1 {
		t.Errorf("suppressed=%d open=%d, want 1 and 1", suppressed, open)
	}
	if got := Run(pkgs, []*Analyzer{FloatEq}); len(got) != 1 {
		t.Errorf("Run must drop the suppressed finding, got %v", got)
	}
}

// TestSensAnnMalformed covers the annotation-grammar errors, which the
// golden harness cannot express (the report lands on the comment's own
// line, where no want comment can sit).
func TestSensAnnMalformed(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

//dp:sensitivity q=1
func wrongKey() float64 { return 0 }

//dp:sensitivity Δq=0
func zeroBound() float64 { return 0 }

//dp:sensitivity Δq=1/
func emptyDenominator() float64 { return 0 }

//dp:sensitivity Δq=2/N7
func badDenominator() float64 { return 0 }
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{SensAnn})
	if len(diags) != 4 {
		t.Fatalf("want 4 malformed-annotation findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "malformed sensitivity annotation") {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}
