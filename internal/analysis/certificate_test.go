package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// repoCertificates recomputes the module's budget certificates exactly the
// way `dplearn-lint -certify` does: test files excluded, paths relative to
// the module root.
func repoCertificates(t *testing.T) []Certificate {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns([]string{"./..."}, false)
	if err != nil {
		t.Fatal(err)
	}
	return BudgetCertificates(pkgs, loader.ModuleRoot())
}

// TestBudgetCertificatesCoverEntrySurface pins the analysis-level
// acceptance criteria: every /v1 handler and every facade release function
// gets a certificate, the request-scoped handlers certify at exactly the
// quoted request epsilon, and nothing in the module is unbounded.
func TestBudgetCertificatesCoverEntrySurface(t *testing.T) {
	certs := repoCertificates(t)
	byEntry := make(map[string]Certificate, len(certs))
	for _, c := range certs {
		byEntry[c.Entry] = c
	}

	handlers := []string{
		"handleHealthz", "handleTenants", "handleBudget", "handleCertify",
		"handleCrossCheck", "handleDensity", "handleSummary", "handleSelect",
		"handleFit",
	}
	for _, h := range handlers {
		entry := "(*repro/internal/serve.Server)." + h
		if _, ok := byEntry[entry]; !ok {
			t.Errorf("no certificate for serve handler %s", entry)
		}
	}
	// Handlers that quote the request's epsilon directly must certify at
	// exactly that symbol: the service can compare quote and bound.
	for _, h := range []string{"handleDensity", "handleSummary", "handleSelect"} {
		entry := "(*repro/internal/serve.Server)." + h
		if c, ok := byEntry[entry]; ok && c.Eps != "req.Epsilon" {
			t.Errorf("%s certifies eps=%q, want req.Epsilon", entry, c.Eps)
		}
	}

	facade := map[string]string{
		"repro.PrivateHistogramDensity": "epsilon",
		"repro.GibbsHistogramDensity":   "epsilon",
		"repro.ReleaseSummary":          "cfg.Epsilon",
	}
	for entry, wantEps := range facade {
		c, ok := byEntry[entry]
		if !ok {
			t.Errorf("no certificate for facade entry %s", entry)
			continue
		}
		if c.Eps != wantEps {
			t.Errorf("%s certifies eps=%q, want %q", entry, c.Eps, wantEps)
		}
	}

	for _, c := range certs {
		if c.Unbounded {
			t.Errorf("%s is unbounded (eps=%s, delta=%s); annotate the loop or fix the charge",
				c.Entry, c.Eps, c.Delta)
		}
	}

	// Charging entries must carry a witness path; a bound with no backing
	// charge sites is unauditable.
	for _, c := range certs {
		if c.Eps != "0" && len(c.Witness) == 0 {
			t.Errorf("%s has nonzero bound %s but no witness", c.Entry, c.Eps)
		}
	}
}

// TestBudgetCertificatesMatchCommitted byte-compares a fresh certificate
// run against results/budget_certificates.ndjson, so any bound change
// must land in the same commit as the code that caused it (regenerate
// with `make certify`).
func TestBudgetCertificatesMatchCommitted(t *testing.T) {
	committed, err := os.ReadFile("../../results/budget_certificates.ndjson")
	if err != nil {
		t.Fatalf("read committed certificates (regenerate with `make certify`): %v", err)
	}

	var fresh bytes.Buffer
	enc := json.NewEncoder(&fresh)
	for _, c := range repoCertificates(t) {
		if err := enc.Encode(c); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(committed, fresh.Bytes()) {
		t.Fatalf("results/budget_certificates.ndjson is stale; run `make certify` and commit the diff\n--- committed ---\n%s\n--- fresh ---\n%s",
			firstDiffLines(string(committed), fresh.String()), firstDiffLines(fresh.String(), string(committed)))
	}
}

// firstDiffLines returns the first few lines of a that differ from b, to
// keep the staleness failure readable.
func firstDiffLines(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	var out []string
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			for j := i; j < len(la) && j < i+3; j++ {
				out = append(out, la[j])
			}
			break
		}
	}
	if len(out) == 0 {
		return "(suffix differs)"
	}
	return strings.Join(out, "\n")
}
