package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the control-flow half of the dataflow framework: an
// intra-procedural CFG over one function body, built from go/ast with no
// dependency outside the standard library. Blocks carry the statements
// (and condition expressions) they evaluate, in order; edges carry the
// branch condition that selects them, so a solver can refine facts on the
// true/false outcomes of a guard (the `if err != nil` idiom is what makes
// the two-phase reservation check precise enough for real code).
//
// Structured control flow — if/else chains, for and range loops,
// switch/type-switch (including fallthrough), select, labeled break and
// continue, goto — is translated faithfully. Return statements edge-split
// to a distinguished exit block. Statements the client declares panic
// sources (a DP release may panic mid-protocol; an explicit panic call
// always does) are isolated into their own block whose IN fact flows to a
// distinguished panic-exit block: the fact holding *before* the statement
// is exactly the state a deferred cleanup would observe.

// cfgEdge is one directed edge. When Cond is non-nil the edge is taken
// exactly when Cond evaluates to true (Neg false) or false (Neg true);
// solvers may use it to refine facts per branch outcome.
type cfgEdge struct {
	To   *cfgBlock
	Cond ast.Expr
	Neg  bool
}

// cfgBlock is one straight-line run of evaluations. Nodes holds the
// statements and branch-condition expressions evaluated in order; a
// condition appears as its bare ast.Expr so replaying a transfer function
// over Nodes observes the fact state at the moment the branch decides.
type cfgBlock struct {
	Index int
	Nodes []ast.Node
	Succs []cfgEdge

	// Return is the terminating return statement when this block ends the
	// function normally via `return` (nil for the implicit fall-off exit).
	Return *ast.ReturnStmt
	// PanicSource marks a block isolated around a possibly-panicking
	// statement: its IN fact (not OUT) also flows to the panic exit.
	PanicSource bool
}

// cfg is the graph for one function body.
type cfg struct {
	Entry *cfgBlock
	// Exit collects every normal termination (returns and fall-off).
	Exit *cfgBlock
	// PanicExit collects the IN facts of every panic-source block.
	PanicExit *cfgBlock
	Blocks    []*cfgBlock
}

// cfgOptions configures construction.
type cfgOptions struct {
	// PanicSource reports whether stmt may panic mid-execution in a way
	// the analysis cares about. Nil means no panic edges besides explicit
	// panic(...) calls.
	PanicSource func(ast.Node) bool
}

type loopFrame struct {
	label    string
	breakTo  *cfgBlock
	contTo   *cfgBlock // nil for switch/select frames (break only)
	isSwitch bool
}

type cfgBuilder struct {
	c    *cfg
	opts cfgOptions

	frames []loopFrame
	labels map[string]*cfgBlock // goto targets
	gotos  map[string][]*cfgBlock
}

// buildCFG constructs the CFG of body.
func buildCFG(body *ast.BlockStmt, opts cfgOptions) *cfg {
	b := &cfgBuilder{
		c:      &cfg{},
		opts:   opts,
		labels: make(map[string]*cfgBlock),
		gotos:  make(map[string][]*cfgBlock),
	}
	b.c.Entry = b.newBlock()
	b.c.Exit = b.newBlock()
	b.c.PanicExit = b.newBlock()
	last := b.stmtList(b.c.Entry, body.List)
	b.edge(last, b.c.Exit, nil, false)
	// Resolve forward gotos: every pending jump now has its label block.
	for name, sources := range b.gotos {
		target := b.labels[name]
		if target == nil {
			continue // label outside body (malformed source); drop the edge
		}
		for _, src := range sources {
			b.edge(src, target, nil, false)
		}
	}
	return b.c
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{Index: len(b.c.Blocks)}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

// edge appends cur→to unless cur is nil (dead code after a terminator).
func (b *cfgBuilder) edge(cur, to *cfgBlock, cond ast.Expr, neg bool) {
	if cur == nil || to == nil {
		return
	}
	cur.Succs = append(cur.Succs, cfgEdge{To: to, Cond: cond, Neg: neg})
}

// stmtList threads the statements through cur, returning the live tail
// block (nil when every path terminated).
func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt) *cfgBlock {
	for _, s := range list {
		cur = b.stmt(cur, s)
	}
	return cur
}

// stmt translates one statement starting at cur, returning the block that
// control falls out of (nil when s always transfers away).
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt) *cfgBlock {
	if cur == nil {
		// Dead code after return/goto/panic: still build the subgraph so
		// facts exist (the solver leaves it at bottom), anchored on a
		// fresh unreachable block.
		cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.ReturnStmt:
		cur = b.append(cur, st)
		cur.Return = st
		b.edge(cur, b.c.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		return b.branchStmt(cur, st)

	case *ast.LabeledStmt:
		// The label block is both the goto target and the head of the
		// labeled statement; break/continue with this label resolve inside.
		lbl := b.newBlock()
		b.edge(cur, lbl, nil, false)
		b.labels[st.Label.Name] = lbl
		switch inner := st.Stmt.(type) {
		case *ast.ForStmt:
			return b.forStmt(lbl, inner, st.Label.Name)
		case *ast.RangeStmt:
			return b.rangeStmt(lbl, inner, st.Label.Name)
		case *ast.SwitchStmt:
			return b.switchStmt(lbl, inner, st.Label.Name)
		case *ast.TypeSwitchStmt:
			return b.typeSwitchStmt(lbl, inner, st.Label.Name)
		case *ast.SelectStmt:
			return b.selectStmt(lbl, inner, st.Label.Name)
		default:
			return b.stmt(lbl, st.Stmt)
		}

	case *ast.IfStmt:
		return b.ifStmt(cur, st)
	case *ast.ForStmt:
		return b.forStmt(cur, st, "")
	case *ast.RangeStmt:
		return b.rangeStmt(cur, st, "")
	case *ast.SwitchStmt:
		return b.switchStmt(cur, st, "")
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(cur, st, "")
	case *ast.SelectStmt:
		return b.selectStmt(cur, st, "")
	case *ast.BlockStmt:
		return b.stmtList(cur, st.List)

	case *ast.ExprStmt:
		if isPanicCall(st.X) {
			cur = b.append(cur, st)
			b.edge(cur, b.c.PanicExit, nil, false)
			return nil
		}
		return b.append(cur, st)

	default:
		return b.append(cur, s)
	}
}

// append places s in its own panic-source block when the client says it
// may panic, otherwise into cur.
func (b *cfgBuilder) append(cur *cfgBlock, s ast.Node) *cfgBlock {
	if b.opts.PanicSource != nil && b.opts.PanicSource(s) {
		pb := b.newBlock()
		b.edge(cur, pb, nil, false)
		pb.Nodes = append(pb.Nodes, s)
		pb.PanicSource = true
		after := b.newBlock()
		b.edge(pb, after, nil, false)
		return after
	}
	cur.Nodes = append(cur.Nodes, s)
	return cur
}

func (b *cfgBuilder) branchStmt(cur *cfgBlock, st *ast.BranchStmt) *cfgBlock {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok {
	case token.GOTO:
		b.gotos[label] = append(b.gotos[label], cur)
		return nil
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if label == "" || fr.label == label {
				b.edge(cur, fr.breakTo, nil, false)
				return nil
			}
		}
		return nil
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			fr := b.frames[i]
			if fr.isSwitch {
				continue // continue skips switch/select frames
			}
			if label == "" || fr.label == label {
				b.edge(cur, fr.contTo, nil, false)
				return nil
			}
		}
		return nil
	case token.FALLTHROUGH:
		// Handled by switchStmt wiring case bodies; as a statement it just
		// ends the block (the fallthrough edge is added by the caller).
		return cur
	}
	return cur
}

func (b *cfgBuilder) ifStmt(cur *cfgBlock, st *ast.IfStmt) *cfgBlock {
	if st.Init != nil {
		cur = b.append(cur, st.Init)
	}
	cur.Nodes = append(cur.Nodes, st.Cond)
	after := b.newBlock()

	thenB := b.newBlock()
	b.edge(cur, thenB, st.Cond, false)
	thenEnd := b.stmtList(thenB, st.Body.List)
	b.edge(thenEnd, after, nil, false)

	if st.Else != nil {
		elseB := b.newBlock()
		b.edge(cur, elseB, st.Cond, true)
		elseEnd := b.stmt(elseB, st.Else)
		b.edge(elseEnd, after, nil, false)
	} else {
		b.edge(cur, after, st.Cond, true)
	}
	return after
}

func (b *cfgBuilder) forStmt(cur *cfgBlock, st *ast.ForStmt, label string) *cfgBlock {
	if st.Init != nil {
		cur = b.append(cur, st.Init)
	}
	header := b.newBlock()
	b.edge(cur, header, nil, false)
	after := b.newBlock()
	post := b.newBlock()
	if st.Post != nil {
		post.Nodes = append(post.Nodes, st.Post)
	}
	b.edge(post, header, nil, false)

	body := b.newBlock()
	if st.Cond != nil {
		header.Nodes = append(header.Nodes, st.Cond)
		b.edge(header, body, st.Cond, false)
		b.edge(header, after, st.Cond, true)
	} else {
		b.edge(header, body, nil, false) // for {}: exits only via break
	}

	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: post})
	bodyEnd := b.stmtList(body, st.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(bodyEnd, post, nil, false)
	return after
}

func (b *cfgBuilder) rangeStmt(cur *cfgBlock, st *ast.RangeStmt, label string) *cfgBlock {
	header := b.newBlock()
	b.edge(cur, header, nil, false)
	// The RangeStmt node itself stands for the per-iteration key/value
	// binding (and the one-time evaluation of X).
	header.Nodes = append(header.Nodes, st)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(header, body, nil, false)
	b.edge(header, after, nil, false)

	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, contTo: header})
	bodyEnd := b.stmtList(body, st.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(bodyEnd, header, nil, false)
	return after
}

func (b *cfgBuilder) switchStmt(cur *cfgBlock, st *ast.SwitchStmt, label string) *cfgBlock {
	if st.Init != nil {
		cur = b.append(cur, st.Init)
	}
	if st.Tag != nil {
		cur.Nodes = append(cur.Nodes, st.Tag)
	}
	return b.caseClauses(cur, st.Body.List, label, true)
}

func (b *cfgBuilder) typeSwitchStmt(cur *cfgBlock, st *ast.TypeSwitchStmt, label string) *cfgBlock {
	if st.Init != nil {
		cur = b.append(cur, st.Init)
	}
	cur = b.append(cur, st.Assign)
	return b.caseClauses(cur, st.Body.List, label, false)
}

// caseClauses wires switch/type-switch bodies: every clause is entered
// from the dispatch block, fallthrough chains clause bodies, and a
// missing default adds a skip edge.
func (b *cfgBuilder) caseClauses(dispatch *cfgBlock, clauses []ast.Stmt, label string, allowFallthrough bool) *cfgBlock {
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, isSwitch: true})

	hasDefault := false
	heads := make([]*cfgBlock, len(clauses))
	for i, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		heads[i] = b.newBlock()
		// Case expressions are evaluated by the dispatch block.
		for _, e := range cc.List {
			dispatch.Nodes = append(dispatch.Nodes, e)
		}
		b.edge(dispatch, heads[i], nil, false)
	}
	for i, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok || heads[i] == nil {
			continue
		}
		end := b.stmtList(heads[i], cc.Body)
		if allowFallthrough && endsInFallthrough(cc.Body) && i+1 < len(clauses) && heads[i+1] != nil {
			b.edge(end, heads[i+1], nil, false)
		} else {
			b.edge(end, after, nil, false)
		}
	}
	if !hasDefault {
		b.edge(dispatch, after, nil, false)
	}
	b.frames = b.frames[:len(b.frames)-1]
	return after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) selectStmt(cur *cfgBlock, st *ast.SelectStmt, label string) *cfgBlock {
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after, isSwitch: true})
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		if cc.Comm != nil {
			head.Nodes = append(head.Nodes, cc.Comm)
		}
		end := b.stmtList(head, cc.Body)
		b.edge(end, after, nil, false)
	}
	if len(st.Body.List) == 0 {
		b.edge(cur, after, nil, false)
	}
	b.frames = b.frames[:len(b.frames)-1]
	return after
}

// isPanicCall reports whether e is a direct call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// preds returns the predecessor map of c (panic-source IN edges included
// as predecessors of PanicExit).
func (c *cfg) preds() map[*cfgBlock][]*cfgBlock {
	p := make(map[*cfgBlock][]*cfgBlock)
	for _, blk := range c.Blocks {
		for _, e := range blk.Succs {
			p[e.To] = append(p[e.To], blk)
		}
		if blk.PanicSource {
			p[c.PanicExit] = append(p[c.PanicExit], blk)
		}
	}
	return p
}

// witnessPath returns a shortest block path from→to (inclusive), skipping
// blocks rejected by avoid, or nil when unreachable. It is the evidence
// trail attached to path-sensitive findings.
func (c *cfg) witnessPath(from, to *cfgBlock, avoid func(*cfgBlock) bool) []*cfgBlock {
	if from == nil || to == nil {
		return nil
	}
	prev := map[*cfgBlock]*cfgBlock{from: from}
	queue := []*cfgBlock{from}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if blk == to {
			var path []*cfgBlock
			for at := to; ; at = prev[at] {
				path = append([]*cfgBlock{at}, path...)
				if at == from {
					return path
				}
			}
		}
		next := make([]*cfgBlock, 0, len(blk.Succs)+1)
		for _, e := range blk.Succs {
			next = append(next, e.To)
		}
		if blk.PanicSource {
			next = append(next, c.PanicExit)
		}
		for _, n := range next {
			if _, seen := prev[n]; seen || (avoid != nil && n != to && avoid(n)) {
				continue
			}
			prev[n] = blk
			queue = append(queue, n)
		}
	}
	return nil
}

// blockLabel renders one block for witness traces and the -flow dump:
// its index plus the source line span of its evaluations.
func blockLabel(fset *token.FileSet, c *cfg, blk *cfgBlock) string {
	switch blk {
	case c.Entry:
		if len(blk.Nodes) == 0 {
			return "b0:entry"
		}
	case c.Exit:
		return fmt.Sprintf("b%d:exit", blk.Index)
	case c.PanicExit:
		return fmt.Sprintf("b%d:panic", blk.Index)
	}
	if len(blk.Nodes) == 0 {
		return fmt.Sprintf("b%d", blk.Index)
	}
	first := fset.Position(blk.Nodes[0].Pos()).Line
	last := fset.Position(blk.Nodes[len(blk.Nodes)-1].Pos()).Line
	if first == last {
		return fmt.Sprintf("b%d:L%d", blk.Index, first)
	}
	return fmt.Sprintf("b%d:L%d-%d", blk.Index, first, last)
}

// trace renders a witness path as block labels.
func (c *cfg) trace(fset *token.FileSet, path []*cfgBlock) []string {
	out := make([]string, 0, len(path))
	for _, blk := range path {
		out = append(out, blockLabel(fset, c, blk))
	}
	return out
}

// dump renders the whole graph for the driver's -flow debug mode.
func (c *cfg) dump(fset *token.FileSet) string {
	var sb strings.Builder
	blocks := append([]*cfgBlock(nil), c.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, blk := range blocks {
		fmt.Fprintf(&sb, "  %s", blockLabel(fset, c, blk))
		if blk.PanicSource {
			sb.WriteString(" [panic-source]")
		}
		if blk.Return != nil {
			sb.WriteString(" [return]")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, e := range blk.Succs {
				tag := ""
				if e.Cond != nil {
					if e.Neg {
						tag = "(false)"
					} else {
						tag = "(true)"
					}
				}
				fmt.Fprintf(&sb, " b%d%s", e.To.Index, tag)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// DumpCFGs renders the control-flow graph of every function whose
// qualified name matches, one dump per function — the backing of the
// driver's -flow debug view. Methods qualify as pkg.(Recv).Name; plain
// functions as pkg.Name.
func DumpCFGs(w io.Writer, pkgs []*Package, match func(string) bool) error {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := pkg.Path + "."
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					name += "(" + types.ExprString(fd.Recv.List[0].Type) + ")."
				}
				name += fd.Name.Name
				if !match(name) {
					continue
				}
				c := buildCFG(fd.Body, cfgOptions{})
				if _, err := fmt.Fprintf(w, "%s  %s\n%s\n", name, pkg.Fset.Position(fd.Pos()), c.dump(pkg.Fset)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
