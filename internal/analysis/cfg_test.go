package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncCFG parses src, finds func f, and builds its CFG.
func parseFuncCFG(t *testing.T, src string, opts cfgOptions) (*token.FileSet, *cfg) {
	t.Helper()
	fset := token.NewFileSet()
	// Each src begins with a newline, so "package p"+src puts func f on
	// line 2 and the numbering in the tests counts from there.
	file, err := parser.ParseFile(fset, "cfgtest.go", "package p"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			return fset, buildCFG(fd.Body, opts)
		}
	}
	t.Fatal("no func f in source")
	return nil, nil
}

// blockAtLine returns the first block evaluating a node that starts on
// the given line of the (package-prefixed) source.
func blockAtLine(fset *token.FileSet, c *cfg, line int) *cfgBlock {
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if fset.Position(n.Pos()).Line == line {
				return blk
			}
		}
	}
	return nil
}

func reachable(c *cfg, from, to *cfgBlock) bool {
	return c.witnessPath(from, to, nil) != nil
}

func TestCFGGoto(t *testing.T) {
	// Lines (after the package line): 2 func, 3 if, 4 goto, 6 return 1, 8 return 2.
	fset, c := parseFuncCFG(t, `
func f(skip bool) int {
	if skip {
		goto end
	}
	return 1
end:
	return 2
}`, cfgOptions{})
	first, second := blockAtLine(fset, c, 6), blockAtLine(fset, c, 8)
	if first == nil || second == nil {
		t.Fatalf("return blocks not found: %v / %v", first, second)
	}
	if !reachable(c, c.Entry, second) {
		t.Errorf("goto target unreachable from entry:\n%s", c.dump(fset))
	}
	// The goto path must bypass `return 1`: a path avoiding that block
	// still reaches the label.
	if c.witnessPath(c.Entry, second, func(b *cfgBlock) bool { return b == first }) == nil {
		t.Errorf("goto edge missing — label only reachable through fallthrough:\n%s", c.dump(fset))
	}
	if first.Return == nil || second.Return == nil {
		t.Errorf("return statements did not mark their blocks")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// Line 4 is the outer range header, 12 the final return.
	fset, c := parseFuncCFG(t, `
func f(xs [][]int) int {
	total := 0
outer:
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] < 0 {
				break outer
			}
			total += j
		}
	}
	return total
}`, cfgOptions{})
	outerHeader := blockAtLine(fset, c, 5)
	ret := blockAtLine(fset, c, 13)
	breakBlk := blockAtLine(fset, c, 7) // the if-condition block preceding break
	if outerHeader == nil || ret == nil || breakBlk == nil {
		t.Fatalf("blocks not found:\n%s", c.dump(fset))
	}
	// break outer must reach the return without re-entering the outer
	// loop header (an unlabeled break would land in the outer body and
	// have to iterate through the header again).
	avoid := func(b *cfgBlock) bool { return b == outerHeader }
	if c.witnessPath(breakBlk, ret, avoid) == nil {
		t.Errorf("break outer does not bypass the outer loop header:\n%s", c.dump(fset))
	}
}

func TestCFGSelect(t *testing.T) {
	fset, c := parseFuncCFG(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
		return 0
	}
}`, cfgOptions{})
	recvA, recvB := blockAtLine(fset, c, 4), blockAtLine(fset, c, 6)
	if recvA == nil || recvB == nil {
		t.Fatalf("comm clause heads not found:\n%s", c.dump(fset))
	}
	if recvA == recvB {
		t.Fatalf("comm clauses share a block:\n%s", c.dump(fset))
	}
	for name, blk := range map[string]*cfgBlock{"case A": recvA, "case B": recvB} {
		if !reachable(c, c.Entry, blk) {
			t.Errorf("%s unreachable from entry:\n%s", name, c.dump(fset))
		}
		if !reachable(c, blk, c.Exit) {
			t.Errorf("%s does not reach exit:\n%s", name, c.dump(fset))
		}
	}
}

func TestCFGPanicSourceIsolation(t *testing.T) {
	fset, c := parseFuncCFG(t, `
func f() int {
	x := 1
	mayPanic()
	x = 2
	return x
}`, cfgOptions{PanicSource: func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mayPanic" {
					found = true
				}
			}
			return !found
		})
		return found
	}})
	src := blockAtLine(fset, c, 4)
	if src == nil || !src.PanicSource {
		t.Fatalf("panic source not isolated:\n%s", c.dump(fset))
	}
	if len(src.Nodes) != 1 {
		t.Errorf("panic-source block holds %d nodes, want exactly the panicking statement", len(src.Nodes))
	}
	before, after := blockAtLine(fset, c, 3), blockAtLine(fset, c, 5)
	if before == src || after == src {
		t.Errorf("surrounding statements share the panic-source block:\n%s", c.dump(fset))
	}
	preds := c.preds()
	foundPred := false
	for _, p := range preds[c.PanicExit] {
		if p == src {
			foundPred = true
		}
	}
	if !foundPred {
		t.Errorf("panic exit is not fed by the panic-source block:\n%s", c.dump(fset))
	}
}

func TestCFGExplicitPanic(t *testing.T) {
	fset, c := parseFuncCFG(t, `
func f(bad bool) int {
	if bad {
		panic("no")
	}
	return 1
}`, cfgOptions{})
	pb := blockAtLine(fset, c, 4)
	if pb == nil {
		t.Fatalf("panic statement block not found:\n%s", c.dump(fset))
	}
	hasEdge := false
	for _, e := range pb.Succs {
		if e.To == c.PanicExit {
			hasEdge = true
		}
		if e.To == c.Exit {
			t.Errorf("panic block reaches the normal exit")
		}
	}
	if !hasEdge {
		t.Errorf("explicit panic does not edge to the panic exit:\n%s", c.dump(fset))
	}
}

func TestCFGFallthrough(t *testing.T) {
	fset, c := parseFuncCFG(t, `
func f(x int) int {
	s := 0
	switch x {
	case 1:
		s++
		fallthrough
	case 2:
		s += 2
	default:
		s = 9
	}
	return s
}`, cfgOptions{})
	caseOne, caseTwo := blockAtLine(fset, c, 6), blockAtLine(fset, c, 9)
	if caseOne == nil || caseTwo == nil {
		t.Fatalf("case bodies not found:\n%s", c.dump(fset))
	}
	hasFall := false
	for _, e := range caseOne.Succs {
		if e.To == caseTwo {
			hasFall = true
		}
	}
	if !hasFall {
		t.Errorf("fallthrough does not chain case 1 into case 2:\n%s", c.dump(fset))
	}
}

func TestCFGBranchEdgesLabeled(t *testing.T) {
	fset, c := parseFuncCFG(t, `
func f(ok bool) int {
	if ok {
		return 1
	}
	return 0
}`, cfgOptions{})
	condBlk := blockAtLine(fset, c, 3)
	if condBlk == nil {
		t.Fatalf("condition block not found:\n%s", c.dump(fset))
	}
	var sawTrue, sawFalse bool
	for _, e := range condBlk.Succs {
		if e.Cond == nil {
			continue
		}
		if e.Neg {
			sawFalse = true
		} else {
			sawTrue = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Errorf("if edges not labeled with the condition (true=%v false=%v):\n%s", sawTrue, sawFalse, c.dump(fset))
	}
}

func TestCFGDump(t *testing.T) {
	fset, c := parseFuncCFG(t, `
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, cfgOptions{})
	d := c.dump(fset)
	for _, want := range []string{"b0", "(true)", "(false)", "[return]"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}
