package analysis

import (
	"strings"
	"testing"
)

// diagMessages flattens a diagnostic slice for substring assertions.
func diagMessages(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Message
	}
	return out
}

func requireOneDiag(t *testing.T, diags []Diagnostic, want string) {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic containing %q, got %d: %v",
			want, len(diags), diagMessages(diags))
	}
	if !strings.Contains(diags[0].Message, want) {
		t.Fatalf("diagnostic %q does not contain %q", diags[0].Message, want)
	}
}

// Directive findings are reported at the comment's own position, where a
// // want annotation cannot sit, so directive hygiene is unit-tested here
// instead of in the golden fixtures.

func TestLoopboundMalformedDirective(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Sum is charge-free; the directive below is still malformed.
func Sum(xs []float64) float64 {
	var total float64
	//dp:loopbound
	for _, x := range xs {
		total += x
	}
	return total
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{EpsBound})
	requireOneDiag(t, diags, "malformed //dp:loopbound directive: want //dp:loopbound k=<expr>")
}

func TestLoopboundNonPositiveConstant(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

// Sum declares a zero trip count, which can never bound a charge.
func Sum(xs []float64) float64 {
	var total float64
	//dp:loopbound k=0
	for _, x := range xs {
		total += x
	}
	return total
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{EpsBound})
	requireOneDiag(t, diags, "loop bound must be a positive finite count")
}

func TestGuardedbyMissingReason(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

import "sync"

type Box struct {
	mu sync.Mutex
	//dp:guardedby mu
	n int
}

func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{Lockcheck})
	requireOneDiag(t, diags, "malformed //dp:guardedby directive: want //dp:guardedby <mutex|none> <reason>")
}

func TestGuardedbyUnknownMutex(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

import "sync"

type Box struct {
	mu sync.Mutex
	//dp:guardedby lock protected elsewhere
	n int
}

func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{Lockcheck})
	requireOneDiag(t, diags, `//dp:guardedby names unknown mutex "lock" on Box.n`)
}

func TestGuardedbyUnanchored(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
}

//dp:guardedby mu floating directive, two lines below any field
func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{Lockcheck})
	requireOneDiag(t, diags, "//dp:guardedby directive is not anchored to a field of a mutex-holding struct")
}

func TestGuardedbyNoneExemptsField(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"p.go": `package p

import "sync"

type Box struct {
	mu sync.Mutex
	n  int
	//dp:guardedby none set once before the Box is shared
	label string
}

func (b *Box) Inc() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// Label reads the exempt field with no lock: no finding.
func (b *Box) Label() string {
	return b.label
}
`,
	})
	if diags := Run(loadFixtureModule(t, dir), []*Analyzer{Lockcheck}); len(diags) != 0 {
		t.Fatalf("exempt field produced findings: %v", diagMessages(diags))
	}
}
