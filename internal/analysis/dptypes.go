package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Structural recognition of the repository's DP vocabulary. The checks
// must work on golden-test fixtures as well as the real tree, so nothing
// here keys on the module path: a "mechanism" is any named type carrying
// both a Release and a Guarantee method, an "accountant spend" is any
// method named Spend taking a single Guarantee-typed argument, and "raw
// data" is any value of a type named Dataset or Example (or a container
// of them).

// hasMethod reports whether t (or its pointer type) has a method with the
// given exported name.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// namedName returns the name of the (possibly pointed-to) named type, or
// "".
func namedName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		default:
			return ""
		}
	}
}

// methodRecv returns the receiver expression and type of a method call,
// or (nil, nil) for ordinary and package-qualified calls.
func methodRecv(pkg *Package, call *ast.CallExpr) (ast.Expr, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return nil, nil
		}
	}
	return sel.X, pkg.Info.TypeOf(sel.X)
}

// isTwoPhaseHold reports whether t follows the two-phase hold protocol
// structurally: Commit and Release protocol methods plus an Amount
// method returning the held Guarantee. mechanism.Reservation is the
// in-memory archetype; wal.Txn — the write-ahead-logged wrapper that
// couples a durable reserve record to the same in-memory hold — is the
// durable one. Any such type's Commit is the act that turns an admitted
// hold into a ledger record, so the must-spend rule and the two-phase
// flow check treat it exactly like a Reservation without keying on the
// type's name or import path.
func isTwoPhaseHold(t types.Type) bool {
	if t == nil || !hasMethod(t, "Commit") || !hasMethod(t, "Release") {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Amount")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		namedName(sig.Results().At(0).Type()) == "Guarantee"
}

// isReleaseCall reports whether call releases DP-protected output: a
// Release method on a Guarantee-bearing type, or a posterior Sample /
// SampleTheta (and their context-aware SampleCtx / SampleThetaCtx
// variants) on a Guarantee-bearing type (the Gibbs estimator's release
// operation, Theorem 4.1). A Reservation's Release is NOT a DP release:
// reservations bear no Guarantee method, so the receiver test excludes
// them structurally.
func isReleaseCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Release", "Sample", "SampleTheta", "SampleCtx", "SampleThetaCtx":
	default:
		return false
	}
	_, recv := methodRecv(pkg, call)
	return recv != nil && hasMethod(recv, "Guarantee")
}

// isSpendCall reports whether call registers a guarantee with an
// accountant: a method named Spend whose single parameter has a named
// type Guarantee, or a method named SpendDetail whose first parameter
// does (the ledger-metadata variant — same accounting act, extra
// observability payload), or a method named Commit on a two-phase hold
// — a Reservation by name, or any type following the hold protocol
// structurally (Commit/Release/Amount→Guarantee), such as the
// WAL-logged wal.Txn. Commit is the second half of the two-phase
// Reserve/Commit protocol: the guarantee was admitted at Reserve time,
// and Commit is the act that turns the hold into a ledger record — so
// Reserve+Commit jointly satisfy the must-spend rule.
func isSpendCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "Commit" {
		_, recv := methodRecv(pkg, call)
		return recv != nil && (namedName(recv) == "Reservation" || isTwoPhaseHold(recv))
	}
	if sel.Sel.Name != "Spend" && sel.Sel.Name != "SpendDetail" {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() < 1 {
		return false
	}
	if sel.Sel.Name == "Spend" && sig.Params().Len() != 1 {
		return false
	}
	return namedName(sig.Params().At(0).Type()) == "Guarantee"
}

// isAccessLogger reports whether t is an access-logger type: a named
// type carrying a Record method whose single parameter has a named type
// AccessRecord. An access logger is telemetry plumbing — it transcribes
// already-released, already-accounted request outcomes (trace id, status,
// quoted vs. spent ε) into an NDJSON stream — so its methods are observer
// scopes structurally, the same way a Release+Guarantee method pair makes
// a type a mechanism: no //dp:observer comment required.
func isAccessLogger(t types.Type) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Record")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	return namedName(sig.Params().At(0).Type()) == "AccessRecord"
}

// isAccessLogScope reports whether fd is a method of an access-logger
// type: the structural half of the observer exemption, covering tracing
// plumbing that acctlint/postproc/twophase must never flag.
func isAccessLogScope(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return isAccessLogger(p.TypeOf(fd.Recv.List[0].Type))
}

// observerPrefix introduces a function-level observer exemption:
//
//	//dp:observer <reason>
//
// placed on, or on the line above, a function declaration or function
// literal. An observer function inspects a mechanism's releases without
// making them part of a production release path: an audit harness that
// samples the output distribution to estimate realized ε, a trace sink
// replaying ledger records. acctlint and postproc skip observer scopes
// as a unit — the releases they see are measurements, not spends — which
// is a structural statement about the function's role, unlike a
// //dplint:ignore line suppression that merely mutes one finding.
const observerPrefix = "//dp:observer"

// observerDirective is one parsed //dp:observer comment.
type observerDirective struct {
	reason string
	pos    token.Pos
}

// observerIndex maps "<filename>:<line>" of a function's anchor line to
// its directive. Like //dp:sensitivity, a directive on line L anchors a
// function starting on L (trailing comment) or L+1 (comment above).
type observerIndex map[string]*observerDirective

// buildObserverIndex parses every //dp:observer directive in pkg.
// Well-formed ones land in the index; directives that omit the
// mandatory reason are returned for acctlint to report.
func buildObserverIndex(pkg *Package) (observerIndex, []token.Pos) {
	idx := make(observerIndex)
	var bad []token.Pos
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, observerPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, observerPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //dp:observerXYZ is not a directive
				}
				if strings.TrimSpace(rest) == "" {
					bad = append(bad, c.Pos())
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &observerDirective{reason: strings.TrimSpace(rest), pos: c.Pos()}
				for _, l := range []int{pos.Line, pos.Line + 1} {
					idx[fmt.Sprintf("%s:%d", pos.Filename, l)] = d
				}
			}
		}
	}
	return idx, bad
}

// isObserverScope reports whether node — a *ast.FuncDecl or a
// *ast.FuncLit — starts on a line anchored by a //dp:observer directive.
func (idx observerIndex) isObserverScope(pkg *Package, node ast.Node) bool {
	if len(idx) == 0 || node == nil {
		return false
	}
	pos := pkg.Fset.Position(node.Pos())
	return idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] != nil
}

// isObserverFunc reports whether fn is declared under a //dp:observer
// directive in its own package — the cross-package half of observer
// propagation. Per-package indexes are cached on the Program.
func (pr *Program) isObserverFunc(fn *types.Func) bool {
	if pr == nil || fn == nil {
		return false
	}
	node := pr.NodeOf(fn)
	if node == nil {
		return false
	}
	if pr.obsIdx == nil {
		pr.obsIdx = make(map[*Package]observerIndex)
	}
	idx, ok := pr.obsIdx[node.Pkg]
	if !ok {
		idx, _ = buildObserverIndex(node.Pkg)
		pr.obsIdx[node.Pkg] = idx
	}
	return idx.isObserverScope(node.Pkg, node.Decl)
}

// observerArgLits returns the function literals in file passed directly
// as arguments to calls whose statically-resolved callee is an
// observer-annotated function (possibly in another analyzed package).
// Handing a closure to an observer entry point — an audit harness that
// samples it to estimate realized ε — makes the closure part of the
// measurement, so acctlint and postproc treat it as an observer scope
// without a per-call-site directive.
func observerArgLits(pkg *Package, prog *Program, file *ast.File) map[*ast.FuncLit]bool {
	out := make(map[*ast.FuncLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || !prog.isObserverFunc(fn) {
			return true
		}
		for _, a := range call.Args {
			if lit, isLit := a.(*ast.FuncLit); isLit {
				out[lit] = true
			}
		}
		return true
	})
	return out
}

// isRawDataType reports whether t holds raw (pre-release) sample data: a
// Dataset or Example type, a pointer or slice of one.
func isRawDataType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			n := u.Obj().Name()
			return n == "Dataset" || n == "Example"
		default:
			return false
		}
	}
}
