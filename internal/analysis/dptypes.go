package analysis

import (
	"go/ast"
	"go/types"
)

// Structural recognition of the repository's DP vocabulary. The checks
// must work on golden-test fixtures as well as the real tree, so nothing
// here keys on the module path: a "mechanism" is any named type carrying
// both a Release and a Guarantee method, an "accountant spend" is any
// method named Spend taking a single Guarantee-typed argument, and "raw
// data" is any value of a type named Dataset or Example (or a container
// of them).

// hasMethod reports whether t (or its pointer type) has a method with the
// given exported name.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// namedName returns the name of the (possibly pointed-to) named type, or
// "".
func namedName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		default:
			return ""
		}
	}
}

// methodRecv returns the receiver expression and type of a method call,
// or (nil, nil) for ordinary and package-qualified calls.
func methodRecv(pkg *Package, call *ast.CallExpr) (ast.Expr, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
			return nil, nil
		}
	}
	return sel.X, pkg.Info.TypeOf(sel.X)
}

// isReleaseCall reports whether call releases DP-protected output: a
// Release method on a Guarantee-bearing type, or a posterior Sample /
// SampleTheta on a Guarantee-bearing type (the Gibbs estimator's release
// operation, Theorem 4.1).
func isReleaseCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Release" && name != "Sample" && name != "SampleTheta" {
		return false
	}
	_, recv := methodRecv(pkg, call)
	return recv != nil && hasMethod(recv, "Guarantee")
}

// isSpendCall reports whether call registers a guarantee with an
// accountant: a method named Spend whose single parameter has a named
// type Guarantee.
func isSpendCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Spend" {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	return namedName(sig.Params().At(0).Type()) == "Guarantee"
}

// isRawDataType reports whether t holds raw (pre-release) sample data: a
// Dataset or Example type, a pointer or slice of one.
func isRawDataType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			n := u.Obj().Name()
			return n == "Dataset" || n == "Example"
		default:
			return false
		}
	}
}
