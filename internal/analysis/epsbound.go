package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// epsbound is the interprocedural symbolic budget-bound analysis: for every
// exported entry point (the repro facade, the core/learn/svt release paths,
// and every serve handler) it folds the quoted (ε, δ) of each accountant
// charge — Spend, SpendDetail, or a two-phase Reserve — through the
// function's control structure and the call graph, producing a worst-case
// symbolic budget bound per entry point. Sequential charges sum, branches
// take the symbolic max, and loops multiply their per-iteration cost by a
// //dp:loopbound k=<expr> annotation; a loop that charges budget without
// such an annotation certifies as ⊤ ("unbounded"), which is a finding.
//
// The bound algebra is deliberately small: constants, opaque symbols
// (source expressions such as cfg.Epsilon), n-ary sums, maxes, and
// products with a constant coefficient. Division folds to a reciprocal
// factor "1/(X)" that cancels multiplicatively against an equal-text
// factor, which is exactly what makes per-quantile splits like
// part/len(cfg.Quantiles) iterated len(cfg.Quantiles) times fold back to
// the advertised total. Per-function summaries carry parameter markers
// ($p<i>, $p<i>.Epsilon, …) that call sites substitute with their argument
// expressions, so a handler quoting req.Epsilon into a shared two-phase
// wrapper certifies as exactly "req.Epsilon".
//
// Function literals passed as call arguments are NOT charged to the
// enclosing function: under the serve layer's quoted-guarantee contract
// the wrapper receiving the closure is the party that quotes (and is
// charged for) the work, and counting both sides would double the bound.
// Immediately-invoked literals (func(){…}(), go func(){…}()) are inlined.
// Calls that cannot be resolved statically (interface methods, function
// values) contribute zero; every release in this tree charges through a
// concrete Accountant method, which is what the analysis keys on.

// BoundEntryPoints documents which functions receive certificates when the
// module under analysis is the repro tree itself; fixture modules certify
// every exported function instead. See entryNodes.

const maxBoundEvents = 48

// ---------------------------------------------------------------------------
// Bound algebra.

type boundKind int

const (
	boundConst boundKind = iota
	boundSym
	boundAdd
	boundMax
	boundMul
	boundTop
)

// bound is one symbolic budget expression. For boundMul, c is the constant
// coefficient and args the non-constant factors; for boundAdd/boundMax,
// args are the terms; boundSym carries the source text of an opaque term.
type bound struct {
	kind boundKind
	c    float64
	sym  string
	args []*bound
}

func constBound(c float64) *bound { return &bound{kind: boundConst, c: c} }
func symBound(s string) *bound    { return &bound{kind: boundSym, sym: s} }

var topBound = &bound{kind: boundTop}

func (b *bound) isTop() bool { return b != nil && b.kind == boundTop }

func (b *bound) constVal() (float64, bool) {
	if b != nil && b.kind == boundConst {
		return b.c, true
	}
	return 0, false
}

func (b *bound) isZero() bool {
	v, ok := b.constVal()
	return ok && v == 0 //dplint:ignore floateq exact sentinel: a zero bound is constructed only as the literal constBound(0)
}

func (b *bound) String() string {
	switch b.kind {
	case boundConst:
		return strconv.FormatFloat(b.c, 'g', -1, 64)
	case boundSym:
		return b.sym
	case boundTop:
		return "unbounded"
	case boundAdd:
		parts := make([]string, 0, len(b.args))
		for _, a := range b.args {
			parts = append(parts, a.String())
		}
		return strings.Join(parts, " + ")
	case boundMax:
		parts := make([]string, 0, len(b.args))
		for _, a := range b.args {
			parts = append(parts, a.String())
		}
		return "max(" + strings.Join(parts, ", ") + ")"
	case boundMul:
		var parts []string
		if b.c != 1 || len(b.args) == 0 { //dplint:ignore floateq exact sentinel: the neutral coefficient is assigned only as the literal 1
			parts = append(parts, strconv.FormatFloat(b.c, 'g', -1, 64))
		}
		for _, a := range b.args {
			s := a.String()
			if a.kind == boundAdd || a.kind == boundMax {
				s = "(" + s + ")"
			}
			parts = append(parts, s)
		}
		return strings.Join(parts, "*")
	}
	return "?"
}

// addBounds sums, flattening nested sums, folding constants, and merging
// like terms by their rendered body (0.5ε + 0.5ε = ε).
func addBounds(bs ...*bound) *bound {
	var flat []*bound
	var walk func(*bound)
	walk = func(b *bound) {
		if b == nil {
			return
		}
		if b.kind == boundAdd {
			for _, a := range b.args {
				walk(a)
			}
			return
		}
		flat = append(flat, b)
	}
	for _, b := range bs {
		walk(b)
	}
	constSum := 0.0
	type likeTerm struct {
		coef float64
		body *bound
	}
	var order []string
	terms := make(map[string]*likeTerm)
	for _, b := range flat {
		if b.isTop() {
			return topBound
		}
		if v, ok := b.constVal(); ok {
			constSum += v
			continue
		}
		coef, body := 1.0, b
		if b.kind == boundMul {
			coef = b.c
			if len(b.args) == 1 {
				body = b.args[0]
			} else {
				body = &bound{kind: boundMul, c: 1, args: b.args}
			}
		}
		key := body.String()
		if t, ok := terms[key]; ok {
			t.coef += coef
		} else {
			terms[key] = &likeTerm{coef: coef, body: body}
			order = append(order, key)
		}
	}
	var out []*bound
	if constSum != 0 { //dplint:ignore floateq exact sentinel: dropping an exact-zero constant term, not comparing measurements
		out = append(out, constBound(constSum))
	}
	for _, key := range order {
		t := terms[key]
		if t.coef == 0 { //dplint:ignore floateq exact sentinel: coefficients that cancel to exactly zero drop; near-zero must render honestly
			continue
		}
		out = append(out, mulBounds(constBound(t.coef), t.body))
	}
	switch len(out) {
	case 0:
		return constBound(0)
	case 1:
		return out[0]
	}
	return &bound{kind: boundAdd, args: out}
}

// maxBounds takes the symbolic maximum. ε costs are nonnegative, so a
// constant 0 alternative is absorbed by any symbolic one.
func maxBounds(bs ...*bound) *bound {
	var flat []*bound
	var walk func(*bound)
	walk = func(b *bound) {
		if b == nil {
			return
		}
		if b.kind == boundMax {
			for _, a := range b.args {
				walk(a)
			}
			return
		}
		flat = append(flat, b)
	}
	for _, b := range bs {
		walk(b)
	}
	haveConst, constMax := false, 0.0
	var out []*bound
	seen := make(map[string]bool)
	for _, b := range flat {
		if b.isTop() {
			return topBound
		}
		if v, ok := b.constVal(); ok {
			if !haveConst || v > constMax {
				constMax = v
			}
			haveConst = true
			continue
		}
		key := b.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, b)
	}
	if haveConst && !(constMax == 0 && len(out) > 0) { //dplint:ignore floateq exact sentinel: max(0, X) absorbs only the exact zero alternative
		out = append([]*bound{constBound(constMax)}, out...)
	}
	switch len(out) {
	case 0:
		return constBound(0)
	case 1:
		return out[0]
	}
	return &bound{kind: boundMax, args: out}
}

// factorsOf decomposes b into (constant coefficient, non-constant factors).
func factorsOf(b *bound) (float64, []*bound) {
	switch b.kind {
	case boundConst:
		return b.c, nil
	case boundMul:
		return b.c, b.args
	}
	return 1, []*bound{b}
}

// mulBounds multiplies, cancelling reciprocal factors: a symbolic factor
// rendered "1/(X)" annihilates a factor rendered exactly "X".
func mulBounds(a, b *bound) *bound {
	if a == nil || b == nil || a.isTop() || b.isTop() {
		return topBound
	}
	ca, fa := factorsOf(a)
	cb, fb := factorsOf(b)
	coef := ca * cb
	factors := cancelFactors(append(append([]*bound{}, fa...), fb...))
	if coef == 0 || len(factors) == 0 { //dplint:ignore floateq exact sentinel: annihilation applies only to the exact zero coefficient
		return constBound(coef)
	}
	if coef == 1 && len(factors) == 1 { //dplint:ignore floateq exact sentinel: unwrapping the exact neutral coefficient is a rendering choice
		return factors[0]
	}
	return &bound{kind: boundMul, c: coef, args: factors}
}

func cancelFactors(fs []*bound) []*bound {
	used := make([]bool, len(fs))
	for i, f := range fs {
		if used[i] || f.kind != boundSym ||
			!strings.HasPrefix(f.sym, "1/(") || !strings.HasSuffix(f.sym, ")") {
			continue
		}
		want := f.sym[3 : len(f.sym)-1]
		for j, g := range fs {
			if j != i && !used[j] && g.String() == want {
				used[i], used[j] = true, true
				break
			}
		}
	}
	var out []*bound
	for i, f := range fs {
		if !used[i] {
			out = append(out, f)
		}
	}
	return out
}

// Parameter markers: summaries refer to the summarized function's own
// parameters as $p<i>[.Field] so call sites can substitute arguments.

func paramSym(i int, field string) string { return fmt.Sprintf("$p%d%s", i, field) }

func parseParamSym(s string) (int, string, bool) {
	if !strings.HasPrefix(s, "$p") {
		return 0, "", false
	}
	rest := s[2:]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if j == 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0, "", false
	}
	return n, rest[j:], true
}

// substParamNames rewrites parameter markers into declared parameter names
// for human-readable rendering at an entry point.
func substParamNames(b *bound, names []string) *bound {
	if b == nil {
		return nil
	}
	switch b.kind {
	case boundSym:
		if i, field, ok := parseParamSym(b.sym); ok {
			name := fmt.Sprintf("arg%d", i)
			if i < len(names) && names[i] != "" && names[i] != "_" {
				name = names[i]
			}
			return symBound(name + field)
		}
		return b
	case boundAdd:
		out := make([]*bound, len(b.args))
		for i, a := range b.args {
			out[i] = substParamNames(a, names)
		}
		return addBounds(out...)
	case boundMax:
		out := make([]*bound, len(b.args))
		for i, a := range b.args {
			out[i] = substParamNames(a, names)
		}
		return maxBounds(out...)
	case boundMul:
		res := constBound(b.c)
		for _, a := range b.args {
			res = mulBounds(res, substParamNames(a, names))
		}
		return res
	}
	return b
}

// costBound is a joint (ε, δ) budget bound.
type costBound struct {
	eps   *bound
	delta *bound
}

func zeroCost() costBound { return costBound{eps: constBound(0), delta: constBound(0)} }
func topCost() costBound  { return costBound{eps: topBound, delta: topBound} }

func (c costBound) add(o costBound) costBound {
	return costBound{eps: addBounds(c.eps, o.eps), delta: addBounds(c.delta, o.delta)}
}

func (c costBound) max(o costBound) costBound {
	return costBound{eps: maxBounds(c.eps, o.eps), delta: maxBounds(c.delta, o.delta)}
}

func (c costBound) mul(k *bound) costBound {
	return costBound{eps: mulBounds(k, c.eps), delta: mulBounds(k, c.delta)}
}

func (c costBound) isZero() bool { return c.eps.isZero() && c.delta.isZero() }

// ---------------------------------------------------------------------------
// //dp:loopbound annotations.

// loopBoundPrefix introduces a loop-trip-count declaration:
//
//	//dp:loopbound k=<expr>
//
// placed on, or on the line above, a for/range statement whose body
// charges privacy budget. The expression is either a positive numeric
// literal (folded into the constant bound) or an opaque source expression
// (cfg.Steps, len(cfg.Quantiles)) kept symbolic — and cancelled against a
// matching per-iteration divisor where possible.
const loopBoundPrefix = "//dp:loopbound"

type loopBoundAnn struct {
	expr string
	bad  string
	pos  token.Pos
}

// loopBoundIndex maps "<filename>:<line>" of a loop's anchor line to its
// annotation (L and L+1, like //dp:sensitivity).
type loopBoundIndex map[string]*loopBoundAnn

func buildLoopBoundIndex(pkg *Package) (loopBoundIndex, []*loopBoundAnn) {
	idx := make(loopBoundIndex)
	var all []*loopBoundAnn
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, loopBoundPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, loopBoundPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ann := &loopBoundAnn{pos: c.Pos()}
				rest = strings.TrimSpace(rest)
				if strings.HasPrefix(rest, "k=") {
					if fields := strings.Fields(strings.TrimPrefix(rest, "k=")); len(fields) > 0 {
						ann.expr = fields[0]
					}
				}
				if ann.expr == "" {
					ann.bad = "want //dp:loopbound k=<expr>"
				} else if v, err := strconv.ParseFloat(ann.expr, 64); err == nil &&
					(v <= 0 || math.IsNaN(v) || math.IsInf(v, 0)) {
					ann.bad = "loop bound must be a positive finite count"
				}
				all = append(all, ann)
				for _, l := range []int{pos.Line, pos.Line + 1} {
					idx[fmt.Sprintf("%s:%d", pos.Filename, l)] = ann
				}
			}
		}
	}
	return idx, all
}

func (idx loopBoundIndex) annFor(pkg *Package, node ast.Node) *loopBoundAnn {
	pos := pkg.Fset.Position(node.Pos())
	return idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
}

// ---------------------------------------------------------------------------
// Whole-program state: memoized per-function summaries (the summary cache
// lives on the Program so dplearn-lint's sweep and BudgetCertificates
// share one computation).

// epsEvent is one witness line: a charge site or a summarized call,
// indented by call depth.
type epsEvent struct {
	pos   token.Position
	depth int
	desc  string
}

// epsSummary is the budget bound of one function body, in terms of the
// function's own parameters ($p markers), plus the charge events backing it.
type epsSummary struct {
	cost   costBound
	events []epsEvent
}

type epsFinding struct {
	pos   token.Pos
	trace []string
	msg   string
}

type epsBoundState struct {
	prog     *Program
	sums     map[string]*epsSummary
	inflight map[string]bool
	charge   map[string]bool
	loopIdx  map[*Package]loopBoundIndex
	loopAll  map[*Package][]*loopBoundAnn
	findings []epsFinding
	ran      bool
}

func (pr *Program) epsBound() *epsBoundState {
	if pr.epsState == nil {
		pr.epsState = &epsBoundState{
			prog:     pr,
			sums:     make(map[string]*epsSummary),
			inflight: make(map[string]bool),
			loopIdx:  make(map[*Package]loopBoundIndex),
			loopAll:  make(map[*Package][]*loopBoundAnn),
		}
	}
	return pr.epsState
}

func (st *epsBoundState) loopIdxFor(pkg *Package) loopBoundIndex {
	idx, ok := st.loopIdx[pkg]
	if !ok {
		var all []*loopBoundAnn
		idx, all = buildLoopBoundIndex(pkg)
		st.loopIdx[pkg] = idx
		st.loopAll[pkg] = all
	}
	return idx
}

// mayCharge reports whether the function with the given key can reach an
// accountant charge through the call graph — the cheap syntactic predicate
// that decides how recursion summarizes (a numeric helper recursing on
// itself is harmless; a charge inside a recursive cycle has no static
// bound). Computed once for the whole program by backwards fixpoint.
func (st *epsBoundState) mayCharge(key string) bool {
	if st.charge == nil {
		st.charge = make(map[string]bool)
		for _, node := range st.prog.Nodes() {
			direct := false
			ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if _, _, ok := chargeOp(node.Pkg, call); ok {
						direct = true
					}
				}
				return !direct
			})
			if direct {
				st.charge[node.Key] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, node := range st.prog.Nodes() {
				if st.charge[node.Key] {
					continue
				}
				for _, c := range node.Calls {
					if st.charge[c.Key] {
						st.charge[node.Key] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return st.charge[key]
}

// summary computes (and caches) the budget bound of the function with the
// given call-graph key. Unknown callees — interface methods, functions
// outside the analyzed packages — summarize to zero; recursion summarizes
// to ⊤ when a charge is reachable from the cycle (a self-feeding charge
// has no static bound) and to zero otherwise.
func (st *epsBoundState) summary(key string) *epsSummary {
	if s, ok := st.sums[key]; ok {
		return s
	}
	if st.inflight[key] {
		if st.mayCharge(key) {
			return &epsSummary{cost: topCost()}
		}
		return &epsSummary{cost: zeroCost()}
	}
	node := st.prog.Node(key)
	if node == nil {
		return &epsSummary{cost: zeroCost()}
	}
	st.inflight[key] = true
	cx := st.ctxFor(node)
	cost := cx.stmtsCost(node.Decl.Body.List)
	delete(st.inflight, key)
	s := &epsSummary{cost: cost, events: *cx.events}
	st.sums[key] = s
	return s
}

// ---------------------------------------------------------------------------
// Per-function cost context.

// localDef records a single-assignment local: the one RHS expression that
// defines it (idx selects the tuple component for multi-value RHS, -1 for
// a plain one). Multi-assigned locals are not tracked.
type localDef struct {
	rhs ast.Expr
	idx int
}

type costCtx struct {
	st        *epsBoundState
	pkg       *Package
	node      *FuncNode
	params    map[types.Object]int
	names     []string
	locals    map[types.Object]localDef
	resolving map[types.Object]bool
	events    *[]epsEvent
}

func (st *epsBoundState) ctxFor(node *FuncNode) *costCtx {
	return &costCtx{
		st:        st,
		pkg:       node.Pkg,
		node:      node,
		params:    buildParams(node.Pkg, node.Decl),
		names:     paramNames(node.Decl),
		locals:    buildLocals(node.Pkg, node.Decl.Body),
		resolving: make(map[types.Object]bool),
		events:    &[]epsEvent{},
	}
}

func buildParams(pkg *Package, fd *ast.FuncDecl) map[types.Object]int {
	m := make(map[types.Object]int)
	if fd.Type.Params == nil {
		return m
	}
	i := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, n := range f.Names {
			if obj := pkg.Info.Defs[n]; obj != nil {
				m[obj] = i
			}
			i++
		}
	}
	return m
}

func paramNames(fd *ast.FuncDecl) []string {
	var out []string
	if fd.Type.Params == nil {
		return out
	}
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func buildLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]localDef {
	defs := make(map[types.Object]localDef)
	count := make(map[types.Object]int)
	record := func(obj types.Object, rhs ast.Expr, idx int) {
		if obj == nil {
			return
		}
		count[obj]++
		defs[obj] = localDef{rhs: rhs, idx: idx}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
				// Compound assignment reads the previous value: not
				// single-assignment.
				for _, lhs := range st.Lhs {
					if obj := identObj(pkg, lhs); obj != nil {
						count[obj] += 2
					}
				}
				return true
			}
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				for i, lhs := range st.Lhs {
					record(identObj(pkg, lhs), st.Rhs[0], i)
				}
			} else {
				for i, lhs := range st.Lhs {
					if i < len(st.Rhs) {
						record(identObj(pkg, lhs), st.Rhs[i], -1)
					}
				}
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 && len(st.Names) > 1 {
				for i, name := range st.Names {
					record(pkg.Info.Defs[name], st.Values[0], i)
				}
			} else {
				for i, name := range st.Names {
					if i < len(st.Values) {
						record(pkg.Info.Defs[name], st.Values[i], -1)
					}
				}
			}
		case *ast.IncDecStmt:
			if obj := identObj(pkg, st.X); obj != nil {
				count[obj] += 2
			}
		case *ast.RangeStmt:
			// Loop variables take a fresh value per iteration: never
			// resolvable to one RHS.
			for _, e := range []ast.Expr{st.Key, st.Value} {
				if e == nil {
					continue
				}
				if obj := identObj(pkg, e); obj != nil {
					count[obj] += 2
				}
			}
		}
		return true
	})
	for obj, n := range count {
		if n > 1 {
			delete(defs, obj)
		}
	}
	return defs
}

// ---------------------------------------------------------------------------
// Scalar and Guarantee extraction.

// denomKey renders a division's denominator for reciprocal cancellation,
// stripping float conversions so float64(len(xs)) cancels len(xs).
func denomKey(e ast.Expr) string {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok &&
			(id.Name == "float64" || id.Name == "float32") {
			return denomKey(call.Args[0])
		}
	}
	return types.ExprString(e)
}

// conversionArg unwraps a type-conversion call T(x), or reports false.
func conversionArg(pkg *Package, call *ast.CallExpr) (ast.Expr, bool) {
	if len(call.Args) != 1 {
		return nil, false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pkg.Info.Uses[fun].(*types.TypeName); ok {
			return call.Args[0], true
		}
	case *ast.SelectorExpr:
		if _, ok := pkg.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return call.Args[0], true
		}
	}
	return nil, false
}

// scalar folds a numeric expression to a bound: constants fold, parameters
// become $p markers, single-assignment locals chase their definition, + *
// and / distribute, everything else becomes an opaque symbol carrying its
// source text.
func (cx *costCtx) scalar(e ast.Expr) *bound {
	e = unparen(e)
	if v, ok := constFloat(cx.pkg, e); ok {
		return constBound(v)
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := cx.pkg.Info.ObjectOf(x)
		if obj != nil {
			if i, ok := cx.params[obj]; ok {
				return symBound(paramSym(i, ""))
			}
			if def, ok := cx.locals[obj]; ok && def.rhs != nil && def.idx <= 0 && !cx.resolving[obj] {
				cx.resolving[obj] = true
				b := cx.scalar(def.rhs)
				delete(cx.resolving, obj)
				return b
			}
		}
		return symBound(x.Name)
	case *ast.SelectorExpr:
		if id, ok := unparen(x.X).(*ast.Ident); ok {
			if obj := cx.pkg.Info.ObjectOf(id); obj != nil {
				if i, ok := cx.params[obj]; ok {
					return symBound(paramSym(i, "."+x.Sel.Name))
				}
			}
		}
		return symBound(types.ExprString(e))
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD:
			return addBounds(cx.scalar(x.X), cx.scalar(x.Y))
		case token.MUL:
			return mulBounds(cx.scalar(x.X), cx.scalar(x.Y))
		case token.QUO:
			if d, ok := constFloat(cx.pkg, x.Y); ok && d != 0 { //dplint:ignore floateq exact sentinel: guarding the 1/d fold against the literal zero denominator
				return mulBounds(constBound(1/d), cx.scalar(x.X))
			}
			return mulBounds(cx.scalar(x.X), symBound("1/("+denomKey(x.Y)+")"))
		}
		return symBound(types.ExprString(e))
	case *ast.CallExpr:
		if arg, ok := conversionArg(cx.pkg, x); ok {
			return cx.scalar(arg)
		}
		return symBound(types.ExprString(e))
	}
	return symBound(types.ExprString(e))
}

// guaranteeCost extracts the (ε, δ) quoted by a Guarantee-typed expression:
// composite literals by field, parameters as $p<i>.Epsilon/.Delta markers,
// single-assignment locals chased, mech.Guarantee() resolved through the
// mechanism's constructor, and single-return helper functions inlined.
// Anything else stays opaque as "<expr>.Epsilon"/"<expr>.Delta".
func (cx *costCtx) guaranteeCost(e ast.Expr) costBound {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		if namedName(cx.pkg.Info.TypeOf(x)) == "Guarantee" {
			return cx.guaranteeLit(x)
		}
	case *ast.Ident:
		obj := cx.pkg.Info.ObjectOf(x)
		if obj != nil {
			if i, ok := cx.params[obj]; ok {
				return costBound{
					eps:   symBound(paramSym(i, ".Epsilon")),
					delta: symBound(paramSym(i, ".Delta")),
				}
			}
			if def, ok := cx.locals[obj]; ok && def.rhs != nil && def.idx <= 0 && !cx.resolving[obj] {
				cx.resolving[obj] = true
				g := cx.guaranteeCost(def.rhs)
				delete(cx.resolving, obj)
				return g
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return cx.guaranteeCost(x.X)
		}
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Guarantee" {
			if g, ok := cx.mechanismGuarantee(sel.X); ok {
				return g
			}
		}
		if fn := calleeFunc(cx.pkg, x); fn != nil {
			if g, ok := cx.inlineGuaranteeHelper(fn, x); ok {
				return g
			}
		}
	}
	txt := types.ExprString(e)
	return costBound{eps: symBound(txt + ".Epsilon"), delta: symBound(txt + ".Delta")}
}

func (cx *costCtx) guaranteeLit(lit *ast.CompositeLit) costBound {
	g := zeroCost()
	var st *types.Struct
	if t := cx.pkg.Info.TypeOf(lit); t != nil {
		st, _ = t.Underlying().(*types.Struct)
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			name := ""
			if id, ok := kv.Key.(*ast.Ident); ok {
				name = id.Name
			}
			switch name {
			case "Epsilon":
				g.eps = cx.scalar(kv.Value)
			case "Delta":
				g.delta = cx.scalar(kv.Value)
			}
			continue
		}
		if st != nil && i < st.NumFields() {
			switch st.Field(i).Name() {
			case "Epsilon":
				g.eps = cx.scalar(el)
			case "Delta":
				g.delta = cx.scalar(el)
			}
		}
	}
	return g
}

// mechanismGuarantee resolves mech.Guarantee() when mech is a
// single-assignment local constructed by a known mechanism constructor.
func (cx *costCtx) mechanismGuarantee(recv ast.Expr) (costBound, bool) {
	id, ok := unparen(recv).(*ast.Ident)
	if !ok {
		return costBound{}, false
	}
	obj := cx.pkg.Info.ObjectOf(id)
	if obj == nil {
		return costBound{}, false
	}
	def, ok := cx.locals[obj]
	if !ok || def.rhs == nil || def.idx > 0 {
		return costBound{}, false
	}
	call, ok := unparen(def.rhs).(*ast.CallExpr)
	if !ok {
		return costBound{}, false
	}
	fn := calleeFunc(cx.pkg, call)
	if fn == nil {
		return costBound{}, false
	}
	return cx.ctorGuarantee(fn, call)
}

// splitHalfOverSens matches the X/(2*S) idiom that call sites use to make
// an exponential-family mechanism quote exactly X: the mechanism's
// guarantee is 2·ε·Δq, so passing ε = X/(2·Δq) cancels.
func splitHalfOverSens(pkg *Package, epsArg, sensArg ast.Expr) (ast.Expr, bool) {
	b, ok := unparen(epsArg).(*ast.BinaryExpr)
	if !ok || b.Op != token.QUO {
		return nil, false
	}
	m, ok := unparen(b.Y).(*ast.BinaryExpr)
	if !ok || m.Op != token.MUL {
		return nil, false
	}
	if two, ok := constFloat(pkg, m.X); !ok || two != 2 { //dplint:ignore floateq exact sentinel: the X/(2*S) idiom is matched only on the literal 2
		return nil, false
	}
	if types.ExprString(unparen(m.Y)) != types.ExprString(unparen(sensArg)) {
		return nil, false
	}
	return b.X, true
}

// ctorGuarantee maps a mechanism constructor call to the guarantee its
// mechanism will quote at release time. Recognition is by constructor name
// (structural, so fixtures work): the formulas mirror each mechanism's
// Guarantee method.
func (cx *costCtx) ctorGuarantee(fn *types.Func, call *ast.CallExpr) (costBound, bool) {
	arg := func(i int) ast.Expr {
		if i < len(call.Args) {
			return call.Args[i]
		}
		return nil
	}
	sc := func(i int) *bound {
		if e := arg(i); e != nil {
			return cx.scalar(e)
		}
		return topBound
	}
	switch fn.Name() {
	case "NewLaplace":
		return costBound{eps: sc(1), delta: constBound(0)}, true
	case "NewGaussian":
		return costBound{eps: sc(1), delta: sc(2)}, true
	case "NewExponential", "NewReportNoisyMax":
		if e, s := arg(3), arg(2); e != nil && s != nil {
			if x, ok := splitHalfOverSens(cx.pkg, e, s); ok {
				return costBound{eps: cx.scalar(x), delta: constBound(0)}, true
			}
		}
		return costBound{eps: mulBounds(mulBounds(constBound(2), sc(3)), sc(2)), delta: constBound(0)}, true
	case "NewGeometric":
		return costBound{eps: sc(2), delta: constBound(0)}, true
	case "NewRandomizedResponse":
		return costBound{eps: sc(0), delta: constBound(0)}, true
	case "PrivateQuantile":
		return costBound{eps: mulBounds(constBound(2), sc(3)), delta: constBound(0)}, true
	case "PrivateMedian", "PrivateMode":
		return costBound{eps: mulBounds(constBound(2), sc(2)), delta: constBound(0)}, true
	}
	return costBound{}, false
}

// inlineGuaranteeHelper inlines a helper whose entire body is
// `return <Guarantee expression>` (the serve layer's quotedGuarantee),
// substituting the call's arguments into the helper's parameters.
func (cx *costCtx) inlineGuaranteeHelper(fn *types.Func, call *ast.CallExpr) (costBound, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || namedName(sig.Results().At(0).Type()) != "Guarantee" {
		return costBound{}, false
	}
	node := cx.st.prog.Node(funcKey(fn))
	if node == nil || node.Decl.Body == nil || len(node.Decl.Body.List) != 1 {
		return costBound{}, false
	}
	ret, ok := node.Decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return costBound{}, false
	}
	callee := cx.st.ctxFor(node)
	g := callee.guaranteeCost(ret.Results[0])
	return costBound{eps: cx.substBound(g.eps, call), delta: cx.substBound(g.delta, call)}, true
}

// substBound replaces a callee summary's $p markers with the call's
// argument expressions, re-normalizing so constants fold through calls.
func (cx *costCtx) substBound(b *bound, call *ast.CallExpr) *bound {
	if b == nil {
		return nil
	}
	switch b.kind {
	case boundConst, boundTop:
		return b
	case boundSym:
		i, field, ok := parseParamSym(b.sym)
		if !ok {
			return b
		}
		if i >= len(call.Args) {
			return symBound(fmt.Sprintf("arg%d%s", i, field))
		}
		a := call.Args[i]
		switch field {
		case "":
			return cx.scalar(a)
		case ".Epsilon":
			return cx.guaranteeCost(a).eps
		case ".Delta":
			return cx.guaranteeCost(a).delta
		default:
			return symBound(types.ExprString(unparen(a)) + field)
		}
	case boundAdd:
		out := make([]*bound, len(b.args))
		for i, a := range b.args {
			out[i] = cx.substBound(a, call)
		}
		return addBounds(out...)
	case boundMax:
		out := make([]*bound, len(b.args))
		for i, a := range b.args {
			out[i] = cx.substBound(a, call)
		}
		return maxBounds(out...)
	case boundMul:
		res := constBound(b.c)
		for _, a := range b.args {
			res = mulBounds(res, cx.substBound(a, call))
		}
		return res
	}
	return b
}

// ---------------------------------------------------------------------------
// Charge recognition.

// chargeOp reports whether call charges budget against an accountant: a
// Spend/SpendDetail whose first parameter is a Guarantee, or a
// two-phase Reserve returning a hold — a named Reservation, or any type
// following the hold protocol structurally (the WAL-logged wal.Txn;
// see isTwoPhaseHold). The returned index names the Guarantee-typed
// argument carrying the price (WAL-logged Reserve wrappers take the
// accountant first, so the guarantee is not always argument zero).
// Commit is deliberately NOT a charge — the guarantee was counted at
// Reserve time, and acctlint separately enforces the Reserve/Commit
// pairing.
func chargeOp(pkg *Package, call *ast.CallExpr) (string, int, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	name := sel.Sel.Name
	switch name {
	case "Spend", "SpendDetail", "Reserve":
	default:
		return "", 0, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() < 1 {
		return "", 0, false
	}
	if name == "Reserve" {
		if sig.Results().Len() < 1 {
			return "", 0, false
		}
		if res := sig.Results().At(0).Type(); namedName(res) != "Reservation" && !isTwoPhaseHold(res) {
			return "", 0, false
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if namedName(sig.Params().At(i).Type()) == "Guarantee" {
				return name, i, true
			}
		}
		return "", 0, false
	}
	if namedName(sig.Params().At(0).Type()) != "Guarantee" {
		return "", 0, false
	}
	if name == "Spend" && sig.Params().Len() != 1 {
		return "", 0, false
	}
	return name, 0, true
}

// ---------------------------------------------------------------------------
// Structural cost fold.

func (cx *costCtx) stmtsCost(list []ast.Stmt) costBound {
	total := zeroCost()
	for _, s := range list {
		total = total.add(cx.stmtCost(s))
	}
	return total
}

func (cx *costCtx) stmtCost(s ast.Stmt) costBound {
	switch st := s.(type) {
	case nil:
		return zeroCost()
	case *ast.BlockStmt:
		return cx.stmtsCost(st.List)
	case *ast.LabeledStmt:
		return cx.stmtCost(st.Stmt)
	case *ast.IfStmt:
		c := zeroCost()
		if st.Init != nil {
			c = c.add(cx.stmtCost(st.Init))
		}
		c = c.add(cx.nodeCost(st.Cond))
		thenC := cx.stmtsCost(st.Body.List)
		elseC := zeroCost()
		if st.Else != nil {
			elseC = cx.stmtCost(st.Else)
		}
		return c.add(thenC.max(elseC))
	case *ast.ForStmt:
		c := zeroCost()
		if st.Init != nil {
			c = c.add(cx.stmtCost(st.Init))
		}
		iter := zeroCost()
		if st.Cond != nil {
			iter = iter.add(cx.nodeCost(st.Cond))
		}
		iter = iter.add(cx.stmtsCost(st.Body.List))
		if st.Post != nil {
			iter = iter.add(cx.stmtCost(st.Post))
		}
		return c.add(cx.loopCost(st, iter))
	case *ast.RangeStmt:
		c := cx.nodeCost(st.X)
		iter := cx.stmtsCost(st.Body.List)
		return c.add(cx.loopCost(st, iter))
	case *ast.SwitchStmt:
		c := zeroCost()
		if st.Init != nil {
			c = c.add(cx.stmtCost(st.Init))
		}
		if st.Tag != nil {
			c = c.add(cx.nodeCost(st.Tag))
		}
		return c.add(cx.clausesCost(st.Body.List))
	case *ast.TypeSwitchStmt:
		c := zeroCost()
		if st.Init != nil {
			c = c.add(cx.stmtCost(st.Init))
		}
		c = c.add(cx.stmtCost(st.Assign))
		return c.add(cx.clausesCost(st.Body.List))
	case *ast.SelectStmt:
		alt := zeroCost()
		for i, cl := range st.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			one := zeroCost()
			if comm.Comm != nil {
				one = one.add(cx.stmtCost(comm.Comm))
			}
			one = one.add(cx.stmtsCost(comm.Body))
			if i == 0 {
				alt = one
			} else {
				alt = alt.max(one)
			}
		}
		return alt
	default:
		return cx.nodeCost(s)
	}
}

// clausesCost folds switch/type-switch clauses: alternatives take the max,
// fallthrough chains sum into the preceding clause, and a missing default
// adds a zero-cost alternative.
func (cx *costCtx) clausesCost(clauses []ast.Stmt) costBound {
	hasDefault := false
	type clauseCost struct {
		cost costBound
		ft   bool
	}
	var alts []clauseCost
	for _, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		one := zeroCost()
		for _, e := range cc.List {
			one = one.add(cx.nodeCost(e))
		}
		one = one.add(cx.stmtsCost(cc.Body))
		alts = append(alts, clauseCost{cost: one, ft: endsInFallthrough(cc.Body)})
	}
	for i := len(alts) - 2; i >= 0; i-- {
		if alts[i].ft {
			alts[i].cost = alts[i].cost.add(alts[i+1].cost)
		}
	}
	out := zeroCost()
	for i, a := range alts {
		if i == 0 {
			out = a.cost
		} else {
			out = out.max(a.cost)
		}
	}
	if !hasDefault {
		out = out.max(zeroCost())
	}
	return out
}

// loopCost multiplies the per-iteration cost by the loop's declared trip
// count; a charging loop without a valid //dp:loopbound is ⊤ and a finding
// (the malformed-directive case is reported once, globally).
func (cx *costCtx) loopCost(loop ast.Stmt, iter costBound) costBound {
	if iter.isZero() {
		return iter
	}
	if iter.eps.isTop() && iter.delta.isTop() {
		return iter
	}
	ann := cx.st.loopIdxFor(cx.pkg).annFor(cx.pkg, loop)
	if ann == nil {
		cx.st.recordLoopFinding(cx, loop,
			"loop charges privacy budget per iteration but has no //dp:loopbound k=<expr> annotation; budget bound is unbounded")
		return topCost()
	}
	if ann.bad != "" {
		return topCost()
	}
	if v, err := strconv.ParseFloat(ann.expr, 64); err == nil {
		return iter.mul(constBound(v))
	}
	return iter.mul(symBound(ann.expr))
}

// recordLoopFinding anchors an unbounded-loop finding on the loop with a
// CFG witness path from the function entry to the loop header.
func (st *epsBoundState) recordLoopFinding(cx *costCtx, loop ast.Stmt, msg string) {
	f := epsFinding{pos: loop.Pos(), msg: msg}
	if cx.node != nil && cx.node.Decl.Body != nil {
		c := buildCFG(cx.node.Decl.Body, cfgOptions{})
		if blk := blockContainingNode(c, loop); blk != nil {
			if path := c.witnessPath(c.Entry, blk, nil); path != nil {
				f.trace = c.trace(cx.pkg.Fset, path)
			}
		}
	}
	st.findings = append(st.findings, f)
}

// blockContainingNode finds the first block evaluating any part of target.
func blockContainingNode(c *cfg, target ast.Node) *cfgBlock {
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m == target {
					found = true
				}
				return !found
			})
			if n == target {
				found = true
			}
			if found {
				return blk
			}
		}
	}
	// Loop headers hold only the condition/range node; fall back to any
	// block evaluating a node positioned inside the target's span.
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if n.Pos() >= target.Pos() && n.End() <= target.End() {
				return blk
			}
		}
	}
	return nil
}

// nodeCost walks an expression or opaque statement, charging each call in
// evaluation order. Function literals are skipped unless immediately
// invoked: a closure handed to someone else runs on that party's quoted
// budget (the serve layer's quoted-guarantee contract).
func (cx *costCtx) nodeCost(n ast.Node) costBound {
	total := zeroCost()
	if n == nil {
		return total
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			total = total.add(cx.callCost(x))
			for _, a := range x.Args {
				total = total.add(cx.nodeCost(a))
			}
			return false
		}
		return true
	})
	return total
}

// callCost charges one call: a direct charge op quotes its Guarantee
// argument; a resolved callee contributes its substituted summary; an
// immediately-invoked literal is inlined. A call whose callee adds no
// charge of its own but receives function-literal arguments is an
// envelope — the serve layer's durable() wrapper reserves, runs the
// closure it was handed, and commits — so the literals are inlined at
// the call site: their charges are the call's charges, priced in the
// caller's own symbol space. When the callee itself charges (the
// spendQuoted accountant-wrapper pattern), its literal arguments are
// already priced by the wrapper's reservation and stay skipped.
func (cx *costCtx) callCost(call *ast.CallExpr) costBound {
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return cx.stmtsCost(lit.Body.List)
	}
	if op, gi, ok := chargeOp(cx.pkg, call); ok && len(call.Args) > gi {
		g := cx.guaranteeCost(call.Args[gi])
		cx.event(call.Pos(), 0, fmt.Sprintf("%s ε=%s δ=%s", op, cx.render(g.eps), cx.render(g.delta)))
		return g
	}
	fn := calleeFunc(cx.pkg, call)
	if fn != nil && cx.st.mayCharge(funcKey(fn)) {
		sum := cx.st.summary(funcKey(fn))
		if !sum.cost.isZero() {
			out := costBound{
				eps:   cx.substBound(sum.cost.eps, call),
				delta: cx.substBound(sum.cost.delta, call),
			}
			cx.event(call.Pos(), 0, fmt.Sprintf("call %s ⇒ ε=%s", calleeLabel(fn), cx.render(out.eps)))
			for _, ev := range sum.events {
				cx.eventAt(ev.pos, ev.depth+1, ev.desc)
			}
			return out
		}
	}
	if fn != nil && cx.st.prog.isObserverFunc(fn) {
		return zeroCost() // measurement harness; its closures observe, not release
	}
	total := zeroCost()
	for _, a := range call.Args {
		if lit, ok := unparen(a).(*ast.FuncLit); ok {
			total = total.add(cx.stmtsCost(lit.Body.List))
		}
	}
	return total
}

func calleeLabel(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

func (cx *costCtx) render(b *bound) string {
	return substParamNames(b, cx.names).String()
}

func (cx *costCtx) event(pos token.Pos, depth int, desc string) {
	cx.eventAt(cx.pkg.Fset.Position(pos), depth, desc)
}

func (cx *costCtx) eventAt(pos token.Position, depth int, desc string) {
	evs := cx.events
	if len(*evs) >= maxBoundEvents {
		if len(*evs) == maxBoundEvents {
			*evs = append(*evs, epsEvent{pos: pos, depth: depth, desc: "… (witness truncated)"})
		}
		return
	}
	*evs = append(*evs, epsEvent{pos: pos, depth: depth, desc: desc})
}

// ---------------------------------------------------------------------------
// Entry points.

// entryNodes selects the functions that receive budget certificates. On
// the repro tree this is the curated entry surface — the root facade, the
// core/learn exported API, svt, and every serve handler; on any other
// module (golden fixtures) it is every exported function. Summaries are
// computed on demand starting only from these roots, so helper loops in
// unreachable tooling never generate findings.
func (st *epsBoundState) entryNodes() []*FuncNode {
	repro := false
	for _, pkg := range st.prog.Pkgs {
		if pkg.Path == "repro" || strings.HasPrefix(pkg.Path, "repro/") {
			repro = true
			break
		}
	}
	var entries []*FuncNode
	for _, node := range st.prog.Nodes() {
		if isTestFilename(node.Pkg.Fset.Position(node.Decl.Pos()).Filename) {
			continue
		}
		if repro {
			if !reproEntry(node) {
				continue
			}
		} else {
			if strings.HasSuffix(node.Pkg.Path, "_test") || !node.Decl.Name.IsExported() {
				continue
			}
		}
		entries = append(entries, node)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries
}

func reproEntry(node *FuncNode) bool {
	name := node.Decl.Name
	switch node.Pkg.Path {
	case "repro", "repro/internal/core", "repro/internal/learn":
		return name.IsExported()
	case "repro/internal/mechanism":
		// The sparse-vector entry points live in svt.go; the rest of the
		// package is mechanism plumbing certified through its callers.
		return name.IsExported() &&
			filepath.Base(node.Pkg.Fset.Position(node.Decl.Pos()).Filename) == "svt.go"
	case "repro/internal/serve":
		if !strings.HasPrefix(name.Name, "handle") {
			return false
		}
		return node.Decl.Recv != nil && len(node.Decl.Recv.List) > 0 &&
			namedName(node.Pkg.Info.TypeOf(node.Decl.Recv.List[0].Type)) == "Server"
	}
	return false
}

// ---------------------------------------------------------------------------
// The analyzer.

// EpsBound is the registered check: it summarizes every entry point once
// per Run (the cache lives on the Program) and reports unbounded loops and
// malformed //dp:loopbound directives.
var EpsBound = register(&Analyzer{
	Name: "epsbound",
	Doc: "interprocedural symbolic ε-budget bounds: every exported entry " +
		"point's worst-case (ε, δ) spend is folded bottom-up through the " +
		"call graph — sequential charges sum, branches take the max, loops " +
		"multiply by a //dp:loopbound k=<expr> annotation. A loop that " +
		"charges budget without one certifies as unbounded, which is a " +
		"finding; dplearn-lint -certify emits the bounds as NDJSON budget " +
		"certificates.",
	Severity: Error,
	Run:      runEpsBound,
})

func runEpsBound(p *Pass) {
	st := p.Prog.epsBound()
	if st.ran {
		return
	}
	st.ran = true
	for _, node := range st.entryNodes() {
		st.summary(node.Key)
	}
	for _, pkg := range st.prog.Pkgs {
		st.loopIdxFor(pkg)
	}
	for _, pkg := range st.prog.Pkgs {
		for _, ann := range st.loopAll[pkg] {
			if ann.bad != "" && !isTestFilename(pkg.Fset.Position(ann.pos).Filename) {
				p.Reportf(ann.pos, "malformed //dp:loopbound directive: %s", ann.bad)
			}
		}
	}
	for _, f := range st.findings {
		if isTestFilename(p.Fset.Position(f.pos).Filename) {
			continue
		}
		p.ReportTrace(f.pos, f.trace, "%s", f.msg)
	}
}

// ---------------------------------------------------------------------------
// Budget certificates.

// Certificate is one entry point's machine-readable budget bound, emitted
// as NDJSON by dplearn-lint -certify and golden-pinned in
// results/budget_certificates.ndjson.
type Certificate struct {
	// Entry is the call-graph key (types.Func.FullName) of the entry point.
	Entry string `json:"entry"`
	// Package is the import path declaring the entry point.
	Package string `json:"package"`
	// File/Line locate the declaration (File is module-root-relative with
	// forward slashes, so certificates are byte-stable across machines).
	File string `json:"file"`
	Line int    `json:"line"`
	// Eps and Delta are the symbolic worst-case bounds rendered in terms
	// of the entry point's own parameters ("unbounded" for ⊤).
	Eps   string `json:"eps"`
	Delta string `json:"delta"`
	// EpsConst/DeltaConst carry the resolved constant when the bound folds.
	EpsConst   *float64 `json:"eps_const,omitempty"`
	DeltaConst *float64 `json:"delta_const,omitempty"`
	// Unbounded marks entry points whose bound is ⊤ on either coordinate.
	Unbounded bool `json:"unbounded,omitempty"`
	// Witness lists the charge sites backing the bound, one
	// "<file>:<line> <desc>" per line, indented two spaces per call depth.
	Witness []string `json:"witness,omitempty"`
}

// BudgetCertificates computes the budget certificate of every entry point
// in pkgs. File paths are relativized against moduleRoot ("" keeps them
// absolute). Zero-spend entry points are included: a certificate saying
// "this endpoint spends nothing" is as load-bearing as a bound.
func BudgetCertificates(pkgs []*Package, moduleRoot string) []Certificate {
	prog := NewProgram(pkgs)
	st := prog.epsBound()
	var out []Certificate
	for _, node := range st.entryNodes() {
		sum := st.summary(node.Key)
		names := paramNames(node.Decl)
		eps := substParamNames(sum.cost.eps, names)
		delta := substParamNames(sum.cost.delta, names)
		pos := node.Pkg.Fset.Position(node.Decl.Pos())
		cert := Certificate{
			Entry:     node.Key,
			Package:   node.Pkg.Path,
			File:      relModulePath(moduleRoot, pos.Filename),
			Line:      pos.Line,
			Eps:       eps.String(),
			Delta:     delta.String(),
			Unbounded: eps.isTop() || delta.isTop(),
		}
		if v, ok := eps.constVal(); ok {
			cert.EpsConst = &v
		}
		if v, ok := delta.constVal(); ok {
			cert.DeltaConst = &v
		}
		for _, ev := range sum.events {
			cert.Witness = append(cert.Witness, fmt.Sprintf("%s%s:%d %s",
				strings.Repeat("  ", ev.depth), relModulePath(moduleRoot, ev.pos.Filename), ev.pos.Line, ev.desc))
		}
		out = append(out, cert)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Entry < out[j].Entry })
	return out
}

// relModulePath renders file relative to root with forward slashes, or
// unchanged when file is outside root.
func relModulePath(root, file string) string {
	if root != "" {
		if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
	}
	return filepath.ToSlash(file)
}
