package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpsCheck requires exported functions that accept a privacy parameter
// (a float64 named epsilon or eps) to validate it before use.
//
// Theorems 2.1 and 2.2 presuppose ε > 0: Lap(Δf/ε) noise with ε ≤ 0, NaN,
// or ±Inf produces either a panic deep in the sampler or — far worse — a
// release with no privacy at all that still returns normally. Exported
// entry points are the trust boundary, so each must either guard ε itself
// (a comparison against it, math.IsNaN, or math.IsInf) or hand it straight
// to a validating function (a name containing "valid", "check", or "must",
// a New*/Make* constructor that can return an error, or an *Err-suffixed
// error-returning variant — the Go convention for "same computation,
// typed validation error instead of a panic").
var EpsCheck = register(&Analyzer{
	Name:     "epscheck",
	Doc:      "exported function takes an epsilon parameter but never validates it",
	Severity: Error,
	Run:      runEpsCheck,
})

func isEpsilonName(name string) bool {
	switch strings.ToLower(name) {
	case "eps", "epsilon":
		return true
	}
	return false
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Float64 || b.Kind() == types.UntypedFloat)
}

func runEpsCheck(p *Pass) {
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if fn.Type.Params == nil {
				continue
			}
			for _, field := range fn.Type.Params.List {
				for _, name := range field.Names {
					if !isEpsilonName(name.Name) {
						continue
					}
					obj := p.ObjectOf(name)
					if obj == nil || !isFloat64(obj.Type()) {
						continue
					}
					if !epsilonValidated(p, fn.Body, obj) {
						p.Reportf(name.Pos(), "exported %s takes privacy parameter %q but never validates it (guard it or pass it to a validator before use; Theorem 2.1/2.2 require ε > 0)", fn.Name.Name, name.Name)
					}
				}
			}
		}
	}
}

// epsilonValidated reports whether body contains a validation of the
// parameter object eps: an ordering comparison involving it, a NaN/Inf
// classification, or a call that forwards it to a validating function.
func epsilonValidated(p *Pass, body *ast.BlockStmt, eps types.Object) bool {
	refersToEps := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == eps {
				found = true
			}
			return !found
		})
		return found
	}
	valid := false
	ast.Inspect(body, func(n ast.Node) bool {
		if valid {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if refersToEps(n.X) || refersToEps(n.Y) {
					valid = true
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "" {
				return true
			}
			lower := strings.ToLower(name)
			validator := lower == "isnan" || lower == "isinf" ||
				strings.Contains(lower, "valid") || strings.Contains(lower, "check") ||
				strings.Contains(lower, "must") ||
				strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Make") ||
				strings.HasSuffix(name, "Err")
			if !validator {
				return true
			}
			for _, arg := range n.Args {
				if refersToEps(arg) {
					valid = true
					break
				}
			}
		}
		return !valid
	})
	return valid
}

// calleeName returns the bare name of the called function or method, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
