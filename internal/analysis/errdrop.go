package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop reports call statements in non-test code that silently discard a
// returned error.
//
// The mechanism constructors (NewLaplace, NewExponential, ...) return an
// error exactly when their ε or sensitivity is invalid — that error *is*
// the privacy guarantee's precondition check. A call statement that drops
// it turns "refuse to release" into "release with undefined privacy".
// Handle the error, or assign it to _ explicitly so the decision is
// visible in the diff. Printing to stdout/stderr and writes into
// in-memory buffers are exempt (they cannot meaningfully fail).
var ErrDrop = register(&Analyzer{
	Name:     "errdrop",
	Doc:      "call discards a returned error; handle it or assign it to _ explicitly",
	Severity: Error,
	Run:      runErrDrop,
})

func runErrDrop(p *Pass) {
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			tv, ok := p.Pkg.Info.Types[call]
			if !ok || !resultErrors(tv.Type) {
				return true
			}
			if errDropExempt(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "result of %s includes an error that is silently discarded; handle it or assign to _ explicitly", callDisplay(call))
			return true
		})
	}
}

// errDropExempt reports whether call is on the builtin exemption list:
// fmt printing to stdout/stderr and writes to in-memory buffers.
func errDropExempt(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && isPkgRef(p, id, "fmt") {
		name := sel.Sel.Name
		if strings.HasPrefix(name, "Print") {
			return true // stdout
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			return isStdStream(p, call.Args[0]) || isMemoryWriter(p, call.Args[0])
		}
		return false
	}
	// Write*/String-building methods on bytes.Buffer and strings.Builder
	// are documented to always return a nil error.
	if strings.HasPrefix(sel.Sel.Name, "Write") {
		if selInfo, ok := p.Pkg.Info.Selections[sel]; ok {
			return isMemoryWriterType(selInfo.Recv())
		}
	}
	return false
}

func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || !isPkgRef(p, id, "os") {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}

func isMemoryWriter(p *Pass, e ast.Expr) bool {
	return isMemoryWriterType(p.TypeOf(e))
}

func isMemoryWriterType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

func callDisplay(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
