package analysis

import (
	"go/ast"
	"strings"
)

// ExpDomain reports direct math.Exp calls in the mechanism and gibbs
// packages, where the argument is a quality score or posterior weight.
//
// The exponential mechanism (Theorem 2.2) and the Gibbs posterior assign
// weight exp(ε·q(D,y)/2Δ) to every candidate. Exponentiating scores in the
// linear domain overflows for |arg| ≳ 709 and, worse, underflows to an
// exact 0.0 that erases candidates from the distribution — changing the
// released distribution and voiding the ε bound. All weight manipulation
// must stay in log space via the blessed helpers in internal/mathx
// (LogSumExp, LogNormalize, ExpNormalize, Sigmoid) or sample via
// rng.CategoricalLog. Residual exp() of provably bounded arguments
// (e.g. a Metropolis acceptance ratio clamped to ≤ 0) must carry a
// //dplint:ignore stating the bound.
var ExpDomain = register(&Analyzer{
	Name:     "expdomain",
	Doc:      "math.Exp on mechanism weights; keep weights in log space via internal/mathx helpers",
	Severity: Error,
	Run:      runExpDomain,
})

// expDomainPackages are the import-path fragments whose non-test code is
// subject to the check.
var expDomainPackages = []string{"internal/mechanism", "internal/gibbs"}

func runExpDomain(p *Pass) {
	covered := false
	for _, frag := range expDomainPackages {
		if strings.HasSuffix(strings.TrimSuffix(p.Pkg.Path, "_test"), frag) {
			covered = true
			break
		}
	}
	if !covered {
		return
	}
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || sel.Sel.Name != "Exp" {
				return true
			}
			if !isPkgRef(p, pkgID, "math") {
				return true
			}
			p.Reportf(call.Pos(), "math.Exp on a mechanism weight: linear-domain weights under/overflow and distort the released distribution; use mathx.LogSumExp/ExpNormalize/Sigmoid or rng.CategoricalLog (suppress with the proven bound if the argument is clamped)")
			return true
		})
	}
}
