package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq reports == and != between floating-point operands.
//
// Mironov (CCS 2012) showed that the textbook Laplace mechanism is broken
// in IEEE-754 arithmetic precisely because floating-point values carry
// artifacts that equality tests expose: probability masses that should be
// equal differ in the last ulp, and branches taken on float equality leak
// which artifact occurred. Compare with a tolerance (mathx.AlmostEqual),
// classify with math.IsNaN/math.Signbit, or restructure to avoid the
// comparison. Deliberate exact comparisons (IEEE sentinels, documented
// fast paths) must carry a //dplint:ignore with the justification.
//
// _test.go files are exempt: the test suite asserts bit-exact equality of
// seeded deterministic streams on purpose (reproducibility tests), which
// is a different invariant from runtime comparison of computed mass.
var FloatEq = register(&Analyzer{
	Name:     "floateq",
	Doc:      "floating-point == or != comparison; use a tolerance (mathx.AlmostEqual) or classify the value",
	Severity: Error,
	Run:      runFloatEq,
})

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runFloatEq(p *Pass) {
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) || !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			// A comparison whose result is known at compile time is a
			// constant expression, not a runtime float comparison.
			if tv, ok := p.Pkg.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			p.Reportf(be.OpPos, "floating-point %s comparison: IEEE-754 rounding makes exact equality unreliable (Mironov 2012); use mathx.AlmostEqual, math.IsNaN, or restructure", be.Op)
			return true
		})
	}
}
