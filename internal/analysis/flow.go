package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the solver half of the dataflow framework: a generic
// forward worklist algorithm over the CFG of cfg.go, plus the
// flow-sensitive taint analysis postproc runs on it and the
// interprocedural taint summaries that compose with the PR-3 call graph.
//
// A flowAnalysis supplies the lattice: Bottom (unreachable), the entry
// fact, a monotone per-node transfer, the join, and an optional per-edge
// refinement keyed on the branch condition that selects the edge. The
// solver iterates to fixpoint; facts must grow monotonically under Step
// and Merge or the worklist will not terminate.

// flowAnalysis is one client analysis over a cfg.
type flowAnalysis interface {
	// Bottom is the fact of unreachable code.
	Bottom() any
	// Entry is the fact holding on function entry.
	Entry() any
	// Merge joins two facts at a control-flow join point.
	Merge(a, b any) any
	// Step transfers the fact across one evaluated node.
	Step(n ast.Node, f any) any
	// Refine specializes the fact flowing along a conditional edge
	// (Cond evaluated to true when !Neg, false when Neg). It may return
	// the fact unchanged.
	Refine(e cfgEdge, f any) any
	// Equal detects fixpoint.
	Equal(a, b any) bool
}

// solveForward runs the worklist to fixpoint and returns the IN fact of
// every block. Deterministic: the worklist is processed in block-index
// order.
func solveForward(c *cfg, a flowAnalysis) map[*cfgBlock]any {
	in := make(map[*cfgBlock]any, len(c.Blocks))
	for _, blk := range c.Blocks {
		in[blk] = a.Bottom()
	}
	in[c.Entry] = a.Entry()

	pending := map[int]*cfgBlock{c.Entry.Index: c.Entry}
	for len(pending) > 0 {
		// Pop the lowest-index pending block.
		idxs := make([]int, 0, len(pending))
		for i := range pending {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		blk := pending[idxs[0]]
		delete(pending, idxs[0])

		// Panic edges observe the IN fact: the statement panicked before
		// completing, so its own transfer has not applied.
		if blk.PanicSource {
			merged := a.Merge(in[c.PanicExit], in[blk])
			if !a.Equal(merged, in[c.PanicExit]) {
				in[c.PanicExit] = merged
				pending[c.PanicExit.Index] = c.PanicExit
			}
		}

		out := in[blk]
		for _, n := range blk.Nodes {
			out = a.Step(n, out)
		}
		for _, e := range blk.Succs {
			f := out
			if e.Cond != nil {
				f = a.Refine(e, f)
			}
			merged := a.Merge(in[e.To], f)
			if !a.Equal(merged, in[e.To]) {
				in[e.To] = merged
				pending[e.To.Index] = e.To
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------------
// Flow-sensitive taint.

// taintFact is the per-point fact of the taint flow: which variables may
// hold raw-derived values here, and whether a DP release may already have
// happened on some path reaching here. bottom (unreachable) is the nil
// fact; every reachable fact is non-nil even when empty.
type taintFact struct {
	tainted  map[types.Object]bool
	released bool
}

func (f *taintFact) clone() *taintFact {
	if f == nil {
		return nil
	}
	c := &taintFact{tainted: make(map[types.Object]bool, len(f.tainted)), released: f.released}
	for o := range f.tainted {
		c.tainted[o] = true
	}
	return c
}

// taintFlow is the order-aware replacement for the flow-insensitive
// lattice: gen on assignment from a tainted source, kill on whole-variable
// re-assignment from a clean one, release-flag gen at DP release calls.
// Join is may-union on both components.
type taintFlow struct {
	pkg  *Package
	prog *Program
	// seed decides whether an object is tainted a priori (postproc seeds
	// raw-data-typed variables).
	seed func(types.Object) bool
	// sanitizer decides whether a call kills taint at its result.
	sanitizer func(*ast.CallExpr) bool
	// release decides whether a call is a DP release (sets the released
	// flag the client keys "after the release on this path" on).
	release func(*ast.CallExpr) bool

	// summaries caches interprocedural result-taint summaries, keyed by
	// funcKey; shared across scopes of one check run.
	summaries map[string]bool
	inflight  map[string]bool
}

func newTaintFlow(pkg *Package, prog *Program,
	seed func(types.Object) bool,
	sanitizer, release func(*ast.CallExpr) bool) *taintFlow {
	return &taintFlow{
		pkg: pkg, prog: prog,
		seed: seed, sanitizer: sanitizer, release: release,
		summaries: make(map[string]bool),
		inflight:  make(map[string]bool),
	}
}

func (tf *taintFlow) Bottom() any { return (*taintFact)(nil) }
func (tf *taintFlow) Entry() any  { return &taintFact{tainted: map[types.Object]bool{}} }

func (tf *taintFlow) Merge(a, b any) any {
	fa, fb := a.(*taintFact), b.(*taintFact)
	if fa == nil {
		return fb
	}
	if fb == nil {
		return fa
	}
	m := fa.clone()
	m.released = fa.released || fb.released
	for o := range fb.tainted {
		m.tainted[o] = true
	}
	return m
}

func (tf *taintFlow) Equal(a, b any) bool {
	fa, fb := a.(*taintFact), b.(*taintFact)
	if fa == nil || fb == nil {
		return fa == fb
	}
	if fa.released != fb.released || len(fa.tainted) != len(fb.tainted) {
		return false
	}
	for o := range fa.tainted {
		if !fb.tainted[o] {
			return false
		}
	}
	return true
}

func (tf *taintFlow) Refine(e cfgEdge, f any) any { return f }

func (tf *taintFlow) Step(n ast.Node, f any) any {
	fact := f.(*taintFact)
	if fact == nil {
		return fact
	}
	out := fact.clone()
	// Any release call evaluated by this node sets the released flag.
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && tf.release(call) {
			out.released = true
		}
		return true
	})
	switch st := n.(type) {
	case *ast.AssignStmt:
		tf.stepAssign(st, out)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					tf.stepValueSpec(vs, out)
				}
			}
		}
	case *ast.RangeStmt:
		if tf.exprTainted(st.X, out) {
			markObj(tf.pkg, st.Key, out)
			markObj(tf.pkg, st.Value, out)
		}
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt:
		// Receiver absorption: buf.Write(raw) taints buf.
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || tf.sanitizer(call) {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			for _, a := range call.Args {
				if tf.exprTainted(a, out) {
					markObj(tf.pkg, recv, out)
					break
				}
			}
			return true
		})
	}
	return out
}

// stepAssign applies gen/kill for x, y := rhs / x = rhs. Whole-variable
// assignment from a clean RHS KILLS taint — the order-aware improvement
// over the flow-insensitive lattice, which could only accumulate.
func (tf *taintFlow) stepAssign(st *ast.AssignStmt, fact *taintFact) {
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		t := tf.exprTainted(st.Rhs[0], fact)
		for _, l := range st.Lhs {
			tf.genKill(l, t, fact)
		}
		return
	}
	for i, l := range st.Lhs {
		if i < len(st.Rhs) {
			tf.genKill(l, tf.exprTainted(st.Rhs[i], fact), fact)
		}
	}
}

func (tf *taintFlow) stepValueSpec(vs *ast.ValueSpec, fact *taintFact) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		t := tf.exprTainted(vs.Values[0], fact)
		for _, n := range vs.Names {
			tf.genKill(n, t, fact)
		}
		return
	}
	for i, n := range vs.Names {
		if i < len(vs.Values) {
			tf.genKill(n, tf.exprTainted(vs.Values[i], fact), fact)
		}
	}
}

// genKill updates the fact for one assignment target. Only whole-variable
// targets (bare identifiers) kill; x[i] = clean or x.f = clean leaves the
// rest of x as it was.
func (tf *taintFlow) genKill(lhs ast.Expr, tainted bool, fact *taintFact) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := tf.pkg.Info.ObjectOf(id)
	if obj == nil || isErrorType(obj.Type()) {
		return
	}
	if tainted && !tf.seed(obj) { // seeded objects are tainted regardless
		fact.tainted[obj] = true
	} else if !tainted {
		delete(fact.tainted, obj)
	}
}

func markObj(pkg *Package, e ast.Expr, fact *taintFact) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil || isErrorType(obj.Type()) {
		return
	}
	fact.tainted[obj] = true
}

// exprTainted reports whether e may evaluate to a raw-derived value under
// fact. Sanitizer calls kill; calls resolved through the call graph
// consult an interprocedural summary (a helper returning only public
// scalars of its raw argument stays clean); unresolved calls are
// conservatively tainted when any argument is.
func (tf *taintFlow) exprTainted(e ast.Expr, fact *taintFact) bool {
	if e == nil {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := tf.pkg.Info.ObjectOf(x)
		if obj == nil || isErrorType(obj.Type()) {
			return false
		}
		return fact.tainted[obj] || tf.seed(obj)
	case *ast.CallExpr:
		if tf.sanitizer(x) {
			return false
		}
		argTainted := false
		for _, a := range x.Args {
			if tf.exprTainted(a, fact) {
				argTainted = true
				break
			}
		}
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			// Method call: a tainted receiver taints the result too.
			if tf.exprTainted(sel.X, fact) {
				argTainted = true
			}
		}
		if !argTainted {
			return false
		}
		// Tainted input: the result is tainted unless the callee's summary
		// proves it only derives public values from its parameters.
		if fn := calleeFunc(tf.pkg, x); fn != nil {
			return tf.resultTainted(fn)
		}
		return true
	case *ast.FuncLit:
		return false // a closure value is not itself data
	case *ast.ParenExpr:
		return tf.exprTainted(x.X, fact)
	case *ast.UnaryExpr:
		return tf.exprTainted(x.X, fact)
	case *ast.StarExpr:
		return tf.exprTainted(x.X, fact)
	case *ast.BinaryExpr:
		return tf.exprTainted(x.X, fact) || tf.exprTainted(x.Y, fact)
	case *ast.IndexExpr:
		return tf.exprTainted(x.X, fact) || tf.exprTainted(x.Index, fact)
	case *ast.SliceExpr:
		return tf.exprTainted(x.X, fact)
	case *ast.SelectorExpr:
		return tf.exprTainted(x.X, fact)
	case *ast.TypeAssertExpr:
		return tf.exprTainted(x.X, fact)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if tf.exprTainted(el, fact) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return tf.exprTainted(x.Value, fact)
	default:
		return false
	}
}

// resultTainted is the interprocedural summary: does fn's result derive
// from its raw-data inputs? Computed by running the same taint flow over
// the callee's body (seeded at its parameters) and asking whether any
// return expression is tainted, memoized per funcKey via the PR-3 call
// graph. Unknown bodies and recursion default to tainted — conservative
// in the direction that cannot hide a leak.
func (tf *taintFlow) resultTainted(fn *types.Func) bool {
	key := funcKey(fn)
	if v, ok := tf.summaries[key]; ok {
		return v
	}
	if tf.inflight[key] {
		return true // recursion: assume tainted
	}
	node := tf.prog.NodeOf(fn)
	if node == nil || node.Decl.Body == nil {
		tf.summaries[key] = true
		return true
	}
	tf.inflight[key] = true
	defer delete(tf.inflight, key)

	calleeFlow := newTaintFlow(node.Pkg, tf.prog,
		func(obj types.Object) bool {
			v, ok := obj.(*types.Var)
			return ok && isRawDataType(v.Type())
		},
		func(call *ast.CallExpr) bool { return isSanitizer(node.Pkg, call) },
		func(call *ast.CallExpr) bool { return isReleaseCall(node.Pkg, call) },
	)
	calleeFlow.summaries = tf.summaries
	calleeFlow.inflight = tf.inflight

	c := buildCFG(node.Decl.Body, cfgOptions{})
	in := solveForward(c, calleeFlow)

	tainted := false
	for _, blk := range c.Blocks {
		fact, _ := in[blk].(*taintFact)
		if fact == nil {
			continue
		}
		out := fact
		for _, n := range blk.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, r := range ret.Results {
					if calleeFlow.exprTainted(r, out) {
						tainted = true
					}
				}
			}
			out = calleeFlow.Step(n, out).(*taintFact)
		}
	}
	tf.summaries[key] = tainted
	return tainted
}
