package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

// loadTaintFunc compiles a one-package fixture module, builds the
// program, and returns the taint flow plus the CFG of the named
// function, seeded the way postproc seeds: raw-data-typed variables.
func loadTaintFunc(t *testing.T, src, fn string) (*taintFlow, *cfg, *Package) {
	t.Helper()
	dir := writeFixtureModule(t, map[string]string{"taint/taint.go": src})
	pkgs := loadFixtureModule(t, dir)
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != fn {
					continue
				}
				tf := newTaintFlow(pkg, prog,
					func(obj types.Object) bool {
						v, ok := obj.(*types.Var)
						return ok && isRawDataType(v.Type())
					},
					func(call *ast.CallExpr) bool { return isSanitizer(pkg, call) },
					func(call *ast.CallExpr) bool { return isReleaseCall(pkg, call) },
				)
				return tf, buildCFG(fd.Body, cfgOptions{}), pkg
			}
		}
	}
	t.Fatalf("func %s not found in fixture", fn)
	return nil, nil, nil
}

// findObj resolves a variable name inside the analyzed function.
func findObj(t *testing.T, pkg *Package, name string) types.Object {
	t.Helper()
	for id, obj := range pkg.Info.Defs {
		if id.Name == name && obj != nil {
			return obj
		}
	}
	t.Fatalf("object %s not found", name)
	return nil
}

const loopTaintSrc = `package taint

type Example struct{ X []float64 }

type Dataset struct{ Examples []Example }

func rawMean(d *Dataset) float64 {
	var s float64
	for _, e := range d.Examples {
		s += e.X[0]
	}
	return s / float64(len(d.Examples))
}

// LoopCarried starts x clean and taints it inside the loop: the taint
// must survive the back edge and appear in the header's fixed point.
func LoopCarried(d *Dataset) float64 {
	x := 0.0
	for i := 0; i < 3; i++ {
		x = rawMean(d)
	}
	return x
}

// LoopLaundered taints y before the loop and launders it on every
// iteration: the fixed point still carries taint at the exit,
// because the zero-iteration path skips the kill.
func LoopLaundered(d *Dataset, n int) float64 {
	y := rawMean(d)
	for k := 0; k < n; k++ {
		y = 0.0
	}
	return y
}
`

// TestWorklistLoopCarriedTaint drives the solver over a loop whose body
// taints a variable that is clean on entry. Termination of solveForward
// is the convergence half of the test; the header fact carrying the
// body-generated taint around the back edge is the precision half.
func TestWorklistLoopCarriedTaint(t *testing.T) {
	tf, c, pkg := loadTaintFunc(t, loopTaintSrc, "LoopCarried")
	in := solveForward(c, tf)
	x := findObj(t, pkg, "x")

	// The header block evaluates the loop condition i < 3.
	var header *cfgBlock
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			if be, ok := n.(*ast.BinaryExpr); ok {
				if id, isIdent := be.X.(*ast.Ident); isIdent && id.Name == "i" {
					header = blk
				}
			}
		}
	}
	if header == nil {
		t.Fatalf("loop header not found:\n%s", c.dump(pkg.Fset))
	}
	fact, _ := in[header].(*taintFact)
	if fact == nil {
		t.Fatalf("loop header unreachable at fixpoint")
	}
	if !fact.tainted[x] {
		t.Errorf("taint generated in the loop body did not flow around the back edge to the header")
	}
	// The entry fact must stay clean: monotone growth, not retroactive
	// smearing over straight-line prefixes.
	entryFact := in[c.Entry].(*taintFact)
	if entryFact.tainted[x] {
		t.Errorf("fixpoint polluted the entry fact")
	}
	// And the return block sees x tainted (zero iterations cannot happen
	// with a constant bound, but may-taint joins the body path in).
	exitFact, _ := in[c.Exit].(*taintFact)
	if exitFact == nil || !exitFact.tainted[x] {
		t.Errorf("taint did not reach the exit")
	}
}

// TestWorklistLoopKillJoin checks the dual: a kill inside the loop does
// NOT clean the join fact, because the zero-iteration path bypasses it.
func TestWorklistLoopKillJoin(t *testing.T) {
	tf, c, pkg := loadTaintFunc(t, loopTaintSrc, "LoopLaundered")
	in := solveForward(c, tf)
	x := findObj(t, pkg, "y")
	exitFact, _ := in[c.Exit].(*taintFact)
	if exitFact == nil {
		t.Fatalf("exit unreachable at fixpoint")
	}
	if !exitFact.tainted[x] {
		t.Errorf("may-taint lost at the loop join: the zero-iteration path keeps x raw")
	}
}
