package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/gibbs"); for external test
	// packages it carries a "_test" suffix, and for fixture packages it is
	// the path of the fixture directory relative to the fixture root.
	Path      string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
}

// Loader parses and type-checks packages entirely from source. Imports are
// resolved without invoking the go tool: paths inside the current module
// map onto the module tree, and everything else is looked up under
// GOROOT/src. The module is dependency-free by policy, so those two rules
// cover every import.
type Loader struct {
	Fset       *token.FileSet
	moduleRoot string
	modulePath string
	ctxt       build.Context
	imp        *srcImporter
}

// NewLoader returns a Loader rooted at the module containing dir (dir
// itself or any parent holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false // select pure-Go variants of stdlib packages
	l := &Loader{
		Fset:       token.NewFileSet(),
		moduleRoot: root,
		modulePath: modPath,
		ctxt:       ctxt,
	}
	l.imp = &srcImporter{loader: l, cache: make(map[string]*types.Package), loading: make(map[string]bool)}
	return l, nil
}

// ModuleRoot returns the absolute path of the module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. With includeTests set, in-package _test.go files are checked
// together with the package and an external test package (name_test), if
// present, is returned as a second Package.
func (l *Loader) LoadDir(dir, importPath string, includeTests bool) ([]*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	var pkgs []*Package
	names := append(append([]string{}, bp.GoFiles...), bp.CgoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	if len(names) > 0 {
		p, err := l.check(dir, importPath, bp.Name, names)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if includeTests && len(bp.XTestGoFiles) > 0 {
		p, err := l.check(dir, importPath+"_test", bp.Name+"_test", bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func (l *Loader) check(dir, importPath, name string, filenames []string) (*Package, error) {
	sort.Strings(filenames)
	var files []*ast.File
	var paths []string
	for _, fn := range filenames {
		full := filepath.Join(dir, fn)
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		paths = append(paths, full)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l.imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:      importPath,
		Name:      name,
		Dir:       dir,
		Fset:      l.Fset,
		Files:     files,
		Filenames: paths,
		Types:     tpkg,
		Info:      info,
	}, nil
}

// srcImporter resolves imports by type-checking their packages from
// source, recursively, with a per-loader cache. Only non-test files
// participate, mirroring how real imports see a package.
type srcImporter struct {
	loader  *Loader
	cache   map[string]*types.Package
	loading map[string]bool
}

func (im *srcImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.cache[path]; ok {
		return p, nil
	}
	if im.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, err := im.resolveDir(path)
	if err != nil {
		return nil, err
	}
	bp, err := im.loader.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: resolving %q: %w", path, err)
	}
	var files []*ast.File
	for _, fn := range bp.GoFiles {
		f, err := parser.ParseFile(im.loader.Fset, filepath.Join(dir, fn), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	im.loading[path] = true
	defer delete(im.loading, path)
	conf := types.Config{
		Importer: im,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, im.loader.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking dependency %q: %w", path, err)
	}
	im.cache[path] = pkg
	return pkg, nil
}

func (im *srcImporter) resolveDir(path string) (string, error) {
	l := im.loader
	if path == l.modulePath {
		return l.moduleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	if goroot == "" {
		return "", fmt.Errorf("analysis: GOROOT unknown; cannot resolve %q", path)
	}
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (not in module %s or GOROOT)", path, l.modulePath)
}

// ExpandPatterns resolves go-style package patterns ("./...", "dir",
// "dir/...") relative to root into a sorted list of directories that
// contain Go files. Walks skip testdata, vendor, hidden, and underscore
// directories, matching the go tool's convention.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		st, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadPatterns expands the given patterns and loads every matched
// directory, deriving import paths from the module root.
func (l *Loader) LoadPatterns(patterns []string, includeTests bool) ([]*Package, error) {
	dirs, err := ExpandPatterns(l.moduleRoot, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		importPath := l.modulePath
		if rel, err := filepath.Rel(l.moduleRoot, dir); err == nil && rel != "." {
			importPath = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		loaded, err := l.LoadDir(dir, importPath, includeTests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	return pkgs, nil
}
