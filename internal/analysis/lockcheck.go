package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockcheck is the guarded-by analysis for the concurrency-critical
// types of the release pipeline (mechanism.Accountant and Reservation,
// the obs registry/ledger/tracer, the gibbs risk cache, the checkpoint
// log, core.Learner's fallback cache). It works in two phases over each
// package:
//
//  1. Inference. A named struct type with a sync.Mutex/RWMutex field is
//     a guarded struct. For every function the analysis runs a forward
//     lock-state dataflow over the PR-6 CFG (which mutexes of which
//     variable are held, and at what level) and records every field
//     access together with the lock state it ran under. A field written
//     at least once with a mutex of the same struct held is inferred to
//     be guarded by that mutex.
//
//  2. Checking. Every access to a guarded field must hold one of its
//     guards: writes need the exclusive level (Lock), reads either
//     level (Lock or RLock). A violating access is reported with a
//     witness path from function entry to the access.
//
// Escape hatches, in decreasing order of preference:
//
//   - sync/atomic fields (atomic.Bool, atomic.Uint64, …) and &field
//     arguments to sync/atomic calls are exempt — the whole point of an
//     atomic field is lock-free access.
//   - Constructor-before-publication: accesses through a variable the
//     function itself built from a composite literal (or new) are
//     exempt; the object cannot be shared before it escapes.
//   - Methods named *Locked document the caller-holds-the-lock
//     convention; they are analyzed with every receiver mutex held.
//   - A deferred Unlock never kills the lock state: the mutex is held
//     until the function returns, including along panic edges.
//   - //dp:guardedby <mutex> <reason> on a field forces the guard;
//     //dp:guardedby none <reason> exempts the field (for fields that
//     are immutable after construction or externally synchronized).
//
// Function literals are not analyzed in place: a closure body runs at an
// unknown time under unknown locks, so charging it to the lexical lock
// state would be wrong in both directions. Fields only ever touched
// inside closures (sync.Once init bodies, observer callbacks) are
// therefore out of scope per the same conservatism.

// guardedByPrefix anchors the field annotation, L/L+1 like the other
// directive indexes: the directive suppresses on its own line and the
// line below, so it can sit above the field or at the end of its line.
const guardedByPrefix = "//dp:guardedby"

// lockKey names one mutex instance in the lock-state fact: a specific
// variable (receiver, parameter, or local) paired with the name of the
// mutex field held through it.
type lockKey struct {
	base  types.Object
	field string
}

// Lock levels: 0 (absent from the map) = not held, lockRead = RLock
// held, lockWrite = Lock held.
const (
	lockRead  = 1
	lockWrite = 2
)

// lockFact maps held mutexes to their level. nil is bottom
// (unreachable); a reachable fact is non-nil even when empty.
type lockFact map[lockKey]int

func (f lockFact) clone() lockFact {
	if f == nil {
		return nil
	}
	c := make(lockFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// guardedStruct is the per-type result of discovery and inference.
type guardedStruct struct {
	named *types.Named
	// mutexes are the names of the sync.Mutex/RWMutex fields.
	mutexes []string
	// candidates are the mutable fields eligible for guarding (not
	// mutexes, not atomics, not annotated "none").
	candidates map[string]bool
	// guards maps a candidate field to the set of mutexes inferred or
	// annotated to protect it. A field absent from guards is unguarded
	// and its accesses are not checked.
	guards map[string]map[string]bool
	// annotated marks fields whose guard set was forced by a
	// //dp:guardedby directive; inference never widens those.
	annotated map[string]bool
	// fieldPos locates each field declaration (for annotation findings).
	fieldPos map[string]token.Pos
}

// fieldAccess is one recorded access to a candidate field, with the
// lock state observed immediately before the access's node executed.
type fieldAccess struct {
	sel    *ast.SelectorExpr
	base   types.Object
	gs     *guardedStruct
	field  string
	write  bool
	held   lockFact
	fn     *ast.FuncDecl
	cfgRef *cfg
	node   ast.Node
}

var Lockcheck = register(&Analyzer{
	Name:     "lockcheck",
	Doc:      "accesses to mutex-guarded struct fields must hold the inferred guard",
	Severity: Error,
	Run:      runLockcheck,
})

func runLockcheck(p *Pass) {
	pkg := p.Pkg
	structs := discoverGuardedStructs(pkg)
	if len(structs) == 0 {
		return
	}
	annotateGuards(p, pkg, structs)

	// Pass 1: run the lock dataflow over every function, recording every
	// candidate-field access with its lock state.
	var accesses []*fieldAccess
	for _, file := range pkg.Files {
		filename := pkg.Fset.Position(file.Pos()).Filename
		if isTestFilename(filename) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			accesses = append(accesses, collectLockAccesses(pkg, fd, structs)...)
		}
	}

	// Pass 2: inference. A write with a same-struct mutex exclusively
	// held marks the field guarded by that mutex. Annotated guards are
	// already in place and are never widened by inference.
	for _, acc := range accesses {
		if !acc.write {
			continue
		}
		if acc.gs.annotated[acc.field] {
			continue
		}
		for _, m := range heldMutexes(acc, lockWrite) {
			g := acc.gs.guards[acc.field]
			if g == nil {
				g = make(map[string]bool)
				acc.gs.guards[acc.field] = g
			}
			g[m] = true
		}
	}

	// Pass 3: checking. Every access to a guarded field must hold one of
	// its guards at the required level.
	seen := make(map[string]bool)
	for _, acc := range accesses {
		guards := acc.gs.guards[acc.field]
		if len(guards) == 0 {
			continue
		}
		need := lockRead
		verb := "read"
		if acc.write {
			need = lockWrite
			verb = "write"
		}
		ok := false
		for m := range guards {
			if acc.held[lockKey{base: acc.base, field: m}] >= need {
				ok = true
				break
			}
		}
		if ok {
			continue
		}
		pos := pkg.Fset.Position(acc.sel.Pos())
		key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, acc.field)
		if seen[key] {
			continue
		}
		seen[key] = true
		var trace []string
		if blk := blockContainingNode(acc.cfgRef, acc.node); blk != nil {
			if path := acc.cfgRef.witnessPath(acc.cfgRef.Entry, blk, nil); path != nil {
				trace = acc.cfgRef.trace(pkg.Fset, path)
			}
		}
		p.ReportTrace(acc.sel.Pos(), trace,
			"%s of %s.%s without holding %s (guarded field; see //dp:guardedby)",
			verb, acc.gs.named.Obj().Name(), acc.field, guardNames(guards))
	}
}

// guardNames renders a guard set deterministically ("mu" or "mu or rw").
func guardNames(guards map[string]bool) string {
	names := make([]string, 0, len(guards))
	for m := range guards {
		names = append(names, m)
	}
	sort.Strings(names)
	return strings.Join(names, " or ")
}

// heldMutexes returns the mutex fields of acc's own struct held through
// acc's base variable at the given level or stronger, sorted.
func heldMutexes(acc *fieldAccess, need int) []string {
	var out []string
	for _, m := range acc.gs.mutexes {
		if acc.held[lockKey{base: acc.base, field: m}] >= need {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Discovery and annotations.

// isMutexFieldType reports whether t is a sync.Mutex/RWMutex (by package
// path, or structurally for fixture stubs that name a Lock/Unlock pair
// the same way).
func isMutexFieldType(t types.Type) bool {
	name := namedName(t)
	if name != "Mutex" && name != "RWMutex" {
		return false
	}
	if definedInPackage(t, "sync") {
		return true
	}
	return hasMethod(t, "Lock") && hasMethod(t, "Unlock")
}

// isSyncExempt reports whether a field of type t is exempt from
// guarding: the sync package's own coordination types and everything in
// sync/atomic manage their own synchronization.
func isSyncExempt(t types.Type) bool {
	if definedInPackage(t, "sync") || definedInPackage(t, "sync/atomic") {
		return true
	}
	// Structural fallback for fixture stubs: atomics expose Load+Store,
	// a Once exposes Do.
	if hasMethod(t, "Load") && hasMethod(t, "Store") {
		return true
	}
	return namedName(t) == "Once" && hasMethod(t, "Do")
}

// definedInPackage reports whether t's named type (behind pointers) is
// defined in the package with the given import path.
func definedInPackage(t types.Type, path string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == path
}

// discoverGuardedStructs finds the package-scope named struct types
// with a mutex field and computes their candidate field sets.
func discoverGuardedStructs(pkg *Package) map[*types.Named]*guardedStruct {
	out := make(map[*types.Named]*guardedStruct)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		gs := &guardedStruct{
			named:      named,
			candidates: make(map[string]bool),
			guards:     make(map[string]map[string]bool),
			annotated:  make(map[string]bool),
			fieldPos:   make(map[string]token.Pos),
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			gs.fieldPos[f.Name()] = f.Pos()
			if isMutexFieldType(f.Type()) {
				gs.mutexes = append(gs.mutexes, f.Name())
				continue
			}
			if isSyncExempt(f.Type()) {
				continue
			}
			gs.candidates[f.Name()] = true
		}
		if len(gs.mutexes) > 0 {
			out[named] = gs
		}
	}
	return out
}

// annotateGuards applies //dp:guardedby directives to the discovered
// structs: they sit on the field declaration line or the line above,
// matching the loopbound/sensitivity anchoring idiom. Malformed
// directives — no mutex name, unknown mutex name, or no reason — are
// findings: an unexplained escape hatch is how guarded fields rot.
func annotateGuards(p *Pass, pkg *Package, structs map[*types.Named]*guardedStruct) {
	type ann struct {
		mutex  string
		reason string
		pos    token.Pos
	}
	idx := make(map[string]*ann) // "filename:line" -> directive
	var all []*ann
	for _, file := range pkg.Files {
		filename := pkg.Fset.Position(file.Pos()).Filename
		if isTestFilename(filename) {
			continue
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, guardedByPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, guardedByPrefix))
				fields := strings.Fields(rest)
				a := &ann{pos: c.Pos()}
				if len(fields) >= 1 {
					a.mutex = fields[0]
				}
				if len(fields) >= 2 {
					a.reason = strings.Join(fields[1:], " ")
				}
				all = append(all, a)
				line := pkg.Fset.Position(c.Pos()).Line
				idx[fmt.Sprintf("%s:%d", filename, line)] = a
				idx[fmt.Sprintf("%s:%d", filename, line+1)] = a
			}
		}
	}
	if len(all) == 0 {
		return
	}
	used := make(map[*ann]bool)
	for _, gs := range structs {
		for field, pos := range gs.fieldPos {
			fp := pkg.Fset.Position(pos)
			a := idx[fmt.Sprintf("%s:%d", fp.Filename, fp.Line)]
			if a == nil {
				continue
			}
			used[a] = true
			if a.mutex == "" || a.reason == "" {
				p.Reportf(a.pos, "malformed //dp:guardedby directive: want //dp:guardedby <mutex|none> <reason>")
				continue
			}
			if a.mutex == "none" {
				delete(gs.candidates, field)
				continue
			}
			known := false
			for _, m := range gs.mutexes {
				if m == a.mutex {
					known = true
					break
				}
			}
			if !known {
				p.Reportf(a.pos, "//dp:guardedby names unknown mutex %q on %s.%s (mutex fields: %s)",
					a.mutex, gs.named.Obj().Name(), field, strings.Join(gs.mutexes, ", "))
				continue
			}
			gs.guards[field] = map[string]bool{a.mutex: true}
			gs.annotated[field] = true
		}
	}
	for _, a := range all {
		if !used[a] {
			p.Reportf(a.pos, "//dp:guardedby directive is not anchored to a field of a mutex-holding struct")
		}
	}
}

// ---------------------------------------------------------------------------
// Per-function lock dataflow.

// lockFlow is the flowAnalysis tracking which mutexes are held. Facts
// grow DOWNWARD through Merge (intersection): a mutex counts as held at
// a point only if it is held on every path reaching it.
type lockFlow struct {
	pkg   *Package
	entry lockFact
}

func (lf *lockFlow) Bottom() any { return lockFact(nil) }
func (lf *lockFlow) Entry() any  { return lf.entry.clone() }

func (lf *lockFlow) Merge(a, b any) any {
	fa, fb := a.(lockFact), b.(lockFact)
	if fa == nil {
		return fb
	}
	if fb == nil {
		return fa
	}
	m := make(lockFact)
	for k, va := range fa {
		if vb, ok := fb[k]; ok {
			if vb < va {
				m[k] = vb
			} else {
				m[k] = va
			}
		}
	}
	return m
}

func (lf *lockFlow) Equal(a, b any) bool {
	fa, fb := a.(lockFact), b.(lockFact)
	if fa == nil || fb == nil {
		return (fa == nil) == (fb == nil)
	}
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if fb[k] != v {
			return false
		}
	}
	return true
}

func (lf *lockFlow) Refine(e cfgEdge, f any) any { return f }

func (lf *lockFlow) Step(n ast.Node, f any) any {
	fact := f.(lockFact)
	if fact == nil {
		return fact
	}
	// A deferred Unlock runs at function exit, not here: the mutex stays
	// held through the rest of the body and along panic edges, so a
	// DeferStmt transfers nothing.
	if _, ok := n.(*ast.DeferStmt); ok {
		return fact
	}
	out := fact
	cloned := false
	mutate := func() lockFact {
		if !cloned {
			out = fact.clone()
			cloned = true
		}
		return out
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := lf.mutexOp(call)
		if !ok {
			return true
		}
		switch method {
		case "Lock":
			mutate()[key] = lockWrite
		case "RLock":
			if out[key] < lockRead {
				mutate()[key] = lockRead
			}
		case "Unlock", "RUnlock":
			if _, held := out[key]; held {
				delete(mutate(), key)
			}
		}
		return true
	})
	return out
}

// mutexOp recognizes base.mu.Lock() / RLock / Unlock / RUnlock where
// base is a plain variable and mu a mutex-typed field, and returns the
// lock key plus the method name.
func (lf *lockFlow) mutexOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	inner, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	if !isMutexFieldType(lf.pkg.Info.TypeOf(inner)) {
		return lockKey{}, "", false
	}
	baseID, ok := unparen(inner.X).(*ast.Ident)
	if !ok {
		return lockKey{}, "", false
	}
	obj := lf.pkg.Info.ObjectOf(baseID)
	if _, isVar := obj.(*types.Var); !isVar {
		return lockKey{}, "", false
	}
	return lockKey{base: obj, field: inner.Sel.Name}, method, true
}

// ---------------------------------------------------------------------------
// Access collection.

// collectLockAccesses runs the lock dataflow over fd and records every
// candidate-field access with the lock state in force when its
// enclosing node executes.
func collectLockAccesses(pkg *Package, fd *ast.FuncDecl, structs map[*types.Named]*guardedStruct) []*fieldAccess {
	entry := make(lockFact)
	if recvObj, gs := receiverStruct(pkg, fd, structs); gs != nil && strings.HasSuffix(fd.Name.Name, "Locked") {
		// The *Locked naming convention: the caller holds every receiver
		// mutex exclusively for the duration of the call.
		for _, m := range gs.mutexes {
			entry[lockKey{base: recvObj, field: m}] = lockWrite
		}
	}
	lf := &lockFlow{pkg: pkg, entry: entry}
	c := buildCFG(fd.Body, cfgOptions{})
	in := solveForward(c, lf)

	constructed := locallyConstructed(pkg, fd)

	var out []*fieldAccess
	for _, blk := range c.Blocks {
		fact, _ := in[blk].(lockFact)
		if fact == nil {
			continue // unreachable
		}
		cur := fact
		for _, n := range blk.Nodes {
			for _, acc := range nodeFieldAccesses(pkg, n, structs) {
				if constructed[acc.base] {
					continue // constructor-before-publication
				}
				acc.held = cur.clone()
				acc.fn = fd
				acc.cfgRef = c
				acc.node = n
				out = append(out, acc)
			}
			cur = lf.Step(n, cur).(lockFact)
		}
	}
	return out
}

// receiverStruct resolves fd's receiver to a guarded struct, if it is a
// method on one.
func receiverStruct(pkg *Package, fd *ast.FuncDecl, structs map[*types.Named]*guardedStruct) (types.Object, *guardedStruct) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil, nil
	}
	id := fd.Recv.List[0].Names[0]
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil, nil
	}
	if gs := guardedStructOf(obj.Type(), structs); gs != nil {
		return obj, gs
	}
	return nil, nil
}

// guardedStructOf resolves t (behind pointers) to a discovered guarded
// struct.
func guardedStructOf(t types.Type, structs map[*types.Named]*guardedStruct) *guardedStruct {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return structs[named]
}

// locallyConstructed returns the objects fd assigns from a composite
// literal, &composite, or new(T): accesses through them are exempt
// (the object has not been published when the function builds it).
func locallyConstructed(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(lhs, rhs ast.Expr) {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if !isConstructionExpr(unparen(rhs)) {
			return
		}
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				if i < len(st.Rhs) {
					mark(l, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					mark(name, st.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func isConstructionExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// nodeFieldAccesses extracts the candidate-field accesses a node
// performs: base.field selections where base is a plain variable of a
// guarded struct type. Writes are assignment targets, inc/dec operands,
// and address-taken fields (except &field handed to sync/atomic).
func nodeFieldAccesses(pkg *Package, n ast.Node, structs map[*types.Named]*guardedStruct) []*fieldAccess {
	writes := make(map[*ast.SelectorExpr]bool)
	exempt := make(map[ast.Node]bool)

	markTarget := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				e = x.X
			default:
				return
			}
		}
	}

	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		switch st := m.(type) {
		case *ast.AssignStmt:
			for _, l := range st.Lhs {
				markTarget(l)
			}
		case *ast.IncDecStmt:
			markTarget(st.X)
		case *ast.UnaryExpr:
			if st.Op == token.AND {
				markTarget(st.X)
			}
		case *ast.CallExpr:
			if isAtomicPkgCall(pkg, st) {
				// &field arguments to sync/atomic calls are the atomic
				// idiom, not races.
				for _, a := range st.Args {
					if u, ok := unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
						exempt[a] = true
					}
				}
			}
		}
		return true
	})

	var out []*fieldAccess
	ast.Inspect(n, func(m ast.Node) bool {
		if exempt[m] {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := m.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		baseID, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.ObjectOf(baseID)
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		gs := guardedStructOf(obj.Type(), structs)
		if gs == nil || !gs.candidates[sel.Sel.Name] {
			return true
		}
		out = append(out, &fieldAccess{
			sel:   sel,
			base:  obj,
			gs:    gs,
			field: sel.Sel.Name,
			write: writes[sel],
		})
		return true
	})
	return out
}

// isAtomicPkgCall reports whether call invokes a function from
// sync/atomic (atomic.AddInt64, atomic.StorePointer, …).
func isAtomicPkgCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}
