package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapRange reports iteration over a map that feeds an ordered output
// (a slice built by append, or text written during the loop) without a
// subsequent sort.
//
// Go randomizes map iteration order, so a released histogram, CSV row, or
// candidate list assembled from a map range is a fresh random permutation
// on every run. That breaks the seeded reproducibility our experiment
// tables rely on, and in a DP release the permutation is an extra
// randomness channel correlated with the data (which keys exist) that the
// privacy proof never accounted for. Collect keys, sort them, then emit —
// or sort the collected slice before it escapes the function.
var MapRange = register(&Analyzer{
	Name:     "maprange",
	Doc:      "range over a map feeding ordered output without a sort; iterate sorted keys instead",
	Severity: Error,
	Run:      runMapRange,
})

func runMapRange(p *Pass) {
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		// Walk function by function so "is there a sort after the loop?"
		// has a well-defined scope.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkMapRanges(p, body)
			return true
		})
	}
}

func checkMapRanges(p *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := typeUnderlying(p.TypeOf(rs.X)).(*types.Map); !isMap {
			return true
		}
		if emits(p, rs.Body) {
			p.Reportf(rs.For, "map iteration order is randomized: output emitted inside this range over a map is permuted on every run; collect and sort keys first")
			return true
		}
		for _, obj := range appendTargets(p, rs.Body) {
			if !sortedAfter(p, fnBody, rs, obj) {
				p.Reportf(rs.For, "slice %q built from a map range is in randomized order and is never sorted afterwards; sort it (or iterate sorted keys) before it escapes", obj.Name())
			}
		}
		return true
	})
}

func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// emits reports whether the loop body writes human-visible ordered output
// directly: fmt printing or Write* methods on writers/builders.
func emits(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && isPkgRef(p, id, "fmt") &&
			(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
			found = true
			return false
		}
		if isWriterCall(p, sel) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWriterCall reports whether sel is a Write*/WriteString-style method
// call (ordered emission into a stream or builder).
func isWriterCall(p *Pass, sel *ast.SelectorExpr) bool {
	if !strings.HasPrefix(sel.Sel.Name, "Write") {
		return false
	}
	_, isMethod := p.Pkg.Info.Selections[sel]
	return isMethod
}

// appendTargets returns the distinct objects appended to inside body.
func appendTargets(p *Pass, body *ast.BlockStmt) []types.Object {
	var objs []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || p.ObjectOf(fn) != nil && p.ObjectOf(fn).Pkg() != nil {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := p.ObjectOf(id); obj != nil && !seen[obj] {
					seen[obj] = true
					objs = append(objs, obj)
				}
			}
		}
		return true
	})
	return objs
}

// sortedAfter reports whether, somewhere in fn after the range statement,
// obj is passed to a sort (sort.* or slices.Sort*) or re-consumed by a
// sorting call.
func sortedAfter(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && p.ObjectOf(id) == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if isPkgRef(p, id, "sort") {
		return true
	}
	if isPkgRef(p, id, "slices") && strings.HasPrefix(sel.Sel.Name, "Sort") {
		return true
	}
	return false
}
