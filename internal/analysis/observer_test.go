package analysis

import (
	"strings"
	"testing"
)

// observerStub is the minimal structural vocabulary (mechanism +
// accountant) the observer tests build on.
const observerStub = `package p

type Example struct{ X []float64 }

type Dataset struct{ Examples []Example }

type Guarantee struct{ Epsilon float64 }

type RNG struct{ state uint64 }

type Mech struct{ Epsilon float64 }

func (m *Mech) Release(d *Dataset, g *RNG) float64 { return m.Epsilon }

func (m *Mech) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }
`

func TestObserverDirectiveRequiresReason(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"stub.go": observerStub,
		"p.go": `package p

// Harness hides behind a reason-less directive: the directive is
// flagged and the release stays flagged too.
//
//dp:observer
func Harness(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	return m.Release(d, g)
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{AcctLint})
	if len(diags) != 2 {
		t.Fatalf("want malformed-directive + un-accounted findings, got %v", diags)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "malformed observer directive") || !strings.Contains(joined, "un-accounted release") {
		t.Fatalf("want malformed + un-accounted, got:\n%s", joined)
	}
}

func TestObserverExemptsDeclAndLiteral(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"stub.go": observerStub,
		"p.go": `package p

//dp:observer test: resamples the mechanism's output to estimate realized eps
func Harness(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	var s float64
	for i := 0; i < 8; i++ {
		s += m.Release(d, g)
	}
	if d.Examples[0].X[0] > 0 { // raw branch after release: observers may steer measurements
		return s
	}
	return s / 8
}

// Driver is checked normally, but its marked sampling closure is not.
func Driver(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	//dp:observer test: sampling closure handed to a measurement loop
	sample := func() float64 { return m.Release(d, g) }
	return sample() + sample()
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{AcctLint, PostProc})
	if len(diags) != 0 {
		t.Fatalf("observer scopes should be exempt, got %v", diags)
	}
}

func TestObserverDoesNotLeakToEnclosingScope(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"stub.go": observerStub,
		"p.go": `package p

// Driver releases outside the marked closure: that release is still on
// the production path and must be flagged.
func Driver(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	//dp:observer test: only the closure is a measurement
	sample := func() float64 { return m.Release(d, g) }
	return sample() + m.Release(d, g)
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{AcctLint})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "un-accounted release") {
		t.Fatalf("want exactly the outer un-accounted release, got %v", diags)
	}
}

func TestSpendDetailCountsAsSpend(t *testing.T) {
	dir := writeFixtureModule(t, map[string]string{
		"stub.go": observerStub,
		"p.go": `package p

type Accountant struct{ spent []Guarantee }

func (a *Accountant) Spend(g Guarantee) { a.spent = append(a.spent, g) }

func (a *Accountant) SpendDetail(g Guarantee, mechanism string) {
	a.spent = append(a.spent, g)
	_ = mechanism
}

// Pay accounts through the metadata variant: clean.
func Pay(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	v := m.Release(d, g)
	acct.SpendDetail(m.Guarantee(), "mech")
	return v
}
`,
	})
	diags := Run(loadFixtureModule(t, dir), []*Analyzer{AcctLint})
	if len(diags) != 0 {
		t.Fatalf("SpendDetail should satisfy accounting, got %v", diags)
	}
}
