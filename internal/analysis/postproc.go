package analysis

import (
	"go/ast"
	"go/types"
)

// PostProc enforces post-processing hygiene around releases.
//
// Differential privacy is closed under post-processing: anything computed
// from a released value alone inherits its guarantee. The converse
// mistake — branching on the *raw* data after a release in the same
// function — silently widens the privacy channel: the control flow (and
// everything it selects) becomes a second, unaccounted query. The check
// taints every value derived from raw sample data (Dataset/Example
// parameters, fields, and anything computed from them), treats
// Release/Sample results as clean (that is the point of a release), and
// flags if-conditions, for-conditions, and switch tags that consume
// tainted values after the first release of the enclosing function.
// Ranging over the raw data again is allowed — feeding it to a second
// mechanism is composition, priced by acctlint, not a violation. Public
// scalars (d.Len(), fingerprints, error values) are clean.
var PostProc = register(&Analyzer{
	Name:     "postproc",
	Doc:      "no branching on raw (pre-release) data after a release; post-processing may only consume released values",
	Severity: Error,
	Run:      runPostProc,
})

func runPostProc(p *Pass) {
	observers, _ := buildObserverIndex(p.Pkg) // malformed directives are acctlint's to report
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if observers.isObserverScope(p.Pkg, fd) {
					continue
				}
				postProcScope(p, fd.Body, observers)
			}
		}
	}
}

// postProcScope analyzes one function scope. Nested function literals are
// analyzed as scopes of their own (a closure handed to an audit harness
// or a quality function runs in a different dynamic context than the
// statements around it), and are excluded from the enclosing scope's
// release/branch accounting. Literals marked //dp:observer are skipped:
// an observer's branches steer a measurement harness, not a release path.
func postProcScope(p *Pass, body *ast.BlockStmt, observers observerIndex) {
	for _, lit := range directFuncLits(body) {
		if observers.isObserverScope(p.Pkg, lit) {
			continue
		}
		postProcScope(p, lit.Body, observers)
	}

	var firstRelease ast.Node
	inspectScope(body, func(n ast.Node) {
		if firstRelease != nil {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(p.Pkg, call) {
			firstRelease = call
		}
	})
	if firstRelease == nil {
		return
	}

	tl := newTaintLattice(p.Pkg, body,
		func(obj types.Object) bool {
			v, ok := obj.(*types.Var)
			return ok && isRawDataType(v.Type())
		},
		func(call *ast.CallExpr) bool { return false },
		func(call *ast.CallExpr) bool { return isSanitizer(p.Pkg, call) },
	)

	report := func(pos ast.Node, kind string) {
		p.Reportf(pos.Pos(), "%s on raw (pre-release) data after the release at line %d: data-dependent control flow is an unaccounted query; branch on released values only",
			kind, p.Fset.Position(firstRelease.Pos()).Line)
	}
	inspectScope(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.IfStmt:
			if st.Cond.Pos() > firstRelease.Pos() && tl.Tainted(st.Cond) {
				report(st.Cond, "branch")
			}
		case *ast.ForStmt:
			if st.Cond != nil && st.Cond.Pos() > firstRelease.Pos() && tl.Tainted(st.Cond) {
				report(st.Cond, "loop bound")
			}
		case *ast.SwitchStmt:
			if st.Tag != nil && st.Tag.Pos() > firstRelease.Pos() && tl.Tainted(st.Tag) {
				report(st.Tag, "switch")
			}
		}
	})
}

// isSanitizer reports whether call launders raw data into a clean value:
// a DP release, or a public scalar of the data (its size or an opaque
// cache fingerprint).
func isSanitizer(pkg *Package, call *ast.CallExpr) bool {
	if isReleaseCall(pkg, call) {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Len", "Fingerprint":
		return true
	}
	return false
}

// directFuncLits returns the outermost function literals in body.
func directFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

// inspectScope visits every node of body except the interiors of nested
// function literals.
func inspectScope(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
