package analysis

import (
	"go/ast"
	"go/types"
)

// PostProc enforces post-processing hygiene around releases.
//
// Differential privacy is closed under post-processing: anything computed
// from a released value alone inherits its guarantee. The converse
// mistake — branching on the *raw* data after a release in the same
// function — silently widens the privacy channel: the control flow (and
// everything it selects) becomes a second, unaccounted query.
//
// The check is order-aware: it runs the flow-sensitive taint analysis
// (flow.go) over the function's CFG (cfg.go) and flags an if-condition,
// for-condition, or switch tag only when, at that program point, (1) a DP
// release may already have happened on some path reaching it AND (2) the
// condition may still carry a raw-derived value on that path. Both parts
// matter: a branch that is textually below a release but only reachable
// on release-free paths is clean, and re-assigning a variable to a
// released (or otherwise clean) value kills its taint — `x = out` after
// `out := m.Release(...)` launders x for good. Helper calls consult an
// interprocedural summary through the call graph, so a helper that only
// derives public scalars (d.Len()) from its raw argument stays clean.
// Findings carry a block-path witness from the release to the branch.
//
// Ranging over the raw data again is allowed — feeding it to a second
// mechanism is composition, priced by acctlint, not a violation. Public
// scalars (d.Len(), fingerprints, error values) are clean.
var PostProc = register(&Analyzer{
	Name:     "postproc",
	Doc:      "no branching on raw (pre-release) data after a release on the same path; post-processing may only consume released values",
	Severity: Error,
	Run:      runPostProc,
})

func runPostProc(p *Pass) {
	observers, _ := buildObserverIndex(p.Pkg) // malformed directives are acctlint's to report
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		obsLits := observerArgLits(p.Pkg, p.Prog, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if observers.isObserverScope(p.Pkg, fd) || isAccessLogScope(p, fd) {
					continue
				}
				postProcScope(p, fd.Body, observers, obsLits)
			}
		}
	}
}

// postProcScope analyzes one function scope. Nested function literals are
// analyzed as scopes of their own (a closure handed to an audit harness
// or a quality function runs in a different dynamic context than the
// statements around it), and are excluded from the enclosing scope's
// release/branch accounting. Literals marked //dp:observer — directly or
// by being passed to an observer-annotated entry point — are skipped: an
// observer's branches steer a measurement harness, not a release path.
func postProcScope(p *Pass, body *ast.BlockStmt, observers observerIndex, obsLits map[*ast.FuncLit]bool) {
	for _, lit := range directFuncLits(body) {
		if observers.isObserverScope(p.Pkg, lit) || obsLits[lit] {
			continue
		}
		postProcScope(p, lit.Body, observers, obsLits)
	}

	// Fast path: a scope with no release has nothing to post-process.
	hasRelease := false
	inspectScope(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && isReleaseCall(p.Pkg, call) {
			hasRelease = true
		}
	})
	if !hasRelease {
		return
	}

	// Map branch-condition expressions to the report kind of their
	// statement, so the CFG replay knows which evaluated expressions are
	// control decisions.
	kinds := make(map[ast.Expr]string)
	inspectScope(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.IfStmt:
			kinds[st.Cond] = "branch"
		case *ast.ForStmt:
			if st.Cond != nil {
				kinds[st.Cond] = "loop bound"
			}
		case *ast.SwitchStmt:
			if st.Tag != nil {
				kinds[st.Tag] = "switch"
			}
		}
	})
	if len(kinds) == 0 {
		return
	}

	tf := newTaintFlow(p.Pkg, p.Prog,
		func(obj types.Object) bool {
			v, ok := obj.(*types.Var)
			return ok && isRawDataType(v.Type())
		},
		func(call *ast.CallExpr) bool { return isSanitizer(p.Pkg, call) },
		func(call *ast.CallExpr) bool { return isReleaseCall(p.Pkg, call) },
	)
	c := buildCFG(body, cfgOptions{})
	in := solveForward(c, tf)

	// Release blocks anchor witness traces and the "after the release at
	// line N" wording.
	var releases []relSite
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok && isReleaseCall(p.Pkg, call) {
					releases = append(releases, relSite{blk: blk, call: call})
				}
				return true
			})
		}
	}

	// Replay the transfer function per block: at each condition node the
	// running fact is exactly the state when the branch decides.
	for _, blk := range c.Blocks {
		fact, _ := in[blk].(*taintFact)
		if fact == nil {
			continue // unreachable
		}
		out := any(fact)
		for _, n := range blk.Nodes {
			if cond, ok := n.(ast.Expr); ok {
				if kind, isBranch := kinds[cond]; isBranch {
					f := out.(*taintFact)
					if f.released && tf.exprTainted(cond, f) {
						reportPostProc(p, c, blk, cond, kind, releases)
					}
				}
			}
			out = tf.Step(n, out)
		}
	}
}

// relSite is one DP release call and the CFG block evaluating it.
type relSite struct {
	blk  *cfgBlock
	call *ast.CallExpr
}

// reportPostProc emits one finding with a witness path from a release
// block that reaches the branch.
func reportPostProc(p *Pass, c *cfg, condBlk *cfgBlock, cond ast.Expr, kind string, releases []relSite) {
	var witness []string
	relLine := 0
	for _, r := range releases {
		if path := c.witnessPath(r.blk, condBlk, nil); path != nil {
			witness = c.trace(p.Fset, path)
			relLine = p.Fset.Position(r.call.Pos()).Line
			break
		}
	}
	if relLine == 0 && len(releases) > 0 {
		// The release reaching this point sits in the same block after a
		// loop back edge or similar; fall back to the first site.
		relLine = p.Fset.Position(releases[0].call.Pos()).Line
		witness = c.trace(p.Fset, []*cfgBlock{releases[0].blk, condBlk})
	}
	p.ReportTrace(cond.Pos(), witness,
		"%s on raw (pre-release) data after the release at line %d: data-dependent control flow is an unaccounted query; branch on released values only",
		kind, relLine)
}

// isSanitizer reports whether call launders raw data into a clean value:
// a DP release, or a public scalar of the data (its size or an opaque
// cache fingerprint).
func isSanitizer(pkg *Package, call *ast.CallExpr) bool {
	if isReleaseCall(pkg, call) {
		return true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Len", "Fingerprint":
		return true
	}
	return false
}

// directFuncLits returns the outermost function literals in body.
func directFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit)
			return false
		}
		return true
	})
	return out
}

// inspectScope visits every node of body except the interiors of nested
// function literals.
func inspectScope(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
