package analysis

import (
	"strconv"
	"strings"
)

// RawRand reports imports of math/rand (and math/rand/v2) anywhere except
// the internal/rng package and _test.go files.
//
// Every mechanism's ε-DP statement quantifies over the randomness of the
// release. Routing all sampling through internal/rng keeps experiments
// reproducible under a single seed, keeps the Laplace sampler's
// floating-point caveats documented in one place, and leaves exactly one
// seam to swap in a cryptographically-secure source before any adversarial
// deployment. A stray math/rand import silently bypasses all three.
var RawRand = register(&Analyzer{
	Name:     "rawrand",
	Doc:      "math/rand imported outside internal/rng; use the seeded samplers in internal/rng",
	Severity: Error,
	Run:      runRawRand,
})

func runRawRand(p *Pass) {
	if strings.HasSuffix(p.Pkg.Path, "internal/rng") {
		return
	}
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s outside internal/rng: route randomness through repro/internal/rng so experiments stay seeded and reproducible", path)
			}
		}
	}
}
