package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strconv"
	"strings"
)

// SensAnn enforces the //dp:sensitivity annotation discipline on quality
// functions.
//
// The exponential mechanism's guarantee (Theorem 2.2) is 2εΔq: it is only
// as good as the declared global sensitivity Δq of the quality function.
// The annotation grammar
//
//	//dp:sensitivity Δq=<expr>
//
// (also accepted as dq=<expr>; <expr> is a constant like 1, a per-record
// bound like M/n or (clip+ln2)/n) placed on, or on the line above, a
// function declaration or `q := func(...)` assignment declares that
// bound. The check (1) flags quality functions passed to exponential /
// Gibbs constructors without an annotation, (2) verifies declared bounds
// against the function body for the recognizable forms — constant
// returns, counting loops over examples, clamped or sigmoid averages,
// empirical risks — and (3) cross-checks exact annotations against the
// constructor's sensitivity argument. Verification is symbolic where the
// body is: a clamp width held in a variable (Clamp(·, −clip, 0)) must
// appear by name in the declared numerator, and an empirical risk's
// coefficient is resolved from its loss's Bound() method through the
// call graph — a constant Bound() pins the coefficient exactly, an
// unbounded (+Inf) one makes any declared Δq vacuous, and an interface
// or field-valued bound stays the conventional symbol M. Unrecognizable
// bodies are trusted: the annotation is then documentation, reviewed by
// a human.
var SensAnn = register(&Analyzer{
	Name:     "sensann",
	Doc:      "quality functions need a verified //dp:sensitivity Δq=<expr> annotation (Theorem 2.2's Δq)",
	Severity: Error,
	Run:      runSensAnn,
})

// sensPrefix introduces a sensitivity annotation.
const sensPrefix = "//dp:sensitivity"

// sensShape is the comparable abstraction of a sensitivity expression:
// (coef + Σ syms)·n^(−pow). The numerator is a sum of a folded constant
// part (coef, meaningful when exact or when symbols accompany it) and
// named symbolic terms (clip, M, …) whose values the analysis cannot
// resolve; exact means the numerator is fully constant.
type sensShape struct {
	coef  float64
	pow   int // 0 for a constant bound, 1 for a per-record (·/n) bound
	exact bool
	syms  map[string]bool
	// unbounded marks a body whose per-term ceiling folded to +Inf (an
	// unclipped loss): no finite Δq exists, whatever the annotation says.
	unbounded bool
}

func (s sensShape) String() string {
	var terms []string
	for _, sym := range sortedSyms(s.syms) {
		terms = append(terms, sym)
	}
	if s.exact || s.coef > 0 {
		terms = append(terms, strconv.FormatFloat(s.coef, 'g', -1, 64))
	}
	if len(terms) == 0 {
		terms = []string{"c"}
	}
	num := strings.Join(terms, "+")
	if s.pow == 1 {
		if len(terms) > 1 {
			return "(" + num + ")/n"
		}
		return num + "/n"
	}
	return num
}

func sortedSyms(syms map[string]bool) []string {
	out := make([]string, 0, len(syms))
	for s := range syms {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// compatible reports whether a declared shape is consistent with an
// inferred one. The n-power must agree always. A symbolic inferred
// numerator demands every inferred symbol in the declared numerator — a
// purely constant declaration cannot bound a symbol the analysis could
// not resolve, and declaring the *wrong* symbol is exactly the mistake
// the annotation exists to catch (extra declared terms are fine: they
// over-declare, which over-noises, which stays private). When both
// numerators are fully constant the coefficients must match; a declared
// numerator the parser could not decompose (free-form documentation) is
// trusted beyond the power check.
func (s sensShape) compatible(inferred sensShape) bool {
	if s.pow != inferred.pow {
		return false
	}
	if len(inferred.syms) > 0 {
		if s.exact {
			return false
		}
		if len(s.syms) == 0 {
			return true // opaque declared numerator: documentation, trusted
		}
		for sym := range inferred.syms {
			if !s.syms[sym] {
				return false
			}
		}
		return true
	}
	if s.exact && inferred.exact {
		return math.Abs(s.coef-inferred.coef) <= 1e-9*math.Max(1, math.Abs(inferred.coef))
	}
	return true
}

// sensAnnotation is one parsed //dp:sensitivity comment.
type sensAnnotation struct {
	shape sensShape
	expr  string
	line  int
	pos   token.Pos
	bad   string // parse-error text; "" when well-formed
}

// parseSensExpr parses the <expr> of Δq=<expr> into a shape. The
// numerator is a sum of terms, each a float literal, the constant symbol
// ln2 (folded to its value), or a named symbol like clip or M; a
// numerator outside that grammar degrades to a shape-only bound (power
// checked, numerator trusted as documentation).
func parseSensExpr(expr string) (sensShape, error) {
	if expr == "" {
		return sensShape{}, fmt.Errorf("empty bound")
	}
	num, pow := expr, 0
	if i := strings.LastIndex(expr, "/"); i >= 0 {
		den := expr[i+1:]
		if den == "" {
			return sensShape{}, fmt.Errorf("empty denominator")
		}
		ok := true
		for _, r := range den {
			if r < 'a' || r > 'z' {
				ok = false
				break
			}
		}
		if !ok {
			return sensShape{}, fmt.Errorf("denominator must be a sample-size symbol like n")
		}
		num, pow = expr[:i], 1
	}
	trimmed := strings.TrimSuffix(strings.TrimPrefix(num, "("), ")")
	shape := sensShape{pow: pow, exact: true}
	for _, term := range strings.Split(trimmed, "+") {
		switch {
		case term == "":
			return sensShape{}, fmt.Errorf("empty numerator term")
		case term == "ln2":
			shape.coef += math.Ln2
		case isSymbolTerm(term):
			if shape.syms == nil {
				shape.syms = make(map[string]bool)
			}
			shape.syms[term] = true
			shape.exact = false
		default:
			f, err := strconv.ParseFloat(term, 64)
			if err != nil {
				// Free-form numerator: shape-only, trusted.
				return sensShape{pow: pow}, nil
			}
			shape.coef += f
		}
	}
	if shape.exact && (shape.coef <= 0 || math.IsInf(shape.coef, 0)) {
		return sensShape{}, fmt.Errorf("bound must be positive and finite")
	}
	return shape, nil
}

// isSymbolTerm matches a named symbolic coefficient: a letter followed by
// letters and digits (clip, M, tau2).
func isSymbolTerm(s string) bool {
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return s != ""
}

// sensIndex maps "<filename>:<line>" of a function's anchor line to its
// annotation. An annotation on line L anchors functions starting on L or
// L+1 (trailing comment vs. comment above, like //dplint:ignore).
type sensIndex map[string]*sensAnnotation

func buildSensIndex(pkg *Package) (sensIndex, []*sensAnnotation) {
	idx := make(sensIndex)
	var all []*sensAnnotation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, sensPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ann := &sensAnnotation{line: pos.Line, pos: c.Pos()}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, sensPrefix))
				switch {
				case strings.HasPrefix(rest, "Δq="):
					ann.expr = strings.Fields(strings.TrimPrefix(rest, "Δq="))[0]
				case strings.HasPrefix(rest, "dq="):
					ann.expr = strings.Fields(strings.TrimPrefix(rest, "dq="))[0]
				default:
					ann.bad = "want //dp:sensitivity Δq=<expr>"
				}
				if ann.bad == "" {
					shape, err := parseSensExpr(ann.expr)
					if err != nil {
						ann.bad = err.Error()
					}
					ann.shape = shape
				}
				all = append(all, ann)
				for _, l := range []int{pos.Line, pos.Line + 1} {
					idx[fmt.Sprintf("%s:%d", pos.Filename, l)] = ann
				}
			}
		}
	}
	return idx, all
}

// annotationFor looks up the annotation anchored at node's starting line.
func (idx sensIndex) annotationFor(pkg *Package, node ast.Node) *sensAnnotation {
	pos := pkg.Fset.Position(node.Pos())
	return idx[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
}

func runSensAnn(p *Pass) {
	idx, all := buildSensIndex(p.Pkg)
	for _, ann := range all {
		if ann.bad != "" && !p.IsTestFile(ann.pos) {
			p.Reportf(ann.pos, "malformed sensitivity annotation: %s", ann.bad)
		}
	}
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		// Verify every annotated function whose body has a recognizable
		// form, wherever it is declared.
		ast.Inspect(file, func(n ast.Node) bool {
			var fnType *ast.FuncType
			var body *ast.BlockStmt
			var anchor ast.Node
			switch d := n.(type) {
			case *ast.FuncDecl:
				fnType, body, anchor = d.Type, d.Body, d
			case *ast.AssignStmt:
				if len(d.Rhs) == 1 {
					if lit, ok := d.Rhs[0].(*ast.FuncLit); ok {
						fnType, body, anchor = lit.Type, lit.Body, d
					}
				}
			}
			if body == nil {
				return true
			}
			ann := idx.annotationFor(p.Pkg, anchor)
			if ann == nil || ann.bad != "" {
				return true
			}
			if inferred, ok := inferSensShape(p.Pkg, p.Prog, fnType, body); ok {
				switch {
				case inferred.unbounded:
					p.Reportf(anchor.Pos(), "sensitivity annotation Δq=%s is vacuous: the body averages an unbounded loss (its Bound() is +Inf), so no finite Δq exists — clip the loss first", ann.expr)
				case !ann.shape.compatible(inferred):
					p.Reportf(anchor.Pos(), "sensitivity annotation Δq=%s contradicts the body, which looks %s-sensitive (declared shape %s)", ann.expr, inferred, ann.shape)
				}
			}
			return true
		})
		// Flag unannotated quality functions at constructor call sites, and
		// cross-check exact annotations against the sensitivity argument.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sensArg, ok := qualityCtor(p.Pkg, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			qual := call.Args[0]
			if t := p.TypeOf(qual); t != nil {
				if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					return true
				}
			}
			ann := resolveQualityAnnotation(p, idx, qual)
			if ann == nil {
				p.Reportf(qual.Pos(), "quality function passed to %s without a //dp:sensitivity annotation: Theorem 2.2's 2εΔq guarantee depends on its declared sensitivity", ctorName(call))
				return true
			}
			if ann.bad != "" || !ann.shape.exact || ann.shape.pow != 0 || sensArg < 0 || sensArg >= len(call.Args) {
				return true
			}
			if tv, okc := p.Pkg.Info.Types[call.Args[sensArg]]; okc && tv.Value != nil {
				if v, okf := constant.Float64Val(constant.ToFloat(tv.Value)); okf {
					if math.Abs(v-ann.shape.coef) > 1e-9*math.Max(1, math.Abs(v)) {
						p.Reportf(call.Args[sensArg].Pos(), "constructor sensitivity argument %g disagrees with the quality function's //dp:sensitivity Δq=%s", v, ann.expr)
					}
				}
			}
			return true
		})
	}
}

// qualityCtor reports whether call constructs an exponential-mechanism
// style object from a quality function (first argument of function type),
// returning the index of its sensitivity argument (-1 when none).
func qualityCtor(pkg *Package, call *ast.CallExpr) (sensArg int, ok bool) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return 0, false
	}
	path := fn.Pkg().Path()
	switch {
	case strings.HasSuffix(path, "internal/mechanism") && (fn.Name() == "NewExponential" || fn.Name() == "NewReportNoisyMax"):
		return 2, true
	case strings.HasSuffix(path, "internal/gibbs") && fn.Name() == "New":
		return -1, true
	}
	return 0, false
}

func ctorName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "constructor"
}

// resolveQualityAnnotation finds the annotation of the function bound to
// arg: an inline literal, a local `q := func` variable, or a declared
// function (possibly in another analyzed package, via the call graph).
func resolveQualityAnnotation(p *Pass, idx sensIndex, arg ast.Expr) *sensAnnotation {
	switch a := arg.(type) {
	case *ast.FuncLit:
		return idx.annotationFor(p.Pkg, a)
	case *ast.Ident:
		obj := p.ObjectOf(a)
		switch obj := obj.(type) {
		case *types.Var:
			if site := assignSiteOf(p.Pkg, obj); site != nil {
				return idx.annotationFor(p.Pkg, site)
			}
		case *types.Func:
			if node := p.Prog.NodeOf(obj); node != nil {
				remote, _ := buildSensIndex(node.Pkg)
				return remote.annotationFor(node.Pkg, node.Decl)
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := p.Pkg.Info.Uses[a.Sel].(*types.Func); ok && p.Prog != nil {
			if node := p.Prog.NodeOf(fn); node != nil {
				remote, _ := buildSensIndex(node.Pkg)
				return remote.annotationFor(node.Pkg, node.Decl)
			}
		}
	}
	// Unresolvable values (fields, call results) are not flagged: we
	// cannot see their declaration to require an annotation on it.
	return &sensAnnotation{bad: "unresolvable"}
}

// assignSiteOf finds the := assignment (or var spec) binding obj to a
// function literal in its package.
func assignSiteOf(pkg *Package, obj *types.Var) ast.Node {
	var found ast.Node
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, l := range st.Lhs {
					if id, ok := l.(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
						found = st
						return false
					}
				}
			case *ast.ValueSpec:
				for _, nm := range st.Names {
					if pkg.Info.ObjectOf(nm) == obj {
						found = st
						return false
					}
				}
			}
			return true
		})
	}
	return found
}

// inferSensShape recognizes the bodies the check can verify, returning
// (shape, true) on success. Forms, in order of attempt:
//
//  1. constant returns: every return yields a numeric constant — the
//     sensitivity is the spread max−min (e.g. a 0/1 loss);
//  2. counting loop: a ±1 accumulator over a range of examples, returned
//     directly or as ±|acc − t| — sensitivity 1 (|·| is 1-Lipschitz and a
//     replace-one neighbor moves the count by at most 1);
//  3. empirical risk: return ±EmpiricalRisk(...) — an average of per-term
//     losses, shape B/n where B is the loss's ceiling, resolved through
//     the call graph: a concrete loss whose Bound() folds to a constant
//     gives an exact coefficient, a Bound() of +Inf marks the shape
//     unbounded, and a field-valued or interface-dispatched Bound() stays
//     the conventional symbol M;
//  4. clamped / sigmoid average: per-example terms passed through
//     Clamp(·, lo, hi) or Sigmoid, divided by the sample size — shape
//     (hi−lo)/n, exact when the clamp bounds are constants and symbolic
//     (the bound variables' names) when they are not.
func inferSensShape(pkg *Package, prog *Program, fnType *ast.FuncType, body *ast.BlockStmt) (sensShape, bool) {
	rets := returnExprs(body)
	if len(rets) == 0 {
		return sensShape{}, false
	}
	if s, ok := inferConstantReturns(pkg, rets); ok {
		return s, true
	}
	if s, ok := inferCountingLoop(pkg, body, rets); ok {
		return s, true
	}
	if s, ok := inferEmpiricalRisk(pkg, prog, rets); ok {
		return s, true
	}
	if s, ok := inferClampedAverage(pkg, body, rets); ok {
		return s, true
	}
	return sensShape{}, false
}

// returnExprs collects the single-result return expressions of body,
// excluding nested function literals.
func returnExprs(body *ast.BlockStmt) []ast.Expr {
	var out []ast.Expr
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if len(st.Results) != 1 {
				ok = false
				return false
			}
			out = append(out, st.Results[0])
		}
		return true
	})
	if !ok {
		return nil
	}
	return out
}

func inferConstantReturns(pkg *Package, rets []ast.Expr) (sensShape, bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rets {
		tv, ok := pkg.Info.Types[r]
		if !ok || tv.Value == nil {
			return sensShape{}, false
		}
		v, ok := constant.Float64Val(constant.ToFloat(tv.Value))
		if !ok {
			return sensShape{}, false
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return sensShape{coef: hi - lo, pow: 0, exact: true}, true
}

// inferCountingLoop matches bodies of the PrivateMedian family: an
// accumulator bumped by ±1 per example inside a range loop, returned as
// acc, −acc, |acc−t|, or −|acc−t|.
func inferCountingLoop(pkg *Package, body *ast.BlockStmt, rets []ast.Expr) (sensShape, bool) {
	counters := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverExamples(pkg, rng) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			inc, ok := m.(*ast.IncDecStmt)
			if !ok {
				return true
			}
			if id, ok := inc.X.(*ast.Ident); ok {
				if obj := pkg.Info.ObjectOf(id); obj != nil {
					counters[obj] = true
				}
			}
			return true
		})
		return true
	})
	if len(counters) == 0 {
		return sensShape{}, false
	}
	for _, r := range rets {
		if !isCounterExpr(pkg, r, counters) {
			return sensShape{}, false
		}
	}
	return sensShape{coef: 1, pow: 0, exact: true}, true
}

// rangesOverExamples reports whether rng iterates the examples of a raw
// dataset: range d.Examples, or range over a raw-data-typed expression.
func rangesOverExamples(pkg *Package, rng *ast.RangeStmt) bool {
	if sel, ok := rng.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "Examples" {
		return true
	}
	return isRawDataType(pkg.Info.TypeOf(rng.X))
}

// isCounterExpr matches acc, −acc, |acc − t|, −|acc − t| for a known
// counter acc (t arbitrary: counting-query targets like p·n are
// data-independent under replace-one neighbors, where n is fixed).
func isCounterExpr(pkg *Package, e ast.Expr, counters map[types.Object]bool) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		e = u.X
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Abs" && len(call.Args) == 1 {
			if b, ok := call.Args[0].(*ast.BinaryExpr); ok && (b.Op == token.SUB || b.Op == token.ADD) {
				return isCounterIdent(pkg, b.X, counters) || isCounterIdent(pkg, b.Y, counters)
			}
			return isCounterIdent(pkg, call.Args[0], counters)
		}
	}
	return isCounterIdent(pkg, e, counters)
}

func isCounterIdent(pkg *Package, e ast.Expr, counters map[types.Object]bool) bool {
	id, ok := e.(*ast.Ident)
	return ok && counters[pkg.Info.ObjectOf(id)]
}

// inferEmpiricalRisk matches return ±EmpiricalRisk(...): an average of
// per-example losses. The coefficient is the per-term ceiling, resolved
// from the loss argument's Bound() method when one is statically visible.
func inferEmpiricalRisk(pkg *Package, prog *Program, rets []ast.Expr) (sensShape, bool) {
	var shape sensShape
	for i, r := range rets {
		if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.SUB {
			r = u.X
		}
		call, ok := r.(*ast.CallExpr)
		if !ok {
			return sensShape{}, false
		}
		fn := calleeFunc(pkg, call)
		if fn == nil || fn.Name() != "EmpiricalRisk" {
			return sensShape{}, false
		}
		s := lossBoundShape(pkg, prog, call)
		if i == 0 {
			shape = s
		} else if !shape.compatible(s) || !s.compatible(shape) {
			// Returns average different losses: only the shape is known.
			shape = sensShape{pow: 1, syms: map[string]bool{"M": true}}
		}
	}
	return shape, true
}

// lossBoundShape resolves the per-term ceiling of one EmpiricalRisk call
// from its loss argument — the first argument whose type bears a Bound
// method. A concrete loss whose Bound() body returns a constant folds to
// an exact coefficient; math.Inf marks the shape unbounded; interface
// dispatch, field-valued bounds (ClippedLoss.Max), and anything else
// stay the conventional symbol M.
func lossBoundShape(pkg *Package, prog *Program, call *ast.CallExpr) sensShape {
	symM := sensShape{pow: 1, syms: map[string]bool{"M": true}}
	for _, a := range call.Args {
		t := pkg.Info.TypeOf(a)
		if t == nil || !hasMethod(t, "Bound") {
			continue
		}
		if types.IsInterface(t.Underlying()) {
			return symM
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Bound")
		fn, ok := obj.(*types.Func)
		if !ok || prog == nil {
			return symM
		}
		node := prog.NodeOf(fn)
		if node == nil {
			return symM
		}
		body := node.Decl.Body
		if body == nil {
			return symM
		}
		brets := returnExprs(body)
		if len(brets) != 1 {
			return symM
		}
		if v, okc := constFloat(node.Pkg, brets[0]); okc {
			if v <= 0 {
				return symM
			}
			return sensShape{coef: v, pow: 1, exact: true}
		}
		if bc, okb := brets[0].(*ast.CallExpr); okb {
			if sel, oks := bc.Fun.(*ast.SelectorExpr); oks && sel.Sel.Name == "Inf" {
				return sensShape{pow: 1, unbounded: true}
			}
		}
		return symM
	}
	return symM
}

// inferClampedAverage matches per-example terms bounded by Clamp(·, lo,
// hi) or Sigmoid, averaged by a division by the sample size in the
// return. Constant clamp bounds give an exact width hi−lo; a bound held
// in a variable contributes its name as a symbolic term (Clamp(x, −clip,
// 0) has width clip), which the declared numerator must mention.
func inferClampedAverage(pkg *Package, body *ast.BlockStmt, rets []ast.Expr) (sensShape, bool) {
	width, widthExact, found := 0.0, false, false
	var widthSyms map[string]bool
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		switch {
		case name == "Clamp" && len(call.Args) == 3:
			found = true
			loC, loSym, okLo := clampBoundTerm(pkg, call.Args[1])
			hiC, hiSym, okHi := clampBoundTerm(pkg, call.Args[2])
			if okLo && okHi {
				width = hiC - loC
				if loSym == "" && hiSym == "" {
					widthExact = true
				} else {
					widthSyms = make(map[string]bool)
					for _, s := range []string{loSym, hiSym} {
						if s != "" {
							widthSyms[s] = true
						}
					}
				}
			}
		case name == "Sigmoid":
			found, width, widthExact = true, 1, true
		}
		return true
	})
	if !found {
		return sensShape{}, false
	}
	for _, r := range rets {
		if !dividesBySampleSize(r) {
			return sensShape{}, false
		}
	}
	return sensShape{coef: width, pow: 1, exact: widthExact, syms: widthSyms}, true
}

// clampBoundTerm resolves one clamp bound to a constant part and/or a
// symbol name: a constant expression folds, an identifier (possibly
// negated — the width |hi−lo| cares about magnitude, and symbol
// membership, not sign, is what compatibility checks) or a field
// selector names a symbol. ok is false for anything else.
func clampBoundTerm(pkg *Package, e ast.Expr) (c float64, sym string, ok bool) {
	if v, okc := constFloat(pkg, e); okc {
		return v, "", true
	}
	e = unparen(e)
	if u, oku := e.(*ast.UnaryExpr); oku && u.Op == token.SUB {
		e = unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.Ident:
		return 0, x.Name, true
	case *ast.SelectorExpr:
		return 0, x.Sel.Name, true
	}
	return 0, "", false
}

// constFloat folds e to a constant float when possible.
func constFloat(pkg *Package, e ast.Expr) (float64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Float64Val(constant.ToFloat(tv.Value))
}

// dividesBySampleSize reports whether e is a quotient whose denominator
// mentions a Len() call or len(...) (i.e. the term is an average).
func dividesBySampleSize(e ast.Expr) bool {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.QUO {
		return false
	}
	mentions := false
	ast.Inspect(b.Y, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "len" {
				mentions = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Len" {
				mentions = true
			}
		}
		return true
	})
	return mentions
}
