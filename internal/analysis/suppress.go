package analysis

import (
	"go/ast"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//dplint:ignore <check>[,<check>...] <reason>
//
// The directive silences matching findings reported on its own line or on
// the line immediately below it, which covers both trailing comments and
// comments placed above the offending statement.
const ignorePrefix = "//dplint:ignore"

// directive is one parsed //dplint:ignore comment.
type directive struct {
	checks []string
	reason string
	line   int
}

func (d directive) covers(check string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, c := range d.checks {
		if c == check || c == "*" {
			return true
		}
	}
	return false
}

// suppressionIndex accumulates directives per file across packages.
type suppressionIndex struct {
	byFile map[string][]directive
}

func newSuppressionIndex() *suppressionIndex {
	return &suppressionIndex{byFile: make(map[string][]directive)}
}

// addPackage parses every //dplint:ignore directive in pkg, recording
// well-formed ones and returning Error diagnostics (check id "dplint") for
// directives that omit the mandatory reason.
func (s *suppressionIndex) addPackage(pkg *Package) []Diagnostic {
	var bad []Diagnostic
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //dplint:ignoreXYZ is not a directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Check:    "dplint",
						Severity: Error,
						Pos:      pos,
						Message:  "malformed suppression: want //dplint:ignore <check>[,<check>...] <reason>",
					})
					continue
				}
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], directive{
					checks: strings.Split(fields[0], ","),
					reason: strings.Join(fields[1:], " "),
					line:   pos.Line,
				})
			}
		}
	}
	return bad
}

// matches reports whether a directive suppresses d. The meta check
// "dplint" itself cannot be suppressed.
func (s *suppressionIndex) matches(d Diagnostic) bool {
	if d.Check == "dplint" {
		return false
	}
	for _, dir := range s.byFile[d.Pos.Filename] {
		if dir.covers(d.Check, d.Pos.Line) {
			return true
		}
	}
	return false
}

// directiveFor returns the first directive in file that covers the given
// check and line, for tests and tooling that want the recorded reason.
func (s *suppressionIndex) directiveFor(file, check string, line int) (directive, bool) {
	for _, dir := range s.byFile[file] {
		if dir.covers(check, line) {
			return dir, true
		}
	}
	return directive{}, false
}

var _ = (*suppressionIndex).directiveFor // referenced by tests

func isTestFilename(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// fileOf returns the *ast.File in pkg that contains pos, or nil.
func fileOf(pkg *Package, pos ast.Node) *ast.File {
	for _, f := range pkg.Files {
		if f.Pos() <= pos.Pos() && pos.Pos() <= f.End() {
			return f
		}
	}
	return nil
}
