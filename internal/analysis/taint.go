package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the intraprocedural half of the dataflow framework: a
// flow-insensitive taint lattice over one function body. Checks seed the
// lattice (e.g. postproc marks raw-dataset parameters), name the calls
// that sanitize (a Release or posterior Sample launders its inputs into a
// DP-protected output), and then ask whether an expression may carry a
// seeded value.
//
// The analysis is a fixpoint over assignments: propagating x := f(tainted)
// marks x, propagating through composite literals, index/selector/star
// expressions, range statements, and method calls whose receiver absorbs a
// tainted argument. Two deliberate refinements keep the false-positive
// rate workable on real code:
//
//   - error-typed values never carry taint: `res, err := m.Release(...)`
//     must leave err clean so the ubiquitous `if err != nil` guard is not
//     flagged as data-dependent control flow;
//   - a sanitizer call kills taint at its result even when its arguments
//     are tainted — that is the whole point of a DP release.
type taintLattice struct {
	pkg *Package
	// tainted objects (variables) in the current function.
	objs map[types.Object]bool
	// seed decides whether an object is tainted a priori (e.g. a
	// parameter of dataset type).
	seed func(types.Object) bool
	// sourceCall decides whether a call expression's results are tainted
	// a priori.
	sourceCall func(*ast.CallExpr) bool
	// sanitizerCall decides whether a call kills taint at its result.
	sanitizerCall func(*ast.CallExpr) bool
}

// newTaintLattice runs the fixpoint over body and returns the lattice
// ready for Tainted queries. Function literals nested in body are part of
// the same lattice (their bodies execute with access to the enclosing
// scope), which suits intraprocedural checks that treat closures as inline
// code.
func newTaintLattice(pkg *Package, body *ast.BlockStmt,
	seed func(types.Object) bool,
	sourceCall, sanitizerCall func(*ast.CallExpr) bool) *taintLattice {

	tl := &taintLattice{
		pkg:           pkg,
		objs:          make(map[types.Object]bool),
		seed:          seed,
		sourceCall:    sourceCall,
		sanitizerCall: sanitizerCall,
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				changed = tl.propagateAssign(st) || changed
			case *ast.ValueSpec:
				changed = tl.propagateValueSpec(st) || changed
			case *ast.RangeStmt:
				changed = tl.propagateRange(st) || changed
			case *ast.CallExpr:
				changed = tl.propagateReceiver(st) || changed
			}
			return true
		})
	}
	return tl
}

// mark taints the object bound by lhs (an *ast.Ident), reporting change.
func (tl *taintLattice) mark(lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := tl.pkg.Info.ObjectOf(id)
	if obj == nil || isErrorType(obj.Type()) || tl.objs[obj] {
		return false
	}
	tl.objs[obj] = true
	return true
}

// propagateAssign handles x, y := rhs... and x = rhs.
func (tl *taintLattice) propagateAssign(st *ast.AssignStmt) bool {
	changed := false
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value: one tainted producer taints every non-error lhs.
		if tl.Tainted(st.Rhs[0]) {
			for _, l := range st.Lhs {
				changed = tl.mark(l) || changed
			}
		}
		return changed
	}
	for i, l := range st.Lhs {
		if i < len(st.Rhs) && tl.Tainted(st.Rhs[i]) {
			changed = tl.mark(l) || changed
		}
	}
	return changed
}

// propagateValueSpec handles var x = rhs declarations.
func (tl *taintLattice) propagateValueSpec(sp *ast.ValueSpec) bool {
	changed := false
	if len(sp.Values) == 1 && len(sp.Names) > 1 {
		if tl.Tainted(sp.Values[0]) {
			for _, n := range sp.Names {
				changed = tl.mark(n) || changed
			}
		}
		return changed
	}
	for i, n := range sp.Names {
		if i < len(sp.Values) && tl.Tainted(sp.Values[i]) {
			changed = tl.mark(n) || changed
		}
	}
	return changed
}

// propagateRange taints the key/value variables of a range over a tainted
// collection.
func (tl *taintLattice) propagateRange(st *ast.RangeStmt) bool {
	if !tl.Tainted(st.X) {
		return false
	}
	changed := false
	if st.Key != nil {
		changed = tl.mark(st.Key) || changed
	}
	if st.Value != nil {
		changed = tl.mark(st.Value) || changed
	}
	return changed
}

// propagateReceiver taints the receiver of a method call fed a tainted
// argument (e.g. buf.Write(raw) taints buf). Sanitizer calls are exempt:
// handing raw data to a Release is the intended use, not contamination.
func (tl *taintLattice) propagateReceiver(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || tl.sanitizerCall(call) {
		return false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	for _, a := range call.Args {
		if tl.Tainted(a) {
			return tl.mark(recv)
		}
	}
	return false
}

// Tainted reports whether e may evaluate to (or contain) a seeded value.
func (tl *taintLattice) Tainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if tl.sanitizerCall(x) {
				return false // taint killed; do not descend into args
			}
			if tl.sourceCall(x) {
				found = true
				return false
			}
			return true
		case *ast.Ident:
			obj := tl.pkg.Info.ObjectOf(x)
			if obj == nil || isErrorType(obj.Type()) {
				return true
			}
			if tl.objs[obj] || tl.seed(obj) {
				found = true
				return false
			}
		case *ast.FuncLit:
			return false // a closure value is not itself data
		}
		return true
	})
	return found
}
