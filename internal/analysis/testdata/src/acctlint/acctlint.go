// Package acctlint exercises the accounting check: every reachable
// release must flow its Guarantee into Accountant.Spend exactly once,
// unconditionally. The types below are structural stubs of the real
// mechanism package — the check recognizes them by shape (a Guarantee
// method marks a mechanism; a Spend(Guarantee) method marks an
// accountant), not by import path.
package acctlint

// Example is one raw record.
type Example struct{ X []float64 }

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// Len is the dataset's public size.
func (d *Dataset) Len() int { return len(d.Examples) }

// Guarantee is a privacy price tag.
type Guarantee struct{ Epsilon float64 }

// RNG stands in for the seeded sampler.
type RNG struct{ state uint64 }

// Mech is a mechanism: it bears a Guarantee method, so its Release is a
// DP release site.
type Mech struct{ Epsilon float64 }

// Release consumes the raw data. As a method of a Guarantee-bearing type
// it is itself exempt from accounting — callers pay, not the mechanism.
func (m *Mech) Release(d *Dataset, g *RNG) float64 { return m.Epsilon }

// Guarantee prices one release.
func (m *Mech) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// Accountant registers spends.
type Accountant struct{ spent []Guarantee }

// Spend records one guarantee.
func (a *Accountant) Spend(g Guarantee) { a.spent = append(a.spent, g) }

// Leak is the seeded violation: an exported release whose guarantee
// never reaches an accountant.
func Leak(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	return m.Release(d, g) // want "un-accounted release"
}

// Accounted releases and pays: clean.
func Accounted(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	v := m.Release(d, g)
	acct.Spend(m.Guarantee())
	return v
}

// Public reaches helper through the call graph, so helper's leak is
// reported even though helper is unexported.
func Public(d *Dataset, g *RNG) float64 {
	return helper(d, g)
}

func helper(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 2}
	return m.Release(d, g) // want "un-accounted release"
}

// orphan is unreachable from every exported root, so its release is not
// checked: dead code cannot leak.
func orphan(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 3}
	return m.Release(d, g)
}

// MaybePay releases unconditionally but spends only under a flag: some
// executions release without paying.
func MaybePay(d *Dataset, acct *Accountant, debug bool, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	v := m.Release(d, g)
	if debug {
		acct.Spend(m.Guarantee()) // want "conditionally-accounted release"
	}
	return v
}

// LoopPay releases and spends together inside a loop: loops are not
// guards, the pair stays matched on every iteration.
func LoopPay(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	var s float64
	for i := 0; i < 3; i++ {
		s += m.Release(d, g)
		acct.Spend(m.Guarantee())
	}
	return s
}

// DoubleSpend registers the same guarantee twice, over-reporting the
// privacy loss.
func DoubleSpend(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	v := m.Release(d, g)
	gu := m.Guarantee()
	acct.Spend(gu)
	acct.Spend(gu) // want "double-spend"
	return v
}

// SuppressedLeak keeps a deliberate un-accounted release behind a
// reasoned directive; the finding is recorded as suppressed, not lost.
func SuppressedLeak(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	//dplint:ignore acctlint fixture: harness samples the raw release on synthetic data
	return m.Release(d, g)
}

// SpendDetail records one guarantee together with ledger metadata; the
// check treats it as the same accounting act as Spend.
func (a *Accountant) SpendDetail(g Guarantee, mechanism string) {
	a.spent = append(a.spent, g)
	_ = mechanism
}

// DetailAccounted pays through the metadata variant: clean.
func DetailAccounted(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	v := m.Release(d, g)
	acct.SpendDetail(m.Guarantee(), "mech")
	return v
}

//dp:observer fixture: estimates the mechanism's realized eps by resampling its output
func AuditObserver(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	var s float64
	for i := 0; i < 64; i++ {
		s += m.Release(d, g)
	}
	return s / 64
}

// ObserverClosure exempts only the marked literal; the function around
// it is still checked (and is clean — it makes no release itself).
func ObserverClosure(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	//dp:observer fixture: sampling closure handed to a measurement harness
	sample := func() float64 { return m.Release(d, g) }
	return sample() + sample()
}

// NotAnObserver has a directive two lines up — out of anchor range, so
// the exemption does not apply and the release stays flagged.
//
//dp:observer fixture: directive stranded above a blank line

func NotAnObserver(d *Dataset, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	return m.Release(d, g) // want "un-accounted release"
}

// Reservation is a held budget claim: the first half of the two-phase
// spend protocol. It deliberately bears no Guarantee method, so its own
// Release is NOT a DP release site.
type Reservation struct {
	a *Accountant
	g Guarantee
}

// Reserve admits a guarantee against the budget and returns the hold.
func (a *Accountant) Reserve(g Guarantee) *Reservation {
	return &Reservation{a: a, g: g}
}

// Commit turns the hold into a recorded spend — the accounting act.
func (r *Reservation) Commit(meta string) {
	r.a.spent = append(r.a.spent, r.g)
	_ = meta
}

// Release abandons the hold, returning the headroom uncharged.
func (r *Reservation) Release() {}

// TwoPhaseAccounted pays through the two-phase protocol: Reserve admits
// the guarantee before the release and Commit records it after, jointly
// satisfying the must-spend rule. The deferred Reservation.Release is
// not a DP release (no Guarantee on the receiver).
func TwoPhaseAccounted(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	res := acct.Reserve(m.Guarantee())
	defer res.Release()
	v := m.Release(d, g)
	res.Commit("mech")
	return v
}

// ReservedNeverCommitted holds budget but abandons the hold without
// committing: the release goes unrecorded, so it still leaks.
func ReservedNeverCommitted(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	res := acct.Reserve(m.Guarantee())
	defer res.Release()
	return m.Release(d, g) // want "un-accounted release"
}

// CommitInBranch commits only under a flag: some executions release
// without recording the spend, exactly like a branched Spend.
func CommitInBranch(d *Dataset, acct *Accountant, ok bool, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	res := acct.Reserve(m.Guarantee())
	defer res.Release()
	v := m.Release(d, g)
	if ok {
		res.Commit("mech") // want "conditionally-accounted release"
	}
	return v
}

// SampleCtx is the context-aware posterior draw: still a DP release on
// a Guarantee-bearing receiver.
func (m *Mech) SampleCtx(ctx any, d *Dataset, g *RNG) int { return 0 }

// Sample is a fallible posterior draw: a DP release whose error result
// reports that no output was produced (and no budget consumed).
func (m *Mech) Sample(d *Dataset, g *RNG) (int, error) { return 0, nil }

// EarlyReturn releases, then bails out on the fast path before paying.
// The Spend is not nested in any branch — a syntactic guard check sees
// nothing — but the release still reaches the early exit unpaid.
func EarlyReturn(d *Dataset, acct *Accountant, fast bool, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	v := m.Release(d, g)
	if fast {
		return v
	}
	acct.Spend(m.Guarantee()) // want "conditionally-accounted release"
	return v
}

// ErrVoided pays only when the draw succeeded: on the error path the
// release produced no output and charged nothing, so the guarded early
// return is clean.
func ErrVoided(d *Dataset, acct *Accountant, g *RNG) (int, error) {
	m := &Mech{Epsilon: 1}
	idx, err := m.Sample(d, g)
	if err != nil {
		return 0, err
	}
	acct.Spend(m.Guarantee())
	return idx, nil
}

// CtxLeak draws through the context-aware variant without paying.
func CtxLeak(d *Dataset, g *RNG) int {
	m := &Mech{Epsilon: 1}
	return m.SampleCtx(nil, d, g) // want "un-accounted release"
}

// CtxTwoPhase draws through SampleCtx under the two-phase protocol:
// clean.
func CtxTwoPhase(d *Dataset, acct *Accountant, g *RNG) int {
	m := &Mech{Epsilon: 1}
	res := acct.Reserve(m.Guarantee())
	defer res.Release()
	i := m.SampleCtx(nil, d, g)
	res.Commit("gibbs")
	return i
}

// Composite is itself a mechanism (it bears Guarantee), so its internal
// releases are priced by its own Guarantee and exempt from per-call
// accounting — callers spend the composite price.
type Composite struct{ parts []Mech }

// Guarantee prices the whole composition.
func (c *Composite) Guarantee() Guarantee {
	var eps float64
	for _, m := range c.parts {
		eps += m.Epsilon
	}
	return Guarantee{Epsilon: eps}
}

// Run releases every part without spending: exempt by receiver.
func (c *Composite) Run(d *Dataset, g *RNG) float64 {
	var s float64
	for i := range c.parts {
		s += c.parts[i].Release(d, g)
	}
	return s
}

// AccessRecord is one ε-attributed access-log line: the telemetry
// payload an access logger transcribes per request.
type AccessRecord struct {
	Trace        string
	SpentEpsilon float64
}

// AccessLog is an access logger: a named type carrying a Record method
// whose single parameter is an AccessRecord. That shape makes every one
// of its methods an observer scope structurally — tracing plumbing
// transcribes already-accounted outcomes, it is not a release path — so
// no //dp:observer comment is needed.
type AccessLog struct {
	lines []AccessRecord
	probe Mech
}

// Record transcribes one line: the single-AccessRecord signature is the
// shape anchor the structural exemption keys on.
func (l *AccessLog) Record(r AccessRecord) { l.lines = append(l.lines, r) }

// flush is another method of the same type and inherits the structural
// exemption: its un-accounted release is a measurement, not a spend.
func (l *AccessLog) flush(d *Dataset, g *RNG) float64 {
	return l.probe.Release(d, g)
}

// Annotate re-samples the mechanism while stamping a line: exempt by
// receiver shape even though the release never reaches a Spend.
func (l *AccessLog) Annotate(r AccessRecord, d *Dataset, g *RNG) {
	r.SpentEpsilon = l.probe.Release(d, g)
	l.lines = append(l.lines, r)
}

// NotARecordLog has a Record method of the wrong shape (no AccessRecord
// parameter), so it is not an access logger and stays checked.
type NotARecordLog struct{ probe Mech }

// Record here takes a plain string: no structural exemption.
func (l *NotARecordLog) Record(line string, d *Dataset, g *RNG) float64 {
	return l.probe.Release(d, g) // want "un-accounted release"
}

// Txn is a durable two-phase hold: the WAL-logged wrapper that couples
// a write-ahead reserve record to an in-memory hold. It bears no
// Guarantee method, and its name is deliberately not Reservation — the
// Commit/Release/Amount→Guarantee shape alone makes Commit an
// accounting act.
type Txn struct {
	a *Accountant
	g Guarantee
}

// Commit fsyncs the commit record and records the spend.
func (t *Txn) Commit(status int) { t.a.spent = append(t.a.spent, t.g) }

// Release voids an uncommitted hold.
func (t *Txn) Release() {}

// Amount reports the held guarantee — the shape anchor.
func (t *Txn) Amount() Guarantee { return t.g }

// Ledger is the write-ahead log; Begin admits the guarantee and fsyncs
// the reserve record before the mechanism runs.
type Ledger struct{}

// Begin opens a durable hold against the accountant.
func (l *Ledger) Begin(a *Accountant, g Guarantee) (*Txn, error) {
	return &Txn{a: a, g: g}, nil
}

// DurableAccounted pays through the WAL-logged hold: Commit on a
// structural hold satisfies must-spend exactly like Reservation.Commit.
func DurableAccounted(d *Dataset, acct *Accountant, wal *Ledger, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	tx, err := wal.Begin(acct, m.Guarantee())
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	v := m.Release(d, g)
	tx.Commit(200)
	return v, nil
}

// DurableNeverCommitted voids the durable hold without committing: the
// release stays unrecorded, so it still leaks.
func DurableNeverCommitted(d *Dataset, acct *Accountant, wal *Ledger, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	tx, err := wal.Begin(acct, m.Guarantee())
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	return m.Release(d, g), nil // want "un-accounted release"
}
