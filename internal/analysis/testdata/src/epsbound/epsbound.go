// Package epsbound exercises the symbolic budget-bound analysis: in
// fixture mode every exported function is an entry point, sequential
// charges sum, branches take the max, annotated loops multiply, and a
// charging loop without a //dp:loopbound annotation is a finding.
package epsbound

// Structural stubs of the accountant surface; epsbound keys on the
// Spend/SpendDetail/Reserve shapes, not the import path.

type Guarantee struct {
	Epsilon float64
	Delta   float64
}

type SpendMeta struct {
	Mechanism string
}

type Accountant struct {
	spent []Guarantee
}

func (a *Accountant) Spend(g Guarantee) {
	a.spent = append(a.spent, g)
}

func (a *Accountant) SpendDetail(g Guarantee, meta SpendMeta) {
	a.spent = append(a.spent, g)
}

type Reservation struct {
	g Guarantee
}

func (a *Accountant) Reserve(g Guarantee) (*Reservation, error) {
	a.spent = append(a.spent, g)
	return &Reservation{g: g}, nil
}

func (r *Reservation) Commit(meta SpendMeta) {}
func (r *Reservation) Release()              {}

// SequentialRelease charges twice in sequence: the bound is the sum
// eps1 + eps2.
func SequentialRelease(a *Accountant, eps1, eps2 float64) {
	a.Spend(Guarantee{Epsilon: eps1})
	a.Spend(Guarantee{Epsilon: eps2})
}

// BranchRelease charges on exactly one of two branches: the bound is
// max(0.5*eps, eps).
func BranchRelease(a *Accountant, cheap bool, eps float64) {
	if cheap {
		a.Spend(Guarantee{Epsilon: eps / 2})
	} else {
		a.Spend(Guarantee{Epsilon: eps})
	}
}

// BoundedSteps charges once per iteration under a declared trip count:
// the bound is steps*eps.
func BoundedSteps(a *Accountant, steps int, eps float64) {
	//dp:loopbound k=steps
	for i := 0; i < steps; i++ {
		a.Spend(Guarantee{Epsilon: eps})
	}
}

// UnboundedSteps charges per iteration with no declared trip count, so
// its certificate is unbounded — a finding.
func UnboundedSteps(a *Accountant, eps float64, done func() bool) {
	for !done() { // want "no //dp:loopbound"
		a.Spend(Guarantee{Epsilon: eps})
	}
}

// quoted routes its Guarantee parameter through the two-phase protocol;
// its summary carries the parameter marker for call sites to fill in.
func quoted(a *Accountant, g Guarantee) error {
	res, err := a.Reserve(g)
	if err != nil {
		return err
	}
	defer res.Release()
	res.Commit(SpendMeta{})
	return nil
}

// QuotedRelease quotes the caller's ε into the shared helper: the bound
// substitutes to exactly eps.
func QuotedRelease(a *Accountant, eps float64) error {
	return quoted(a, Guarantee{Epsilon: eps})
}

// SplitRelease spends an even share per part, iterated over the parts:
// the reciprocal cancels and the bound folds back to eps.
func SplitRelease(a *Accountant, parts []float64, eps float64) {
	per := eps / float64(len(parts))
	//dp:loopbound k=len(parts)
	for range parts {
		a.Spend(Guarantee{Epsilon: per})
	}
}

// ChargeFree never touches the accountant; its certificate is zero.
func ChargeFree(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}

// Txn is the durable hold returned by the write-ahead ledger: the
// Commit/Release/Amount→Guarantee shape marks it a two-phase hold
// structurally, without the name Reservation.
type Txn struct{ g Guarantee }

func (t *Txn) Commit(meta SpendMeta) {}
func (t *Txn) Release()              {}
func (t *Txn) Amount() Guarantee     { return t.g }

// Ledger stands in for the write-ahead log. Its Reserve takes the
// accountant first, so the Guarantee is not argument zero — the
// analysis must find the price by type, not by position.
type Ledger struct{}

func (l *Ledger) Reserve(a *Accountant, g Guarantee) (*Txn, error) {
	a.spent = append(a.spent, g)
	return &Txn{g: g}, nil
}

// DurableQuoted charges through the WAL-logged Reserve: the bound is
// exactly eps, read from argument index 1.
func DurableQuoted(a *Accountant, wal *Ledger, eps float64) error {
	tx, err := wal.Reserve(a, Guarantee{Epsilon: eps})
	if err != nil {
		return err
	}
	defer tx.Release()
	tx.Commit(SpendMeta{})
	return nil
}

// DurableLoop charges per iteration through the durable hold with no
// declared trip count: still a finding.
func DurableLoop(a *Accountant, wal *Ledger, eps float64, done func() bool) {
	for !done() { // want "no //dp:loopbound"
		tx, err := wal.Reserve(a, Guarantee{Epsilon: eps})
		if err != nil {
			return
		}
		tx.Commit(SpendMeta{})
	}
}
