// Package epscheck exercises the epscheck check: exported functions with
// an epsilon/eps float64 parameter must validate it before use.
package epscheck

import (
	"errors"
	"math"
)

// ErrBadEpsilon reports an invalid privacy parameter.
var ErrBadEpsilon = errors.New("epsilon must be positive")

// ReleaseUnvalidated spends ε without ever looking at it.
func ReleaseUnvalidated(value, epsilon float64) float64 { // want `exported ReleaseUnvalidated takes privacy parameter "epsilon" but never validates it`
	return value / epsilon
}

// ShortName must be caught under the abbreviated parameter name too.
func ShortName(eps float64) float64 { // want `exported ShortName takes privacy parameter "eps" but never validates it`
	return 1 / eps
}

// ReleaseGuarded validates ε inline with a comparison guard.
func ReleaseGuarded(value, epsilon float64) (float64, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return 0, ErrBadEpsilon
	}
	return value / epsilon, nil
}

// ReleaseNaNGuard classifies ε with math.IsNaN, which counts as validation.
func ReleaseNaNGuard(value, epsilon float64) (float64, error) {
	if math.IsNaN(epsilon) {
		return 0, ErrBadEpsilon
	}
	return value / epsilon, nil
}

func checkEpsilon(eps float64) error {
	if eps <= 0 {
		return ErrBadEpsilon
	}
	return nil
}

// ReleaseDelegated hands ε to a named validator before use.
func ReleaseDelegated(value, epsilon float64) (float64, error) {
	if err := checkEpsilon(epsilon); err != nil {
		return 0, err
	}
	return value / epsilon, nil
}

// Mechanism is a stand-in validated constructor target.
type Mechanism struct{ eps float64 }

// NewMechanism validates on construction.
func NewMechanism(eps float64) (*Mechanism, error) {
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	return &Mechanism{eps: eps}, nil
}

// ReleaseViaConstructor forwards ε into a New* constructor, which is
// trusted to validate.
func ReleaseViaConstructor(value, epsilon float64) (float64, error) {
	m, err := NewMechanism(epsilon)
	if err != nil {
		return 0, err
	}
	return value / m.eps, nil
}

// SpendEpsErr is the error-returning validating variant.
func SpendEpsErr(value, eps float64) (float64, error) {
	if eps <= 0 {
		return 0, ErrBadEpsilon
	}
	return value / eps, nil
}

// ReleaseViaErrVariant is a panic-wrapper forwarding ε to its *Err
// variant, which is trusted to validate — the two-function convention
// used by calibration helpers.
func ReleaseViaErrVariant(value, epsilon float64) float64 {
	v, err := SpendEpsErr(value, epsilon)
	if err != nil {
		panic(err)
	}
	return v
}

// unexportedSpend is below the trust boundary: callers inside the package
// are expected to have validated already.
func unexportedSpend(value, epsilon float64) float64 {
	return value / epsilon
}

// ReleaseNotEpsilon has a float parameter with a non-privacy name.
func ReleaseNotEpsilon(value, scale float64) float64 {
	return value / scale
}

var _ = unexportedSpend
