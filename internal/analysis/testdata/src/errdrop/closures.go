package errdrop

// DropInDeferClosure discards an error inside a deferred closure — the
// classic cleanup path where failures vanish.
func DropInDeferClosure() {
	defer func() {
		validate(-1) // want "result of validate includes an error that is silently discarded"
	}()
}

// DropInGoClosure discards an error inside a spawned goroutine, where no
// caller can ever observe it.
func DropInGoClosure() {
	go func() {
		pair() // want "result of pair includes an error that is silently discarded"
	}()
}

// HandledInClosure consumes the error inside the closure: clean.
func HandledInClosure(sink func(error)) {
	defer func() {
		if err := validate(0); err != nil {
			sink(err)
		}
	}()
}

// SuppressedInClosure keeps the drop behind a reasoned directive.
func SuppressedInClosure() {
	defer func() {
		validate(0) //dplint:ignore errdrop fixture: best-effort cleanup, error is advisory
	}()
}
