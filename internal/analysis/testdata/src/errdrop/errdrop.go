// Package errdrop exercises the errdrop check: statements that silently
// discard a returned error are reported in non-test files.
package errdrop

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrInvalid stands in for a mechanism precondition failure.
var ErrInvalid = errors.New("invalid parameter")

func validate(eps float64) error {
	if eps <= 0 {
		return ErrInvalid
	}
	return nil
}

func pair() (int, error) { return 0, nil }

// DropPlain discards the only return value, an error.
func DropPlain() {
	validate(-1) // want "result of validate includes an error that is silently discarded"
}

// DropTuple discards an (int, error) pair.
func DropTuple() {
	pair() // want "result of pair includes an error that is silently discarded"
}

// DropDeferred discards an error at defer time.
func DropDeferred(f *os.File) {
	defer f.Close() // want "result of f.Close includes an error that is silently discarded"
}

// DropInWriter discards a write error on a real writer.
func DropInWriter(w io.Writer) {
	fmt.Fprintln(w, "released") // want "result of fmt.Fprintln includes an error that is silently discarded"
}

// ExplicitDiscard assigns to _, a visible decision that is allowed.
func ExplicitDiscard() {
	_ = validate(-1)
	_, _ = pair()
}

// Handled consumes the error.
func Handled() error {
	if err := validate(1); err != nil {
		return err
	}
	return nil
}

// StdoutAndBuffers are exempt: they cannot meaningfully fail.
func StdoutAndBuffers() string {
	fmt.Println("hello")
	fmt.Fprintf(os.Stdout, "x=%d\n", 1)
	fmt.Fprintln(os.Stderr, "warn")
	var buf bytes.Buffer
	buf.WriteString("a")
	fmt.Fprintf(&buf, "b")
	return buf.String()
}

// SuppressedClose documents why the error is unrecoverable here.
func SuppressedClose(f *os.File) {
	//dplint:ignore errdrop read-only handle: Close error cannot lose data
	defer f.Close()
}
