// Package mechanism exercises the expdomain check inside a covered
// package path (suffix internal/mechanism): direct math.Exp on weights is
// reported.
package mechanism

import "math"

// Weights exponentiates quality scores in the linear domain — exactly the
// under/overflow hazard the check exists for.
func Weights(scores []float64, eps float64) []float64 {
	out := make([]float64, len(scores))
	for i, q := range scores {
		out[i] = math.Exp(eps * q / 2) // want "math.Exp on a mechanism weight"
	}
	return out
}

// LogWeights stays in log space: no exponentiation, nothing reported.
func LogWeights(scores []float64, eps float64) []float64 {
	out := make([]float64, len(scores))
	for i, q := range scores {
		out[i] = eps * q / 2
	}
	return out
}

// Clamped exponentiates a provably non-positive argument and says so.
func Clamped(logAlpha float64) float64 {
	if logAlpha > 0 {
		logAlpha = 0
	}
	//dplint:ignore expdomain argument clamped to <= 0 so exp is in (0,1]
	return math.Exp(logAlpha)
}
