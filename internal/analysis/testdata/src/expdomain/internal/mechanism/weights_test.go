package mechanism

import (
	"math"
	"testing"
)

// Tests may exponentiate freely to cross-check log-domain code.
func TestWeights(t *testing.T) {
	if math.Exp(0) != 1 {
		t.Fatal("exp(0) != 1")
	}
}
