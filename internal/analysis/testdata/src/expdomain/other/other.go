// Package other is outside the covered package paths, so math.Exp is not
// a mechanism weight here and nothing is reported.
package other

import "math"

// Density evaluates a plain Gaussian density; not a mechanism weight.
func Density(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}
