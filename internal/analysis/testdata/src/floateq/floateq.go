// Package floateq exercises the floateq check: runtime == / != between
// floating-point operands is reported in non-test files.
package floateq

import "math"

// MassEqual compares two probability masses exactly.
func MassEqual(p, q float64) bool {
	return p == q // want "floating-point == comparison"
}

// MassDiffers compares against a float32 pair.
func MassDiffers(p, q float32) bool {
	return p != q // want "floating-point != comparison"
}

// ZeroTest compares a computed value against the zero literal.
func ZeroTest(p float64) bool {
	return p != 0 // want "floating-point != comparison"
}

// NaNByReflexivity is the classic x != x idiom; use math.IsNaN instead.
func NaNByReflexivity(x float64) bool {
	return x != x // want "floating-point != comparison"
}

// IntEqual is fine: integer equality is exact.
func IntEqual(a, b int) bool {
	return a == b
}

// Tolerance compares with an explicit tolerance, the blessed pattern.
func Tolerance(p, q float64) bool {
	return math.Abs(p-q) <= 1e-12
}

// constFold is a compile-time constant, not a runtime comparison.
const constFold = 2.0 == 2.0

// Suppressed carries a justification and must not be reported.
func Suppressed(x float64) bool {
	//dplint:ignore floateq exact sentinel: x is assigned only the literal 0 or 1
	return x == 0
}

var _ = constFold
