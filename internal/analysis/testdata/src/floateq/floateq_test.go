package floateq

import "testing"

// Test files may assert bit-exact equality: seeded reproducibility tests
// depend on it, so the check exempts them.
func TestExactReproducibility(t *testing.T) {
	a, b := 0.5, 0.5
	if a != b {
		t.Fatal("streams diverged")
	}
}
