// False-positive battery: every access in this file is safe by one of
// lockcheck's escape hatches, so the file must produce zero findings.
package lockcheck

import (
	"sync"
	"sync/atomic"
)

// AtomicCounter mixes a mutex-guarded slice with lock-free atomics:
// atomic-typed fields and &field arguments to sync/atomic calls are
// exempt from guarding.
type AtomicCounter struct {
	mu    sync.Mutex
	items []int

	hits  atomic.Uint64
	total int64 // accessed only through sync/atomic calls
}

func (c *AtomicCounter) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = append(c.items, v)
}

func (c *AtomicCounter) Hit() {
	c.hits.Add(1)
	atomic.AddInt64(&c.total, 1)
}

func (c *AtomicCounter) Snapshot() (uint64, int64) {
	return c.hits.Load(), atomic.LoadInt64(&c.total)
}

// Worker is published only after its fields are populated: writes
// through a variable the function built from a composite literal are
// constructor-before-publication, exempt.
type Worker struct {
	mu    sync.Mutex
	queue []int
	limit int
}

func NewWorker(limit int) *Worker {
	w := &Worker{}
	w.limit = limit
	w.queue = make([]int, 0, limit)
	go w.run()
	return w
}

func (w *Worker) run() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.queue = append(w.queue, w.limit)
}

// LazyIndex initializes its map inside a sync.Once body: closure
// interiors are out of lockcheck's scope by design, and every other
// access holds mu.
type LazyIndex struct {
	mu   sync.Mutex
	once sync.Once
	m    map[string]int
	n    int
}

func (l *LazyIndex) init() {
	l.once.Do(func() {
		l.m = make(map[string]int)
	})
}

func (l *LazyIndex) Put(k string, v int) {
	l.init()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.m[k] = v
	l.n++
}

// SafeBox writes after a call that may panic: the deferred Unlock holds
// the lock through the rest of the body including panic edges, so the
// accesses below stay protected.
type SafeBox struct {
	mu sync.Mutex
	v  int
}

func (s *SafeBox) Mutate(f func(int) int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.v = f(s.v)
	s.v++
}

// MidUnlock releases the lock explicitly halfway through, with every
// guarded access completed before the unlock.
func (s *SafeBox) MidUnlock(f func(int)) {
	s.mu.Lock()
	v := s.v
	s.mu.Unlock()
	f(v)
}
