// Package lockcheck exercises the guarded-by inference: a field written
// at least once with a same-struct mutex held is guarded, and every
// other access must hold that mutex (writes exclusively, reads at
// either level).
package lockcheck

import "sync"

// Store infers counter's guard from Inc, which writes under mu.
type Store struct {
	mu      sync.Mutex
	counter int
}

func (s *Store) Inc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counter++
}

func (s *Store) Racy() int {
	return s.counter // want "read of Store.counter without holding mu"
}

func (s *Store) RacyWrite() {
	s.counter = 0 // want "write of Store.counter without holding mu"
}

// HalfGuarded only locks on one path; the merge at the join point drops
// the lock, so the write below is unprotected on the other path. (The
// name deliberately avoids the *Locked caller-holds-lock convention.)
func (s *Store) HalfGuarded(b bool) {
	if b {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.counter++ // want "write of Store.counter without holding mu"
}

// UnlockEarly releases the mutex before the read it was protecting.
func (s *Store) UnlockEarly() int {
	s.mu.Lock()
	s.mu.Unlock()
	return s.counter // want "read of Store.counter without holding mu"
}

// bumpLocked documents the caller-holds-mu convention by name; it is
// analyzed with the receiver's mutexes held, so no finding.
func (s *Store) bumpLocked() {
	s.counter++
}

// RW distinguishes read and write lock levels: data is written under
// the exclusive lock, so a write under RLock is still a finding.
type RW struct {
	rw   sync.RWMutex
	data map[string]int
}

func (r *RW) Set(k string, v int) {
	r.rw.Lock()
	defer r.rw.Unlock()
	r.data[k] = v
}

func (r *RW) Get(k string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.data[k]
}

func (r *RW) SetUnderRead(k string, v int) {
	r.rw.RLock()
	defer r.rw.RUnlock()
	r.data[k] = v // want "write of RW.data without holding rw"
}

// Annotated forces a guard that inference alone could not see (hits is
// never written in-package with mu held) and exempts an
// immutable-after-construction field.
type Annotated struct {
	mu sync.Mutex
	//dp:guardedby mu hit counts are written by generated code that locks mu
	hits int
	//dp:guardedby none immutable after construction
	label string
}

func (a *Annotated) Hits() int {
	return a.hits // want "read of Annotated.hits without holding mu"
}

func (a *Annotated) Label() string {
	return a.label
}
