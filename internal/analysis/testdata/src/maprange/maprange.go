// Package maprange exercises the maprange check: map iteration feeding an
// ordered output without a sort is reported.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

// UnsortedKeys builds a released slice in randomized map order.
func UnsortedKeys(hist map[string]int) []string {
	var keys []string
	for k := range hist { // want `slice "keys" built from a map range`
		keys = append(keys, k)
	}
	return keys
}

// SortedKeys is the blessed pattern: collect, then sort before release.
func SortedKeys(hist map[string]int) []string {
	var keys []string
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrintDuringRange emits text in randomized order.
func PrintDuringRange(hist map[string]int) {
	for k, v := range hist { // want "output emitted inside this range over a map"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// BuildDuringRange writes into a builder in randomized order.
func BuildDuringRange(hist map[string]int) string {
	var b strings.Builder
	for k := range hist { // want "output emitted inside this range over a map"
		b.WriteString(k)
	}
	return b.String()
}

// Total aggregates; order cannot matter, nothing is reported.
func Total(hist map[string]int) int {
	var n int
	for _, v := range hist {
		n += v
	}
	return n
}

// SliceAppend ranges over a slice, which iterates in order.
func SliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*x)
	}
	return out
}

// SuppressedOrderIrrelevant documents why the order is immaterial.
func SuppressedOrderIrrelevant(set map[string]bool) []string {
	var keys []string
	//dplint:ignore maprange result is consumed as an unordered set by the caller
	for k := range set {
		keys = append(keys, k)
	}
	return keys
}
