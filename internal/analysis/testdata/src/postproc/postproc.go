// Package postproc exercises the post-processing check: after a release,
// control flow may depend on released values only — branching on the raw
// data again is a second, unaccounted query. The stubs mirror the real
// mechanism shapes structurally (Guarantee method = mechanism,
// Dataset/Example = raw data).
package postproc

// Example is one raw record.
type Example struct{ X []float64 }

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// Len is the dataset's public size — a clean scalar.
func (d *Dataset) Len() int { return len(d.Examples) }

// Guarantee is a privacy price tag.
type Guarantee struct{ Epsilon float64 }

// RNG stands in for the seeded sampler.
type RNG struct{ state uint64 }

// Mech is a mechanism; its Release output is clean by post-processing.
type Mech struct{ Epsilon float64 }

// Release consumes the raw data and returns a protected value.
func (m *Mech) Release(d *Dataset, g *RNG) float64 { return m.Epsilon }

// Guarantee prices one release.
func (m *Mech) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// parse derives a value (tainted) and an error (always clean) from the
// raw data.
func parse(d *Dataset) (float64, error) {
	return float64(len(d.Examples)), nil
}

// rawMean computes a raw statistic; taint follows its result.
func rawMean(d *Dataset) float64 {
	var s float64
	for _, e := range d.Examples {
		s += e.X[0]
	}
	return s / float64(len(d.Examples))
}

// Leaky branches on the raw data after the release.
func Leaky(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	if d.Examples[0].X[0] > 0.5 { // want "branch on raw"
		return out * 2
	}
	return out
}

// LoopLeak bounds a loop by a raw value after the release.
func LoopLeak(d *Dataset, m *Mech, g *RNG) float64 {
	s := m.Release(d, g)
	for i := 0; float64(i) < d.Examples[0].X[0]; i++ { // want "loop bound on raw"
		s++
	}
	return s
}

// SwitchLeak switches on a raw value after the release.
func SwitchLeak(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	switch int(d.Examples[0].X[0]) { // want "switch on raw"
	case 0:
		return out
	}
	return 0
}

// DerivedLeak shows taint following a computation: the pre-release mean
// is raw data even though the branch never mentions d directly.
func DerivedLeak(d *Dataset, m *Mech, g *RNG) float64 {
	mean := rawMean(d)
	out := m.Release(d, g)
	if mean > 0.5 { // want "branch on raw"
		return out
	}
	return 0
}

// Guarded branches before the release: allowed — the query order is
// data-then-release, not release-then-data.
func Guarded(d *Dataset, m *Mech, g *RNG) float64 {
	if len(d.Examples) == 0 {
		return 0
	}
	return m.Release(d, g)
}

// PostProcess branches on the released value: exactly what
// post-processing permits.
func PostProcess(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	if out < 0 {
		out = 0
	}
	return out
}

// LenIsPublic branches on the dataset's size, a public scalar: clean.
func LenIsPublic(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	if d.Len() == 0 {
		return 0
	}
	return out
}

// ErrGuard branches on an error after the release: error values never
// carry taint.
func ErrGuard(d *Dataset, m *Mech, g *RNG) (float64, error) {
	out := m.Release(d, g)
	v, err := parse(d)
	if err != nil {
		return 0, err
	}
	_ = v
	return out, nil
}

// SecondPass feeds the raw data to a second mechanism after the first
// release: that is composition — priced by acctlint, not a
// post-processing violation — and ranging over the data is allowed.
func SecondPass(d *Dataset, m1, m2 *Mech, acct *Accountant, g *RNG) float64 {
	a := m1.Release(d, g)
	acct.Spend(m1.Guarantee())
	b := m2.Release(d, g)
	acct.Spend(m2.Guarantee())
	var s float64
	for range d.Examples {
		s++
	}
	return a + b + s
}

// Accountant registers spends (present so SecondPass can pay its way).
type Accountant struct{ spent []Guarantee }

// Spend records one guarantee.
func (a *Accountant) Spend(g Guarantee) { a.spent = append(a.spent, g) }

// ClosureScopes: the literal runs in its own dynamic context — it
// contains no release, so its raw-data branch is not post-processing of
// the outer release.
func ClosureScopes(d *Dataset, m *Mech, g *RNG) func() float64 {
	out := m.Release(d, g)
	return func() float64 {
		if d.Examples[0].X[0] > 0 {
			return out
		}
		return 0
	}
}

//dp:observer fixture: bisects the raw data to localize where the realized eps peaks
func ObserverBisect(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	if d.Examples[0].X[0] > 0.5 { // an observer may steer its measurement by the raw data
		return out * 2
	}
	return out
}

// ObserverLitScope exempts only the marked literal; the enclosing
// function's own post-release branches are still checked.
func ObserverLitScope(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	//dp:observer fixture: probe closure branches on raw data while measuring
	probe := func() float64 {
		inner := m.Release(d, g)
		if d.Examples[0].X[0] > 0 {
			return inner
		}
		return 0
	}
	if d.Examples[0].X[0] > 0.5 { // want "branch on raw"
		return probe()
	}
	return out
}

// ReassignedClean re-binds the raw-derived variable to the released
// value before branching: the re-assignment kills the taint, so the
// branch consumes only post-processed data. A flow-insensitive check
// would flag the condition just for mentioning x.
func ReassignedClean(d *Dataset, m *Mech, g *RNG) float64 {
	x := rawMean(d)
	out := m.Release(d, g)
	x = out
	if x > 0 {
		return x * 2
	}
	return x
}

// BranchBeforeRelease evaluates the raw branch on the release-free path
// only: textual order puts the condition below a release, but no
// execution reaches it with a release already behind it.
func BranchBeforeRelease(d *Dataset, m *Mech, g *RNG, audit bool) float64 {
	if audit {
		return m.Release(d, g)
	}
	if rawMean(d) > 0 {
		return 1
	}
	return 0
}

// GotoOrder jumps over the release to the raw branch: the goto path
// reaches the condition pre-release, and the fallthrough path only
// reaches it released — but released. Order on the goto path keeps it
// clean; the fall-through path re-derives the branch from released
// data, so the condition stays clean on every path.
func GotoOrder(d *Dataset, m *Mech, g *RNG, skip bool) float64 {
	if skip {
		goto decide
	}
	return m.Release(d, g)
decide:
	if rawMean(d) > 0 {
		return 1
	}
	return 0
}

// LoopCarriedLeak releases inside the loop body: from the second
// iteration on, the raw loop bound follows a release along the back
// edge. The fixed point must carry the released flag around the loop.
func LoopCarriedLeak(d *Dataset, m *Mech, g *RNG) float64 {
	var s float64
	for i := 0.0; i < rawMean(d); i++ { // want "loop bound on raw"
		s += m.Release(d, g)
	}
	return s
}

// RetaintedLeak launders the variable and then re-taints it: the second
// assignment restores the taint, so the branch is dirty again.
func RetaintedLeak(d *Dataset, m *Mech, g *RNG) float64 {
	x := rawMean(d)
	out := m.Release(d, g)
	x = out
	x = rawMean(d)
	if x > 0 { // want "branch on raw"
		return out
	}
	return out
}

// size derives only the public scalar from its raw argument: the
// interprocedural summary sees a clean result.
func size(d *Dataset) float64 { return float64(d.Len()) }

// SummaryClean branches on a helper's result whose summary is clean.
func SummaryClean(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	if size(d) > 100 {
		return out * 2
	}
	return out
}

// SummaryDirty branches on a helper that passes raw data through: the
// summary taints the result.
func SummaryDirty(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	if rawMean(d) > 0 { // want "branch on raw"
		return out * 2
	}
	return out
}

// SuppressedLeak keeps a deliberate raw-data branch behind a reasoned
// directive.
func SuppressedLeak(d *Dataset, m *Mech, g *RNG) float64 {
	out := m.Release(d, g)
	//dplint:ignore postproc fixture: deliberate leak kept as a regression specimen
	if d.Examples[0].X[0] > 0 {
		return out
	}
	return 0
}
