// Package rng is the one blessed home for math/rand: the check exempts
// any package whose import path ends in internal/rng.
package rng

import "math/rand"

// New returns a seeded source.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
