package rawrand

import "math/rand/v2" // want "import of math/rand/v2 outside internal/rng"

// NoiseV2 draws from the v2 global generator, which is just as unseeded
// and unreproducible as the v1 one.
func NoiseV2() float64 {
	return rand.Float64()
}
