// Package rawrand exercises the rawrand check: math/rand imported outside
// internal/rng must be reported in non-test files.
package rawrand

import (
	"math"
	"math/rand" // want "import of math/rand outside internal/rng"
)

// Noise draws unseeded noise, bypassing the reproducibility seam.
func Noise() float64 {
	return math.Abs(rand.Float64())
}
