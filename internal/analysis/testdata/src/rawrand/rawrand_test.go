package rawrand

// Test files may use math/rand directly: they do not release anything.

import (
	"math/rand"
	"testing"
)

func TestNoise(t *testing.T) {
	if rand.New(rand.NewSource(1)).Float64() < 0 {
		t.Fatal("impossible")
	}
}
