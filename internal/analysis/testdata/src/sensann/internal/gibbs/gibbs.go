// Package gibbs stubs the Gibbs-posterior constructor: New's first
// argument needs a //dp:sensitivity annotation when it is a function, and
// there is no sensitivity argument to cross-check against.
package gibbs

// Example is one raw record.
type Example struct{ X []float64 }

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// EmpiricalRisk averages a 0/1 loss over the examples.
func EmpiricalRisk(d *Dataset, u int) float64 {
	var s float64
	for _, e := range d.Examples {
		if e.X[0] > float64(u) {
			s++
		}
	}
	return s / float64(len(d.Examples))
}

// New mirrors the real Gibbs constructor: loss first, no sensitivity
// argument (the guarantee is 2λΔR̂, with ΔR̂ read from the annotation).
func New(loss func(*Dataset, int) float64, thetas []float64, lambda float64) int {
	return len(thetas)
}

// Unannotated is flagged even with no sensitivity argument to check.
func Unannotated(lambda float64) int {
	return New(func(d *Dataset, u int) float64 { return 0 }, []float64{0, 1}, lambda) // want "without a //dp:sensitivity annotation"
}

// Annotated uses the ASCII dq= spelling; the per-record shape matches
// the empirical-risk body.
func Annotated(lambda float64) int {
	//dp:sensitivity dq=M/n empirical risks are per-record
	loss := func(d *Dataset, u int) float64 {
		return -EmpiricalRisk(d, u)
	}
	return New(loss, []float64{0, 1}, lambda)
}
