package mechanism

// Unannotated passes a bare literal with no annotation anywhere.
func Unannotated(eps float64) int {
	return NewExponential(func(d *Dataset, u int) float64 { return 0 }, 3, 1, eps) // want "without a //dp:sensitivity annotation"
}

// AnnotatedLocal binds an annotated counting query to a local; the
// constructor's sensitivity argument 1 agrees with Δq=1.
func AnnotatedLocal(eps float64) int {
	//dp:sensitivity Δq=1 counting query
	q := func(d *Dataset, u int) float64 {
		var acc float64
		for _, e := range d.Examples {
			if e.X[0] > 0 {
				acc++
			}
		}
		return acc
	}
	return NewExponential(q, 3, 1, eps)
}

// CtorDisagrees annotates Δq=1 but tells the constructor 2.
func CtorDisagrees(eps float64) int {
	//dp:sensitivity Δq=1 counting query
	q := func(d *Dataset, u int) float64 {
		var acc float64
		for _, e := range d.Examples {
			if e.X[0] > 0.5 {
				acc++
			}
		}
		return acc
	}
	return NewExponential(q, 3, 2, eps) // want "disagrees with the quality function's"
}

// declaredQuality is annotated at its declaration; call sites passing it
// by name resolve the annotation through the call graph.
//
//dp:sensitivity Δq=1 indicator spread
func declaredQuality(d *Dataset, u int) float64 {
	if len(d.Examples) > u {
		return 1
	}
	return 0
}

// ByName passes the annotated declaration: clean.
func ByName(eps float64) int {
	return NewReportNoisyMax(declaredQuality, 4, 1, eps)
}

// unannotatedQuality has no annotation anywhere.
func unannotatedQuality(d *Dataset, u int) float64 {
	return float64(u)
}

// ByNameUnannotated is flagged at the argument.
func ByNameUnannotated(eps float64) int {
	return NewReportNoisyMax(unannotatedQuality, 4, 1, eps) // want "without a //dp:sensitivity annotation"
}

// Suppressed documents a known-vacuous quality and silences the check
// with a reason; the finding is recorded as suppressed, not lost.
func Suppressed(eps float64) int {
	q := func(d *Dataset, u int) float64 { return float64(u) }
	//dplint:ignore sensann fixture: candidate index is data-independent, sensitivity vacuous
	return NewExponential(q, 3, 1, eps)
}
