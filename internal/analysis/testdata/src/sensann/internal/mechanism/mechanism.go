// Package mechanism is a structural stub of the real exponential-
// mechanism constructors: sensann recognizes NewExponential and
// NewReportNoisyMax by name inside a package path ending in
// internal/mechanism, requires the quality argument to carry a
// //dp:sensitivity annotation, and cross-checks exact annotations
// against the constructor's sensitivity argument.
package mechanism

// Example is one raw record.
type Example struct{ X []float64 }

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// Len is the dataset's public size.
func (d *Dataset) Len() int { return len(d.Examples) }

// NewExponential mirrors the real constructor's shape: quality function,
// candidate count, sensitivity, epsilon.
func NewExponential(quality func(*Dataset, int) float64, candidates int, sens, eps float64) int {
	return candidates
}

// NewReportNoisyMax mirrors the one-shot variant with the same shape.
func NewReportNoisyMax(quality func(*Dataset, int) float64, candidates int, sens, eps float64) int {
	return candidates
}
