// Package risk exercises the loss-Bound resolution of the empirical-risk
// form: the inferred coefficient of a ±EmpiricalRisk(...) body comes from
// the loss argument's Bound() method through the call graph — exact for a
// concrete loss with a constant ceiling, symbolic M for interface
// dispatch, unbounded for a +Inf ceiling.
package risk

import "math"

// Example is one raw record.
type Example struct {
	X []float64
	Y float64
}

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// Len is the dataset's public size.
func (d *Dataset) Len() int { return len(d.Examples) }

// Loss caps one per-example term by its Bound.
type Loss interface {
	Loss(theta []float64, e Example) float64
	Bound() float64
}

// ZeroOne is the 0/1 loss: ceiling 1.
type ZeroOne struct{}

// Loss is the 0/1 indicator.
func (ZeroOne) Loss(theta []float64, e Example) float64 { return 0 }

// Bound is the constant ceiling.
func (ZeroOne) Bound() float64 { return 1 }

// Wide is a loss with ceiling 2.
type Wide struct{}

// Loss is the per-example term.
func (Wide) Loss(theta []float64, e Example) float64 { return 0 }

// Bound is the constant ceiling.
func (Wide) Bound() float64 { return 2 }

// Runaway has no finite ceiling.
type Runaway struct{}

// Loss is the per-example term.
func (Runaway) Loss(theta []float64, e Example) float64 { return 0 }

// Bound is infinite: the loss is unclipped.
func (Runaway) Bound() float64 { return math.Inf(1) }

// Clipped caps by a data-independent field: the ceiling is a value the
// analysis sees only symbolically.
type Clipped struct{ Max float64 }

// Loss is the per-example term.
func (c Clipped) Loss(theta []float64, e Example) float64 { return 0 }

// Bound is the clip ceiling.
func (c Clipped) Bound() float64 { return c.Max }

// EmpiricalRisk averages l over d.
func EmpiricalRisk(l Loss, theta []float64, d *Dataset) float64 {
	var s float64
	for _, e := range d.Examples {
		s += l.Loss(theta, e)
	}
	return s / float64(len(d.Examples))
}

// ExactRisk averages the 0/1 loss: Bound() folds to 1, matching 1/n.
//
//dp:sensitivity Δq=1/n one swap moves a [0,1] average by at most 1/n
func ExactRisk(theta []float64, d *Dataset) float64 {
	return -EmpiricalRisk(ZeroOne{}, theta, d)
}

// UnderDeclared claims 1/n but Wide's ceiling is 2: the mechanism
// calibrated from this annotation adds half the noise the terms need.
//
//dp:sensitivity Δq=1/n wrong: Wide.Bound() folds to 2
func UnderDeclared(theta []float64, d *Dataset) float64 { // want "contradicts the body"
	return -EmpiricalRisk(Wide{}, theta, d)
}

// InterfaceRisk dispatches through the interface: the ceiling stays the
// symbol M, which the declaration carries.
//
//dp:sensitivity Δq=M/n an average of n terms in a width-M interval
func InterfaceRisk(l Loss, theta []float64, d *Dataset) float64 {
	return -EmpiricalRisk(l, theta, d)
}

// ConstForSymbolic claims a constant numerator for an unresolved
// ceiling: no constant can bound a symbol the analysis cannot see.
//
//dp:sensitivity Δq=1/n wrong: the loss is dynamic, 1 cannot bound M
func ConstForSymbolic(l Loss, theta []float64, d *Dataset) float64 { // want "contradicts the body"
	return -EmpiricalRisk(l, theta, d)
}

// FieldBound resolves to a field-valued ceiling: symbolic M, carried by
// the declaration.
//
//dp:sensitivity Δq=M/n the clip field caps each term
func FieldBound(theta []float64, d *Dataset) float64 {
	return -EmpiricalRisk(Clipped{Max: 3}, theta, d)
}

// UnboundedRisk averages a loss whose Bound() is +Inf: no finite Δq
// exists, so the annotation is vacuous whatever it declares.
//
//dp:sensitivity Δq=1/n wrong: Runaway has no ceiling
func UnboundedRisk(theta []float64, d *Dataset) float64 { // want "averages an unbounded loss"
	return -EmpiricalRisk(Runaway{}, theta, d)
}
