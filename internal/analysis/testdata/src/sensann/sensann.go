// Package sensann exercises the body-verification half of the
// sensitivity check: every //dp:sensitivity annotation whose function has
// a recognizable form (constant returns, counting loop, empirical risk,
// clamped average) is checked against the inferred shape, wherever the
// function is declared. Constructor-site enforcement lives in the
// internal/mechanism and internal/gibbs subpackages, whose paths the
// check recognizes.
package sensann

import "math"

// Example is one raw record.
type Example struct {
	X []float64
	Y float64
}

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// Len is the dataset's public size.
func (d *Dataset) Len() int { return len(d.Examples) }

// EmpiricalRisk averages a 0/1 loss over the examples.
func EmpiricalRisk(theta []float64, d *Dataset) float64 {
	var s float64
	for _, e := range d.Examples {
		if e.Y*e.X[0]*theta[0] < 0 {
			s++
		}
	}
	return s / float64(len(d.Examples))
}

// Clamp clips x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ZeroOneScore is a 0/1 indicator: spread 1 matches the annotation.
//
//dp:sensitivity Δq=1 indicator spread
func ZeroOneScore(e Example) float64 {
	if e.Y > 0 {
		return 1
	}
	return 0
}

// WideScore spreads over [0, 3] but claims Δq=1.
//
//dp:sensitivity Δq=1 wrong: the constant spread below is 3
func WideScore(e Example) float64 { // want "contradicts the body"
	if e.Y > 0 {
		return 3
	}
	return 0
}

// BelowCount is a counting query returned through |·|: a replace-one
// neighbor moves the count by at most 1.
//
//dp:sensitivity Δq=1 replace-one moves the below-count by at most 1
func BelowCount(d *Dataset, t float64) float64 {
	var acc float64
	for _, e := range d.Examples {
		if e.X[0] < 0.5 {
			acc++
		}
	}
	return math.Abs(acc - t)
}

// MislabeledCount is a plain count but claims a per-record (·/n) bound.
//
//dp:sensitivity Δq=2/n wrong: the body is a count, not an average
func MislabeledCount(d *Dataset) float64 { // want "contradicts the body"
	var acc float64
	for _, e := range d.Examples {
		if e.X[0] > 0 {
			acc++
		}
	}
	return acc
}

// ClippedMean clips each term into [-1, 1] and averages: width 2 over n.
//
//dp:sensitivity Δq=2/n clipped to a width-2 interval and averaged
func ClippedMean(d *Dataset) float64 {
	var s float64
	for _, e := range d.Examples {
		s += Clamp(e.X[0], -1, 1)
	}
	return s / float64(len(d.Examples))
}

// SymbolicClamp clamps into [−clip, 0] and averages: the width is the
// variable clip, which the declared numerator names (the extra ln2 term
// over-declares, which over-noises, which stays private).
//
//dp:sensitivity Δq=(clip+ln2)/n clipped average with count drift
func SymbolicClamp(d *Dataset, clip float64) float64 {
	var s float64
	for _, e := range d.Examples {
		s += Clamp(e.X[0], -clip, 0)
	}
	return s / float64(len(d.Examples))
}

// WrongSymbol names a symbol the body never clamps by: the width is
// clip, not tau.
//
//dp:sensitivity Δq=(tau+ln2)/n wrong: the clamp width is clip, not tau
func WrongSymbol(d *Dataset, clip float64) float64 { // want "contradicts the body"
	var s float64
	for _, e := range d.Examples {
		s += Clamp(e.X[0], -clip, 0)
	}
	return s / float64(len(d.Examples))
}

// ConstForClamp claims a constant width for a variable clamp: no
// constant can bound an unresolved symbol.
//
//dp:sensitivity Δq=2/n wrong: the width is the variable clip
func ConstForClamp(d *Dataset, clip float64) float64 { // want "contradicts the body"
	var s float64
	for _, e := range d.Examples {
		s += Clamp(e.X[0], -clip, 0)
	}
	return s / float64(len(d.Examples))
}

// NegRisk negates an empirical risk of [0, M]-bounded terms: per-record
// shape M/n, coefficient unverifiable (trusted).
//
//dp:sensitivity Δq=M/n an average of n terms in a width-M interval
func NegRisk(theta []float64, d *Dataset) float64 {
	return -EmpiricalRisk(theta, d)
}

// BadRisk claims a constant bound for a per-record body.
//
//dp:sensitivity Δq=1 wrong: an empirical risk is per-record
func BadRisk(theta []float64, d *Dataset) float64 { // want "contradicts the body"
	return EmpiricalRisk(theta, d)
}

// LocalQuality anchors an annotation on a := assignment instead of a
// declaration; the 0/1 body is consistent.
func LocalQuality() func(Example) float64 {
	//dp:sensitivity Δq=1 indicator spread
	q := func(e Example) float64 {
		if e.Y > 0 {
			return 1
		}
		return 0
	}
	return q
}

// Opaque has no recognizable form: the annotation is trusted as
// documentation.
//
//dp:sensitivity Δq=smoothness-dependent reviewed by hand
func Opaque(d *Dataset) float64 {
	var s float64
	for i, e := range d.Examples {
		s += e.X[0] * float64(i%3)
	}
	return s * s
}
