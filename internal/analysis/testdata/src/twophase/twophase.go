// Package twophase exercises the two-phase budget protocol check: every
// Reserve must reach exactly one Commit or Release on every path out of
// the function, early returns and the panic edges of the sandwiched DP
// release included. The types below are structural stubs of the real
// mechanism package — the check recognizes them by shape (Reserve returns
// a *Reservation; Commit/Release are its protocol methods), not by
// import path.
package twophase

import "errors"

// Example is one raw record.
type Example struct{ X []float64 }

// Dataset is the raw sample.
type Dataset struct{ Examples []Example }

// Len is the dataset's public size.
func (d *Dataset) Len() int { return len(d.Examples) }

// Guarantee is a privacy price tag.
type Guarantee struct{ Epsilon float64 }

// RNG stands in for the seeded sampler.
type RNG struct{ state uint64 }

// Mech is a mechanism: it bears a Guarantee method, so its Release is a
// DP release site (and a potential panic source while a hold is live).
type Mech struct{ Epsilon float64 }

// Release consumes the raw data.
func (m *Mech) Release(d *Dataset, g *RNG) float64 { return m.Epsilon }

// Guarantee prices one release.
func (m *Mech) Guarantee() Guarantee { return Guarantee{Epsilon: m.Epsilon} }

// ErrExhausted mirrors the accountant's budget-exhaustion sentinel.
var ErrExhausted = errors.New("budget exhausted")

// Accountant registers spends and admits reservations.
type Accountant struct{ spent []Guarantee }

// Spend records one guarantee.
func (a *Accountant) Spend(g Guarantee) { a.spent = append(a.spent, g) }

// Reservation is a held budget claim: the first half of the two-phase
// Reserve/Commit protocol.
type Reservation struct {
	a Accountant
	g Guarantee
}

// Reserve admits a guarantee against the budget and returns the hold.
func (a *Accountant) Reserve(g Guarantee) (*Reservation, error) {
	return &Reservation{g: g}, nil
}

// Commit turns the hold into a recorded spend. Panics on double-commit.
func (r *Reservation) Commit(meta string) {}

// Release frees an uncommitted hold; it is a no-op after Commit.
func (r *Reservation) Release() {}

// Amount reports the held epsilon (a read, not a protocol transition).
func (r *Reservation) Amount() float64 { return r.g.Epsilon }

// DeferCovered is the canonical sandwich: guard the Reserve error, defer
// Release, release, Commit. Clean on every path including panics.
func DeferCovered(d *Dataset, acct *Accountant, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	res, err := acct.Reserve(m.Guarantee())
	if err != nil {
		return 0, err
	}
	defer res.Release()
	out := m.Release(d, g)
	res.Commit("mech")
	return out, nil
}

// EarlyReturnLeak abandons the hold on the fast path: the early return
// leaves budget headroom reserved that nothing will ever commit or free.
func EarlyReturnLeak(acct *Accountant, m *Mech, fast bool) (float64, error) {
	res, err := acct.Reserve(m.Guarantee()) // want "reservation leak.*neither committed nor released"
	if err != nil {
		return 0, err
	}
	if fast {
		return 0, nil
	}
	res.Commit("mech")
	return 1, nil
}

// PanicLeak sandwiches the release without a deferred cleanup: if the
// release panics the hold is lost. The commit below is unconditional, so
// only the panic edge leaks.
func PanicLeak(d *Dataset, acct *Accountant, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	res, err := acct.Reserve(m.Guarantee()) // want "reservation leak on panic"
	if err != nil {
		return 0, err
	}
	out := m.Release(d, g)
	res.Commit("mech")
	return out, nil
}

// LateDefer registers the cleanup after the release: order matters — a
// panic during the release happens before the defer exists.
func LateDefer(d *Dataset, acct *Accountant, g *RNG) float64 {
	m := &Mech{Epsilon: 1}
	res, err := acct.Reserve(m.Guarantee()) // want "reservation leak on panic"
	if err != nil {
		return 0
	}
	out := m.Release(d, g)
	defer res.Release()
	res.Commit("mech")
	return out
}

// ErrIsGuard degrades on budget exhaustion: on the errors.Is edge the
// Reserve failed, so the early return holds nothing. Clean.
func ErrIsGuard(d *Dataset, acct *Accountant, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	res, err := acct.Reserve(m.Guarantee())
	if errors.Is(err, ErrExhausted) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer res.Release()
	out := m.Release(d, g)
	res.Commit("mech")
	return out, nil
}

// CommitInBranch commits only under a flag and has no deferred Release:
// the flag-off path exits with the hold still open.
func CommitInBranch(acct *Accountant, m *Mech, ok bool) float64 {
	res, err := acct.Reserve(m.Guarantee()) // want "reservation leak.*neither committed nor released"
	if err != nil {
		return 0
	}
	if ok {
		res.Commit("mech")
	}
	return 1
}

// LoopReserve holds and settles one reservation per iteration, each
// covered by its own deferred Release. Clean across the back edge.
func LoopReserve(d *Dataset, acct *Accountant, ms []*Mech, g *RNG) float64 {
	total := 0.0
	for _, m := range ms {
		res, err := acct.Reserve(m.Guarantee())
		if err != nil {
			return total
		}
		defer res.Release()
		total += m.Release(d, g)
		res.Commit("mech")
	}
	return total
}

// DoubleCommit settles the hold twice: Reservation.Commit panics on the
// second call by contract.
func DoubleCommit(d *Dataset, acct *Accountant, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	res, err := acct.Reserve(m.Guarantee())
	if err != nil {
		return 0, err
	}
	defer res.Release()
	out := m.Release(d, g)
	res.Commit("mech")
	res.Commit("mech") // want "panics on double-commit"
	return out, nil
}

// TransferOut returns the hold: ownership (and the settle obligation)
// moves to the caller. Clean here — the caller's scope is checked there.
func TransferOut(acct *Accountant, m *Mech) (*Reservation, error) {
	res, err := acct.Reserve(m.Guarantee())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// HandOff passes the hold to a helper: an escaped reservation is the
// callee's obligation, not a leak at this site.
func HandOff(acct *Accountant, m *Mech) {
	res, err := acct.Reserve(m.Guarantee())
	if err != nil {
		return
	}
	settle(res)
}

func settle(r *Reservation) { r.Commit("mech") }

// AbandonedHold reads the hold but never settles it: the exit leaks even
// though the variable is used.
func AbandonedHold(acct *Accountant, m *Mech) float64 {
	res, err := acct.Reserve(m.Guarantee()) // want "reservation leak.*neither committed nor released"
	if err != nil {
		return 0
	}
	return res.Amount()
}

// SuppressedLeak exercises the suppression path: the directive names the
// check and gives a reason, so the finding is waived (and audited).
func SuppressedLeak(acct *Accountant, m *Mech) float64 {
	//dplint:ignore twophase deliberate abandon exercised by the suppression test
	res, err := acct.Reserve(m.Guarantee())
	if err != nil {
		return 0
	}
	return res.Amount()
}

// Txn is a durable hold following the Reservation protocol by shape:
// Commit/Release plus Amount returning the held Guarantee. The check
// recognizes it structurally — the name does not matter, the
// settle-exactly-once obligation does.
type Txn struct{ g Guarantee }

// Log is the write-ahead ledger; Begin fsyncs a reserve record and
// returns the durable hold.
type Log struct{}

// Begin opens a durable hold. The accountant comes first: the check
// keys on the result type, not the argument layout.
func (l *Log) Begin(a *Accountant, g Guarantee) (*Txn, error) {
	return &Txn{g: g}, nil
}

// Commit fsyncs the commit record, settling the hold.
func (t *Txn) Commit(status int) {}

// Release voids an uncommitted hold.
func (t *Txn) Release() {}

// Amount reports the held guarantee.
func (t *Txn) Amount() Guarantee { return t.g }

// DurableCovered is the serve envelope: reserve durably, defer the
// void, release, commit. Clean on every path including panics.
func DurableCovered(d *Dataset, acct *Accountant, wal *Log, g *RNG) (float64, error) {
	m := &Mech{Epsilon: 1}
	tx, err := wal.Begin(acct, m.Guarantee())
	if err != nil {
		return 0, err
	}
	defer tx.Release()
	out := m.Release(d, g)
	tx.Commit(200)
	return out, nil
}

// DurableLeak abandons the durable hold on the fast path: recovery
// will void the stranded reserve record at next boot, but this process
// leaked headroom nothing will settle.
func DurableLeak(acct *Accountant, wal *Log, m *Mech, fast bool) (float64, error) {
	tx, err := wal.Begin(acct, m.Guarantee()) // want "reservation leak.*neither committed nor released"
	if err != nil {
		return 0, err
	}
	if fast {
		return 0, nil
	}
	tx.Commit(200)
	return 1, nil
}
