package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// TwoPhase verifies the two-phase budget protocol path-sensitively: every
// Reserve must reach exactly one Commit or Release on every path out of
// the function — including early returns and the panic edges of the DP
// release sandwiched between the two phases.
//
// A Reservation is a hold on budget headroom. A hold that escapes on an
// early return is budget the accountant thinks is spoken for but that no
// release will ever justify — headroom leaks until process exit. A hold
// alive across a release call with no deferred Release leaks the same way
// when the release panics (mechanisms are exercised under fault injection
// precisely because they can). And a double Commit is a runtime panic by
// the Reservation contract. The check runs a forward dataflow over the
// function's CFG with one state machine per reservation variable
// (absent / held / done), refining on the `err != nil` and
// `errors.Is(err, ...)` guards that follow Reserve (on the error edge the
// reservation is nil, so nothing is held), treating `defer res.Release()`
// as covering every later exit (the canonical cleanup — a no-op after
// Commit), and treating a reservation that is returned or otherwise
// escapes as ownership transferred to the caller. Findings carry a
// block-path witness from the Reserve to the leaking exit.
var TwoPhase = register(&Analyzer{
	Name:     "twophase",
	Doc:      "every Reserve must reach exactly one Commit or Release on every path out (early returns and panic edges included)",
	Severity: Error,
	Run:      runTwoPhase,
})

func runTwoPhase(p *Pass) {
	observers, _ := buildObserverIndex(p.Pkg) // malformed directives are acctlint's to report
	for _, file := range p.Pkg.Files {
		if p.IsTestFile(file.Pos()) {
			continue
		}
		obsLits := observerArgLits(p.Pkg, p.Prog, file)
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if observers.isObserverScope(p.Pkg, fd) || isAccessLogScope(p, fd) {
					continue
				}
				twoPhaseScope(p, fd.Body, observers, obsLits)
			}
		}
	}
}

func twoPhaseScope(p *Pass, body *ast.BlockStmt, observers observerIndex, obsLits map[*ast.FuncLit]bool) {
	for _, lit := range directFuncLits(body) {
		if observers.isObserverScope(p.Pkg, lit) || obsLits[lit] {
			continue
		}
		twoPhaseScope(p, lit.Body, observers, obsLits)
	}

	hasSource := false
	inspectScope(body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok && returnsReservation(p.Pkg, call) {
			hasSource = true
		}
	})
	if !hasSource {
		return
	}

	rf := &resFlow{pkg: p.Pkg, sites: make(map[types.Object]*ast.CallExpr)}
	c := buildCFG(body, cfgOptions{
		PanicSource: func(n ast.Node) bool { return stmtHasReleaseCall(p.Pkg, n) },
	})
	in := solveForward(c, rf)

	type leak struct {
		res     types.Object
		kind    string // "return" | "panic" | "fallthrough"
		line    int    // line of the leaking exit / panicking release
		blk     *cfgBlock
		witness []string
	}
	leaks := make(map[types.Object]map[string]leak)
	record := func(res types.Object, kind string, line int, blk *cfgBlock) {
		if leaks[res] == nil {
			leaks[res] = make(map[string]leak)
		}
		if _, dup := leaks[res][kind]; dup {
			return
		}
		var witness []string
		if site := rf.sites[res]; site != nil {
			if srcBlk := blockEvaluating(c, site); srcBlk != nil {
				if path := c.witnessPath(srcBlk, blk, nil); path != nil {
					witness = c.trace(p.Fset, path)
				}
			}
		}
		leaks[res][kind] = leak{res: res, kind: kind, line: line, blk: blk, witness: witness}
	}

	for _, blk := range c.Blocks {
		fact, _ := in[blk].(*resFact)
		if fact == nil {
			continue
		}
		// A held, uncovered reservation at the moment a release panics is
		// lost: nothing downstream will ever Commit or Release it.
		if blk.PanicSource {
			for res, st := range fact.st {
				if st.bits&stHeld != 0 && !st.covered {
					record(res, "panic", p.Fset.Position(blk.Nodes[0].Pos()).Line, blk)
				}
			}
		}
		out := any(fact)
		for _, n := range blk.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				f := out.(*resFact)
				returned := returnedObjs(p.Pkg, ret)
				for res, st := range f.st {
					if st.bits&stHeld != 0 && !st.covered && !returned[res] {
						record(res, "return", p.Fset.Position(ret.Pos()).Line, blk)
					}
				}
			}
			// Double Commit is a runtime panic by contract; flag it where
			// the second Commit happens.
			if recv, kind := reservationOp(p.Pkg, n); kind == "commit" {
				f := out.(*resFact)
				if obj := identObj(p.Pkg, recv); obj != nil {
					if st, tracked := f.st[obj]; tracked && st.bits&stDone != 0 && st.bits&stHeld == 0 && st.bits&stAbsent == 0 {
						p.Reportf(n.Pos(), "reservation %q is already committed or released on every path reaching this Commit: Reservation.Commit panics on double-commit", obj.Name())
					}
				}
			}
			out = rf.Step(n, out)
		}
		// Fall-off-the-end exit: the implicit return at the closing brace.
		if blk.Return == nil {
			for _, e := range blk.Succs {
				if e.To == c.Exit {
					f := out.(*resFact)
					for res, st := range f.st {
						if st.bits&stHeld != 0 && !st.covered {
							record(res, "return", p.Fset.Position(body.Rbrace).Line, blk)
						}
					}
				}
			}
		}
	}

	// Deterministic order: by reserve-site position, returns before panics.
	var objs []types.Object
	for res := range leaks {
		objs = append(objs, res)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, res := range objs {
		site := rf.sites[res]
		pos := res.Pos()
		if site != nil {
			pos = site.Pos()
		}
		if l, ok := leaks[res]["return"]; ok {
			p.ReportTrace(pos, l.witness,
				"reservation leak: the hold %q can reach the exit at line %d neither committed nor released, leaking budget headroom; commit on every path or add `defer %s.Release()`",
				res.Name(), l.line, res.Name())
		}
		if l, ok := leaks[res]["panic"]; ok {
			p.ReportTrace(pos, l.witness,
				"reservation leak on panic: if the release at line %d panics, the hold %q is neither committed nor released; add `defer %s.Release()` (a no-op after Commit) so the panic path frees it",
				l.line, res.Name(), res.Name())
		}
	}
}

// ---------------------------------------------------------------------------
// Reservation state flow.

const (
	stAbsent uint8 = 1 << iota // reservation is nil / never taken on this path
	stHeld                     // hold outstanding
	stDone                     // committed, released, or ownership transferred
)

// resState is the per-variable protocol state with a coverage flag: covered
// means a `defer res.Release()` registered earlier on this path will free
// the hold on every later exit, normal or panicking.
type resState struct {
	bits    uint8
	covered bool
}

// resFact maps reservation variables to their protocol state and error
// variables to the reservation whose Reserve bound them (so branch edges
// on `err != nil` can refine the state: a failed Reserve holds nothing).
type resFact struct {
	st  map[types.Object]resState
	err map[types.Object]types.Object
}

func (f *resFact) clone() *resFact {
	if f == nil {
		return nil
	}
	c := &resFact{
		st:  make(map[types.Object]resState, len(f.st)),
		err: make(map[types.Object]types.Object, len(f.err)),
	}
	for k, v := range f.st {
		c.st[k] = v
	}
	for k, v := range f.err {
		c.err[k] = v
	}
	return c
}

type resFlow struct {
	pkg *Package
	// sites records the first Reserve (or other reservation-returning)
	// call assigned to each tracked variable, for report anchoring.
	sites map[types.Object]*ast.CallExpr
}

func (rf *resFlow) Bottom() any { return (*resFact)(nil) }
func (rf *resFlow) Entry() any {
	return &resFact{st: map[types.Object]resState{}, err: map[types.Object]types.Object{}}
}

func (rf *resFlow) Merge(a, b any) any {
	fa, fb := a.(*resFact), b.(*resFact)
	if fa == nil {
		return fb
	}
	if fb == nil {
		return fa
	}
	m := &resFact{st: make(map[types.Object]resState), err: make(map[types.Object]types.Object)}
	for res, sa := range fa.st {
		if sb, ok := fb.st[res]; ok {
			m.st[res] = resState{bits: sa.bits | sb.bits, covered: sa.covered && sb.covered}
		} else {
			// Unreserved on the other path: absent there.
			m.st[res] = resState{bits: sa.bits | stAbsent, covered: sa.covered}
		}
	}
	for res, sb := range fb.st {
		if _, ok := fa.st[res]; !ok {
			m.st[res] = resState{bits: sb.bits | stAbsent, covered: sb.covered}
		}
	}
	// Error bindings survive a join only when both paths agree.
	for e, r := range fa.err {
		if fb.err[e] == r {
			m.err[e] = r
		}
	}
	return m
}

func (rf *resFlow) Equal(a, b any) bool {
	fa, fb := a.(*resFact), b.(*resFact)
	if fa == nil || fb == nil {
		return fa == fb
	}
	if len(fa.st) != len(fb.st) || len(fa.err) != len(fb.err) {
		return false
	}
	for k, v := range fa.st {
		if fb.st[k] != v {
			return false
		}
	}
	for k, v := range fa.err {
		if fb.err[k] != v {
			return false
		}
	}
	return true
}

// Refine applies guard knowledge on conditional edges: after
// `res, err := acct.Reserve(g)`, the `err != nil` edge carries res == nil
// (absent), and the `err == nil` edge carries a live hold.
// `errors.Is(err, ...)` refines the true edge only (its false edge says
// nothing about err's nilness).
func (rf *resFlow) Refine(e cfgEdge, f any) any {
	fact := f.(*resFact)
	if fact == nil || len(fact.err) == 0 {
		return f
	}
	errObj, errNonNilWhenTrue, exhaustive := errGuard(rf.pkg, e.Cond)
	if errObj == nil {
		return f
	}
	res, bound := fact.err[errObj]
	if !bound {
		return f
	}
	errNonNil := errNonNilWhenTrue != e.Neg
	out := fact.clone()
	st := out.st[res]
	if errNonNil {
		// Reserve failed: nothing is held on this path.
		st.bits = stAbsent
		out.st[res] = st
	} else if exhaustive {
		// err == nil exactly: the hold is live.
		if st.bits&^stAbsent != 0 {
			st.bits &^= stAbsent
			out.st[res] = st
		}
	}
	return out
}

// errGuard decodes a branch condition over an error variable, returning
// the variable, whether the TRUE outcome implies err != nil, and whether
// the FALSE outcome implies err == nil (exhaustive). Recognized forms:
// err != nil, err == nil (both exhaustive), errors.Is(err, target)
// (true ⟹ err != nil; false says nothing).
func errGuard(pkg *Package, cond ast.Expr) (types.Object, bool, bool) {
	cond = unparen(cond)
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		if c.Op != token.NEQ && c.Op != token.EQL {
			return nil, false, false
		}
		x, y := unparen(c.X), unparen(c.Y)
		if isNilIdent(y) {
			if obj := identObj(pkg, x); obj != nil && isErrorType(obj.Type()) {
				return obj, c.Op == token.NEQ, true
			}
		}
		if isNilIdent(x) {
			if obj := identObj(pkg, y); obj != nil && isErrorType(obj.Type()) {
				return obj, c.Op == token.NEQ, true
			}
		}
	case *ast.CallExpr:
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Is" || len(c.Args) < 1 {
			return nil, false, false
		}
		if obj := identObj(pkg, unparen(c.Args[0])); obj != nil && isErrorType(obj.Type()) {
			return obj, true, false
		}
	}
	return nil, false, false
}

func (rf *resFlow) Step(n ast.Node, f any) any {
	fact := f.(*resFact)
	if fact == nil {
		return fact
	}
	out := fact.clone()
	switch st := n.(type) {
	case *ast.AssignStmt:
		rf.stepAssign(st, out)
		return out
	case *ast.DeferStmt:
		if recv, kind := deferredReservationOp(rf.pkg, st); recv != nil {
			if obj := identObj(rf.pkg, recv); obj != nil {
				if s, tracked := out.st[obj]; tracked {
					// Deferred Release (or Commit) covers every later exit.
					s.covered = true
					out.st[obj] = s
					_ = kind
					return out
				}
			}
		}
		rf.escapeWalk(n, out, nil)
		return out
	case *ast.ReturnStmt:
		// Returning the reservation transfers ownership to the caller.
		returned := returnedObjs(rf.pkg, st)
		for res := range returned {
			if s, tracked := out.st[res]; tracked {
				s.bits = stDone
				out.st[res] = s
			}
		}
		rf.escapeWalk(n, out, returned)
		return out
	}
	if recv, kind := reservationOp(rf.pkg, n); recv != nil {
		if obj := identObj(rf.pkg, recv); obj != nil {
			if s, tracked := out.st[obj]; tracked {
				switch kind {
				case "commit", "release":
					// nil reservations no-op, so absence survives; any held
					// or done state collapses to done.
					s.bits = (s.bits & stAbsent) | stDone
					out.st[obj] = s
				}
				return out
			}
		}
	}
	rf.escapeWalk(n, out, nil)
	return out
}

// stepAssign tracks reservation bindings: an assignment whose RHS call
// returns a reservation starts (or restarts) the protocol for the bound
// variable and binds its error result for guard refinement; overwriting a
// tracked variable from any other source ends tracking.
func (rf *resFlow) stepAssign(st *ast.AssignStmt, fact *resFact) {
	if len(st.Rhs) == 1 {
		if call, ok := unparen(st.Rhs[0]).(*ast.CallExpr); ok && returnsReservation(rf.pkg, call) {
			var resObj, errObj types.Object
			for _, l := range st.Lhs {
				obj := identObj(rf.pkg, l)
				if obj == nil {
					continue
				}
				switch {
				case isReservationType(obj.Type()):
					resObj = obj
				case isErrorType(obj.Type()):
					errObj = obj
				}
			}
			if resObj != nil {
				fact.st[resObj] = resState{bits: stHeld}
				if rf.sites[resObj] == nil {
					rf.sites[resObj] = call
				}
				// Rebind: this err now guards this reservation; any stale
				// binding of the same err is gone.
				for e, r := range fact.err {
					if e == errObj || r == resObj {
						delete(fact.err, e)
					}
				}
				if errObj != nil {
					fact.err[errObj] = resObj
				}
				// Arguments of the source call itself are not escapes.
				return
			}
		}
	}
	// Non-source assignment: overwritten reservation vars stop being
	// tracked (conservative — aliasing is rare in this protocol), and
	// rebound error vars lose their guard meaning.
	for _, l := range st.Lhs {
		if obj := identObj(rf.pkg, l); obj != nil {
			delete(fact.st, obj)
			delete(fact.err, obj)
		}
	}
	rf.escapeWalk(st, fact, nil)
}

// escapeWalk drops tracking for reservation variables that escape through
// n — passed as a call argument, captured by a closure, stored, or
// address-taken. An escaped hold is someone else's obligation; flagging
// it here would double-report ownership transfers like a helper returning
// its reservation to the caller.
func (rf *resFlow) escapeWalk(n ast.Node, fact *resFact, exempt map[types.Object]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		// Receiver positions of the protocol methods are uses, not escapes.
		if call, ok := m.(*ast.CallExpr); ok {
			if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
				switch sel.Sel.Name {
				case "Commit", "Release", "Amount":
					if obj := identObj(rf.pkg, sel.X); obj != nil {
						if _, tracked := fact.st[obj]; tracked {
							// Walk the arguments only.
							for _, a := range call.Args {
								rf.escapeWalk(a, fact, exempt)
							}
							return false
						}
					}
				}
			}
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := rf.pkg.Info.ObjectOf(id)
		if obj == nil || exempt[obj] {
			return true
		}
		if _, tracked := fact.st[obj]; tracked && isReservationType(obj.Type()) {
			delete(fact.st, obj)
			for e, r := range fact.err {
				if r == obj {
					delete(fact.err, e)
				}
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Structural recognition.

// isReservationType reports whether t is a two-phase budget hold: a
// (pointer to) named Reservation, or any type following the hold
// protocol structurally (Commit/Release/Amount→Guarantee — see
// isTwoPhaseHold), such as the WAL-logged wal.Txn. A durable hold must
// obey the same reach-exactly-one-settlement discipline as the
// in-memory one: a Txn that escapes uncommitted and unreleased is a
// reserve record recovery will void, i.e. a leaked intent.
func isReservationType(t types.Type) bool {
	return namedName(t) == "Reservation" || isTwoPhaseHold(t)
}

// returnsReservation reports whether call's results include a reservation
// handle: Accountant.Reserve itself, or any helper forwarding one (the
// widen-and-retry pattern returns the replacement hold to its caller).
func returnsReservation(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isReservationType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isReservationType(t)
	}
}

// reservationOp decodes a direct Commit/Release call on a reservation
// receiver inside statement n, returning the receiver expression and
// "commit" or "release" ("" when none).
func reservationOp(pkg *Package, n ast.Node) (ast.Expr, string) {
	var recv ast.Expr
	kind := ""
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok || kind != "" {
			return kind == ""
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isReservationType(pkg.Info.TypeOf(sel.X)) {
			return true
		}
		switch sel.Sel.Name {
		case "Commit":
			recv, kind = sel.X, "commit"
		case "Release":
			recv, kind = sel.X, "release"
		}
		return true
	})
	return recv, kind
}

// deferredReservationOp matches `defer res.Release()` / `defer res.Commit(...)`.
func deferredReservationOp(pkg *Package, st *ast.DeferStmt) (ast.Expr, string) {
	sel, ok := st.Call.Fun.(*ast.SelectorExpr)
	if !ok || !isReservationType(pkg.Info.TypeOf(sel.X)) {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Release":
		return sel.X, "release"
	case "Commit":
		return sel.X, "commit"
	}
	return nil, ""
}

// stmtHasReleaseCall reports whether n evaluates a DP release (outside
// nested function literals) — the panic sources that matter for holds.
func stmtHasReleaseCall(pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && isReleaseCall(pkg, call) {
			found = true
		}
		return !found
	})
	return found
}

// returnedObjs collects the objects returned directly by ret.
func returnedObjs(pkg *Package, ret *ast.ReturnStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, r := range ret.Results {
		if obj := identObj(pkg, unparen(r)); obj != nil {
			out[obj] = true
		}
	}
	return out
}

// blockEvaluating finds the block whose nodes contain call.
func blockEvaluating(c *cfg, call ast.Expr) *cfgBlock {
	for _, blk := range c.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if m == call {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}

func identObj(pkg *Package, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pkg.Info.ObjectOf(id)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
