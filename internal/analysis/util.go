package analysis

import (
	"go/ast"
	"go/types"
)

// isPkgRef reports whether id is a reference to the imported package with
// the given import path (e.g. the "math" in math.Exp).
func isPkgRef(p *Pass, id *ast.Ident, path string) bool {
	pn, ok := p.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// resultErrors reports whether a call with the given result type returns
// at least one error value.
func resultErrors(t types.Type) bool {
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}
