// Package audit verifies differential-privacy guarantees empirically.
// Given a mechanism and a pair of neighboring datasets, it estimates the
// realized privacy loss
//
//	ε̂ = max over outputs y of |log (P[M(D)=y] / P[M(D′)=y])|
//
// either exactly (when the mechanism exposes its full output
// distribution, as the exponential mechanism and Gibbs posterior do) or
// by Monte-Carlo histogramming of sampled outputs (for continuous
// mechanisms like Laplace). A mechanism satisfies its claimed ε-DP
// guarantee only if ε̂ ≤ ε for every neighbor pair — the check behind
// experiments E1, E2 and E5.
//
// The Monte-Carlo estimator is necessarily approximate: it lower-bounds
// the true privacy loss over the probed events and carries sampling
// noise, so audits compare ε̂ against ε with a tolerance, and treat
// ε̂ ≫ ε as a genuine violation.
package audit

import (
	"context"
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// ErrNoMass is returned when sampled outputs provide no overlapping events
// to compare.
var ErrNoMass = errors.New("audit: no overlapping output mass between neighbors")

// ExactEpsilon returns the exact realized privacy loss between two
// discrete output distributions given as normalized log-probability
// vectors: max_i |logP[i] − logQ[i]| over indices where either has mass.
// An output with mass in one distribution and none in the other yields
// +Inf (a pure-DP violation).
func ExactEpsilon(logP, logQ []float64) float64 {
	if len(logP) != len(logQ) {
		panic("audit: ExactEpsilon length mismatch")
	}
	var eps float64
	for i := range logP {
		pInf := math.IsInf(logP[i], -1)
		qInf := math.IsInf(logQ[i], -1)
		switch {
		case pInf && qInf:
			continue
		case pInf || qInf:
			return math.Inf(1)
		default:
			if d := math.Abs(logP[i] - logQ[i]); d > eps {
				eps = d
			}
		}
	}
	return eps
}

// DiscreteMechanism is a mechanism with a finite output range that can
// report its exact conditional output distribution.
type DiscreteMechanism interface {
	LogProbabilities(d *dataset.Dataset) []float64
}

// ExactAudit computes the exact realized privacy loss of a discrete
// mechanism over a set of neighbor pairs, returning the maximum. It is
// ExactAuditCtx without cancellation.
func ExactAudit(m DiscreteMechanism, pairs []NeighborPair) float64 {
	eps, err := ExactAuditCtx(context.Background(), m, pairs)
	if err != nil {
		// Background is never canceled; ExactAuditCtx has no other errors.
		panic(err)
	}
	return eps
}

// NeighborPair is a dataset and one of its neighbors.
type NeighborPair struct {
	D, DPrime *dataset.Dataset
}

// RandomNeighborPairs generates count neighbor pairs: base datasets drawn
// from gen, with one uniformly-chosen record replaced by a record from an
// independently generated dataset.
func RandomNeighborPairs(gen func(*rng.RNG) *dataset.Dataset, count int, g *rng.RNG) []NeighborPair {
	pairs := make([]NeighborPair, 0, count)
	for i := 0; i < count; i++ {
		d := gen(g)
		alt := gen(g)
		idx := g.Intn(d.Len())
		pairs = append(pairs, NeighborPair{
			D:      d,
			DPrime: d.ReplaceOne(idx, alt.Examples[g.Intn(alt.Len())]),
		})
	}
	return pairs
}

// WorstCaseBinaryPair returns the canonical worst-case neighbor pair for
// counting queries on binary data: all-zeros versus all-zeros with one
// record flipped to one.
func WorstCaseBinaryPair(n int) NeighborPair {
	zeros := make([]int, n)
	d := dataset.BernoulliTable{}.FromBits(zeros)
	flipped := make([]int, n)
	flipped[0] = 1
	return NeighborPair{D: d, DPrime: dataset.BernoulliTable{}.FromBits(flipped)}
}

// SampledResult reports a Monte-Carlo privacy audit.
type SampledResult struct {
	// EmpiricalEpsilon is the largest observed |log ratio| across
	// compared events.
	EmpiricalEpsilon float64
	// EventsCompared counts output events with enough mass on both sides
	// to be compared.
	EventsCompared int
	// Samples is the per-dataset sample count used.
	Samples int
}

// SampleContinuous audits a real-valued mechanism by drawing samples
// outputs on each of D and D′, histogramming both over a common range, and
// comparing per-bin frequencies. Bins with fewer than minCount samples on
// either side are skipped (their ratio estimates are too noisy to be
// evidence). It returns ErrNoMass if no bin qualifies.
//
//dp:observer audit entry point: samples the handed-in release to estimate realized eps; closures passed here are measurements, not release paths
func SampleContinuous(release func(*dataset.Dataset, *rng.RNG) float64, pair NeighborPair, samples, bins, minCount int, g *rng.RNG) (SampledResult, error) {
	return SampleContinuousCtx(context.Background(), release, pair, samples, bins, minCount, g)
}

// commonRange returns the min/max over both sample sets, widened by one
// when every sample is the identical value so binning stays defined.
func commonRange(outD, outP []float64) (lo, hi float64) {
	lo, hi = outD[0], outD[0]
	for _, v := range outD {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	for _, v := range outP {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if lo == hi { //dplint:ignore floateq degenerate-range collapse: equal only when every sample is the identical value
		hi = lo + 1
	}
	return lo, hi
}

// binIndex maps v into one of bins equal-width buckets over [lo, hi),
// clamping the boundary values into the edge buckets.
func binIndex(v, lo, hi float64, bins int) int {
	idx := int(math.Floor((v - lo) / (hi - lo) * float64(bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	return idx
}

// logRatioAbs is the empirical privacy loss of one event: |log a − log b|.
func logRatioAbs(a, b int) float64 {
	return math.Abs(math.Log(float64(a)) - math.Log(float64(b)))
}

// SampleDiscrete audits a mechanism with a finite output range by
// sampling. Outcomes with fewer than minCount draws on either side are
// skipped. It returns ErrNoMass if no outcome qualifies.
//
//dp:observer audit entry point: samples the handed-in release to estimate realized eps; closures passed here are measurements, not release paths
func SampleDiscrete(release func(*dataset.Dataset, *rng.RNG) int, numOutcomes int, pair NeighborPair, samples, minCount int, g *rng.RNG) (SampledResult, error) {
	return SampleDiscreteCtx(context.Background(), release, numOutcomes, pair, samples, minCount, g)
}

// LaplaceAnalyticEpsilon returns the exact realized privacy loss of the
// scalar Laplace mechanism between two query values a and b at noise
// scale s: |a − b| / s. Useful as ground truth when auditing the auditor.
func LaplaceAnalyticEpsilon(a, b, scale float64) float64 {
	return math.Abs(a-b) / scale
}
