package audit

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

func TestExactEpsilon(t *testing.T) {
	p := []float64{math.Log(0.75), math.Log(0.25)}
	q := []float64{math.Log(0.5), math.Log(0.5)}
	want := math.Log(1.5) // max(|log 1.5|, |log 0.5|) = log2? No: |log(0.25/0.5)| = log2 > log1.5
	_ = want
	got := ExactEpsilon(p, q)
	if !mathx.AlmostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("ExactEpsilon = %v, want ln2", got)
	}
	// Identical distributions: zero loss.
	if ExactEpsilon(p, p) != 0 {
		t.Error("self epsilon must be 0")
	}
	// Disjoint support: infinite loss.
	inf := ExactEpsilon([]float64{0, math.Inf(-1)}, []float64{math.Inf(-1), 0})
	if !math.IsInf(inf, 1) {
		t.Errorf("disjoint support epsilon = %v", inf)
	}
	// Shared -Inf coordinates are fine.
	if got := ExactEpsilon([]float64{0, math.Inf(-1)}, []float64{0, math.Inf(-1)}); got != 0 {
		t.Errorf("shared zero-mass epsilon = %v", got)
	}
}

func TestExactEpsilonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	ExactEpsilon([]float64{0}, []float64{0, 0})
}

func TestRandomNeighborPairs(t *testing.T) {
	g := rng.New(1)
	gen := func(h *rng.RNG) *dataset.Dataset {
		return dataset.BernoulliTable{P: 0.5}.Generate(10, h)
	}
	pairs := RandomNeighborPairs(gen, 20, g)
	if len(pairs) != 20 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if !p.D.IsNeighborOf(p.DPrime) {
			t.Fatal("generated pair is not a neighbor pair")
		}
	}
}

func TestWorstCaseBinaryPair(t *testing.T) {
	p := WorstCaseBinaryPair(5)
	if p.D.Len() != 5 || p.DPrime.Len() != 5 {
		t.Fatal("sizes")
	}
	if dataset.CountOnes(p.D) != 0 || dataset.CountOnes(p.DPrime) != 1 {
		t.Fatal("contents")
	}
	if !p.D.IsNeighborOf(p.DPrime) {
		t.Fatal("must be neighbors")
	}
}

func TestExactAuditExponentialMechanism(t *testing.T) {
	// The exact audit of an exponential mechanism must respect 2εΔq and
	// be tight for the worst-case pair on a counting quality.
	grid := mathx.Linspace(0, 1, 11)
	m, _, err := mechanism.PrivateMedian(0, grid, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(3)
	gen := func(h *rng.RNG) *dataset.Dataset {
		d := &dataset.Dataset{}
		for i := 0; i < 9; i++ {
			d.Append(dataset.Example{X: []float64{h.Float64()}})
		}
		return d
	}
	pairs := RandomNeighborPairs(gen, 100, g)
	eps := ExactAudit(m, pairs)
	budget := m.Guarantee().Epsilon
	if eps > budget+1e-9 {
		t.Errorf("exact audit %v exceeds theoretical %v", eps, budget)
	}
	if eps <= 0 {
		t.Error("audit should detect some privacy loss")
	}
}

func TestSampleContinuousLaplace(t *testing.T) {
	// Audit the Laplace mechanism on the worst-case counting pair: the
	// empirical epsilon must be ≲ ε (up to sampling noise), and the
	// analytic loss for this pair is exactly ε.
	epsilon := 1.0
	q := mechanism.CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
	m, err := mechanism.NewLaplace(q, epsilon)
	if err != nil {
		t.Fatal(err)
	}
	pair := WorstCaseBinaryPair(50)
	g := rng.New(5)
	res, err := SampleContinuous(func(d *dataset.Dataset, h *rng.RNG) float64 {
		return m.Release(d, h)[0]
	}, pair, 200_000, 60, 200, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsCompared == 0 {
		t.Fatal("no events compared")
	}
	// Sampling noise tolerance: generous 25%.
	if res.EmpiricalEpsilon > epsilon*1.25 {
		t.Errorf("empirical epsilon %v far exceeds ε=%v", res.EmpiricalEpsilon, epsilon)
	}
	// Analytic check of the underlying pair.
	if got := LaplaceAnalyticEpsilon(0, 1, m.Scale()); !mathx.AlmostEqual(got, epsilon, 1e-12) {
		t.Errorf("analytic epsilon = %v", got)
	}
}

func TestSampleContinuousDetectsViolation(t *testing.T) {
	// A "mechanism" that adds far too little noise must be flagged: the
	// empirical epsilon should blow well past the claimed ε = 1.
	pair := WorstCaseBinaryPair(10)
	g := rng.New(7)
	broken := func(d *dataset.Dataset, h *rng.RNG) float64 {
		return float64(dataset.CountOnes(d)) + h.Laplace(0, 0.2) // scale should be 1
	}
	res, err := SampleContinuous(broken, pair, 100_000, 50, 100, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.EmpiricalEpsilon < 2 {
		t.Errorf("auditor failed to flag a blatant violation: ε̂ = %v", res.EmpiricalEpsilon)
	}
}

func TestSampleContinuousNoMass(t *testing.T) {
	// Deterministic, disjoint outputs: no bin has mass on both sides.
	pair := WorstCaseBinaryPair(4)
	g := rng.New(9)
	det := func(d *dataset.Dataset, _ *rng.RNG) float64 {
		return float64(dataset.CountOnes(d)) * 100
	}
	if _, err := SampleContinuous(det, pair, 1000, 10, 5, g); err != ErrNoMass {
		t.Errorf("expected ErrNoMass, got %v", err)
	}
}

func TestSampleDiscreteExponential(t *testing.T) {
	grid := mathx.Linspace(0, 1, 5)
	m, _, err := mechanism.PrivateMedian(0, grid, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(11)
	d := &dataset.Dataset{}
	for i := 0; i < 9; i++ {
		d.Append(dataset.Example{X: []float64{g.Float64()}})
	}
	pair := NeighborPair{D: d, DPrime: d.ReplaceOne(0, dataset.Example{X: []float64{0.99}})}
	res, err := SampleDiscrete(func(dd *dataset.Dataset, h *rng.RNG) int {
		return m.Release(dd, h)
	}, 5, pair, 150_000, 100, g)
	if err != nil {
		t.Fatal(err)
	}
	exact := ExactEpsilon(m.LogProbabilities(pair.D), m.LogProbabilities(pair.DPrime))
	// The sampled estimate should be near the exact value.
	if math.Abs(res.EmpiricalEpsilon-exact) > 0.1 {
		t.Errorf("sampled ε̂ = %v, exact = %v", res.EmpiricalEpsilon, exact)
	}
}

func TestSampleDiscretePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive samples should panic")
		}
	}()
	_, _ = SampleDiscrete(nil, 1, NeighborPair{}, 0, 1, rng.New(1))
}
