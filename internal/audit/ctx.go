package audit

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// ctxStride is how many Monte-Carlo iterations run between cancellation
// checks: frequent enough that a deadline lands within milliseconds,
// rare enough to stay invisible in the sampling profile.
const ctxStride = 1024

// ExactAuditCtx is ExactAudit under a context, checking for
// cancellation between neighbor pairs (each pair's two posterior
// enumerations always complete, mirroring the parallel engine's
// claimed-chunk rule).
func ExactAuditCtx(ctx context.Context, m DiscreteMechanism, pairs []NeighborPair) (float64, error) {
	var eps float64
	for i, p := range pairs {
		if cerr := ctx.Err(); cerr != nil {
			return 0, fmt.Errorf("audit: canceled at pair %d/%d: %w", i, len(pairs), cerr)
		}
		if e := ExactEpsilon(m.LogProbabilities(p.D), m.LogProbabilities(p.DPrime)); e > eps {
			eps = e
		}
	}
	return eps, nil
}

// SampleContinuousCtx is SampleContinuous under a context, checking for
// cancellation every ctxStride sample pairs. A canceled audit returns
// no partial estimate: a truncated sample would silently understate ε̂.
//
//dp:observer audit entry point: samples the handed-in release to estimate realized eps; closures passed here are measurements, not release paths
func SampleContinuousCtx(ctx context.Context, release func(*dataset.Dataset, *rng.RNG) float64, pair NeighborPair, samples, bins, minCount int, g *rng.RNG) (SampledResult, error) {
	if samples <= 0 || bins <= 0 {
		panic("audit: SampleContinuous requires positive samples and bins")
	}
	outD := make([]float64, samples)
	outP := make([]float64, samples)
	for i := 0; i < samples; i++ {
		if i%ctxStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return SampledResult{}, fmt.Errorf("audit: canceled at sample %d/%d: %w", i, samples, cerr)
			}
		}
		outD[i] = release(pair.D, g)
		outP[i] = release(pair.DPrime, g)
	}
	return histogramCompare(outD, outP, samples, bins, minCount)
}

// histogramCompare is the shared tail of the continuous audit: bin both
// sample sets over their common range and compare per-bin frequencies.
func histogramCompare(outD, outP []float64, samples, bins, minCount int) (SampledResult, error) {
	lo, hi := commonRange(outD, outP)
	countD := make([]int, bins)
	countP := make([]int, bins)
	for i := 0; i < samples; i++ {
		countD[binIndex(outD[i], lo, hi, bins)]++
		countP[binIndex(outP[i], lo, hi, bins)]++
	}
	return compareCounts(countD, countP, samples, minCount)
}

// SampleDiscreteCtx is SampleDiscrete under a context, checking for
// cancellation every ctxStride sample pairs.
//
//dp:observer audit entry point: samples the handed-in release to estimate realized eps; closures passed here are measurements, not release paths
func SampleDiscreteCtx(ctx context.Context, release func(*dataset.Dataset, *rng.RNG) int, numOutcomes int, pair NeighborPair, samples, minCount int, g *rng.RNG) (SampledResult, error) {
	if samples <= 0 || numOutcomes <= 0 {
		panic("audit: SampleDiscrete requires positive samples and outcomes")
	}
	countD := make([]int, numOutcomes)
	countP := make([]int, numOutcomes)
	for i := 0; i < samples; i++ {
		if i%ctxStride == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return SampledResult{}, fmt.Errorf("audit: canceled at sample %d/%d: %w", i, samples, cerr)
			}
		}
		countD[release(pair.D, g)]++
		countP[release(pair.DPrime, g)]++
	}
	return compareCounts(countD, countP, samples, minCount)
}

// compareCounts scores two per-outcome count vectors, skipping outcomes
// too thin to be evidence on either side.
func compareCounts(countD, countP []int, samples, minCount int) (SampledResult, error) {
	res := SampledResult{Samples: samples}
	for u := range countD {
		if countD[u] < minCount || countP[u] < minCount {
			continue
		}
		res.EventsCompared++
		ratio := logRatioAbs(countD[u], countP[u])
		if ratio > res.EmpiricalEpsilon {
			res.EmpiricalEpsilon = ratio
		}
	}
	if res.EventsCompared == 0 {
		return res, ErrNoMass
	}
	return res, nil
}
