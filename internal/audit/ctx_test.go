package audit

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

// TestSampleContinuousCtxMatchesPlain pins that the ctx variant under an
// un-canceled context is the plain audit, bit for bit.
func TestSampleContinuousCtxMatchesPlain(t *testing.T) {
	release := func(d *dataset.Dataset, g *rng.RNG) float64 {
		return float64(d.Examples[0].Y) + g.Laplace(0, 1.0)
	}
	pair := WorstCaseBinaryPair(20)
	plain, err := SampleContinuous(release, pair, 4000, 20, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SampleContinuousCtx(context.Background(), release, pair, 4000, 20, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCtx {
		t.Fatalf("ctx variant diverged: %+v vs %+v", plain, withCtx)
	}
}

// TestSampleContinuousCtxCanceled pins that a canceled audit returns the
// cause and no partial estimate (a truncated sample would understate ε̂).
func TestSampleContinuousCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release := func(d *dataset.Dataset, g *rng.RNG) float64 { return g.Laplace(0, 1.0) }
	res, err := SampleContinuousCtx(ctx, release, WorstCaseBinaryPair(10), 4000, 20, 5, rng.New(7))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != (SampledResult{}) {
		t.Fatalf("canceled audit leaked a partial result: %+v", res)
	}
}

// auditMech is a two-outcome mechanism with a tunable log-probability
// gap, used to exercise the exact auditor.
type auditMech struct{ eps float64 }

func (m auditMech) LogProbabilities(d *dataset.Dataset) []float64 {
	if d.Examples[0].Y == 1 {
		return []float64{-m.eps, -0.5}
	}
	return []float64{0, -0.5}
}

// TestExactAuditCtxCanceled pins cancellation of the exact auditor and
// that the plain wrapper still agrees with the ctx variant.
func TestExactAuditCtxCanceled(t *testing.T) {
	pairs := []NeighborPair{WorstCaseBinaryPair(4), WorstCaseBinaryPair(8)}
	m := auditMech{eps: 0.3}

	got, err := ExactAuditCtx(context.Background(), m, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if want := ExactAudit(m, pairs); got != want {
		t.Fatalf("ctx variant diverged: %g vs %g", got, want)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExactAuditCtx(ctx, m, pairs); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestSampleDiscreteCtxCanceled pins cancellation of the discrete
// sampler and plain/ctx agreement.
func TestSampleDiscreteCtxCanceled(t *testing.T) {
	release := func(d *dataset.Dataset, g *rng.RNG) int {
		if g.Float64() < 0.4+0.1*float64(d.Examples[0].Y) {
			return 1
		}
		return 0
	}
	pair := WorstCaseBinaryPair(10)
	plain, err := SampleDiscrete(release, 2, pair, 4000, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SampleDiscreteCtx(context.Background(), release, 2, pair, 4000, 5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if plain != withCtx {
		t.Fatalf("ctx variant diverged: %+v vs %+v", plain, withCtx)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SampleDiscreteCtx(ctx, release, 2, pair, 4000, 5, rng.New(7)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
