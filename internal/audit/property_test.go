package audit

// Property-based privacy tests: for RANDOM quality functions, priors,
// temperatures and datasets, the exponential mechanism and the Gibbs
// estimator must satisfy their privacy certificates exactly. These tests
// complement the targeted audits in the experiment suite: they search a
// much wilder configuration space for counterexamples.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// randomBoundedLoss is a loss whose per-example values are arbitrary (but
// bounded) functions of a hash of the example and the parameter index —
// adversarially unstructured, which is exactly what a property test
// wants. Bound is 1.
type randomBoundedLoss struct {
	salt int64
}

func (l randomBoundedLoss) Loss(theta []float64, e dataset.Example) float64 {
	// A deterministic pseudo-random value in [0, 1] from (salt, θ, x, y).
	h := uint64(l.salt)
	mix := func(v float64) {
		h ^= math.Float64bits(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	}
	for _, v := range theta {
		mix(v)
	}
	for _, v := range e.X {
		mix(v)
	}
	mix(e.Y)
	// Map to [0, 1].
	return float64(h%1_000_003) / 1_000_003
}
func (randomBoundedLoss) Bound() float64 { return 1 }
func (randomBoundedLoss) Name() string   { return "random-bounded" }

func TestPropertyGibbsPrivacyOnRandomLosses(t *testing.T) {
	f := func(seed int64, lambdaRaw float64, saltRaw int64) bool {
		g := rng.New(seed)
		lambda := math.Abs(math.Mod(lambdaRaw, 100)) + 0.1
		n := 5 + g.Intn(30)
		loss := randomBoundedLoss{salt: saltRaw}
		thetas := make([][]float64, 2+g.Intn(12))
		for i := range thetas {
			thetas[i] = []float64{g.Normal(0, 2)}
		}
		est, err := gibbs.New(loss, thetas, nil, lambda)
		if err != nil {
			return false
		}
		d := dataset.BernoulliTable{P: 0.5}.Generate(n, g)
		nb := d.ReplaceOne(g.Intn(n), dataset.Example{X: []float64{g.Float64()}})
		got := ExactEpsilon(est.LogProbabilities(d), est.LogProbabilities(nb))
		budget := est.Guarantee(n).Epsilon
		return got <= budget+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExponentialMechanismPrivacy(t *testing.T) {
	// Random bounded quality functions with sensitivity enforced by
	// construction: q(d, u) = (sens/n)·Σᵢ hash(record i, u) with hash in
	// [0, 1]. Replacing one record moves q by at most sens/n... we use
	// sens = 1 with counting-style qualities instead: q = Σᵢ bit(i, u),
	// each record contributing a 0/1 term per candidate.
	f := func(seed int64, epsRaw float64) bool {
		g := rng.New(seed)
		eps := math.Abs(math.Mod(epsRaw, 5)) + 0.05
		n := 5 + g.Intn(20)
		k := 2 + g.Intn(8)
		loss := randomBoundedLoss{salt: seed}
		quality := func(d *dataset.Dataset, u int) float64 {
			var s float64
			th := []float64{float64(u)}
			for _, e := range d.Examples {
				if loss.Loss(th, e) > 0.5 {
					s++
				}
			}
			return s
		}
		m, err := mechanism.NewExponential(quality, k, 1, eps)
		if err != nil {
			return false
		}
		d := dataset.BernoulliTable{P: 0.5}.Generate(n, g)
		nb := d.ReplaceOne(g.Intn(n), dataset.Example{X: []float64{g.Float64()}})
		got := ExactEpsilon(m.LogProbabilities(d), m.LogProbabilities(nb))
		return got <= m.Guarantee().Epsilon+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPermuteAndFlipPrivacy(t *testing.T) {
	f := func(seed int64, epsRaw float64) bool {
		g := rng.New(seed)
		eps := math.Abs(math.Mod(epsRaw, 4)) + 0.05
		n := 5 + g.Intn(20)
		k := 2 + g.Intn(6)
		loss := randomBoundedLoss{salt: seed ^ 0x5a5a}
		quality := func(d *dataset.Dataset, u int) float64 {
			var s float64
			th := []float64{float64(u)}
			for _, e := range d.Examples {
				if loss.Loss(th, e) > 0.5 {
					s++
				}
			}
			return s
		}
		m, err := mechanism.NewPermuteAndFlip(quality, k, 1, eps)
		if err != nil {
			return false
		}
		d := dataset.BernoulliTable{P: 0.5}.Generate(n, g)
		nb := d.ReplaceOne(g.Intn(n), dataset.Example{X: []float64{g.Float64()}})
		got := ExactEpsilon(m.LogProbabilities(d), m.LogProbabilities(nb))
		return got <= m.Guarantee().Epsilon+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLearnerCalibrationExact(t *testing.T) {
	// For any ε and n, the core-learner calibration λ = εn/2M must make
	// the certificate equal ε exactly (round-trip identity).
	f := func(epsRaw float64, nRaw uint16, boundRaw float64) bool {
		eps := math.Abs(math.Mod(epsRaw, 20)) + 1e-3
		n := int(nRaw%1000) + 1
		bound := math.Abs(math.Mod(boundRaw, 50)) + 1e-3
		loss := learn.NewClippedLoss(learn.SquaredLoss{}, bound)
		lambda := gibbs.LambdaForEpsilon(eps, loss, n)
		back := gibbs.EpsilonForLambda(lambda, loss, n)
		return math.Abs(back-eps) < 1e-9*math.Max(1, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
