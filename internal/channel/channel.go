// Package channel implements the information-theoretic model of Section
// 4.1 and Figure 1 of the paper: differentially-private learning viewed as
// an information channel whose input is the sample Ẑ and whose output is
// the predictor θ, with transition kernel p(θ|Ẑ) given by the learner's
// posterior.
//
// Over an enumerable sample space the channel matrix is exact, so the
// mutual information I(Ẑ;θ), the paper's regularized objective
// E R̂ + (1/λ)·I(Ẑ;θ), and the DP leakage caps can all be computed
// without estimation error. The package also implements the alternating
// minimization of that objective (a rate–distortion / Blahut–Arimoto
// iteration) whose fixed point is exactly a Gibbs channel — the
// computational content of Theorem 4.2.
package channel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/infotheory"
	"repro/internal/mathx"
	"repro/internal/parallel"
)

// ErrBadChannel is returned for malformed channel construction inputs.
var ErrBadChannel = errors.New("channel: invalid construction")

// DiscreteMechanism mirrors audit.DiscreteMechanism: a learner exposing
// its exact posterior over a finite predictor space.
type DiscreteMechanism interface {
	LogProbabilities(d *dataset.Dataset) []float64
}

// Channel is a discrete memoryless channel from an enumerated sample
// space to a finite predictor space, with an input distribution attached.
type Channel struct {
	// LogPX is the normalized log input distribution over sample-space
	// points.
	LogPX []float64
	// Rows holds normalized log transition rows: Rows[i][j] = log p(θⱼ | Ẑᵢ).
	Rows [][]float64
	// Parallel controls worker fan-out for the leakage, marginal, and
	// capacity sums. The zero value uses all CPUs; every setting yields
	// bit-identical results (fixed chunk geometry, ordered reduction).
	Parallel parallel.Options
}

// rowGrain is the fan-out grain for per-input work: one index is a full
// posterior enumeration or a KL over a row, so channels with few inputs
// still split across CPUs.
const rowGrain = 1

// FromMechanism enumerates the channel of a discrete learner over the
// given sample-space points with the given (unnormalized) log input
// masses, one posterior row per worker chunk (all CPUs). The mechanism's
// LogProbabilities is called from multiple goroutines and must be safe
// for concurrent use — true for every mechanism in this module (they
// are pure up to the internally-locked risk cache). Use FromMechanismOpts
// with Workers: 1 for a mechanism that is not.
func FromMechanism(inputs []*dataset.Dataset, logPX []float64, m DiscreteMechanism) (*Channel, error) {
	return FromMechanismOpts(inputs, logPX, m, parallel.Options{})
}

// FromMechanismOpts is FromMechanism under an explicit parallel.Options.
// The enumerated rows are identical for every worker count: each row is
// an independent pure function of its input point.
func FromMechanismOpts(inputs []*dataset.Dataset, logPX []float64, m DiscreteMechanism, opts parallel.Options) (*Channel, error) {
	return FromMechanismCtx(context.Background(), inputs, logPX, m, opts)
}

// FromMechanismCtx is FromMechanismOpts with cancellation and panic
// isolation: the enumeration honors ctx at the engine's chunk-claim
// boundaries, and a panic inside the mechanism's posterior surfaces as a
// *parallel.WorkerError instead of crashing the process. A completed
// enumeration is bit-identical to FromMechanismOpts.
func FromMechanismCtx(ctx context.Context, inputs []*dataset.Dataset, logPX []float64, m DiscreteMechanism, opts parallel.Options) (*Channel, error) {
	if len(inputs) == 0 || len(inputs) != len(logPX) || m == nil {
		return nil, ErrBadChannel
	}
	px, logZ := mathx.LogNormalize(logPX)
	if math.IsInf(logZ, -1) {
		return nil, ErrBadChannel
	}
	rows := make([][]float64, len(inputs))
	if err := parallel.ForGrainCtx(ctx, len(inputs), rowGrain, opts, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rows[i] = m.LogProbabilities(inputs[i])
		}
	}); err != nil {
		return nil, fmt.Errorf("channel: enumerating mechanism rows: %w", err)
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("channel: ragged mechanism output at input %d", i)
		}
	}
	return &Channel{LogPX: px, Rows: rows, Parallel: opts}, nil
}

// New constructs a channel from explicit normalized log rows and input
// masses, validating shapes and normalization to within 1e-6.
func New(logPX []float64, rows [][]float64) (*Channel, error) {
	if len(logPX) == 0 || len(logPX) != len(rows) {
		return nil, ErrBadChannel
	}
	if !mathx.AlmostEqual(mathx.LogSumExp(logPX), 0, 1e-6) {
		return nil, fmt.Errorf("channel: input distribution not normalized")
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("channel: ragged row %d", i)
		}
		if !mathx.AlmostEqual(mathx.LogSumExp(r), 0, 1e-6) {
			return nil, fmt.Errorf("channel: row %d not normalized", i)
		}
	}
	return &Channel{LogPX: logPX, Rows: rows}, nil
}

// NumInputs returns the sample-space size.
func (c *Channel) NumInputs() int { return len(c.LogPX) }

// NumOutputs returns the predictor-space size.
func (c *Channel) NumOutputs() int { return len(c.Rows[0]) }

// Joint returns the joint distribution p(Ẑ, θ) in the linear domain.
func (c *Channel) Joint() (*infotheory.Joint, error) {
	table := make([][]float64, c.NumInputs())
	parallel.ForGrain(c.NumInputs(), rowGrain, c.Parallel, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			table[i] = make([]float64, c.NumOutputs())
			for j := range table[i] {
				table[i][j] = math.Exp(c.LogPX[i] + c.Rows[i][j])
			}
		}
	})
	return infotheory.NewJoint(table)
}

// MutualInformation returns the exact I(Ẑ;θ) in nats.
func (c *Channel) MutualInformation() (float64, error) {
	j, err := c.Joint()
	if err != nil {
		return 0, err
	}
	return j.MutualInformation(), nil
}

// OutputMarginalLog returns log p(θ) = log Σᵢ p(Ẑᵢ)·p(θ|Ẑᵢ) — the
// paper's "optimal prior" E_Ẑ π̂ (Section 4). Columns fan out across
// workers; each output entry is an independent LogSumExp over inputs.
func (c *Channel) OutputMarginalLog() []float64 {
	out := make([]float64, c.NumOutputs())
	nIn := c.NumInputs()
	parallel.ForGrain(c.NumOutputs(), 32, c.Parallel, func(lo, hi int) {
		buf := make([]float64, nIn)
		for j := lo; j < hi; j++ {
			for i := range buf {
				buf[i] = c.LogPX[i] + c.Rows[i][j]
			}
			out[j] = mathx.LogSumExp(buf)
		}
	})
	return out
}

// ExpectedValue returns E over the joint of vals[i][j] (e.g. per-input,
// per-θ empirical risks), reduced in row-major order over fixed chunks.
func (c *Channel) ExpectedValue(vals [][]float64) (float64, error) {
	if len(vals) != c.NumInputs() {
		return 0, ErrBadChannel
	}
	nOut := c.NumOutputs()
	for _, row := range vals {
		if len(row) != nOut {
			return 0, ErrBadChannel
		}
	}
	total := parallel.Sum(c.NumInputs()*nOut, c.Parallel, func(idx int) float64 {
		i, j := idx/nOut, idx%nOut
		w := math.Exp(c.LogPX[i] + c.Rows[i][j])
		if w > 0 {
			return w * vals[i][j]
		}
		return 0
	})
	return total, nil
}

// Objective returns the paper's Section-4 regularized objective
//
//	J(W) = E_{Ẑ,θ} R̂_Ẑ(θ) + (1/λ)·I(Ẑ;θ)
//
// for this channel under the given per-input per-θ risks.
func (c *Channel) Objective(risks [][]float64, lambda float64) (float64, error) {
	if lambda <= 0 {
		return 0, ErrBadChannel
	}
	expRisk, err := c.ExpectedValue(risks)
	if err != nil {
		return 0, err
	}
	mi, err := c.MutualInformation()
	if err != nil {
		return 0, err
	}
	return expRisk + mi/lambda, nil
}

// ExpectedKLToPrior returns E_Ẑ KL(p(·|Ẑ) ‖ π) for an explicit log-prior
// π. By the decomposition in Section 4, this equals I(Ẑ;θ) +
// KL(marginal ‖ π), so it is minimized (equal to the MI) when π is the
// output marginal.
func (c *Channel) ExpectedKLToPrior(logPrior []float64) (float64, error) {
	if len(logPrior) != c.NumOutputs() {
		return 0, ErrBadChannel
	}
	var mu sync.Mutex
	var firstErr error
	total := parallel.SumGrain(c.NumInputs(), rowGrain, c.Parallel, func(i int) float64 {
		kl, err := infotheory.KLLogSpace(c.Rows[i], logPrior)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return 0
		}
		return math.Exp(c.LogPX[i]) * kl
	})
	if firstErr != nil {
		return 0, firstErr
	}
	return total, nil
}

// Capacity returns the Shannon capacity of the channel (max over input
// distributions of the MI) via Blahut–Arimoto, in nats. The iteration's
// inner sums fan out under the channel's parallel options.
func (c *Channel) Capacity(tol float64, maxIter int) (float64, error) {
	return c.CapacityCtx(context.Background(), tol, maxIter)
}

// CapacityCtx is Capacity with cancellation: ctx is checked once per
// Blahut–Arimoto iteration, so long capacity computations drain
// gracefully on SIGINT/timeout. A converged run is bit-identical to
// Capacity.
func (c *Channel) CapacityCtx(ctx context.Context, tol float64, maxIter int) (float64, error) {
	cap_, _, err := infotheory.BlahutArimotoCtx(ctx, c.linearRows(), tol, maxIter, c.Parallel)
	return cap_, err
}

// MaxPairwiseLogRatio returns max over input pairs and outputs of
// |log p(θ|Ẑ) − log p(θ|Ẑ′)| — the channel's worst-case distinguishing
// power between any two sample-space points (not just neighbors). The
// O(|X|²·|Θ|) scan fans out over the first pair index; max is
// order-invariant, so the result is worker-count independent.
func (c *Channel) MaxPairwiseLogRatio() float64 {
	nIn, nOut := c.NumInputs(), c.NumOutputs()
	return parallel.MaxAbs(nIn, c.Parallel, func(a int) float64 {
		var m float64
		for b := a + 1; b < nIn; b++ {
			for j := 0; j < nOut; j++ {
				la, lb := c.Rows[a][j], c.Rows[b][j]
				aInf, bInf := math.IsInf(la, -1), math.IsInf(lb, -1)
				if aInf && bInf {
					continue
				}
				if aInf != bInf {
					return math.Inf(1)
				}
				if d := math.Abs(la - lb); d > m {
					m = d
				}
			}
		}
		return m
	})
}

// Compose post-processes the channel's output through a second (data-
// independent) channel post, where post[j][k] = P(Z=k | θ=j): the result
// is the channel Ẑ → Z. By the data-processing inequality the composed
// channel can only leak less; the test suite asserts this.
func (c *Channel) Compose(post [][]float64) (*Channel, error) {
	if len(post) != c.NumOutputs() {
		return nil, fmt.Errorf("channel: post-processing has %d rows for %d outputs", len(post), c.NumOutputs())
	}
	nOut := len(post[0])
	postNorm := make([][]float64, len(post))
	for j, row := range post {
		if len(row) != nOut {
			return nil, fmt.Errorf("channel: ragged post-processing row %d", j)
		}
		var total float64
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, fmt.Errorf("channel: invalid post-processing row %d", j)
			}
			total += v
		}
		if total <= 0 {
			return nil, fmt.Errorf("channel: zero-mass post-processing row %d", j)
		}
		postNorm[j] = make([]float64, nOut)
		for k, v := range row {
			postNorm[j][k] = v / total
		}
	}
	rows := make([][]float64, c.NumInputs())
	parallel.ForGrain(c.NumInputs(), rowGrain, c.Parallel, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rows[i] = make([]float64, nOut)
			for k := 0; k < nOut; k++ {
				var p float64
				for j := 0; j < c.NumOutputs(); j++ {
					p += math.Exp(c.Rows[i][j]) * postNorm[j][k]
				}
				if p <= 0 {
					rows[i][k] = math.Inf(-1)
				} else {
					rows[i][k] = math.Log(p)
				}
			}
		}
	})
	return &Channel{LogPX: append([]float64(nil), c.LogPX...), Rows: rows, Parallel: c.Parallel}, nil
}

// DPLeakageCapNats returns the trivial mutual-information cap for an
// ε-DP channel over a sample space of diameter diam (max replace-one
// distance between any two inputs): every pairwise log ratio is at most
// ε·diam, hence I(Ẑ;θ) ≤ capacity ≤ ε·diam nats.
func DPLeakageCapNats(epsilon float64, diam int) float64 {
	if epsilon < 0 || diam < 0 {
		panic("channel: DPLeakageCapNats requires non-negative arguments")
	}
	return epsilon * float64(diam)
}
