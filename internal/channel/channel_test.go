package channel

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/infotheory"
	"repro/internal/mathx"
)

// meanLoss scores θ (a scalar in [0,1]) against a binary record x:
// l = (θ − x)² ∈ [0, 1]. It depends on the data only through the record
// value, so learners built on it are exchangeable.
type meanLoss struct{}

func (meanLoss) Loss(theta []float64, e dataset.Example) float64 {
	d := theta[0] - e.X[0]
	return d * d
}
func (meanLoss) Bound() float64 { return 1 }
func (meanLoss) Name() string   { return "mean-squared" }

func meanGrid(points int) [][]float64 {
	axis := mathx.Linspace(0, 1, points)
	out := make([][]float64, points)
	for i, v := range axis {
		out[i] = []float64{v}
	}
	return out
}

func meanEstimator(t *testing.T, lambda float64, points int) *gibbs.Estimator {
	t.Helper()
	est, err := gibbs.New(meanLoss{}, meanGrid(points), nil, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestBinarySampleSpace(t *testing.T) {
	inputs, logPX := BinarySampleSpace(4, 0.3)
	if len(inputs) != 16 || len(logPX) != 16 {
		t.Fatalf("sizes %d/%d", len(inputs), len(logPX))
	}
	if !mathx.AlmostEqual(mathx.LogSumExp(logPX), 0, 1e-10) {
		t.Errorf("probabilities must normalize, got %v", mathx.LogSumExp(logPX))
	}
	// Input 0 is all zeros: prob (1−p)^4.
	if !mathx.AlmostEqual(logPX[0], 4*math.Log(0.7), 1e-12) {
		t.Errorf("logPX[0] = %v", logPX[0])
	}
	// All inputs are valid neighbors chains of each other (size n).
	for _, d := range inputs {
		if d.Len() != 4 {
			t.Fatal("dataset size")
		}
	}
}

func TestBinarySampleSpacePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { BinarySampleSpace(0, 0.5) },
		func() { BinarySampleSpace(21, 0.5) },
		func() { BinarySampleSpace(4, 1.5) },
		func() { CountSampleSpace(0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCountSampleSpace(t *testing.T) {
	inputs, logPX := CountSampleSpace(6, 0.4)
	if len(inputs) != 7 {
		t.Fatalf("inputs = %d", len(inputs))
	}
	if !mathx.AlmostEqual(mathx.LogSumExp(logPX), 0, 1e-10) {
		t.Error("binomial must normalize")
	}
	for k, d := range inputs {
		if dataset.CountOnes(d) != k {
			t.Fatalf("representative %d has %d ones", k, dataset.CountOnes(d))
		}
	}
}

func TestFromMechanismAndMI(t *testing.T) {
	est := meanEstimator(t, 10, 5)
	inputs, logPX := CountSampleSpace(8, 0.5)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumInputs() != 9 || ch.NumOutputs() != 5 {
		t.Fatal("shape")
	}
	mi, err := ch.MutualInformation()
	if err != nil {
		t.Fatal(err)
	}
	if mi <= 0 {
		t.Errorf("MI = %v, expected positive leakage", mi)
	}
	// MI bounded by input entropy.
	px := make([]float64, len(logPX))
	for i, lp := range logPX {
		px[i] = math.Exp(lp)
	}
	hIn, err := infotheory.Entropy(px)
	if err != nil {
		t.Fatal(err)
	}
	if mi > hIn+1e-9 {
		t.Errorf("MI %v exceeds input entropy %v", mi, hIn)
	}
}

func TestCountVsFullEnumerationAgree(t *testing.T) {
	// For an exchangeable learner the collapsed (count) channel and the
	// full 2^n channel must have the same MI.
	est := meanEstimator(t, 6, 4)
	n := 6
	p := 0.35
	full, logFull := BinarySampleSpace(n, p)
	coll, logColl := CountSampleSpace(n, p)
	chFull, err := FromMechanism(full, logFull, est)
	if err != nil {
		t.Fatal(err)
	}
	chColl, err := FromMechanism(coll, logColl, est)
	if err != nil {
		t.Fatal(err)
	}
	miFull, _ := chFull.MutualInformation()
	miColl, _ := chColl.MutualInformation()
	if !mathx.AlmostEqual(miFull, miColl, 1e-9) {
		t.Errorf("full MI %v != collapsed MI %v", miFull, miColl)
	}
}

func TestMIMonotoneInLambda(t *testing.T) {
	// Less privacy (larger λ) must leak more information — the paper's
	// core tradeoff (Section 4).
	inputs, logPX := CountSampleSpace(10, 0.5)
	var prev float64 = -1
	for _, lambda := range []float64{0.1, 1, 5, 20, 100} {
		est := meanEstimator(t, lambda, 9)
		ch, err := FromMechanism(inputs, logPX, est)
		if err != nil {
			t.Fatal(err)
		}
		mi, err := ch.MutualInformation()
		if err != nil {
			t.Fatal(err)
		}
		if mi < prev-1e-9 {
			t.Errorf("MI decreased with λ: %v after %v", mi, prev)
		}
		prev = mi
	}
}

func TestExpectedKLDecomposition(t *testing.T) {
	// E_Ẑ KL(ρ_Ẑ ‖ π) = I(Ẑ;θ) + KL(marginal ‖ π) (Section 4).
	est := meanEstimator(t, 8, 6)
	inputs, logPX := CountSampleSpace(7, 0.45)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	mi, _ := ch.MutualInformation()
	marginal := ch.OutputMarginalLog()
	// For π = marginal: E KL = I exactly.
	ekl, err := ch.ExpectedKLToPrior(marginal)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(ekl, mi, 1e-9) {
		t.Errorf("E KL to marginal = %v, MI = %v", ekl, mi)
	}
	// For a different prior: E KL = I + KL(marginal‖π) > I.
	uniform := make([]float64, ch.NumOutputs())
	for i := range uniform {
		uniform[i] = -math.Log(float64(len(uniform)))
	}
	eklU, err := ch.ExpectedKLToPrior(uniform)
	if err != nil {
		t.Fatal(err)
	}
	klMarg, err := infotheory.KLLogSpace(marginal, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(eklU, mi+klMarg, 1e-9) {
		t.Errorf("decomposition: E KL %v != MI %v + KL %v", eklU, mi, klMarg)
	}
}

func TestObjectiveAndMarginal(t *testing.T) {
	est := meanEstimator(t, 5, 4)
	inputs, logPX := CountSampleSpace(5, 0.5)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	risks := make([][]float64, len(inputs))
	for i, d := range inputs {
		risks[i] = est.Risks(d)
	}
	obj, err := ch.Objective(risks, 5)
	if err != nil {
		t.Fatal(err)
	}
	expRisk, _ := ch.ExpectedValue(risks)
	mi, _ := ch.MutualInformation()
	if !mathx.AlmostEqual(obj, expRisk+mi/5, 1e-12) {
		t.Errorf("objective composition")
	}
	if !mathx.AlmostEqual(mathx.LogSumExp(ch.OutputMarginalLog()), 0, 1e-9) {
		t.Error("marginal must normalize")
	}
}

func TestTheorem42RateDistortionFixedPointIsGibbs(t *testing.T) {
	// The minimizer of E risk + (1/λ)·I must be a Gibbs channel with
	// prior equal to its own output marginal (Theorem 4.2 / Section 4).
	est := meanEstimator(t, 7, 6)
	inputs, logPX := CountSampleSpace(9, 0.4)
	risks := make([][]float64, len(inputs))
	for i, d := range inputs {
		risks[i] = est.Risks(d)
	}
	lambda := 7.0
	opt, objOpt, err := RateDistortionChannel(risks, logPX, lambda, 3000, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-point check: each row must equal Gibbs(marginal, risks, λ).
	marginal := opt.OutputMarginalLog()
	for i := range opt.Rows {
		logw := make([]float64, len(marginal))
		for j := range logw {
			logw[j] = marginal[j] - lambda*risks[i][j]
		}
		want, _ := mathx.LogNormalize(logw)
		for j := range want {
			// Compare in the probability domain: deep tails (log-probs of
			// −100 and below) are numerically irrelevant to the fixed point.
			if math.Abs(math.Exp(opt.Rows[i][j])-math.Exp(want[j])) > 1e-8 {
				t.Fatalf("row %d not a Gibbs posterior of its own marginal: p=%v vs %v", i, math.Exp(opt.Rows[i][j]), math.Exp(want[j]))
			}
		}
	}
	// Optimality: the RD channel must (weakly) beat the uniform-prior
	// Gibbs channel and a batch of ad-hoc competitors on the objective.
	gibbsCh, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	objGibbs, err := gibbsCh.Objective(risks, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if objOpt > objGibbs+1e-9 {
		t.Errorf("RD objective %v worse than uniform-prior Gibbs %v", objOpt, objGibbs)
	}
	// Deterministic ERM channel: point mass on the per-input argmin.
	ermRows := make([][]float64, len(inputs))
	for i := range ermRows {
		ermRows[i] = make([]float64, len(risks[i]))
		best := mathx.ArgMin(risks[i])
		for j := range ermRows[i] {
			if j == best {
				ermRows[i][j] = 0
			} else {
				ermRows[i][j] = math.Inf(-1)
			}
		}
	}
	normPX, _ := mathx.LogNormalize(logPX)
	ermCh := &Channel{LogPX: normPX, Rows: ermRows}
	objERM, err := ermCh.Objective(risks, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if objOpt > objERM+1e-9 {
		t.Errorf("RD objective %v worse than deterministic ERM %v", objOpt, objERM)
	}
	// Constant channel (ignores data): MI = 0 but high risk.
	constRows := make([][]float64, len(inputs))
	for i := range constRows {
		constRows[i] = make([]float64, len(risks[0]))
		for j := range constRows[i] {
			if j == 0 {
				constRows[i][j] = 0
			} else {
				constRows[i][j] = math.Inf(-1)
			}
		}
	}
	constCh := &Channel{LogPX: normPX, Rows: constRows}
	objConst, err := constCh.Objective(risks, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if objOpt > objConst+1e-9 {
		t.Errorf("RD objective %v worse than constant channel %v", objOpt, objConst)
	}
}

func TestDPLeakageCaps(t *testing.T) {
	// For the Gibbs channel with per-neighbor certificate ε, any two
	// datasets differ in at most n records, so pairwise ratios ≤ ε·n and
	// MI ≤ capacity ≤ ε·n.
	n := 8
	lambda := 4.0
	est := meanEstimator(t, lambda, 5)
	epsPerNeighbor := est.Guarantee(n).Epsilon
	inputs, logPX := CountSampleSpace(n, 0.5)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	capNats := DPLeakageCapNats(epsPerNeighbor, n)
	maxRatio := ch.MaxPairwiseLogRatio()
	if maxRatio > capNats+1e-9 {
		t.Errorf("pairwise ratio %v exceeds ε·n = %v", maxRatio, capNats)
	}
	mi, _ := ch.MutualInformation()
	capacity, err := ch.Capacity(1e-9, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if mi > capacity+1e-6 {
		t.Errorf("MI %v exceeds capacity %v", mi, capacity)
	}
	if capacity > capNats+1e-6 {
		t.Errorf("capacity %v exceeds DP cap %v", capacity, capNats)
	}
}

func TestChannelValidation(t *testing.T) {
	if _, err := FromMechanism(nil, nil, nil); err != ErrBadChannel {
		t.Error("empty inputs")
	}
	if _, err := New([]float64{0}, [][]float64{{0, math.Inf(-1)}, {0, 0}}); err == nil {
		t.Error("shape mismatch must error")
	}
	if _, err := New([]float64{math.Log(0.5), math.Log(0.5)}, [][]float64{{0}, {-1}}); err == nil {
		t.Error("unnormalized row must error")
	}
	ch, err := New([]float64{math.Log(0.5), math.Log(0.5)}, [][]float64{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.ExpectedValue([][]float64{{1}}); err != ErrBadChannel {
		t.Error("ExpectedValue shape")
	}
	if _, err := ch.Objective([][]float64{{1}, {1}}, 0); err != ErrBadChannel {
		t.Error("Objective lambda")
	}
	if _, err := ch.ExpectedKLToPrior([]float64{0, 0}); err != ErrBadChannel {
		t.Error("prior shape")
	}
}

func TestRateDistortionValidation(t *testing.T) {
	if _, _, err := RateDistortionChannel(nil, nil, 1, 10, 1e-9); err != ErrBadChannel {
		t.Error("empty")
	}
	if _, _, err := RateDistortionChannel([][]float64{{1}}, []float64{0}, 0, 10, 1e-9); err != ErrBadChannel {
		t.Error("lambda")
	}
	if _, _, err := RateDistortionChannel([][]float64{{1}, {1, 2}}, []float64{0, 0}, 1, 10, 1e-9); err != ErrBadChannel {
		t.Error("ragged")
	}
}

func TestRateDistortionLimits(t *testing.T) {
	// λ→0: MI cost dominates → channel ignores data (MI ≈ 0).
	risks := [][]float64{{0, 1}, {1, 0}}
	logPX := []float64{math.Log(0.5), math.Log(0.5)}
	chLow, _, err := RateDistortionChannel(risks, logPX, 1e-6, 500, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	miLow, _ := chLow.MutualInformation()
	if miLow > 1e-3 {
		t.Errorf("λ→0 MI = %v, want ≈ 0", miLow)
	}
	// λ→∞: risk dominates → channel approaches per-input argmin (MI → ln 2
	// here) and expected risk → 0.
	chHigh, _, err := RateDistortionChannel(risks, logPX, 1e4, 2000, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	miHigh, _ := chHigh.MutualInformation()
	if math.Abs(miHigh-math.Ln2) > 1e-3 {
		t.Errorf("λ→∞ MI = %v, want ln2", miHigh)
	}
	expRisk, _ := chHigh.ExpectedValue(risks)
	if expRisk > 1e-3 {
		t.Errorf("λ→∞ risk = %v, want ≈ 0", expRisk)
	}
}

func TestComposeDataProcessingInequality(t *testing.T) {
	// Post-processing the predictor can only reduce every leakage
	// measure: Shannon MI, min-entropy leakage, and Bayes accuracy.
	est := meanEstimator(t, 12, 5)
	inputs, logPX := CountSampleSpace(8, 0.5)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	// A lossy post-processing: merge adjacent outputs.
	post := [][]float64{
		{1, 0, 0},
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{0, 0, 1},
	}
	composed, err := ch.Compose(post)
	if err != nil {
		t.Fatal(err)
	}
	if composed.NumOutputs() != 3 || composed.NumInputs() != ch.NumInputs() {
		t.Fatal("composed shape")
	}
	miBefore, _ := ch.MutualInformation()
	miAfter, err := composed.MutualInformation()
	if err != nil {
		t.Fatal(err)
	}
	if miAfter > miBefore+1e-9 {
		t.Errorf("DPI violated: MI %v > %v", miAfter, miBefore)
	}
	leakBefore, _ := ch.MinEntropyLeakage()
	leakAfter, err := composed.MinEntropyLeakage()
	if err != nil {
		t.Fatal(err)
	}
	if leakAfter > leakBefore+1e-9 {
		t.Errorf("DPI violated for min-entropy leakage: %v > %v", leakAfter, leakBefore)
	}
	accBefore, _ := ch.BayesReconstructionAccuracy()
	accAfter, err := composed.BayesReconstructionAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if accAfter > accBefore+1e-12 {
		t.Errorf("post-processing improved the adversary: %v > %v", accAfter, accBefore)
	}
	// Identity post-processing changes nothing.
	id := [][]float64{
		{1, 0, 0, 0, 0}, {0, 1, 0, 0, 0}, {0, 0, 1, 0, 0}, {0, 0, 0, 1, 0}, {0, 0, 0, 0, 1},
	}
	same, err := ch.Compose(id)
	if err != nil {
		t.Fatal(err)
	}
	miSame, _ := same.MutualInformation()
	if !mathx.AlmostEqual(miSame, miBefore, 1e-9) {
		t.Errorf("identity post-processing changed MI: %v vs %v", miSame, miBefore)
	}
}

func TestComposeValidation(t *testing.T) {
	est := meanEstimator(t, 2, 3)
	inputs, logPX := CountSampleSpace(4, 0.5)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Compose([][]float64{{1}}); err == nil {
		t.Error("row count mismatch")
	}
	if _, err := ch.Compose([][]float64{{1, 0}, {0, 1}, {1}}); err == nil {
		t.Error("ragged post")
	}
	if _, err := ch.Compose([][]float64{{0, 0}, {1, 0}, {0, 1}}); err == nil {
		t.Error("zero-mass row")
	}
	if _, err := ch.Compose([][]float64{{-1, 2}, {1, 0}, {0, 1}}); err == nil {
		t.Error("negative entry")
	}
}
