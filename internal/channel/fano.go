package channel

import (
	"errors"
	"math"

	"repro/internal/infotheory"
	"repro/internal/mathx"
)

// This file implements the adversarial-reconstruction side of the
// paper's channel view (Section 5's "lower bounds on the mutual
// information ... and their implication on utility"): the Bayes-optimal
// adversary that tries to reconstruct the sample Ẑ from the released
// predictor θ, and the information-theoretic limits (Fano's inequality,
// Bayes vulnerability) that cap any adversary's success.

// ErrDegenerateChannel is returned when a computation needs more than one
// input with positive mass.
var ErrDegenerateChannel = errors.New("channel: degenerate channel")

// BayesReconstructionAccuracy returns the success probability of the
// Bayes-optimal adversary that observes θ and guesses the sample-space
// point: Σⱼ maxᵢ p(Ẑᵢ)·p(θⱼ|Ẑᵢ). It equals the posterior Bayes
// vulnerability of the channel.
func (c *Channel) BayesReconstructionAccuracy() (float64, error) {
	return infotheory.PosteriorVulnerability(c.linearPX(), c.linearRows())
}

// FanoErrorLowerBound returns Fano's lower bound on ANY adversary's
// reconstruction error probability:
//
//	P(error) ≥ (H(Ẑ) − I(Ẑ;θ) − ln 2) / ln(|support| − 1)
//
// clamped to [0, 1]. Supports of size ≤ 2 make the log term degenerate;
// those return 0 (the bound is vacuous there).
func (c *Channel) FanoErrorLowerBound() (float64, error) {
	px := c.linearPX()
	support := 0
	for _, p := range px {
		if p > 0 {
			support++
		}
	}
	if support < 2 {
		return 0, ErrDegenerateChannel
	}
	hIn, err := infotheory.Entropy(px)
	if err != nil {
		return 0, err
	}
	mi, err := c.MutualInformation()
	if err != nil {
		return 0, err
	}
	if support == 2 {
		return 0, nil // ln(1) = 0 denominator; Fano is vacuous
	}
	bound := (hIn - mi - math.Ln2) / math.Log(float64(support-1))
	return mathx.Clamp(bound, 0, 1), nil
}

// ReconstructionReport bundles the attack-vs-limits comparison for one
// channel.
type ReconstructionReport struct {
	// PriorAccuracy is the best blind guess (prior Bayes vulnerability).
	PriorAccuracy float64
	// BayesAccuracy is the optimal adversary's success probability.
	BayesAccuracy float64
	// FanoErrorLB lower-bounds any adversary's error probability.
	FanoErrorLB float64
	// MutualInformationNats is I(Ẑ;θ).
	MutualInformationNats float64
	// InputEntropyNats is H(Ẑ).
	InputEntropyNats float64
}

// Reconstruction computes the full report. Consistency invariants:
// BayesAccuracy ≥ PriorAccuracy, and BayesAccuracy ≤ 1 − FanoErrorLB.
func (c *Channel) Reconstruction() (*ReconstructionReport, error) {
	px := c.linearPX()
	prior, err := infotheory.BayesVulnerability(px)
	if err != nil {
		return nil, err
	}
	bayes, err := c.BayesReconstructionAccuracy()
	if err != nil {
		return nil, err
	}
	fano, err := c.FanoErrorLowerBound()
	if err != nil {
		return nil, err
	}
	mi, err := c.MutualInformation()
	if err != nil {
		return nil, err
	}
	hIn, err := infotheory.Entropy(px)
	if err != nil {
		return nil, err
	}
	return &ReconstructionReport{
		PriorAccuracy:         prior,
		BayesAccuracy:         bayes,
		FanoErrorLB:           fano,
		MutualInformationNats: mi,
		InputEntropyNats:      hIn,
	}, nil
}
