package channel

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestReconstructionIdentityChannel(t *testing.T) {
	// A noiseless channel over 4 equally-likely inputs: the adversary
	// always wins, Fano's bound is 0.
	logPX := make([]float64, 4)
	rows := make([][]float64, 4)
	for i := range rows {
		logPX[i] = math.Log(0.25)
		rows[i] = make([]float64, 4)
		for j := range rows[i] {
			if i == j {
				rows[i][j] = 0
			} else {
				rows[i][j] = math.Inf(-1)
			}
		}
	}
	ch, err := New(logPX, rows)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ch.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(rep.BayesAccuracy, 1, 1e-12) {
		t.Errorf("noiseless accuracy = %v", rep.BayesAccuracy)
	}
	if rep.FanoErrorLB != 0 {
		t.Errorf("Fano bound on noiseless channel = %v", rep.FanoErrorLB)
	}
	if !mathx.AlmostEqual(rep.PriorAccuracy, 0.25, 1e-12) {
		t.Errorf("prior accuracy = %v", rep.PriorAccuracy)
	}
}

func TestReconstructionConstantChannel(t *testing.T) {
	// A constant channel: adversary can do no better than the prior, and
	// Fano forces high error.
	k := 8
	logPX := make([]float64, k)
	rows := make([][]float64, k)
	for i := range rows {
		logPX[i] = -math.Log(float64(k))
		rows[i] = []float64{0} // single output
	}
	ch, err := New(logPX, rows)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ch.Reconstruction()
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(rep.BayesAccuracy, 1.0/float64(k), 1e-12) {
		t.Errorf("constant-channel accuracy = %v", rep.BayesAccuracy)
	}
	// Fano: error ≥ (ln8 − 0 − ln2)/ln7 = ln4/ln7 ≈ 0.712.
	want := math.Log(4) / math.Log(7)
	if !mathx.AlmostEqual(rep.FanoErrorLB, want, 1e-9) {
		t.Errorf("Fano = %v, want %v", rep.FanoErrorLB, want)
	}
	// Consistency: accuracy ≤ 1 − Fano error bound.
	if rep.BayesAccuracy > 1-rep.FanoErrorLB+1e-9 {
		t.Error("Bayes accuracy violates Fano")
	}
}

func TestReconstructionGibbsChannelInvariants(t *testing.T) {
	// On real Gibbs channels across λ: accuracy grows with λ, always
	// sandwiched between the prior and the Fano cap.
	inputs, logPX := CountSampleSpace(10, 0.5)
	prevAcc := 0.0
	for _, lambda := range []float64{0.5, 4, 32, 256} {
		est := meanEstimator(t, lambda, 7)
		ch, err := FromMechanism(inputs, logPX, est)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ch.Reconstruction()
		if err != nil {
			t.Fatal(err)
		}
		if rep.BayesAccuracy < rep.PriorAccuracy-1e-12 {
			t.Fatalf("adversary below blind guessing at λ=%v", lambda)
		}
		if rep.BayesAccuracy > 1-rep.FanoErrorLB+1e-9 {
			t.Fatalf("Fano violated at λ=%v: acc %v, error LB %v", lambda, rep.BayesAccuracy, rep.FanoErrorLB)
		}
		if rep.BayesAccuracy < prevAcc-1e-9 {
			t.Fatalf("reconstruction accuracy decreased with λ: %v after %v", rep.BayesAccuracy, prevAcc)
		}
		prevAcc = rep.BayesAccuracy
		if rep.MutualInformationNats > rep.InputEntropyNats+1e-9 {
			t.Fatal("MI exceeds input entropy")
		}
	}
}

func TestFanoDegenerate(t *testing.T) {
	// Single-input channel: degenerate.
	ch, err := New([]float64{0}, [][]float64{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.FanoErrorLowerBound(); err != ErrDegenerateChannel {
		t.Errorf("expected ErrDegenerateChannel, got %v", err)
	}
	// Two-input channel: vacuous bound 0, no error.
	ch2, err := New([]float64{math.Log(0.5), math.Log(0.5)}, [][]float64{{0}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ch2.FanoErrorLowerBound()
	if err != nil || b != 0 {
		t.Errorf("two-input Fano = %v, %v", b, err)
	}
}
