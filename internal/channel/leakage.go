package channel

import (
	"math"

	"repro/internal/infotheory"
	"repro/internal/parallel"
)

// linearRows converts the channel's log rows to the linear domain,
// fanning rows out across workers (element-wise, worker-count
// independent).
func (c *Channel) linearRows() [][]float64 {
	rows := make([][]float64, c.NumInputs())
	parallel.ForGrain(c.NumInputs(), rowGrain, c.Parallel, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := c.Rows[i]
			rows[i] = make([]float64, len(r))
			for j, lv := range r {
				rows[i][j] = math.Exp(lv)
			}
		}
	})
	return rows
}

// linearPX converts the channel's input log-distribution to the linear
// domain.
func (c *Channel) linearPX() []float64 {
	px := make([]float64, len(c.LogPX))
	for i, lp := range c.LogPX {
		px[i] = math.Exp(lp)
	}
	return px
}

// MinEntropyLeakage returns the Alvim-et-al. min-entropy leakage of the
// channel under its attached input distribution, in nats: the log of the
// multiplicative increase in an adversary's one-try success probability
// at guessing the sample Ẑ after seeing the predictor θ.
func (c *Channel) MinEntropyLeakage() (float64, error) {
	return infotheory.MinEntropyLeakage(c.linearPX(), c.linearRows())
}

// MinEntropyCapacity returns the maximum min-entropy leakage over input
// distributions, in nats.
func (c *Channel) MinEntropyCapacity() (float64, error) {
	return infotheory.MinEntropyCapacity(c.linearRows())
}

// BayesVulnerabilities returns the adversary's prior and posterior
// one-try success probabilities at guessing the sample.
func (c *Channel) BayesVulnerabilities() (prior, posterior float64, err error) {
	px := c.linearPX()
	prior, err = infotheory.BayesVulnerability(px)
	if err != nil {
		return 0, 0, err
	}
	posterior, err = infotheory.PosteriorVulnerability(px, c.linearRows())
	if err != nil {
		return 0, 0, err
	}
	return prior, posterior, nil
}
