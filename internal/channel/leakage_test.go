package channel

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestChannelMinEntropyLeakage(t *testing.T) {
	est := meanEstimator(t, 8, 5)
	inputs, logPX := CountSampleSpace(6, 0.5)
	ch, err := FromMechanism(inputs, logPX, est)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ch.MinEntropyLeakage()
	if err != nil {
		t.Fatal(err)
	}
	cap_, err := ch.MinEntropyCapacity()
	if err != nil {
		t.Fatal(err)
	}
	if l < 0 || l > cap_+1e-9 {
		t.Errorf("leakage %v outside [0, capacity %v]", l, cap_)
	}
	prior, post, err := ch.BayesVulnerabilities()
	if err != nil {
		t.Fatal(err)
	}
	if post < prior-1e-12 || post > 1 {
		t.Errorf("vulnerabilities: prior %v, post %v", prior, post)
	}
	// Leakage definition consistency: L = ln(post/prior).
	if !mathx.AlmostEqual(l, math.Log(post/prior), 1e-9) {
		t.Errorf("leakage %v != ln(post/prior) %v", l, math.Log(post/prior))
	}
}

func TestMinEntropyLeakageMonotoneInLambda(t *testing.T) {
	// Like Shannon MI, min-entropy leakage should grow as privacy weakens.
	inputs, logPX := CountSampleSpace(8, 0.5)
	prev := -1.0
	for _, lambda := range []float64{0.5, 2, 8, 32} {
		est := meanEstimator(t, lambda, 5)
		ch, err := FromMechanism(inputs, logPX, est)
		if err != nil {
			t.Fatal(err)
		}
		l, err := ch.MinEntropyLeakage()
		if err != nil {
			t.Fatal(err)
		}
		if l < prev-1e-9 {
			t.Errorf("min-entropy leakage decreased with lambda: %v after %v", l, prev)
		}
		prev = l
	}
}
