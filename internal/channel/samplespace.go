package channel

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
)

// BinarySampleSpace enumerates the full sample space {0,1}^n of binary
// datasets together with their log-probabilities under i.i.d.
// Bernoulli(p) records. It panics for n > 20 (2^20 datasets is the
// practical ceiling for exact channel work).
func BinarySampleSpace(n int, p float64) ([]*dataset.Dataset, []float64) {
	if n <= 0 || n > 20 {
		panic("channel: BinarySampleSpace requires 1 <= n <= 20")
	}
	if p < 0 || p > 1 {
		panic("channel: BinarySampleSpace requires p in [0,1]")
	}
	total := 1 << n
	inputs := make([]*dataset.Dataset, total)
	logPX := make([]float64, total)
	bt := dataset.BernoulliTable{P: p}
	for mask := 0; mask < total; mask++ {
		bits := make([]int, n)
		ones := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				bits[i] = 1
				ones++
			}
		}
		inputs[mask] = bt.FromBits(bits)
		logPX[mask] = mathx.XLogY(float64(ones), p) + mathx.XLogY(float64(n-ones), 1-p)
	}
	return inputs, logPX
}

// CountSampleSpace enumerates the collapsed sample space of binary
// datasets grouped by their count of ones (a sufficient statistic for
// exchangeable learners): n+1 representative datasets with Binomial(n, p)
// log-probabilities. Exchangeability must hold for the learner being
// analyzed — i.e. its posterior must depend on the data only through the
// count — or the collapsed channel under-reports the true MI.
func CountSampleSpace(n int, p float64) ([]*dataset.Dataset, []float64) {
	if n <= 0 {
		panic("channel: CountSampleSpace requires n >= 1")
	}
	if p < 0 || p > 1 {
		panic("channel: CountSampleSpace requires p in [0,1]")
	}
	bt := dataset.BernoulliTable{P: p}
	inputs := make([]*dataset.Dataset, n+1)
	logPX := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		bits := make([]int, n)
		for i := 0; i < k; i++ {
			bits[i] = 1
		}
		inputs[k] = bt.FromBits(bits)
		logPX[k] = bt.LogPMFOfCount(n, k)
	}
	return inputs, logPX
}

// RateDistortionChannel minimizes the Section-4 objective
//
//	J(W) = E_{Ẑ,θ} risk[Ẑ][θ] + (1/λ)·I(Ẑ;θ)
//
// over all channels W by alternating minimization (the classical
// Blahut–Arimoto rate–distortion iteration with distortion = risk and
// slope 1/λ):
//
//	marginal m(θ) ← Σᵢ p(Ẑᵢ)·W(θ|Ẑᵢ)
//	W(θ|Ẑᵢ)      ← m(θ)·exp(−λ·risk[i][θ]) / Z(i)
//
// The update step IS a Gibbs posterior with prior m — so the algorithm's
// fixed point is a Gibbs channel whose prior is its own output marginal,
// which is exactly the self-consistent optimum of Theorem 4.2
// (π_OPT = E_Ẑ π̂). It returns the optimized channel and the final
// objective value.
func RateDistortionChannel(risks [][]float64, logPX []float64, lambda float64, iters int, tol float64) (*Channel, float64, error) {
	if len(risks) == 0 || len(risks) != len(logPX) || lambda <= 0 || iters <= 0 {
		return nil, 0, ErrBadChannel
	}
	nOut := len(risks[0])
	for _, r := range risks {
		if len(r) != nOut {
			return nil, 0, ErrBadChannel
		}
	}
	px, logZ := mathx.LogNormalize(logPX)
	if math.IsInf(logZ, -1) {
		return nil, 0, ErrBadChannel
	}
	// Initialize with the uniform channel.
	rows := make([][]float64, len(px))
	for i := range rows {
		rows[i] = make([]float64, nOut)
		u := -math.Log(float64(nOut))
		for j := range rows[i] {
			rows[i][j] = u
		}
	}
	ch := &Channel{LogPX: px, Rows: rows}
	prev := math.Inf(1)
	var obj float64
	for it := 0; it < iters; it++ {
		marginal := ch.OutputMarginalLog()
		for i := range rows {
			for j := 0; j < nOut; j++ {
				rows[i][j] = marginal[j] - lambda*risks[i][j]
			}
			normalized, _ := mathx.LogNormalize(rows[i])
			rows[i] = normalized
		}
		ch.Rows = rows
		var err error
		obj, err = ch.Objective(risks, lambda)
		if err != nil {
			return nil, 0, err
		}
		if prev-obj < tol {
			break
		}
		prev = obj
	}
	return ch, obj, nil
}
