// Package checkpoint persists per-cell sweep results as an append-only
// NDJSON log so an interrupted experiment can resume without repeating
// finished work.
//
// Each entry is one line: {"cell":k,"seed":s,"result":...}. The key is
// the pair (cell index, RNG split-seed fingerprint): the seed is a
// deterministic function of (sweep seed, cell index), so a stale log —
// from a different seed, grid, or experiment — simply misses on lookup
// and the cell is recomputed. Results round-trip through encoding/json,
// which renders float64 with the shortest form that parses back to the
// identical bits, so a resumed sweep's merged output is bit-identical
// to an uninterrupted run.
//
// Crash tolerance: entries are written with a single Write syscall per
// line, so a killed process loses at most the line in flight. Open with
// resume=true skips any torn or corrupt trailing lines instead of
// failing, and the interrupted cells rerun.
//
// All methods are safe for concurrent use and nil-safe: a nil *Log
// never matches on Lookup and discards Puts, so sweep code needs no
// checkpoint-enabled branch.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// ErrWrite reports a failure to persist a checkpoint entry. Sweeps
// surface it per-cell: the computed result is still returned in memory,
// but the run cannot promise resumability for that cell.
var ErrWrite = errors.New("checkpoint: write failed")

// entry is one NDJSON line.
type entry struct {
	Cell   int             `json:"cell"`
	Seed   int64           `json:"seed"`
	Result json.RawMessage `json:"result"`
}

// key identifies an entry: the cell index plus its RNG fingerprint.
type key struct {
	cell int
	seed int64
}

// Log is an open checkpoint file.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[key]json.RawMessage
}

// Open creates (or, with resume, reopens) the checkpoint log at path.
// With resume=false an existing file is truncated: the run starts
// fresh. With resume=true existing well-formed entries become lookup
// hits; torn or corrupt lines — the signature of a killed writer — are
// skipped, not fatal.
func Open(path string, resume bool) (*Log, error) {
	flags := os.O_CREATE | os.O_RDWR
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, done: make(map[key]json.RawMessage)}
	if resume {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
		for sc.Scan() {
			var e entry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				continue // torn tail or corruption: recompute that cell
			}
			l.done[key{cell: e.Cell, seed: e.Seed}] = e.Result
		}
		if err := sc.Err(); err != nil {
			_ = f.Close() // the read/seek error supersedes
			return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
		}
		// Leave the offset at EOF so appended entries follow the survivors,
		// and terminate a torn final line so the next entry starts fresh
		// instead of concatenating onto the partial bytes.
		end, err := f.Seek(0, 2)
		if err != nil {
			_ = f.Close() // the read/seek error supersedes
			return nil, fmt.Errorf("checkpoint: seek %s: %w", path, err)
		}
		if end > 0 {
			last := make([]byte, 1)
			if _, err := f.ReadAt(last, end-1); err != nil {
				_ = f.Close() // the read/seek error supersedes
				return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
			}
			if last[0] != '\n' {
				if _, err := f.Write([]byte("\n")); err != nil {
					_ = f.Close() // the read/seek error supersedes
					return nil, fmt.Errorf("checkpoint: repair %s: %w", path, err)
				}
			}
		}
	}
	return l, nil
}

// Path returns the log's file path ("" on a nil log).
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Len returns the number of recorded entries.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.done)
}

// Lookup returns the saved result for (cell, seed), if any.
func (l *Log) Lookup(cell int, seed int64) (json.RawMessage, bool) {
	if l == nil {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	raw, ok := l.done[key{cell: cell, seed: seed}]
	return raw, ok
}

// Put persists the result for (cell, seed): one marshaled NDJSON line,
// one Write syscall. Marshal or I/O failures wrap ErrWrite.
func (l *Log) Put(cell int, seed int64, result any) error {
	if l == nil {
		return nil
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("%w: marshal cell %d: %v", ErrWrite, cell, err)
	}
	line, err := json.Marshal(entry{Cell: cell, Seed: seed, Result: raw})
	if err != nil {
		return fmt.Errorf("%w: marshal cell %d: %v", ErrWrite, cell, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("%w: cell %d: %v", ErrWrite, cell, err)
	}
	l.done[key{cell: cell, seed: seed}] = raw
	return nil
}

// Close releases the underlying file. Lookup keeps working on the
// in-memory index; Put fails after Close.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
