package checkpoint

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type cellResult struct {
	Gibbs float64 `json:"gibbs"`
	Out   float64 `json:"out"`
}

// TestRoundTripBitExact pins the property the resume contract rests on:
// a float64 survives the JSON round trip bit-for-bit.
func TestRoundTripBitExact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ndjson")
	l, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0.1, 1.0 / 3.0, math.Pi, 1e-308, math.Nextafter(1, 2)}
	for i, v := range vals {
		if err := l.Put(i, int64(100+i), cellResult{Gibbs: v, Out: -v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(vals) {
		t.Fatalf("resumed %d entries, want %d", r.Len(), len(vals))
	}
	for i, v := range vals {
		raw, ok := r.Lookup(i, int64(100+i))
		if !ok {
			t.Fatalf("cell %d missing", i)
		}
		var got cellResult
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Gibbs) != math.Float64bits(v) {
			t.Fatalf("cell %d: %x != %x", i, math.Float64bits(got.Gibbs), math.Float64bits(v))
		}
	}
}

// TestSeedMismatchMisses pins the fingerprint check: an entry saved
// under a different seed (stale log from another run) never matches.
func TestSeedMismatchMisses(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "ck.ndjson"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Put(0, 42, 1.5); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Lookup(0, 43); ok {
		t.Fatal("lookup matched across seeds")
	}
	if _, ok := l.Lookup(1, 42); ok {
		t.Fatal("lookup matched across cells")
	}
}

// TestTornTailSkipped pins crash tolerance: a partial trailing line (a
// killed writer) is skipped on resume, and appends land after the
// survivors.
func TestTornTailSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ndjson")
	l, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Put(0, 7, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"cell":1,"seed":8,"res`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	r, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("want 1 surviving entry, got %d", r.Len())
	}
	if err := r.Put(1, 8, 0.5); err != nil {
		t.Fatal(err)
	}
	r.Close()
	// The appended entry must survive a second resume despite the torn
	// bytes in the middle of the file.
	r2, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.Lookup(1, 8); !ok {
		t.Fatal("entry appended after a torn tail was lost")
	}
}

// TestTruncateOnFreshOpen pins that resume=false starts clean.
func TestTruncateOnFreshOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ndjson")
	l, _ := Open(path, false)
	if err := l.Put(0, 1, 2.0); err != nil {
		t.Fatal(err)
	}
	l.Close()
	f, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != 0 {
		t.Fatalf("fresh open kept %d entries", f.Len())
	}
}

// TestNilLogIsInert pins nil-safety: sweeps run checkpoint-free on a
// nil *Log with no branches.
func TestNilLogIsInert(t *testing.T) {
	var l *Log
	if _, ok := l.Lookup(0, 0); ok {
		t.Fatal("nil lookup hit")
	}
	if err := l.Put(0, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 || l.Path() != "" {
		t.Fatal("nil log not inert")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPutAfterCloseIsErrWrite pins the typed write failure.
func TestPutAfterCloseIsErrWrite(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "ck.ndjson"), false)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Put(0, 1, 2.0); !errors.Is(err, ErrWrite) {
		t.Fatalf("want ErrWrite, got %v", err)
	}
	// NaN cannot be marshaled: also a typed write failure.
	l2, err := Open(filepath.Join(t.TempDir(), "ck2.ndjson"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Put(0, 1, math.NaN()); !errors.Is(err, ErrWrite) {
		t.Fatalf("NaN put: want ErrWrite, got %v", err)
	}
}

// TestConcurrentPuts exercises the mutex under -race.
func TestConcurrentPuts(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "ck.ndjson"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cell := w*50 + i
				if err := l.Put(cell, int64(cell), float64(cell)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 400 {
		t.Fatalf("want 400 entries, got %d", l.Len())
	}
}
