// Package core assembles the paper's contribution into a single
// user-facing API: a differentially-private learner that
//
//  1. calibrates a Gibbs posterior (= exponential mechanism with quality
//     −R̂) to a requested privacy budget ε via Theorem 4.1,
//  2. certifies the released predictor's true risk with Catoni's
//     PAC-Bayes bound (Theorem 3.1), and
//  3. accounts for the information leaked about the sample — the mutual
//     information I(Ẑ;θ) of the induced channel (Theorem 4.2, Figure 1) —
//     exactly on enumerable sample spaces.
//
// A Learner is configured once (loss, predictor space, prior, budget) and
// can then fit any number of datasets; each Fit spends ε on the dataset
// it touches (compose budgets with mechanism.Accountant when fitting the
// same data repeatedly).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/pacbayes"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// ErrBadConfig is returned when a Learner is misconfigured.
var ErrBadConfig = errors.New("core: invalid learner configuration")

// Config describes a private learning problem.
type Config struct {
	// Loss must be bounded (Loss.Bound() < ∞); wrap unbounded losses with
	// learn.ClippedLoss.
	Loss learn.Loss
	// Thetas is the finite predictor space Θ.
	Thetas [][]float64
	// LogPrior is an optional normalized log-prior over Thetas (nil =
	// uniform).
	LogPrior []float64
	// Epsilon is the differential-privacy budget for one Fit.
	Epsilon float64
	// Delta is the PAC-Bayes confidence parameter for the risk
	// certificate (default 0.05 when zero).
	Delta float64
	// Acct optionally accumulates the privacy cost of every Fit (compose
	// repeated fits on the same data with mechanism.Accountant's
	// composition queries). Nil skips accounting.
	Acct *mechanism.Accountant
	// Parallel controls worker fan-out for every hot path of the learner
	// (risk grids, posterior reductions, channel sums, capacity
	// iteration). The zero value uses all CPUs; Workers == 1 forces
	// serial execution. Every setting produces bit-identical results —
	// see package parallel for the determinism contract.
	Parallel parallel.Options
	// Degrade selects what Fit does when Acct's budget cannot admit the
	// planned release (see DegradePolicy). The zero value refuses.
	// Irrelevant unless Acct has a budget set.
	Degrade DegradePolicy
}

// Learner is a configured private learner. Its configuration is
// immutable and it is safe for concurrent use with per-goroutine RNGs.
// Internally it memoizes risk vectors by dataset fingerprint, so Fit,
// Certify, and AccountInformation on the same data evaluate the
// O(|Θ|·n) risk grid once, and it remembers the most recent successful
// fit so DegradeFallback can re-release it when the budget runs out;
// both caches are mutex-guarded and change no result.
type Learner struct {
	cfg   Config
	cache *gibbs.RiskCache

	mu      sync.Mutex
	lastFit *Fitted
}

// NewLearner validates the configuration.
func NewLearner(cfg Config) (*Learner, error) {
	if cfg.Loss == nil || len(cfg.Thetas) == 0 {
		return nil, ErrBadConfig
	}
	if math.IsInf(cfg.Loss.Bound(), 1) || cfg.Loss.Bound() <= 0 {
		return nil, fmt.Errorf("%w: loss must be bounded (wrap with learn.ClippedLoss)", ErrBadConfig)
	}
	if cfg.Epsilon <= 0 || math.IsNaN(cfg.Epsilon) {
		return nil, fmt.Errorf("%w: epsilon must be positive", ErrBadConfig)
	}
	if cfg.LogPrior != nil && len(cfg.LogPrior) != len(cfg.Thetas) {
		return nil, fmt.Errorf("%w: prior/predictor-space length mismatch", ErrBadConfig)
	}
	if cfg.Delta < 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("%w: delta must lie in [0, 1)", ErrBadConfig)
	}
	if cfg.Delta == 0 { //dplint:ignore floateq config sentinel: an unset Delta field is the exact zero value
		cfg.Delta = 0.05
	}
	return &Learner{cfg: cfg, cache: gibbs.NewRiskCache()}, nil
}

// Epsilon returns the configured per-Fit privacy budget.
func (l *Learner) Epsilon() float64 { return l.cfg.Epsilon }

// Estimator returns the Gibbs estimator calibrated to the configured ε
// for samples of size n (λ = ε·n / (2M), Theorem 4.1 inverted).
func (l *Learner) Estimator(n int) (*gibbs.Estimator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: sample size must be positive", ErrBadConfig)
	}
	lambda := gibbs.LambdaForEpsilon(l.cfg.Epsilon, l.cfg.Loss, n)
	est, err := gibbs.New(l.cfg.Loss, l.cfg.Thetas, l.cfg.LogPrior, lambda)
	if err != nil {
		return nil, err
	}
	// Risks depend only on (Loss, Thetas, data) — not on λ — so every
	// estimator this learner calibrates can share one cache.
	est.Parallel = l.cfg.Parallel
	est.Cache = l.cache
	return est, nil
}

// Certificate bundles everything the learner can prove about one Fit.
type Certificate struct {
	// Privacy is the Theorem 4.1 differential-privacy guarantee.
	Privacy mechanism.Guarantee
	// Lambda is the Gibbs inverse temperature used.
	Lambda float64
	// RiskBound bounds the posterior's expected TRUE risk (rescaled to
	// the loss's [0, M] range) with probability ≥ 1−Delta over samples —
	// Catoni's bound, Theorem 3.1.
	RiskBound float64
	// Delta is the confidence parameter of RiskBound.
	Delta float64
	// ExpEmpRisk is the posterior-expected empirical risk E_π̂ R̂.
	ExpEmpRisk float64
	// KL is KL(π̂ ‖ π) in nats.
	KL float64
}

// Fitted is the outcome of one private fit.
type Fitted struct {
	// Theta is the privately selected predictor.
	Theta []float64
	// Index is its position in the predictor space.
	Index int
	// Certificate carries the privacy and risk guarantees.
	Certificate Certificate
	// Degraded reports that the budget could not admit the configured
	// release and Policy was applied instead: a cached re-release
	// (DegradeFallback, no new ε spent) or a widened posterior
	// (DegradeWiden, the remaining ε spent).
	Degraded bool
	// Policy is the degradation policy in effect for this fit — the
	// learner's configured policy, or the per-call override passed to
	// FitPolicyCtx.
	Policy DegradePolicy
}

// Fit privately selects a predictor from d by sampling the calibrated
// Gibbs posterior, and returns it with its certificates. The release is
// registered with the accountant as a full ledger record — mechanism
// kind, ΔR̂ sensitivity, |Θ|, and clocked duration — and the whole fit
// runs under a "fit" trace span when an observer is wired. Fit is
// FitCtx under context.Background(): dataset and risk values are
// validated finite before any ε is spent, and the spend goes through
// the accountant's two-phase Reserve/Commit protocol, honoring a
// configured budget and DegradePolicy.
func (l *Learner) Fit(d *dataset.Dataset, g *rng.RNG) (*Fitted, error) {
	return l.FitCtx(context.Background(), d, g)
}

// certificateFromStats assembles the certificate from computed
// PAC-Bayes statistics.
func (l *Learner) certificateFromStats(est *gibbs.Estimator, d *dataset.Dataset, st pacbayes.PosteriorStats) (Certificate, error) {
	m := l.cfg.Loss.Bound()
	// Catoni's bound works on [0,1] losses; rescale.
	bound01, err := pacbayes.CatoniBound(st.ExpEmpRisk/m, st.KL, est.Lambda*m, d.Len(), l.cfg.Delta)
	if err != nil {
		return Certificate{}, err
	}
	return Certificate{
		Privacy:    est.Guarantee(d.Len()),
		Lambda:     est.Lambda,
		RiskBound:  bound01 * m,
		Delta:      l.cfg.Delta,
		ExpEmpRisk: st.ExpEmpRisk,
		KL:         st.KL,
	}, nil
}

// Certify evaluates the certificates without sampling (no privacy is
// spent by computing the certificate alone, since it is not released).
func (l *Learner) Certify(d *dataset.Dataset) (Certificate, error) {
	return l.CertifyCtx(context.Background(), d)
}

// InformationAccount computes the exact Figure-1 channel of this learner
// over an enumerable sample space and reports its leakage.
type InformationAccount struct {
	// MutualInformation is I(Ẑ;θ) in nats under the given sample
	// distribution.
	MutualInformation float64
	// Capacity is the channel's Shannon capacity in nats (max leakage
	// over sample distributions).
	Capacity float64
	// DPCap is the trivial ε·diam cap implied by the privacy guarantee.
	DPCap float64
	// ExpectedRisk is E_{Ẑ,θ} R̂_Ẑ(θ) over the channel.
	ExpectedRisk float64
}

// AccountInformation enumerates the learner's channel over the given
// sample-space points (all of size n) with log input masses logPX.
func (l *Learner) AccountInformation(inputs []*dataset.Dataset, logPX []float64) (*InformationAccount, error) {
	return l.AccountInformationCtx(context.Background(), inputs, logPX)
}
