package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func classifierConfig(epsilon float64) Config {
	grid := learn.NewGrid(-2, 2, 1, 17)
	return Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: epsilon,
	}
}

func TestNewLearnerValidation(t *testing.T) {
	grid := learn.NewGrid(-1, 1, 1, 3)
	cases := []Config{
		{},
		{Loss: learn.ZeroOneLoss{}, Epsilon: 1}, // no thetas
		{Loss: learn.SquaredLoss{}, Thetas: grid.Thetas(), Epsilon: 1},                         // unbounded loss
		{Loss: learn.ZeroOneLoss{}, Thetas: grid.Thetas(), Epsilon: 0},                         // no budget
		{Loss: learn.ZeroOneLoss{}, Thetas: grid.Thetas(), Epsilon: 1, LogPrior: []float64{0}}, // prior length
		{Loss: learn.ZeroOneLoss{}, Thetas: grid.Thetas(), Epsilon: 1, Delta: 1.5},             // delta
	}
	for i, cfg := range cases {
		if _, err := NewLearner(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: expected ErrBadConfig, got %v", i, err)
		}
	}
	l, err := NewLearner(classifierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if l.Epsilon() != 1 {
		t.Error("Epsilon accessor")
	}
}

func TestFitCertificates(t *testing.T) {
	g := rng.New(1)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	d := model.Generate(300, g)
	l, err := NewLearner(classifierConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := l.Fit(d, g)
	if err != nil {
		t.Fatal(err)
	}
	c := fit.Certificate
	if !mathx.AlmostEqual(c.Privacy.Epsilon, 2, 1e-9) {
		t.Errorf("privacy certificate = %v, want exactly the budget", c.Privacy.Epsilon)
	}
	if !mathx.AlmostEqual(c.Lambda, 2*300.0/2, 1e-9) {
		t.Errorf("lambda = %v, want εn/2M = 300", c.Lambda)
	}
	if c.Delta != 0.05 {
		t.Errorf("default delta = %v", c.Delta)
	}
	if c.RiskBound <= 0 || c.RiskBound > 1 {
		t.Errorf("risk bound = %v out of (0, 1] for 0-1 loss", c.RiskBound)
	}
	if c.ExpEmpRisk < 0 || c.ExpEmpRisk > 1 || c.KL < 0 {
		t.Errorf("stats: %+v", c)
	}
	// The bound must dominate the posterior-expected empirical risk
	// asymptotically; at n=300 with λ=300 it must at least exceed it.
	if c.RiskBound < c.ExpEmpRisk {
		t.Errorf("risk bound %v below empirical risk %v", c.RiskBound, c.ExpEmpRisk)
	}
	if len(fit.Theta) != 1 || fit.Index < 0 || fit.Index >= 17 {
		t.Errorf("fitted predictor malformed: %+v", fit)
	}
}

func TestFitEndToEndPrivacy(t *testing.T) {
	// The learner's end-to-end release must satisfy exactly its ε budget.
	epsilon := 0.8
	l, err := NewLearner(classifierConfig(epsilon))
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	est, err := l.Estimator(n)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(3)
	model := dataset.LogisticModel{Weights: []float64{2}}
	gen := func(h *rng.RNG) *dataset.Dataset { return model.Generate(n, h) }
	pairs := audit.RandomNeighborPairs(gen, 150, g)
	got := audit.ExactAudit(est, pairs)
	if got > epsilon+1e-9 {
		t.Errorf("audited ε̂ = %v exceeds budget %v", got, epsilon)
	}
}

func TestFitUtilityImprovesWithEpsilon(t *testing.T) {
	// More budget → better predictor (on average).
	g := rng.New(5)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	train := model.Generate(400, g)
	test := model.Generate(4000, g)
	avgErr := func(eps float64) float64 {
		l, err := NewLearner(classifierConfig(eps))
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		const reps = 30
		for r := 0; r < reps; r++ {
			fit, err := l.Fit(train, g)
			if err != nil {
				t.Fatal(err)
			}
			total += learn.ClassificationError(fit.Theta, test)
		}
		return total / reps
	}
	// Note: for a 1-D sign classifier all θ > 0 are equivalent, so the
	// utility gap only appears once the posterior spreads onto θ ≤ 0 —
	// which requires a very small λ = εn/2, hence the tiny weak budget.
	weak := avgErr(0.005)
	strong := avgErr(5)
	if strong >= weak {
		t.Errorf("ε=5 error %v not better than ε=0.005 error %v", strong, weak)
	}
	if strong > 0.3 {
		t.Errorf("ε=5 error %v unexpectedly bad", strong)
	}
}

func TestCertifyMatchesFit(t *testing.T) {
	g := rng.New(7)
	d := dataset.LogisticModel{Weights: []float64{1}}.Generate(100, g)
	l, err := NewLearner(classifierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := l.Certify(d)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := l.Fit(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != fit.Certificate {
		t.Error("Certify must equal the certificate attached by Fit")
	}
	if _, err := l.Certify(&dataset.Dataset{}); !errors.Is(err, ErrBadConfig) {
		t.Error("empty dataset")
	}
}

func TestAccountInformation(t *testing.T) {
	// Mean-estimation learner over binary data: leakage must respect
	// MI ≤ capacity ≤ ε·n.
	grid := [][]float64{{0}, {0.25}, {0.5}, {0.75}, {1}}
	l, err := NewLearner(Config{
		Loss:    learn.NewClippedLoss(learn.AbsoluteLoss{}, 1),
		Thetas:  grid,
		Epsilon: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	// Build binary mean-estimation sample space: x is the record, y = x.
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	for _, d := range inputs {
		for i := range d.Examples {
			d.Examples[i].Y = d.Examples[i].X[0]
		}
	}
	acct, err := l.AccountInformation(inputs, logPX)
	if err != nil {
		t.Fatal(err)
	}
	if acct.MutualInformation <= 0 {
		t.Errorf("MI = %v", acct.MutualInformation)
	}
	if acct.MutualInformation > acct.Capacity+1e-6 {
		t.Errorf("MI %v > capacity %v", acct.MutualInformation, acct.Capacity)
	}
	if acct.Capacity > acct.DPCap+1e-6 {
		t.Errorf("capacity %v > DP cap %v", acct.Capacity, acct.DPCap)
	}
	if !mathx.AlmostEqual(acct.DPCap, 1.5*float64(n), 1e-9) {
		t.Errorf("DPCap = %v", acct.DPCap)
	}
	if acct.ExpectedRisk <= 0 || acct.ExpectedRisk > 1 {
		t.Errorf("expected risk = %v", acct.ExpectedRisk)
	}
}

func TestAccountInformationValidation(t *testing.T) {
	l, _ := NewLearner(classifierConfig(1))
	if _, err := l.AccountInformation(nil, nil); !errors.Is(err, ErrBadConfig) {
		t.Error("empty space")
	}
	d1 := dataset.BernoulliTable{}.FromBits([]int{0, 1})
	d2 := dataset.BernoulliTable{}.FromBits([]int{0})
	if _, err := l.AccountInformation([]*dataset.Dataset{d1, d2}, []float64{0, 0}); !errors.Is(err, ErrBadConfig) {
		t.Error("size mismatch")
	}
}

func TestPrivateHistogramDensity(t *testing.T) {
	g := rng.New(11)
	mix := dataset.GaussianMixture{Means: []float64{-1, 1}, Sigmas: []float64{0.3, 0.3}, Weights: []float64{1, 1}}
	d := mix.Generate(5000, g)
	priv, err := PrivateHistogramDensity(d, 0, 40, -3, 3, 2, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	// Integrates to 1.
	w := 6.0 / 40
	var integral float64
	for _, v := range priv.Density {
		if v < 0 {
			t.Fatal("negative density")
		}
		integral += v * w
	}
	if !mathx.AlmostEqual(integral, 1, 1e-9) {
		t.Errorf("integral = %v", integral)
	}
	// Close to the non-private histogram at this n and ε.
	nonPriv, err := NonPrivateHistogramDensity(d, 0, 40, -3, 3)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := priv.L1Distance(nonPriv)
	if err != nil {
		t.Fatal(err)
	}
	if l1 > 0.1 {
		t.Errorf("L1 to non-private = %v", l1)
	}
	// At() sanity: density near a mode should exceed density in the gap.
	if priv.At(-1) <= priv.At(0) {
		t.Errorf("mode density %v not above valley %v", priv.At(-1), priv.At(0))
	}
	if priv.At(-10) != 0 || priv.At(10) != 0 {
		t.Error("outside support must be 0")
	}
}

func TestPrivateHistogramDensityDegenerate(t *testing.T) {
	if _, err := PrivateHistogramDensity(&dataset.Dataset{}, 0, 4, 0, 1, 1, nil, rng.New(1)); !errors.Is(err, ErrBadConfig) {
		t.Error("empty dataset")
	}
}

func TestL1DistanceErrors(t *testing.T) {
	a := &DensityEstimate{Lo: 0, Hi: 1, Density: []float64{1}}
	b := &DensityEstimate{Lo: 0, Hi: 2, Density: []float64{0.5}}
	if _, err := a.L1Distance(b); err == nil {
		t.Error("mismatched supports must error")
	}
	c := &DensityEstimate{Lo: 0, Hi: 1, Density: []float64{1}}
	d, err := a.L1Distance(c)
	if err != nil || d != 0 {
		t.Errorf("self distance = %v, %v", d, err)
	}
}

func TestGibbsHistogramDensity(t *testing.T) {
	g := rng.New(13)
	mix := dataset.GaussianMixture{Means: []float64{0}, Sigmas: []float64{0.5}, Weights: []float64{1}}
	d := mix.Generate(3000, g)
	dens, bins, err := GibbsHistogramDensity(d, 0, []int{5, 10, 20, 40, 80}, -3, 3, 10, 4, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range []int{5, 10, 20, 40, 80} {
		if bins == b {
			found = true
		}
	}
	if !found {
		t.Errorf("selected bins = %d not among candidates", bins)
	}
	// Integrates to ~1 (smoothing keeps it exact).
	w := 6.0 / float64(bins)
	var integral float64
	for _, v := range dens.Density {
		integral += v * w
	}
	if math.Abs(integral-1) > 1e-6 {
		t.Errorf("integral = %v", integral)
	}
	if _, _, err := GibbsHistogramDensity(d, 0, nil, -3, 3, 10, 1, nil, g); !errors.Is(err, ErrBadConfig) {
		t.Error("no candidates")
	}
}

func TestDensityErrorDecreasesWithEpsilon(t *testing.T) {
	// Average L1 error of the private histogram must shrink as ε grows.
	g := rng.New(17)
	mix := dataset.GaussianMixture{Means: []float64{0}, Sigmas: []float64{1}, Weights: []float64{1}}
	d := mix.Generate(400, g)
	nonPriv, err := NonPrivateHistogramDensity(d, 0, 20, -4, 4)
	if err != nil {
		t.Fatal(err)
	}
	avgL1 := func(eps float64) float64 {
		var total float64
		const reps = 40
		for r := 0; r < reps; r++ {
			priv, err := PrivateHistogramDensity(d, 0, 20, -4, 4, eps, nil, g)
			if err != nil {
				t.Fatal(err)
			}
			l1, err := priv.L1Distance(nonPriv)
			if err != nil {
				t.Fatal(err)
			}
			total += l1
		}
		return total / reps
	}
	low := avgL1(0.1)
	high := avgL1(10)
	if high >= low {
		t.Errorf("L1 at ε=10 (%v) not below ε=0.1 (%v)", high, low)
	}
}
