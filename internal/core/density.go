package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/stats"
)

// This file implements the paper's future-work direction of
// differentially-private density estimation (Section 5), in two flavors:
// the classical Laplace-perturbed histogram, and a Gibbs-posterior
// selection over a family of candidate histograms scored by held-in
// log-likelihood (the PAC-Bayes route the paper proposes to investigate).

// DensityEstimate is a piecewise-constant density over [Lo, Hi).
type DensityEstimate struct {
	Lo, Hi  float64
	Density []float64 // per-bin density values; integrates to 1
}

// At returns the density at x (0 outside [Lo, Hi)).
func (d *DensityEstimate) At(x float64) float64 {
	if x < d.Lo || x >= d.Hi {
		return 0
	}
	bins := len(d.Density)
	idx := int(math.Floor((x - d.Lo) / (d.Hi - d.Lo) * float64(bins)))
	if idx >= bins {
		idx = bins - 1
	}
	return d.Density[idx]
}

// L1Distance returns ∫|d − other| over the common support, computed
// bin-exactly (both estimates must share Lo, Hi, and bin count).
func (d *DensityEstimate) L1Distance(other *DensityEstimate) (float64, error) {
	//dplint:ignore floateq shared-geometry precondition: both estimates must carry bitwise-identical endpoints
	if d.Lo != other.Lo || d.Hi != other.Hi || len(d.Density) != len(other.Density) {
		return 0, fmt.Errorf("core: density estimates not comparable")
	}
	w := (d.Hi - d.Lo) / float64(len(d.Density))
	var k mathx.KahanSum
	for i := range d.Density {
		k.Add(math.Abs(d.Density[i]-other.Density[i]) * w)
	}
	return k.Sum(), nil
}

// PrivateHistogramDensity releases an ε-DP histogram density of feature j
// over [lo, hi) with the given bins: Laplace noise (sensitivity 2, since
// replacing a record moves two counts by one) is added to each bin count,
// negatives are clamped to zero, and the result is normalized to a
// density. The release is ε-DP by Theorem 2.1 plus post-processing; the
// spent ε is registered with acct (nil to skip accounting).
//
//dplint:ignore epscheck thin wrapper: ε is forwarded verbatim to PrivateHistogramDensityCtx, which validates it via mechanism.NewLaplace
func PrivateHistogramDensity(d *dataset.Dataset, j, bins int, lo, hi, epsilon float64, acct *mechanism.Accountant, g *rng.RNG) (*DensityEstimate, error) {
	return PrivateHistogramDensityCtx(context.Background(), d, j, bins, lo, hi, epsilon, acct, g)
}

// PrivateHistogramDensityCtx is PrivateHistogramDensity under a context:
// when ctx carries a request span (the serve layer's tracing middleware
// puts one there), the release runs under a child span and the ledger
// record carries the request's trace id, joining the ε charge to the
// request that caused it.
func PrivateHistogramDensityCtx(ctx context.Context, d *dataset.Dataset, j, bins int, lo, hi, epsilon float64, acct *mechanism.Accountant, g *rng.RNG) (*DensityEstimate, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	sp := obs.SpanFromContext(ctx).Child("density.laplace")
	sp.SetAttr("bins", bins)
	defer sp.End()
	q := mechanism.HistogramQuery(j, bins, lo, hi)
	m, err := mechanism.NewLaplace(q, epsilon)
	if err != nil {
		return nil, err
	}
	res, err := acct.Reserve(m.Guarantee())
	if err != nil {
		return nil, fmt.Errorf("core: histogram density release not admitted: %w", err)
	}
	defer res.Release()
	noisy := m.Release(d, g)
	res.Commit(mechanism.SpendMeta{
		Mechanism:   "laplace",
		Sensitivity: m.Query.L1Sensitivity,
		Outcomes:    bins,
		Span:        sp.ID(),
		Trace:       sp.TraceID(),
		Charge:      mechanism.ChargeScopeFrom(ctx),
	})
	var total float64
	for i, v := range noisy {
		if v < 0 {
			noisy[i] = 0
		}
		total += noisy[i]
	}
	out := &DensityEstimate{Lo: lo, Hi: hi, Density: make([]float64, bins)}
	w := (hi - lo) / float64(bins)
	if total == 0 { //dplint:ignore floateq exactly-zero total only when every bin was clamped to literal 0 above
		// All mass noised away: fall back to uniform (still DP: it is a
		// post-processing decision independent of the data).
		for i := range out.Density {
			out.Density[i] = 1 / (hi - lo)
		}
		return out, nil
	}
	for i, v := range noisy {
		out.Density[i] = v / total / w
	}
	return out, nil
}

// NonPrivateHistogramDensity is the ε→∞ baseline: the plain histogram
// density.
func NonPrivateHistogramDensity(d *dataset.Dataset, j, bins int, lo, hi float64) (*DensityEstimate, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	h := stats.NewHistogram(lo, hi, bins)
	for _, e := range d.Examples {
		h.Add(e.X[j])
	}
	return &DensityEstimate{Lo: lo, Hi: hi, Density: h.Density()}, nil
}

// GibbsHistogramDensity selects one of a family of candidate histogram
// densities (each a smoothed histogram with a different bin count) by the
// exponential mechanism, scored by per-record average log-likelihood
// clipped to [−clip, 0] — a Gibbs-posterior density estimator in the
// spirit of the paper's Section 5. The release is ε-DP; the spent ε is
// registered with acct (nil to skip accounting).
//
//dplint:ignore epscheck thin wrapper: ε is forwarded verbatim to GibbsHistogramDensityCtx, which validates it via mechanism.NewExponential
func GibbsHistogramDensity(d *dataset.Dataset, j int, binChoices []int, lo, hi, clip, epsilon float64, acct *mechanism.Accountant, g *rng.RNG) (*DensityEstimate, int, error) {
	return GibbsHistogramDensityCtx(context.Background(), d, j, binChoices, lo, hi, clip, epsilon, acct, g)
}

// GibbsHistogramDensityCtx is GibbsHistogramDensity under a context: the
// release runs under a child of the span carried by ctx (if any) and the
// ledger record carries the request's trace id.
func GibbsHistogramDensityCtx(ctx context.Context, d *dataset.Dataset, j int, binChoices []int, lo, hi, clip, epsilon float64, acct *mechanism.Accountant, g *rng.RNG) (*DensityEstimate, int, error) {
	if d == nil || d.Len() == 0 {
		return nil, 0, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	if len(binChoices) == 0 || clip <= 0 {
		return nil, 0, fmt.Errorf("%w: need candidate bin counts and clip > 0", ErrBadConfig)
	}
	sp := obs.SpanFromContext(ctx).Child("density.gibbs")
	sp.SetAttr("candidates", len(binChoices))
	defer sp.End()
	// Precompute smoothed candidate densities (add-one smoothing keeps
	// log-likelihoods finite).
	cands := make([]*DensityEstimate, len(binChoices))
	for c, bins := range binChoices {
		h := stats.NewHistogram(lo, hi, bins)
		for _, e := range d.Examples {
			h.Add(e.X[j])
		}
		w := h.BinWidth()
		total := h.Total() + float64(bins)
		dens := make([]float64, bins)
		for i, cnt := range h.Counts {
			dens[i] = (cnt + 1) / total / w
		}
		cands[c] = &DensityEstimate{Lo: lo, Hi: hi, Density: dens}
	}
	// Quality: clipped average log-likelihood. Replacing one record moves
	// the average by at most clip/n... but the candidate densities also
	// depend on the data through their counts; a swap moves one unit of
	// count, changing log density at the affected bins by at most
	// log((c+2)/(c+1)) ≤ ln 2 per record evaluated there. We take the
	// conservative sensitivity (clip + ln2)/n · n = clip + ln2 over the
	// SUM, i.e. (clip + ln 2)/n for the average times n records → use the
	// sum form with sensitivity clip + ln2.
	//dp:sensitivity Δq=(clip+ln2)/n (clipped average log-likelihood; see the derivation above)
	quality := func(dd *dataset.Dataset, u int) float64 {
		var k mathx.KahanSum
		for _, e := range dd.Examples {
			ll := math.Log(math.Max(cands[u].At(e.X[j]), math.Exp(-clip)))
			k.Add(mathx.Clamp(ll, -clip, 0))
		}
		return k.Sum() / float64(dd.Len())
	}
	sens := (clip + math.Ln2) / float64(d.Len())
	em, err := mechanism.NewExponential(quality, len(cands), sens, epsilon/(2*sens))
	if err != nil {
		return nil, 0, err
	}
	res, err := acct.Reserve(em.Guarantee())
	if err != nil {
		return nil, 0, fmt.Errorf("core: Gibbs density release not admitted: %w", err)
	}
	defer res.Release()
	idx := em.Release(d, g)
	res.Commit(mechanism.SpendMeta{
		Mechanism:   "expmech",
		Sensitivity: sens,
		Outcomes:    len(cands),
		Span:        sp.ID(),
		Trace:       sp.TraceID(),
		Charge:      mechanism.ChargeScopeFrom(ctx),
	})
	return cands[idx], binChoices[idx], nil
}
