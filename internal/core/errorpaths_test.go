package core

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/rng"
)

func TestEstimatorErrorPaths(t *testing.T) {
	l, err := NewLearner(classifierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Estimator(0); !errors.Is(err, ErrBadConfig) {
		t.Error("n = 0 must error")
	}
	if _, err := l.Estimator(-5); !errors.Is(err, ErrBadConfig) {
		t.Error("negative n must error")
	}
}

func TestFitErrorPaths(t *testing.T) {
	l, err := NewLearner(classifierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(1)
	if _, err := l.Fit(nil, g); !errors.Is(err, ErrBadConfig) {
		t.Error("nil dataset must error")
	}
	if _, err := l.Fit(&dataset.Dataset{}, g); !errors.Is(err, ErrBadConfig) {
		t.Error("empty dataset must error")
	}
	if _, err := l.Certify(nil); !errors.Is(err, ErrBadConfig) {
		t.Error("nil certify must error")
	}
}

func TestDensityErrorPaths(t *testing.T) {
	g := rng.New(3)
	d := dataset.New([]dataset.Example{{X: []float64{0.5}}})
	// Invalid epsilon propagates from the Laplace mechanism.
	if _, err := PrivateHistogramDensity(d, 0, 4, 0, 1, -1, nil, g); err == nil {
		t.Error("negative epsilon must error")
	}
	if _, err := PrivateHistogramDensity(nil, 0, 4, 0, 1, 1, nil, g); !errors.Is(err, ErrBadConfig) {
		t.Error("nil dataset must error")
	}
	if _, err := NonPrivateHistogramDensity(nil, 0, 4, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("nil dataset must error")
	}
	if _, err := NonPrivateHistogramDensity(&dataset.Dataset{}, 0, 4, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Error("empty dataset must error")
	}
	// Gibbs density with bad clip.
	if _, _, err := GibbsHistogramDensity(d, 0, []int{4}, 0, 1, 0, 1, nil, g); !errors.Is(err, ErrBadConfig) {
		t.Error("clip = 0 must error")
	}
	if _, _, err := GibbsHistogramDensity(nil, 0, []int{4}, 0, 1, 1, 1, nil, g); !errors.Is(err, ErrBadConfig) {
		t.Error("nil dataset must error")
	}
}

func TestPrivateHistogramDensityAllNoisedAway(t *testing.T) {
	// A tiny dataset with a tiny budget will sometimes noise every count
	// negative; the uniform fallback must kick in and stay a density.
	g := rng.New(7)
	d := dataset.New([]dataset.Example{{X: []float64{0.5}}})
	sawUniform := false
	for trial := 0; trial < 200; trial++ {
		priv, err := PrivateHistogramDensity(d, 0, 4, 0, 1, 0.01, nil, g)
		if err != nil {
			t.Fatal(err)
		}
		var integral float64
		uniform := true
		for _, v := range priv.Density {
			integral += v * 0.25
			if v != priv.Density[0] {
				uniform = false
			}
		}
		if integral < 0.999 || integral > 1.001 {
			t.Fatalf("integral = %v", integral)
		}
		if uniform {
			sawUniform = true
		}
	}
	if !sawUniform {
		t.Log("note: uniform fallback never triggered at this seed (not a failure)")
	}
}

func TestAccountInformationEstimatorError(t *testing.T) {
	// Sample-space points of size zero hit the Estimator(n<=0) error.
	l, err := NewLearner(classifierConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	empty := &dataset.Dataset{}
	if _, err := l.AccountInformation([]*dataset.Dataset{empty}, []float64{0}); err == nil {
		t.Error("zero-size sample-space points must error")
	}
}

func TestLearnerWithExplicitPrior(t *testing.T) {
	grid := learn.NewGrid(-1, 1, 1, 5)
	prior := grid.GaussianLogPrior(1)
	l, err := NewLearner(Config{
		Loss:     learn.ZeroOneLoss{},
		Thetas:   grid.Thetas(),
		LogPrior: prior,
		Epsilon:  1,
		Delta:    0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(11)
	d := dataset.LogisticModel{Weights: []float64{1}}.Generate(50, g)
	fit, err := l.Fit(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Certificate.Delta != 0.1 {
		t.Errorf("delta = %v", fit.Certificate.Delta)
	}
}
