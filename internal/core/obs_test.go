package core

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// TestRiskCacheHitRateThroughRegistry pins satellite behavior of the
// risk-cache instrumentation: a cold Fit records misses, and the warm
// Certify on the same data serves entirely from the cache, so the
// hit-rate observed through the metrics registry must be positive while
// the miss count stays flat.
func TestRiskCacheHitRateThroughRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := classifierConfig(1)
	cfg.Parallel = parallel.Options{Workers: 1, Obs: &obs.Observer{Metrics: reg}}
	l, err := NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := dataset.LogisticModel{Weights: []float64{1.5}}
	d := model.Generate(64, rng.New(7))

	hits := reg.Counter("dplearn_risk_cache_hits_total", "")
	misses := reg.Counter("dplearn_risk_cache_misses_total", "")

	if _, err := l.Fit(d, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	// The very first risk-grid evaluation must miss; the Fit's own later
	// passes (sampling, then the certificate) may already hit.
	coldMisses := misses.Value()
	if coldMisses == 0 {
		t.Fatal("cold Fit should record at least one cache miss")
	}
	coldHits := hits.Value()

	if _, err := l.Certify(d); err != nil {
		t.Fatal(err)
	}
	if hits.Value() <= coldHits {
		t.Fatalf("warm Certify hit rate must be > 0: hits %d -> %d", coldHits, hits.Value())
	}
	if misses.Value() != coldMisses {
		t.Fatalf("warm Certify should not miss: %d -> %d", coldMisses, misses.Value())
	}
}

// TestFitLedgersThroughAccountantObserver checks the release-site
// threading: a Fit with an observed accountant produces exactly one
// ledger record carrying the gibbs mechanism metadata, and the ledger's
// composition matches the accountant's bit-for-bit.
func TestFitLedgersThroughAccountantObserver(t *testing.T) {
	var buf bytes.Buffer
	clock := &obs.LogicalClock{}
	tracer := obs.NewTracer(&buf, clock)
	led := obs.NewLedger(tracer)
	var acct mechanism.Accountant
	acct.SetObserver(func(r mechanism.SpendRecord) {
		led.Record(obs.LedgerRecord{
			Seq:         r.Seq,
			Mechanism:   r.Meta.Mechanism,
			Sensitivity: r.Meta.Sensitivity,
			Epsilon:     r.Guarantee.Epsilon,
			Delta:       r.Guarantee.Delta,
			Outcomes:    r.Meta.Outcomes,
			Duration:    r.Meta.Duration,
			Span:        r.Meta.Span,
		})
	})

	cfg := classifierConfig(0.8)
	cfg.Acct = &acct
	cfg.Parallel = parallel.Options{Workers: 1, Obs: &obs.Observer{Tracer: tracer, Clock: clock}}
	l, err := NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := dataset.LogisticModel{Weights: []float64{1.5}}
	d := model.Generate(32, rng.New(9))
	if _, err := l.Fit(d, rng.New(2)); err != nil {
		t.Fatal(err)
	}

	if led.Len() != acct.Count() || led.Len() != 1 {
		t.Fatalf("ledger %d records, accountant %d spends, want 1 each", led.Len(), acct.Count())
	}
	rec := led.Records()[0]
	if rec.Mechanism != "gibbs" {
		t.Fatalf("mechanism %q, want gibbs", rec.Mechanism)
	}
	if rec.Outcomes != len(cfg.Thetas) {
		t.Fatalf("outcomes %d, want |Theta| = %d", rec.Outcomes, len(cfg.Thetas))
	}
	if rec.Sensitivity <= 0 || rec.Duration <= 0 || rec.Span == 0 {
		t.Fatalf("metadata not threaded: %+v", rec)
	}
	e, del := led.Composed()
	g := acct.BasicComposition()
	if e != g.Epsilon || del != g.Delta {
		t.Fatalf("ledger (%g,%g) != accountant (%g,%g)", e, del, g.Epsilon, g.Delta)
	}
	// And the spend landed inside a live trace span tree.
	recs, err := obs.ReadLedgerNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != rec {
		t.Fatalf("trace stream ledger mismatch: %+v", recs)
	}
}
