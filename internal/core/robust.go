// Context-aware, budget-enforcing variants of the facade. The plain
// methods (Fit, Certify, AccountInformation) delegate here with
// context.Background(); pipelines that need deadlines, SIGINT draining,
// or budget degradation call the Ctx variants directly.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// ErrNonFiniteInput reports a NaN or ±Inf in the dataset values or in
// the computed risk grid. The facade rejects it before any ε is spent:
// a NaN risk would silently poison the Gibbs normalizer, turning the
// release into garbage that still charged the ledger.
var ErrNonFiniteInput = errors.New("core: non-finite input")

// DegradePolicy selects what Fit does when the accountant's budget
// cannot admit the planned release.
type DegradePolicy int

const (
	// DegradeRefuse (the default) fails the fit with ErrBudgetExhausted.
	DegradeRefuse DegradePolicy = iota
	// DegradeFallback re-releases the most recent successful fit instead
	// of spending: post-processing of an already-paid-for release, so no
	// new ε is charged. Fails like DegradeRefuse when no fit is cached.
	DegradeFallback
	// DegradeWiden recalibrates λ so the release costs exactly the
	// remaining budget (a weaker, wider posterior) instead of the
	// configured ε. Fails like DegradeRefuse when nothing remains.
	DegradeWiden
)

// String names the policy for flags and logs.
func (p DegradePolicy) String() string {
	switch p {
	case DegradeRefuse:
		return "refuse"
	case DegradeFallback:
		return "fallback"
	case DegradeWiden:
		return "widen"
	default:
		return fmt.Sprintf("DegradePolicy(%d)", int(p))
	}
}

// ParseDegradePolicy parses the CLI spelling of a policy.
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "refuse":
		return DegradeRefuse, nil
	case "fallback":
		return DegradeFallback, nil
	case "widen":
		return DegradeWiden, nil
	default:
		return DegradeRefuse, fmt.Errorf("%w: unknown degrade policy %q (want refuse|fallback|widen)", ErrBadConfig, s)
	}
}

// validateDataset rejects NaN/Inf feature or label values with
// ErrNonFiniteInput, identifying the first offending example.
func validateDataset(d *dataset.Dataset) error {
	for i, e := range d.Examples {
		for j, v := range e.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: example %d feature %d is %v", ErrNonFiniteInput, i, j, v)
			}
		}
		if math.IsNaN(e.Y) || math.IsInf(e.Y, 0) {
			return fmt.Errorf("%w: example %d label is %v", ErrNonFiniteInput, i, e.Y)
		}
	}
	return nil
}

// validateRisks rejects NaN/Inf empirical risks with ErrNonFiniteInput.
func validateRisks(risks []float64) error {
	for i, r := range risks {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("%w: risk of predictor %d is %v", ErrNonFiniteInput, i, r)
		}
	}
	return nil
}

// FitCtx is Fit under a context with budget enforcement and graceful
// degradation, applying the configured DegradePolicy.
func (l *Learner) FitCtx(ctx context.Context, d *dataset.Dataset, g *rng.RNG) (*Fitted, error) {
	return l.FitPolicyCtx(ctx, d, g, l.cfg.Degrade)
}

// FitPolicyCtx is FitCtx with a per-call DegradePolicy: multi-tenant
// callers (the serve layer) select refuse/fallback/widen per request as
// load-shedding, while single-run pipelines keep the configured policy
// through FitCtx. The hardened order of operations is:
//
//  1. validate the dataset and the risk grid (typed ErrNonFiniteInput) —
//     before any ε is spent;
//  2. Reserve the planned guarantee against the accountant's budget —
//     an ErrBudgetExhausted here triggers the requested DegradePolicy
//     with nothing charged;
//  3. sample the posterior under ctx — a cancellation or worker fault
//     releases the reservation, so a failed release never charges the
//     ledger;
//  4. Commit the reservation, which appends the ledger record exactly
//     as SpendDetail would.
func (l *Learner) FitPolicyCtx(ctx context.Context, d *dataset.Dataset, g *rng.RNG, policy DegradePolicy) (*Fitted, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	if err := validateDataset(d); err != nil {
		return nil, err
	}
	o := l.cfg.Parallel.Obs
	// A child of the request span when the serve layer put one in ctx, a
	// root span otherwise; either way the derived ctx carries it onward
	// into the risk grids and the parallel engine's chunk spans.
	ctx, sp := o.StartSpanCtx(ctx, "fit")
	sp.SetAttr("n", d.Len())
	defer sp.End()
	est, err := l.Estimator(d.Len())
	if err != nil {
		return nil, err
	}
	risks, err := est.RisksCtx(ctx, d)
	if err != nil {
		return nil, err
	}
	if err := validateRisks(risks); err != nil {
		return nil, err
	}
	degraded := false
	res, err := l.cfg.Acct.Reserve(est.Guarantee(d.Len()))
	if errors.Is(err, mechanism.ErrBudgetExhausted) {
		switch policy {
		case DegradeFallback:
			if cached := l.cachedFit(); cached != nil {
				return cached, nil
			}
			return nil, fmt.Errorf("core: budget exhausted and no cached fit to fall back to: %w", err)
		case DegradeWiden:
			est, res, err = l.widen(d.Len())
			if err != nil {
				return nil, err
			}
			degraded = true
		default:
			return nil, fmt.Errorf("core: fit refused: %w", err)
		}
	} else if err != nil {
		return nil, err
	}
	// The deferred Release is a no-op once Commit ran; on every error and
	// panic path below it returns the reserved headroom uncharged.
	defer res.Release()
	start := o.Now()
	idx, err := est.SampleCtx(ctx, d, g)
	if err != nil {
		return nil, err
	}
	res.Commit(mechanism.SpendMeta{
		Mechanism:   "gibbs",
		Sensitivity: est.RiskSensitivity(d.Len()),
		Outcomes:    len(l.cfg.Thetas),
		Duration:    o.Now() - start,
		Span:        sp.ID(),
		Trace:       sp.TraceID(),
		Charge:      mechanism.ChargeScopeFrom(ctx),
	})
	cert, err := l.certificateCtx(ctx, est, d)
	if err != nil {
		return nil, err
	}
	fit := &Fitted{
		Theta:       append([]float64(nil), l.cfg.Thetas[idx]...),
		Index:       idx,
		Certificate: cert,
		Degraded:    degraded,
		Policy:      policy,
	}
	l.storeFit(fit)
	return fit, nil
}

// widen recalibrates the estimator so the release costs exactly the
// remaining budget. The reservation is taken for that exact remainder —
// not for the recalibrated estimator's recomputed Guarantee, whose low
// bits may differ after the λ round-trip — so the budget closes to
// exactly zero with no floating-point residue.
func (l *Learner) widen(n int) (*gibbs.Estimator, *mechanism.Reservation, error) {
	rem, ok := l.cfg.Acct.Remaining()
	if !ok || rem.Epsilon <= 0 {
		return nil, nil, fmt.Errorf("core: cannot widen, no budget remaining: %w", mechanism.ErrBudgetExhausted)
	}
	lambda, err := gibbs.LambdaForEpsilonErr(rem.Epsilon, l.cfg.Loss, n)
	if err != nil {
		return nil, nil, fmt.Errorf("core: cannot widen to remaining ε=%v: %w", rem.Epsilon, err)
	}
	est, err := gibbs.New(l.cfg.Loss, l.cfg.Thetas, l.cfg.LogPrior, lambda)
	if err != nil {
		return nil, nil, err
	}
	est.Parallel = l.cfg.Parallel
	est.Cache = l.cache
	res, err := l.cfg.Acct.Reserve(rem)
	if err != nil {
		// Lost the headroom to a concurrent reservation between Remaining
		// and Reserve; treat as exhausted.
		return nil, nil, fmt.Errorf("core: widened reservation lost a race: %w", err)
	}
	return est, res, nil
}

// cachedFit returns a deep copy of the last successful fit flagged as a
// degraded re-release, or nil when none is cached.
func (l *Learner) cachedFit() *Fitted {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastFit == nil {
		return nil
	}
	cp := *l.lastFit
	cp.Theta = append([]float64(nil), l.lastFit.Theta...)
	cp.Degraded = true
	cp.Policy = DegradeFallback
	return &cp
}

// storeFit caches the fit for DegradeFallback. Degraded re-releases are
// not cached: the fallback predictor should stay the last fully-paid
// release.
func (l *Learner) storeFit(f *Fitted) {
	if f.Degraded {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := *f
	cp.Theta = append([]float64(nil), f.Theta...)
	l.lastFit = &cp
}

// certificateCtx is certificate under a context.
func (l *Learner) certificateCtx(ctx context.Context, est *gibbs.Estimator, d *dataset.Dataset) (Certificate, error) {
	st, err := est.StatsCtx(ctx, d)
	if err != nil {
		return Certificate{}, err
	}
	return l.certificateFromStats(est, d, st)
}

// CertifyCtx is Certify under a context: the risk grid and posterior
// honor cancellation. No privacy is spent (the certificate is not
// released).
func (l *Learner) CertifyCtx(ctx context.Context, d *dataset.Dataset) (Certificate, error) {
	if d == nil || d.Len() == 0 {
		return Certificate{}, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	if err := validateDataset(d); err != nil {
		return Certificate{}, err
	}
	ctx, sp := l.cfg.Parallel.Obs.StartSpanCtx(ctx, "certify")
	sp.SetAttr("n", d.Len())
	defer sp.End()
	est, err := l.Estimator(d.Len())
	if err != nil {
		return Certificate{}, err
	}
	return l.certificateCtx(ctx, est, d)
}

// AccountInformationCtx is AccountInformation under a context: the
// channel enumeration, the Blahut–Arimoto capacity iteration, and the
// risk grids all honor cancellation.
func (l *Learner) AccountInformationCtx(ctx context.Context, inputs []*dataset.Dataset, logPX []float64) (*InformationAccount, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("%w: empty sample space", ErrBadConfig)
	}
	n := inputs[0].Len()
	for _, d := range inputs {
		if d.Len() != n {
			return nil, fmt.Errorf("%w: sample-space points must share a size", ErrBadConfig)
		}
	}
	est, err := l.Estimator(n)
	if err != nil {
		return nil, err
	}
	ch, err := channel.FromMechanismCtx(ctx, inputs, logPX, est, l.cfg.Parallel)
	if err != nil {
		return nil, err
	}
	mi, err := ch.MutualInformation()
	if err != nil {
		return nil, err
	}
	capacity, err := ch.CapacityCtx(ctx, 1e-9, 50000)
	if err != nil {
		return nil, err
	}
	risks := make([][]float64, len(inputs))
	for i, d := range inputs {
		risks[i], err = est.RisksCtx(ctx, d)
		if err != nil {
			return nil, err
		}
	}
	expRisk, err := ch.ExpectedValue(risks)
	if err != nil {
		return nil, err
	}
	return &InformationAccount{
		MutualInformation: mi,
		Capacity:          capacity,
		DPCap:             channel.DPLeakageCapNats(est.Guarantee(n).Epsilon, n),
		ExpectedRisk:      expRisk,
	}, nil
}
