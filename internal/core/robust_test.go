package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// budgetedLearner builds a classifier learner whose per-fit guarantee is
// exactly cfgEps, with the given accountant attached.
func budgetedLearner(t *testing.T, cfgEps float64, acct *mechanism.Accountant, policy DegradePolicy) (*Learner, *dataset.Dataset, *rng.RNG) {
	t.Helper()
	g := rng.New(7)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	d := model.Generate(100, g)
	cfg := classifierConfig(cfgEps)
	cfg.Acct = acct
	cfg.Degrade = policy
	l, err := NewLearner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, d, g
}

// TestFitRejectsNonFiniteData pins the facade validation: NaN/Inf data
// fails typed, before any ε is spent.
func TestFitRejectsNonFiniteData(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := budgetedLearner(t, 1, &acct, DegradeRefuse)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		dd := d.Clone()
		dd.Examples[3].X[0] = bad
		if _, err := l.Fit(dd, g); !errors.Is(err, ErrNonFiniteInput) {
			t.Fatalf("feature %v: want ErrNonFiniteInput, got %v", bad, err)
		}
		dd = d.Clone()
		dd.Examples[5].Y = bad
		if _, err := l.Fit(dd, g); !errors.Is(err, ErrNonFiniteInput) {
			t.Fatalf("label %v: want ErrNonFiniteInput, got %v", bad, err)
		}
	}
	if acct.Count() != 0 || acct.Reserved() != 0 {
		t.Fatalf("ε charged for rejected input: Count=%d Reserved=%d", acct.Count(), acct.Reserved())
	}
}

// TestFitRefusePolicy pins budget enforcement under the default policy:
// the run stops before the over-budget release, typed, with nothing
// extra charged.
func TestFitRefusePolicy(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := budgetedLearner(t, 1, &acct, DegradeRefuse)
	if err := acct.SetBudget(fitGuarantee(t, l, d)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fit(d, g); err != nil {
		t.Fatalf("first fit must fit in budget: %v", err)
	}
	if _, err := l.Fit(d, g); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("second fit: want ErrBudgetExhausted, got %v", err)
	}
	if acct.Count() != 1 || acct.Reserved() != 0 {
		t.Fatalf("over-budget fit charged: Count=%d Reserved=%d", acct.Count(), acct.Reserved())
	}
}

// fitGuarantee returns the learner's exact per-fit guarantee on d, so
// tests can size budgets to admit exactly one release.
func fitGuarantee(t *testing.T, l *Learner, d *dataset.Dataset) mechanism.Guarantee {
	t.Helper()
	est, err := l.Estimator(d.Len())
	if err != nil {
		t.Fatal(err)
	}
	return est.Guarantee(d.Len())
}

// TestFitFallbackPolicy pins DegradeFallback: the budget-refused fit
// re-releases the cached predictor (same θ, flagged Degraded) with no
// new ledger charge.
func TestFitFallbackPolicy(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := budgetedLearner(t, 1, &acct, DegradeFallback)
	if err := acct.SetBudget(fitGuarantee(t, l, d)); err != nil {
		t.Fatal(err)
	}
	first, err := l.Fit(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if first.Degraded {
		t.Fatal("first fit must not be degraded")
	}
	second, err := l.Fit(d, g)
	if err != nil {
		t.Fatalf("fallback fit: %v", err)
	}
	if !second.Degraded || second.Policy != DegradeFallback {
		t.Fatalf("fallback fit not flagged: %+v", second)
	}
	if second.Index != first.Index {
		t.Fatalf("fallback released a different predictor: %d vs %d", second.Index, first.Index)
	}
	if acct.Count() != 1 {
		t.Fatalf("fallback charged the ledger: Count=%d", acct.Count())
	}
	// Returned copy must not alias the cache.
	second.Theta[0] = 999
	third, err := l.Fit(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if third.Theta[0] == 999 {
		t.Fatal("fallback fit aliases the cached predictor")
	}
}

// TestFitFallbackWithoutCache pins that fallback with nothing cached
// degrades to a typed refusal.
func TestFitFallbackWithoutCache(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := budgetedLearner(t, 1, &acct, DegradeFallback)
	if err := acct.SetBudget(mechanism.Guarantee{}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Fit(d, g); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

// TestFitWidenPolicy pins DegradeWiden: the refused fit recalibrates to
// the remaining budget, spends exactly it (bit-for-bit on the ledger),
// and a third fit with zero remaining is refused.
func TestFitWidenPolicy(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := budgetedLearner(t, 2, &acct, DegradeWiden)
	full := fitGuarantee(t, l, d)
	budget := mechanism.Guarantee{Epsilon: 1.5 * full.Epsilon}
	if err := acct.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	first, err := l.Fit(d, g)
	if err != nil {
		t.Fatal(err)
	}
	if first.Degraded {
		t.Fatal("first fit must not be degraded")
	}
	second, err := l.Fit(d, g)
	if err != nil {
		t.Fatalf("widened fit: %v", err)
	}
	if !second.Degraded || second.Policy != DegradeWiden {
		t.Fatalf("widened fit not flagged: %+v", second)
	}
	recs := acct.Records()
	if len(recs) != 2 {
		t.Fatalf("want 2 ledger records, got %d", len(recs))
	}
	wantRem := budget.Epsilon - full.Epsilon
	if math.Float64bits(recs[1].Guarantee.Epsilon) != math.Float64bits(wantRem) {
		t.Fatalf("widened spend ε = %v, want exactly the remainder %v", recs[1].Guarantee.Epsilon, wantRem)
	}
	// The widened posterior is weaker: smaller λ.
	if second.Certificate.Lambda >= first.Certificate.Lambda {
		t.Fatalf("widened λ %v not below configured λ %v", second.Certificate.Lambda, first.Certificate.Lambda)
	}
	if _, err := l.Fit(d, g); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("third fit with zero remaining: want ErrBudgetExhausted, got %v", err)
	}
	composed := acct.BasicComposition()
	if composed.Epsilon > budget.Epsilon {
		t.Fatalf("composed ε %v exceeds budget %v", composed.Epsilon, budget.Epsilon)
	}
}

// TestFitCtxCanceled pins that a canceled fit spends nothing and leaves
// no outstanding reservation.
func TestFitCtxCanceled(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := budgetedLearner(t, 1, &acct, DegradeRefuse)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.FitCtx(ctx, d, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if acct.Count() != 0 || acct.Reserved() != 0 {
		t.Fatalf("canceled fit charged: Count=%d Reserved=%d", acct.Count(), acct.Reserved())
	}
	if _, err := l.CertifyCtx(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("CertifyCtx: want context.Canceled, got %v", err)
	}
}

// TestParseDegradePolicy covers the CLI spellings.
func TestParseDegradePolicy(t *testing.T) {
	for in, want := range map[string]DegradePolicy{
		"":         DegradeRefuse,
		"refuse":   DegradeRefuse,
		"Fallback": DegradeFallback,
		" widen ":  DegradeWiden,
	} {
		got, err := ParseDegradePolicy(in)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseDegradePolicy("explode"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown policy must be ErrBadConfig, got %v", err)
	}
	if DegradePolicy(42).String() == "" {
		t.Error("String on unknown policy")
	}
}
