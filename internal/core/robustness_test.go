package core

// Failure-injection tests: degenerate, extreme, and adversarial inputs
// must produce errors or sane results — never NaN certificates or
// panics across the public API boundary.

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/rng"
)

// degenerateDatasets enumerates pathological-but-legal datasets.
func degenerateDatasets() map[string]*dataset.Dataset {
	return map[string]*dataset.Dataset{
		"single example":   dataset.New([]dataset.Example{{X: []float64{0.5}, Y: 1}}),
		"all identical":    dataset.New([]dataset.Example{{X: []float64{0.3}, Y: 1}, {X: []float64{0.3}, Y: 1}, {X: []float64{0.3}, Y: 1}}),
		"all same label":   dataset.New([]dataset.Example{{X: []float64{-1}, Y: 1}, {X: []float64{1}, Y: 1}}),
		"zero features":    dataset.New([]dataset.Example{{X: []float64{0}, Y: 1}, {X: []float64{0}, Y: -1}}),
		"extreme features": dataset.New([]dataset.Example{{X: []float64{1e15}, Y: 1}, {X: []float64{-1e15}, Y: -1}}),
	}
}

func TestLearnerSurvivesDegenerateData(t *testing.T) {
	grid := learn.NewGrid(-2, 2, 1, 9)
	l, err := NewLearner(Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(1)
	for name, d := range degenerateDatasets() {
		fit, err := l.Fit(d, g)
		if err != nil {
			t.Errorf("%s: Fit failed: %v", name, err)
			continue
		}
		c := fit.Certificate
		for label, v := range map[string]float64{
			"privacy": c.Privacy.Epsilon,
			"lambda":  c.Lambda,
			"bound":   c.RiskBound,
			"risk":    c.ExpEmpRisk,
			"kl":      c.KL,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: certificate field %s is %v", name, label, v)
			}
		}
		if c.Privacy.Epsilon != 1 {
			t.Errorf("%s: privacy %v != budget", name, c.Privacy.Epsilon)
		}
	}
}

func TestLearnerRejectsNaNFeatureGracefully(t *testing.T) {
	// NaN features poison risks; the posterior must still normalize or
	// the learner must error — it must NOT emit NaN certificates
	// silently. ZeroOneLoss is sign-based, so NaN margins classify as
	// errors (NaN > 0 is false), keeping everything finite.
	grid := learn.NewGrid(-2, 2, 1, 5)
	l, err := NewLearner(Config{Loss: learn.ZeroOneLoss{}, Thetas: grid.Thetas(), Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.New([]dataset.Example{
		{X: []float64{math.NaN()}, Y: 1},
		{X: []float64{0.5}, Y: 1},
	})
	fit, err := l.Fit(d, rng.New(1))
	if err != nil {
		return // an explicit error is acceptable
	}
	if math.IsNaN(fit.Certificate.RiskBound) || math.IsNaN(fit.Certificate.ExpEmpRisk) {
		t.Error("NaN certificate emitted silently")
	}
}

func TestSummaryExtremeEpsilons(t *testing.T) {
	g := rng.New(3)
	d := dataset.New([]dataset.Example{
		{X: []float64{0.2}}, {X: []float64{0.8}}, {X: []float64{0.5}},
	})
	// Minuscule budget: result is noise but structurally valid.
	s, err := ReleaseSummary(d, SummaryConfig{Feature: 0, Lo: 0, Hi: 1, Epsilon: 1e-6}, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s.Mean) || math.IsNaN(s.Count) {
		t.Error("NaN under tiny epsilon")
	}
	var total float64
	for _, v := range s.Histogram {
		if v < 0 || math.IsNaN(v) {
			t.Error("invalid histogram cell")
		}
		total += v
	}
	if total != 0 && math.Abs(total-1) > 1e-9 {
		t.Errorf("histogram total %v", total)
	}
	// Huge budget: near-exact.
	s2, err := ReleaseSummary(d, SummaryConfig{Feature: 0, Lo: 0, Hi: 1, Epsilon: 1e6}, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.Count-3) > 0.01 || math.Abs(s2.Mean-0.5) > 0.01 {
		t.Errorf("huge-budget summary inaccurate: count %v mean %v", s2.Count, s2.Mean)
	}
}

func TestDensityExtremeRanges(t *testing.T) {
	g := rng.New(5)
	d := dataset.New([]dataset.Example{{X: []float64{1e9}}, {X: []float64{-1e9}}})
	// All data clamps to the boundary bins; result stays a density.
	priv, err := PrivateHistogramDensity(d, 0, 4, 0, 1, 1, nil, g)
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	for _, v := range priv.Density {
		if math.IsNaN(v) || v < 0 {
			t.Fatal("invalid density value")
		}
		integral += v * 0.25
	}
	if math.Abs(integral-1) > 1e-9 {
		t.Errorf("integral %v", integral)
	}
}

func TestAccountInformationSingletonSpace(t *testing.T) {
	// A one-point sample space: MI must be exactly 0.
	grid := [][]float64{{0}, {1}}
	l, err := NewLearner(Config{
		Loss:    learn.NewClippedLoss(learn.AbsoluteLoss{}, 1),
		Thetas:  grid,
		Epsilon: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.BernoulliTable{}.FromBits([]int{1, 0, 1})
	acct, err := l.AccountInformation([]*dataset.Dataset{d}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if acct.MutualInformation != 0 {
		t.Errorf("singleton-space MI = %v", acct.MutualInformation)
	}
}
