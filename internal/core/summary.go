package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/obs"
	"repro/internal/rng"
)

// PrivateSummary is an ε-DP release of the basic statistics of one
// bounded feature: noisy count, clamped mean, selected quantiles, and a
// noisy histogram — the "statistical database" release scenario the
// paper's introduction opens with, assembled from the mechanism family
// with an explicit budget split recorded by an accountant.
type PrivateSummary struct {
	// Count is the Laplace-noised record count.
	Count float64
	// Mean is the Laplace-noised clamped mean.
	Mean float64
	// Quantiles maps requested probabilities to exponential-mechanism
	// selections.
	Quantiles map[float64]float64
	// Histogram is the noised, normalized histogram over [Lo, Hi).
	Histogram []float64
	// Lo, Hi bound the feature domain used for clamping and histogramming.
	Lo, Hi float64
	// Spent is the total privacy cost (basic composition over the parts).
	Spent mechanism.Guarantee
}

// SummaryConfig configures a PrivateSummary release.
type SummaryConfig struct {
	// Feature is the column index summarized.
	Feature int
	// Lo, Hi bound the feature domain (values are clamped into it).
	Lo, Hi float64
	// Bins is the histogram resolution (default 16 when zero).
	Bins int
	// Quantiles lists the probabilities to release (default {0.25, 0.5,
	// 0.75} when nil). Each must lie in (0, 1).
	Quantiles []float64
	// QuantileGrid is the candidate grid for quantile selection (default
	// 33 evenly spaced points over [Lo, Hi]).
	QuantileGrid []float64
	// Epsilon is the TOTAL budget, split evenly across the four parts
	// (count, mean, all quantiles together, histogram).
	Epsilon float64
}

// ReleaseSummary computes an ε-DP summary of one feature of d.
func ReleaseSummary(d *dataset.Dataset, cfg SummaryConfig, g *rng.RNG) (*PrivateSummary, error) {
	return ReleaseSummaryCtx(context.Background(), d, cfg, g)
}

// ReleaseSummaryCtx is ReleaseSummary under a context: when ctx carries
// a request span, the whole four-part release runs under a child span,
// so per-request waterfalls show the summary pipeline as one timed unit.
// The summary's internal accountant stays local (its Spent total is the
// release's price); the serve layer charges the tenant's accountant with
// the quoted guarantee and stamps the trace id there.
func ReleaseSummaryCtx(ctx context.Context, d *dataset.Dataset, cfg SummaryConfig, g *rng.RNG) (*PrivateSummary, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrBadConfig)
	}
	sp := obs.SpanFromContext(ctx).Child("summary")
	sp.SetAttr("feature", cfg.Feature)
	defer sp.End()
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("%w: epsilon must be positive", ErrBadConfig)
	}
	if cfg.Hi <= cfg.Lo {
		return nil, fmt.Errorf("%w: need Hi > Lo", ErrBadConfig)
	}
	if cfg.Bins == 0 {
		cfg.Bins = 16
	}
	if cfg.Bins < 0 {
		return nil, fmt.Errorf("%w: negative bins", ErrBadConfig)
	}
	if cfg.Quantiles == nil {
		cfg.Quantiles = []float64{0.25, 0.5, 0.75}
	}
	for _, p := range cfg.Quantiles {
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("%w: quantile %v outside (0,1)", ErrBadConfig, p)
		}
	}
	if cfg.QuantileGrid == nil {
		cfg.QuantileGrid = mathx.Linspace(cfg.Lo, cfg.Hi, 33)
	}
	var acct mechanism.Accountant
	part := cfg.Epsilon / 4

	// 1. Count (sensitivity 1 under replace-one is 0 — the size is fixed;
	// we release it with add/remove-style sensitivity 1 anyway so the
	// summary remains safe under either neighboring convention).
	countQ := mechanism.CountQuery(func(dataset.Example) bool { return true })
	countMech, err := mechanism.NewLaplace(countQ, part)
	if err != nil {
		return nil, err
	}
	countRes, err := acct.Reserve(countMech.Guarantee())
	if err != nil {
		return nil, err
	}
	defer countRes.Release()
	count := countMech.Release(d, g)[0]
	countRes.Commit(mechanism.SpendMeta{
		Mechanism:   "laplace",
		Sensitivity: countMech.Query.L1Sensitivity,
		Outcomes:    1,
	})

	// 2. Clamped mean.
	meanQ := mechanism.BoundedMeanQuery(cfg.Feature, cfg.Lo, cfg.Hi, d.Len())
	meanMech, err := mechanism.NewLaplace(meanQ, part)
	if err != nil {
		return nil, err
	}
	meanRes, err := acct.Reserve(meanMech.Guarantee())
	if err != nil {
		return nil, err
	}
	defer meanRes.Release()
	mean := meanMech.Release(d, g)[0]
	meanRes.Commit(mechanism.SpendMeta{
		Mechanism:   "laplace",
		Sensitivity: meanMech.Query.L1Sensitivity,
		Outcomes:    1,
	})

	// 3. Quantiles: the per-quantile budget is part/len(quantiles); each
	// exponential mechanism's guarantee is 2·mechEps·Δq with Δq = 1.
	quantiles := make(map[float64]float64, len(cfg.Quantiles))
	perQ := part / float64(len(cfg.Quantiles))
	//dp:loopbound k=len(cfg.Quantiles)
	for _, p := range cfg.Quantiles {
		qm, grid, err := mechanism.PrivateQuantile(cfg.Feature, p, cfg.QuantileGrid, perQ/2)
		if err != nil {
			return nil, err
		}
		qRes, err := acct.Reserve(qm.Guarantee())
		if err != nil {
			return nil, err
		}
		defer qRes.Release()
		quantiles[p] = grid[qm.Release(d, g)]
		qRes.Commit(mechanism.SpendMeta{
			Mechanism:   "expmech",
			Sensitivity: qm.Sensitivity,
			Outcomes:    len(grid),
		})
	}

	// 4. Histogram (normalized after noising; post-processing is free).
	histQ := mechanism.HistogramQuery(cfg.Feature, cfg.Bins, cfg.Lo, cfg.Hi)
	histMech, err := mechanism.NewLaplace(histQ, part)
	if err != nil {
		return nil, err
	}
	histRes, err := acct.Reserve(histMech.Guarantee())
	if err != nil {
		return nil, err
	}
	defer histRes.Release()
	noisy := histMech.Release(d, g)
	histRes.Commit(mechanism.SpendMeta{
		Mechanism:   "laplace",
		Sensitivity: histMech.Query.L1Sensitivity,
		Outcomes:    cfg.Bins,
	})
	var total float64
	for i, v := range noisy {
		if v < 0 {
			noisy[i] = 0
		}
		total += noisy[i]
	}
	hist := make([]float64, cfg.Bins)
	if total > 0 {
		for i, v := range noisy {
			hist[i] = v / total
		}
	}

	return &PrivateSummary{
		Count:     count,
		Mean:      mean,
		Quantiles: quantiles,
		Histogram: hist,
		Lo:        cfg.Lo,
		Hi:        cfg.Hi,
		Spent:     acct.BasicComposition(),
	}, nil
}
