package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func summaryData(g *rng.RNG, n int) *dataset.Dataset {
	d := &dataset.Dataset{}
	for i := 0; i < n; i++ {
		d.Append(dataset.Example{X: []float64{mathx.Clamp(g.Normal(0.5, 0.15), 0, 1)}})
	}
	return d
}

func TestReleaseSummary(t *testing.T) {
	g := rng.New(1)
	n := 5000
	d := summaryData(g, n)
	s, err := ReleaseSummary(d, SummaryConfig{Feature: 0, Lo: 0, Hi: 1, Epsilon: 8}, g)
	if err != nil {
		t.Fatal(err)
	}
	// Budget is fully accounted: four parts of ε/4 each.
	if !mathx.AlmostEqual(s.Spent.Epsilon, 8, 1e-9) {
		t.Errorf("spent = %v, want 8", s.Spent.Epsilon)
	}
	if math.Abs(s.Count-float64(n)) > 20 {
		t.Errorf("count = %v", s.Count)
	}
	if math.Abs(s.Mean-0.5) > 0.02 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Default quantiles present and ordered.
	q25, q50, q75 := s.Quantiles[0.25], s.Quantiles[0.5], s.Quantiles[0.75]
	if q25 > q50 || q50 > q75 {
		t.Errorf("quantiles out of order: %v %v %v", q25, q50, q75)
	}
	if math.Abs(q50-0.5) > 0.1 {
		t.Errorf("median = %v", q50)
	}
	// Histogram is a distribution with default 16 bins.
	if len(s.Histogram) != 16 {
		t.Fatalf("bins = %d", len(s.Histogram))
	}
	if !mathx.AlmostEqual(mathx.SumSlice(s.Histogram), 1, 1e-9) {
		t.Errorf("histogram sums to %v", mathx.SumSlice(s.Histogram))
	}
}

func TestReleaseSummaryValidation(t *testing.T) {
	g := rng.New(3)
	d := summaryData(g, 10)
	cases := []SummaryConfig{
		{Feature: 0, Lo: 0, Hi: 1, Epsilon: 0},
		{Feature: 0, Lo: 1, Hi: 0, Epsilon: 1},
		{Feature: 0, Lo: 0, Hi: 1, Epsilon: 1, Bins: -1},
		{Feature: 0, Lo: 0, Hi: 1, Epsilon: 1, Quantiles: []float64{0}},
		{Feature: 0, Lo: 0, Hi: 1, Epsilon: 1, Quantiles: []float64{1.5}},
	}
	for i, cfg := range cases {
		if _, err := ReleaseSummary(d, cfg, g); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: expected ErrBadConfig, got %v", i, err)
		}
	}
	if _, err := ReleaseSummary(&dataset.Dataset{}, SummaryConfig{Lo: 0, Hi: 1, Epsilon: 1}, g); !errors.Is(err, ErrBadConfig) {
		t.Error("empty dataset")
	}
}

func TestReleaseSummaryAccuracyImprovesWithEpsilon(t *testing.T) {
	g := rng.New(5)
	d := summaryData(g, 800)
	meanErr := func(eps float64) float64 {
		var w mathx.Welford
		for r := 0; r < 30; r++ {
			s, err := ReleaseSummary(d, SummaryConfig{Feature: 0, Lo: 0, Hi: 1, Epsilon: eps}, g)
			if err != nil {
				t.Fatal(err)
			}
			w.Add(math.Abs(s.Mean - 0.5))
		}
		return w.Mean()
	}
	low := meanErr(0.1)
	high := meanErr(10)
	if high >= low {
		t.Errorf("mean error at eps=10 (%v) not below eps=0.1 (%v)", high, low)
	}
}

func TestReleaseSummaryCustomConfig(t *testing.T) {
	g := rng.New(7)
	d := summaryData(g, 1000)
	s, err := ReleaseSummary(d, SummaryConfig{
		Feature:      0,
		Lo:           0,
		Hi:           1,
		Bins:         8,
		Quantiles:    []float64{0.1, 0.9},
		QuantileGrid: mathx.Linspace(0, 1, 101),
		Epsilon:      6,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Histogram) != 8 {
		t.Errorf("bins = %d", len(s.Histogram))
	}
	if len(s.Quantiles) != 2 {
		t.Errorf("quantiles = %v", s.Quantiles)
	}
	if s.Quantiles[0.1] >= s.Quantiles[0.9] {
		t.Errorf("tail quantiles out of order: %v", s.Quantiles)
	}
}
