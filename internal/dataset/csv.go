package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// CSVOptions configures FromCSV.
type CSVOptions struct {
	// LabelColumn is the index of the Y column; −1 means no label
	// (unsupervised data, Y left zero).
	LabelColumn int
	// HasHeader skips the first row.
	HasHeader bool
	// LabelMap optionally maps string labels (e.g. "spam"/"ham") to
	// numeric Y values; when nil the label column must parse as a float.
	LabelMap map[string]float64
}

// ErrBadCSV is returned for malformed CSV input.
var ErrBadCSV = errors.New("dataset: malformed CSV")

// FromCSV reads a dataset from CSV: every column except the label column
// becomes a feature (parsed as float64). Rows must be rectangular.
func FromCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate rectangularity ourselves for better errors
	d := &Dataset{}
	rowNum := 0
	width := -1
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrBadCSV, rowNum, err)
		}
		rowNum++
		if opts.HasHeader && rowNum == 1 {
			continue
		}
		if width == -1 {
			width = len(record)
			if width == 0 || (opts.LabelColumn >= width) {
				return nil, fmt.Errorf("%w: label column %d out of range for width %d", ErrBadCSV, opts.LabelColumn, width)
			}
		} else if len(record) != width {
			return nil, fmt.Errorf("%w: row %d has %d fields, want %d", ErrBadCSV, rowNum, len(record), width)
		}
		var e Example
		for col, field := range record {
			if col == opts.LabelColumn {
				y, err := parseLabel(field, opts.LabelMap)
				if err != nil {
					return nil, fmt.Errorf("%w: row %d label: %v", ErrBadCSV, rowNum, err)
				}
				e.Y = y
				continue
			}
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: row %d col %d: %v", ErrBadCSV, rowNum, col, err)
			}
			e.X = append(e.X, v)
		}
		d.Append(e)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("%w: no data rows", ErrBadCSV)
	}
	return d, nil
}

func parseLabel(field string, labelMap map[string]float64) (float64, error) {
	if labelMap != nil {
		y, ok := labelMap[field]
		if !ok {
			return 0, fmt.Errorf("unmapped label %q", field)
		}
		return y, nil
	}
	return strconv.ParseFloat(field, 64)
}

// ToCSV writes the dataset as CSV with the label as the last column
// (omitted when includeLabel is false).
func (d *Dataset) ToCSV(w io.Writer, includeLabel bool) error {
	cw := csv.NewWriter(w)
	for _, e := range d.Examples {
		record := make([]string, 0, len(e.X)+1)
		for _, v := range e.X {
			record = append(record, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if includeLabel {
			record = append(record, strconv.FormatFloat(e.Y, 'g', -1, 64))
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
