package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFromCSVBasic(t *testing.T) {
	in := "x1,x2,label\n0.5,1.0,1\n-0.25,2,-1\n"
	d, err := FromCSV(strings.NewReader(in), CSVOptions{LabelColumn: 2, HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Dim() != 2 {
		t.Fatalf("shape %d×%d", d.Len(), d.Dim())
	}
	if d.Examples[0].X[0] != 0.5 || d.Examples[0].Y != 1 {
		t.Errorf("row 0 = %+v", d.Examples[0])
	}
	if d.Examples[1].X[1] != 2 || d.Examples[1].Y != -1 {
		t.Errorf("row 1 = %+v", d.Examples[1])
	}
}

func TestFromCSVLabelMap(t *testing.T) {
	in := "1.0,spam\n2.0,ham\n"
	d, err := FromCSV(strings.NewReader(in), CSVOptions{
		LabelColumn: 1,
		LabelMap:    map[string]float64{"spam": 1, "ham": -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Examples[0].Y != 1 || d.Examples[1].Y != -1 {
		t.Errorf("labels: %v, %v", d.Examples[0].Y, d.Examples[1].Y)
	}
}

func TestFromCSVNoLabel(t *testing.T) {
	in := "1,2\n3,4\n"
	d, err := FromCSV(strings.NewReader(in), CSVOptions{LabelColumn: -1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dim() != 2 || d.Examples[0].Y != 0 {
		t.Errorf("unsupervised load: %+v", d.Examples[0])
	}
}

func TestFromCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"empty", "", CSVOptions{}},
		{"header only", "a,b\n", CSVOptions{HasHeader: true}},
		{"non-numeric feature", "a,1\n", CSVOptions{LabelColumn: 1}},
		{"non-numeric label", "1,a\n", CSVOptions{LabelColumn: 1}},
		{"ragged", "1,2\n3\n", CSVOptions{LabelColumn: -1}},
		{"label out of range", "1,2\n", CSVOptions{LabelColumn: 5}},
		{"unmapped label", "1,weird\n", CSVOptions{LabelColumn: 1, LabelMap: map[string]float64{"x": 1}}},
	}
	for _, tc := range cases {
		if _, err := FromCSV(strings.NewReader(tc.in), tc.opts); !errors.Is(err, ErrBadCSV) {
			t.Errorf("%s: expected ErrBadCSV, got %v", tc.name, err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := New([]Example{
		{X: []float64{0.5, -1.25}, Y: 1},
		{X: []float64{3, 4}, Y: -1},
	})
	var buf bytes.Buffer
	if err := d.ToCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(&buf, CSVOptions{LabelColumn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsNeighborOf(back) || !back.IsNeighborOf(d) {
		// IsNeighborOf with zero differences means equal.
		t.Errorf("round trip changed data: %+v vs %+v", d.Examples, back.Examples)
	}
	for i := range d.Examples {
		if !equalExample(d.Examples[i], back.Examples[i]) {
			t.Fatalf("row %d changed: %+v vs %+v", i, d.Examples[i], back.Examples[i])
		}
	}
}

func TestToCSVWithoutLabel(t *testing.T) {
	d := New([]Example{{X: []float64{1, 2}, Y: 9}})
	var buf bytes.Buffer
	if err := d.ToCSV(&buf, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "9") {
		t.Errorf("label leaked: %q", buf.String())
	}
}
