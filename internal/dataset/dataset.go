// Package dataset provides the sample abstraction of the paper — a set
// Ẑ = {(X₁,Y₁), …, (Xₙ,Yₙ)} of i.i.d. examples — together with the
// neighboring-dataset relation that differential privacy is defined over,
// synthetic generators for every workload in the experiment suite, and
// train/test utilities.
//
// Following Section 2.2 of the paper, two sample sets are neighbors if
// they differ in exactly one example (replace-one semantics, fixed n).
package dataset

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// Example is one labelled record Z = (X, Y). For unsupervised settings Y
// is ignored by convention.
type Example struct {
	X []float64
	Y float64
}

// Clone returns a deep copy of the example.
func (e Example) Clone() Example {
	return Example{X: append([]float64(nil), e.X...), Y: e.Y}
}

// Dataset is an ordered collection of examples. The zero value is an
// empty dataset ready for Append.
type Dataset struct {
	Examples []Example
}

// ErrEmptyDataset is returned by operations that need at least one example.
var ErrEmptyDataset = errors.New("dataset: empty dataset")

// New returns a dataset wrapping the given examples (not copied).
func New(examples []Example) *Dataset { return &Dataset{Examples: examples} }

// Len returns the number of examples n.
func (d *Dataset) Len() int { return len(d.Examples) }

// Dim returns the feature dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Examples) == 0 {
		return 0
	}
	return len(d.Examples[0].X)
}

// Append adds an example.
func (d *Dataset) Append(e Example) { d.Examples = append(d.Examples, e) }

// Clone returns a deep copy.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Examples: make([]Example, len(d.Examples))}
	for i, e := range d.Examples {
		out.Examples[i] = e.Clone()
	}
	return out
}

// ReplaceOne returns a new dataset equal to d except that the example at
// index i is replaced by e — the neighboring-dataset operation of the
// paper (Section 2.2). It panics if i is out of range.
func (d *Dataset) ReplaceOne(i int, e Example) *Dataset {
	if i < 0 || i >= len(d.Examples) {
		panic(fmt.Sprintf("dataset: ReplaceOne index %d out of range [0,%d)", i, len(d.Examples)))
	}
	out := d.Clone()
	out.Examples[i] = e.Clone()
	return out
}

// IsNeighborOf reports whether d and other differ in at most one example
// (and have equal length). Equal datasets are trivially neighbors.
func (d *Dataset) IsNeighborOf(other *Dataset) bool {
	if d.Len() != other.Len() {
		return false
	}
	diffs := 0
	for i := range d.Examples {
		if !equalExample(d.Examples[i], other.Examples[i]) {
			diffs++
			if diffs > 1 {
				return false
			}
		}
	}
	return true
}

func equalExample(a, b Example) bool {
	//dplint:ignore floateq intentional bitwise record equality: the neighbor relation compares stored values, not arithmetic results
	if a.Y != b.Y || len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] { //dplint:ignore floateq intentional bitwise record equality: stored values, not arithmetic results
			return false
		}
	}
	return true
}

// Fingerprint is a 128-bit content hash of a dataset, used as the key of
// gibbs.RiskCache. Two datasets with equal examples (bitwise, in order)
// have equal fingerprints; a collision between unequal datasets requires
// two independent 64-bit FNV hashes to collide simultaneously.
type Fingerprint [2]uint64

// Fingerprint hashes the dataset's full contents: n, every feature
// vector (length and IEEE-754 bits), and every label. It is a pure
// function of the data, so repeated calls on unchanged data are stable
// across processes and platforms.
func (d *Dataset) Fingerprint() Fingerprint {
	// Two FNV-1a streams with distinct offset bases, mixed with distinct
	// primes — cheap, allocation-free, and independent enough that the
	// 128-bit concatenation makes accidental collisions negligible.
	const (
		offset1 = 0xcbf29ce484222325
		offset2 = 0x9ae16a3b2f90404f
		prime1  = 0x100000001b3
		prime2  = 0x9ddfea08eb382d69
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			b := (v >> s) & 0xff
			h1 = (h1 ^ b) * prime1
			h2 = (h2 ^ b) * prime2
		}
	}
	mix(uint64(len(d.Examples)))
	for _, e := range d.Examples {
		mix(uint64(len(e.X)))
		for _, x := range e.X {
			mix(math.Float64bits(x))
		}
		mix(math.Float64bits(e.Y))
	}
	return Fingerprint{h1, h2}
}

// Labels returns a copy of all Y values.
func (d *Dataset) Labels() []float64 {
	out := make([]float64, len(d.Examples))
	for i, e := range d.Examples {
		out[i] = e.Y
	}
	return out
}

// Feature returns a copy of feature column j.
func (d *Dataset) Feature(j int) []float64 {
	out := make([]float64, len(d.Examples))
	for i, e := range d.Examples {
		out[i] = e.X[j]
	}
	return out
}

// Split partitions the dataset into a training set with the given fraction
// of the (shuffled) examples and a test set with the remainder. The split
// is deterministic given g. frac must lie in (0, 1).
func (d *Dataset) Split(frac float64, g *rng.RNG) (train, test *Dataset) {
	if frac <= 0 || frac >= 1 {
		panic("dataset: Split fraction must lie in (0,1)")
	}
	perm := g.Perm(d.Len())
	nTrain := int(math.Round(frac * float64(d.Len())))
	if nTrain == 0 {
		nTrain = 1
	}
	if nTrain == d.Len() {
		nTrain = d.Len() - 1
	}
	train = &Dataset{}
	test = &Dataset{}
	for i, p := range perm {
		if i < nTrain {
			train.Append(d.Examples[p].Clone())
		} else {
			test.Append(d.Examples[p].Clone())
		}
	}
	return train, test
}

// Subsample returns a new dataset of m examples drawn without replacement.
// It panics if m exceeds the dataset size.
func (d *Dataset) Subsample(m int, g *rng.RNG) *Dataset {
	if m < 0 || m > d.Len() {
		panic("dataset: Subsample size out of range")
	}
	perm := g.Perm(d.Len())
	out := &Dataset{Examples: make([]Example, 0, m)}
	for _, p := range perm[:m] {
		out.Append(d.Examples[p].Clone())
	}
	return out
}

// ClampFeatures clamps every feature into [lo, hi] in place and returns d.
// Bounded features are a precondition for the finite loss sensitivities
// that Theorem 4.1 needs.
func (d *Dataset) ClampFeatures(lo, hi float64) *Dataset {
	for i := range d.Examples {
		for j := range d.Examples[i].X {
			d.Examples[i].X[j] = mathx.Clamp(d.Examples[i].X[j], lo, hi)
		}
	}
	return d
}

// NormalizeRows scales every feature vector to have L2 norm at most 1,
// the standard preprocessing step of Chaudhuri et al.'s DP ERM setting
// (it bounds the per-example gradient and loss sensitivity). Rows with
// norm <= 1 are unchanged. It mutates d and returns it.
func (d *Dataset) NormalizeRows() *Dataset {
	for i := range d.Examples {
		norm := mathx.L2Norm(d.Examples[i].X)
		if norm > 1 {
			for j := range d.Examples[i].X {
				d.Examples[i].X[j] /= norm
			}
		}
	}
	return d
}
