package dataset

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestDatasetBasics(t *testing.T) {
	d := New([]Example{
		{X: []float64{1, 2}, Y: 1},
		{X: []float64{3, 4}, Y: -1},
	})
	if d.Len() != 2 || d.Dim() != 2 {
		t.Fatal("Len/Dim")
	}
	d.Append(Example{X: []float64{5, 6}, Y: 1})
	if d.Len() != 3 {
		t.Fatal("Append")
	}
	labels := d.Labels()
	if labels[0] != 1 || labels[1] != -1 || labels[2] != 1 {
		t.Errorf("Labels = %v", labels)
	}
	col := d.Feature(1)
	if col[0] != 2 || col[1] != 4 || col[2] != 6 {
		t.Errorf("Feature = %v", col)
	}
	empty := &Dataset{}
	if empty.Dim() != 0 {
		t.Error("empty Dim")
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New([]Example{{X: []float64{1}, Y: 2}})
	c := d.Clone()
	c.Examples[0].X[0] = 99
	c.Examples[0].Y = 99
	if d.Examples[0].X[0] != 1 || d.Examples[0].Y != 2 {
		t.Error("Clone must deep-copy")
	}
}

func TestReplaceOneAndNeighbors(t *testing.T) {
	d := New([]Example{
		{X: []float64{0}, Y: 0},
		{X: []float64{1}, Y: 1},
		{X: []float64{2}, Y: 0},
	})
	n := d.ReplaceOne(1, Example{X: []float64{9}, Y: 1})
	if d.Examples[1].X[0] != 1 {
		t.Error("ReplaceOne must not mutate the original")
	}
	if n.Examples[1].X[0] != 9 {
		t.Error("ReplaceOne did not replace")
	}
	if !d.IsNeighborOf(n) || !n.IsNeighborOf(d) {
		t.Error("single replacement must be a neighbor")
	}
	if !d.IsNeighborOf(d) {
		t.Error("a dataset is trivially its own neighbor")
	}
	two := n.ReplaceOne(0, Example{X: []float64{8}, Y: 0})
	if d.IsNeighborOf(two) {
		t.Error("two replacements is not a neighbor")
	}
	shorter := New(d.Examples[:2])
	if d.IsNeighborOf(shorter) {
		t.Error("length mismatch is not a neighbor")
	}
}

func TestReplaceOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReplaceOne out of range should panic")
		}
	}()
	New([]Example{{X: []float64{0}}}).ReplaceOne(5, Example{})
}

func TestSplit(t *testing.T) {
	g := rng.New(1)
	m := LogisticModel{Weights: []float64{1, -1}, Bias: 0}
	d := m.Generate(100, g)
	train, test := d.Split(0.8, g)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Same seed gives the same split.
	g2 := rng.New(1)
	d2 := m.Generate(100, g2)
	tr2, _ := d2.Split(0.8, g2)
	for i := range tr2.Examples {
		if !equalExample(tr2.Examples[i], train.Examples[i]) {
			t.Fatal("split not deterministic under equal seeds")
		}
	}
}

func TestSplitEdgeFractions(t *testing.T) {
	g := rng.New(2)
	d := BernoulliTable{P: 0.5}.Generate(3, g)
	tr, te := d.Split(0.99, g)
	if tr.Len() == d.Len() || te.Len() == 0 {
		t.Error("test set must be non-empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("Split(frac>=1) should panic")
		}
	}()
	d.Split(1.0, g)
}

func TestSubsample(t *testing.T) {
	g := rng.New(3)
	d := BernoulliTable{P: 0.5}.Generate(50, g)
	s := d.Subsample(10, g)
	if s.Len() != 10 {
		t.Errorf("Subsample len = %d", s.Len())
	}
	defer func() {
		if recover() == nil {
			t.Error("Subsample too large should panic")
		}
	}()
	d.Subsample(51, g)
}

func TestClampFeatures(t *testing.T) {
	d := New([]Example{{X: []float64{-5, 0.5, 5}}})
	d.ClampFeatures(-1, 1)
	want := []float64{-1, 0.5, 1}
	for i, w := range want {
		if d.Examples[0].X[i] != w {
			t.Errorf("clamped[%d] = %v, want %v", i, d.Examples[0].X[i], w)
		}
	}
}

func TestNormalizeRows(t *testing.T) {
	d := New([]Example{
		{X: []float64{3, 4}},   // norm 5, must shrink to 1
		{X: []float64{0.3, 0}}, // norm < 1, unchanged
	})
	d.NormalizeRows()
	if !mathx.AlmostEqual(mathx.L2Norm(d.Examples[0].X), 1, 1e-12) {
		t.Errorf("row 0 norm = %v", mathx.L2Norm(d.Examples[0].X))
	}
	if d.Examples[1].X[0] != 0.3 {
		t.Error("row with norm <= 1 must be unchanged")
	}
}

func TestLinearModelGenerate(t *testing.T) {
	g := rng.New(5)
	m := LinearModel{Weights: []float64{2, -1}, Bias: 0.5, Noise: 0}
	d := m.Generate(200, g)
	if d.Len() != 200 || d.Dim() != 2 {
		t.Fatal("shape")
	}
	for _, e := range d.Examples {
		want := 2*e.X[0] - e.X[1] + 0.5
		if !mathx.AlmostEqual(e.Y, want, 1e-12) {
			t.Fatalf("noise-free label mismatch: %v vs %v", e.Y, want)
		}
		for _, x := range e.X {
			if x < -1 || x >= 1 {
				t.Fatalf("feature out of range: %v", x)
			}
		}
	}
}

func TestLinearModelTrueRisk(t *testing.T) {
	m := LinearModel{Weights: []float64{1, 2}, Bias: 0, Noise: 0.5}
	// Perfect parameters: risk = noise².
	if !mathx.AlmostEqual(m.TrueRisk([]float64{1, 2}, 0), 0.25, 1e-12) {
		t.Error("risk at truth should be noise^2")
	}
	// Unit error in bias adds exactly 1; unit error in one weight adds 1/3.
	if !mathx.AlmostEqual(m.TrueRisk([]float64{1, 2}, 1), 1.25, 1e-12) {
		t.Error("bias error term")
	}
	if !mathx.AlmostEqual(m.TrueRisk([]float64{2, 2}, 0), 0.25+1.0/3, 1e-12) {
		t.Error("weight error term")
	}
	// Monte-Carlo cross-check.
	g := rng.New(7)
	w := []float64{0.5, 2.5}
	b := -0.3
	var acc mathx.Welford
	x := make([]float64, 2)
	for i := 0; i < 200000; i++ {
		x[0], x[1] = g.Uniform(-1, 1), g.Uniform(-1, 1)
		pred := mathx.Dot(w, x) + b
		truth := mathx.Dot(m.Weights, x) + m.Bias + g.Normal(0, m.Noise)
		acc.Add((pred - truth) * (pred - truth))
	}
	if math.Abs(acc.Mean()-m.TrueRisk(w, b))/m.TrueRisk(w, b) > 0.03 {
		t.Errorf("TrueRisk = %v, MC = %v", m.TrueRisk(w, b), acc.Mean())
	}
}

func TestLogisticModelGenerate(t *testing.T) {
	g := rng.New(9)
	m := LogisticModel{Weights: []float64{5, 0}, Bias: 0}
	d := m.Generate(5000, g)
	// With a strong weight on x0, the label should usually match sign(x0).
	agree := 0
	for _, e := range d.Examples {
		if e.Y != 1 && e.Y != -1 {
			t.Fatalf("label must be ±1, got %v", e.Y)
		}
		if (e.X[0] > 0) == (e.Y > 0) {
			agree++
		}
	}
	if frac := float64(agree) / float64(d.Len()); frac < 0.75 {
		t.Errorf("sign agreement %v too low for a strong model", frac)
	}
}

func TestLogisticBayesError(t *testing.T) {
	g := rng.New(11)
	// Zero weights: p = 1/2 everywhere, Bayes error = 1/2.
	m := LogisticModel{Weights: []float64{0}, Bias: 0}
	if got := m.BayesError(10000, g); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("BayesError of coin flip = %v", got)
	}
	// Strong model: Bayes error well below 1/2.
	strong := LogisticModel{Weights: []float64{10}, Bias: 0}
	if got := strong.BayesError(20000, g); got > 0.2 {
		t.Errorf("BayesError of strong model = %v", got)
	}
}

func TestGaussianMixture(t *testing.T) {
	g := rng.New(13)
	m := GaussianMixture{Means: []float64{-2, 2}, Sigmas: []float64{0.5, 0.5}, Weights: []float64{1, 1}}
	d := m.Generate(20000, g)
	var near int
	for _, e := range d.Examples {
		x := e.X[0]
		if math.Abs(x+2) < 1.5 || math.Abs(x-2) < 1.5 {
			near++
		}
	}
	if frac := float64(near) / float64(d.Len()); frac < 0.95 {
		t.Errorf("mixture samples not near modes: %v", frac)
	}
	// Density integrates to ~1 on a wide grid.
	var integral float64
	for _, x := range mathx.Linspace(-8, 8, 2001) {
		integral += m.Density(x)
	}
	integral *= 16.0 / 2000
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("density integral = %v", integral)
	}
}

func TestGaussianMixturePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched components should panic")
		}
	}()
	GaussianMixture{Means: []float64{0}, Sigmas: []float64{1, 2}, Weights: []float64{1}}.Generate(1, rng.New(1))
}

func TestBernoulliTable(t *testing.T) {
	g := rng.New(17)
	b := BernoulliTable{P: 0.3}
	d := b.Generate(100000, g)
	ones := CountOnes(d)
	if frac := float64(ones) / 100000; math.Abs(frac-0.3) > 0.01 {
		t.Errorf("ones fraction = %v", frac)
	}
	bits := b.FromBits([]int{1, 0, 1, 1})
	if CountOnes(bits) != 3 || bits.Len() != 4 {
		t.Error("FromBits")
	}
}

func TestLogPMFOfCount(t *testing.T) {
	b := BernoulliTable{P: 0.4}
	n := 10
	// PMF sums to 1.
	var logs []float64
	for k := 0; k <= n; k++ {
		logs = append(logs, b.LogPMFOfCount(n, k))
	}
	if total := mathx.LogSumExp(logs); !mathx.AlmostEqual(total, 0, 1e-10) {
		t.Errorf("PMF log-total = %v, want 0", total)
	}
	// Known value: P(k=0) = 0.6^10.
	if got := b.LogPMFOfCount(n, 0); !mathx.AlmostEqual(got, 10*math.Log(0.6), 1e-10) {
		t.Errorf("LogPMF(0) = %v", got)
	}
	if !math.IsInf(b.LogPMFOfCount(5, 6), -1) || !math.IsInf(b.LogPMFOfCount(5, -1), -1) {
		t.Error("out-of-range count must have log-prob -Inf")
	}
	// Degenerate p: P=1 puts all mass on k=n.
	sure := BernoulliTable{P: 1}
	if got := sure.LogPMFOfCount(3, 3); got != 0 {
		t.Errorf("P=1 LogPMF(3 of 3) = %v", got)
	}
}
