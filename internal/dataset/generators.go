package dataset

import (
	"math"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// LinearModel generates regression data Y = w·X + b + N(0, noise²) with
// features drawn uniformly from [-1, 1]^d. It is the workload for the
// private-regression experiment (E9).
type LinearModel struct {
	Weights []float64 // true coefficient vector w
	Bias    float64   // intercept b
	Noise   float64   // observation noise standard deviation (>= 0)
}

// Generate draws n examples using g.
func (m LinearModel) Generate(n int, g *rng.RNG) *Dataset {
	d := &Dataset{Examples: make([]Example, 0, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, len(m.Weights))
		for j := range x {
			x[j] = g.Uniform(-1, 1)
		}
		y := mathx.Dot(m.Weights, x) + m.Bias
		if m.Noise > 0 {
			y += g.Normal(0, m.Noise)
		}
		d.Append(Example{X: x, Y: y})
	}
	return d
}

// TrueRisk returns the expected squared-error risk of predicting with
// coefficients w and intercept b under this model: the irreducible noise
// variance plus the coefficient-error term E[(Δw·X + Δb)²] with
// X ~ U[-1,1]^d (so E[XᵢXⱼ] = δᵢⱼ/3).
func (m LinearModel) TrueRisk(w []float64, b float64) float64 {
	risk := m.Noise * m.Noise
	db := b - m.Bias
	risk += db * db
	for j := range m.Weights {
		dw := w[j] - m.Weights[j]
		risk += dw * dw / 3
	}
	return risk
}

// LogisticModel generates binary classification data with
// P(Y=+1 | X) = sigmoid(w·X + b) and features uniform on [-1, 1]^d.
// Labels are ±1. It is the workload for the PAC-Bayes and baseline
// comparison experiments (E3, E4, E7).
type LogisticModel struct {
	Weights []float64
	Bias    float64
}

// Generate draws n examples using g.
func (m LogisticModel) Generate(n int, g *rng.RNG) *Dataset {
	d := &Dataset{Examples: make([]Example, 0, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, len(m.Weights))
		for j := range x {
			x[j] = g.Uniform(-1, 1)
		}
		p := mathx.Sigmoid(mathx.Dot(m.Weights, x) + m.Bias)
		y := -1.0
		if g.Bernoulli(p) {
			y = 1.0
		}
		d.Append(Example{X: x, Y: y})
	}
	return d
}

// BayesError estimates the Bayes-optimal 0-1 risk of the model by Monte
// Carlo with nMC feature draws: E[min(p, 1-p)].
func (m LogisticModel) BayesError(nMC int, g *rng.RNG) float64 {
	var w mathx.Welford
	x := make([]float64, len(m.Weights))
	for i := 0; i < nMC; i++ {
		for j := range x {
			x[j] = g.Uniform(-1, 1)
		}
		p := mathx.Sigmoid(mathx.Dot(m.Weights, x) + m.Bias)
		w.Add(math.Min(p, 1-p))
	}
	return w.Mean()
}

// GaussianMixture generates unlabelled 1-D data from a mixture of normal
// components; it is the workload for the density-estimation experiment
// (E10). Weights need not be normalized.
type GaussianMixture struct {
	Means   []float64
	Sigmas  []float64
	Weights []float64
}

// Generate draws n scalar examples (stored in X[0], Y unused).
func (m GaussianMixture) Generate(n int, g *rng.RNG) *Dataset {
	if len(m.Means) != len(m.Sigmas) || len(m.Means) != len(m.Weights) {
		panic("dataset: GaussianMixture component length mismatch")
	}
	d := &Dataset{Examples: make([]Example, 0, n)}
	for i := 0; i < n; i++ {
		k := g.Categorical(m.Weights)
		x := g.Normal(m.Means[k], m.Sigmas[k])
		d.Append(Example{X: []float64{x}})
	}
	return d
}

// Density returns the true mixture density at x.
func (m GaussianMixture) Density(x float64) float64 {
	total := mathx.SumSlice(m.Weights)
	var p float64
	for k := range m.Means {
		z := (x - m.Means[k]) / m.Sigmas[k]
		p += m.Weights[k] / total * math.Exp(-0.5*z*z) / (m.Sigmas[k] * math.Sqrt(2*math.Pi))
	}
	return p
}

// BernoulliTable generates datasets of n binary records (each example is a
// single bit in X[0]) with success probability p. Because each record
// takes one of two values, a dataset is summarized exactly by its count of
// ones, making the full sample space enumerable — the substrate for the
// exact information-channel computations of Figure 1 (E6, E8).
type BernoulliTable struct {
	P float64
}

// Generate draws n binary examples.
func (b BernoulliTable) Generate(n int, g *rng.RNG) *Dataset {
	d := &Dataset{Examples: make([]Example, 0, n)}
	for i := 0; i < n; i++ {
		v := 0.0
		if g.Bernoulli(b.P) {
			v = 1.0
		}
		d.Append(Example{X: []float64{v}})
	}
	return d
}

// FromBits builds the dataset corresponding to an explicit bit pattern.
func (b BernoulliTable) FromBits(bits []int) *Dataset {
	d := &Dataset{Examples: make([]Example, 0, len(bits))}
	for _, bit := range bits {
		v := 0.0
		if bit != 0 {
			v = 1.0
		}
		d.Append(Example{X: []float64{v}})
	}
	return d
}

// CountOnes returns the number of records equal to one in a binary dataset.
func CountOnes(d *Dataset) int {
	c := 0
	for _, e := range d.Examples {
		if e.X[0] != 0 { //dplint:ignore floateq binary dataset records are exact 0/1 codes
			c++
		}
	}
	return c
}

// LogPMFOfCount returns the log-probability that a BernoulliTable sample
// of size n has exactly k ones: log C(n,k) + k log p + (n−k) log(1−p).
func (b BernoulliTable) LogPMFOfCount(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return logChoose(n, k) + mathx.XLogY(float64(k), b.P) + mathx.XLogY(float64(n-k), 1-b.P)
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
