package experiments

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/infotheory"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/pacbayes"
	"repro/internal/rng"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// prior on Θ (A1), how λ is chosen (A2), exact finite-Θ sampling vs MCMC
// (A3), which PAC-Bayes bound to certify with (A4), and Shannon vs
// min-entropy leakage accounting (A5).

// A1PriorAblation varies the prior π on Θ (uniform vs Gaussian at several
// widths) and reports the Gibbs posterior's expected empirical risk,
// KL(π̂‖π), and Catoni bound. The paper's bounds hold "for any π"; the
// ablation shows the bound's sensitivity to prior mismatch while the
// privacy certificate is untouched (the prior is data-independent).
func A1PriorAblation(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	n := 200
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0.3}
	d := model.Generate(n, g.Split())
	grid := learn.NewGrid(-2, 2, 2, 17)
	loss := learn.ZeroOneLoss{}
	risks := learn.RiskVector(loss, grid.Thetas(), d)
	lambda := pacbayes.SqrtNLambda(n, 2)
	delta := 0.05
	t := &Table{
		ID:      "A1",
		Title:   "Prior ablation: Gibbs posterior under different priors pi (lambda fixed, n=200)",
		Columns: []string{"prior", "E emp risk", "KL(post||prior)", "catoni bound", "privacy eps (unchanged)"},
	}
	priors := []struct {
		name string
		logp []float64
	}{
		{"uniform", grid.UniformLogPrior()},
		{"gaussian(2.0)", grid.GaussianLogPrior(2.0)},
		{"gaussian(1.0)", grid.GaussianLogPrior(1.0)},
		{"gaussian(0.3)", grid.GaussianLogPrior(0.3)},
	}
	eps := 2 * lambda * learn.SwapSensitivity(loss, n)
	var bounds []float64
	for _, pr := range priors {
		post, err := pacbayes.GibbsLogPosterior(pr.logp, risks, lambda)
		if err != nil {
			return nil, err
		}
		st, err := pacbayes.StatsFor(post, pr.logp, risks)
		if err != nil {
			return nil, err
		}
		b, err := pacbayes.CatoniBound(st.ExpEmpRisk, st.KL, lambda, n, delta)
		if err != nil {
			return nil, err
		}
		bounds = append(bounds, b)
		t.AddRow(pr.name, f(st.ExpEmpRisk), f(st.KL), f(b), f(eps))
	}
	// Shape: an over-concentrated prior (gaussian 0.3, far from the risk
	// minimizer at the box edge for this model) should pay in the bound.
	worstIsNarrow := mathx.ArgMax(bounds) == len(bounds)-1
	t.AddNote("expected shape: privacy is identical across priors (prior is data-independent); a badly mismatched narrow prior inflates KL and the bound")
	t.AddNote("narrowest prior has the worst bound: %v", worstIsNarrow)
	return t, nil
}

// A2LambdaSelection compares the √n heuristic against bound-optimal λ
// selection over a grid with union-bound correction (pacbayes.SelectLambda),
// reporting the certified bound and the implied privacy of each choice.
// It quantifies the privacy-utility knob that Section 4 of the paper
// describes: λ simultaneously sets the bound and ε.
func A2LambdaSelection(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0.3}
	grid := learn.NewGrid(-2, 2, 2, 17)
	loss := learn.ZeroOneLoss{}
	delta := 0.05
	t := &Table{
		ID:      "A2",
		Title:   "Lambda selection ablation: sqrt(n) heuristic vs union-bound grid selection",
		Columns: []string{"n", "heuristic lambda", "heuristic bound", "selected lambda", "selected bound", "implied eps (selected)"},
	}
	allOK := true
	for _, n := range []int{100, 400, 1600} {
		d := model.Generate(n, g.Split())
		risks := learn.RiskVector(loss, grid.Thetas(), d)
		logPrior := grid.UniformLogPrior()
		heur := pacbayes.SqrtNLambda(n, 2)
		post, err := pacbayes.GibbsLogPosterior(logPrior, risks, heur)
		if err != nil {
			return nil, err
		}
		st, err := pacbayes.StatsFor(post, logPrior, risks)
		if err != nil {
			return nil, err
		}
		heurBound, err := pacbayes.CatoniBound(st.ExpEmpRisk, st.KL, heur, n, delta)
		if err != nil {
			return nil, err
		}
		cands := mathx.Logspace(heur/16, heur*16, 9)
		sel, err := pacbayes.SelectLambda(logPrior, risks, cands, n, delta)
		if err != nil {
			return nil, err
		}
		// The heuristic at corrected confidence delta/9 would be looser;
		// fair comparison: selection bound must beat the heuristic's
		// full-delta bound or come close (within the union-bound tax).
		ok := sel.Bound <= heurBound*1.1
		allOK = allOK && ok
		impliedEps := 2 * sel.Lambda * learn.SwapSensitivity(loss, n)
		t.AddRow(fmt.Sprint(n), f(heur), f(heurBound), f(sel.Lambda), f(sel.Bound), f(impliedEps))
	}
	t.AddNote("expected shape: grid selection matches or beats the heuristic despite paying the union-bound tax; larger selected lambda means weaker implied privacy — the Section-4 tradeoff made explicit")
	t.AddNote("selection within 10%% of heuristic or better at every n: %v", allOK)
	return t, nil
}

// A3MCMCvsExact compares the exact finite-Θ Gibbs posterior against MCMC
// samplers (random-walk MH and MALA) targeting the same continuous Gibbs
// density, on a 1-D private mean-estimation problem where the posterior
// mean is computable both ways. It validates the computational pathway
// McSherry–Talwar leave open ("not always computationally efficient").
func A3MCMCvsExact(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	mcmcSamples := 20000
	if opts.Quick {
		mcmcSamples = 4000
	}
	n := 100
	data := dataset.BernoulliTable{P: 0.3}.Generate(n, g.Split())
	for i := range data.Examples {
		data.Examples[i].Y = data.Examples[i].X[0]
	}
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	lambda := 40.0
	t := &Table{
		ID:      "A3",
		Title:   "Exact finite-Theta Gibbs vs MCMC on the continuous Gibbs density (mean estimation, n=100, lambda=40)",
		Columns: []string{"method", "posterior mean", "|error| vs exact-fine", "acceptance", "ESS"},
	}
	// Reference: very fine grid (2001 points) exact posterior mean.
	fine := make([][]float64, 2001)
	for i, v := range mathx.Linspace(0, 1, 2001) {
		fine[i] = []float64{v}
	}
	estFine, err := gibbs.New(loss, fine, nil, lambda)
	if err != nil {
		return nil, err
	}
	ref := estFine.PosteriorMeanTheta(data)[0]
	t.AddRow("exact grid (2001 pts)", f(ref), "0", "-", "-")
	// Coarse grid.
	coarse := make([][]float64, 21)
	for i, v := range mathx.Linspace(0, 1, 21) {
		coarse[i] = []float64{v}
	}
	estCoarse, err := gibbs.New(loss, coarse, nil, lambda)
	if err != nil {
		return nil, err
	}
	cm := estCoarse.PosteriorMeanTheta(data)[0]
	t.AddRow("exact grid (21 pts)", f(cm), f(math.Abs(cm-ref)), "-", "-")
	// MCMC on the continuous density with a box prior.
	target := gibbs.ContinuousTarget(loss, data, lambda, gibbs.BoxLogPrior(0, 1))
	chainMean := func(samples [][]float64) (float64, []float64) {
		var w mathx.Welford
		chain := make([]float64, len(samples))
		for i, x := range samples {
			w.Add(x[0])
			chain[i] = x[0]
		}
		return w.Mean(), chain
	}
	mh := &gibbs.MHSampler{LogTarget: target, Step: 0.08}
	sMH, rateMH, err := mh.Run([]float64{0.5}, 2000, mcmcSamples, 2, g.Split())
	if err != nil {
		return nil, err
	}
	mMH, chainMH := chainMean(sMH)
	t.AddRow("RW Metropolis-Hastings", f(mMH), f(math.Abs(mMH-ref)), f(rateMH), f(gibbs.EffectiveSampleSize(chainMH)))
	mala := &gibbs.MALASampler{LogTarget: target, Tau: 0.06}
	sMALA, rateMALA, err := mala.Run([]float64{0.5}, 2000, mcmcSamples, 2, g.Split())
	if err != nil {
		return nil, err
	}
	mMALA, chainMALA := chainMean(sMALA)
	t.AddRow("MALA", f(mMALA), f(math.Abs(mMALA-ref)), f(rateMALA), f(gibbs.EffectiveSampleSize(chainMALA)))
	// MCMC should match the exact reference to ~1e-2; the coarse grid is
	// allowed its discretization error (grid spacing 0.05).
	agrees := math.Abs(mMH-ref) < 0.02 && math.Abs(mMALA-ref) < 0.02 && math.Abs(cm-ref) < 0.05
	t.AddNote("expected shape: MH and MALA agree with the fine-grid exact posterior mean to ~1e-2; the 21-point grid to within its 0.05 spacing")
	t.AddNote("all methods agree with the exact reference: %v", agrees)
	return t, nil
}

// A4BoundComparison evaluates the three classical PAC-Bayes bounds
// (Catoni at the heuristic λ, McAllester, Seeger) on the same Gibbs
// posterior across n — the "which bound should certify the learner"
// ablation.
func A4BoundComparison(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0.3}
	grid := learn.NewGrid(-2, 2, 2, 17)
	loss := learn.ZeroOneLoss{}
	delta := 0.05
	t := &Table{
		ID:      "A4",
		Title:   "PAC-Bayes bound comparison on the Gibbs posterior (delta=0.05)",
		Columns: []string{"n", "E emp risk", "catoni", "mcallester", "seeger", "seeger<=mcallester"},
	}
	allOK := true
	for _, n := range []int{100, 400, 1600} {
		d := model.Generate(n, g.Split())
		risks := learn.RiskVector(loss, grid.Thetas(), d)
		logPrior := grid.UniformLogPrior()
		lambda := pacbayes.SqrtNLambda(n, 2)
		post, err := pacbayes.GibbsLogPosterior(logPrior, risks, lambda)
		if err != nil {
			return nil, err
		}
		st, err := pacbayes.StatsFor(post, logPrior, risks)
		if err != nil {
			return nil, err
		}
		cb, err := pacbayes.CompareBounds(st.ExpEmpRisk, st.KL, lambda, n, delta)
		if err != nil {
			return nil, err
		}
		ok := cb.Seeger <= cb.McAllester+1e-9
		allOK = allOK && ok
		t.AddRow(fmt.Sprint(n), f(st.ExpEmpRisk), f(cb.Catoni), f(cb.McAllester), f(cb.Seeger), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: all bounds shrink with n; Seeger dominates McAllester at every n (kl-inversion is tighter)")
	t.AddNote("all rows ok: %v", allOK)
	return t, nil
}

// A5LeakageMeasures compares Shannon mutual information against Alvim et
// al.'s min-entropy leakage on the same Gibbs channel — the comparison of
// information measures the paper's Section 5 proposes.
func A5LeakageMeasures(opts Options) (*Table, error) {
	n := 10
	points := 7
	if opts.Quick {
		n = 8
		points = 5
	}
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	thetas := meanThetaGrid(points)
	t := &Table{
		ID:      "A5",
		Title:   fmt.Sprintf("Leakage measures on the Gibbs channel (binary mean estimation, n=%d): Shannon vs min-entropy", n),
		Columns: []string{"eps/record", "shannon MI bits", "min-entropy leakage bits", "min-entropy capacity bits", "post vuln"},
	}
	monotone := true
	prevME := -1.0
	for _, eps := range []float64{0.05, 0.2, 0.8, 3.2} {
		lambda := gibbs.LambdaForEpsilon(eps, meanLoss{}, n)
		est, err := gibbs.New(meanLoss{}, thetas, nil, lambda)
		if err != nil {
			return nil, err
		}
		ch, err := channel.FromMechanism(inputs, logPX, est)
		if err != nil {
			return nil, err
		}
		mi, err := ch.MutualInformation()
		if err != nil {
			return nil, err
		}
		me, err := ch.MinEntropyLeakage()
		if err != nil {
			return nil, err
		}
		mec, err := ch.MinEntropyCapacity()
		if err != nil {
			return nil, err
		}
		_, post, err := ch.BayesVulnerabilities()
		if err != nil {
			return nil, err
		}
		if me < prevME-1e-9 {
			monotone = false
		}
		prevME = me
		t.AddRow(f(eps), f(infotheory.Nats2Bits(mi)), f(infotheory.Nats2Bits(me)), f(infotheory.Nats2Bits(mec)), f(post))
	}
	t.AddNote("expected shape: both measures grow with eps; min-entropy leakage <= its capacity; posterior vulnerability grows toward 1 as privacy weakens")
	t.AddNote("min-entropy leakage monotone in eps: %v", monotone)
	return t, nil
}
