package experiments

import "testing"

func TestA1(t *testing.T) {
	tab, err := A1PriorAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	// Privacy column identical across priors.
	eps := tab.Rows[0][4]
	for _, row := range tab.Rows {
		if row[4] != eps {
			t.Errorf("privacy changed with prior: %v", row)
		}
	}
}

func TestA2(t *testing.T) {
	tab, err := A2LambdaSelection(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestA3(t *testing.T) {
	tab, err := A3MCMCvsExact(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestA4(t *testing.T) {
	tab, err := A4BoundComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("A4 row failed: %v", row)
		}
	}
}

func TestA5(t *testing.T) {
	tab, err := A5LeakageMeasures(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestIDsIncludeAblations(t *testing.T) {
	ids := IDs()
	if len(ids) != 23 {
		t.Fatalf("IDs = %v", ids)
	}
	if ids[12] != "A1" || ids[22] != "A11" {
		t.Errorf("ablation ordering: %v", ids)
	}
}

func TestA6(t *testing.T) {
	tab, err := A6PermuteAndFlip(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("A6 row failed: %v", row)
		}
	}
}

func TestA7(t *testing.T) {
	tab, err := A7MWEM(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestA8(t *testing.T) {
	tab, err := A8NoisyGD(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	if len(tab.Rows) != 3 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestE11(t *testing.T) {
	tab, err := E11ExpectationBound(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E11 row failed: %v", row)
		}
	}
}

func TestE12(t *testing.T) {
	tab, err := E12Reconstruction(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E12 row failed: %v", row)
		}
	}
}

func TestA9(t *testing.T) {
	tab, err := A9LocalVsCentral(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestA10(t *testing.T) {
	tab, err := A10PrivatePCA(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestA11(t *testing.T) {
	tab, err := A11SparseVector(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}
