package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/pacbayes"
	"repro/internal/rng"
)

// E11ExpectationBound validates Equation 1 of the paper — the
// in-expectation form of Catoni's bound:
//
//	E_Ẑ E_{θ~π̂} R(θ) ≤ [1 − exp(−(λ/n)·E_Ẑ E_π̂ R̂ − E_Ẑ KL(π̂‖π)/n)] / [1 − exp(−λ/n)]
//
// and the decomposition remark beneath it: E_Ẑ KL(π̂‖π) =
// I(Ẑ;θ) + KL(E_Ẑ π̂ ‖ π), so the expected-KL term is minimized by the
// "optimal prior" π = E_Ẑ π̂ where it equals the mutual information. All
// expectations are estimated over many resamples; the MI identity is
// verified against the average-posterior construction.
func E11ExpectationBound(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	resamples := 600
	trueRiskMC := 40_000
	if opts.Quick {
		resamples = 80
		trueRiskMC = 8_000
	}
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0.3}
	grid := learn.NewGrid(-2, 2, 2, 9) // 81 predictors
	loss := learn.ZeroOneLoss{}
	logPrior := grid.UniformLogPrior()
	trueRisks := make([]float64, grid.Size())
	{
		mc := model.Generate(trueRiskMC, g.Split())
		for i, th := range grid.Thetas() {
			trueRisks[i] = learn.EmpiricalRisk(loss, th, mc)
		}
	}
	t := &Table{
		ID:      "E11",
		Title:   "Equation 1 (in-expectation Catoni bound) and the optimal-prior decomposition, |Theta|=81",
		Columns: []string{"n", "lambda", "E true risk", "Eq.1 bound", "E KL(post||unif)", "I(Z;theta)+KL(avg||unif)", "bound holds"},
	}
	allOK := true
	for _, n := range []int{60, 240} {
		lambda := 2 * math.Sqrt(float64(n))
		var expTrueRisk, expEmpRisk, expKL mathx.Welford
		// Average posterior for the decomposition check (E_Ẑ π̂).
		avgPost := make([]float64, grid.Size())
		// Mutual information term E_Ẑ KL(π̂ ‖ E_Ẑ π̂) needs two passes;
		// store each posterior compactly.
		posts := make([][]float64, 0, resamples)
		for r := 0; r < resamples; r++ {
			d := model.Generate(n, g.Split())
			est, err := gibbs.New(loss, grid.Thetas(), nil, lambda)
			if err != nil {
				return nil, err
			}
			post := est.LogPosterior(d)
			st, err := pacbayes.StatsFor(post, logPrior, est.Risks(d))
			if err != nil {
				return nil, err
			}
			expEmpRisk.Add(st.ExpEmpRisk)
			expKL.Add(st.KL)
			var tr mathx.KahanSum
			lin := make([]float64, grid.Size())
			for i, lp := range post {
				p := math.Exp(lp)
				lin[i] = p
				avgPost[i] += p / float64(resamples)
				tr.Add(p * trueRisks[i])
			}
			expTrueRisk.Add(tr.Sum())
			posts = append(posts, lin)
		}
		bound, err := pacbayes.CatoniExpectationBound(expEmpRisk.Mean(), expKL.Mean(), lambda, n)
		if err != nil {
			return nil, err
		}
		holds := expTrueRisk.Mean() <= bound
		allOK = allOK && holds
		// Decomposition: E KL(π̂‖π) = E KL(π̂‖avg) + KL(avg‖π).
		var miTerm mathx.Welford
		for _, p := range posts {
			var kl float64
			for i := range p {
				if p[i] > 0 {
					kl += p[i] * math.Log(p[i]/avgPost[i])
				}
			}
			miTerm.Add(kl)
		}
		var klAvgPrior float64
		for i := range avgPost {
			if avgPost[i] > 0 {
				klAvgPrior += avgPost[i] * math.Log(avgPost[i]/math.Exp(logPrior[i]))
			}
		}
		decomposed := miTerm.Mean() + klAvgPrior
		if !mathx.AlmostEqual(decomposed, expKL.Mean(), 1e-6) {
			allOK = false
		}
		t.AddRow(fmt.Sprint(n), f(lambda), f(expTrueRisk.Mean()), f(bound),
			f(expKL.Mean()), f(decomposed), fmt.Sprint(holds))
	}
	t.AddNote("expected shape: Eq.1 bound dominates the resample-averaged true risk at every n; the KL column equals I+KL(avg||prior) exactly (Catoni's decomposition, Section 4)")
	t.AddNote("all rows ok: %v", allOK)
	return t, nil
}
