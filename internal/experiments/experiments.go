// Package experiments contains the reproduction harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E12 plus the
// A-series ablations), each
// regenerating a table that validates one of the paper's theorems or
// figures. Each experiment is deterministic given Options.Seed; the
// Quick flag shrinks workloads for use inside benchmarks.
//
// The tables are the paper-shaped output: since the paper itself reports
// no numbers (it is a theory paper), EXPERIMENTS.md records the expected
// *shape* of every table and whether the run confirms it.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options configures an experiment run.
type Options struct {
	// Seed makes the run reproducible.
	Seed int64
	// Quick shrinks the workload (fewer Monte-Carlo samples, smaller
	// sweeps) so benchmarks finish promptly.
	Quick bool
	// Workers caps the worker fan-out of sweep-based experiments (0 =
	// all CPUs, 1 = serial). Every setting produces identical tables;
	// see SweepGrid.
	Workers int
	// Obs optionally instruments the sweeps (per-cell spans, worker
	// utilization metrics). Instrumentation only observes — tables are
	// bit-identical with it on or off. Nil disables observability.
	Obs *obs.Observer
	// Ctx, when non-nil, lets deadlines and SIGINT cancel sweep-based
	// experiments between cells (claimed cells always complete, so a
	// checkpoint log never records torn results). Nil means no
	// cancellation.
	Ctx context.Context
	// Checkpoint, when non-nil, persists each completed sweep cell and
	// resumes past cells already recorded — see SweepGridCtx. Tables are
	// bit-identical with it on, off, or interrupted and resumed.
	Checkpoint *checkpoint.Log
}

// parallel returns the fan-out options for sweep-based experiments.
func (o Options) parallel() parallel.Options {
	return parallel.Options{Workers: o.Workers, Obs: o.Obs}
}

// ctx returns the run context, defaulting to context.Background().
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// sweep returns the SweepGridCtx configuration for this run.
func (o Options) sweep() SweepConfig {
	return SweepConfig{Parallel: o.parallel(), Checkpoint: o.Checkpoint}
}

// Table is an experiment result in the shape of a paper table.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes what the table shows and the claim it validates.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes carry pass/fail verdicts and caveats.
	Notes []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Runner is an experiment entry point.
type Runner func(Options) (*Table, error)

// ErrUnknownExperiment is returned by Run for an unregistered ID.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment id")

// registry maps experiment IDs to runners.
var registry = map[string]Runner{
	"E1":  E1LaplacePrivacy,
	"E2":  E2ExpMechPrivacy,
	"E3":  E3CatoniBound,
	"E4":  E4GibbsOptimality,
	"E5":  E5GibbsPrivacy,
	"E6":  E6MIRiskTradeoff,
	"E7":  E7BaselineComparison,
	"E8":  E8LeakageBounds,
	"E9":  E9PrivateRegression,
	"E10": E10DensityEstimation,
	"E11": E11ExpectationBound,
	"E12": E12Reconstruction,
	"A1":  A1PriorAblation,
	"A2":  A2LambdaSelection,
	"A3":  A3MCMCvsExact,
	"A4":  A4BoundComparison,
	"A5":  A5LeakageMeasures,
	"A6":  A6PermuteAndFlip,
	"A7":  A7MWEM,
	"A8":  A8NoisyGD,
	"A9":  A9LocalVsCentral,
	"A10": A10PrivatePCA,
	"A11": A11SparseVector,
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	// Order: main experiments E1..E10 first, then ablations A1..A5,
	// each numerically.
	rank := func(id string) (group, num int) {
		var n int
		if _, err := fmt.Sscanf(id, "E%d", &n); err == nil {
			return 0, n
		}
		if _, err := fmt.Sscanf(id, "A%d", &n); err == nil {
			return 1, n
		}
		return 2, 0
	}
	sort.Slice(out, func(i, j int) bool {
		gi, ni := rank(out[i])
		gj, nj := rank(out[j])
		if gi != gj {
			return gi < gj
		}
		return ni < nj
	})
	return out
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
	}
	return r(opts)
}

// RunAll executes every experiment in ID order, writing each table to w.
func RunAll(opts Options, w io.Writer) error {
	for _, id := range IDs() {
		t, err := Run(id, opts)
		if err != nil {
			return fmt.Errorf("experiments: %s failed: %w", id, err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunMany executes the given experiments concurrently (bounded by
// workers) and returns the tables in the requested order. Each
// experiment is internally deterministic given opts.Seed, so concurrent
// execution changes wall-clock time only, never results.
func RunMany(ids []string, opts Options, workers int) ([]*Table, error) {
	if workers <= 0 {
		workers = 1
	}
	type result struct {
		idx int
		t   *Table
		err error
	}
	jobs := make(chan int)
	results := make(chan result, len(ids))
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range jobs {
				t, err := Run(ids[idx], opts)
				results <- result{idx: idx, t: t, err: err}
			}
		}()
	}
	go func() {
		for i := range ids {
			jobs <- i
		}
		close(jobs)
	}()
	out := make([]*Table, len(ids))
	var firstErr error
	for range ids {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("experiments: %s failed: %w", ids[r.idx], r.err)
		}
		out[r.idx] = r.t
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// f formats a float compactly for table cells.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }
