package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Seed: 42, Quick: true} }

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9", "A10", "A11"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", quickOpts()); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("expected ErrUnknownExperiment, got %v", err)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 5)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T: demo", "a", "bb", "1", "2", "note: hello 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// checkVerdict asserts every table note containing a boolean verdict says
// true — the experiment's own pass criterion.
func checkVerdict(t *testing.T, tab *Table) {
	t.Helper()
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", tab.ID)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, ": false") {
			t.Errorf("%s verdict failed: %s", tab.ID, n)
		}
	}
}

func TestE1(t *testing.T) {
	tab, err := E1LaplacePrivacy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	if len(tab.Rows) != 4 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestE2(t *testing.T) {
	tab, err := E2ExpMechPrivacy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	// Every row's audited epsilon must be within budget ("true" cells).
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E2 row failed: %v", row)
		}
	}
}

func TestE3(t *testing.T) {
	tab, err := E3CatoniBound(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestE4(t *testing.T) {
	tab, err := E4GibbsOptimality(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E4 row failed: %v", row)
		}
	}
}

func TestE5(t *testing.T) {
	tab, err := E5GibbsPrivacy(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E5 row failed: %v", row)
		}
	}
}

func TestE6(t *testing.T) {
	tab, err := E6MIRiskTradeoff(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	if len(tab.Rows) != 5 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
}

func TestE7(t *testing.T) {
	tab, err := E7BaselineComparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestE8(t *testing.T) {
	tab, err := E8LeakageBounds(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E8 row failed: %v", row)
		}
	}
}

func TestE9(t *testing.T) {
	tab, err := E9PrivateRegression(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestE10(t *testing.T) {
	tab, err := E10DensityEstimation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkVerdict(t, tab)
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	var buf bytes.Buffer
	if err := RunAll(quickOpts(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, id+":") {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := E2ExpMechPrivacy(Options{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := E2ExpMechPrivacy(Options{Seed: 7, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.Render(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Error("equal seeds must give identical tables")
	}
}

func TestRunManyParallelMatchesSequential(t *testing.T) {
	ids := []string{"E2", "E5", "A5"}
	seq, err := RunMany(ids, quickOpts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(ids, quickOpts(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		var a, b bytes.Buffer
		if err := seq[i].Render(&a); err != nil {
			t.Fatal(err)
		}
		if err := par[i].Render(&b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: parallel result differs from sequential", ids[i])
		}
	}
}

func TestRunManyErrors(t *testing.T) {
	if _, err := RunMany([]string{"E2", "NOPE"}, quickOpts(), 2); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("expected ErrUnknownExperiment, got %v", err)
	}
}
