package experiments

import (
	"fmt"
	"math"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// newGibbsClassifier builds a zero-one-loss Gibbs learner over the grid.
func newGibbsClassifier(grid *learn.Grid, epsilon float64) (*core.Learner, error) {
	return core.NewLearner(core.Config{
		Loss:    learn.ZeroOneLoss{},
		Thetas:  grid.Thetas(),
		Epsilon: epsilon,
	})
}

// A6PermuteAndFlip compares the exponential mechanism against
// permute-and-flip (McKenna–Sheldon) for private selection at equal ε:
// exact expected quality gap and exact privacy audit for both. PF must
// never lose on utility while satisfying the same budget — extending the
// paper's "most general mechanism" with its modern refinement.
func A6PermuteAndFlip(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	pairCount := 150
	if opts.Quick {
		pairCount = 30
	}
	grid := mathx.Linspace(0, 1, 15)
	n := 41
	//dp:sensitivity Δq=1 (replace-one moves the below-count by at most 1; |·| is 1-Lipschitz)
	quality := func(d *dataset.Dataset, u int) float64 {
		c := grid[u]
		var below float64
		for _, e := range d.Examples {
			if e.X[0] < c {
				below++
			}
		}
		return -math.Abs(below - float64(d.Len())/2)
	}
	gen := func(h *rng.RNG) *dataset.Dataset {
		d := &dataset.Dataset{}
		for i := 0; i < n; i++ {
			d.Append(dataset.Example{X: []float64{h.Float64()}})
		}
		return d
	}
	t := &Table{
		ID:      "A6",
		Title:   "Selection mechanisms at equal eps: exponential mechanism vs permute-and-flip (private median, |U|=15)",
		Columns: []string{"eps", "EM quality gap", "PF quality gap", "PF/EM", "EM audit", "PF audit", "both within eps"},
	}
	allOK := true
	pfNeverWorse := true
	for _, eps := range []float64{0.2, 0.8, 3.2} {
		em, err := mechanism.NewExponential(quality, len(grid), 1, eps/2)
		if err != nil {
			return nil, err
		}
		pf, err := mechanism.NewPermuteAndFlip(quality, len(grid), 1, eps)
		if err != nil {
			return nil, err
		}
		// Average exact quality gaps over sample datasets.
		var gapEM, gapPF mathx.Welford
		for r := 0; r < 40; r++ {
			d := gen(g)
			q := func(u int) float64 { return quality(d, u) }
			gapEM.Add(mechanism.ExpectedQualityGap(em.LogProbabilities(d), q))
			gapPF.Add(mechanism.ExpectedQualityGap(pf.LogProbabilities(d), q))
		}
		pairs := audit.RandomNeighborPairs(gen, pairCount, g)
		auditEM := audit.ExactAudit(em, pairs)
		auditPF := audit.ExactAudit(pf, pairs)
		ok := auditEM <= eps+1e-9 && auditPF <= eps+1e-9
		allOK = allOK && ok
		if gapPF.Mean() > gapEM.Mean()+1e-9 {
			pfNeverWorse = false
		}
		t.AddRow(f(eps), f(gapEM.Mean()), f(gapPF.Mean()), f(gapPF.Mean()/gapEM.Mean()),
			f(auditEM), f(auditPF), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: PF gap <= EM gap at every eps (McKenna-Sheldon dominance), both audits within the budget")
	t.AddNote("both mechanisms within eps at every row: %v; PF never worse: %v", allOK, pfNeverWorse)
	return t, nil
}

// A7MWEM reproduces the Hardt–Ligett–McSherry MWEM shape on interval
// workloads: max query error of the private synthetic distribution vs ε
// and n, against the uniform-distribution baseline.
func A7MWEM(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 20
	ns := []int{500, 5000}
	epss := []float64{0.2, 1, 5}
	if opts.Quick {
		reps = 4
		epss = []float64{1, 5}
	}
	domain := 16
	queries := mechanism.IntervalQueries(domain)
	t := &Table{
		ID:      "A7",
		Title:   fmt.Sprintf("MWEM private synthetic data: max interval-query error (domain=%d, %d queries, T=8)", domain, len(queries)),
		Columns: []string{"n", "eps", "mwem max error", "uniform baseline", "improves"},
	}
	uniform := make([]float64, domain)
	for v := range uniform {
		uniform[v] = 1 / float64(domain)
	}
	allImprove := true
	for _, n := range ns {
		values := make([]int, n)
		for i := range values {
			if g.Bernoulli(0.8) {
				values[i] = 2 + g.Intn(3)
			} else {
				values[i] = g.Intn(domain)
			}
		}
		d := &dataset.Dataset{}
		for _, v := range values {
			d.Append(dataset.Example{X: []float64{float64(v)}})
		}
		for _, eps := range epss {
			m, err := mechanism.NewMWEM(domain, queries, 8, eps)
			if err != nil {
				return nil, err
			}
			truth := m.Histogram(d)
			baseline := m.MaxQueryError(uniform, truth)
			var errW mathx.Welford
			for r := 0; r < reps; r++ {
				synth, err := m.Run(d, g)
				if err != nil {
					return nil, err
				}
				errW.Add(m.MaxQueryError(synth, truth))
			}
			improves := errW.Mean() < baseline
			if eps >= 1 && !improves {
				allImprove = false
			}
			t.AddRow(fmt.Sprint(n), f(eps), f(errW.Mean()), f(baseline), fmt.Sprint(improves))
		}
	}
	t.AddNote("expected shape: error decreases with eps and n; at eps >= 1 MWEM beats the uniform baseline decisively (HLM12 shape)")
	t.AddNote("all eps>=1 rows improve on uniform: %v", allImprove)
	return t, nil
}

// A8NoisyGD adds iterative noisy gradient descent to the private-learner
// comparison: test error vs ε for NoisyGD (with its composed (ε, δ)
// budget) alongside the Gibbs estimator at matching per-run ε. NoisyGD's
// δ > 0 makes the comparison approximate but shows the expected ordering.
func A8NoisyGD(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 15
	if opts.Quick {
		reps = 3
	}
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0}
	train := model.Generate(2000, g.Split()).NormalizeRows()
	test := model.Generate(4000, g.Split()).NormalizeRows()
	grid := learn.NewGrid(-2, 2, 2, 17)
	t := &Table{
		ID:      "A8",
		Title:   "Iterative vs one-shot private learning: NoisyGD (composed (eps,delta)) vs Gibbs (pure eps), n=2000",
		Columns: []string{"target eps", "noisygd eps (composed)", "noisygd delta", "noisygd err", "gibbs err", "non-private err"},
	}
	nonPriv, err := learn.LogisticRegression(train, 1e-4, learn.GDOptions{MaxIter: 400})
	if err != nil && err != learn.ErrNotConverged {
		return nil, err
	}
	nonPrivErr := learn.ClassificationError(nonPriv, test)
	converges := true
	for _, targetEps := range []float64{0.5, 2, 8} {
		// Calibrate the per-step budget so the advanced composition lands
		// near the target: eps0 ≈ target / sqrt(2·T·ln(1/δ')).
		steps := 30
		eps0 := targetEps / math.Sqrt(2*float64(steps)*math.Log(1e6))
		if eps0 > 1 {
			eps0 = 1
		}
		var gdErr mathx.Welford
		var composed float64
		var delta float64
		for r := 0; r < reps; r++ {
			res, err := learn.NoisyGD(train, 2, learn.LogisticGradient, learn.NoisyGDConfig{
				Steps:        steps,
				LearningRate: 0.8,
				ClipNorm:     1,
				StepEpsilon:  eps0,
				StepDelta:    1e-8,
			}, g)
			if err != nil {
				return nil, err
			}
			gdErr.Add(learn.ClassificationError(res.Theta, test))
			composed = res.Guarantee.Epsilon
			delta = res.Guarantee.Delta
		}
		learner, err := newGibbsClassifier(grid, targetEps)
		if err != nil {
			return nil, err
		}
		var gibbsErr mathx.Welford
		for r := 0; r < reps; r++ {
			fit, err := learner.Fit(train, g)
			if err != nil {
				return nil, err
			}
			gibbsErr.Add(learn.ClassificationError(fit.Theta, test))
		}
		//dplint:ignore floateq sweep-grid sentinel: targetEps is copied verbatim from the literal grid
		if targetEps == 8.0 && gdErr.Mean() > nonPrivErr+0.1 {
			converges = false
		}
		t.AddRow(f(targetEps), f(composed), fmt.Sprintf("%.1e", delta), f(gdErr.Mean()), f(gibbsErr.Mean()), f(nonPrivErr))
	}
	t.AddNote("expected shape: both methods approach the non-private error as eps grows; NoisyGD spends a delta > 0 that the pure-eps Gibbs estimator does not need")
	t.AddNote("noisygd near non-private at the largest budget: %v", converges)
	return t, nil
}

// A10PrivatePCA measures the symmetric-input-perturbation DP-PCA: the
// fraction of true variance captured by the private top component, swept
// over (n, ε), against the exact PCA ceiling.
func A10PrivatePCA(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 25
	ns := []int{500, 2000, 8000}
	epss := []float64{0.2, 1, 5}
	if opts.Quick {
		reps = 5
		ns = []int{500, 2000}
		epss = []float64{1, 5}
	}
	t := &Table{
		ID:      "A10",
		Title:   "Private PCA (symmetric input perturbation): captured variance of the top component",
		Columns: []string{"n", "eps", "private captured", "exact captured", "ratio"},
	}
	improves := true
	var first, last float64
	for _, n := range ns {
		d := pcaData(g.Split(), n)
		trueC := learn.SecondMomentMatrix(d)
		exact, err := learn.PCA(d)
		if err != nil {
			return nil, err
		}
		exactVar := learn.CapturedVariance(trueC, exact.Components, 1)
		for _, eps := range epss {
			var w mathx.Welford
			for r := 0; r < reps; r++ {
				res, err := learn.PrivatePCA(d, eps, g)
				if err != nil {
					return nil, err
				}
				w.Add(learn.CapturedVariance(trueC, res.Components, 1))
			}
			if n == ns[0] && eps == epss[0] { //dplint:ignore floateq sweep-grid sentinel: eps is copied verbatim from the literal grid
				first = w.Mean()
			}
			last = w.Mean()
			t.AddRow(fmt.Sprint(n), f(eps), f(w.Mean()), f(exactVar), f(w.Mean()/exactVar))
		}
	}
	if last <= first {
		improves = false
	}
	t.AddNote("expected shape: captured variance rises toward the exact ceiling with both n and eps (noise scale is 2d/(n*eps))")
	t.AddNote("largest (n,eps) beats smallest: %v", improves)
	return t, nil
}

// pcaData generates anisotropic rows in the unit ball for the PCA
// experiments.
func pcaData(g *rng.RNG, n int) *dataset.Dataset {
	d := &dataset.Dataset{}
	dir := []float64{3, 1, 0.2}
	dirNorm := mathx.L2Norm(dir)
	for i := 0; i < n; i++ {
		s := g.Normal(0, 0.5)
		x := make([]float64, 3)
		for j := range x {
			x[j] = s*dir[j]/dirNorm + g.Normal(0, 0.05)
		}
		d.Append(dataset.Example{X: x})
	}
	return d.NormalizeRows()
}

// A11SparseVector exercises the sparse vector technique: a stream of
// counting queries against a threshold, measuring precision and recall of
// the above-threshold reports as ε varies. SVT's budget pays only for
// positive reports, so even many negative queries stay cheap — the
// adaptive-query capability the one-shot mechanisms lack.
func A11SparseVector(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 40
	if opts.Quick {
		reps = 8
	}
	n := 1000
	d := dataset.BernoulliTable{P: 0.5}.Generate(n, g.Split())
	// Queries: counts of ones in 40 fixed random subsets of the records;
	// half the subsets are large (above threshold), half small.
	numQueries := 40
	threshold := 150.0
	subsets := make([][]int, numQueries)
	truth := make([]bool, numQueries)
	for qi := range subsets {
		// Even queries use subsets of 400 records (expected ≈200 ones,
		// above the threshold); odd queries use 100 (≈50 ones, below).
		size := 100
		if qi%2 == 0 {
			size = 400
		}
		subsets[qi] = g.Perm(n)[:size]
	}
	queryFns := make([]func(*dataset.Dataset) float64, numQueries)
	for qi, subset := range subsets {
		sub := subset
		queryFns[qi] = func(dd *dataset.Dataset) float64 {
			var c float64
			for _, idx := range sub {
				if dd.Examples[idx].X[0] == 1 { //dplint:ignore floateq binary dataset records are exact 0/1 codes
					c++
				}
			}
			return c
		}
		truth[qi] = queryFns[qi](d) >= threshold
	}
	t := &Table{
		ID:      "A11",
		Title:   fmt.Sprintf("Sparse vector technique: %d adaptive counting queries, threshold %.0f, n=%d", numQueries, threshold, n),
		Columns: []string{"eps", "precision", "recall", "queries answered", "positives found"},
	}
	improves := true
	var firstF1, lastF1 float64
	for _, eps := range []float64{0.1, 0.5, 2, 8} {
		var prec, rec mathx.Welford
		var answered, found mathx.Welford
		for r := 0; r < reps; r++ {
			sv, err := mechanism.NewSparseVector(d, threshold, eps, numQueries, g.Split())
			if err != nil {
				return nil, err
			}
			tp, fp, fn := 0, 0, 0
			asked := 0
			positives := 0
			for qi := 0; qi < numQueries; qi++ {
				got, err := sv.Query(queryFns[qi])
				if err != nil {
					break
				}
				asked++
				if got {
					positives++
					if truth[qi] {
						tp++
					} else {
						fp++
					}
				} else if truth[qi] {
					fn++
				}
			}
			if tp+fp > 0 {
				prec.Add(float64(tp) / float64(tp+fp))
			}
			if tp+fn > 0 {
				rec.Add(float64(tp) / float64(tp+fn))
			}
			answered.Add(float64(asked))
			found.Add(float64(positives))
		}
		f1 := 2 * prec.Mean() * rec.Mean() / math.Max(prec.Mean()+rec.Mean(), 1e-12)
		if eps == 0.1 { //dplint:ignore floateq sweep-grid sentinel: eps is copied verbatim from the literal grid
			firstF1 = f1
		}
		lastF1 = f1
		t.AddRow(f(eps), f(prec.Mean()), f(rec.Mean()), f(answered.Mean()), f(found.Mean()))
	}
	if lastF1 <= firstF1 {
		improves = false
	}
	t.AddNote("expected shape: precision and recall rise toward 1 as eps grows; at tiny eps the noised threshold scrambles the answers")
	t.AddNote("F1 improves from smallest to largest eps: %v", improves)
	return t, nil
}
