package experiments

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/infotheory"
	"repro/internal/learn"
	"repro/internal/mathx"
)

// meanLoss is the bounded mean-estimation loss on binary records used by
// the exact-channel experiments: l(θ, x) = (θ − x)² ∈ [0, 1]. It depends
// on the data only through the record value, so the count of ones is a
// sufficient statistic and the collapsed sample space is exact.
type meanLoss struct{}

func (meanLoss) Loss(theta []float64, e dataset.Example) float64 {
	d := theta[0] - e.X[0]
	return d * d
}
func (meanLoss) Bound() float64 { return 1 }
func (meanLoss) Name() string   { return "mean-squared(binary)" }

func meanThetaGrid(points int) [][]float64 {
	axis := mathx.Linspace(0, 1, points)
	out := make([][]float64, points)
	for i, v := range axis {
		out[i] = []float64{v}
	}
	return out
}

// E6MIRiskTradeoff regenerates the paper's central object (Section 4,
// Figure 1): the information channel Ẑ → θ of the Gibbs estimator on an
// enumerable sample space, swept over λ. It reports, per λ: the exact
// mutual information I(Ẑ;θ), the channel-expected empirical risk, the
// Section-4 objective E R̂ + (1/λ)I, the objective of the rate–distortion
// optimal channel (Theorem 4.2's self-consistent Gibbs channel), and the
// gap to competitor channels.
func E6MIRiskTradeoff(opts Options) (*Table, error) {
	n := 12
	points := 9
	if opts.Quick {
		n = 8
		points = 5
	}
	p := 0.5
	inputs, logPX := channel.CountSampleSpace(n, p)
	thetas := meanThetaGrid(points)
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("MI-risk tradeoff over the Figure-1 channel (Theorem 4.2): binary mean estimation, n=%d, |Theta|=%d", n, points),
		Columns: []string{"lambda", "eps (2*lambda/n)", "I(Z;theta) nats", "E risk", "objective", "RD-optimal obj", "gibbs within"},
	}
	var prevMI, prevRisk float64 = -1, math.Inf(1)
	monotone := true
	for _, lambda := range []float64{0.25, 1, 4, 16, 64} {
		est, err := gibbs.New(meanLoss{}, thetas, nil, lambda)
		if err != nil {
			return nil, err
		}
		ch, err := channel.FromMechanism(inputs, logPX, est)
		if err != nil {
			return nil, err
		}
		mi, err := ch.MutualInformation()
		if err != nil {
			return nil, err
		}
		risks := make([][]float64, len(inputs))
		for i, d := range inputs {
			risks[i] = est.Risks(d)
		}
		expRisk, err := ch.ExpectedValue(risks)
		if err != nil {
			return nil, err
		}
		obj := expRisk + mi/lambda
		_, rdObj, err := channel.RateDistortionChannel(risks, logPX, lambda, 2000, 1e-12)
		if err != nil {
			return nil, err
		}
		if mi < prevMI-1e-9 || expRisk > prevRisk+1e-9 {
			monotone = false
		}
		prevMI, prevRisk = mi, expRisk
		// The uniform-prior Gibbs channel is near-optimal; report its
		// relative excess objective over the self-consistent optimum.
		within := (obj - rdObj) / math.Max(rdObj, 1e-12)
		t.AddRow(f(lambda), f(2*lambda/float64(n)), f(mi), f(expRisk), f(obj), f(rdObj), f(within))
	}
	t.AddNote("expected shape: I increases and E risk decreases monotonically in lambda (privacy-utility tradeoff of Section 4)")
	t.AddNote("expected shape: gibbs objective is within a small factor of the rate-distortion optimum, and the RD fixed point is itself a Gibbs channel (tested in internal/channel)")
	t.AddNote("monotone tradeoff observed: %v", monotone)
	return t, nil
}

// E8LeakageBounds compares the measured leakage of the Gibbs channel
// against the upper bounds discussed in the paper's related/future work
// (Alvim et al.; Section 5): the trivial ε·diam cap and the channel's
// Shannon capacity (Blahut–Arimoto), in bits.
func E8LeakageBounds(opts Options) (*Table, error) {
	n := 10
	points := 7
	if opts.Quick {
		n = 8
		points = 5
	}
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	thetas := meanThetaGrid(points)
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Leakage vs upper bounds (Section 5 / Alvim et al.): binary mean estimation, n=%d", n),
		Columns: []string{"eps/record", "I(Z;theta) bits", "capacity bits", "eps*n cap bits", "I<=cap<=eps*n"},
	}
	allOK := true
	for _, eps := range []float64{0.05, 0.2, 0.8, 3.2} {
		lambda := gibbs.LambdaForEpsilon(eps, meanLoss{}, n)
		est, err := gibbs.New(meanLoss{}, thetas, nil, lambda)
		if err != nil {
			return nil, err
		}
		ch, err := channel.FromMechanism(inputs, logPX, est)
		if err != nil {
			return nil, err
		}
		mi, err := ch.MutualInformation()
		if err != nil {
			return nil, err
		}
		capacity, err := ch.Capacity(1e-10, 50_000)
		if err != nil {
			return nil, err
		}
		cap2 := channel.DPLeakageCapNats(eps, n)
		ok := mi <= capacity+1e-6 && capacity <= cap2+1e-6
		allOK = allOK && ok
		t.AddRow(f(eps), f(infotheory.Nats2Bits(mi)), f(infotheory.Nats2Bits(capacity)),
			f(infotheory.Nats2Bits(cap2)), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: I <= capacity <= eps*n at every eps; capacity is much tighter than the trivial cap at small eps")
	t.AddNote("all rows ok: %v", allOK)
	return t, nil
}

// riskForGridOnInputs computes per-input per-θ risks for a loss.
func riskForGridOnInputs(l learn.Loss, thetas [][]float64, inputs []*dataset.Dataset) [][]float64 {
	out := make([][]float64, len(inputs))
	for i, d := range inputs {
		out[i] = learn.RiskVector(l, thetas, d)
	}
	return out
}
