package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// E7BaselineComparison positions the Gibbs estimator against the
// Chaudhuri et al. baselines the paper cites (Section 1): non-private
// ERM, output perturbation, and objective perturbation, on DP logistic
// classification. Test error is averaged over repetitions, per (n, ε);
// the (n, ε) cells fan out through SweepGrid.
func E7BaselineComparison(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 30
	testN := 4000
	grid := Grid{Ns: []int{250, 1000, 4000}, Epss: []float64{0.1, 0.5, 2}}
	if opts.Quick {
		reps = 5
		testN = 1500
		grid = Grid{Ns: []int{250, 1000}, Epss: []float64{0.5, 2}}
	}
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0}
	thetas := learn.NewGrid(-2, 2, 2, 17).Thetas()
	lambdaReg := 0.01
	gd := learn.GDOptions{MaxIter: 400, Tol: 1e-7}
	t := &Table{
		ID:      "E7",
		Title:   "DP logistic classification: Gibbs vs Chaudhuri-et-al. baselines (test 0-1 error)",
		Columns: []string{"n", "eps", "non-private ERM", "gibbs", "output pert", "objective pert"},
	}
	test := model.Generate(testN, g.Split()).NormalizeRows()
	bayes := model.BayesError(20_000, g.Split())
	// Per-n shared work, serial in n order; the sweep cells only read it.
	trains := make([]*dataset.Dataset, len(grid.Ns))
	ermErrs := make([]float64, len(grid.Ns))
	for i, n := range grid.Ns {
		trains[i] = model.Generate(n, g.Split()).NormalizeRows()
		erm, err := learn.LogisticRegression(trains[i], lambdaReg, gd)
		if err != nil && err != learn.ErrNotConverged {
			return nil, err
		}
		ermErrs[i] = learn.ClassificationError(erm, test)
	}
	// Fields are exported so checkpointed cells round-trip through JSON.
	type cellMeans struct{ Gibbs, Out, Obj float64 }
	results, err := SweepGridCtx(opts.ctx(), grid, g, opts.sweep(), func(c Cell) (cellMeans, error) {
		// Cells fan out at the sweep level, so each learner runs serial
		// inside its cell (nested fan-out would oversubscribe).
		learner, err := core.NewLearner(core.Config{
			Loss:     learn.ZeroOneLoss{},
			Thetas:   thetas,
			Epsilon:  c.Eps,
			Parallel: parallel.Options{Workers: 1},
		})
		if err != nil {
			return cellMeans{}, err
		}
		train := trains[c.Row]
		var gibbsErr, outErr, objErr mathx.Welford
		for r := 0; r < reps; r++ {
			fit, err := learner.Fit(train, c.RNG)
			if err != nil {
				return cellMeans{}, err
			}
			gibbsErr.Add(learn.ClassificationError(fit.Theta, test))
			thOut, err := learn.OutputPerturbationLogistic(train, lambdaReg, c.Eps, gd, c.RNG)
			if err != nil {
				return cellMeans{}, err
			}
			outErr.Add(learn.ClassificationError(thOut, test))
			thObj, err := learn.ObjectivePerturbationLogistic(train, lambdaReg, c.Eps, gd, c.RNG)
			if err != nil {
				return cellMeans{}, err
			}
			objErr.Add(learn.ClassificationError(thObj, test))
		}
		return cellMeans{Gibbs: gibbsErr.Mean(), Out: outErr.Mean(), Obj: objErr.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	shapeOK := true
	for k, res := range results {
		i, j := k/len(grid.Epss), k%len(grid.Epss)
		// Shape check: every private learner approaches non-private ERM
		// at the largest (n, ε) cell.
		if i == len(grid.Ns)-1 && j == len(grid.Epss)-1 {
			for _, e := range []float64{res.Gibbs, res.Obj} {
				if e > ermErrs[i]+0.1 {
					shapeOK = false
				}
			}
		}
		t.AddRow(fmt.Sprint(grid.Ns[i]), f(grid.Epss[j]), f(ermErrs[i]), f(res.Gibbs), f(res.Out), f(res.Obj))
	}
	t.AddNote("bayes error of the generating model ≈ %s", f(bayes))
	t.AddNote("expected shape: all private methods improve with n and eps, approaching non-private ERM; gibbs and objective perturbation dominate output perturbation at small eps (Chaudhuri et al. shape)")
	t.AddNote("large-(n,eps) cells near non-private ERM: %v", shapeOK)
	return t, nil
}

// E9PrivateRegression implements the paper's future-work direction of
// differentially-private regression via the Gibbs posterior (Section 5):
// clipped squared loss over a coefficient grid, swept over (n, ε) with
// SweepGrid, with true risk computed in closed form under the generator.
func E9PrivateRegression(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 40
	grid := Grid{Ns: []int{100, 400, 1600}, Epss: []float64{0.2, 1, 5}}
	if opts.Quick {
		reps = 6
		grid = Grid{Ns: []int{100, 400}, Epss: []float64{1, 5}}
	}
	model := dataset.LinearModel{Weights: []float64{1.2, -0.6}, Noise: 0.3}
	coefGrid := learn.NewGrid(-2, 2, 2, 17)
	clip := coefGrid.SquaredLossBound(mathx.L2Norm([]float64{1, 1}), 3)
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, clip)
	t := &Table{
		ID:      "E9",
		Title:   "Private regression via Gibbs posterior (Section 5 future work): clipped squared loss, |Theta|=289",
		Columns: []string{"n", "eps", "mean true risk (gibbs)", "true risk (non-priv ERM)", "noise floor"},
	}
	floor := model.Noise * model.Noise
	trains := make([]*dataset.Dataset, len(grid.Ns))
	ermRisks := make([]float64, len(grid.Ns))
	for i, n := range grid.Ns {
		trains[i] = model.Generate(n, g.Split())
		ermIdx, _ := learn.ERMFinite(loss, coefGrid.Thetas(), trains[i])
		ermRisks[i] = model.TrueRisk(coefGrid.At(ermIdx), 0)
	}
	results, err := SweepGridCtx(opts.ctx(), grid, g, opts.sweep(), func(c Cell) (float64, error) {
		learner, err := core.NewLearner(core.Config{
			Loss:     loss,
			Thetas:   coefGrid.Thetas(),
			Epsilon:  c.Eps,
			Parallel: parallel.Options{Workers: 1},
		})
		if err != nil {
			return 0, err
		}
		var risk mathx.Welford
		for r := 0; r < reps; r++ {
			fit, err := learner.Fit(trains[c.Row], c.RNG)
			if err != nil {
				return 0, err
			}
			risk.Add(model.TrueRisk(fit.Theta, 0))
		}
		return risk.Mean(), nil
	})
	if err != nil {
		return nil, err
	}
	for k, mean := range results {
		i, j := k/len(grid.Epss), k%len(grid.Epss)
		t.AddRow(fmt.Sprint(grid.Ns[i]), f(grid.Epss[j]), f(mean), f(ermRisks[i]), f(floor))
	}
	improves := results[len(results)-1] < results[0]
	t.AddNote("expected shape: gibbs true risk decreases in both n and eps, approaching the ERM risk and the irreducible noise floor")
	t.AddNote("risk at largest (n,eps) below smallest: %v", improves)
	return t, nil
}

// E10DensityEstimation implements the paper's future-work direction of
// differentially-private density estimation (Section 5): the
// Laplace-histogram release and the Gibbs-selected histogram, measured by
// L1 distance to the true mixture density, swept over (n, ε) with
// SweepGrid.
func E10DensityEstimation(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 40
	grid := Grid{Ns: []int{200, 1000, 5000}, Epss: []float64{0.2, 1, 5}}
	if opts.Quick {
		reps = 6
		grid = Grid{Ns: []int{200, 1000}, Epss: []float64{1, 5}}
	}
	mix := dataset.GaussianMixture{Means: []float64{-1.2, 1.2}, Sigmas: []float64{0.4, 0.6}, Weights: []float64{1, 1.5}}
	lo, hi := -4.0, 4.0
	bins := 32
	// Reference: the true density discretized onto the same bins.
	truth := &core.DensityEstimate{Lo: lo, Hi: hi, Density: make([]float64, bins)}
	w := (hi - lo) / float64(bins)
	var mass float64
	for i := 0; i < bins; i++ {
		x := lo + (float64(i)+0.5)*w
		truth.Density[i] = mix.Density(x)
		mass += truth.Density[i] * w
	}
	for i := range truth.Density {
		truth.Density[i] /= mass // renormalize over the window
	}
	t := &Table{
		ID:      "E10",
		Title:   "Private density estimation (Section 5 future work): L1 error to the true mixture, 32 bins on [-4,4]",
		Columns: []string{"n", "eps", "laplace hist L1", "gibbs hist L1", "non-private L1"},
	}
	datasets := make([]*dataset.Dataset, len(grid.Ns))
	nonPrivL1 := make([]float64, len(grid.Ns))
	for i, n := range grid.Ns {
		datasets[i] = mix.Generate(n, g.Split())
		nonPriv, err := core.NonPrivateHistogramDensity(datasets[i], 0, bins, lo, hi)
		if err != nil {
			return nil, err
		}
		nonPrivL1[i], err = nonPriv.L1Distance(truth)
		if err != nil {
			return nil, err
		}
	}
	// Fields are exported so checkpointed cells round-trip through JSON.
	type cellMeans struct{ Lap, Gibbs float64 }
	results, err := SweepGridCtx(opts.ctx(), grid, g, opts.sweep(), func(c Cell) (cellMeans, error) {
		d := datasets[c.Row]
		var lapL1, gibbsL1 mathx.Welford
		for r := 0; r < reps; r++ {
			priv, err := core.PrivateHistogramDensity(d, 0, bins, lo, hi, c.Eps, nil, c.RNG)
			if err != nil {
				return cellMeans{}, err
			}
			l1, err := priv.L1Distance(truth)
			if err != nil {
				return cellMeans{}, err
			}
			lapL1.Add(l1)
			gd, _, err := core.GibbsHistogramDensity(d, 0, []int{8, 16, 32, 64}, lo, hi, 10, c.Eps, nil, c.RNG)
			if err != nil {
				return cellMeans{}, err
			}
			// Rebin the Gibbs density onto the reference grid for L1.
			re := make([]float64, bins)
			for i := 0; i < bins; i++ {
				x := lo + (float64(i)+0.5)*w
				re[i] = gd.At(x)
			}
			reEst := &core.DensityEstimate{Lo: lo, Hi: hi, Density: re}
			l1g, err := reEst.L1Distance(truth)
			if err != nil {
				return cellMeans{}, err
			}
			gibbsL1.Add(l1g)
		}
		return cellMeans{Lap: lapL1.Mean(), Gibbs: gibbsL1.Mean()}, nil
	})
	if err != nil {
		return nil, err
	}
	for k, res := range results {
		i, j := k/len(grid.Epss), k%len(grid.Epss)
		t.AddRow(fmt.Sprint(grid.Ns[i]), f(grid.Epss[j]), f(res.Lap), f(res.Gibbs), f(nonPrivL1[i]))
	}
	improves := results[len(results)-1].Lap < results[0].Lap
	t.AddNote("expected shape: both private estimators' L1 error decreases in n and eps, approaching the non-private histogram's error")
	t.AddNote("error at largest (n,eps) below smallest: %v", improves)
	return t, nil
}
