package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// E7BaselineComparison positions the Gibbs estimator against the
// Chaudhuri et al. baselines the paper cites (Section 1): non-private
// ERM, output perturbation, and objective perturbation, on DP logistic
// classification. Test error is averaged over repetitions, per (n, ε).
func E7BaselineComparison(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 30
	testN := 4000
	ns := []int{250, 1000, 4000}
	epss := []float64{0.1, 0.5, 2}
	if opts.Quick {
		reps = 5
		testN = 1500
		ns = []int{250, 1000}
		epss = []float64{0.5, 2}
	}
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0}
	grid := learn.NewGrid(-2, 2, 2, 17)
	lambdaReg := 0.01
	gd := learn.GDOptions{MaxIter: 400, Tol: 1e-7}
	t := &Table{
		ID:      "E7",
		Title:   "DP logistic classification: Gibbs vs Chaudhuri-et-al. baselines (test 0-1 error)",
		Columns: []string{"n", "eps", "non-private ERM", "gibbs", "output pert", "objective pert"},
	}
	test := model.Generate(testN, g.Split()).NormalizeRows()
	bayes := model.BayesError(20_000, g.Split())
	shapeOK := true
	for _, n := range ns {
		train := model.Generate(n, g.Split()).NormalizeRows()
		// Non-private ERM (deterministic given the data).
		erm, err := learn.LogisticRegression(train, lambdaReg, gd)
		if err != nil && err != learn.ErrNotConverged {
			return nil, err
		}
		ermErr := learn.ClassificationError(erm, test)
		for _, eps := range epss {
			learner, err := core.NewLearner(core.Config{
				Loss:    learn.ZeroOneLoss{},
				Thetas:  grid.Thetas(),
				Epsilon: eps,
			})
			if err != nil {
				return nil, err
			}
			var gibbsErr, outErr, objErr mathx.Welford
			for r := 0; r < reps; r++ {
				fit, err := learner.Fit(train, g)
				if err != nil {
					return nil, err
				}
				gibbsErr.Add(learn.ClassificationError(fit.Theta, test))
				thOut, err := learn.OutputPerturbationLogistic(train, lambdaReg, eps, gd, g)
				if err != nil {
					return nil, err
				}
				outErr.Add(learn.ClassificationError(thOut, test))
				thObj, err := learn.ObjectivePerturbationLogistic(train, lambdaReg, eps, gd, g)
				if err != nil {
					return nil, err
				}
				objErr.Add(learn.ClassificationError(thObj, test))
			}
			// Shape check: every private learner approaches non-private
			// ERM at the largest (n, ε) cell.
			//dplint:ignore floateq sweep-grid sentinel: eps is copied verbatim from the literal grid
			if n == ns[len(ns)-1] && eps == epss[len(epss)-1] {
				for _, e := range []float64{gibbsErr.Mean(), objErr.Mean()} {
					if e > ermErr+0.1 {
						shapeOK = false
					}
				}
			}
			t.AddRow(fmt.Sprint(n), f(eps), f(ermErr), f(gibbsErr.Mean()), f(outErr.Mean()), f(objErr.Mean()))
		}
	}
	t.AddNote("bayes error of the generating model ≈ %s", f(bayes))
	t.AddNote("expected shape: all private methods improve with n and eps, approaching non-private ERM; gibbs and objective perturbation dominate output perturbation at small eps (Chaudhuri et al. shape)")
	t.AddNote("large-(n,eps) cells near non-private ERM: %v", shapeOK)
	return t, nil
}

// E9PrivateRegression implements the paper's future-work direction of
// differentially-private regression via the Gibbs posterior (Section 5):
// clipped squared loss over a coefficient grid, swept over (n, ε), with
// true risk computed in closed form under the generator.
func E9PrivateRegression(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 40
	ns := []int{100, 400, 1600}
	epss := []float64{0.2, 1, 5}
	if opts.Quick {
		reps = 6
		ns = []int{100, 400}
		epss = []float64{1, 5}
	}
	model := dataset.LinearModel{Weights: []float64{1.2, -0.6}, Noise: 0.3}
	grid := learn.NewGrid(-2, 2, 2, 17)
	clip := grid.SquaredLossBound(mathx.L2Norm([]float64{1, 1}), 3)
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, clip)
	t := &Table{
		ID:      "E9",
		Title:   "Private regression via Gibbs posterior (Section 5 future work): clipped squared loss, |Theta|=289",
		Columns: []string{"n", "eps", "mean true risk (gibbs)", "true risk (non-priv ERM)", "noise floor"},
	}
	floor := model.Noise * model.Noise
	improves := true
	var lastRow, firstRow float64
	for _, n := range ns {
		train := model.Generate(n, g.Split())
		ermIdx, _ := learn.ERMFinite(loss, grid.Thetas(), train)
		ermTheta := grid.At(ermIdx)
		ermRisk := model.TrueRisk(ermTheta, 0)
		for _, eps := range epss {
			learner, err := core.NewLearner(core.Config{Loss: loss, Thetas: grid.Thetas(), Epsilon: eps})
			if err != nil {
				return nil, err
			}
			var risk mathx.Welford
			for r := 0; r < reps; r++ {
				fit, err := learner.Fit(train, g)
				if err != nil {
					return nil, err
				}
				risk.Add(model.TrueRisk(fit.Theta, 0))
			}
			//dplint:ignore floateq sweep-grid sentinel: eps is copied verbatim from the literal grid
			if n == ns[0] && eps == epss[0] {
				firstRow = risk.Mean()
			}
			lastRow = risk.Mean()
			t.AddRow(fmt.Sprint(n), f(eps), f(risk.Mean()), f(ermRisk), f(floor))
		}
	}
	if lastRow >= firstRow {
		improves = false
	}
	t.AddNote("expected shape: gibbs true risk decreases in both n and eps, approaching the ERM risk and the irreducible noise floor")
	t.AddNote("risk at largest (n,eps) below smallest: %v", improves)
	return t, nil
}

// E10DensityEstimation implements the paper's future-work direction of
// differentially-private density estimation (Section 5): the
// Laplace-histogram release and the Gibbs-selected histogram, measured by
// L1 distance to the true mixture density, swept over ε and n.
func E10DensityEstimation(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 40
	ns := []int{200, 1000, 5000}
	epss := []float64{0.2, 1, 5}
	if opts.Quick {
		reps = 6
		ns = []int{200, 1000}
		epss = []float64{1, 5}
	}
	mix := dataset.GaussianMixture{Means: []float64{-1.2, 1.2}, Sigmas: []float64{0.4, 0.6}, Weights: []float64{1, 1.5}}
	lo, hi := -4.0, 4.0
	bins := 32
	// Reference: the true density discretized onto the same bins.
	truth := &core.DensityEstimate{Lo: lo, Hi: hi, Density: make([]float64, bins)}
	w := (hi - lo) / float64(bins)
	var mass float64
	for i := 0; i < bins; i++ {
		x := lo + (float64(i)+0.5)*w
		truth.Density[i] = mix.Density(x)
		mass += truth.Density[i] * w
	}
	for i := range truth.Density {
		truth.Density[i] /= mass // renormalize over the window
	}
	t := &Table{
		ID:      "E10",
		Title:   "Private density estimation (Section 5 future work): L1 error to the true mixture, 32 bins on [-4,4]",
		Columns: []string{"n", "eps", "laplace hist L1", "gibbs hist L1", "non-private L1"},
	}
	improves := true
	var first, last float64
	for _, n := range ns {
		d := mix.Generate(n, g.Split())
		nonPriv, err := core.NonPrivateHistogramDensity(d, 0, bins, lo, hi)
		if err != nil {
			return nil, err
		}
		l1NonPriv, err := nonPriv.L1Distance(truth)
		if err != nil {
			return nil, err
		}
		for _, eps := range epss {
			var lapL1, gibbsL1 mathx.Welford
			for r := 0; r < reps; r++ {
				priv, err := core.PrivateHistogramDensity(d, 0, bins, lo, hi, eps, g)
				if err != nil {
					return nil, err
				}
				l1, err := priv.L1Distance(truth)
				if err != nil {
					return nil, err
				}
				lapL1.Add(l1)
				gd, _, err := core.GibbsHistogramDensity(d, 0, []int{8, 16, 32, 64}, lo, hi, 10, eps, g)
				if err != nil {
					return nil, err
				}
				// Rebin the Gibbs density onto the reference grid for L1.
				re := make([]float64, bins)
				for i := 0; i < bins; i++ {
					x := lo + (float64(i)+0.5)*w
					re[i] = gd.At(x)
				}
				reEst := &core.DensityEstimate{Lo: lo, Hi: hi, Density: re}
				l1g, err := reEst.L1Distance(truth)
				if err != nil {
					return nil, err
				}
				gibbsL1.Add(l1g)
			}
			//dplint:ignore floateq sweep-grid sentinel: eps is copied verbatim from the literal grid
			if n == ns[0] && eps == epss[0] {
				first = lapL1.Mean()
			}
			last = lapL1.Mean()
			t.AddRow(fmt.Sprint(n), f(eps), f(lapL1.Mean()), f(gibbsL1.Mean()), f(l1NonPriv))
		}
	}
	if last >= first {
		improves = false
	}
	t.AddNote("expected shape: both private estimators' L1 error decreases in n and eps, approaching the non-private histogram's error")
	t.AddNote("error at largest (n,eps) below smallest: %v", improves)
	return t, nil
}
