package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/pacbayes"
	"repro/internal/rng"
)

// E3CatoniBound validates Theorem 3.1: over repeated samples, Catoni's
// bound on the Gibbs posterior's true risk holds with probability at
// least 1−δ, and the bound–risk gap shrinks with n. The true risk of
// every grid predictor is computed by Monte Carlo once per n.
func E3CatoniBound(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	resamples := 400
	trueRiskMC := 40_000
	if opts.Quick {
		resamples = 50
		trueRiskMC = 8_000
	}
	delta := 0.05
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0.3}
	grid := learn.NewGrid(-2, 2, 2, 17) // 289 predictors
	loss := learn.ZeroOneLoss{}
	// True risk per grid point (independent of n).
	trueRisks := make([]float64, grid.Size())
	{
		mc := model.Generate(trueRiskMC, g.Split())
		for i, th := range grid.Thetas() {
			trueRisks[i] = learn.EmpiricalRisk(loss, th, mc)
		}
	}
	t := &Table{
		ID:      "E3",
		Title:   "Catoni PAC-Bayes bound validity (Theorem 3.1): logistic task, |Theta|=289, delta=0.05",
		Columns: []string{"n", "lambda", "mean true risk", "mean bound", "mean gap", "violation rate", "ok (rate<=delta)"},
	}
	allOK := true
	for _, n := range []int{50, 100, 200, 400} {
		lambda := math.Sqrt(float64(n)) * 2 // a standard λ ~ √n choice
		violations := 0
		var meanRisk, meanBound mathx.Welford
		for r := 0; r < resamples; r++ {
			d := model.Generate(n, g.Split())
			est, err := gibbs.New(loss, grid.Thetas(), nil, lambda)
			if err != nil {
				return nil, err
			}
			st, err := est.Stats(d)
			if err != nil {
				return nil, err
			}
			bound, err := pacbayes.CatoniBound(st.ExpEmpRisk, st.KL, lambda, n, delta)
			if err != nil {
				return nil, err
			}
			// Posterior-expected true risk.
			post := est.LogPosterior(d)
			var tr mathx.KahanSum
			for i, lp := range post {
				if math.IsInf(lp, -1) {
					continue
				}
				tr.Add(math.Exp(lp) * trueRisks[i])
			}
			if tr.Sum() > bound {
				violations++
			}
			meanRisk.Add(tr.Sum())
			meanBound.Add(bound)
		}
		rate := float64(violations) / float64(resamples)
		ok := rate <= delta
		allOK = allOK && ok
		t.AddRow(fmt.Sprint(n), f(lambda), f(meanRisk.Mean()), f(meanBound.Mean()),
			f(meanBound.Mean()-meanRisk.Mean()), f(rate), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: violation rate <= delta at every n (typically 0), and the bound-risk gap shrinks as n grows")
	t.AddNote("all rows ok: %v", allOK)
	return t, nil
}

// E4GibbsOptimality validates Lemma 3.2: among all posteriors over Θ, the
// Gibbs posterior minimizes the linearized PAC-Bayes objective
// E_ρ R̂ + KL(ρ‖π)/λ. It compares the Gibbs value against the closed-form
// optimum, a mirror-descent optimizer, and the best of many random
// posteriors.
func E4GibbsOptimality(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	randomPosteriors := 1000
	optIters := 2000
	if opts.Quick {
		randomPosteriors = 150
		optIters = 300
	}
	model := dataset.LogisticModel{Weights: []float64{2, -1.5}, Bias: 0.3}
	grid := learn.NewGrid(-2, 2, 2, 17)
	loss := learn.ZeroOneLoss{}
	n := 200
	d := model.Generate(n, g.Split())
	logPrior := grid.UniformLogPrior()
	risks := learn.RiskVector(loss, grid.Thetas(), d)
	t := &Table{
		ID:      "E4",
		Title:   "Gibbs posterior optimality (Lemma 3.2): objective E[risk]+KL/lambda over |Theta|=289, n=200",
		Columns: []string{"lambda", "gibbs value", "closed-form opt", "numeric opt", "best random", "gibbs wins"},
	}
	allOK := true
	for _, lambda := range []float64{2, 10, 50, 250} {
		gibbsPost, err := pacbayes.GibbsLogPosterior(logPrior, risks, lambda)
		if err != nil {
			return nil, err
		}
		st, err := pacbayes.StatsFor(gibbsPost, logPrior, risks)
		if err != nil {
			return nil, err
		}
		gibbsVal := st.ExpEmpRisk + st.KL/lambda
		opt, err := pacbayes.GibbsOptimalValue(logPrior, risks, lambda)
		if err != nil {
			return nil, err
		}
		_, numVal, err := pacbayes.MinimizePosterior(logPrior, risks, lambda, optIters)
		if err != nil {
			return nil, err
		}
		bestRandom := math.Inf(1)
		for r := 0; r < randomPosteriors; r++ {
			logw := make([]float64, len(risks))
			for i := range logw {
				logw[i] = g.Normal(0, 2)
			}
			comp, _ := mathx.LogNormalize(logw)
			cs, err := pacbayes.StatsFor(comp, logPrior, risks)
			if err != nil {
				return nil, err
			}
			if v := cs.ExpEmpRisk + cs.KL/lambda; v < bestRandom {
				bestRandom = v
			}
		}
		wins := gibbsVal <= bestRandom+1e-12 && gibbsVal <= numVal+1e-9 && mathx.AlmostEqual(gibbsVal, opt, 1e-9)
		allOK = allOK && wins
		t.AddRow(f(lambda), f(gibbsVal), f(opt), f(numVal), f(bestRandom), fmt.Sprint(wins))
	}
	t.AddNote("expected shape: gibbs value == closed-form optimum, <= numeric optimizer, < best of %d random posteriors, at every lambda", randomPosteriors)
	t.AddNote("all rows ok: %v", allOK)
	return t, nil
}
