package experiments

import (
	"fmt"
	"math"

	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// E1LaplacePrivacy validates Theorem 2.1: the Laplace mechanism with scale
// Δf/ε is ε-DP. For a counting query on binary records it audits the
// worst-case neighbor pair by Monte Carlo and reports the empirical
// privacy loss ε̂ against ε, plus the analytic realized loss.
func E1LaplacePrivacy(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	samples := 400_000
	if opts.Quick {
		samples = 40_000
	}
	n := 200
	t := &Table{
		ID:      "E1",
		Title:   "Laplace mechanism privacy audit (Theorem 2.1): counting query, worst-case neighbors, n=200",
		Columns: []string{"epsilon", "noise scale", "empirical eps", "analytic eps", "events", "ok"},
	}
	pair := audit.WorstCaseBinaryPair(n)
	// A bin with c samples estimates its log-mass with standard error
	// ≈ 1/√c, so the per-bin log-ratio carries noise ≈ √(2/c); the audit
	// tolerance adds four of those standard errors to ε.
	minCount := samples / 200
	noiseTol := 4 * math.Sqrt(2/float64(minCount))
	allOK := true
	for _, eps := range []float64{0.1, 0.5, 1, 2} {
		//dplint:ignore floateq binary dataset records are exact 0/1 codes
		q := mechanism.CountQuery(func(e dataset.Example) bool { return e.X[0] == 1 })
		m, err := mechanism.NewLaplace(q, eps)
		if err != nil {
			return nil, err
		}
		res, err := audit.SampleContinuous(func(d *dataset.Dataset, h *rng.RNG) float64 {
			return m.Release(d, h)[0]
		}, pair, samples, 60, minCount, g)
		if err != nil {
			return nil, fmt.Errorf("E1 at eps=%v: %w", eps, err)
		}
		analytic := audit.LaplaceAnalyticEpsilon(0, 1, m.Scale())
		ok := res.EmpiricalEpsilon <= eps+noiseTol
		allOK = allOK && ok
		t.AddRow(f(eps), f(m.Scale()), f(res.EmpiricalEpsilon), f(analytic), fmt.Sprint(res.EventsCompared), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: empirical eps <= eps (up to MC noise) at every row; analytic realized loss = eps exactly for the worst-case pair")
	t.AddNote("all rows within tolerance: %v", allOK)
	return t, nil
}

// E2ExpMechPrivacy validates Theorem 2.2: the exponential mechanism is
// 2εΔq-DP. Using the private-median quality (Δq = 1) the output
// distribution is computed exactly, so the audit is exact: max log ratio
// over random neighbor pairs and over the worst-case pair, against the
// 2εΔq budget.
func E2ExpMechPrivacy(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	pairCount := 400
	if opts.Quick {
		pairCount = 60
	}
	n := 101
	grid := mathx.Linspace(0, 1, 41)
	t := &Table{
		ID:      "E2",
		Title:   "Exponential mechanism exact privacy audit (Theorem 2.2): private median, n=101, Δq=1",
		Columns: []string{"mech eps", "budget 2*eps*dq", "exact audit eps", "utilization", "ok"},
	}
	gen := func(h *rng.RNG) *dataset.Dataset {
		d := &dataset.Dataset{}
		for i := 0; i < n; i++ {
			d.Append(dataset.Example{X: []float64{h.Float64()}})
		}
		return d
	}
	allOK := true
	for _, eps := range []float64{0.05, 0.25, 1, 4} {
		m, _, err := mechanism.PrivateMedian(0, grid, eps)
		if err != nil {
			return nil, err
		}
		budget := m.Guarantee().Epsilon
		pairs := audit.RandomNeighborPairs(gen, pairCount, g)
		got := audit.ExactAudit(m, pairs)
		ok := got <= budget+1e-9
		allOK = allOK && ok
		t.AddRow(f(eps), f(budget), f(got), f(got/budget), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: exact audited loss <= 2*eps*dq at every row (the theorem), with utilization bounded away from 0 (the bound is not vacuous)")
	t.AddNote("all rows satisfied the budget: %v", allOK)
	return t, nil
}

// E5GibbsPrivacy validates Theorem 4.1: the Gibbs posterior at inverse
// temperature λ is 2λΔR̂-DP. The posterior over a finite Θ is exact, so
// the audit is exact; the table sweeps λ and reports audited vs certified
// privacy and the λ↔ε calibration used by the core learner.
func E5GibbsPrivacy(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	pairCount := 300
	if opts.Quick {
		pairCount = 40
	}
	n := 80
	gridPts := learn.NewGrid(-2, 2, 1, 17)
	model := dataset.LogisticModel{Weights: []float64{2}, Bias: 0}
	gen := func(h *rng.RNG) *dataset.Dataset { return model.Generate(n, h) }
	t := &Table{
		ID:      "E5",
		Title:   "Gibbs estimator exact privacy audit (Theorem 4.1): 0-1 loss, |Theta|=17, n=80",
		Columns: []string{"lambda", "dR (=1/n)", "budget 2*lambda*dR", "exact audit eps", "utilization", "ok"},
	}
	allOK := true
	for _, lambda := range []float64{1, 4, 16, 64} {
		est, err := gibbs.New(learn.ZeroOneLoss{}, gridPts.Thetas(), nil, lambda)
		if err != nil {
			return nil, err
		}
		budget := est.Guarantee(n).Epsilon
		pairs := audit.RandomNeighborPairs(gen, pairCount, g)
		got := audit.ExactAudit(est, pairs)
		ok := got <= budget+1e-9
		allOK = allOK && ok
		t.AddRow(f(lambda), f(est.RiskSensitivity(n)), f(budget), f(got), f(got/budget), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: audited eps <= 2*lambda*dR everywhere; utilization substantial (the certificate tracks the realized loss)")
	t.AddNote("all rows satisfied the certificate: %v", allOK)
	return t, nil
}
