package experiments

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/localdp"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// E12Reconstruction stages the adversarial side of the paper's channel
// view (Section 5's MI bounds "and their implication on utility"): a
// Bayes-optimal adversary attempts to reconstruct the training sample
// from the released Gibbs predictor, and its success is compared against
// the information-theoretic limits — the prior guess, the posterior Bayes
// vulnerability, and Fano's inequality driven by the channel's exact MI.
func E12Reconstruction(opts Options) (*Table, error) {
	n := 10
	points := 7
	if opts.Quick {
		n = 8
		points = 5
	}
	inputs, logPX := channel.CountSampleSpace(n, 0.5)
	thetas := meanThetaGrid(points)
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Reconstruction attack vs information-theoretic limits on the Gibbs channel (n=%d)", n),
		Columns: []string{"eps/record", "prior guess", "bayes attack", "1 - fano LB", "I(Z;theta) nats", "attack within limits"},
	}
	allOK := true
	prevAttack := 0.0
	monotone := true
	for _, eps := range []float64{0.05, 0.2, 0.8, 3.2, 12.8} {
		lambda := gibbs.LambdaForEpsilon(eps, meanLoss{}, n)
		est, err := gibbs.New(meanLoss{}, thetas, nil, lambda)
		if err != nil {
			return nil, err
		}
		ch, err := channel.FromMechanism(inputs, logPX, est)
		if err != nil {
			return nil, err
		}
		rep, err := ch.Reconstruction()
		if err != nil {
			return nil, err
		}
		ok := rep.BayesAccuracy >= rep.PriorAccuracy-1e-12 &&
			rep.BayesAccuracy <= 1-rep.FanoErrorLB+1e-9
		allOK = allOK && ok
		if rep.BayesAccuracy < prevAttack-1e-9 {
			monotone = false
		}
		prevAttack = rep.BayesAccuracy
		t.AddRow(f(eps), f(rep.PriorAccuracy), f(rep.BayesAccuracy),
			f(1-rep.FanoErrorLB), f(rep.MutualInformationNats), fmt.Sprint(ok))
	}
	t.AddNote("expected shape: attack success grows with eps but stays between the blind-guess floor and the Fano ceiling at every eps; at strong privacy the attack is barely above guessing")
	t.AddNote("all rows within limits: %v; attack monotone in eps: %v", allOK, monotone)
	return t, nil
}

// A9LocalVsCentral compares local-DP frequency estimation (k-ary
// randomized response and optimized unary encoding, each record
// randomizing itself at ε-LDP) against the central-model Laplace
// histogram at the same ε, on L1 distribution-estimation error — the
// classic local-vs-central utility gap, measured on this library's own
// mechanisms.
//
//dp:observer experiment harness: measures estimation error against synthetic data; per-release budgets are the table's x-axis
func A9LocalVsCentral(opts Options) (*Table, error) {
	g := rng.New(opts.Seed)
	reps := 25
	n := 20_000
	if opts.Quick {
		reps = 5
		n = 5_000
	}
	k := 8
	truth := []float64{0.3, 0.22, 0.18, 0.12, 0.08, 0.05, 0.03, 0.02}
	t := &Table{
		ID:      "A9",
		Title:   fmt.Sprintf("Local vs central DP frequency estimation: L1 error over a %d-value domain, n=%d", k, n),
		Columns: []string{"eps", "central laplace L1", "KRR (local) L1", "OUE (local) L1", "central wins"},
	}
	values := make([]int, n)
	for i := range values {
		values[i] = g.Categorical(truth)
	}
	d := &dataset.Dataset{}
	for _, v := range values {
		d.Append(dataset.Example{X: []float64{float64(v)}})
	}
	l1 := func(p []float64) float64 {
		var s float64
		for v := range truth {
			s += math.Abs(p[v] - truth[v])
		}
		return s
	}
	centralWins := true
	for _, eps := range []float64{0.25, 1, 4} {
		var cenErr, krrErr, oueErr mathx.Welford
		for r := 0; r < reps; r++ {
			// Central: Laplace histogram, normalized.
			q := mechanism.HistogramQuery(0, k, 0, float64(k))
			lm, err := mechanism.NewLaplace(q, eps)
			if err != nil {
				return nil, err
			}
			noisy := lm.Release(d, g)
			var total float64
			for i, v := range noisy {
				if v < 0 {
					noisy[i] = 0
				}
				total += noisy[i]
			}
			cen := make([]float64, k)
			if total > 0 {
				for i := range cen {
					cen[i] = noisy[i] / total
				}
			}
			cenErr.Add(l1(cen))
			// Local: KRR.
			krr, err := localdp.NewKRR(k, eps)
			if err != nil {
				return nil, err
			}
			reports := make([]int, n)
			for i, v := range values {
				reports[i] = krr.Perturb(v, g)
			}
			estK, err := krr.EstimateFrequencies(reports)
			if err != nil {
				return nil, err
			}
			krrErr.Add(l1(estK))
			// Local: OUE.
			oue, err := localdp.NewOUE(k, eps)
			if err != nil {
				return nil, err
			}
			bitReports := make([][]bool, n)
			for i, v := range values {
				bitReports[i] = oue.Perturb(v, g)
			}
			estO, err := oue.EstimateFrequencies(bitReports)
			if err != nil {
				return nil, err
			}
			oueErr.Add(l1(estO))
		}
		wins := cenErr.Mean() < krrErr.Mean() && cenErr.Mean() < oueErr.Mean()
		centralWins = centralWins && wins
		t.AddRow(f(eps), f(cenErr.Mean()), f(krrErr.Mean()), f(oueErr.Mean()), fmt.Sprint(wins))
	}
	t.AddNote("expected shape: all errors fall with eps; the central model dominates the local model at every eps (the classic local-vs-central utility gap), with the gap largest at small eps")
	t.AddNote("central wins at every eps: %v", centralWins)
	return t, nil
}
