package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// RenderCSV writes the table as CSV: a header row of column names
// followed by the data rows. Notes are emitted as trailing comment-style
// rows with a single "note" column marker.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Columns...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the serialized form of a Table.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// RenderJSON writes the table as a single JSON object.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{
		ID:      t.ID,
		Title:   t.Title,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
	})
}

// Format names a table output format.
type Format string

// Supported formats.
const (
	FormatText Format = "text"
	FormatCSV  Format = "csv"
	FormatJSON Format = "json"
)

// RenderAs dispatches on the format name.
func (t *Table) RenderAs(w io.Writer, format Format) error {
	switch format {
	case FormatText, "":
		return t.Render(w)
	case FormatCSV:
		return t.RenderCSV(w)
	case FormatJSON:
		return t.RenderJSON(w)
	default:
		return fmt.Errorf("experiments: unknown format %q", format)
	}
}
