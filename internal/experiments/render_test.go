package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{ID: "T1", Title: "demo", Columns: []string{"a", "b"}}
	t.AddRow("1", "x")
	t.AddRow("2", "y")
	t.AddNote("shape holds: %v", true)
	return t
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "experiment" || records[0][1] != "a" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "T1" || records[2][2] != "y" {
		t.Errorf("rows = %v", records[1:])
	}
}

func TestRenderJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "T1" || decoded.Title != "demo" {
		t.Errorf("decoded = %+v", decoded)
	}
	if len(decoded.Rows) != 2 || decoded.Rows[1][1] != "y" {
		t.Errorf("rows = %v", decoded.Rows)
	}
	if len(decoded.Notes) != 1 || !strings.Contains(decoded.Notes[0], "true") {
		t.Errorf("notes = %v", decoded.Notes)
	}
}

func TestRenderAs(t *testing.T) {
	for _, f := range []Format{FormatText, FormatCSV, FormatJSON, ""} {
		var buf bytes.Buffer
		if err := sampleTable().RenderAs(&buf, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced no output", f)
		}
	}
	var buf bytes.Buffer
	if err := sampleTable().RenderAs(&buf, "xml"); err == nil {
		t.Error("unknown format must error")
	}
}
