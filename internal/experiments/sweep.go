package experiments

import (
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Grid describes an (n, ε) experiment sweep: the cross product of sample
// sizes and privacy budgets that the learning experiments walk.
type Grid struct {
	Ns   []int
	Epss []float64
}

// Cells returns len(Ns) * len(Epss).
func (g Grid) Cells() int { return len(g.Ns) * len(g.Epss) }

// Cell identifies one grid point of a sweep together with its dedicated
// random stream.
type Cell struct {
	// Row and Col index into Grid.Ns and Grid.Epss.
	Row, Col int
	// N and Eps are the grid point's values.
	N   int
	Eps float64
	// RNG is the cell's private random stream, split from the sweep RNG
	// in cell-index order before any cell runs. It must not be shared
	// with other cells.
	RNG *rng.RNG
}

// sweepGrain keeps one grid cell per chunk: each cell is a full batch of
// Monte-Carlo fits, far past the fan-out amortization knee.
const sweepGrain = 1

// SweepGrid evaluates body at every (n, ε) grid point, fanning the cells
// out across opts workers, and returns the results in row-major cell
// order (n outer, ε inner — the order the tables print).
//
// Determinism: every cell's RNG is split from g in cell-index order
// BEFORE the fan-out starts, so the stream a cell sees depends only on
// (seed, cell index) — never on worker count or scheduling. Combined
// with package parallel's fixed chunk geometry this makes a sweep's
// tables byte-identical for every Workers setting.
//
// body runs concurrently with itself; it must only touch its Cell and
// read-only captured state. If any cell fails, the first error in cell
// order is returned.
func SweepGrid[R any](grid Grid, g *rng.RNG, opts parallel.Options, body func(c Cell) (R, error)) ([]R, error) {
	cells := make([]Cell, 0, grid.Cells())
	for i, n := range grid.Ns {
		for j, eps := range grid.Epss {
			cells = append(cells, Cell{Row: i, Col: j, N: n, Eps: eps, RNG: g.Split()})
		}
	}
	out := make([]R, len(cells))
	errs := make([]error, len(cells))
	parallel.ForGrain(len(cells), sweepGrain, opts, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			sp := opts.Obs.Span("sweep.cell")
			sp.SetAttr("n", cells[k].N)
			sp.SetAttr("eps", cells[k].Eps)
			out[k], errs[k] = body(cells[k])
			sp.End()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
