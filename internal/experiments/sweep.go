package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Grid describes an (n, ε) experiment sweep: the cross product of sample
// sizes and privacy budgets that the learning experiments walk.
type Grid struct {
	Ns   []int
	Epss []float64
}

// Cells returns len(Ns) * len(Epss).
func (g Grid) Cells() int { return len(g.Ns) * len(g.Epss) }

// Cell identifies one grid point of a sweep together with its dedicated
// random stream.
type Cell struct {
	// Row and Col index into Grid.Ns and Grid.Epss.
	Row, Col int
	// N and Eps are the grid point's values.
	N   int
	Eps float64
	// RNG is the cell's private random stream, split from the sweep RNG
	// in cell-index order before any cell runs. It must not be shared
	// with other cells.
	RNG *rng.RNG
	// Seed is RNG's seed fingerprint (see rng.SplitSeed) — the key a
	// checkpointed sweep stores results under.
	Seed int64
}

// sweepGrain keeps one grid cell per chunk: each cell is a full batch of
// Monte-Carlo fits, far past the fan-out amortization knee.
const sweepGrain = 1

// SweepConfig configures a SweepGridCtx run.
type SweepConfig struct {
	// Parallel controls the cell fan-out (see package parallel).
	Parallel parallel.Options
	// Checkpoint, when non-nil, persists each completed cell and skips
	// cells already recorded under the same (index, seed) key — the
	// resume path after an interrupted sweep. Nil disables
	// checkpointing with no behavioral difference.
	Checkpoint *checkpoint.Log
}

// SweepGrid evaluates body at every (n, ε) grid point, fanning the cells
// out across opts workers, and returns the results in row-major cell
// order (n outer, ε inner — the order the tables print). It is
// SweepGridCtx without cancellation or checkpointing.
func SweepGrid[R any](grid Grid, g *rng.RNG, opts parallel.Options, body func(c Cell) (R, error)) ([]R, error) {
	return SweepGridCtx(context.Background(), grid, g, SweepConfig{Parallel: opts}, body)
}

// SweepGridCtx evaluates body at every (n, ε) grid point under ctx.
//
// Determinism: every cell's seed is split from g in cell-index order
// BEFORE the fan-out starts, so the stream a cell sees depends only on
// (sweep seed, cell index) — never on worker count, scheduling, or how
// many cells a resumed run skipped. Combined with package parallel's
// fixed chunk geometry this makes a completed sweep's tables
// byte-identical for every Workers setting, with or without an
// interruption in between: checkpointed results round-trip through
// JSON bit-exactly (see package checkpoint).
//
// Failure handling: cell errors do not abort the sweep — every other
// cell still runs (and checkpoints), so a resume retries only the
// failures. All cell errors are aggregated with errors.Join in
// deterministic cell-index order, each wrapped with its coordinates; a
// cancellation or worker fault from the engine is appended last.
//
// body runs concurrently with itself; it must only touch its Cell and
// read-only captured state.
func SweepGridCtx[R any](ctx context.Context, grid Grid, g *rng.RNG, cfg SweepConfig, body func(c Cell) (R, error)) ([]R, error) {
	cells := make([]Cell, 0, grid.Cells())
	for i, n := range grid.Ns {
		for j, eps := range grid.Epss {
			seed := g.SplitSeed()
			cells = append(cells, Cell{Row: i, Col: j, N: n, Eps: eps, RNG: rng.New(seed), Seed: seed})
		}
	}
	out := make([]R, len(cells))
	cellErrs := make([]error, len(cells))
	engineErr := parallel.ForGrainCtx(ctx, len(cells), sweepGrain, cfg.Parallel, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if raw, ok := cfg.Checkpoint.Lookup(k, cells[k].Seed); ok {
				if err := json.Unmarshal(raw, &out[k]); err == nil {
					continue
				}
				// Undecodable entry (result shape changed): recompute.
				out[k] = *new(R)
			}
			sp := cfg.Parallel.Obs.Span("sweep.cell")
			sp.SetAttr("n", cells[k].N)
			sp.SetAttr("eps", cells[k].Eps)
			out[k], cellErrs[k] = body(cells[k])
			if cellErrs[k] == nil {
				cellErrs[k] = cfg.Checkpoint.Put(k, cells[k].Seed, out[k])
			}
			sp.End()
		}
	})
	var errs []error
	for k, err := range cellErrs {
		if err != nil {
			errs = append(errs, fmt.Errorf("sweep: cell %d (n=%d, eps=%g): %w", k, cells[k].N, cells[k].Eps, err))
		}
	}
	if engineErr != nil {
		errs = append(errs, engineErr)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}
