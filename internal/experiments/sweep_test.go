package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// testRNG returns a fresh sweep RNG with a fixed seed, so every call
// replays the identical split chain.
func testRNG(t *testing.T) *rng.RNG {
	t.Helper()
	return rng.New(99)
}

// sweepBody is a deterministic cell function with enough float structure
// to catch any round-trip loss: the result depends on the cell's private
// RNG stream.
func sweepBody(c Cell) (float64, error) {
	return c.RNG.Float64() / (1 + c.Eps*float64(c.N)), nil
}

var sweepTestGrid = Grid{Ns: []int{10, 20, 30}, Epss: []float64{0.1, 0.5, 2}}

// TestSweepGridCtxMatchesSweepGrid pins that the ctx/checkpoint variant
// is the same computation: bit-identical results for every Workers
// setting, with and without a checkpoint log attached.
func TestSweepGridCtxMatchesSweepGrid(t *testing.T) {
	want, err := SweepGrid(sweepTestGrid, testRNG(t), parallel.Options{Workers: 1}, sweepBody)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		ck, err := checkpoint.Open(filepath.Join(t.TempDir(), "ck"), false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SweepGridCtx(context.Background(), sweepTestGrid, testRNG(t),
			SweepConfig{Parallel: parallel.Options{Workers: workers}, Checkpoint: ck}, sweepBody)
		ck.Close()
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("workers=%d cell %d: %v != %v", workers, k, got[k], want[k])
			}
		}
	}
}

// TestSweepCheckpointResume pins the resume contract: a second run over
// a complete log recomputes nothing and returns bit-identical results.
func TestSweepCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	ck, err := checkpoint.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SweepGridCtx(context.Background(), sweepTestGrid, testRNG(t),
		SweepConfig{Parallel: parallel.Options{Workers: 3}, Checkpoint: ck}, sweepBody)
	ck.Close()
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := checkpoint.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var calls atomic.Int64
	got, err := SweepGridCtx(context.Background(), sweepTestGrid, testRNG(t),
		SweepConfig{Parallel: parallel.Options{Workers: 3}, Checkpoint: ck2},
		func(c Cell) (float64, error) {
			calls.Add(1)
			return sweepBody(c)
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("resume recomputed %d cells", n)
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("cell %d: resumed %v != original %v", k, got[k], want[k])
		}
	}
}

// TestSweepInterruptedResume pins the headline robustness property: a
// sweep canceled partway through, then resumed, merges to the
// bit-identical table an uninterrupted run produces — and only the
// missing cells rerun.
func TestSweepInterruptedResume(t *testing.T) {
	want, err := SweepGrid(sweepTestGrid, testRNG(t), parallel.Options{Workers: 1}, sweepBody)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck")
	ck, err := checkpoint.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err = SweepGridCtx(ctx, sweepTestGrid, testRNG(t),
		SweepConfig{Parallel: parallel.Options{Workers: 1}, Checkpoint: ck},
		func(c Cell) (float64, error) {
			if ran.Add(1) == 4 {
				cancel() // interrupt after four cells: claimed cells complete
			}
			return sweepBody(c)
		})
	ck.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: want context.Canceled, got %v", err)
	}
	done := ran.Load()
	if done >= int64(sweepTestGrid.Cells()) {
		t.Fatalf("cancellation did not interrupt: all %d cells ran", done)
	}
	ck2, err := checkpoint.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var resumed atomic.Int64
	got, err := SweepGridCtx(context.Background(), sweepTestGrid, testRNG(t),
		SweepConfig{Parallel: parallel.Options{Workers: 1}, Checkpoint: ck2},
		func(c Cell) (float64, error) {
			resumed.Add(1)
			return sweepBody(c)
		})
	if err != nil {
		t.Fatal(err)
	}
	if done+resumed.Load() != int64(sweepTestGrid.Cells()) {
		t.Fatalf("resume reran finished cells: %d before + %d after != %d",
			done, resumed.Load(), sweepTestGrid.Cells())
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("cell %d: merged %v != uninterrupted %v", k, got[k], want[k])
		}
	}
}

// TestSweepStaleCheckpointMisses pins the seed fingerprint: a log from a
// different sweep seed never satisfies a lookup, so wrong results cannot
// be resumed into the wrong run.
func TestSweepStaleCheckpointMisses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	ck, err := checkpoint.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Parallel: parallel.Options{Workers: 1}, Checkpoint: ck}
	if _, err := SweepGridCtx(context.Background(), sweepTestGrid, testRNG(t), cfg, sweepBody); err != nil {
		t.Fatal(err)
	}
	ck.Close()
	ck2, err := checkpoint.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	var calls atomic.Int64
	otherSeed := testRNG(t)
	otherSeed.Float64() // desync the split chain
	if _, err := SweepGridCtx(context.Background(), sweepTestGrid, otherSeed,
		SweepConfig{Parallel: parallel.Options{Workers: 1}, Checkpoint: ck2},
		func(c Cell) (float64, error) {
			calls.Add(1)
			return sweepBody(c)
		}); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != int64(sweepTestGrid.Cells()) {
		t.Fatalf("stale log satisfied %d lookups", int64(sweepTestGrid.Cells())-n)
	}
}

// TestSweepErrorAggregation pins satellite behavior: every failing cell
// is reported (errors.Join, cell-index order), healthy cells still
// compute, and the message carries the cell coordinates.
func TestSweepErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := SweepGridCtx(context.Background(), sweepTestGrid, testRNG(t),
		SweepConfig{Parallel: parallel.Options{Workers: 2}},
		func(c Cell) (float64, error) {
			ran.Add(1)
			if c.Row == 1 {
				return 0, fmt.Errorf("cell (%d,%d): %w", c.Row, c.Col, boom)
			}
			return sweepBody(c)
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if ran.Load() != int64(sweepTestGrid.Cells()) {
		t.Fatalf("failing cells aborted the sweep: only %d cells ran", ran.Load())
	}
	msg := err.Error()
	for _, want := range []string{"sweep: cell 3 (n=20, eps=0.1)", "sweep: cell 4 (n=20, eps=0.5)", "sweep: cell 5 (n=20, eps=2)"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("aggregated error missing %q:\n%s", want, msg)
		}
	}
	if i3, i4 := strings.Index(msg, "cell 3"), strings.Index(msg, "cell 4"); i3 > i4 {
		t.Fatalf("errors not in cell order:\n%s", msg)
	}
}
