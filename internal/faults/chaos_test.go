package faults_test

// The chaos battery: every fault class the schedule can inject, driven
// against the real execution stack (parallel workers, the budgeted
// accountant, the core facade, checkpointed sweeps), asserting the
// robustness invariants the hardened pipeline promises — typed errors,
// a balanced ledger with no double- or half-spends, deterministic abort
// positions, and bit-identical resume.

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// chaosLearner builds a small budget-aware classifier against the given
// accountant, serial inside the fit so chaos call counters are stable.
func chaosLearner(t *testing.T, loss learn.Loss, eps float64, acct *mechanism.Accountant, policy core.DegradePolicy) (*core.Learner, *dataset.Dataset, *rng.RNG) {
	t.Helper()
	g := rng.New(41)
	d := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}.Generate(80, g)
	l, err := core.NewLearner(core.Config{
		Loss:     loss,
		Thetas:   learn.NewGrid(-2, 2, 1, 9).Thetas(),
		Epsilon:  eps,
		Acct:     acct,
		Degrade:  policy,
		Parallel: parallel.Options{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, d, g
}

// TestChaosWorkerPanics injects schedule-driven panics into a parallel
// reduction and asserts panic isolation: the fault surfaces as a typed
// *parallel.WorkerError wrapping ErrInjected, the abort position is
// deterministic across worker counts, and a fault-free plan reproduces
// the plain reduction bit-for-bit.
func TestChaosWorkerPanics(t *testing.T) {
	const n = 1 << 17
	sched := faults.NewSchedule(23, map[faults.Class]float64{faults.WorkerPanic: 0.0002})
	term := func(i int) float64 { return math.Sqrt(float64(i)) }
	want := parallel.Sum(n, parallel.Options{Workers: 1}, term)
	var firstLo atomic.Int64
	firstLo.Store(-1)
	for _, workers := range []int{1, 2, 8} {
		_, err := parallel.SumCtx(context.Background(), n, parallel.Options{Workers: workers}, func(i int) float64 {
			sched.Panic(faults.WorkerPanic, i)
			return term(i)
		})
		var werr *parallel.WorkerError
		if !errors.As(err, &werr) {
			t.Fatalf("workers=%d: want WorkerError, got %v", workers, err)
		}
		if !errors.Is(err, faults.ErrInjected) {
			t.Fatalf("workers=%d: injected fault not identifiable: %v", workers, err)
		}
		if prev := firstLo.Swap(int64(werr.Lo)); prev >= 0 && prev != int64(werr.Lo) {
			t.Fatalf("abort position depends on workers: chunk lo %d vs %d", prev, werr.Lo)
		}
		// The same plan, fault-free classes only: the reduction completes
		// and is bit-identical to the serial sum.
		got, err := parallel.SumCtx(context.Background(), n, parallel.Options{Workers: workers}, term)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: sum diverged after chaos run", workers)
		}
	}
}

// TestChaosBudgetDenials storms a budgeted accountant from concurrent
// goroutines whose commit/release/panic behavior the schedule picks,
// then audits the ledger: reservations all settled, spends all whole
// (committed exactly once, gapless sequence), composition within
// budget, and every denial typed.
func TestChaosBudgetDenials(t *testing.T) {
	var acct mechanism.Accountant
	if err := acct.SetBudget(mechanism.Guarantee{Epsilon: 10}); err != nil {
		t.Fatal(err)
	}
	sched := faults.NewSchedule(29, map[faults.Class]float64{faults.BudgetDeny: 0.5})
	const workers, iters = 8, 150
	var committed, denied atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				site := w*iters + i
				res, err := acct.Reserve(mechanism.Guarantee{Epsilon: 0.05})
				if err != nil {
					if !errors.Is(err, mechanism.ErrBudgetExhausted) {
						t.Errorf("denial not typed: %v", err)
					}
					denied.Add(1)
					continue
				}
				// The schedule decides this hold's fate: settle or abandon —
				// some abandonments happen via panic mid-protocol, exercising
				// the deferred-release path.
				func() {
					defer res.Release()
					defer func() { recover() }() //nolint:errcheck
					if sched.Hit(faults.BudgetDeny, site) {
						faults.NewSchedule(1, map[faults.Class]float64{faults.BudgetDeny: 1}).Panic(faults.BudgetDeny, site)
					}
					res.Commit(mechanism.SpendMeta{Mechanism: "chaos"})
					committed.Add(1)
				}()
			}
		}(w)
	}
	wg.Wait()
	if acct.Reserved() != 0 {
		t.Fatalf("unsettled reservations after the storm: %d", acct.Reserved())
	}
	if int64(acct.Count()) != committed.Load() {
		t.Fatalf("half-spend: ledger has %d records, %d commits happened", acct.Count(), committed.Load())
	}
	for i, rec := range acct.Records() {
		if rec.Seq != uint64(i) {
			t.Fatalf("ledger sequence has a gap at %d (seq %d)", i, rec.Seq)
		}
	}
	if comp := acct.BasicComposition(); comp.Epsilon > 10 {
		t.Fatalf("composed ε %v exceeds budget 10", comp.Epsilon)
	}
	if denied.Load() == 0 || committed.Load() == 0 {
		t.Fatalf("storm not exercised: %d denials, %d commits", denied.Load(), committed.Load())
	}
}

// flakyLoss corrupts schedule-chosen risk evaluations to NaN.
type flakyLoss struct {
	inner learn.Loss
	sched *faults.Schedule
	calls *atomic.Int64
}

func (f flakyLoss) Loss(theta []float64, e dataset.Example) float64 {
	if f.sched.Hit(faults.NaNRisk, int(f.calls.Add(1))) {
		return math.NaN()
	}
	return f.inner.Loss(theta, e)
}
func (f flakyLoss) Bound() float64 { return f.inner.Bound() }
func (f flakyLoss) Name() string   { return "flaky(" + f.inner.Name() + ")" }

// TestChaosNaNRisks injects NaN into the risk grid and asserts the
// facade's validation: the fit fails typed, the ledger and reservations
// stay untouched, and a clean learner on the same accountant then
// spends exactly once.
func TestChaosNaNRisks(t *testing.T) {
	var acct mechanism.Accountant
	sched := faults.NewSchedule(31, map[faults.Class]float64{faults.NaNRisk: 0.01})
	var calls atomic.Int64
	poisoned := flakyLoss{inner: learn.ZeroOneLoss{}, sched: sched, calls: &calls}
	l, d, g := chaosLearner(t, poisoned, 1, &acct, core.DegradeRefuse)
	if _, err := l.Fit(d, g); !errors.Is(err, core.ErrNonFiniteInput) {
		t.Fatalf("poisoned fit: want ErrNonFiniteInput, got %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("flaky loss never evaluated")
	}
	if acct.Count() != 0 || acct.Reserved() != 0 {
		t.Fatalf("poisoned fit charged: Count=%d Reserved=%d", acct.Count(), acct.Reserved())
	}
	clean, d2, g2 := chaosLearner(t, learn.ZeroOneLoss{}, 1, &acct, core.DegradeRefuse)
	if _, err := clean.Fit(d2, g2); err != nil {
		t.Fatalf("clean fit after chaos: %v", err)
	}
	if acct.Count() != 1 || acct.Reserved() != 0 {
		t.Fatalf("clean fit mischarged: Count=%d Reserved=%d", acct.Count(), acct.Reserved())
	}
}

// TestChaosCheckpointWriteFailures kills the checkpoint log at a
// schedule-chosen cell and asserts the sweep's failure handling: the
// loss surfaces as checkpoint.ErrWrite with the cell's coordinates, the
// computed results for stored cells survive, and a resume completes the
// sweep bit-identical to an unfaulted run.
func TestChaosCheckpointWriteFailures(t *testing.T) {
	grid := experiments.Grid{Ns: []int{10, 20, 30}, Epss: []float64{0.1, 1, 5}}
	body := func(c experiments.Cell) (float64, error) { return c.RNG.Float64() * c.Eps, nil }
	want, err := experiments.SweepGrid(grid, rng.New(77), parallel.Options{Workers: 1}, body)
	if err != nil {
		t.Fatal(err)
	}
	sched := faults.NewSchedule(37, map[faults.Class]float64{faults.CheckpointWrite: 0.3})
	failAt := -1
	for k := 0; k < grid.Cells(); k++ {
		if sched.Hit(faults.CheckpointWrite, k) {
			failAt = k
			break
		}
	}
	if failAt < 0 || failAt == grid.Cells()-1 {
		t.Fatalf("schedule seed must fire on a non-final cell, fired at %d", failAt)
	}
	path := filepath.Join(t.TempDir(), "ck")
	ck, err := checkpoint.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var cell atomic.Int64
	cell.Store(-1)
	_, err = experiments.SweepGridCtx(context.Background(), grid, rng.New(77),
		experiments.SweepConfig{Parallel: parallel.Options{Workers: 1}, Checkpoint: ck},
		func(c experiments.Cell) (float64, error) {
			k := int(cell.Add(1))
			if k == failAt {
				ck.Close() // the injected fault: every Put from here on fails
			}
			return body(c)
		})
	if !errors.Is(err, checkpoint.ErrWrite) {
		t.Fatalf("want checkpoint.ErrWrite, got %v", err)
	}
	ck2, err := checkpoint.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != failAt {
		t.Fatalf("log kept %d cells, want the %d before the fault", ck2.Len(), failAt)
	}
	got, err := experiments.SweepGridCtx(context.Background(), grid, rng.New(77),
		experiments.SweepConfig{Parallel: parallel.Options{Workers: 1}, Checkpoint: ck2}, body)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("cell %d after write-fault resume: %v != %v", k, got[k], want[k])
		}
	}
}

// TestChaosDegradeUnderStorm drives a budgeted learner past exhaustion
// under the fallback policy with schedule-driven attempts, asserting
// the ledger never exceeds budget, degraded releases charge nothing,
// and every fit either succeeds, degrades, or fails typed.
func TestChaosDegradeUnderStorm(t *testing.T) {
	var acct mechanism.Accountant
	l, d, g := chaosLearner(t, learn.ZeroOneLoss{}, 1, &acct, core.DegradeFallback)
	est, err := l.Estimator(d.Len())
	if err != nil {
		t.Fatal(err)
	}
	full := est.Guarantee(d.Len())
	budget := mechanism.Guarantee{Epsilon: 2.5 * full.Epsilon} // admits two fits
	if err := acct.SetBudget(budget); err != nil {
		t.Fatal(err)
	}
	paid, degraded := 0, 0
	for i := 0; i < 10; i++ {
		fit, err := l.Fit(d, g)
		if err != nil {
			t.Fatalf("fit %d: fallback should never fail once a fit is cached: %v", i, err)
		}
		if fit.Degraded {
			degraded++
		} else {
			paid++
		}
		if acct.Reserved() != 0 {
			t.Fatalf("fit %d left a reservation open", i)
		}
	}
	if paid != 2 || degraded != 8 {
		t.Fatalf("want 2 paid + 8 degraded fits, got %d + %d", paid, degraded)
	}
	if acct.Count() != 2 {
		t.Fatalf("degraded releases charged the ledger: Count=%d", acct.Count())
	}
	if comp := acct.BasicComposition(); comp.Epsilon > budget.Epsilon {
		t.Fatalf("composed ε %v exceeds budget %v", comp.Epsilon, budget.Epsilon)
	}
}
