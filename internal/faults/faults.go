// Package faults provides a seeded, deterministic fault-injection
// schedule for the chaos test battery: the same (seed, class, key)
// always fires the same way, so a chaos run that trips an invariant is
// replayable with nothing more than its seed.
//
// The schedule is a pure function — no internal stream is consumed — so
// concurrent probes from worker goroutines neither race nor perturb
// each other's verdicts, and a fault plan is independent of execution
// order (the property the deterministic-parallelism contract needs: a
// chaos sweep fires the same faults at Workers=1 and Workers=8).
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Class identifies one injectable fault family.
type Class string

const (
	// WorkerPanic fires a panic inside a parallel worker body, exercising
	// panic isolation (parallel.WorkerError).
	WorkerPanic Class = "worker-panic"
	// BudgetDeny shrinks or denies budget admission, exercising
	// ErrBudgetExhausted handling and degrade policies.
	BudgetDeny Class = "budget-deny"
	// NaNRisk corrupts a risk evaluation to NaN, exercising the facade's
	// ErrNonFiniteInput validation.
	NaNRisk Class = "nan-risk"
	// CheckpointWrite fails a checkpoint append, exercising
	// checkpoint.ErrWrite propagation and partial-log resume.
	CheckpointWrite Class = "checkpoint-write"

	// The WALCrash* classes hard-abort a served request at each phase
	// boundary of the write-ahead ledger's two-phase protocol, exercising
	// recovery's settle-every-reserve guarantee. Each fires as a
	// simulated process death: the tenant's WAL is frozen (no further
	// appends, as if the fd died with the process) and the handler
	// aborts, so the on-disk state is exactly what a kill at that
	// boundary would leave.
	//
	// WALCrashPreReserve aborts before the reserve record is written —
	// no WAL evidence; the request simply never happened.
	WALCrashPreReserve Class = "wal-crash-pre-reserve"
	// WALCrashPostReserve aborts after the reserve record is durable but
	// before the mechanism runs — recovery must void the orphan.
	WALCrashPostReserve Class = "wal-crash-post-reserve"
	// WALCrashPreCommit aborts after the mechanism ran (noise drawn,
	// in-memory books charged) but before the commit record is durable —
	// the response never escaped, so recovery must void, not charge.
	WALCrashPreCommit Class = "wal-crash-pre-commit"
	// WALCrashPostCommit aborts after the commit record is durable but
	// before the response bytes are written — the charge must survive
	// recovery and an idempotent retry must replay the stored response
	// without a second charge.
	WALCrashPostCommit Class = "wal-crash-post-commit"
)

// Classes lists every fault family the battery covers.
var Classes = []Class{
	WorkerPanic, BudgetDeny, NaNRisk, CheckpointWrite,
	WALCrashPreReserve, WALCrashPostReserve, WALCrashPreCommit, WALCrashPostCommit,
}

// WALCrashes lists the WAL phase-boundary abort classes in protocol
// order, for batteries that sweep every boundary.
var WALCrashes = []Class{WALCrashPreReserve, WALCrashPostReserve, WALCrashPreCommit, WALCrashPostCommit}

// ErrInjected marks an injected failure, so tests can tell a planned
// fault from a genuine defect with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Schedule is a deterministic fault plan: Hit(class, key) is a pure
// function of (seed, class, key). A nil schedule never fires.
type Schedule struct {
	seed  int64
	rates map[Class]float64
}

// NewSchedule builds a plan firing each class with the given
// probability (keys absent from rates never fire; rate ≥ 1 always
// fires).
func NewSchedule(seed int64, rates map[Class]float64) *Schedule {
	cp := make(map[Class]float64, len(rates))
	for c, r := range rates {
		cp[c] = r
	}
	return &Schedule{seed: seed, rates: cp}
}

// Hit reports whether the fault (class, key) is in the plan. key
// identifies the injection site — a loop index, a cell index, a fit
// sequence number — so distinct sites draw independent verdicts.
func (s *Schedule) Hit(c Class, key int) bool {
	if s == nil {
		return false
	}
	rate, ok := s.rates[c]
	if !ok || rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := fnv.New64a()
	_, _ = fmt.Fprintf(h, "%d|%s|%d", s.seed, c, key)
	// FNV's high bits avalanche poorly on short inputs, so finish with a
	// splitmix64-style mix before mapping the top 53 bits to [0, 1).
	u := float64(mix64(h.Sum64())>>11) / float64(uint64(1)<<53)
	return u < rate
}

// mix64 is the splitmix64 finalizer: a bijective avalanche so every
// input bit diffuses into every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Err returns a typed injected error for (class, key) when the plan
// fires, nil otherwise.
func (s *Schedule) Err(c Class, key int) error {
	if !s.Hit(c, key) {
		return nil
	}
	return fmt.Errorf("%w: %s at site %d", ErrInjected, c, key)
}

// Panic panics with a typed injected error when the plan fires.
func (s *Schedule) Panic(c Class, key int) {
	if err := s.Err(c, key); err != nil {
		panic(err)
	}
}
