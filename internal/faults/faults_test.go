package faults

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

// TestScheduleDeterministic pins the replay contract: verdicts are a
// pure function of (seed, class, key).
func TestScheduleDeterministic(t *testing.T) {
	a := NewSchedule(7, map[Class]float64{WorkerPanic: 0.3, NaNRisk: 0.1})
	b := NewSchedule(7, map[Class]float64{WorkerPanic: 0.3, NaNRisk: 0.1})
	for key := 0; key < 1000; key++ {
		for _, c := range Classes {
			if a.Hit(c, key) != b.Hit(c, key) {
				t.Fatalf("verdict for (%s, %d) not reproducible", c, key)
			}
		}
	}
}

// TestScheduleOrderIndependent pins the concurrency contract: probing in
// a different order cannot change any verdict (no internal stream).
func TestScheduleOrderIndependent(t *testing.T) {
	s := NewSchedule(11, map[Class]float64{BudgetDeny: 0.25})
	forward := make([]bool, 500)
	for k := range forward {
		forward[k] = s.Hit(BudgetDeny, k)
	}
	g := rng.New(3)
	for _, k := range g.Perm(len(forward)) {
		if s.Hit(BudgetDeny, k) != forward[k] {
			t.Fatalf("verdict for key %d changed with probe order", k)
		}
	}
}

// TestScheduleRates pins the rate envelope: 0 never fires, 1 always
// fires, fractional rates fire roughly in proportion, and different
// seeds disagree.
func TestScheduleRates(t *testing.T) {
	const n = 20000
	never := NewSchedule(1, map[Class]float64{WorkerPanic: 0})
	always := NewSchedule(1, map[Class]float64{WorkerPanic: 1})
	half := NewSchedule(1, map[Class]float64{WorkerPanic: 0.5})
	other := NewSchedule(2, map[Class]float64{WorkerPanic: 0.5})
	hits, diff := 0, 0
	for k := 0; k < n; k++ {
		if never.Hit(WorkerPanic, k) {
			t.Fatal("rate 0 fired")
		}
		if !always.Hit(WorkerPanic, k) {
			t.Fatal("rate 1 missed")
		}
		if half.Hit(WorkerPanic, k) {
			hits++
		}
		if half.Hit(WorkerPanic, k) != other.Hit(WorkerPanic, k) {
			diff++
		}
	}
	if hits < n*4/10 || hits > n*6/10 {
		t.Fatalf("rate 0.5 fired %d/%d times", hits, n)
	}
	if diff == 0 {
		t.Fatal("distinct seeds produced identical plans")
	}
	// A class absent from the rate map never fires.
	if half.Hit(NaNRisk, 0) {
		t.Fatal("unconfigured class fired")
	}
}

// TestScheduleNilSafe pins that a nil schedule is inert.
func TestScheduleNilSafe(t *testing.T) {
	var s *Schedule
	if s.Hit(WorkerPanic, 0) || s.Err(NaNRisk, 1) != nil {
		t.Fatal("nil schedule fired")
	}
	s.Panic(WorkerPanic, 0) // must not panic
}

// TestScheduleTypedError pins that injected failures are identifiable.
func TestScheduleTypedError(t *testing.T) {
	s := NewSchedule(5, map[Class]float64{CheckpointWrite: 1})
	if err := s.Err(CheckpointWrite, 9); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if err := s.Err(WorkerPanic, 9); err != nil {
		t.Fatalf("unconfigured class errored: %v", err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Panic did not panic")
		} else if err, ok := r.(error); !ok || !errors.Is(err, ErrInjected) {
			t.Fatalf("panic value %v is not a typed injected error", r)
		}
	}()
	s.Panic(CheckpointWrite, 9)
}
