package gibbs

// Micro-benchmarks for the Gibbs-estimator hot paths.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/rng"
)

func benchEstimator(b *testing.B, gridPts int) (*Estimator, *dataset.Dataset) {
	b.Helper()
	g := rng.New(1)
	d := dataset.LogisticModel{Weights: []float64{2, -1}}.Generate(500, g)
	grid := learn.NewGrid(-2, 2, 2, gridPts)
	est, err := New(learn.ZeroOneLoss{}, grid.Thetas(), nil, 50)
	if err != nil {
		b.Fatal(err)
	}
	return est, d
}

func BenchmarkLogPosterior289(b *testing.B) {
	est, d := benchEstimator(b, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.LogPosterior(d)
	}
}

func BenchmarkSample289(b *testing.B) {
	est, d := benchEstimator(b, 17)
	g := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = est.Sample(d, g)
	}
}

func BenchmarkMHSampler(b *testing.B) {
	s := &MHSampler{
		LogTarget: func(x []float64) float64 { return -x[0] * x[0] / 2 },
		Step:      1,
	}
	g := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Run([]float64{0}, 100, 100, 1, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMALASampler(b *testing.B) {
	s := &MALASampler{
		LogTarget:     func(x []float64) float64 { return -x[0] * x[0] / 2 },
		GradLogTarget: func(x []float64) []float64 { return []float64{-x[0]} },
		Tau:           1,
	}
	g := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Run([]float64{0}, 100, 100, 1, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEffectiveSampleSize(b *testing.B) {
	g := rng.New(7)
	chain := make([]float64, 5000)
	for i := 1; i < len(chain); i++ {
		chain[i] = 0.9*chain[i-1] + g.Normal(0, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EffectiveSampleSize(chain)
	}
}
