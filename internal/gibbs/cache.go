package gibbs

import (
	"sync"

	"repro/internal/dataset"
)

// cacheCapacity bounds the number of risk vectors a RiskCache retains.
// Eviction only affects whether a vector is recomputed, never its value,
// so the (map-order-dependent) eviction choice does not break the
// determinism contract.
const cacheCapacity = 64

// RiskCache memoizes per-θ empirical-risk vectors keyed by the dataset's
// content fingerprint. A cache belongs to one predictor space and loss
// (risks depend on both), so core.Learner owns one cache and threads it
// through every Estimator it calibrates: Fit + Certify +
// AccountInformation on the same data then evaluate the O(|Θ|·n) risk
// grid exactly once.
//
// RiskCache is safe for concurrent use; the channel enumerator queries
// it from many goroutines at once.
type RiskCache struct {
	mu sync.Mutex
	m  map[dataset.Fingerprint][]float64

	hits, misses, evictions int
}

// NewRiskCache returns an empty cache.
func NewRiskCache() *RiskCache {
	return &RiskCache{m: make(map[dataset.Fingerprint][]float64)}
}

// lookup returns the cached risk vector for fp, or nil.
func (c *RiskCache) lookup(fp dataset.Fingerprint) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[fp]
	if ok {
		c.hits++
		return r
	}
	c.misses++
	return nil
}

// store records a risk vector for fp, evicting an arbitrary entry when
// the cache is full, and reports whether an eviction happened. The
// stored slice is retained verbatim; callers hand over ownership.
func (c *RiskCache) store(fp dataset.Fingerprint, risks []float64) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fp]; !ok && len(c.m) >= cacheCapacity {
		for k := range c.m {
			delete(c.m, k)
			break
		}
		c.evictions++
		evicted = true
	}
	c.m[fp] = risks
	return evicted
}

// Stats reports cumulative lookup hits, misses, and evictions (for
// tests, benchmarks, and the metrics registry).
func (c *RiskCache) Stats() (hits, misses, evictions int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// Len returns the number of cached risk vectors.
func (c *RiskCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
