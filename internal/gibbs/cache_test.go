package gibbs

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/rng"
)

func cacheTestEstimator(t *testing.T) *Estimator {
	t.Helper()
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, 4)
	thetas := [][]float64{{-1}, {-0.5}, {0}, {0.5}, {1}}
	est, err := New(loss, thetas, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func cacheTestData(seed int64, n int) *dataset.Dataset {
	model := dataset.LinearModel{Weights: []float64{0.7}, Noise: 0.2}
	return model.Generate(n, rng.New(seed))
}

// TestRiskCacheMemoizes: repeated Risks calls on the same data hit the
// cache, distinct data misses, and cached values are bit-identical to
// the first computation.
func TestRiskCacheMemoizes(t *testing.T) {
	est := cacheTestEstimator(t)
	est.Cache = NewRiskCache()
	d1 := cacheTestData(1, 30)
	d2 := cacheTestData(2, 30)

	first := est.Risks(d1)
	again := est.Risks(d1)
	for i := range first {
		if math.Float64bits(first[i]) != math.Float64bits(again[i]) {
			t.Fatalf("cached risk %d differs: %v vs %v", i, first[i], again[i])
		}
	}
	_ = est.Risks(d2)
	hits, misses, evictions := est.Cache.Stats()
	if hits != 1 || misses != 2 || evictions != 0 {
		t.Errorf("stats = (%d hits, %d misses, %d evictions), want (1, 2, 0)", hits, misses, evictions)
	}
	if est.Cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", est.Cache.Len())
	}
}

// TestRiskCacheReturnsDefensiveCopies: mutating a returned risk vector
// must not corrupt the cached copy.
func TestRiskCacheReturnsDefensiveCopies(t *testing.T) {
	est := cacheTestEstimator(t)
	est.Cache = NewRiskCache()
	d := cacheTestData(3, 20)

	first := est.Risks(d)
	first[0] = math.Inf(1)
	again := est.Risks(d)
	if math.IsInf(again[0], 1) {
		t.Fatal("caller mutation leaked into the cache")
	}
}

// TestRiskCacheEvictsAtCapacity: the cache never grows beyond its
// capacity, and evicted entries are simply recomputed (a miss), not an
// error.
func TestRiskCacheEvictsAtCapacity(t *testing.T) {
	est := cacheTestEstimator(t)
	est.Cache = NewRiskCache()
	for i := 0; i < cacheCapacity+8; i++ {
		est.Risks(cacheTestData(int64(100+i), 10))
	}
	if got := est.Cache.Len(); got > cacheCapacity {
		t.Fatalf("cache grew to %d entries, capacity %d", got, cacheCapacity)
	}
	if _, _, evictions := est.Cache.Stats(); evictions != 8 {
		t.Fatalf("evictions = %d, want 8", evictions)
	}
}

// TestFingerprintDistinguishesData: the dataset fingerprint must
// separate datasets that differ in one value, in length, or in shape —
// a collision would silently serve the wrong risk vector.
func TestFingerprintDistinguishesData(t *testing.T) {
	base := cacheTestData(7, 25)
	fp := base.Fingerprint()

	if got := cacheTestData(8, 25).Fingerprint(); got == fp {
		t.Error("different sample, same fingerprint")
	}
	if got := cacheTestData(7, 24).Fingerprint(); got == fp {
		t.Error("different length, same fingerprint")
	}
	mutated := base.Clone()
	mutated.Examples[0].Y += 1e-9
	if got := mutated.Fingerprint(); got == fp {
		t.Error("perturbed label, same fingerprint")
	}
	mutated2 := base.Clone()
	mutated2.Examples[3].X[0] = math.Nextafter(mutated2.Examples[3].X[0], 2)
	if got := mutated2.Fingerprint(); got == fp {
		t.Error("one-ulp feature change, same fingerprint")
	}
	if got := base.Clone().Fingerprint(); got != fp {
		t.Error("identical content, different fingerprint")
	}
}

// TestNilCacheIsMemoizationOff: a nil Cache computes fresh every call
// and still returns correct (identical) risks.
func TestNilCacheIsMemoizationOff(t *testing.T) {
	est := cacheTestEstimator(t)
	d := cacheTestData(9, 15)
	a := est.Risks(d)
	b := est.Risks(d)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("risk %d not reproducible without cache", i)
		}
	}
}
