// Context-aware, error-returning variants of the estimator's hot paths,
// plus the typed sentinels for the degenerate inputs that used to panic.
//
// The plain methods (Risks, LogPosterior, Sample, ...) delegate to the
// Ctx variants with context.Background() and keep their historical
// panic-on-degenerate contract; pipelines that need graceful faults —
// cancellation, budget degradation, chaos testing — call the Ctx
// variants and branch on errors.Is against the sentinels instead.
package gibbs

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/pacbayes"
	"repro/internal/rng"
)

// ErrDegeneratePosterior reports that the Gibbs posterior could not be
// normalized: the prior and risks put no mass anywhere (log-sum-exp of
// -Inf everywhere), so there is no distribution to sample.
var ErrDegeneratePosterior = errors.New("gibbs: degenerate posterior")

// ErrUnboundedLoss reports a loss with no finite bound M, for which the
// Theorem 4.1 certificate ε = 2·λ·M/n is vacuous and the λ ↔ ε
// calibration has no solution.
var ErrUnboundedLoss = errors.New("gibbs: unbounded loss")

// LambdaForEpsilonErr is LambdaForEpsilon returning typed errors
// instead of panicking: ErrBadConfig-wrapped for non-positive ε or n,
// ErrUnboundedLoss when the loss has no finite bound.
func LambdaForEpsilonErr(epsilon float64, loss learn.Loss, n int) (float64, error) {
	if epsilon <= 0 || math.IsNaN(epsilon) || n <= 0 {
		return 0, fmt.Errorf("%w: LambdaForEpsilon requires epsilon > 0 and n > 0 (got ε=%v, n=%d)", ErrBadConfig, epsilon, n)
	}
	m := loss.Bound()
	if math.IsInf(m, 1) || m <= 0 {
		return 0, fmt.Errorf("%w: cannot calibrate λ for ε=%v (loss %q has bound %v)", ErrUnboundedLoss, epsilon, loss.Name(), m)
	}
	return epsilon * float64(n) / (2 * m), nil
}

// RisksCtx is Risks with cancellation and panic isolation (see
// learn.RiskVectorCtx). Cache bookkeeping is identical to Risks; a
// canceled evaluation stores nothing.
func (e *Estimator) RisksCtx(ctx context.Context, d *dataset.Dataset) ([]float64, error) {
	if e.Cache == nil {
		return learn.RiskVectorCtx(ctx, e.Loss, e.Thetas, d, e.Parallel)
	}
	reg := e.Parallel.Obs.Reg()
	fp := d.Fingerprint()
	if r := e.Cache.lookup(fp); r != nil {
		reg.Counter("dplearn_risk_cache_hits_total",
			"risk-vector cache lookups served from memory").Inc()
		return append([]float64(nil), r...), nil
	}
	reg.Counter("dplearn_risk_cache_misses_total",
		"risk-vector cache lookups that evaluated the risk grid").Inc()
	r, err := learn.RiskVectorCtx(ctx, e.Loss, e.Thetas, d, e.Parallel)
	if err != nil {
		return nil, err
	}
	if e.Cache.store(fp, r) {
		reg.Counter("dplearn_risk_cache_evictions_total",
			"risk vectors evicted from the full cache").Inc()
	}
	return append([]float64(nil), r...), nil
}

// LogPosteriorCtx is LogPosterior with cancellation, panic isolation,
// and a typed ErrDegeneratePosterior instead of the historical panic.
func (e *Estimator) LogPosteriorCtx(ctx context.Context, d *dataset.Dataset) ([]float64, error) {
	risks, err := e.RisksCtx(ctx, d)
	if err != nil {
		return nil, err
	}
	o := e.Parallel.Obs
	sp := o.Span("gibbs.posterior")
	start := o.Now()
	post, perr := pacbayes.GibbsLogPosterior(e.logPriorOrUniform(), risks, e.Lambda)
	o.Reg().Histogram("dplearn_gibbs_posterior_ticks",
		"posterior-normalization duration in clock ticks", posteriorTickBuckets).
		Observe(float64(o.Now() - start))
	sp.SetAttr("thetas", len(e.Thetas))
	sp.End()
	if perr != nil {
		return nil, fmt.Errorf("%w: %v", ErrDegeneratePosterior, perr)
	}
	return post, nil
}

// SampleCtx is Sample with cancellation and typed errors: the risk grid
// honors ctx, and a posterior with no admissible predictor returns
// ErrDegeneratePosterior instead of corrupting the draw.
func (e *Estimator) SampleCtx(ctx context.Context, d *dataset.Dataset, g *rng.RNG) (int, error) {
	risks, err := e.RisksCtx(ctx, d)
	if err != nil {
		return 0, err
	}
	prior := e.logPriorOrUniform()
	logw := make([]float64, len(e.Thetas))
	degenerate := true
	for i := range logw {
		logw[i] = prior[i] - e.Lambda*risks[i]
		if !math.IsInf(logw[i], -1) && !math.IsNaN(logw[i]) {
			degenerate = false
		}
	}
	if degenerate {
		return 0, fmt.Errorf("%w: every predictor has zero posterior weight", ErrDegeneratePosterior)
	}
	return g.CategoricalLog(logw), nil
}

// SampleThetaCtx is SampleTheta with cancellation and typed errors.
func (e *Estimator) SampleThetaCtx(ctx context.Context, d *dataset.Dataset, g *rng.RNG) ([]float64, error) {
	i, err := e.SampleCtx(ctx, d, g)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), e.Thetas[i]...), nil
}

// StatsCtx is Stats with cancellation and typed errors.
func (e *Estimator) StatsCtx(ctx context.Context, d *dataset.Dataset) (pacbayes.PosteriorStats, error) {
	post, err := e.LogPosteriorCtx(ctx, d)
	if err != nil {
		return pacbayes.PosteriorStats{}, err
	}
	risks, err := e.RisksCtx(ctx, d)
	if err != nil {
		return pacbayes.PosteriorStats{}, err
	}
	return pacbayes.StatsFor(post, e.logPriorOrUniform(), risks)
}
