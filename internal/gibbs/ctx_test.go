package gibbs

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/rng"
)

func ctxTestEstimator(t *testing.T) (*Estimator, *dataset.Dataset) {
	t.Helper()
	loss := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	thetas := [][]float64{{0}, {0.5}, {1}}
	e, err := New(loss, thetas, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.New([]dataset.Example{
		{X: []float64{0.1}, Y: 0.1},
		{X: []float64{0.9}, Y: 0.9},
		{X: []float64{0.4}, Y: 0.4},
	})
	return e, d
}

// TestLambdaForEpsilonErrSentinels pins the typed errors behind the
// historical panics: bad arguments wrap ErrBadConfig, an unbounded loss
// wraps ErrUnboundedLoss, and the panicking wrapper re-raises the same
// classified error.
func TestLambdaForEpsilonErrSentinels(t *testing.T) {
	bounded := learn.NewClippedLoss(learn.AbsoluteLoss{}, 1)
	if _, err := LambdaForEpsilonErr(0, bounded, 10); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ε=0: want ErrBadConfig, got %v", err)
	}
	if _, err := LambdaForEpsilonErr(1, bounded, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("n=0: want ErrBadConfig, got %v", err)
	}
	if _, err := LambdaForEpsilonErr(math.NaN(), bounded, 10); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ε=NaN: want ErrBadConfig, got %v", err)
	}
	if _, err := LambdaForEpsilonErr(1, learn.AbsoluteLoss{}, 10); !errors.Is(err, ErrUnboundedLoss) {
		t.Fatalf("unbounded loss: want ErrUnboundedLoss, got %v", err)
	}
	lam, err := LambdaForEpsilonErr(2, bounded, 100)
	if err != nil || lam != 100 {
		t.Fatalf("λ = %v, %v; want 100, nil", lam, err)
	}
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrUnboundedLoss) {
			t.Fatalf("panic value %v not classified as ErrUnboundedLoss", r)
		}
	}()
	LambdaForEpsilon(1, learn.AbsoluteLoss{}, 10)
}

// TestEstimatorCtxMatchesPlain pins that the ctx variants are
// bit-identical to the plain methods when the context never cancels.
func TestEstimatorCtxMatchesPlain(t *testing.T) {
	e, d := ctxTestEstimator(t)
	post := e.LogPosterior(d)
	postCtx, err := e.LogPosteriorCtx(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range post {
		if math.Float64bits(post[i]) != math.Float64bits(postCtx[i]) {
			t.Fatalf("posterior slot %d differs", i)
		}
	}
	i1 := e.Sample(d, rng.New(7))
	i2, err := e.SampleCtx(context.Background(), d, rng.New(7))
	if err != nil || i1 != i2 {
		t.Fatalf("Sample=%d SampleCtx=(%d,%v)", i1, i2, err)
	}
}

// TestEstimatorCtxCanceled pins that a canceled context aborts before
// the draw with a context error, not a corrupt sample.
func TestEstimatorCtxCanceled(t *testing.T) {
	e, d := ctxTestEstimator(t)
	// Large enough that RiskVectorCtx does not collapse to the small-work
	// serial path before the ctx check matters; cancellation is checked
	// at chunk boundaries either way.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RisksCtx(ctx, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("RisksCtx: want context.Canceled, got %v", err)
	}
	if _, err := e.SampleCtx(ctx, d, rng.New(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("SampleCtx: want context.Canceled, got %v", err)
	}
}

// TestSampleCtxDegeneratePosterior pins the typed sentinel on a
// posterior with no admissible predictor.
func TestSampleCtxDegeneratePosterior(t *testing.T) {
	e, d := ctxTestEstimator(t)
	e.LogPrior = []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	if _, err := e.SampleCtx(context.Background(), d, rng.New(1)); !errors.Is(err, ErrDegeneratePosterior) {
		t.Fatalf("want ErrDegeneratePosterior, got %v", err)
	}
	if _, err := e.LogPosteriorCtx(context.Background(), d); !errors.Is(err, ErrDegeneratePosterior) {
		t.Fatalf("LogPosteriorCtx: want ErrDegeneratePosterior, got %v", err)
	}
}
