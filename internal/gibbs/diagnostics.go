package gibbs

import (
	"errors"
	"math"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// This file adds a gradient-informed sampler (MALA) for smooth continuous
// Gibbs targets and the convergence diagnostics (autocorrelation,
// effective sample size) needed to trust MCMC output.

// MALASampler is the Metropolis-adjusted Langevin algorithm: proposals
// x′ = x + (τ²/2)∇log π(x) + τ·ξ with a Metropolis correction. For smooth
// targets it mixes far faster than random-walk MH at equal step budget.
type MALASampler struct {
	// LogTarget is the unnormalized log-density.
	LogTarget func([]float64) float64
	// GradLogTarget is its gradient. If nil, a central finite-difference
	// approximation with step FDStep (default 1e-6) is used.
	GradLogTarget func([]float64) []float64
	// Tau is the Langevin step size τ.
	Tau float64
	// FDStep overrides the finite-difference step when GradLogTarget is
	// nil.
	FDStep float64
}

// Run draws count samples after burnin steps from x0, recording every
// thin-th state. It returns the samples and acceptance rate.
func (s *MALASampler) Run(x0 []float64, burnin, count, thin int, g *rng.RNG) ([][]float64, float64, error) {
	if s.LogTarget == nil || s.Tau <= 0 || count <= 0 || thin <= 0 || burnin < 0 {
		return nil, 0, ErrBadSampler
	}
	grad := s.GradLogTarget
	if grad == nil {
		h := s.FDStep
		if h <= 0 {
			h = 1e-6
		}
		grad = func(x []float64) []float64 {
			out := make([]float64, len(x))
			buf := append([]float64(nil), x...)
			for j := range x {
				buf[j] = x[j] + h
				fp := s.LogTarget(buf)
				buf[j] = x[j] - h
				fm := s.LogTarget(buf)
				buf[j] = x[j]
				out[j] = (fp - fm) / (2 * h)
			}
			return out
		}
	}
	x := append([]float64(nil), x0...)
	logp := s.LogTarget(x)
	if math.IsNaN(logp) || math.IsInf(logp, -1) {
		return nil, 0, errors.New("gibbs: MALA log-target degenerate at the initial point")
	}
	gx := grad(x)
	dim := len(x)
	tau2 := s.Tau * s.Tau
	// log q(a→b) = −‖b − a − (τ²/2)∇(a)‖² / (2τ²) (up to constants).
	logQ := func(from, gradFrom, to []float64) float64 {
		var ss float64
		for j := 0; j < dim; j++ {
			d := to[j] - from[j] - tau2/2*gradFrom[j]
			ss += d * d
		}
		return -ss / (2 * tau2)
	}
	samples := make([][]float64, 0, count)
	accepted, proposed := 0, 0
	prop := make([]float64, dim)
	total := burnin + count*thin
	for step := 0; step < total; step++ {
		for j := 0; j < dim; j++ {
			prop[j] = x[j] + tau2/2*gx[j] + s.Tau*g.Normal(0, 1)
		}
		lp := s.LogTarget(prop)
		proposed++
		if !math.IsNaN(lp) && !math.IsInf(lp, -1) {
			gProp := grad(prop)
			logAlpha := lp - logp + logQ(prop, gProp, x) - logQ(x, gx, prop)
			//dplint:ignore expdomain bounded argument: the exp branch runs only when logAlpha < 0, so exp stays in (0,1)
			if logAlpha >= 0 || g.Float64() < math.Exp(logAlpha) {
				copy(x, prop)
				logp = lp
				gx = gProp
				accepted++
			}
		}
		if step >= burnin && (step-burnin)%thin == thin-1 {
			samples = append(samples, append([]float64(nil), x...))
		}
	}
	return samples, float64(accepted) / float64(proposed), nil
}

// Autocorrelation returns the normalized autocorrelation of a scalar
// chain at the given lag (lag 0 is 1). It panics on an empty chain or a
// lag outside [0, len).
func Autocorrelation(chain []float64, lag int) float64 {
	n := len(chain)
	if n == 0 || lag < 0 || lag >= n {
		panic("gibbs: Autocorrelation lag out of range")
	}
	var w mathx.Welford
	for _, v := range chain {
		w.Add(v)
	}
	mean, variance := w.Mean(), w.PopulationVariance()
	if variance == 0 { //dplint:ignore floateq degenerate chain: an exactly-constant chain has bitwise-zero population variance
		return 1
	}
	var acc float64
	for i := 0; i+lag < n; i++ {
		acc += (chain[i] - mean) * (chain[i+lag] - mean)
	}
	return acc / float64(n) / variance
}

// EffectiveSampleSize estimates the effective sample size of a scalar
// chain by the initial-positive-sequence estimator: n / (1 + 2Σρ_k),
// truncating the autocorrelation sum at the first non-positive pair.
func EffectiveSampleSize(chain []float64) float64 {
	n := len(chain)
	if n < 4 {
		return float64(n)
	}
	var sum float64
	for k := 1; k+1 < n/2; k += 2 {
		pair := Autocorrelation(chain, k) + Autocorrelation(chain, k+1)
		if pair <= 0 {
			break
		}
		sum += pair
	}
	ess := float64(n) / (1 + 2*sum)
	if ess > float64(n) {
		ess = float64(n)
	}
	if ess < 1 {
		ess = 1
	}
	return ess
}
