package gibbs

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestMALAGaussianTarget(t *testing.T) {
	// Sample N(2, 1.5²) with an analytic gradient.
	s := &MALASampler{
		LogTarget: func(x []float64) float64 {
			d := x[0] - 2
			return -d * d / (2 * 1.5 * 1.5)
		},
		GradLogTarget: func(x []float64) []float64 {
			return []float64{-(x[0] - 2) / (1.5 * 1.5)}
		},
		Tau: 1.2,
	}
	g := rng.New(1)
	samples, rate, err := s.Run([]float64{-5}, 2000, 20000, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.3 || rate > 0.99 {
		t.Errorf("acceptance rate %v", rate)
	}
	var w mathx.Welford
	for _, x := range samples {
		w.Add(x[0])
	}
	if math.Abs(w.Mean()-2) > 0.1 {
		t.Errorf("MALA mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-2.25)/2.25 > 0.15 {
		t.Errorf("MALA variance = %v", w.Variance())
	}
}

func TestMALAFiniteDifferenceGradient(t *testing.T) {
	// No gradient supplied: finite differences must still work.
	s := &MALASampler{
		LogTarget: func(x []float64) float64 {
			return -x[0] * x[0] / 2
		},
		Tau: 1.0,
	}
	g := rng.New(3)
	samples, _, err := s.Run([]float64{0}, 1000, 10000, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	var w mathx.Welford
	for _, x := range samples {
		w.Add(x[0])
	}
	if math.Abs(w.Mean()) > 0.1 || math.Abs(w.Variance()-1) > 0.15 {
		t.Errorf("FD-MALA moments: mean %v, var %v", w.Mean(), w.Variance())
	}
}

func TestMALAValidation(t *testing.T) {
	s := &MALASampler{Tau: 1}
	if _, _, err := s.Run([]float64{0}, 0, 10, 1, rng.New(1)); err != ErrBadSampler {
		t.Error("nil target")
	}
	s2 := &MALASampler{LogTarget: func([]float64) float64 { return 0 }, Tau: 0}
	if _, _, err := s2.Run([]float64{0}, 0, 10, 1, rng.New(1)); err != ErrBadSampler {
		t.Error("zero tau")
	}
	s3 := &MALASampler{LogTarget: func([]float64) float64 { return math.Inf(-1) }, Tau: 1}
	if _, _, err := s3.Run([]float64{0}, 0, 10, 1, rng.New(1)); err == nil {
		t.Error("degenerate start")
	}
}

func TestMALAMixesFasterThanRWMH(t *testing.T) {
	// On a well-conditioned Gaussian, MALA's effective sample size per
	// recorded draw should beat random-walk MH tuned to a similar
	// acceptance profile.
	logT := func(x []float64) float64 { return -x[0] * x[0] / 2 }
	gradT := func(x []float64) []float64 { return []float64{-x[0]} }
	g := rng.New(5)
	mala := &MALASampler{LogTarget: logT, GradLogTarget: gradT, Tau: 1.4}
	mSamp, _, err := mala.Run([]float64{0}, 1000, 5000, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	rw := &MHSampler{LogTarget: logT, Step: 0.4} // a deliberately sticky RW
	rSamp, _, err := rw.Run([]float64{0}, 1000, 5000, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	chain := func(s [][]float64) []float64 {
		out := make([]float64, len(s))
		for i, x := range s {
			out[i] = x[0]
		}
		return out
	}
	essMALA := EffectiveSampleSize(chain(mSamp))
	essRW := EffectiveSampleSize(chain(rSamp))
	if essMALA <= essRW {
		t.Errorf("ESS: MALA %v not above sticky RWMH %v", essMALA, essRW)
	}
}

func TestAutocorrelation(t *testing.T) {
	// White noise: lag-1 autocorrelation near 0; constant chain: 1.
	g := rng.New(7)
	chain := make([]float64, 5000)
	for i := range chain {
		chain[i] = g.Normal(0, 1)
	}
	if r := Autocorrelation(chain, 0); !mathx.AlmostEqual(r, 1, 1e-12) {
		t.Errorf("lag-0 = %v", r)
	}
	if r := Autocorrelation(chain, 1); math.Abs(r) > 0.05 {
		t.Errorf("white-noise lag-1 = %v", r)
	}
	constant := []float64{3, 3, 3, 3}
	if r := Autocorrelation(constant, 1); r != 1 {
		t.Errorf("constant chain lag-1 = %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Error("lag out of range should panic")
		}
	}()
	Autocorrelation(constant, 10)
}

func TestEffectiveSampleSize(t *testing.T) {
	g := rng.New(9)
	// White noise: ESS ≈ n.
	white := make([]float64, 4000)
	for i := range white {
		white[i] = g.Normal(0, 1)
	}
	essWhite := EffectiveSampleSize(white)
	if essWhite < 3000 {
		t.Errorf("white-noise ESS = %v of %d", essWhite, len(white))
	}
	// AR(1) with high persistence: ESS ≪ n.
	ar := make([]float64, 4000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + g.Normal(0, 1)
	}
	essAR := EffectiveSampleSize(ar)
	if essAR > 1000 {
		t.Errorf("AR(0.95) ESS = %v, expected far below n", essAR)
	}
	// Tiny chains fall back to n.
	if EffectiveSampleSize([]float64{1, 2}) != 2 {
		t.Error("tiny chain")
	}
}
