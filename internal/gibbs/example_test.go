package gibbs_test

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/rng"
)

// Example demonstrates the paper's central object: the Gibbs estimator as
// a differentially-private learner with an exact privacy certificate
// (Theorem 4.1).
func Example() {
	g := rng.New(42)
	train := dataset.LogisticModel{Weights: []float64{3}}.Generate(200, g)
	grid := learn.NewGrid(-2, 2, 1, 9)

	// Calibrate λ so the estimator is exactly 1-DP.
	lambda := gibbs.LambdaForEpsilon(1.0, learn.ZeroOneLoss{}, train.Len())
	est, err := gibbs.New(learn.ZeroOneLoss{}, grid.Thetas(), nil, lambda)
	if err != nil {
		panic(err)
	}
	theta := est.SampleTheta(train, g)
	fmt.Printf("lambda = %.0f\n", lambda)
	fmt.Printf("certificate: %s\n", est.Guarantee(train.Len()))
	fmt.Printf("sampled a predictor of dimension %d\n", len(theta))
	// Output:
	// lambda = 100
	// certificate: 1-DP
	// sampled a predictor of dimension 1
}
