// Package gibbs implements the Gibbs estimator — the object at the center
// of the paper. Over a finite predictor space Θ it is the posterior
//
//	dπ̂_λ(θ) ∝ exp(−λ·R̂_Ẑ(θ)) dπ(θ)          (Lemma 3.2)
//
// which is simultaneously (a) the minimizer of the PAC-Bayes linearized
// bound, and (b) an instance of McSherry–Talwar's exponential mechanism
// with quality q = −R̂ and parameter λ, hence (2·λ·ΔR̂)-differentially
// private (Theorem 4.1), where ΔR̂ = sup|l|/n is the global sensitivity of
// the empirical risk.
//
// The package provides the exact finite-Θ estimator (posterior, sampling,
// privacy certificate, λ↔ε calibration) and a Metropolis–Hastings sampler
// for continuous predictor spaces.
package gibbs

import (
	"context"
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mechanism"
	"repro/internal/pacbayes"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// ErrBadConfig is returned for invalid estimator configuration.
var ErrBadConfig = errors.New("gibbs: invalid configuration")

// Estimator is the finite-Θ Gibbs estimator.
type Estimator struct {
	// Loss must be bounded (Bound() < ∞) for the privacy certificate to
	// be meaningful.
	Loss learn.Loss
	// Thetas is the finite predictor space Θ.
	Thetas [][]float64
	// LogPrior is the normalized log-prior π over Thetas; nil means
	// uniform.
	LogPrior []float64
	// Lambda is the inverse temperature λ (the exponential-mechanism
	// parameter).
	Lambda float64
	// Parallel controls worker fan-out for the risk grid and the
	// posterior reductions. The zero value uses all CPUs; every setting
	// produces bit-identical results (see package parallel).
	Parallel parallel.Options
	// Cache optionally memoizes risk vectors by dataset fingerprint, so
	// repeated posterior computations on the same data evaluate the
	// O(|Θ|·n) risk grid once. The cache must be dedicated to this
	// (Loss, Thetas) pair; core.Learner threads one through every
	// estimator it calibrates. Nil disables memoization.
	Cache *RiskCache
}

// New validates and constructs an Estimator.
func New(loss learn.Loss, thetas [][]float64, logPrior []float64, lambda float64) (*Estimator, error) {
	if loss == nil || len(thetas) == 0 || lambda <= 0 || math.IsNaN(lambda) {
		return nil, ErrBadConfig
	}
	if logPrior != nil && len(logPrior) != len(thetas) {
		return nil, ErrBadConfig
	}
	return &Estimator{Loss: loss, Thetas: thetas, LogPrior: logPrior, Lambda: lambda}, nil
}

// logPriorOrUniform returns the prior in log space.
func (e *Estimator) logPriorOrUniform() []float64 {
	if e.LogPrior != nil {
		return e.LogPrior
	}
	out := make([]float64, len(e.Thetas))
	lp := -math.Log(float64(len(e.Thetas)))
	for i := range out {
		out[i] = lp
	}
	return out
}

// Risks returns the per-θ empirical risks on d, evaluated with the
// estimator's fan-out options and memoized in Cache when one is set.
// The returned slice is the caller's to keep (cached vectors are copied
// out), and its values are bit-identical for every worker count. Cache
// hits, misses, and evictions are counted on the wired metrics registry.
func (e *Estimator) Risks(d *dataset.Dataset) []float64 {
	r, err := e.RisksCtx(context.Background(), d)
	if err != nil {
		// Background contexts never cancel; the only possible error is a
		// recovered worker panic, re-raised to keep the plain contract.
		panic(err)
	}
	return r
}

// LogPosterior returns the normalized Gibbs log-posterior on dataset d.
// The posterior-normalization step (log-sum-exp over Θ) is timed on the
// wired observer as the dplearn_gibbs_posterior_ticks histogram and a
// gibbs.posterior span.
func (e *Estimator) LogPosterior(d *dataset.Dataset) []float64 {
	post, err := e.LogPosteriorCtx(context.Background(), d)
	if err != nil {
		// Only reachable with a degenerate (-Inf everywhere) prior, which
		// New rejects implicitly through normalization in callers. The
		// panic value wraps ErrDegeneratePosterior, so a recovering
		// caller can still classify it.
		panic(err)
	}
	return post
}

// posteriorTickBuckets spans sub-microsecond logical ticks up to
// hundreds of milliseconds of wall time (clock-unit agnostic decades).
var posteriorTickBuckets = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// LogProbabilities implements the audit.DiscreteMechanism interface: the
// mechanism's exact output distribution on d.
func (e *Estimator) LogProbabilities(d *dataset.Dataset) []float64 {
	return e.LogPosterior(d)
}

// Sample draws a predictor index from the Gibbs posterior.
func (e *Estimator) Sample(d *dataset.Dataset, g *rng.RNG) int {
	logw := make([]float64, len(e.Thetas))
	prior := e.logPriorOrUniform()
	risks := e.Risks(d)
	for i := range logw {
		logw[i] = prior[i] - e.Lambda*risks[i]
	}
	return g.CategoricalLog(logw)
}

// SampleTheta draws a predictor vector from the Gibbs posterior.
func (e *Estimator) SampleTheta(d *dataset.Dataset, g *rng.RNG) []float64 {
	return append([]float64(nil), e.Thetas[e.Sample(d, g)]...)
}

// RiskSensitivity returns ΔR̂ = Bound/n, the global sensitivity of the
// empirical risk under replace-one neighbors for samples of size n.
func (e *Estimator) RiskSensitivity(n int) float64 {
	return learn.SwapSensitivity(e.Loss, n)
}

// Guarantee returns the Theorem 4.1 privacy certificate for samples of
// size n: the Gibbs posterior at inverse temperature λ is 2·λ·ΔR̂-DP.
// For an unbounded loss the guarantee is vacuous (ε = +Inf).
func (e *Estimator) Guarantee(n int) mechanism.Guarantee {
	return mechanism.Guarantee{Epsilon: 2 * e.Lambda * e.RiskSensitivity(n)}
}

// PosteriorMeanRisk returns E_{θ~π̂} R̂_Ẑ(θ), the posterior-expected
// empirical risk on d, via the ordered chunked reduction (bit-identical
// across worker counts).
func (e *Estimator) PosteriorMeanRisk(d *dataset.Dataset) float64 {
	post := e.LogPosterior(d)
	risks := e.Risks(d)
	return parallel.Sum(len(post), e.Parallel, func(i int) float64 {
		lp := post[i]
		if math.IsInf(lp, -1) {
			return 0
		}
		//dplint:ignore expdomain bounded argument: lp is a normalized log-posterior entry, so lp <= 0 and exp stays in (0,1]
		return math.Exp(lp) * risks[i]
	})
}

// PosteriorMeanTheta returns E_{θ~π̂} θ, the posterior-mean parameter
// vector (a useful deterministic summary, though releasing it is NOT
// covered by the sampling privacy certificate).
func (e *Estimator) PosteriorMeanTheta(d *dataset.Dataset) []float64 {
	post := e.LogPosterior(d)
	weights := parallel.Map(len(post), e.Parallel, func(i int) float64 {
		if math.IsInf(post[i], -1) {
			return 0
		}
		//dplint:ignore expdomain bounded argument: post[i] is a normalized log-posterior entry, so it is <= 0 and exp stays in (0,1]
		return math.Exp(post[i])
	})
	dim := len(e.Thetas[0])
	mean := make([]float64, dim)
	for j := 0; j < dim; j++ {
		mean[j] = parallel.Sum(len(weights), e.Parallel, func(i int) float64 {
			return weights[i] * e.Thetas[i][j]
		})
	}
	return mean
}

// Stats returns the PAC-Bayes statistics (expected empirical risk and
// KL(π̂‖π)) of the Gibbs posterior on d, ready to plug into the bounds.
func (e *Estimator) Stats(d *dataset.Dataset) (pacbayes.PosteriorStats, error) {
	return pacbayes.StatsFor(e.LogPosterior(d), e.logPriorOrUniform(), e.Risks(d))
}

// UtilityBound returns the McSherry–Talwar utility guarantee transferred
// to the Gibbs estimator: with probability at least 1−β over the sampled
// predictor, its empirical risk exceeds the ERM's by at most
//
//	(ln|Θ| + ln(1/β)) / λ
//
// (for a uniform prior; an informative prior can only tighten the
// constant for high-prior predictors).
func (e *Estimator) UtilityBound(beta float64) float64 {
	if beta <= 0 || beta >= 1 {
		panic("gibbs: UtilityBound requires beta in (0,1)")
	}
	return (math.Log(float64(len(e.Thetas))) + math.Log(1/beta)) / e.Lambda
}

// LambdaForEpsilon returns the inverse temperature λ that makes the Gibbs
// estimator exactly ε-DP for a [0, M]-bounded loss on samples of size n
// (inverting Theorem 4.1): λ = ε·n/(2M). It panics on non-positive
// arguments (wrapping ErrBadConfig) or an unbounded loss (wrapping
// ErrUnboundedLoss); use LambdaForEpsilonErr to receive the typed error
// instead.
func LambdaForEpsilon(epsilon float64, loss learn.Loss, n int) float64 {
	lambda, err := LambdaForEpsilonErr(epsilon, loss, n)
	if err != nil {
		panic(err)
	}
	return lambda
}

// EpsilonForLambda returns the Theorem 4.1 privacy level of the Gibbs
// estimator at inverse temperature λ for a [0, M]-bounded loss on samples
// of size n: ε = 2·λ·M/n.
func EpsilonForLambda(lambda float64, loss learn.Loss, n int) float64 {
	if lambda <= 0 || n <= 0 {
		panic("gibbs: EpsilonForLambda requires lambda > 0 and n > 0")
	}
	return 2 * lambda * loss.Bound() / float64(n)
}
