package gibbs

import (
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/mathx"
	"repro/internal/pacbayes"
	"repro/internal/rng"
)

func testEstimator(t *testing.T, lambda float64) (*Estimator, *dataset.Dataset) {
	t.Helper()
	g := rng.New(1)
	model := dataset.LogisticModel{Weights: []float64{2}, Bias: 0}
	d := model.Generate(100, g)
	grid := learn.NewGrid(-2, 2, 1, 17)
	est, err := New(learn.ZeroOneLoss{}, grid.Thetas(), nil, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return est, d
}

func TestNewValidation(t *testing.T) {
	grid := learn.NewGrid(-1, 1, 1, 3)
	if _, err := New(nil, grid.Thetas(), nil, 1); err != ErrBadConfig {
		t.Error("nil loss")
	}
	if _, err := New(learn.ZeroOneLoss{}, nil, nil, 1); err != ErrBadConfig {
		t.Error("empty thetas")
	}
	if _, err := New(learn.ZeroOneLoss{}, grid.Thetas(), []float64{0}, 1); err != ErrBadConfig {
		t.Error("prior length")
	}
	if _, err := New(learn.ZeroOneLoss{}, grid.Thetas(), nil, 0); err != ErrBadConfig {
		t.Error("lambda")
	}
}

func TestLogPosteriorMatchesPacbayes(t *testing.T) {
	est, d := testEstimator(t, 12)
	post := est.LogPosterior(d)
	if !mathx.AlmostEqual(mathx.LogSumExp(post), 0, 1e-10) {
		t.Error("posterior must normalize")
	}
	want, err := pacbayes.GibbsLogPosterior(est.logPriorOrUniform(), est.Risks(d), est.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	for i := range post {
		if !mathx.AlmostEqual(post[i], want[i], 1e-12) {
			t.Fatalf("posterior[%d] = %v, want %v", i, post[i], want[i])
		}
	}
}

func TestSampleMatchesPosterior(t *testing.T) {
	est, d := testEstimator(t, 8)
	g := rng.New(3)
	counts := make([]int, len(est.Thetas))
	n := 200_000
	for i := 0; i < n; i++ {
		counts[est.Sample(d, g)]++
	}
	post := est.LogPosterior(d)
	for i, c := range counts {
		want := math.Exp(post[i])
		got := float64(c) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("freq[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSampleTheta(t *testing.T) {
	est, d := testEstimator(t, 8)
	g := rng.New(5)
	th := est.SampleTheta(d, g)
	if len(th) != 1 {
		t.Fatal("dim")
	}
	// Returned slice must be a copy.
	th[0] = 999
	for _, cand := range est.Thetas {
		if cand[0] == 999 {
			t.Fatal("SampleTheta must copy")
		}
	}
}

func TestTheorem41ExactPrivacy(t *testing.T) {
	// The Gibbs posterior must satisfy its 2λΔR̂ certificate exactly,
	// for every neighbor pair and every output.
	lambda := 20.0
	est, _ := testEstimator(t, lambda)
	n := 60
	budget := est.Guarantee(n).Epsilon
	if !mathx.AlmostEqual(budget, 2*lambda/float64(n), 1e-12) {
		t.Fatalf("budget = %v", budget)
	}
	g := rng.New(7)
	model := dataset.LogisticModel{Weights: []float64{2}, Bias: 0}
	gen := func(h *rng.RNG) *dataset.Dataset { return model.Generate(n, h) }
	pairs := audit.RandomNeighborPairs(gen, 200, g)
	eps := audit.ExactAudit(est, pairs)
	if eps > budget+1e-9 {
		t.Errorf("exact audit ε̂ = %v exceeds certificate %v", eps, budget)
	}
	if eps == 0 {
		t.Error("audit should observe nonzero privacy loss")
	}
}

func TestTheorem41Tightness(t *testing.T) {
	// On an adversarial pair the realized loss should approach a
	// substantial fraction of the certificate (the 0-1 risk can move by
	// exactly 1/n on one θ and 0 on another).
	n := 30
	lambda := 15.0
	grid := learn.NewGrid(-1, 1, 1, 3) // θ ∈ {-1, 0, 1}
	est, err := New(learn.ZeroOneLoss{}, grid.Thetas(), nil, lambda)
	if err != nil {
		t.Fatal(err)
	}
	// Pair: flipping one record's label flips its loss under θ=1 and
	// θ=−1 in opposite directions.
	d := &dataset.Dataset{}
	g := rng.New(9)
	for i := 0; i < n; i++ {
		x := g.Uniform(0.1, 1)
		d.Append(dataset.Example{X: []float64{x}, Y: 1})
	}
	nb := d.ReplaceOne(0, dataset.Example{X: []float64{0.5}, Y: -1})
	eps := audit.ExactEpsilon(est.LogProbabilities(d), est.LogProbabilities(nb))
	budget := est.Guarantee(n).Epsilon
	if eps > budget+1e-9 {
		t.Fatalf("violation: %v > %v", eps, budget)
	}
	if eps < budget/4 {
		t.Errorf("audit %v is far below the certificate %v; expected the worst-case pair to be reasonably tight", eps, budget)
	}
}

func TestLambdaEpsilonConversions(t *testing.T) {
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, 4)
	n := 200
	eps := 0.5
	lambda := LambdaForEpsilon(eps, loss, n)
	if !mathx.AlmostEqual(lambda, eps*float64(n)/8, 1e-12) {
		t.Errorf("lambda = %v", lambda)
	}
	back := EpsilonForLambda(lambda, loss, n)
	if !mathx.AlmostEqual(back, eps, 1e-12) {
		t.Errorf("roundtrip = %v", back)
	}
	// Estimator built with this λ must certify exactly ε.
	grid := learn.NewGrid(-1, 1, 1, 5)
	est, err := New(loss, grid.Thetas(), nil, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(est.Guarantee(n).Epsilon, eps, 1e-12) {
		t.Errorf("certified = %v", est.Guarantee(n).Epsilon)
	}
}

func TestConversionPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { LambdaForEpsilon(0, learn.ZeroOneLoss{}, 10) },
		func() { LambdaForEpsilon(1, learn.SquaredLoss{}, 10) }, // unbounded
		func() { EpsilonForLambda(0, learn.ZeroOneLoss{}, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPosteriorMeanRiskAndTheta(t *testing.T) {
	est, d := testEstimator(t, 10)
	risks := est.Risks(d)
	pm := est.PosteriorMeanRisk(d)
	lo, hi := mathx.MinMax(risks)
	if pm < lo || pm > hi {
		t.Errorf("posterior mean risk %v outside [%v, %v]", pm, lo, hi)
	}
	// Posterior-mean theta should lean positive for positively-correlated
	// data at a decent temperature.
	mean := est.PosteriorMeanTheta(d)
	if mean[0] <= 0 {
		t.Errorf("posterior mean theta = %v", mean)
	}
	// Stats must agree with a direct computation.
	st, err := est.Stats(d)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(st.ExpEmpRisk, pm, 1e-12) {
		t.Errorf("Stats risk %v vs PosteriorMeanRisk %v", st.ExpEmpRisk, pm)
	}
	if st.KL < 0 {
		t.Error("KL must be non-negative")
	}
}

func TestGibbsWithNonUniformPrior(t *testing.T) {
	grid := learn.NewGrid(-2, 2, 1, 9)
	prior := grid.GaussianLogPrior(0.5)
	est, err := New(learn.ZeroOneLoss{}, grid.Thetas(), prior, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(11)
	d := dataset.LogisticModel{Weights: []float64{1}}.Generate(20, g)
	post := est.LogPosterior(d)
	// At λ→0 the posterior equals the prior.
	for i := range post {
		if !mathx.AlmostEqual(post[i], prior[i], 1e-6) {
			t.Fatalf("tiny-λ posterior should be the prior: %v vs %v", post[i], prior[i])
		}
	}
}

func TestMHSamplerGaussianTarget(t *testing.T) {
	// Sample N(3, 2²) and check moments.
	s := &MHSampler{
		LogTarget: func(x []float64) float64 {
			d := x[0] - 3
			return -d * d / 8
		},
		Step: 2.5,
	}
	g := rng.New(13)
	samples, rate, err := s.Run([]float64{0}, 2000, 30000, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0.1 || rate >= 0.9 {
		t.Errorf("acceptance rate %v out of healthy range", rate)
	}
	var w mathx.Welford
	for _, x := range samples {
		w.Add(x[0])
	}
	if math.Abs(w.Mean()-3) > 0.1 {
		t.Errorf("MH mean = %v", w.Mean())
	}
	if math.Abs(w.Variance()-4)/4 > 0.15 {
		t.Errorf("MH variance = %v", w.Variance())
	}
}

func TestMHSamplerValidation(t *testing.T) {
	s := &MHSampler{Step: 1}
	if _, _, err := s.Run([]float64{0}, 0, 10, 1, rng.New(1)); err != ErrBadSampler {
		t.Error("nil target")
	}
	s2 := &MHSampler{LogTarget: func([]float64) float64 { return 0 }, Step: 0}
	if _, _, err := s2.Run([]float64{0}, 0, 10, 1, rng.New(1)); err != ErrBadSampler {
		t.Error("zero step")
	}
	s3 := &MHSampler{LogTarget: func([]float64) float64 { return math.NaN() }, Step: 1}
	if _, _, err := s3.Run([]float64{0}, 0, 10, 1, rng.New(1)); err == nil {
		t.Error("NaN target at start")
	}
}

func TestContinuousGibbsConcentratesOnERM(t *testing.T) {
	// Continuous Gibbs posterior over ridge risk with large λ should
	// concentrate near the least-squares solution.
	g := rng.New(17)
	model := dataset.LinearModel{Weights: []float64{1.2}, Noise: 0.1}
	d := model.Generate(200, g)
	loss := learn.NewClippedLoss(learn.SquaredLoss{}, 9)
	target := ContinuousTarget(loss, d, 5000, BoxLogPrior(-3, 3))
	s := &MHSampler{LogTarget: target, Step: 0.2}
	samples, _, err := s.Run([]float64{0}, 3000, 5000, 2, g)
	if err != nil {
		t.Fatal(err)
	}
	var w mathx.Welford
	for _, x := range samples {
		w.Add(x[0])
	}
	if math.Abs(w.Mean()-1.2) > 0.1 {
		t.Errorf("continuous Gibbs mean = %v, want ≈ 1.2", w.Mean())
	}
}

func TestBoxLogPrior(t *testing.T) {
	p := BoxLogPrior(-1, 1)
	if p([]float64{0, 0.5}) != 0 {
		t.Error("inside box")
	}
	if !math.IsInf(p([]float64{0, 2}), -1) {
		t.Error("outside box")
	}
}

func TestGaussianLogPriorShape(t *testing.T) {
	p := GaussianLogPrior(2)
	if p([]float64{0}) != 0 {
		t.Error("peak at origin")
	}
	if !mathx.AlmostEqual(p([]float64{2}), -0.5, 1e-12) {
		t.Errorf("at sigma: %v", p([]float64{2}))
	}
}

func TestMonotoneTradeoffInLambda(t *testing.T) {
	// Larger λ (weaker privacy) must give lower posterior-expected
	// empirical risk — the tradeoff of Section 4.
	_, d := testEstimator(t, 1)
	grid := learn.NewGrid(-2, 2, 1, 17)
	var prev float64 = math.Inf(1)
	for _, lambda := range []float64{0.5, 2, 8, 32, 128} {
		est, err := New(learn.ZeroOneLoss{}, grid.Thetas(), nil, lambda)
		if err != nil {
			t.Fatal(err)
		}
		risk := est.PosteriorMeanRisk(d)
		if risk > prev+1e-9 {
			t.Errorf("risk increased with λ: %v > %v at λ=%v", risk, prev, lambda)
		}
		prev = risk
	}
}

func TestGibbsUtilityBound(t *testing.T) {
	// Sampled empirical risk must beat ERM + UtilityBound(β) with
	// frequency at least 1−β.
	est, d := testEstimator(t, 25)
	g := rng.New(101)
	risks := est.Risks(d)
	best := risks[mathx.ArgMin(risks)]
	beta := 0.1
	bound := est.UtilityBound(beta)
	if bound <= 0 {
		t.Fatalf("bound = %v", bound)
	}
	trials := 5000
	bad := 0
	for i := 0; i < trials; i++ {
		if risks[est.Sample(d, g)] > best+bound {
			bad++
		}
	}
	if frac := float64(bad) / float64(trials); frac > beta {
		t.Errorf("utility bound violated with frequency %v > beta %v", frac, beta)
	}
	defer func() {
		if recover() == nil {
			t.Error("beta out of range should panic")
		}
	}()
	est.UtilityBound(0)
}
