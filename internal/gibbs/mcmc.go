package gibbs

import (
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/learn"
	"repro/internal/rng"
)

// MHSampler is a random-walk Metropolis–Hastings sampler for continuous
// targets, used to sample the Gibbs posterior over a continuous predictor
// space Θ (the computationally-hard case McSherry & Talwar acknowledge:
// the exponential mechanism is "not always computationally efficient";
// MCMC is the standard workaround).
type MHSampler struct {
	// LogTarget is the unnormalized log-density.
	LogTarget func([]float64) float64
	// Step is the isotropic Gaussian proposal standard deviation.
	Step float64
}

// ErrBadSampler is returned for invalid sampler configuration.
var ErrBadSampler = errors.New("gibbs: invalid sampler configuration")

// Run draws samples from the target: it burns in burnin steps from x0,
// then records every thin-th state until count samples are collected.
// It returns the samples and the overall acceptance rate.
func (s *MHSampler) Run(x0 []float64, burnin, count, thin int, g *rng.RNG) ([][]float64, float64, error) {
	if s.LogTarget == nil || s.Step <= 0 || count <= 0 || thin <= 0 || burnin < 0 {
		return nil, 0, ErrBadSampler
	}
	x := append([]float64(nil), x0...)
	logp := s.LogTarget(x)
	if math.IsNaN(logp) {
		return nil, 0, errors.New("gibbs: log-target is NaN at the initial point")
	}
	samples := make([][]float64, 0, count)
	accepted, proposed := 0, 0
	prop := make([]float64, len(x))
	total := burnin + count*thin
	for step := 0; step < total; step++ {
		for j := range prop {
			prop[j] = x[j] + g.Normal(0, s.Step)
		}
		lp := s.LogTarget(prop)
		proposed++
		//dplint:ignore expdomain bounded argument: the exp branch runs only when lp < logp, so exp stays in (0,1)
		if lp >= logp || g.Float64() < math.Exp(lp-logp) {
			copy(x, prop)
			logp = lp
			accepted++
		}
		if step >= burnin && (step-burnin)%thin == thin-1 {
			samples = append(samples, append([]float64(nil), x...))
		}
	}
	return samples, float64(accepted) / float64(proposed), nil
}

// ContinuousTarget returns the unnormalized Gibbs log-density over a
// continuous Θ: logPrior(θ) − λ·R̂_Ẑ(θ). logPrior may be nil for an
// improper flat prior.
func ContinuousTarget(loss learn.Loss, d *dataset.Dataset, lambda float64, logPrior func([]float64) float64) func([]float64) float64 {
	if lambda <= 0 {
		panic("gibbs: ContinuousTarget requires lambda > 0")
	}
	return func(theta []float64) float64 {
		v := -lambda * learn.EmpiricalRisk(loss, theta, d)
		if logPrior != nil {
			v += logPrior(theta)
		}
		return v
	}
}

// GaussianLogPrior returns the (unnormalized) log-density of an isotropic
// Gaussian prior with standard deviation sigma: −‖θ‖²/(2σ²).
func GaussianLogPrior(sigma float64) func([]float64) float64 {
	if sigma <= 0 {
		panic("gibbs: GaussianLogPrior requires sigma > 0")
	}
	return func(theta []float64) float64 {
		var s float64
		for _, v := range theta {
			s += v * v
		}
		return -s / (2 * sigma * sigma)
	}
}

// BoxLogPrior returns the log-density of the uniform prior on the box
// [lo, hi]^dim: 0 inside, −Inf outside.
func BoxLogPrior(lo, hi float64) func([]float64) float64 {
	if hi <= lo {
		panic("gibbs: BoxLogPrior requires hi > lo")
	}
	return func(theta []float64) float64 {
		for _, v := range theta {
			if v < lo || v > hi {
				return math.Inf(-1)
			}
		}
		return 0
	}
}
