package infotheory

// Error-path and edge-case tests filling the branches the main suites
// don't reach: length mismatches, invalid distributions, and degenerate
// inputs across every public function.

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestKLErrorPaths(t *testing.T) {
	if _, err := KL([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch")
	}
	if _, err := KL([]float64{-1, 2}, []float64{0.5, 0.5}); err != ErrInvalidDistribution {
		t.Error("invalid p")
	}
	if _, err := KL([]float64{0.5, 0.5}, []float64{-1, 2}); err != ErrInvalidDistribution {
		t.Error("invalid q")
	}
	if _, err := KLAllowInf([]float64{1}, []float64{1, 0}); err == nil {
		t.Error("KLAllowInf length mismatch must still error")
	}
}

func TestKLLogSpaceErrorPaths(t *testing.T) {
	if _, err := KLLogSpace([]float64{0}, []float64{0, 0}); err == nil {
		t.Error("length mismatch")
	}
	allInf := []float64{math.Inf(-1), math.Inf(-1)}
	if _, err := KLLogSpace(allInf, []float64{0, 0}); err != ErrInvalidDistribution {
		t.Error("degenerate p")
	}
	if _, err := KLLogSpace([]float64{0, 0}, allInf); err != ErrInvalidDistribution {
		t.Error("degenerate q")
	}
}

func TestJSErrorPaths(t *testing.T) {
	if _, err := JS([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch")
	}
	if _, err := JS([]float64{-1, 1}, []float64{0.5, 0.5}); err != ErrInvalidDistribution {
		t.Error("invalid p")
	}
	if _, err := JS([]float64{0.5, 0.5}, []float64{0, 0}); err != ErrInvalidDistribution {
		t.Error("invalid q")
	}
	// JS is bounded by ln 2.
	d, err := JS([]float64{0.9, 0.1}, []float64{0.1, 0.9})
	if err != nil || d > math.Ln2+1e-12 {
		t.Errorf("JS = %v, %v", d, err)
	}
}

func TestTotalVariationErrorPaths(t *testing.T) {
	if _, err := TotalVariation([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch")
	}
	if _, err := TotalVariation(nil, nil); err == nil {
		t.Error("empty")
	}
	if _, err := TotalVariation([]float64{0.5, 0.5}, []float64{math.NaN(), 1}); err != ErrInvalidDistribution {
		t.Error("NaN entry")
	}
}

func TestEntropyNaN(t *testing.T) {
	if _, err := Entropy([]float64{math.NaN(), 0.5}); err != ErrInvalidDistribution {
		t.Error("NaN entry must be rejected")
	}
}

func TestConditionalEntropyWithEmptyRow(t *testing.T) {
	// A joint with one all-zero row exercises the px == 0 skip.
	j, err := NewJoint([][]float64{
		{0.5, 0.5},
		{0, 0},
		{0.0, 0.0},
	})
	if err != nil {
		// A zero row is fine as long as total mass is positive.
		t.Fatal(err)
	}
	h := j.ConditionalEntropyYGivenX()
	if !mathx.AlmostEqual(h, math.Ln2, 1e-12) {
		t.Errorf("H(Y|X) = %v", h)
	}
}

func TestJointFromChannelErrorPaths(t *testing.T) {
	if _, err := JointFromChannel([]float64{0, 0}, [][]float64{{1}, {1}}); err != ErrInvalidDistribution {
		t.Error("invalid input distribution")
	}
	if _, err := JointFromChannel([]float64{0.5, 0.5}, [][]float64{{1}, {0, 0}}); err == nil {
		t.Error("invalid channel row")
	}
}

func TestBlahutArimotoErrorPaths(t *testing.T) {
	if _, _, err := BlahutArimoto(nil, 1e-9, 100); err != ErrInvalidDistribution {
		t.Error("empty channel")
	}
	if _, _, err := BlahutArimoto([][]float64{{1, 0}, {0}}, 1e-9, 100); err == nil {
		t.Error("ragged channel")
	}
	if _, _, err := BlahutArimoto([][]float64{{0, 0}}, 1e-9, 100); err == nil {
		t.Error("zero row")
	}
	// maxIter exhaustion path still returns a valid estimate.
	w := [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	c, px, err := BlahutArimoto(w, 0, 1) // tol 0 forces the fallback
	if err != nil {
		t.Fatal(err)
	}
	if c < 0 || c > math.Ln2+1e-9 || len(px) != 2 {
		t.Errorf("fallback capacity = %v, px = %v", c, px)
	}
}

func TestRenyiErrorPaths(t *testing.T) {
	if _, err := RenyiDivergence([]float64{0, 0}, []float64{1}, 2); err == nil {
		t.Error("length mismatch")
	}
	if _, err := RenyiDivergence([]float64{0, 0}, []float64{0.5, 0.5}, 2); err != ErrInvalidDistribution {
		t.Error("invalid p")
	}
	if _, err := RenyiDivergence([]float64{0.5, 0.5}, []float64{0, 0}, 2); err != ErrInvalidDistribution {
		t.Error("invalid q")
	}
	if _, err := RenyiDivergence([]float64{1}, []float64{1}, math.Inf(1)); err == nil {
		t.Error("alpha = Inf must error (use MaxDivergence)")
	}
	// α < 1 with partial overlap: the zero-q terms drop.
	d, err := RenyiDivergence([]float64{0.5, 0.5}, []float64{1, 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 1) || math.IsNaN(d) {
		t.Errorf("alpha<1 partial overlap = %v", d)
	}
}

func TestMaxDivergenceErrorPaths(t *testing.T) {
	if _, err := MaxDivergence([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch")
	}
	if _, err := MaxDivergence([]float64{-1, 1}, []float64{0.5, 0.5}); err != ErrInvalidDistribution {
		t.Error("invalid p")
	}
	if _, err := MaxDivergence([]float64{0.5, 0.5}, []float64{0, 0}); err != ErrInvalidDistribution {
		t.Error("invalid q")
	}
	// Zero-mass p coordinates are skipped.
	d, err := MaxDivergence([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil || !mathx.AlmostEqual(d, math.Ln2, 1e-12) {
		t.Errorf("MaxDivergence = %v, %v", d, err)
	}
}

func TestPosteriorVulnerabilityErrorPaths(t *testing.T) {
	if _, err := PosteriorVulnerability([]float64{0, 0}, nil); err != ErrInvalidDistribution {
		t.Error("invalid prior")
	}
	if _, err := PosteriorVulnerability([]float64{0.5, 0.5}, [][]float64{{1}}); err == nil {
		t.Error("row count mismatch")
	}
	if _, err := PosteriorVulnerability([]float64{0.5, 0.5}, [][]float64{{1, 0}, {1}}); err == nil {
		t.Error("ragged channel")
	}
	if _, err := PosteriorVulnerability([]float64{0.5, 0.5}, [][]float64{{1}, {0}}); err == nil {
		t.Error("zero row")
	}
}

func TestMinEntropyLeakageErrorPaths(t *testing.T) {
	if _, err := MinEntropyLeakage([]float64{0, 0}, [][]float64{{1}, {1}}); err != ErrInvalidDistribution {
		t.Error("invalid prior")
	}
	if _, err := MinEntropyLeakage([]float64{0.5, 0.5}, [][]float64{{1}}); err == nil {
		t.Error("channel mismatch")
	}
	if _, err := MinEntropyCapacity([][]float64{{1, 0}, {1}}); err == nil {
		t.Error("ragged capacity input")
	}
	if _, err := MinEntropyCapacity([][]float64{{0, 0}}); err == nil {
		t.Error("zero row capacity")
	}
}
