// Package infotheory implements the discrete information-theoretic
// quantities that Section 4 of the paper is built on: Shannon entropy,
// Kullback–Leibler divergence, mutual information of joint distributions,
// conditional entropy, and channel capacity via the Blahut–Arimoto
// algorithm. It also provides plug-in and Miller–Madow entropy estimators
// for sampled data.
//
// All quantities are measured in nats unless a function name says Bits.
// Distributions are represented as probability vectors; functions
// tolerate small normalization error (renormalizing internally) but
// reject negative entries.
package infotheory

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/parallel"
)

// ErrInvalidDistribution is returned when a probability vector contains
// negative entries or has zero total mass.
var ErrInvalidDistribution = errors.New("infotheory: invalid probability distribution")

// ErrNotAbsolutelyContinuous is returned by KL when p places mass where q
// has none (the divergence is +Inf; callers that want the infinite value
// can use KLAllowInf).
var ErrNotAbsolutelyContinuous = errors.New("infotheory: p is not absolutely continuous w.r.t. q")

// Nats2Bits converts nats to bits.
func Nats2Bits(x float64) float64 { return x / math.Ln2 }

// normalize validates and renormalizes a probability vector.
func normalize(p []float64) ([]float64, error) {
	if len(p) == 0 {
		return nil, ErrInvalidDistribution
	}
	var total float64
	for _, v := range p {
		if v < 0 || math.IsNaN(v) {
			return nil, ErrInvalidDistribution
		}
		total += v
	}
	if total <= 0 {
		return nil, ErrInvalidDistribution
	}
	out := make([]float64, len(p))
	for i, v := range p {
		out[i] = v / total
	}
	return out, nil
}

// Entropy returns the Shannon entropy H(p) = −Σ p log p in nats.
func Entropy(p []float64) (float64, error) {
	q, err := normalize(p)
	if err != nil {
		return 0, err
	}
	var h float64
	for _, v := range q {
		h -= mathx.XLogX(v)
	}
	if h < 0 { // guard tiny negative rounding
		h = 0
	}
	return h, nil
}

// EntropyBits returns H(p) in bits.
func EntropyBits(p []float64) (float64, error) {
	h, err := Entropy(p)
	return Nats2Bits(h), err
}

// KL returns the Kullback–Leibler divergence D(p‖q) in nats. It returns
// ErrNotAbsolutelyContinuous if p has mass where q does not.
func KL(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: KL length mismatch %d vs %d", len(p), len(q))
	}
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	qn, err := normalize(q)
	if err != nil {
		return 0, err
	}
	var d float64
	for i := range pn {
		if pn[i] == 0 { //dplint:ignore floateq discrete support test: exactly-zero mass is outside supp(P) by construction
			continue
		}
		if qn[i] == 0 { //dplint:ignore floateq absolute-continuity test: P must place no mass where Q has exactly none
			return 0, ErrNotAbsolutelyContinuous
		}
		d += pn[i] * math.Log(pn[i]/qn[i])
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// KLAllowInf behaves like KL but returns +Inf instead of an error when p
// is not absolutely continuous with respect to q.
func KLAllowInf(p, q []float64) (float64, error) {
	d, err := KL(p, q)
	if err == ErrNotAbsolutelyContinuous {
		return math.Inf(1), nil
	}
	return d, err
}

// KLLogSpace returns D(p‖q) where both arguments are given as log-mass
// vectors (not necessarily normalized). Entries of -Inf denote zero mass.
func KLLogSpace(logP, logQ []float64) (float64, error) {
	if len(logP) != len(logQ) {
		return 0, fmt.Errorf("infotheory: KLLogSpace length mismatch %d vs %d", len(logP), len(logQ))
	}
	pNorm, pZ := mathx.LogNormalize(logP)
	if math.IsInf(pZ, -1) {
		return 0, ErrInvalidDistribution
	}
	qNorm, qZ := mathx.LogNormalize(logQ)
	if math.IsInf(qZ, -1) {
		return 0, ErrInvalidDistribution
	}
	var d float64
	for i := range pNorm {
		if math.IsInf(pNorm[i], -1) {
			continue
		}
		if math.IsInf(qNorm[i], -1) {
			return 0, ErrNotAbsolutelyContinuous
		}
		d += math.Exp(pNorm[i]) * (pNorm[i] - qNorm[i])
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// JS returns the Jensen–Shannon divergence JS(p, q) in nats: the average
// KL to the midpoint mixture. It is always finite and symmetric.
func JS(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: JS length mismatch %d vs %d", len(p), len(q))
	}
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	qn, err := normalize(q)
	if err != nil {
		return 0, err
	}
	m := make([]float64, len(pn))
	for i := range m {
		m[i] = 0.5 * (pn[i] + qn[i])
	}
	dp, err := KLAllowInf(pn, m)
	if err != nil {
		return 0, err
	}
	dq, err := KLAllowInf(qn, m)
	if err != nil {
		return 0, err
	}
	return 0.5*dp + 0.5*dq, nil
}

// TotalVariation returns the total-variation distance (1/2)·Σ|pᵢ−qᵢ|
// between two distributions.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: TotalVariation length mismatch %d vs %d", len(p), len(q))
	}
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	qn, err := normalize(q)
	if err != nil {
		return 0, err
	}
	var d float64
	for i := range pn {
		d += math.Abs(pn[i] - qn[i])
	}
	return d / 2, nil
}

// Joint is a joint probability table over a finite product space X×Y,
// stored row-major: P[i][j] = P(X=i, Y=j).
type Joint struct {
	P [][]float64
}

// NewJoint validates and normalizes a joint table. Rows must share a
// length; entries must be non-negative with positive total mass.
func NewJoint(table [][]float64) (*Joint, error) {
	if len(table) == 0 || len(table[0]) == 0 {
		return nil, ErrInvalidDistribution
	}
	cols := len(table[0])
	var total float64
	for _, row := range table {
		if len(row) != cols {
			return nil, fmt.Errorf("infotheory: ragged joint table")
		}
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return nil, ErrInvalidDistribution
			}
			total += v
		}
	}
	if total <= 0 {
		return nil, ErrInvalidDistribution
	}
	p := make([][]float64, len(table))
	for i, row := range table {
		p[i] = make([]float64, cols)
		for j, v := range row {
			p[i][j] = v / total
		}
	}
	return &Joint{P: p}, nil
}

// MarginalX returns the marginal distribution of X (rows).
func (j *Joint) MarginalX() []float64 {
	out := make([]float64, len(j.P))
	for i, row := range j.P {
		out[i] = mathx.SumSlice(row)
	}
	return out
}

// MarginalY returns the marginal distribution of Y (columns).
func (j *Joint) MarginalY() []float64 {
	out := make([]float64, len(j.P[0]))
	for _, row := range j.P {
		for k, v := range row {
			out[k] += v
		}
	}
	return out
}

// MutualInformation returns I(X;Y) = Σᵢⱼ p(i,j)·log(p(i,j)/(p(i)p(j)))
// in nats. The result is clamped at zero against rounding.
func (j *Joint) MutualInformation() float64 {
	px := j.MarginalX()
	py := j.MarginalY()
	var mi float64
	for i, row := range j.P {
		for k, v := range row {
			// mathx.XLogY carries the 0·log 0 convention, avoiding a
			// float equality test on the joint mass.
			mi += mathx.XLogY(v, v/(px[i]*py[k]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// ConditionalEntropyYGivenX returns H(Y|X) in nats.
func (j *Joint) ConditionalEntropyYGivenX() float64 {
	var h float64
	for _, row := range j.P {
		px := mathx.SumSlice(row)
		if px == 0 { //dplint:ignore floateq zero-mass row: conditioning on an impossible event contributes nothing
			continue
		}
		for _, v := range row {
			h -= mathx.XLogY(v, v/px)
		}
	}
	if h < 0 {
		h = 0
	}
	return h
}

// JointFromChannel builds the joint distribution induced by an input
// distribution px and a channel matrix W, where W[i][j] = P(Y=j | X=i).
// Each row of W must itself be a distribution over Y.
func JointFromChannel(px []float64, w [][]float64) (*Joint, error) {
	pn, err := normalize(px)
	if err != nil {
		return nil, err
	}
	if len(w) != len(pn) {
		return nil, fmt.Errorf("infotheory: channel has %d rows for %d inputs", len(w), len(pn))
	}
	table := make([][]float64, len(pn))
	for i, row := range w {
		rn, err := normalize(row)
		if err != nil {
			return nil, fmt.Errorf("infotheory: channel row %d: %w", i, err)
		}
		table[i] = make([]float64, len(rn))
		for k, v := range rn {
			table[i][k] = pn[i] * v
		}
	}
	return NewJoint(table)
}

// PluginEntropy estimates H from integer counts by the plug-in (maximum
// likelihood) estimator, in nats.
func PluginEntropy(counts []int) (float64, error) {
	p := make([]float64, len(counts))
	for i, c := range counts {
		if c < 0 {
			return 0, ErrInvalidDistribution
		}
		p[i] = float64(c)
	}
	return Entropy(p)
}

// MillerMadowEntropy estimates H from counts with the Miller–Madow bias
// correction: Ĥ_MM = Ĥ_plugin + (K−1)/(2n) where K is the number of
// non-empty bins, in nats.
func MillerMadowEntropy(counts []int) (float64, error) {
	h, err := PluginEntropy(counts)
	if err != nil {
		return 0, err
	}
	var n, k int
	for _, c := range counts {
		n += c
		if c > 0 {
			k++
		}
	}
	if n == 0 {
		return 0, ErrInvalidDistribution
	}
	return h + float64(k-1)/(2*float64(n)), nil
}

// MutualInformationFromCounts estimates I(X;Y) from a joint count table
// by the plug-in estimator, in nats.
func MutualInformationFromCounts(counts [][]int) (float64, error) {
	table := make([][]float64, len(counts))
	for i, row := range counts {
		table[i] = make([]float64, len(row))
		for j, c := range row {
			if c < 0 {
				return 0, ErrInvalidDistribution
			}
			table[i][j] = float64(c)
		}
	}
	j, err := NewJoint(table)
	if err != nil {
		return 0, err
	}
	return j.MutualInformation(), nil
}

// BlahutArimoto computes the capacity (in nats) of the discrete memoryless
// channel W (rows: inputs, W[i][j] = P(Y=j|X=i)) together with the
// capacity-achieving input distribution. Iterations stop when successive
// capacity bounds differ by less than tol or after maxIter iterations.
func BlahutArimoto(w [][]float64, tol float64, maxIter int) (capacity float64, px []float64, err error) {
	return BlahutArimotoOpts(w, tol, maxIter, parallel.Options{Workers: 1})
}

// BlahutArimotoOpts is BlahutArimoto with the per-iteration O(|X|·|Y|)
// sums fanned out under opts. The output law is accumulated per output
// symbol (inputs walked in index order) and the divergences d_i are
// element-wise, so the iterate sequence — and hence the capacity — is
// bit-identical for every worker count.
func BlahutArimotoOpts(w [][]float64, tol float64, maxIter int, opts parallel.Options) (capacity float64, px []float64, err error) {
	return BlahutArimotoCtx(context.Background(), w, tol, maxIter, opts)
}

// BlahutArimotoCtx is BlahutArimotoOpts with cancellation: the context
// is checked once per iteration (and inside the fan-out at chunk-claim
// boundaries), so a capacity computation over a huge channel can be
// interrupted between iterations. The iterate sequence is unchanged, so
// a run that converges is bit-identical to the non-ctx variant.
func BlahutArimotoCtx(ctx context.Context, w [][]float64, tol float64, maxIter int, opts parallel.Options) (capacity float64, px []float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nIn := len(w)
	if nIn == 0 {
		return 0, nil, ErrInvalidDistribution
	}
	rows := make([][]float64, nIn)
	for i, row := range w {
		rn, err := normalize(row)
		if err != nil {
			return 0, nil, fmt.Errorf("infotheory: channel row %d: %w", i, err)
		}
		rows[i] = rn
	}
	nOut := len(rows[0])
	for i, r := range rows {
		if len(r) != nOut {
			return 0, nil, fmt.Errorf("infotheory: ragged channel at row %d", i)
		}
	}
	px = make([]float64, nIn)
	for i := range px {
		px[i] = 1 / float64(nIn)
	}
	py := make([]float64, nOut)
	d := make([]float64, nIn)
	for iter := 0; iter < maxIter; iter++ {
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, fmt.Errorf("infotheory: Blahut–Arimoto canceled at iteration %d: %w", iter, cerr)
		}
		// Output distribution under current input: one column sum per
		// output symbol, inputs in index order.
		parallel.ForGrain(nOut, 32, opts, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				var s float64
				for i, r := range rows {
					if px[i] == 0 { //dplint:ignore floateq zero-mass input symbol contributes nothing to the output law
						continue
					}
					s += px[i] * r[j]
				}
				py[j] = s
			}
		})
		// d_i = D(W_i ‖ py): element-wise over inputs.
		parallel.ForGrain(nIn, 32, opts, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var di float64
				for j, v := range rows[i] {
					di += mathx.XLogY(v, v/py[j])
				}
				d[i] = di
			}
		})
		// Capacity bounds from avg and max (cheap, serial).
		lower, upper := 0.0, math.Inf(-1)
		for i, di := range d {
			lower += px[i] * di
			if di > upper {
				upper = di
			}
		}
		if upper-lower < tol {
			return lower, px, nil
		}
		// Multiplicative update px_i ∝ px_i · exp(d_i).
		var z float64
		for i := range px {
			px[i] *= math.Exp(d[i])
			z += px[i]
		}
		for i := range px {
			px[i] /= z
		}
	}
	// Return the lower bound after maxIter without error: BA converges
	// monotonically, so this is a valid capacity estimate.
	j, err := JointFromChannel(px, rows)
	if err != nil {
		return 0, nil, err
	}
	return j.MutualInformation(), px, nil
}
