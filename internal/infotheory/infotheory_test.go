package infotheory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestEntropyKnown(t *testing.T) {
	h, err := Entropy([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(h, math.Ln2, 1e-12) {
		t.Errorf("H(fair coin) = %v, want ln2", h)
	}
	hb, err := EntropyBits([]float64{0.5, 0.5})
	if err != nil || !mathx.AlmostEqual(hb, 1, 1e-12) {
		t.Errorf("H(fair coin) = %v bits, want 1", hb)
	}
	// Deterministic distribution has zero entropy.
	h0, err := Entropy([]float64{1, 0, 0})
	if err != nil || h0 != 0 {
		t.Errorf("H(deterministic) = %v", h0)
	}
	// Uniform over k has entropy log k.
	h4, _ := Entropy([]float64{1, 1, 1, 1})
	if !mathx.AlmostEqual(h4, math.Log(4), 1e-12) {
		t.Errorf("H(uniform 4) = %v", h4)
	}
}

func TestEntropyInvalid(t *testing.T) {
	if _, err := Entropy(nil); err != ErrInvalidDistribution {
		t.Error("empty")
	}
	if _, err := Entropy([]float64{-0.1, 1.1}); err != ErrInvalidDistribution {
		t.Error("negative")
	}
	if _, err := Entropy([]float64{0, 0}); err != ErrInvalidDistribution {
		t.Error("zero mass")
	}
}

func TestEntropyMaxAtUniformProperty(t *testing.T) {
	// Entropy of any distribution on k outcomes is at most log k.
	f := func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1, float64(d) + 1}
		h, err := Entropy(p)
		if err != nil {
			return false
		}
		return h <= math.Log(4)+1e-12 && h >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLKnownValue(t *testing.T) {
	p := []float64{0.75, 0.25}
	q := []float64{0.5, 0.5}
	want := 0.75*math.Log(1.5) + 0.25*math.Log(0.5)
	got, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("KL = %v, want %v", got, want)
	}
}

func TestKLProperties(t *testing.T) {
	// Self-divergence is zero; divergence is non-negative (Gibbs).
	f := func(a, b, c uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		q := []float64{float64(c) + 1, float64(a) + 1, float64(b) + 1}
		dpp, err1 := KL(p, p)
		dpq, err2 := KL(p, q)
		return err1 == nil && err2 == nil && mathx.AlmostEqual(dpp, 0, 1e-12) && dpq >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLAbsoluteContinuity(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{1, 0}
	if _, err := KL(p, q); err != ErrNotAbsolutelyContinuous {
		t.Errorf("expected ErrNotAbsolutelyContinuous, got %v", err)
	}
	inf, err := KLAllowInf(p, q)
	if err != nil || !math.IsInf(inf, 1) {
		t.Errorf("KLAllowInf = %v, %v", inf, err)
	}
	// Zero mass in p where q has none is fine.
	d, err := KL([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil || !mathx.AlmostEqual(d, math.Ln2, 1e-12) {
		t.Errorf("KL = %v, %v", d, err)
	}
}

func TestKLLogSpaceMatchesLinear(t *testing.T) {
	p := []float64{0.2, 0.3, 0.5}
	q := []float64{0.4, 0.4, 0.2}
	want, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	logP := make([]float64, 3)
	logQ := make([]float64, 3)
	for i := range p {
		logP[i] = math.Log(p[i]) - 300 // arbitrary unnormalized shift
		logQ[i] = math.Log(q[i]) + 200
	}
	got, err := KLLogSpace(logP, logQ)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(got, want, 1e-10) {
		t.Errorf("KLLogSpace = %v, want %v", got, want)
	}
	// -Inf handling
	if _, err := KLLogSpace([]float64{0, math.Inf(-1)}, []float64{math.Inf(-1), 0}); err != ErrNotAbsolutelyContinuous {
		t.Errorf("expected ErrNotAbsolutelyContinuous, got %v", err)
	}
}

func TestJSProperties(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	// JS of disjoint distributions is ln 2.
	d, err := JS(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(d, math.Ln2, 1e-12) {
		t.Errorf("JS(disjoint) = %v", d)
	}
	// Symmetry.
	a := []float64{0.3, 0.7}
	b := []float64{0.6, 0.4}
	d1, _ := JS(a, b)
	d2, _ := JS(b, a)
	if !mathx.AlmostEqual(d1, d2, 1e-12) {
		t.Error("JS not symmetric")
	}
	if d0, _ := JS(a, a); !mathx.AlmostEqual(d0, 0, 1e-12) {
		t.Error("JS self not zero")
	}
}

func TestTotalVariation(t *testing.T) {
	d, err := TotalVariation([]float64{1, 0}, []float64{0, 1})
	if err != nil || !mathx.AlmostEqual(d, 1, 1e-12) {
		t.Errorf("TV disjoint = %v", d)
	}
	d2, _ := TotalVariation([]float64{0.5, 0.5}, []float64{0.5, 0.5})
	if d2 != 0 {
		t.Errorf("TV self = %v", d2)
	}
}

func TestJointMarginalsAndMI(t *testing.T) {
	// Independent: I = 0.
	indep, err := NewJoint([][]float64{
		{0.25, 0.25},
		{0.25, 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mi := indep.MutualInformation(); !mathx.AlmostEqual(mi, 0, 1e-12) {
		t.Errorf("MI of independent = %v", mi)
	}
	// Perfectly correlated: I = ln 2.
	corr, err := NewJoint([][]float64{
		{0.5, 0},
		{0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mi := corr.MutualInformation(); !mathx.AlmostEqual(mi, math.Ln2, 1e-12) {
		t.Errorf("MI of correlated = %v", mi)
	}
	mx := corr.MarginalX()
	my := corr.MarginalY()
	for i := range mx {
		if !mathx.AlmostEqual(mx[i], 0.5, 1e-12) || !mathx.AlmostEqual(my[i], 0.5, 1e-12) {
			t.Error("marginals")
		}
	}
}

func TestMIChainIdentity(t *testing.T) {
	// I(X;Y) = H(Y) − H(Y|X) on a random joint table.
	g := rng.New(3)
	table := make([][]float64, 4)
	for i := range table {
		table[i] = make([]float64, 5)
		for j := range table[i] {
			table[i][j] = g.Float64()
		}
	}
	j, err := NewJoint(table)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := Entropy(j.MarginalY())
	if err != nil {
		t.Fatal(err)
	}
	lhs := j.MutualInformation()
	rhs := hy - j.ConditionalEntropyYGivenX()
	if !mathx.AlmostEqual(lhs, rhs, 1e-10) {
		t.Errorf("chain rule: I=%v, H(Y)-H(Y|X)=%v", lhs, rhs)
	}
}

func TestNewJointValidation(t *testing.T) {
	if _, err := NewJoint(nil); err == nil {
		t.Error("empty table")
	}
	if _, err := NewJoint([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged table")
	}
	if _, err := NewJoint([][]float64{{-1, 2}}); err != ErrInvalidDistribution {
		t.Error("negative entry")
	}
	if _, err := NewJoint([][]float64{{0, 0}}); err != ErrInvalidDistribution {
		t.Error("zero mass")
	}
}

func TestJointFromChannel(t *testing.T) {
	// Binary symmetric channel with crossover 0.1, uniform input.
	w := [][]float64{
		{0.9, 0.1},
		{0.1, 0.9},
	}
	j, err := JointFromChannel([]float64{0.5, 0.5}, w)
	if err != nil {
		t.Fatal(err)
	}
	// I(X;Y) = ln2 − H(0.1)
	hFlip := -(0.1*math.Log(0.1) + 0.9*math.Log(0.9))
	want := math.Ln2 - hFlip
	if got := j.MutualInformation(); !mathx.AlmostEqual(got, want, 1e-12) {
		t.Errorf("BSC MI = %v, want %v", got, want)
	}
	if _, err := JointFromChannel([]float64{1}, w); err == nil {
		t.Error("row count mismatch should error")
	}
}

func TestDataProcessingInequality(t *testing.T) {
	// Processing Y through a second channel cannot increase MI:
	// I(X; Z) <= I(X; Y) for Z = channel2(Y).
	g := rng.New(7)
	f := func(seed int64) bool {
		h := rng.New(seed)
		// Random input, random channels.
		px := []float64{h.Float64() + 0.1, h.Float64() + 0.1, h.Float64() + 0.1}
		w1 := make([][]float64, 3)
		w2 := make([][]float64, 4)
		for i := range w1 {
			w1[i] = []float64{h.Float64() + 0.01, h.Float64() + 0.01, h.Float64() + 0.01, h.Float64() + 0.01}
		}
		for i := range w2 {
			w2[i] = []float64{h.Float64() + 0.01, h.Float64() + 0.01}
		}
		// Normalize rows.
		for i := range w1 {
			s := mathx.SumSlice(w1[i])
			for j := range w1[i] {
				w1[i][j] /= s
			}
		}
		for i := range w2 {
			s := mathx.SumSlice(w2[i])
			for j := range w2[i] {
				w2[i][j] /= s
			}
		}
		// Composite channel w1∘w2.
		comp := make([][]float64, 3)
		for i := range comp {
			comp[i] = make([]float64, 2)
			for j := 0; j < 2; j++ {
				for k := 0; k < 4; k++ {
					comp[i][j] += w1[i][k] * w2[k][j]
				}
			}
		}
		j1, err1 := JointFromChannel(px, w1)
		j2, err2 := JointFromChannel(px, comp)
		if err1 != nil || err2 != nil {
			return false
		}
		return j2.MutualInformation() <= j1.MutualInformation()+1e-10
	}
	_ = g
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPluginAndMillerMadow(t *testing.T) {
	counts := []int{50, 50}
	h, err := PluginEntropy(counts)
	if err != nil || !mathx.AlmostEqual(h, math.Ln2, 1e-12) {
		t.Errorf("plugin = %v", h)
	}
	mm, err := MillerMadowEntropy(counts)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Ln2 + 1.0/200
	if !mathx.AlmostEqual(mm, want, 1e-12) {
		t.Errorf("MillerMadow = %v, want %v", mm, want)
	}
	if _, err := MillerMadowEntropy([]int{0, 0}); err != ErrInvalidDistribution {
		t.Error("zero counts")
	}
	if _, err := PluginEntropy([]int{-1}); err != ErrInvalidDistribution {
		t.Error("negative count")
	}
}

func TestMillerMadowReducesBias(t *testing.T) {
	// Sample from uniform over 8 outcomes with small n; plug-in is biased
	// down, Miller–Madow corrects toward log 8.
	g := rng.New(11)
	trueH := math.Log(8)
	var plugBias, mmBias mathx.Welford
	for rep := 0; rep < 300; rep++ {
		counts := make([]int, 8)
		for i := 0; i < 40; i++ {
			counts[g.Intn(8)]++
		}
		hp, _ := PluginEntropy(counts)
		hm, _ := MillerMadowEntropy(counts)
		plugBias.Add(hp - trueH)
		mmBias.Add(hm - trueH)
	}
	if math.Abs(mmBias.Mean()) >= math.Abs(plugBias.Mean()) {
		t.Errorf("Miller–Madow bias %v not smaller than plug-in bias %v", mmBias.Mean(), plugBias.Mean())
	}
}

func TestMutualInformationFromCounts(t *testing.T) {
	mi, err := MutualInformationFromCounts([][]int{
		{50, 0},
		{0, 50},
	})
	if err != nil || !mathx.AlmostEqual(mi, math.Ln2, 1e-12) {
		t.Errorf("MI from counts = %v", mi)
	}
	if _, err := MutualInformationFromCounts([][]int{{-1, 2}}); err != ErrInvalidDistribution {
		t.Error("negative counts")
	}
}

func TestBlahutArimotoBSC(t *testing.T) {
	// BSC capacity: C = ln2 − H(eps), achieved by uniform input.
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		w := [][]float64{
			{1 - eps, eps},
			{eps, 1 - eps},
		}
		c, px, err := BlahutArimoto(w, 1e-12, 10000)
		if err != nil {
			t.Fatal(err)
		}
		hEps := -(eps*math.Log(eps) + (1-eps)*math.Log(1-eps))
		want := math.Ln2 - hEps
		if !mathx.AlmostEqual(c, want, 1e-6) {
			t.Errorf("BSC(%v) capacity = %v, want %v", eps, c, want)
		}
		if !mathx.AlmostEqual(px[0], 0.5, 1e-4) {
			t.Errorf("BSC capacity input = %v, want uniform", px)
		}
	}
}

func TestBlahutArimotoBEC(t *testing.T) {
	// Binary erasure channel: C = (1−e)·ln2.
	e := 0.3
	w := [][]float64{
		{1 - e, e, 0},
		{0, e, 1 - e},
	}
	c, _, err := BlahutArimoto(w, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(c, (1-e)*math.Ln2, 1e-6) {
		t.Errorf("BEC capacity = %v, want %v", c, (1-e)*math.Ln2)
	}
}

func TestBlahutArimotoNoiselessChannel(t *testing.T) {
	// Identity channel over 4 symbols: capacity ln 4.
	w := [][]float64{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	c, _, err := BlahutArimoto(w, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(c, math.Log(4), 1e-6) {
		t.Errorf("identity capacity = %v", c)
	}
}

func TestBlahutArimotoCapacityDominatesMI(t *testing.T) {
	// Capacity must upper-bound MI under any particular input distribution.
	g := rng.New(13)
	w := make([][]float64, 3)
	for i := range w {
		w[i] = []float64{g.Float64() + 0.05, g.Float64() + 0.05, g.Float64() + 0.05}
	}
	c, _, err := BlahutArimoto(w, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		px := []float64{g.Float64() + 0.01, g.Float64() + 0.01, g.Float64() + 0.01}
		j, err := JointFromChannel(px, w)
		if err != nil {
			t.Fatal(err)
		}
		if j.MutualInformation() > c+1e-6 {
			t.Errorf("MI %v exceeds capacity %v", j.MutualInformation(), c)
		}
	}
}

func TestNats2Bits(t *testing.T) {
	if !mathx.AlmostEqual(Nats2Bits(math.Ln2), 1, 1e-12) {
		t.Error("Nats2Bits")
	}
}
