package infotheory

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// This file implements the quantitative-information-flow measures of
// Alvim et al. (FOSAD 2011, ICALP 2011) that the paper's Sections 1 and 5
// connect differential privacy to: Bayes vulnerability, min-entropy
// leakage, and the Rényi divergences that interpolate between them and
// the Shannon quantities.

// RenyiDivergence returns D_α(p‖q) in nats for α > 0, α ≠ 1:
//
//	D_α(p‖q) = 1/(α−1) · ln Σᵢ pᵢ^α · qᵢ^{1−α}
//
// α → 1 recovers KL (use KL for that case); α = ∞ is the max-divergence
// sup log(pᵢ/qᵢ) (use MaxDivergence). The connection to privacy: a
// mechanism is ε-DP iff the max-divergence between its output
// distributions on any two neighbors is at most ε, and Rényi-DP uses
// exactly D_α.
func RenyiDivergence(p, q []float64, alpha float64) (float64, error) {
	if alpha <= 0 || alpha == 1 || math.IsInf(alpha, 1) { //dplint:ignore floateq alpha=1 is the excluded KL limit; only the exact value is undefined here
		return 0, fmt.Errorf("infotheory: RenyiDivergence needs alpha in (0,1)∪(1,∞), got %v", alpha)
	}
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: RenyiDivergence length mismatch %d vs %d", len(p), len(q))
	}
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	qn, err := normalize(q)
	if err != nil {
		return 0, err
	}
	// Accumulate in log space: log Σ exp(α·ln p + (1−α)·ln q).
	terms := make([]float64, 0, len(pn))
	for i := range pn {
		switch {
		case pn[i] == 0 && alpha > 1: //dplint:ignore floateq discrete support test: exactly-zero mass makes the term identically zero
			continue // 0^α · q^{1-α} = 0
		case pn[i] == 0: //dplint:ignore floateq discrete support test: exactly-zero mass makes the term identically zero
			continue // α<1: p^α = 0
		case qn[i] == 0 && alpha > 1: //dplint:ignore floateq absolute-continuity test: p-mass against exactly-zero q diverges for alpha>1
			return math.Inf(1), nil // p>0 against q=0 blows up for α>1
		case qn[i] == 0: //dplint:ignore floateq discrete support test: exactly-zero q kills the term for alpha<1
			continue // α<1: q^{1−α} = 0 kills the term
		default:
			terms = append(terms, alpha*math.Log(pn[i])+(1-alpha)*math.Log(qn[i]))
		}
	}
	if len(terms) == 0 {
		return math.Inf(1), nil // disjoint supports
	}
	d := mathx.LogSumExp(terms) / (alpha - 1)
	if d < 0 && alpha > 1 {
		d = 0
	}
	return d, nil
}

// MaxDivergence returns D_∞(p‖q) = max over the support of p of
// ln(pᵢ/qᵢ), the quantity that defines ε-DP. It is +Inf if p has mass
// where q has none.
func MaxDivergence(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: MaxDivergence length mismatch %d vs %d", len(p), len(q))
	}
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	qn, err := normalize(q)
	if err != nil {
		return 0, err
	}
	d := math.Inf(-1)
	for i := range pn {
		if pn[i] == 0 { //dplint:ignore floateq discrete support test: exactly-zero mass is outside supp(p)
			continue
		}
		if qn[i] == 0 { //dplint:ignore floateq absolute-continuity test: p-mass where q has exactly none gives infinite max-divergence
			return math.Inf(1), nil
		}
		if v := math.Log(pn[i] / qn[i]); v > d {
			d = v
		}
	}
	if d < 0 {
		d = 0
	}
	return d, nil
}

// BayesVulnerability returns V(p) = maxᵢ pᵢ — the probability that an
// adversary guessing the secret in one try succeeds, under prior p.
func BayesVulnerability(p []float64) (float64, error) {
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	var v float64
	for _, x := range pn {
		if x > v {
			v = x
		}
	}
	return v, nil
}

// PosteriorVulnerability returns V(p, W) = Σⱼ maxᵢ pᵢ·W[i][j] — the
// adversary's one-try success probability after observing the channel
// output. W[i][j] = P(Y=j | X=i); rows are normalized internally.
func PosteriorVulnerability(p []float64, w [][]float64) (float64, error) {
	pn, err := normalize(p)
	if err != nil {
		return 0, err
	}
	if len(w) != len(pn) {
		return 0, fmt.Errorf("infotheory: channel has %d rows for %d inputs", len(w), len(pn))
	}
	rows := make([][]float64, len(w))
	var nOut int
	for i, r := range w {
		rn, err := normalize(r)
		if err != nil {
			return 0, fmt.Errorf("infotheory: channel row %d: %w", i, err)
		}
		if i == 0 {
			nOut = len(rn)
		} else if len(rn) != nOut {
			return 0, fmt.Errorf("infotheory: ragged channel at row %d", i)
		}
		rows[i] = rn
	}
	var v float64
	for j := 0; j < nOut; j++ {
		var best float64
		for i := range rows {
			if cand := pn[i] * rows[i][j]; cand > best {
				best = cand
			}
		}
		v += best
	}
	return v, nil
}

// MinEntropyLeakage returns the min-entropy leakage of channel W under
// prior p, in nats:
//
//	L(p, W) = ln( V(p, W) / V(p) )
//
// the log of the multiplicative increase in the adversary's one-try
// guessing success — Alvim et al.'s leakage measure.
func MinEntropyLeakage(p []float64, w [][]float64) (float64, error) {
	prior, err := BayesVulnerability(p)
	if err != nil {
		return 0, err
	}
	post, err := PosteriorVulnerability(p, w)
	if err != nil {
		return 0, err
	}
	l := math.Log(post / prior)
	if l < 0 {
		l = 0 // vulnerability cannot decrease; clamp rounding
	}
	return l, nil
}

// MinEntropyCapacity returns the min-entropy capacity of W: the maximum
// min-entropy leakage over priors, which for deterministic-free channels
// is achieved by the uniform prior and equals ln Σⱼ maxᵢ W[i][j]
// (Braun–Chatzikokolakis–Palamidessi).
func MinEntropyCapacity(w [][]float64) (float64, error) {
	if len(w) == 0 {
		return 0, ErrInvalidDistribution
	}
	rows := make([][]float64, len(w))
	var nOut int
	for i, r := range w {
		rn, err := normalize(r)
		if err != nil {
			return 0, fmt.Errorf("infotheory: channel row %d: %w", i, err)
		}
		if i == 0 {
			nOut = len(rn)
		} else if len(rn) != nOut {
			return 0, fmt.Errorf("infotheory: ragged channel at row %d", i)
		}
		rows[i] = rn
	}
	var sum float64
	for j := 0; j < nOut; j++ {
		var best float64
		for i := range rows {
			if rows[i][j] > best {
				best = rows[i][j]
			}
		}
		sum += best
	}
	l := math.Log(sum)
	if l < 0 {
		l = 0
	}
	return l, nil
}
