package infotheory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestRenyiDivergenceKnown(t *testing.T) {
	p := []float64{0.75, 0.25}
	q := []float64{0.5, 0.5}
	// α = 2: D_2 = ln Σ p²/q = ln(0.5625/0.5 + 0.0625/0.5) = ln 1.25
	got, err := RenyiDivergence(p, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(got, math.Log(1.25), 1e-12) {
		t.Errorf("D_2 = %v, want %v", got, math.Log(1.25))
	}
	// Self-divergence is zero for any α.
	for _, a := range []float64{0.5, 2, 10} {
		if d, err := RenyiDivergence(p, p, a); err != nil || !mathx.AlmostEqual(d, 0, 1e-12) {
			t.Errorf("D_%v(p,p) = %v, %v", a, d, err)
		}
	}
}

func TestRenyiMonotoneInAlpha(t *testing.T) {
	// D_α is nondecreasing in α, sandwiched between 0 and max-divergence.
	g := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		p := []float64{g.Float64() + 0.05, g.Float64() + 0.05, g.Float64() + 0.05}
		q := []float64{g.Float64() + 0.05, g.Float64() + 0.05, g.Float64() + 0.05}
		prev := 0.0
		for _, a := range []float64{0.5, 0.9, 1.5, 2, 4, 16} {
			d, err := RenyiDivergence(p, q, a)
			if err != nil {
				t.Fatal(err)
			}
			if d < prev-1e-9 {
				t.Fatalf("D_%v = %v < previous %v", a, d, prev)
			}
			prev = d
		}
		dMax, err := MaxDivergence(p, q)
		if err != nil {
			t.Fatal(err)
		}
		if prev > dMax+1e-9 {
			t.Fatalf("D_16 = %v exceeds D_inf = %v", prev, dMax)
		}
	}
}

func TestRenyiApproachesKL(t *testing.T) {
	p := []float64{0.7, 0.2, 0.1}
	q := []float64{0.3, 0.4, 0.3}
	kl, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	near1, err := RenyiDivergence(p, q, 1.0001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(near1-kl) > 1e-3 {
		t.Errorf("D_1.0001 = %v, KL = %v", near1, kl)
	}
}

func TestRenyiDisjointAndValidation(t *testing.T) {
	if d, err := RenyiDivergence([]float64{1, 0}, []float64{0, 1}, 2); err != nil || !math.IsInf(d, 1) {
		t.Errorf("disjoint D_2 = %v, %v", d, err)
	}
	if _, err := RenyiDivergence([]float64{1}, []float64{1}, 1); err == nil {
		t.Error("alpha=1 must error")
	}
	if _, err := RenyiDivergence([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("alpha=0 must error")
	}
	if _, err := RenyiDivergence([]float64{1}, []float64{1, 0}, 2); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestMaxDivergenceIsDPQuantity(t *testing.T) {
	// For two distributions with all ratios ≤ e^ε, MaxDivergence ≤ ε.
	eps := 0.5
	p := []float64{0.6, 0.4}
	q := []float64{0.6 * math.Exp(-eps), 1 - 0.6*math.Exp(-eps)}
	d, err := MaxDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(d, eps, 1e-12) {
		t.Errorf("MaxDivergence = %v, want %v", d, eps)
	}
	if d2, _ := MaxDivergence([]float64{0.5, 0.5}, []float64{1, 0}); !math.IsInf(d2, 1) {
		t.Error("unsupported mass must give +Inf")
	}
	if d3, _ := MaxDivergence(p, p); d3 != 0 {
		t.Error("self max-divergence must be 0")
	}
}

func TestBayesVulnerability(t *testing.T) {
	v, err := BayesVulnerability([]float64{0.2, 0.5, 0.3})
	if err != nil || v != 0.5 {
		t.Errorf("V = %v, %v", v, err)
	}
	if _, err := BayesVulnerability(nil); err == nil {
		t.Error("empty prior must error")
	}
}

func TestPosteriorVulnerabilityIdentityChannel(t *testing.T) {
	// Identity channel reveals everything: posterior vulnerability 1.
	w := [][]float64{{1, 0}, {0, 1}}
	v, err := PosteriorVulnerability([]float64{0.3, 0.7}, w)
	if err != nil || !mathx.AlmostEqual(v, 1, 1e-12) {
		t.Errorf("V_post = %v, %v", v, err)
	}
	// Constant channel reveals nothing: posterior = prior vulnerability.
	c := [][]float64{{1, 0}, {1, 0}}
	v2, err := PosteriorVulnerability([]float64{0.3, 0.7}, c)
	if err != nil || !mathx.AlmostEqual(v2, 0.7, 1e-12) {
		t.Errorf("V_post const = %v, %v", v2, err)
	}
}

func TestMinEntropyLeakage(t *testing.T) {
	// Identity channel over uniform binary secret leaks ln 2.
	w := [][]float64{{1, 0}, {0, 1}}
	l, err := MinEntropyLeakage([]float64{0.5, 0.5}, w)
	if err != nil || !mathx.AlmostEqual(l, math.Ln2, 1e-12) {
		t.Errorf("leakage = %v, %v", l, err)
	}
	// Constant channel leaks nothing.
	c := [][]float64{{1}, {1}}
	l2, err := MinEntropyLeakage([]float64{0.5, 0.5}, c)
	if err != nil || l2 != 0 {
		t.Errorf("constant leakage = %v, %v", l2, err)
	}
}

func TestMinEntropyLeakageNonNegativeProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := []float64{float64(a) + 1, float64(b) + 1}
		w := [][]float64{
			{float64(c) + 1, float64(d) + 1},
			{float64(d) + 1, float64(a) + 1},
		}
		l, err := MinEntropyLeakage(p, w)
		return err == nil && l >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinEntropyCapacity(t *testing.T) {
	// Identity over k symbols: capacity ln k.
	w := [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	c, err := MinEntropyCapacity(w)
	if err != nil || !mathx.AlmostEqual(c, math.Log(3), 1e-12) {
		t.Errorf("capacity = %v, %v", c, err)
	}
	// Constant channel: capacity 0.
	cc, err := MinEntropyCapacity([][]float64{{1}, {1}})
	if err != nil || cc != 0 {
		t.Errorf("constant capacity = %v, %v", cc, err)
	}
	// Capacity dominates leakage under any prior.
	g := rng.New(3)
	w2 := [][]float64{
		{0.7, 0.2, 0.1},
		{0.1, 0.6, 0.3},
	}
	cap2, err := MinEntropyCapacity(w2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		p := []float64{g.Float64() + 0.01, g.Float64() + 0.01}
		l, err := MinEntropyLeakage(p, w2)
		if err != nil {
			t.Fatal(err)
		}
		if l > cap2+1e-9 {
			t.Fatalf("leakage %v exceeds capacity %v", l, cap2)
		}
	}
	if _, err := MinEntropyCapacity(nil); err == nil {
		t.Error("empty channel must error")
	}
}

func TestDPBoundsMinEntropyLeakage(t *testing.T) {
	// For a channel whose rows are pairwise within e^ε ratios (an ε-DP
	// channel over a two-point secret space), the min-entropy capacity is
	// at most ε (Alvim et al.): ln Σⱼ maxᵢ Wᵢⱼ ≤ ln Σⱼ e^ε·W₀ⱼ = ε.
	eps := 0.3
	w0 := []float64{0.5, 0.3, 0.2}
	// Construct a row within e^eps ratios of w0 by moving mass δ from
	// entry 1 to entry 0, with δ small enough to respect both ratios.
	delta := math.Min((math.Exp(eps)-1)*w0[0], (1-math.Exp(-eps))*w0[1])
	w1 := []float64{w0[0] + delta, w0[1] - delta, w0[2]}
	// Verify the construction is within ratios.
	for j := range w0 {
		r := math.Abs(math.Log(w1[j] / w0[j]))
		if r > eps+1e-9 {
			t.Fatalf("construction broken at %d: ratio %v", j, r)
		}
	}
	c, err := MinEntropyCapacity([][]float64{w0, w1})
	if err != nil {
		t.Fatal(err)
	}
	if c > eps+1e-9 {
		t.Errorf("min-entropy capacity %v exceeds eps %v", c, eps)
	}
}
