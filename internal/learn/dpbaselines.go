package learn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// This file implements the two differentially-private ERM baselines of
// Chaudhuri, Monteleoni & Sarwate (JMLR 2011) that the paper cites as the
// prior approach to private learning (Section 1): output perturbation
// (sensitivity method) and objective perturbation. Both assume
// L2-regularized convex ERM with per-example feature norm ‖x‖₂ ≤ 1 and
// labels ±1 (callers should dataset.NormalizeRows first).

// ErrPrivacyBudgetTooSmall is returned by objective perturbation when the
// ε budget cannot cover the regularization adjustment.
var ErrPrivacyBudgetTooSmall = errors.New("learn: privacy budget too small for objective perturbation")

// sphereNoise returns a vector with direction uniform on the unit sphere
// of dimension dim and L2 norm drawn from Gamma(dim, scale) — the noise
// density ∝ exp(−‖b‖/scale) used by both CMS baselines.
func sphereNoise(dim int, scale float64, g *rng.RNG) []float64 {
	if dim <= 0 || scale <= 0 {
		panic("learn: sphereNoise requires dim > 0 and scale > 0")
	}
	dir := make([]float64, dim)
	var norm float64
	for norm == 0 { //dplint:ignore floateq rejection loop: redraw on the measure-zero event of a bitwise-zero Gaussian vector
		for i := range dir {
			dir[i] = g.Normal(0, 1)
		}
		norm = mathx.L2Norm(dir)
	}
	mag := g.Gamma(float64(dim), scale)
	for i := range dir {
		dir[i] = dir[i] / norm * mag
	}
	return dir
}

// OutputPerturbationLogistic privately fits L2-regularized logistic
// regression by the CMS sensitivity method: fit the non-private ERM, then
// add noise with density ∝ exp(−(n·λ·ε/2)·‖b‖). The L2 sensitivity of the
// regularized logistic minimizer under replace-one neighbors is 2/(n·λ).
// The release is ε-DP. lambda and epsilon must be positive.
func OutputPerturbationLogistic(d *dataset.Dataset, lambda, epsilon float64, opts GDOptions, g *rng.RNG) ([]float64, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("learn: output perturbation requires lambda > 0")
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("learn: output perturbation requires epsilon > 0")
	}
	theta, err := LogisticRegression(d, lambda, opts)
	if err != nil && !errors.Is(err, ErrNotConverged) {
		return nil, err
	}
	scale := 2 / (float64(d.Len()) * lambda * epsilon)
	noise := sphereNoise(d.Dim(), scale, g)
	for i := range theta {
		theta[i] += noise[i]
	}
	return theta, nil
}

// ObjectivePerturbationLogistic privately fits L2-regularized logistic
// regression by the CMS objective perturbation method (their Algorithm 2
// with c = 1/4, the smoothness constant of the logistic loss):
//
//	ε′ = ε − log(1 + 2c/(nλ) + c²/(n²λ²))
//	if ε′ ≤ 0:  Δ = c/(n·(e^{ε/4} − 1)) − λ,  ε′ = ε/2
//	b ~ density ∝ exp(−(ε′/2)‖b‖)
//	θ = argmin J(θ) + bᵀθ/n + (Δ/2)‖θ‖²
//
// The release is ε-DP. It returns ErrPrivacyBudgetTooSmall only in the
// degenerate case where the adjusted problem is still infeasible.
func ObjectivePerturbationLogistic(d *dataset.Dataset, lambda, epsilon float64, opts GDOptions, g *rng.RNG) ([]float64, error) {
	if lambda <= 0 || epsilon <= 0 {
		return nil, fmt.Errorf("learn: objective perturbation requires lambda > 0 and epsilon > 0")
	}
	n := float64(d.Len())
	const c = 0.25
	epsPrime := epsilon - math.Log(1+2*c/(n*lambda)+c*c/(n*n*lambda*lambda))
	delta := 0.0
	if epsPrime <= 0 {
		delta = c/(n*(math.Exp(epsilon/4)-1)) - lambda
		epsPrime = epsilon / 2
		if delta < 0 {
			// λ already large enough that the log term is small — cannot
			// happen when epsPrime <= 0, but guard against rounding.
			delta = 0
		}
	}
	if epsPrime <= 0 {
		return nil, ErrPrivacyBudgetTooSmall
	}
	b := sphereNoise(d.Dim(), 2/epsPrime, g)
	base := LogisticObjective(d, lambda)
	obj := func(theta []float64) (float64, []float64) {
		v, grad := base(theta)
		for j := range theta {
			v += b[j] * theta[j] / n
			grad[j] += b[j] / n
			v += delta / 2 * theta[j] * theta[j]
			grad[j] += delta * theta[j]
		}
		return v, grad
	}
	x0 := make([]float64, d.Dim())
	theta, err := MinimizeGD(obj, x0, opts)
	if err != nil && !errors.Is(err, ErrNotConverged) {
		return nil, err
	}
	return theta, nil
}

// OutputPerturbationSensitivity returns the L2 sensitivity 2/(n·λ) that
// output perturbation is calibrated to, exposed for tests and reports.
func OutputPerturbationSensitivity(n int, lambda float64) float64 {
	if n <= 0 || lambda <= 0 {
		panic("learn: OutputPerturbationSensitivity requires n > 0 and lambda > 0")
	}
	return 2 / (float64(n) * lambda)
}
