package learn

import (
	"errors"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/mathx"
)

// ErrNotConverged is returned by iterative optimizers that fail to reach
// their gradient tolerance within the iteration budget.
var ErrNotConverged = errors.New("learn: optimizer did not converge")

// ERMFinite returns the index of the empirical-risk minimizer over a
// finite predictor space (first minimizer on ties) and its risk. This is
// the non-private baseline against which the Gibbs estimator is compared.
func ERMFinite(l Loss, thetas [][]float64, d *dataset.Dataset) (int, float64) {
	if len(thetas) == 0 {
		panic("learn: ERMFinite over empty predictor space")
	}
	risks := RiskVector(l, thetas, d)
	idx := mathx.ArgMin(risks)
	return idx, risks[idx]
}

// GDOptions configures gradient descent.
type GDOptions struct {
	// MaxIter bounds the number of iterations (default 500).
	MaxIter int
	// Tol is the gradient-norm stopping criterion (default 1e-8).
	Tol float64
	// Step is the initial step size (default 1.0); backtracking halves it
	// as needed per iteration.
	Step float64
}

func (o GDOptions) withDefaults() GDOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Step <= 0 {
		o.Step = 1.0
	}
	return o
}

// MinimizeGD minimizes a smooth objective by gradient descent with
// backtracking line search, starting from x0. obj must return the value
// and gradient. It returns the final iterate; err is ErrNotConverged if
// the tolerance was not met (the iterate is still usable).
func MinimizeGD(obj func(x []float64) (float64, []float64), x0 []float64, opts GDOptions) ([]float64, error) {
	opts = opts.withDefaults()
	x := append([]float64(nil), x0...)
	fx, gx := obj(x)
	for iter := 0; iter < opts.MaxIter; iter++ {
		gnorm := mathx.L2Norm(gx)
		if gnorm < opts.Tol {
			return x, nil
		}
		step := opts.Step
		var xNew []float64
		var fNew float64
		var gNew []float64
		for {
			xNew = make([]float64, len(x))
			for i := range x {
				xNew[i] = x[i] - step*gx[i]
			}
			fNew, gNew = obj(xNew)
			// Armijo condition with c = 1e-4.
			if fNew <= fx-1e-4*step*gnorm*gnorm {
				break
			}
			step /= 2
			if step < 1e-16 {
				// No descent possible at machine precision.
				return x, nil
			}
		}
		x, fx, gx = xNew, fNew, gNew
	}
	if mathx.L2Norm(gx) < opts.Tol {
		return x, nil
	}
	return x, ErrNotConverged
}

// LogisticObjective returns the L2-regularized logistic objective and its
// gradient on dataset d:
//
//	J(θ) = (1/n) Σ log(1 + exp(−yᵢ θ·xᵢ)) + (λ/2)‖θ‖².
func LogisticObjective(d *dataset.Dataset, lambda float64) func([]float64) (float64, []float64) {
	n := float64(d.Len())
	return func(theta []float64) (float64, []float64) {
		grad := make([]float64, len(theta))
		var val mathx.KahanSum
		for _, e := range d.Examples {
			m := e.Y * mathx.Dot(theta, e.X)
			val.Add(-mathx.LogSigmoid(m))
			// dJ/dθ contribution: −y·x·σ(−m)
			c := -e.Y * mathx.Sigmoid(-m)
			for j := range grad {
				grad[j] += c * e.X[j]
			}
		}
		v := val.Sum() / n
		for j := range grad {
			grad[j] = grad[j]/n + lambda*theta[j]
		}
		norm := mathx.L2Norm(theta)
		v += lambda / 2 * norm * norm
		return v, grad
	}
}

// LogisticRegression fits an L2-regularized logistic regression by
// gradient descent and returns the coefficient vector. lambda must be
// non-negative. Labels must be ±1.
func LogisticRegression(d *dataset.Dataset, lambda float64, opts GDOptions) ([]float64, error) {
	if d.Len() == 0 {
		panic("learn: LogisticRegression on empty dataset")
	}
	if lambda < 0 {
		panic("learn: LogisticRegression requires lambda >= 0")
	}
	x0 := make([]float64, d.Dim())
	return MinimizeGD(LogisticObjective(d, lambda), x0, opts)
}

// RidgeRegression fits an L2-regularized least-squares regression
// (exactly, via the normal equations) and returns the coefficients.
// The regularization matches the objective
// (1/n)Σ(θ·x−y)² + λ‖θ‖², i.e. linalg.RidgeSolve with n·λ.
func RidgeRegression(d *dataset.Dataset, lambda float64) ([]float64, error) {
	if d.Len() == 0 {
		panic("learn: RidgeRegression on empty dataset")
	}
	if lambda < 0 {
		panic("learn: RidgeRegression requires lambda >= 0")
	}
	n, dim := d.Len(), d.Dim()
	a := linalg.NewMatrix(n, dim)
	b := make([]float64, n)
	for i, e := range d.Examples {
		for j := 0; j < dim; j++ {
			a.Set(i, j, e.X[j])
		}
		b[i] = e.Y
	}
	return linalg.RidgeSolve(a, b, lambda*float64(n))
}

// ClassifyLinear returns sign(θ·x) as a ±1 label (ties → −1).
func ClassifyLinear(theta, x []float64) float64 {
	if mathx.Dot(theta, x) > 0 {
		return 1
	}
	return -1
}

// ClassificationError returns the fraction of examples in d misclassified
// by the linear classifier θ.
func ClassificationError(theta []float64, d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		panic("learn: ClassificationError on empty dataset")
	}
	var errs float64
	for _, e := range d.Examples {
		if ClassifyLinear(theta, e.X) != e.Y { //dplint:ignore floateq labels and classifier outputs are exact +-1 codes, never arithmetic results
			errs++
		}
	}
	return errs / float64(d.Len())
}

// MeanSquaredError returns the mean squared prediction error of linear
// coefficients θ on d.
func MeanSquaredError(theta []float64, d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		panic("learn: MeanSquaredError on empty dataset")
	}
	var k mathx.KahanSum
	for _, e := range d.Examples {
		r := mathx.Dot(theta, e.X) - e.Y
		k.Add(r * r)
	}
	return k.Sum() / float64(d.Len())
}

// ProjectL2 scales x (in place) so its L2 norm is at most radius, and
// returns x. Non-positive radius panics.
func ProjectL2(x []float64, radius float64) []float64 {
	if radius <= 0 {
		panic("learn: ProjectL2 requires radius > 0")
	}
	n := mathx.L2Norm(x)
	if n > radius {
		s := radius / n
		for i := range x {
			x[i] *= s
		}
	}
	return x
}
