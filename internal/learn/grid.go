package learn

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Grid is a finite predictor space Θ: the Cartesian product of
// PointsPerDim evenly spaced values per dimension over [Lo, Hi]^Dim.
// Finite Θ makes the Gibbs posterior, its KL divergence to the prior, and
// the sample→predictor mutual information exactly computable, which is
// how the experiments turn the paper's theorems into checkable numbers.
type Grid struct {
	Lo, Hi       float64
	Dim          int
	PointsPerDim int
	thetas       [][]float64
}

// NewGrid builds the grid. It panics on invalid parameters and refuses
// grids with more than ~1e6 points (they indicate a misconfigured
// experiment).
func NewGrid(lo, hi float64, dim, pointsPerDim int) *Grid {
	if hi <= lo {
		panic("learn: NewGrid requires hi > lo")
	}
	if dim <= 0 || pointsPerDim <= 0 {
		panic("learn: NewGrid requires positive dim and pointsPerDim")
	}
	size := math.Pow(float64(pointsPerDim), float64(dim))
	if size > 1e6 {
		panic(fmt.Sprintf("learn: grid with %g points is too large", size))
	}
	g := &Grid{Lo: lo, Hi: hi, Dim: dim, PointsPerDim: pointsPerDim}
	axis := mathx.Linspace(lo, hi, pointsPerDim)
	total := int(size)
	g.thetas = make([][]float64, total)
	for idx := 0; idx < total; idx++ {
		theta := make([]float64, dim)
		rem := idx
		for j := 0; j < dim; j++ {
			theta[j] = axis[rem%pointsPerDim]
			rem /= pointsPerDim
		}
		g.thetas[idx] = theta
	}
	return g
}

// Thetas returns the full list of grid points. The slice is shared; do
// not mutate.
func (g *Grid) Thetas() [][]float64 { return g.thetas }

// Size returns |Θ|.
func (g *Grid) Size() int { return len(g.thetas) }

// At returns grid point i.
func (g *Grid) At(i int) []float64 { return g.thetas[i] }

// MaxNorm returns the largest L2 norm over the grid — the ‖θ‖ bound used
// to derive loss bounds.
func (g *Grid) MaxNorm() float64 {
	var m float64
	for _, th := range g.thetas {
		if n := mathx.L2Norm(th); n > m {
			m = n
		}
	}
	return m
}

// UniformLogPrior returns the uniform log-prior over the grid
// (log 1/|Θ| per point).
func (g *Grid) UniformLogPrior() []float64 {
	lp := -math.Log(float64(g.Size()))
	out := make([]float64, g.Size())
	for i := range out {
		out[i] = lp
	}
	return out
}

// GaussianLogPrior returns a log-prior proportional to exp(−‖θ‖²/(2σ²)),
// normalized over the grid. σ must be positive.
func (g *Grid) GaussianLogPrior(sigma float64) []float64 {
	if sigma <= 0 {
		panic("learn: GaussianLogPrior requires sigma > 0")
	}
	out := make([]float64, g.Size())
	for i, th := range g.thetas {
		n := mathx.L2Norm(th)
		out[i] = -n * n / (2 * sigma * sigma)
	}
	normalized, _ := mathx.LogNormalize(out)
	return normalized
}

// LogisticLossBound returns an upper bound on the logistic loss over this
// grid for examples with ‖x‖₂ ≤ xNorm: log(1 + exp(maxNorm·xNorm)).
func (g *Grid) LogisticLossBound(xNorm float64) float64 {
	m := g.MaxNorm() * xNorm
	// log(1+e^m) computed stably.
	if m > 0 {
		return m + math.Log1p(math.Exp(-m))
	}
	return math.Log1p(math.Exp(m))
}

// SquaredLossBound returns an upper bound on the squared loss over this
// grid for |y| ≤ yMax and ‖x‖₂ ≤ xNorm: (maxNorm·xNorm + yMax)².
func (g *Grid) SquaredLossBound(xNorm, yMax float64) float64 {
	b := g.MaxNorm()*xNorm + yMax
	return b * b
}
