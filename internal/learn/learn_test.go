package learn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func ex(y float64, xs ...float64) dataset.Example {
	return dataset.Example{X: xs, Y: y}
}

func TestZeroOneLoss(t *testing.T) {
	l := ZeroOneLoss{}
	theta := []float64{1, 0}
	if l.Loss(theta, ex(1, 2, 0)) != 0 {
		t.Error("correct classification should cost 0")
	}
	if l.Loss(theta, ex(-1, 2, 0)) != 1 {
		t.Error("misclassification should cost 1")
	}
	if l.Loss(theta, ex(1, 0, 5)) != 1 {
		t.Error("tie (margin 0) should count as error")
	}
	if l.Bound() != 1 || l.Name() != "zero-one" {
		t.Error("metadata")
	}
}

func TestLogisticLossValues(t *testing.T) {
	l := LogisticLoss{}
	// At margin 0 the loss is ln 2.
	if got := l.Loss([]float64{0}, ex(1, 1)); !mathx.AlmostEqual(got, math.Ln2, 1e-12) {
		t.Errorf("logistic at 0 = %v", got)
	}
	// Large positive margin → ~0; large negative margin → ~margin.
	if got := l.Loss([]float64{10}, ex(1, 5)); got > 1e-20 {
		t.Errorf("logistic at +50 = %v", got)
	}
	if got := l.Loss([]float64{10}, ex(-1, 5)); !mathx.AlmostEqual(got, 50, 1e-9) {
		t.Errorf("logistic at -50 = %v", got)
	}
	if !math.IsInf(l.Bound(), 1) {
		t.Error("unbounded")
	}
}

func TestHingeSquaredAbsoluteHuber(t *testing.T) {
	th := []float64{1}
	hinge := HingeLoss{}
	if got := hinge.Loss(th, ex(1, 0.5)); !mathx.AlmostEqual(got, 0.5, 1e-12) {
		t.Errorf("hinge = %v", got)
	}
	if got := hinge.Loss(th, ex(1, 2)); got != 0 {
		t.Errorf("hinge past margin = %v", got)
	}
	sq := SquaredLoss{}
	if got := sq.Loss(th, ex(3, 1)); !mathx.AlmostEqual(got, 4, 1e-12) {
		t.Errorf("squared = %v", got)
	}
	abs := AbsoluteLoss{}
	if got := abs.Loss(th, ex(3, 1)); !mathx.AlmostEqual(got, 2, 1e-12) {
		t.Errorf("absolute = %v", got)
	}
	h := HuberLoss{Delta: 1}
	if got := h.Loss(th, ex(1.5, 1)); !mathx.AlmostEqual(got, 0.125, 1e-12) {
		t.Errorf("huber quadratic = %v", got)
	}
	if got := h.Loss(th, ex(4, 1)); !mathx.AlmostEqual(got, 2.5, 1e-12) {
		t.Errorf("huber linear = %v", got)
	}
}

func TestClippedLoss(t *testing.T) {
	c := NewClippedLoss(SquaredLoss{}, 2)
	th := []float64{1}
	if got := c.Loss(th, ex(10, 1)); got != 2 {
		t.Errorf("clip = %v", got)
	}
	if got := c.Loss(th, ex(1.5, 1)); !mathx.AlmostEqual(got, 0.25, 1e-12) {
		t.Errorf("below clip = %v", got)
	}
	if c.Bound() != 2 {
		t.Error("Bound")
	}
	defer func() {
		if recover() == nil {
			t.Error("Max <= 0 should panic")
		}
	}()
	NewClippedLoss(SquaredLoss{}, 0)
}

func TestSwapSensitivity(t *testing.T) {
	l := NewClippedLoss(SquaredLoss{}, 4)
	if got := SwapSensitivity(l, 100); !mathx.AlmostEqual(got, 0.04, 1e-12) {
		t.Errorf("SwapSensitivity = %v", got)
	}
	// Empirically: replacing one example changes R̂ by at most Bound/n.
	g := rng.New(1)
	d := dataset.LinearModel{Weights: []float64{1}, Noise: 0.2}.Generate(50, g)
	theta := []float64{0.7}
	base := EmpiricalRisk(l, theta, d)
	for trial := 0; trial < 200; trial++ {
		nb := d.ReplaceOne(g.Intn(50), dataset.Example{X: []float64{g.Uniform(-1, 1)}, Y: g.Uniform(-3, 3)})
		if diff := math.Abs(EmpiricalRisk(l, theta, nb) - base); diff > SwapSensitivity(l, 50)+1e-12 {
			t.Fatalf("risk moved %v > sensitivity %v", diff, SwapSensitivity(l, 50))
		}
	}
}

func TestEmpiricalRisk(t *testing.T) {
	d := dataset.New([]dataset.Example{ex(1, 1), ex(-1, 1)})
	// θ=1: first correct, second wrong → 0-1 risk 1/2.
	if got := EmpiricalRisk(ZeroOneLoss{}, []float64{1}, d); got != 0.5 {
		t.Errorf("risk = %v", got)
	}
}

func TestRiskVectorAndERMFinite(t *testing.T) {
	g := rng.New(3)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	d := model.Generate(400, g)
	grid := NewGrid(-2, 2, 1, 41)
	idx, risk := ERMFinite(ZeroOneLoss{}, grid.Thetas(), d)
	best := grid.At(idx)[0]
	if best <= 0 {
		t.Errorf("ERM picked θ=%v for positively-correlated data", best)
	}
	if risk > 0.35 {
		t.Errorf("ERM risk = %v too high", risk)
	}
	rv := RiskVector(ZeroOneLoss{}, grid.Thetas(), d)
	if len(rv) != grid.Size() || rv[idx] != risk {
		t.Error("RiskVector inconsistent with ERMFinite")
	}
}

func TestGridEnumeration(t *testing.T) {
	g := NewGrid(-1, 1, 2, 3)
	if g.Size() != 9 {
		t.Fatalf("Size = %d", g.Size())
	}
	// All points in box; axes hit the endpoints.
	seen := map[[2]float64]bool{}
	for _, th := range g.Thetas() {
		if len(th) != 2 {
			t.Fatal("dim")
		}
		for _, v := range th {
			if v < -1 || v > 1 {
				t.Fatal("out of box")
			}
		}
		seen[[2]float64{th[0], th[1]}] = true
	}
	if len(seen) != 9 {
		t.Fatalf("duplicate grid points: %d unique", len(seen))
	}
	if !seen[[2]float64{-1, -1}] || !seen[[2]float64{1, 1}] || !seen[[2]float64{0, 0}] {
		t.Error("expected corners and center")
	}
	if !mathx.AlmostEqual(g.MaxNorm(), math.Sqrt2, 1e-12) {
		t.Errorf("MaxNorm = %v", g.MaxNorm())
	}
}

func TestGridPriors(t *testing.T) {
	g := NewGrid(-1, 1, 1, 5)
	up := g.UniformLogPrior()
	if !mathx.AlmostEqual(mathx.LogSumExp(up), 0, 1e-12) {
		t.Error("uniform prior normalizes")
	}
	gp := g.GaussianLogPrior(0.5)
	if !mathx.AlmostEqual(mathx.LogSumExp(gp), 0, 1e-12) {
		t.Error("gaussian prior normalizes")
	}
	// Gaussian prior favors the origin.
	if gp[2] <= gp[0] { // grid: -1,-0.5,0,0.5,1 → index 2 is 0
		t.Error("gaussian prior should peak at origin")
	}
}

func TestGridPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewGrid(1, 0, 1, 3) },
		func() { NewGrid(0, 1, 0, 3) },
		func() { NewGrid(0, 1, 8, 10) }, // 1e8 points
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGridLossBounds(t *testing.T) {
	g := NewGrid(-2, 2, 2, 5)
	lb := g.LogisticLossBound(1)
	// Max margin magnitude = maxNorm·1 = 2√2; bound = log(1+e^{2√2}).
	want := math.Log(1 + math.Exp(2*math.Sqrt2))
	if !mathx.AlmostEqual(lb, want, 1e-9) {
		t.Errorf("LogisticLossBound = %v, want %v", lb, want)
	}
	sb := g.SquaredLossBound(1, 1)
	wantSq := (2*math.Sqrt2 + 1) * (2*math.Sqrt2 + 1)
	if !mathx.AlmostEqual(sb, wantSq, 1e-9) {
		t.Errorf("SquaredLossBound = %v, want %v", sb, wantSq)
	}
}

func TestMinimizeGDQuadratic(t *testing.T) {
	// Minimize (x−3)² + (y+1)².
	obj := func(x []float64) (float64, []float64) {
		dx, dy := x[0]-3, x[1]+1
		return dx*dx + dy*dy, []float64{2 * dx, 2 * dy}
	}
	x, err := MinimizeGD(obj, []float64{0, 0}, GDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(x[0], 3, 1e-5) || !mathx.AlmostEqual(x[1], -1, 1e-5) {
		t.Errorf("GD minimizer = %v", x)
	}
}

func TestMinimizeGDNotConverged(t *testing.T) {
	obj := func(x []float64) (float64, []float64) {
		v := x[0]
		return v * v * v * v, []float64{4 * v * v * v}
	}
	_, err := MinimizeGD(obj, []float64{3}, GDOptions{MaxIter: 1, Tol: 1e-15})
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("expected ErrNotConverged, got %v", err)
	}
}

func TestLogisticRegressionRecovers(t *testing.T) {
	g := rng.New(7)
	model := dataset.LogisticModel{Weights: []float64{2, -1}, Bias: 0}
	d := model.Generate(3000, g)
	theta, err := LogisticRegression(d, 1e-4, GDOptions{MaxIter: 2000, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Direction should match the true weights (ratio ≈ -2).
	if theta[0] <= 0 || theta[1] >= 0 {
		t.Fatalf("signs wrong: %v", theta)
	}
	ratio := theta[0] / theta[1]
	if math.Abs(ratio+2) > 0.5 {
		t.Errorf("weight ratio = %v, want ≈ -2 (theta=%v)", ratio, theta)
	}
	// Training error should beat chance comfortably.
	if errRate := ClassificationError(theta, d); errRate > 0.35 {
		t.Errorf("training error = %v", errRate)
	}
}

func TestLogisticObjectiveGradientCheck(t *testing.T) {
	g := rng.New(9)
	d := dataset.LogisticModel{Weights: []float64{1, 1}, Bias: 0}.Generate(50, g)
	obj := LogisticObjective(d, 0.1)
	theta := []float64{0.3, -0.7}
	_, grad := obj(theta)
	// Finite differences.
	const h = 1e-6
	for j := range theta {
		tp := append([]float64(nil), theta...)
		tm := append([]float64(nil), theta...)
		tp[j] += h
		tm[j] -= h
		fp, _ := obj(tp)
		fm, _ := obj(tm)
		fd := (fp - fm) / (2 * h)
		if !mathx.AlmostEqual(grad[j], fd, 1e-5) {
			t.Errorf("grad[%d] = %v, finite diff = %v", j, grad[j], fd)
		}
	}
}

func TestRidgeRegressionRecovers(t *testing.T) {
	g := rng.New(11)
	model := dataset.LinearModel{Weights: []float64{1.5, -0.5}, Noise: 0.05}
	d := model.Generate(2000, g)
	theta, err := RidgeRegression(d, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(theta[0]-1.5) > 0.05 || math.Abs(theta[1]+0.5) > 0.05 {
		t.Errorf("ridge = %v", theta)
	}
	if mse := MeanSquaredError(theta, d); mse > 0.01 {
		t.Errorf("MSE = %v", mse)
	}
}

func TestRidgeShrinkage(t *testing.T) {
	g := rng.New(13)
	d := dataset.LinearModel{Weights: []float64{2}, Noise: 0.1}.Generate(100, g)
	small, _ := RidgeRegression(d, 1e-6)
	big, _ := RidgeRegression(d, 100)
	if mathx.L2Norm(big) >= mathx.L2Norm(small) {
		t.Error("larger lambda must shrink coefficients")
	}
}

func TestClassifyLinear(t *testing.T) {
	if ClassifyLinear([]float64{1}, []float64{2}) != 1 {
		t.Error("positive")
	}
	if ClassifyLinear([]float64{1}, []float64{-2}) != -1 {
		t.Error("negative")
	}
	if ClassifyLinear([]float64{1}, []float64{0}) != -1 {
		t.Error("tie maps to -1")
	}
}

func TestProjectL2(t *testing.T) {
	x := []float64{3, 4}
	ProjectL2(x, 1)
	if !mathx.AlmostEqual(mathx.L2Norm(x), 1, 1e-12) {
		t.Errorf("projected norm = %v", mathx.L2Norm(x))
	}
	y := []float64{0.1, 0.1}
	ProjectL2(y, 1)
	if y[0] != 0.1 {
		t.Error("inside ball must be untouched")
	}
}

func TestOutputPerturbationLogistic(t *testing.T) {
	g := rng.New(17)
	model := dataset.LogisticModel{Weights: []float64{2, -1}, Bias: 0}
	d := model.Generate(2000, g).NormalizeRows()
	lambda := 0.01
	// Huge ε: should be close to the non-private solution.
	thetaBig, err := OutputPerturbationLogistic(d, lambda, 1e6, GDOptions{MaxIter: 1000}, g)
	if err != nil {
		t.Fatal(err)
	}
	nonPriv, _ := LogisticRegression(d, lambda, GDOptions{MaxIter: 1000})
	diff := 0.0
	for i := range thetaBig {
		diff += math.Abs(thetaBig[i] - nonPriv[i])
	}
	if diff > 0.01 {
		t.Errorf("huge-ε output perturbation far from ERM: diff=%v", diff)
	}
	// Small ε adds substantial noise on average.
	var w mathx.Welford
	for trial := 0; trial < 50; trial++ {
		th, err := OutputPerturbationLogistic(d, lambda, 0.1, GDOptions{MaxIter: 300}, g)
		if err != nil {
			t.Fatal(err)
		}
		d2 := 0.0
		for i := range th {
			d2 += (th[i] - nonPriv[i]) * (th[i] - nonPriv[i])
		}
		w.Add(math.Sqrt(d2))
	}
	wantScale := OutputPerturbationSensitivity(d.Len(), lambda) / 0.1 // scale = 2/(nλε)
	// Mean gamma(d=2, scale) magnitude = 2·scale.
	if math.Abs(w.Mean()-2*wantScale)/(2*wantScale) > 0.3 {
		t.Errorf("noise magnitude mean = %v, want ≈ %v", w.Mean(), 2*wantScale)
	}
}

func TestOutputPerturbationValidation(t *testing.T) {
	g := rng.New(19)
	d := dataset.LogisticModel{Weights: []float64{1}}.Generate(10, g)
	if _, err := OutputPerturbationLogistic(d, 0, 1, GDOptions{}, g); err == nil {
		t.Error("lambda=0 must error")
	}
	if _, err := OutputPerturbationLogistic(d, 0.1, 0, GDOptions{}, g); err == nil {
		t.Error("epsilon=0 must error")
	}
}

func TestObjectivePerturbationLogistic(t *testing.T) {
	g := rng.New(23)
	model := dataset.LogisticModel{Weights: []float64{2, -1}, Bias: 0}
	d := model.Generate(2000, g).NormalizeRows()
	test := model.Generate(2000, g).NormalizeRows()
	lambda := 0.01
	// Large ε ≈ non-private accuracy.
	th, err := ObjectivePerturbationLogistic(d, lambda, 100, GDOptions{MaxIter: 1000}, g)
	if err != nil {
		t.Fatal(err)
	}
	nonPriv, _ := LogisticRegression(d, lambda, GDOptions{MaxIter: 1000})
	if ClassificationError(th, test) > ClassificationError(nonPriv, test)+0.05 {
		t.Errorf("large-ε objective perturbation much worse than ERM: %v vs %v",
			ClassificationError(th, test), ClassificationError(nonPriv, test))
	}
	// Small ε still runs (adjusted Δ path) and returns finite params.
	thSmall, err := ObjectivePerturbationLogistic(d, 1e-6, 0.05, GDOptions{MaxIter: 300}, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range thSmall {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite parameter")
		}
	}
	if _, err := ObjectivePerturbationLogistic(d, 0, 1, GDOptions{}, g); err == nil {
		t.Error("lambda=0 must error")
	}
}

func TestTrueRiskMC(t *testing.T) {
	g := rng.New(29)
	model := dataset.LogisticModel{Weights: []float64{5}, Bias: 0}
	gen := func() dataset.Example {
		d := model.Generate(1, g)
		return d.Examples[0]
	}
	// θ aligned with the truth: risk below 1/2. θ = 0 (ties): risk 1.
	risk := TrueRiskMC(ZeroOneLoss{}, []float64{1}, gen, 20000)
	if risk > 0.4 {
		t.Errorf("aligned risk = %v", risk)
	}
}

func TestRiskVectorParallelMatchesSequential(t *testing.T) {
	// Force the parallel path (large |Θ|·n) and compare against a direct
	// sequential computation.
	g := rng.New(99)
	d := dataset.LogisticModel{Weights: []float64{1, -1}}.Generate(300, g)
	grid := NewGrid(-2, 2, 2, 17) // 289 · 300 > 2^14 → parallel path
	par := RiskVector(ZeroOneLoss{}, grid.Thetas(), d)
	seq := make([]float64, grid.Size())
	for i, th := range grid.Thetas() {
		seq[i] = EmpiricalRisk(ZeroOneLoss{}, th, d)
	}
	for i := range seq {
		if par[i] != seq[i] {
			t.Fatalf("parallel[%d] = %v != sequential %v", i, par[i], seq[i])
		}
	}
}

func BenchmarkRiskVectorParallel(b *testing.B) {
	g := rng.New(1)
	d := dataset.LogisticModel{Weights: []float64{1, -1}}.Generate(2000, g)
	grid := NewGrid(-2, 2, 2, 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RiskVector(ZeroOneLoss{}, grid.Thetas(), d)
	}
}
