// Package learn implements the statistical prediction framework of
// Section 2.2 of the paper: loss functions lθ(Z) with explicit bounds,
// empirical and true risk, finite predictor spaces Θ (grids), empirical
// risk minimization, gradient-descent learners for logistic and ridge
// regression, and the differentially-private ERM baselines of Chaudhuri
// et al. (output perturbation and objective perturbation) that the paper
// positions the Gibbs estimator against.
//
// Bounded losses matter because the global sensitivity of the empirical
// risk R̂_Ẑ(θ) = (1/n) Σ lθ(Zᵢ) under replace-one neighbors is
// sup|l|/n-ish — precisely the ΔR̂ in Theorem 4.1. Every Loss here
// reports a SwapSensitivity so mechanisms can calibrate exactly.
package learn

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/parallel"
)

// Loss scores a predictor θ on a single example. Implementations must be
// deterministic.
type Loss interface {
	// Loss returns lθ(z) ≥ 0.
	Loss(theta []float64, e dataset.Example) float64
	// Bound returns an upper bound M with lθ(z) ∈ [0, M] for all θ in the
	// intended predictor space and all admissible examples; +Inf if
	// unbounded.
	Bound() float64
	// Name identifies the loss in reports.
	Name() string
}

// SwapSensitivity returns the global sensitivity of the empirical risk
// over replace-one neighbors for a [0, M]-bounded loss on samples of size
// n: ΔR̂ = M/n (one term of the average changes by at most M).
func SwapSensitivity(l Loss, n int) float64 {
	if n <= 0 {
		panic("learn: SwapSensitivity requires n > 0")
	}
	return l.Bound() / float64(n)
}

// ZeroOneLoss is the classification error 1{sign(θ·x) ≠ y} for labels
// y ∈ {−1, +1}. Ties (θ·x = 0) count as errors. Bounded by 1.
type ZeroOneLoss struct{}

// Loss implements Loss.
func (ZeroOneLoss) Loss(theta []float64, e dataset.Example) float64 {
	if mathx.Dot(theta, e.X)*e.Y > 0 {
		return 0
	}
	return 1
}

// Bound implements Loss.
func (ZeroOneLoss) Bound() float64 { return 1 }

// Name implements Loss.
func (ZeroOneLoss) Name() string { return "zero-one" }

// LogisticLoss is log(1 + exp(−y·θ·x)) for y ∈ {−1, +1}. Unbounded in
// general; bounded when ‖θ‖ and ‖x‖ are (see ClippedLoss or the grid's
// LogisticBound helper).
type LogisticLoss struct{}

// Loss implements Loss.
func (LogisticLoss) Loss(theta []float64, e dataset.Example) float64 {
	return -mathx.LogSigmoid(e.Y * mathx.Dot(theta, e.X))
}

// Bound implements Loss (unbounded without clipping).
func (LogisticLoss) Bound() float64 { return math.Inf(1) }

// Name implements Loss.
func (LogisticLoss) Name() string { return "logistic" }

// HingeLoss is max(0, 1 − y·θ·x), the SVM loss. Unbounded without
// clipping.
type HingeLoss struct{}

// Loss implements Loss.
func (HingeLoss) Loss(theta []float64, e dataset.Example) float64 {
	v := 1 - e.Y*mathx.Dot(theta, e.X)
	if v < 0 {
		return 0
	}
	return v
}

// Bound implements Loss.
func (HingeLoss) Bound() float64 { return math.Inf(1) }

// Name implements Loss.
func (HingeLoss) Name() string { return "hinge" }

// SquaredLoss is (θ·x − y)². Unbounded without clipping.
type SquaredLoss struct{}

// Loss implements Loss.
func (SquaredLoss) Loss(theta []float64, e dataset.Example) float64 {
	r := mathx.Dot(theta, e.X) - e.Y
	return r * r
}

// Bound implements Loss.
func (SquaredLoss) Bound() float64 { return math.Inf(1) }

// Name implements Loss.
func (SquaredLoss) Name() string { return "squared" }

// AbsoluteLoss is |θ·x − y|. Unbounded without clipping.
type AbsoluteLoss struct{}

// Loss implements Loss.
func (AbsoluteLoss) Loss(theta []float64, e dataset.Example) float64 {
	return math.Abs(mathx.Dot(theta, e.X) - e.Y)
}

// Bound implements Loss.
func (AbsoluteLoss) Bound() float64 { return math.Inf(1) }

// Name implements Loss.
func (AbsoluteLoss) Name() string { return "absolute" }

// HuberLoss is the Huber loss with transition delta: quadratic inside
// [−δ, δ], linear outside. Unbounded without clipping.
type HuberLoss struct {
	Delta float64
}

// Loss implements Loss.
func (h HuberLoss) Loss(theta []float64, e dataset.Example) float64 {
	r := math.Abs(mathx.Dot(theta, e.X) - e.Y)
	if r <= h.Delta {
		return 0.5 * r * r
	}
	return h.Delta * (r - 0.5*h.Delta)
}

// Bound implements Loss.
func (HuberLoss) Bound() float64 { return math.Inf(1) }

// Name implements Loss.
func (h HuberLoss) Name() string { return fmt.Sprintf("huber(%.3g)", h.Delta) }

// ClippedLoss wraps an arbitrary loss, truncating it at Max. Clipping is
// the standard route to the bounded losses the exponential mechanism /
// Gibbs estimator needs (Theorem 4.1): the clipped empirical risk has
// sensitivity exactly Max/n.
type ClippedLoss struct {
	Inner Loss
	Max   float64
}

// NewClippedLoss validates Max > 0.
func NewClippedLoss(inner Loss, maxv float64) ClippedLoss {
	if maxv <= 0 || math.IsNaN(maxv) {
		panic("learn: ClippedLoss requires Max > 0")
	}
	return ClippedLoss{Inner: inner, Max: maxv}
}

// Loss implements Loss.
func (c ClippedLoss) Loss(theta []float64, e dataset.Example) float64 {
	v := c.Inner.Loss(theta, e)
	if v > c.Max {
		return c.Max
	}
	return v
}

// Bound implements Loss.
func (c ClippedLoss) Bound() float64 { return c.Max }

// Name implements Loss.
func (c ClippedLoss) Name() string { return fmt.Sprintf("clipped(%s,%.3g)", c.Inner.Name(), c.Max) }

// EmpiricalRisk returns R̂_Ẑ(θ) = (1/n) Σ lθ(Zᵢ). It panics on an empty
// dataset.
func EmpiricalRisk(l Loss, theta []float64, d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		panic("learn: EmpiricalRisk of empty dataset")
	}
	var k mathx.KahanSum
	for _, e := range d.Examples {
		k.Add(l.Loss(theta, e))
	}
	return k.Sum() / float64(d.Len())
}

// RiskVector evaluates the empirical risk of every θ in thetas on d with
// the default fan-out (all CPUs). The result is identical to the
// sequential computation: each entry is an independent pure function of
// (θ, d).
func RiskVector(l Loss, thetas [][]float64, d *dataset.Dataset) []float64 {
	return RiskVectorOpts(l, thetas, d, parallel.Options{})
}

// riskGrain is the fan-out grain for risk evaluation: one index is a
// full O(n) empirical-risk pass, so even small predictor grids split
// into enough chunks to feed every CPU.
const riskGrain = 8

// RiskVectorOpts is RiskVector under an explicit parallel.Options.
// Results are bit-for-bit identical for every worker count.
func RiskVectorOpts(l Loss, thetas [][]float64, d *dataset.Dataset, opts parallel.Options) []float64 {
	out, err := RiskVectorCtx(context.Background(), l, thetas, d, opts)
	if err != nil {
		// Background contexts never cancel; the only possible error is a
		// recovered worker panic, and the non-ctx helpers keep the
		// crash-on-panic contract.
		panic(err)
	}
	return out
}

// RiskVectorCtx is RiskVectorOpts with cancellation and panic isolation:
// the context is checked at the engine's chunk-claim boundaries, and a
// panic inside a loss evaluation surfaces as a *parallel.WorkerError. The
// chunk geometry is unchanged, so a completed call is bit-identical to
// RiskVectorOpts.
func RiskVectorCtx(ctx context.Context, l Loss, thetas [][]float64, d *dataset.Dataset, opts parallel.Options) ([]float64, error) {
	// Fan-out only pays off when there is real work to split.
	if len(thetas)*d.Len() < 1<<14 {
		opts = parallel.Options{Workers: 1}
	}
	return parallel.MapGrainCtx(ctx, len(thetas), riskGrain, opts, func(i int) float64 {
		return EmpiricalRisk(l, thetas[i], d)
	})
}

// TrueRiskMC estimates the true risk E_Z lθ(Z) by Monte Carlo over fresh
// data drawn from gen.
func TrueRiskMC(l Loss, theta []float64, gen func() dataset.Example, nMC int) float64 {
	var k mathx.KahanSum
	for i := 0; i < nMC; i++ {
		k.Add(l.Loss(theta, gen()))
	}
	return k.Sum() / float64(nMC)
}
