package learn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// This file implements differentially-private model selection: choosing
// among candidate trained predictors by the exponential mechanism scored
// on a held-out validation set — the selection step every practical
// private-learning pipeline needs, built from the same mechanism the
// paper identifies with the Gibbs estimator.

// Candidate is a trained predictor competing in private selection.
type Candidate struct {
	// Name labels the candidate in reports.
	Name string
	// Theta is its parameter vector.
	Theta []float64
}

// PrivateSelect picks one candidate by the exponential mechanism with
// quality = −(validation empirical risk), using a [0, M]-bounded loss.
// The quality's replace-one sensitivity on a validation set of size m is
// M/m, so the selection is exactly ε-DP with respect to the validation
// set (the candidates themselves must have been trained on disjoint
// data, or carry their own training-privacy budget). The spent ε is
// registered with acct (nil to skip accounting).
func PrivateSelect(cands []Candidate, loss Loss, validation *dataset.Dataset, epsilon float64, acct *mechanism.Accountant, g *rng.RNG) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, errors.New("learn: PrivateSelect needs candidates")
	}
	if validation == nil || validation.Len() == 0 {
		return Candidate{}, errors.New("learn: PrivateSelect needs a validation set")
	}
	m := loss.Bound()
	if m <= 0 || math.IsNaN(m) || math.IsInf(m, 1) {
		return Candidate{}, errors.New("learn: PrivateSelect needs a bounded loss")
	}
	sens := m / float64(validation.Len())
	//dp:sensitivity Δq=M/n (an empirical risk averages n terms in [0, M]; one swap moves it by at most M/n)
	quality := func(d *dataset.Dataset, u int) float64 {
		return -EmpiricalRisk(loss, cands[u].Theta, d)
	}
	// Guarantee of the exponential mechanism is 2·mechEps·Δq; calibrate
	// mechEps so that equals the requested ε.
	em, err := mechanism.NewExponential(quality, len(cands), sens, epsilon/(2*sens))
	if err != nil {
		return Candidate{}, fmt.Errorf("learn: PrivateSelect: %w", err)
	}
	selected := cands[em.Release(validation, g)]
	acct.SpendDetail(em.Guarantee(), mechanism.SpendMeta{
		Mechanism:   "expmech",
		Sensitivity: sens,
		Outcomes:    len(cands),
	})
	return selected, nil
}

// KFoldSplit partitions indices 0..n−1 into k contiguous folds after a
// seeded shuffle, returning per-fold (train, test) index slices. k must
// lie in [2, n].
func KFoldSplit(n, k int, g *rng.RNG) (trainFolds, testFolds [][]int) {
	if k < 2 || k > n {
		panic("learn: KFoldSplit requires 2 <= k <= n")
	}
	perm := g.Perm(n)
	trainFolds = make([][]int, k)
	testFolds = make([][]int, k)
	for f := 0; f < k; f++ {
		lo := f * n / k
		hi := (f + 1) * n / k
		testFolds[f] = append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-(hi-lo))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		trainFolds[f] = train
	}
	return trainFolds, testFolds
}

// Subset returns the dataset restricted to the given indices (deep copy).
func Subset(d *dataset.Dataset, idx []int) *dataset.Dataset {
	out := &dataset.Dataset{Examples: make([]dataset.Example, 0, len(idx))}
	for _, i := range idx {
		out.Append(d.Examples[i].Clone())
	}
	return out
}

// CrossValidate estimates the expected loss of a training procedure by
// k-fold cross-validation: fit receives each fold's training subset and
// returns a parameter vector, which is scored with loss on the held-out
// fold. It returns the mean held-out risk.
func CrossValidate(d *dataset.Dataset, k int, loss Loss, fit func(*dataset.Dataset) ([]float64, error), g *rng.RNG) (float64, error) {
	if d.Len() < k {
		return 0, errors.New("learn: CrossValidate needs at least k examples")
	}
	trainFolds, testFolds := KFoldSplit(d.Len(), k, g)
	var total float64
	for f := 0; f < k; f++ {
		theta, err := fit(Subset(d, trainFolds[f]))
		if err != nil && !errors.Is(err, ErrNotConverged) {
			return 0, fmt.Errorf("learn: CrossValidate fold %d: %w", f, err)
		}
		total += EmpiricalRisk(loss, theta, Subset(d, testFolds[f]))
	}
	return total / float64(k), nil
}
