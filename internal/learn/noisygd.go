package learn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// NoisyGDConfig configures differentially-private (full-batch) noisy
// gradient descent: at each step the per-example gradients are L2-clipped
// to ClipNorm, averaged, perturbed with Gaussian noise calibrated to an
// (ε₀, δ₀) per-step budget, and applied; the T steps compose by the
// advanced composition theorem into the total (ε, δ) reported alongside
// the solution. This is the full-batch ancestor of DP-SGD
// (Bassily–Smith–Thakurta; Abadi et al.), included as the iterative
// alternative to the one-shot mechanisms the paper centers on.
type NoisyGDConfig struct {
	// Steps is the number of gradient steps T.
	Steps int
	// LearningRate is the (fixed) step size.
	LearningRate float64
	// ClipNorm bounds each example's gradient contribution in L2.
	ClipNorm float64
	// StepEpsilon and StepDelta are the per-step Gaussian-mechanism
	// budget (StepEpsilon must be in (0, 1]).
	StepEpsilon, StepDelta float64
	// CompositionSlack is the δ′ used by advanced composition (default
	// 1e-6 when zero).
	CompositionSlack float64
	// ProjectRadius, when positive, projects the iterate into the L2
	// ball of this radius after every step (keeps losses bounded).
	ProjectRadius float64
}

// NoisyGDResult is the outcome of a private optimization run.
type NoisyGDResult struct {
	// Theta is the final iterate.
	Theta []float64
	// Guarantee is the composed (ε, δ) privacy guarantee of the whole
	// run (the tighter of basic and advanced composition).
	Guarantee mechanism.Guarantee
}

// NoisyGD privately minimizes the average of per-example losses whose
// gradient is supplied by grad(theta, example). The released iterate
// carries the composed privacy guarantee.
func NoisyGD(d *dataset.Dataset, dim int, grad func(theta []float64, e dataset.Example) []float64, cfg NoisyGDConfig, g *rng.RNG) (*NoisyGDResult, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("learn: NoisyGD needs a non-empty dataset")
	}
	if cfg.Steps <= 0 || cfg.LearningRate <= 0 || cfg.ClipNorm <= 0 {
		return nil, errors.New("learn: NoisyGD needs positive Steps, LearningRate and ClipNorm")
	}
	if cfg.StepEpsilon <= 0 || cfg.StepEpsilon > 1 || cfg.StepDelta <= 0 || cfg.StepDelta >= 1 {
		return nil, errors.New("learn: NoisyGD needs StepEpsilon in (0,1] and StepDelta in (0,1)")
	}
	slack := cfg.CompositionSlack
	if slack == 0 { //dplint:ignore floateq config sentinel: an unset CompositionSlack field is the exact zero value
		slack = 1e-6
	}
	n := float64(d.Len())
	// Replace-one L2 sensitivity of the clipped average gradient:
	// one example's contribution moves by at most 2·C/n.
	sens := 2 * cfg.ClipNorm / n
	sigma := sens * math.Sqrt(2*math.Log(1.25/cfg.StepDelta)) / cfg.StepEpsilon
	theta := make([]float64, dim)
	sum := make([]float64, dim)
	var acct mechanism.Accountant
	//dp:loopbound k=cfg.Steps
	for t := 0; t < cfg.Steps; t++ {
		for j := range sum {
			sum[j] = 0
		}
		for _, e := range d.Examples {
			gi := grad(theta, e)
			if len(gi) != dim {
				return nil, fmt.Errorf("learn: NoisyGD gradient dimension %d != %d", len(gi), dim)
			}
			// Clip in place on a copy to avoid aliasing surprises.
			norm := mathx.L2Norm(gi)
			scale := 1.0
			if norm > cfg.ClipNorm {
				scale = cfg.ClipNorm / norm
			}
			for j := range sum {
				sum[j] += gi[j] * scale
			}
		}
		for j := range theta {
			avg := sum[j]/n + g.Normal(0, sigma)
			theta[j] -= cfg.LearningRate * avg
		}
		if cfg.ProjectRadius > 0 {
			ProjectL2(theta, cfg.ProjectRadius)
		}
		acct.SpendDetail(mechanism.Guarantee{Epsilon: cfg.StepEpsilon, Delta: cfg.StepDelta}, mechanism.SpendMeta{
			Mechanism:   "gaussian",
			Sensitivity: sens,
			Outcomes:    dim,
		})
	}
	// Compose: basic vs advanced on the pure-ε part is inapplicable here
	// (δ > 0), so compare basic against the advanced bound applied to the
	// ε parts with the δs added up.
	basic := acct.BasicComposition()
	k := float64(cfg.Steps)
	advEps := cfg.StepEpsilon*math.Sqrt(2*k*math.Log(1/slack)) + k*cfg.StepEpsilon*(math.Exp(cfg.StepEpsilon)-1)
	total := basic
	if advEps < basic.Epsilon {
		total = mechanism.Guarantee{Epsilon: advEps, Delta: basic.Delta + slack}
	}
	return &NoisyGDResult{Theta: theta, Guarantee: total}, nil
}

// LogisticGradient returns the per-example gradient of the (unregularized)
// logistic loss for use with NoisyGD.
func LogisticGradient(theta []float64, e dataset.Example) []float64 {
	m := e.Y * mathx.Dot(theta, e.X)
	c := -e.Y * mathx.Sigmoid(-m)
	out := make([]float64, len(theta))
	for j := range out {
		out[j] = c * e.X[j]
	}
	return out
}

// SquaredGradient returns the per-example gradient of the squared loss
// (θ·x − y)² for use with NoisyGD.
func SquaredGradient(theta []float64, e dataset.Example) []float64 {
	r := mathx.Dot(theta, e.X) - e.Y
	out := make([]float64, len(theta))
	for j := range out {
		out[j] = 2 * r * e.X[j]
	}
	return out
}
