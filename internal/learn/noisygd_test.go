package learn

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestNoisyGDValidation(t *testing.T) {
	g := rng.New(1)
	d := dataset.LogisticModel{Weights: []float64{1}}.Generate(10, g)
	base := NoisyGDConfig{Steps: 5, LearningRate: 0.1, ClipNorm: 1, StepEpsilon: 0.5, StepDelta: 1e-6}
	cases := []NoisyGDConfig{
		{},
		{Steps: 5, LearningRate: 0.1, ClipNorm: 0, StepEpsilon: 0.5, StepDelta: 1e-6},
		{Steps: 5, LearningRate: 0.1, ClipNorm: 1, StepEpsilon: 2, StepDelta: 1e-6}, // eps > 1
		{Steps: 5, LearningRate: 0.1, ClipNorm: 1, StepEpsilon: 0.5, StepDelta: 0},  // delta
		{Steps: 0, LearningRate: 0.1, ClipNorm: 1, StepEpsilon: 0.5, StepDelta: 1e-6},
	}
	for i, cfg := range cases {
		if _, err := NoisyGD(d, 1, LogisticGradient, cfg, g); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
	if _, err := NoisyGD(&dataset.Dataset{}, 1, LogisticGradient, base, g); err == nil {
		t.Error("empty dataset")
	}
}

func TestNoisyGDLearnsWithGenerousBudget(t *testing.T) {
	g := rng.New(3)
	model := dataset.LogisticModel{Weights: []float64{2, -1}, Bias: 0}
	train := model.Generate(3000, g).NormalizeRows()
	test := model.Generate(3000, g).NormalizeRows()
	res, err := NoisyGD(train, 2, LogisticGradient, NoisyGDConfig{
		Steps:        60,
		LearningRate: 0.8,
		ClipNorm:     1,
		StepEpsilon:  0.9,
		StepDelta:    1e-6,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	errRate := ClassificationError(res.Theta, test)
	nonPriv, _ := LogisticRegression(train, 1e-4, GDOptions{MaxIter: 500})
	nonPrivErr := ClassificationError(nonPriv, test)
	if errRate > nonPrivErr+0.07 {
		t.Errorf("NoisyGD error %v far above non-private %v", errRate, nonPrivErr)
	}
	if res.Guarantee.Epsilon <= 0 || res.Guarantee.Delta <= 0 {
		t.Errorf("guarantee = %+v", res.Guarantee)
	}
}

func TestNoisyGDCompositionTighterThanBasic(t *testing.T) {
	g := rng.New(5)
	d := dataset.LogisticModel{Weights: []float64{1}}.Generate(200, g)
	steps := 100
	stepEps := 0.1
	res, err := NoisyGD(d, 1, LogisticGradient, NoisyGDConfig{
		Steps:        steps,
		LearningRate: 0.1,
		ClipNorm:     1,
		StepEpsilon:  stepEps,
		StepDelta:    1e-7,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	basicEps := float64(steps) * stepEps
	if res.Guarantee.Epsilon >= basicEps {
		t.Errorf("composed eps %v not tighter than basic %v", res.Guarantee.Epsilon, basicEps)
	}
	// δ accumulates: k·δ₀ + slack.
	wantDelta := float64(steps)*1e-7 + 1e-6
	if !mathx.AlmostEqual(res.Guarantee.Delta, wantDelta, 1e-9) {
		t.Errorf("delta = %v, want %v", res.Guarantee.Delta, wantDelta)
	}
}

func TestNoisyGDProjection(t *testing.T) {
	g := rng.New(7)
	d := dataset.LinearModel{Weights: []float64{5}, Noise: 0.1}.Generate(200, g)
	res, err := NoisyGD(d, 1, SquaredGradient, NoisyGDConfig{
		Steps:         40,
		LearningRate:  0.3,
		ClipNorm:      2,
		StepEpsilon:   1,
		StepDelta:     1e-6,
		ProjectRadius: 0.5,
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if mathx.L2Norm(res.Theta) > 0.5+1e-9 {
		t.Errorf("iterate escaped the projection ball: %v", res.Theta)
	}
}

func TestNoisyGDMoreNoiseAtSmallerEpsilon(t *testing.T) {
	// Across repetitions, the variance of the final iterate must grow as
	// the per-step budget shrinks.
	g := rng.New(9)
	model := dataset.LinearModel{Weights: []float64{1}, Noise: 0.05}
	d := model.Generate(500, g)
	spread := func(stepEps float64) float64 {
		var w mathx.Welford
		for r := 0; r < 25; r++ {
			res, err := NoisyGD(d, 1, SquaredGradient, NoisyGDConfig{
				Steps:        20,
				LearningRate: 0.2,
				ClipNorm:     2,
				StepEpsilon:  stepEps,
				StepDelta:    1e-6,
			}, g)
			if err != nil {
				t.Fatal(err)
			}
			w.Add(res.Theta[0])
		}
		return w.Variance()
	}
	tight := spread(0.02)
	loose := spread(1.0)
	if loose >= tight {
		t.Errorf("variance at eps=1 (%v) not below eps=0.02 (%v)", loose, tight)
	}
}

func TestGradientHelpers(t *testing.T) {
	theta := []float64{0.5, -1}
	e := dataset.Example{X: []float64{1, 2}, Y: 1}
	// Logistic gradient: −y·σ(−m)·x with m = y·θ·x = −1.5.
	m := -1.5
	c := -mathx.Sigmoid(-m)
	lg := LogisticGradient(theta, e)
	if !mathx.AlmostEqual(lg[0], c*1, 1e-12) || !mathx.AlmostEqual(lg[1], c*2, 1e-12) {
		t.Errorf("LogisticGradient = %v", lg)
	}
	// Squared gradient: 2(θ·x − y)·x = 2(−1.5−1)x = −5x.
	sg := SquaredGradient(theta, e)
	if !mathx.AlmostEqual(sg[0], -5, 1e-12) || !mathx.AlmostEqual(sg[1], -10, 1e-12) {
		t.Errorf("SquaredGradient = %v", sg)
	}
}
