package learn

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

// This file implements differentially-private principal component
// analysis by symmetric input perturbation (the SULQ/AG-style approach
// analyzed by Imtiaz & Sarwate and Dwork et al.): compute the second-
// moment matrix of row-normalized data, add symmetric Laplace noise
// calibrated to its replace-one sensitivity, and eigendecompose the
// noisy matrix. Post-processing makes the released subspace ε-DP.

// PCAResult holds a (private or exact) principal component analysis.
type PCAResult struct {
	// Values are the eigenvalues of the (noisy) second-moment matrix in
	// descending order.
	Values []float64
	// Components holds the matching eigenvectors as columns.
	Components *linalg.Matrix
	// Guarantee is the privacy guarantee of the release ((0,0) for the
	// non-private variant).
	Guarantee mechanism.Guarantee
}

// SecondMomentMatrix returns C = (1/n)·Σ xᵢ·xᵢᵀ for the dataset. Rows
// should be normalized (‖x‖₂ ≤ 1) for the privacy calibration to apply.
func SecondMomentMatrix(d *dataset.Dataset) *linalg.Matrix {
	n, dim := d.Len(), d.Dim()
	c := linalg.NewMatrix(dim, dim)
	for _, e := range d.Examples {
		for i := 0; i < dim; i++ {
			if e.X[i] == 0 { //dplint:ignore floateq sparsity skip: an exactly-zero coordinate contributes nothing either way
				continue
			}
			for j := i; j < dim; j++ {
				c.Set(i, j, c.At(i, j)+e.X[i]*e.X[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := 0; j <= i; j++ {
			if i != j {
				c.Set(i, j, c.At(j, i))
			}
		}
	}
	return c.Scale(1 / float64(n))
}

// PCA computes the exact (non-private) eigendecomposition of the
// second-moment matrix.
func PCA(d *dataset.Dataset) (*PCAResult, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("learn: PCA on empty dataset")
	}
	vals, vecs, err := linalg.JacobiEigen(SecondMomentMatrix(d), 1e-12, 200)
	if err != nil {
		return nil, err
	}
	return &PCAResult{Values: vals, Components: vecs}, nil
}

// PrivatePCA computes an ε-DP eigendecomposition by symmetric input
// perturbation. Rows MUST have ‖x‖₂ ≤ 1 (call dataset.NormalizeRows
// first). Replacing one row changes the second-moment matrix by
// (x·xᵀ − x′·x′ᵀ)/n, and ‖x·xᵀ‖₁ = (Σ|xᵢ|)² ≤ d·‖x‖₂² ≤ d by
// Cauchy–Schwarz, so the entrywise-L1 sensitivity is ΔL1 = 2d/n.
// Laplace noise of scale Δ/ε added to the upper triangle (mirrored to
// keep the matrix symmetric) therefore gives ε-DP, and the
// eigendecomposition of the noisy matrix is post-processing.
func PrivatePCA(d *dataset.Dataset, epsilon float64, g *rng.RNG) (*PCAResult, error) {
	if d == nil || d.Len() == 0 {
		return nil, errors.New("learn: PrivatePCA on empty dataset")
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("learn: PrivatePCA requires epsilon > 0")
	}
	for _, e := range d.Examples {
		norm := 0.0
		for _, v := range e.X {
			norm += v * v
		}
		if norm > 1+1e-9 {
			return nil, errors.New("learn: PrivatePCA requires row norms <= 1 (use dataset.NormalizeRows)")
		}
	}
	dim := d.Dim()
	c := SecondMomentMatrix(d)
	// ΔL1 = 2·d/n: ‖xxᵀ‖₁ = (Σ|xᵢ|)² ≤ d·‖x‖₂² ≤ d for each of the two
	// swapped rows, divided by n.
	sens := 2 * float64(dim) / float64(d.Len())
	scale := sens / epsilon
	noisy := c.Clone()
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			z := g.Laplace(0, scale)
			noisy.Set(i, j, noisy.At(i, j)+z)
			if i != j {
				noisy.Set(j, i, noisy.At(j, i)+z)
			}
		}
	}
	vals, vecs, err := linalg.JacobiEigen(noisy, 1e-12, 200)
	if err != nil {
		return nil, err
	}
	return &PCAResult{
		Values:     vals,
		Components: vecs,
		Guarantee:  mechanism.Guarantee{Epsilon: epsilon},
	}, nil
}

// CapturedVariance returns the fraction of the TRUE second-moment trace
// captured by projecting onto the top-k released components:
// Σᵢ≤k vᵢᵀ·C·vᵢ / tr(C). It is the utility metric of the DP-PCA
// literature.
func CapturedVariance(trueMoment *linalg.Matrix, components *linalg.Matrix, k int) float64 {
	dim := trueMoment.Rows()
	if k > components.Cols() {
		k = components.Cols()
	}
	var trace float64
	for i := 0; i < dim; i++ {
		trace += trueMoment.At(i, i)
	}
	if trace == 0 { //dplint:ignore floateq degenerate moment matrix: bitwise-zero trace only for the all-zero dataset
		return 0
	}
	var captured float64
	for c := 0; c < k; c++ {
		v := components.Col(c)
		cv := trueMoment.MulVec(v)
		var q float64
		for i := range v {
			q += v[i] * cv[i]
		}
		captured += q
	}
	return captured / trace
}
