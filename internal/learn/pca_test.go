package learn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// anisotropicData generates rows concentrated along a known direction,
// normalized into the unit ball.
func anisotropicData(g *rng.RNG, n int) *dataset.Dataset {
	d := &dataset.Dataset{}
	dir := []float64{3, 1, 0.2} // dominant direction before normalization
	dirNorm := mathx.L2Norm(dir)
	unit := []float64{dir[0] / dirNorm, dir[1] / dirNorm, dir[2] / dirNorm}
	for i := 0; i < n; i++ {
		t := g.Normal(0, 0.5)
		x := make([]float64, 3)
		for j := range x {
			x[j] = t*unit[j] + g.Normal(0, 0.05)
		}
		d.Append(dataset.Example{X: x})
	}
	return d.NormalizeRows()
}

func TestSecondMomentMatrix(t *testing.T) {
	d := dataset.New([]dataset.Example{
		{X: []float64{1, 0}},
		{X: []float64{0, 1}},
	})
	c := SecondMomentMatrix(d)
	// C = (e1e1ᵀ + e2e2ᵀ)/2 = I/2.
	if !mathx.AlmostEqual(c.At(0, 0), 0.5, 1e-12) || !mathx.AlmostEqual(c.At(1, 1), 0.5, 1e-12) ||
		!mathx.AlmostEqual(c.At(0, 1), 0, 1e-12) {
		t.Errorf("C = %v", c)
	}
	if !c.IsSymmetric(1e-12) {
		t.Error("C must be symmetric")
	}
}

func TestPCARecoveriesDominantDirection(t *testing.T) {
	g := rng.New(1)
	d := anisotropicData(g, 2000)
	res, err := PCA(d)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Components.Col(0)
	dir := []float64{3, 1, 0.2}
	dirNorm := mathx.L2Norm(dir)
	var dot float64
	for j := range top {
		dot += top[j] * dir[j] / dirNorm
	}
	if math.Abs(dot) < 0.99 {
		t.Errorf("top component misaligned: |cos| = %v", math.Abs(dot))
	}
	// Eigenvalues descending and non-negative for a Gram matrix.
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] > res.Values[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted")
		}
	}
	if res.Values[len(res.Values)-1] < -1e-10 {
		t.Error("second-moment matrix should be PSD")
	}
}

func TestPrivatePCAValidation(t *testing.T) {
	g := rng.New(3)
	if _, err := PrivatePCA(&dataset.Dataset{}, 1, g); err == nil {
		t.Error("empty dataset")
	}
	d := anisotropicData(g, 50)
	if _, err := PrivatePCA(d, 0, g); err == nil {
		t.Error("epsilon")
	}
	// Unnormalized rows rejected.
	big := dataset.New([]dataset.Example{{X: []float64{3, 0, 0}}})
	if _, err := PrivatePCA(big, 1, g); err == nil {
		t.Error("row norm > 1 must be rejected")
	}
}

func TestPrivatePCAApproachesExact(t *testing.T) {
	g := rng.New(5)
	d := anisotropicData(g, 4000)
	trueC := SecondMomentMatrix(d)
	exact, err := PCA(d)
	if err != nil {
		t.Fatal(err)
	}
	exactVar := CapturedVariance(trueC, exact.Components, 1)
	// Generous ε: captured variance of the private top component must be
	// close to the exact one.
	res, err := PrivatePCA(d, 50, g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guarantee.Epsilon != 50 {
		t.Error("guarantee")
	}
	privVar := CapturedVariance(trueC, res.Components, 1)
	if privVar < exactVar-0.05 {
		t.Errorf("private captured variance %v far below exact %v", privVar, exactVar)
	}
}

func TestPrivatePCAUtilityImprovesWithEpsilon(t *testing.T) {
	g := rng.New(7)
	d := anisotropicData(g, 1000)
	trueC := SecondMomentMatrix(d)
	avgVar := func(eps float64) float64 {
		var w mathx.Welford
		for r := 0; r < 20; r++ {
			res, err := PrivatePCA(d, eps, g)
			if err != nil {
				t.Fatal(err)
			}
			w.Add(CapturedVariance(trueC, res.Components, 1))
		}
		return w.Mean()
	}
	weak := avgVar(0.05)
	strong := avgVar(20)
	if strong <= weak {
		t.Errorf("captured variance at eps=20 (%v) not above eps=0.05 (%v)", strong, weak)
	}
}

func TestCapturedVarianceBounds(t *testing.T) {
	g := rng.New(9)
	d := anisotropicData(g, 500)
	trueC := SecondMomentMatrix(d)
	res, err := PCA(d)
	if err != nil {
		t.Fatal(err)
	}
	// Full basis captures everything.
	full := CapturedVariance(trueC, res.Components, 3)
	if !mathx.AlmostEqual(full, 1, 1e-9) {
		t.Errorf("full captured variance = %v", full)
	}
	one := CapturedVariance(trueC, res.Components, 1)
	if one <= 0 || one > 1+1e-12 {
		t.Errorf("k=1 captured variance = %v", one)
	}
	// k beyond the dimension clamps.
	if CapturedVariance(trueC, res.Components, 10) != full {
		t.Error("k clamp")
	}
}
