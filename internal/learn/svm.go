package learn

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/rng"
)

// HuberHingeLoss is the Huberized (smoothed) hinge loss of Chaudhuri,
// Monteleoni & Sarwate: a differentiable surrogate for the SVM hinge, as
// required by their objective-perturbation analysis. With half-width h
// and margin m = y·θ·x:
//
//	l(m) = 0                         if m > 1 + h
//	l(m) = (1 + h − m)²/(4h)         if |1 − m| ≤ h
//	l(m) = 1 − m                     if m < 1 − h
type HuberHingeLoss struct {
	// H is the smoothing half-width (Chaudhuri et al. use 0.5).
	H float64
}

// Loss implements Loss.
func (l HuberHingeLoss) Loss(theta []float64, e dataset.Example) float64 {
	if l.H <= 0 {
		panic("learn: HuberHingeLoss requires H > 0")
	}
	m := e.Y * mathx.Dot(theta, e.X)
	switch {
	case m > 1+l.H:
		return 0
	case m < 1-l.H:
		return 1 - m
	default:
		d := 1 + l.H - m
		return d * d / (4 * l.H)
	}
}

// Margin derivative dl/dm, used by the gradient.
func (l HuberHingeLoss) dLoss(m float64) float64 {
	switch {
	case m > 1+l.H:
		return 0
	case m < 1-l.H:
		return -1
	default:
		return -(1 + l.H - m) / (2 * l.H)
	}
}

// Bound implements Loss (unbounded without clipping; bounded once ‖θ‖
// and ‖x‖ are).
func (HuberHingeLoss) Bound() float64 { return math.Inf(1) }

// Name implements Loss.
func (l HuberHingeLoss) Name() string { return fmt.Sprintf("huber-hinge(%.3g)", l.H) }

// HuberSVMObjective returns the L2-regularized Huber-SVM objective and
// gradient on d: (1/n)Σ l(yᵢθ·xᵢ) + (λ/2)‖θ‖².
func HuberSVMObjective(d *dataset.Dataset, h, lambda float64) func([]float64) (float64, []float64) {
	loss := HuberHingeLoss{H: h}
	n := float64(d.Len())
	return func(theta []float64) (float64, []float64) {
		grad := make([]float64, len(theta))
		var val mathx.KahanSum
		for _, e := range d.Examples {
			m := e.Y * mathx.Dot(theta, e.X)
			val.Add(loss.Loss(theta, e))
			c := loss.dLoss(m) * e.Y
			for j := range grad {
				grad[j] += c * e.X[j]
			}
		}
		v := val.Sum() / n
		for j := range grad {
			grad[j] = grad[j]/n + lambda*theta[j]
		}
		norm := mathx.L2Norm(theta)
		v += lambda / 2 * norm * norm
		return v, grad
	}
}

// HuberSVM fits an L2-regularized Huberized SVM by gradient descent.
func HuberSVM(d *dataset.Dataset, h, lambda float64, opts GDOptions) ([]float64, error) {
	if d.Len() == 0 {
		panic("learn: HuberSVM on empty dataset")
	}
	if h <= 0 || lambda < 0 {
		panic("learn: HuberSVM requires h > 0 and lambda >= 0")
	}
	x0 := make([]float64, d.Dim())
	return MinimizeGD(HuberSVMObjective(d, h, lambda), x0, opts)
}

// OutputPerturbationHuberSVM privately fits the Huber-SVM by the CMS
// sensitivity method (sensitivity 2/(nλ), same as logistic since both
// losses are 1-Lipschitz in the margin). The release is ε-DP.
func OutputPerturbationHuberSVM(d *dataset.Dataset, h, lambda, epsilon float64, opts GDOptions, g *rng.RNG) ([]float64, error) {
	if lambda <= 0 || epsilon <= 0 {
		return nil, fmt.Errorf("learn: output perturbation requires lambda > 0 and epsilon > 0")
	}
	theta, err := HuberSVM(d, h, lambda, opts)
	if err != nil && err != ErrNotConverged {
		return nil, err
	}
	scale := 2 / (float64(d.Len()) * lambda * epsilon)
	noise := sphereNoise(d.Dim(), scale, g)
	for i := range theta {
		theta[i] += noise[i]
	}
	return theta, nil
}

// ObjectivePerturbationHuberSVM privately fits the Huber-SVM by CMS
// objective perturbation. The smoothness constant of the Huber hinge is
// c = 1/(2h) (the maximum of |l”|). The release is ε-DP.
func ObjectivePerturbationHuberSVM(d *dataset.Dataset, h, lambda, epsilon float64, opts GDOptions, g *rng.RNG) ([]float64, error) {
	if lambda <= 0 || epsilon <= 0 || h <= 0 {
		return nil, fmt.Errorf("learn: objective perturbation requires positive h, lambda, epsilon")
	}
	n := float64(d.Len())
	c := 1 / (2 * h)
	epsPrime := epsilon - math.Log(1+2*c/(n*lambda)+c*c/(n*n*lambda*lambda))
	delta := 0.0
	if epsPrime <= 0 {
		delta = c/(n*(math.Exp(epsilon/4)-1)) - lambda
		epsPrime = epsilon / 2
		if delta < 0 {
			delta = 0
		}
	}
	if epsPrime <= 0 {
		return nil, ErrPrivacyBudgetTooSmall
	}
	b := sphereNoise(d.Dim(), 2/epsPrime, g)
	base := HuberSVMObjective(d, h, lambda)
	obj := func(theta []float64) (float64, []float64) {
		v, grad := base(theta)
		for j := range theta {
			v += b[j]*theta[j]/n + delta/2*theta[j]*theta[j]
			grad[j] += b[j]/n + delta*theta[j]
		}
		return v, grad
	}
	x0 := make([]float64, d.Dim())
	theta, err := MinimizeGD(obj, x0, opts)
	if err != nil && err != ErrNotConverged {
		return nil, err
	}
	return theta, nil
}
