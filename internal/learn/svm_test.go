package learn

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mathx"
	"repro/internal/mechanism"
	"repro/internal/rng"
)

func TestHuberHingeLossPieces(t *testing.T) {
	l := HuberHingeLoss{H: 0.5}
	th := []float64{1}
	// m = y·θ·x; choose x to set the margin.
	// m = 2 > 1.5: zero.
	if got := l.Loss(th, ex(1, 2)); got != 0 {
		t.Errorf("flat piece = %v", got)
	}
	// m = 0 < 0.5: linear 1 − m = 1.
	if got := l.Loss(th, ex(1, 0)); !mathx.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("linear piece = %v", got)
	}
	// m = 1: quadratic (1+0.5−1)²/(4·0.5) = 0.125.
	if got := l.Loss(th, ex(1, 1)); !mathx.AlmostEqual(got, 0.125, 1e-12) {
		t.Errorf("quadratic piece = %v", got)
	}
	// Continuity at the knots m = 1±h.
	knotHi := l.Loss(th, ex(1, 1.5))
	if !mathx.AlmostEqual(knotHi, 0, 1e-12) {
		t.Errorf("continuity at 1+h: %v", knotHi)
	}
	knotLo := l.Loss(th, ex(1, 0.5))
	if !mathx.AlmostEqual(knotLo, 0.5, 1e-12) {
		t.Errorf("continuity at 1-h: %v", knotLo)
	}
	if l.Name() == "" || !math.IsInf(l.Bound(), 1) {
		t.Error("metadata")
	}
}

func TestHuberHingeApproximatesHinge(t *testing.T) {
	// The Huberized hinge stays within h/4 of the hinge everywhere (the
	// gap is maximal at margin 1, where hinge = 0 and huber = h/4) and
	// coincides with it outside the smoothing zone (1−h, 1+h).
	hw := 0.5
	l := HuberHingeLoss{H: hw}
	h := HingeLoss{}
	th := []float64{1}
	for _, x := range []float64{-2, -1, 0, 0.4, 0.6, 0.9, 1, 1.1, 1.4, 1.6, 3} {
		e := ex(1, x)
		if math.Abs(l.Loss(th, e)-h.Loss(th, e)) > hw/4+1e-12 {
			t.Errorf("huber-hinge gap at margin %v: %v vs %v", x, l.Loss(th, e), h.Loss(th, e))
		}
		if x <= 1-hw || x >= 1+hw {
			if !mathx.AlmostEqual(l.Loss(th, e), h.Loss(th, e), 1e-12) {
				t.Errorf("outside smoothing zone losses must coincide at margin %v", x)
			}
		}
	}
}

func TestHuberSVMObjectiveGradient(t *testing.T) {
	g := rng.New(1)
	d := dataset.LogisticModel{Weights: []float64{1, -1}}.Generate(60, g)
	obj := HuberSVMObjective(d, 0.5, 0.05)
	theta := []float64{0.4, -0.2}
	_, grad := obj(theta)
	const h = 1e-6
	for j := range theta {
		tp := append([]float64(nil), theta...)
		tm := append([]float64(nil), theta...)
		tp[j] += h
		tm[j] -= h
		fp, _ := obj(tp)
		fm, _ := obj(tm)
		fd := (fp - fm) / (2 * h)
		if !mathx.AlmostEqual(grad[j], fd, 1e-4) {
			t.Errorf("grad[%d] = %v, fd = %v", j, grad[j], fd)
		}
	}
}

func TestHuberSVMRecovers(t *testing.T) {
	g := rng.New(3)
	model := dataset.LogisticModel{Weights: []float64{3, -2}, Bias: 0}
	d := model.Generate(2000, g)
	theta, err := HuberSVM(d, 0.5, 1e-4, GDOptions{MaxIter: 1500, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if theta[0] <= 0 || theta[1] >= 0 {
		t.Fatalf("signs wrong: %v", theta)
	}
	if errRate := ClassificationError(theta, d); errRate > 0.35 {
		t.Errorf("training error = %v", errRate)
	}
}

func TestOutputPerturbationHuberSVM(t *testing.T) {
	g := rng.New(5)
	model := dataset.LogisticModel{Weights: []float64{2, -1}}
	d := model.Generate(1500, g).NormalizeRows()
	// Huge ε ≈ non-private.
	thPriv, err := OutputPerturbationHuberSVM(d, 0.5, 0.01, 1e6, GDOptions{MaxIter: 800}, g)
	if err != nil {
		t.Fatal(err)
	}
	thPlain, err := HuberSVM(d, 0.5, 0.01, GDOptions{MaxIter: 800})
	if err != nil && err != ErrNotConverged {
		t.Fatal(err)
	}
	var diff float64
	for i := range thPriv {
		diff += math.Abs(thPriv[i] - thPlain[i])
	}
	if diff > 0.01 {
		t.Errorf("huge-ε output perturbation diff = %v", diff)
	}
	if _, err := OutputPerturbationHuberSVM(d, 0.5, 0, 1, GDOptions{}, g); err == nil {
		t.Error("lambda=0 must error")
	}
}

func TestObjectivePerturbationHuberSVM(t *testing.T) {
	g := rng.New(7)
	model := dataset.LogisticModel{Weights: []float64{2, -1}}
	d := model.Generate(1500, g).NormalizeRows()
	test := model.Generate(1500, g).NormalizeRows()
	th, err := ObjectivePerturbationHuberSVM(d, 0.5, 0.01, 50, GDOptions{MaxIter: 800}, g)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := HuberSVM(d, 0.5, 0.01, GDOptions{MaxIter: 800})
	if err != nil && err != ErrNotConverged {
		t.Fatal(err)
	}
	if ClassificationError(th, test) > ClassificationError(plain, test)+0.05 {
		t.Errorf("large-ε objective perturbation much worse: %v vs %v",
			ClassificationError(th, test), ClassificationError(plain, test))
	}
	// Tiny lambda exercises the Δ-adjustment path without error.
	if _, err := ObjectivePerturbationHuberSVM(d, 0.5, 1e-7, 0.1, GDOptions{MaxIter: 200}, g); err != nil {
		t.Errorf("adjusted path failed: %v", err)
	}
	if _, err := ObjectivePerturbationHuberSVM(d, 0, 0.01, 1, GDOptions{}, g); err == nil {
		t.Error("h=0 must error")
	}
}

func TestPrivateSelect(t *testing.T) {
	g := rng.New(9)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	val := model.Generate(400, g)
	cands := []Candidate{
		{Name: "good", Theta: []float64{1}},
		{Name: "bad", Theta: []float64{-1}},
		{Name: "zero", Theta: []float64{0}},
	}
	picks := map[string]int{}
	acct := &mechanism.Accountant{}
	for i := 0; i < 200; i++ {
		c, err := PrivateSelect(cands, ZeroOneLoss{}, val, 5, acct, g)
		if err != nil {
			t.Fatal(err)
		}
		picks[c.Name]++
	}
	if picks["good"] < 190 {
		t.Errorf("good candidate picked only %d/200: %v", picks["good"], picks)
	}
	if acct.Count() != 200 {
		t.Errorf("each selection must register a spend, got %d", acct.Count())
	}
	if got := acct.BasicComposition().Epsilon; math.Abs(got-200*5) > 1e-6 {
		t.Errorf("basic composition = %v, want 1000", got)
	}
}

func TestPrivateSelectValidation(t *testing.T) {
	g := rng.New(11)
	val := dataset.LogisticModel{Weights: []float64{1}}.Generate(10, g)
	cands := []Candidate{{Name: "a", Theta: []float64{1}}}
	if _, err := PrivateSelect(nil, ZeroOneLoss{}, val, 1, nil, g); err == nil {
		t.Error("no candidates")
	}
	if _, err := PrivateSelect(cands, ZeroOneLoss{}, &dataset.Dataset{}, 1, nil, g); err == nil {
		t.Error("empty validation")
	}
	if _, err := PrivateSelect(cands, SquaredLoss{}, val, 1, nil, g); err == nil {
		t.Error("unbounded loss")
	}
}

func TestPrivateSelectPrivacyExact(t *testing.T) {
	// The selection's output distribution between neighboring validation
	// sets must satisfy ε exactly. Reconstruct the mechanism to audit.
	g := rng.New(13)
	model := dataset.LogisticModel{Weights: []float64{3}}
	val := model.Generate(50, g)
	nb := val.ReplaceOne(0, dataset.Example{X: []float64{0.9}, Y: -1})
	cands := []Candidate{
		{Theta: []float64{1}}, {Theta: []float64{-1}}, {Theta: []float64{0.2}},
	}
	eps := 0.7
	sens := 1.0 / 50
	quality := func(d *dataset.Dataset, u int) float64 {
		return -EmpiricalRisk(ZeroOneLoss{}, cands[u].Theta, d)
	}
	em, err := mechanism.NewExponential(quality, len(cands), sens, eps/(2*sens))
	if err != nil {
		t.Fatal(err)
	}
	p1 := em.LogProbabilities(val)
	p2 := em.LogProbabilities(nb)
	var worst float64
	for i := range p1 {
		if d := math.Abs(p1[i] - p2[i]); d > worst {
			worst = d
		}
	}
	if worst > eps+1e-9 {
		t.Errorf("selection privacy loss %v exceeds %v", worst, eps)
	}
}

func TestKFoldSplit(t *testing.T) {
	g := rng.New(15)
	train, test := KFoldSplit(10, 3, g)
	if len(train) != 3 || len(test) != 3 {
		t.Fatal("fold count")
	}
	seen := map[int]int{}
	for f := 0; f < 3; f++ {
		if len(train[f])+len(test[f]) != 10 {
			t.Fatalf("fold %d sizes %d+%d", f, len(train[f]), len(test[f]))
		}
		for _, i := range test[f] {
			seen[i]++
		}
		// train and test are disjoint.
		inTest := map[int]bool{}
		for _, i := range test[f] {
			inTest[i] = true
		}
		for _, i := range train[f] {
			if inTest[i] {
				t.Fatalf("index %d in both folds", i)
			}
		}
	}
	// Every index appears in exactly one test fold.
	for i := 0; i < 10; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times in test folds", i, seen[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("k out of range should panic")
		}
	}()
	KFoldSplit(3, 5, g)
}

func TestCrossValidate(t *testing.T) {
	g := rng.New(17)
	model := dataset.LogisticModel{Weights: []float64{3}, Bias: 0}
	d := model.Generate(300, g)
	cv, err := CrossValidate(d, 5, ZeroOneLoss{}, func(train *dataset.Dataset) ([]float64, error) {
		return LogisticRegression(train, 0.01, GDOptions{MaxIter: 200})
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	bayes := model.BayesError(20000, g)
	if cv < bayes-0.05 || cv > bayes+0.15 {
		t.Errorf("CV risk %v far from Bayes %v", cv, bayes)
	}
	if _, err := CrossValidate(d, 500, ZeroOneLoss{}, nil, g); err == nil {
		t.Error("k > n must error")
	}
}

func TestSubset(t *testing.T) {
	d := dataset.New([]dataset.Example{ex(1, 1), ex(-1, 2), ex(1, 3)})
	s := Subset(d, []int{2, 0})
	if s.Len() != 2 || s.Examples[0].X[0] != 3 || s.Examples[1].X[0] != 1 {
		t.Errorf("Subset = %+v", s.Examples)
	}
	// Deep copy.
	s.Examples[0].X[0] = 99
	if d.Examples[2].X[0] == 99 {
		t.Error("Subset must deep-copy")
	}
}
