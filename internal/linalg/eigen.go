package linalg

import (
	"errors"
	"math"
	"sort"
)

// ErrNotSymmetric is returned by the eigensolver for non-symmetric input.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// JacobiEigen computes the full eigendecomposition of a symmetric matrix
// by the cyclic Jacobi rotation method: A = V·diag(values)·Vᵀ with
// orthonormal V. Eigenvalues are returned in descending order with the
// matching eigenvectors as the COLUMNS of the returned matrix.
//
// Jacobi is quadratic per sweep but unconditionally stable and exact to
// machine precision on the small, dense, symmetric matrices this library
// meets (covariance matrices of modest dimension).
func JacobiEigen(a *Matrix, tol float64, maxSweeps int) ([]float64, *Matrix, error) {
	if a.rows != a.cols {
		return nil, nil, ErrNotSymmetric
	}
	if !a.IsSymmetric(1e-10 * math.Max(1, a.MaxAbs())) {
		return nil, nil, ErrNotSymmetric
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	n := a.rows
	w := a.Clone()
	v := Identity(n)
	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return math.Sqrt(s)
	}
	scale := math.Max(1, a.MaxAbs())
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol*scale/float64(n*n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation to W on both sides.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns alongside.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}
