package linalg

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		2, 0, 0,
		0, 5, 0,
		0, 0, 1,
	})
	vals, vecs, err := JacobiEigen(a, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, 1}
	for i := range want {
		if !mathx.AlmostEqual(vals[i], want[i], 1e-10) {
			t.Errorf("vals[%d] = %v, want %v (descending)", i, vals[i], want[i])
		}
	}
	// Eigenvector of 5 is e2 up to sign.
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Errorf("top eigenvector = %v", vecs.Col(0))
	}
}

func TestJacobiEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := JacobiEigen(a, 1e-13, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(vals[0], 3, 1e-10) || !mathx.AlmostEqual(vals[1], 1, 1e-10) {
		t.Errorf("vals = %v", vals)
	}
	// Top eigenvector ∝ (1,1)/√2.
	v := vecs.Col(0)
	if !mathx.AlmostEqual(math.Abs(v[0]), 1/math.Sqrt2, 1e-9) || !mathx.AlmostEqual(math.Abs(v[1]), 1/math.Sqrt2, 1e-9) {
		t.Errorf("top vector = %v", v)
	}
}

func TestJacobiEigenReconstruction(t *testing.T) {
	// Random SPD matrix: V·diag(λ)·Vᵀ must reconstruct A, V orthonormal,
	// A·v = λ·v per pair.
	g := rng.New(1)
	a := randomSPD(g, 6)
	vals, vecs, err := JacobiEigen(a, 1e-13, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Descending order.
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
	// Orthonormality: VᵀV = I.
	vtv := vecs.T().Mul(vecs)
	if vtv.Sub(Identity(6)).MaxAbs() > 1e-9 {
		t.Errorf("VᵀV != I, max err %v", vtv.Sub(Identity(6)).MaxAbs())
	}
	// Per-pair A·v = λ·v.
	for c := 0; c < 6; c++ {
		v := vecs.Col(c)
		av := a.MulVec(v)
		for i := range v {
			if !mathx.AlmostEqual(av[i], vals[c]*v[i], 1e-8) {
				t.Fatalf("A·v != λ·v at pair %d, row %d: %v vs %v", c, i, av[i], vals[c]*v[i])
			}
		}
	}
	// Reconstruction.
	d := NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		d.Set(i, i, vals[i])
	}
	recon := vecs.Mul(d).Mul(vecs.T())
	if recon.Sub(a).MaxAbs() > 1e-8 {
		t.Errorf("VΛVᵀ != A, max err %v", recon.Sub(a).MaxAbs())
	}
}

func TestJacobiEigenTraceInvariant(t *testing.T) {
	g := rng.New(3)
	a := randomSPD(g, 5)
	vals, _, err := JacobiEigen(a, 1e-13, 200)
	if err != nil {
		t.Fatal(err)
	}
	var trace, sum float64
	for i := 0; i < 5; i++ {
		trace += a.At(i, i)
		sum += vals[i]
	}
	if !mathx.AlmostEqual(trace, sum, 1e-9) {
		t.Errorf("trace %v != eigenvalue sum %v", trace, sum)
	}
}

func TestJacobiEigenRejectsNonSymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := JacobiEigen(a, 1e-12, 100); err != ErrNotSymmetric {
		t.Errorf("expected ErrNotSymmetric, got %v", err)
	}
	b := NewMatrix(2, 3)
	if _, _, err := JacobiEigen(b, 1e-12, 100); err != ErrNotSymmetric {
		t.Errorf("non-square: expected ErrNotSymmetric, got %v", err)
	}
}

func TestJacobiEigenNegativeEigenvalues(t *testing.T) {
	// Indefinite symmetric matrix [[0,1],[1,0]]: eigenvalues ±1.
	a := NewMatrixFrom(2, 2, []float64{0, 1, 1, 0})
	vals, _, err := JacobiEigen(a, 1e-13, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(vals[0], 1, 1e-10) || !mathx.AlmostEqual(vals[1], -1, 1e-10) {
		t.Errorf("vals = %v", vals)
	}
}
