package linalg

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors the symmetric positive definite matrix a. It returns
// ErrNotPositiveDefinite if a pivot is non-positive (to within a small
// tolerance scaled by the matrix magnitude). Only the lower triangle of a
// is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.rows != a.cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.rows
	l := NewMatrix(n, n)
	tol := 1e-14 * math.Max(1, a.MaxAbs())
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= tol {
			return nil, ErrNotPositiveDefinite
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }

// Solve solves A·x = b given the factorization A = L·Lᵀ.
func (c *Cholesky) Solve(b []float64) []float64 {
	y := forwardSolve(c.l, b)
	return backSolveTransposed(c.l, y)
}

// LogDet returns log det A = 2·Σ log L[i][i].
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.l.rows; i++ {
		s += math.Log(c.l.At(i, i))
	}
	return 2 * s
}

// LU holds a partially-pivoted LU factorization P·A = L·U with L unit
// lower triangular stored below the diagonal of lu and U on and above it.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// NewLU factors the square matrix a with partial pivoting. It returns
// ErrSingular if a zero (or subnormal) pivot is encountered.
func NewLU(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		maxv := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				maxv, p = v, i
			}
		}
		pivot[k] = p
		if maxv < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			sign = -sign
			for j := 0; j < n; j++ {
				lu.data[k*n+j], lu.data[p*n+j] = lu.data[p*n+j], lu.data[k*n+j]
			}
		}
		pv := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pv
			lu.Set(i, k, m)
			if m == 0 { //dplint:ignore floateq sparsity skip: an exactly-zero multiplier eliminates nothing
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.data[i*n+j] -= m * lu.data[k*n+j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve solves A·x = b using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: LU.Solve dimension mismatch %d vs %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x
}

// Det returns det A (sign · product of U's diagonal).
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse returns A⁻¹ by solving against each unit vector.
func (f *LU) Inverse() *Matrix {
	n := f.lu.rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// QR holds a Householder QR factorization A = Q·R of an m×n matrix with
// m >= n. Q is represented implicitly by the Householder vectors.
type QR struct {
	qr   *Matrix   // Householder vectors below diagonal, R on/above
	rdiy []float64 // diagonal of R
	tol  float64   // rank tolerance scaled to the input magnitude
}

// NewQR factors the m×n matrix a (m >= n) by Householder reflections.
func NewQR(a *Matrix) *QR {
	m, n := a.rows, a.cols
	if m < n {
		panic("linalg: QR requires rows >= cols")
	}
	qr := a.Clone()
	rdiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of column k below (and including) the diagonal.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 { //dplint:ignore floateq exactly-zero column norm means a zero column; the reflector is skipped
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiy: rdiag, tol: 1e-12 * math.Max(1, a.MaxAbs()) * float64(m)}
}

// Solve finds the least-squares solution x minimizing ‖A·x − b‖₂.
// It returns ErrSingular if A is rank deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.rows, f.qr.cols
	if len(b) != m {
		panic(fmt.Sprintf("linalg: QR.Solve dimension mismatch %d vs %d", len(b), m))
	}
	for _, d := range f.rdiy {
		if math.Abs(d) < f.tol {
			return nil, ErrSingular
		}
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Householder reflections: y = Qᵀ b.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 { //dplint:ignore floateq exactly-zero Householder pivot means no reflection was stored for this column
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiy[i]
	}
	return x, nil
}

// forwardSolve solves L·y = b for lower-triangular L.
func forwardSolve(l *Matrix, b []float64) []float64 {
	n := l.rows
	if len(b) != n {
		panic("linalg: forwardSolve dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// backSolveTransposed solves Lᵀ·x = y for lower-triangular L.
func backSolveTransposed(l *Matrix, y []float64) []float64 {
	n := l.rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive definite A via Cholesky.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Solve(b), nil
}

// LeastSquares returns argmin_x ‖A·x − b‖₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return NewQR(a).Solve(b)
}

// RidgeSolve returns argmin_x ‖A·x − b‖₂² + lambda·‖x‖₂², solved via the
// normal equations (AᵀA + λI)x = Aᵀb with Cholesky. lambda must be
// non-negative; a positive lambda guarantees solvability.
func RidgeSolve(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		panic("linalg: RidgeSolve requires lambda >= 0")
	}
	g := a.AtA()
	for i := 0; i < g.rows; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	return SolveSPD(g, a.MulVecT(b))
}
