package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
	"repro/internal/rng"
)

func randomMatrix(g *rng.RNG, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, g.Normal(0, 1))
		}
	}
	return m
}

func randomSPD(g *rng.RNG, n int) *Matrix {
	a := randomMatrix(g, n+3, n)
	spd := a.AtA()
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+0.5)
	}
	return spd
}

func vecAlmostEqual(t *testing.T, got, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if !mathx.AlmostEqual(got[i], want[i], tol) {
			t.Fatalf("%s[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dims")
	}
	if m.At(1, 2) != 6 {
		t.Error("At")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set")
	}
	row := m.Row(1)
	vecAlmostEqual(t, row, []float64{4, 5, 6}, 0, "Row")
	col := m.Col(1)
	vecAlmostEqual(t, col, []float64{2, 5}, 0, "Col")
	// Row/Col are copies.
	row[0] = 100
	if m.At(1, 0) == 100 {
		t.Error("Row should copy")
	}
}

func TestMatrixPanics(t *testing.T) {
	cases := []func(){
		func() { NewMatrix(0, 1) },
		func() { NewMatrixFrom(2, 2, []float64{1}) },
		func() { NewMatrix(2, 2).At(2, 0) },
		func() { NewMatrix(2, 2).At(0, -1) },
		func() { NewMatrix(2, 2).Mul(NewMatrix(3, 2)) },
		func() { NewMatrix(2, 2).MulVec([]float64{1}) },
		func() { NewMatrix(2, 2).Add(NewMatrix(2, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTranspose(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("T dims")
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatal("T values")
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	g := rng.New(3)
	a := randomMatrix(g, 4, 4)
	prod := a.Mul(Identity(4))
	if prod.Sub(a).MaxAbs() > 1e-14 {
		t.Error("A·I != A")
	}
	prod2 := Identity(4).Mul(a)
	if prod2.Sub(a).MaxAbs() > 1e-14 {
		t.Error("I·A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	c := a.Mul(b)
	want := NewMatrixFrom(2, 2, []float64{19, 22, 43, 50})
	if c.Sub(want).MaxAbs() > 1e-14 {
		t.Errorf("Mul =\n%v", c)
	}
}

func TestMulVecAndTranspose(t *testing.T) {
	g := rng.New(5)
	a := randomMatrix(g, 5, 3)
	x := []float64{1, -2, 0.5}
	got := a.MulVec(x)
	want := a.Mul(NewMatrixFrom(3, 1, x))
	for i := range got {
		if !mathx.AlmostEqual(got[i], want.At(i, 0), 1e-12) {
			t.Fatal("MulVec mismatch")
		}
	}
	y := []float64{1, 2, 3, 4, 5}
	gotT := a.MulVecT(y)
	wantT := a.T().MulVec(y)
	vecAlmostEqual(t, gotT, wantT, 1e-12, "MulVecT")
}

func TestAtAMatchesExplicit(t *testing.T) {
	g := rng.New(7)
	a := randomMatrix(g, 6, 4)
	gram := a.AtA()
	explicit := a.T().Mul(a)
	if gram.Sub(explicit).MaxAbs() > 1e-12 {
		t.Error("AtA mismatch")
	}
	if !gram.IsSymmetric(1e-12) {
		t.Error("AtA not symmetric")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	g := rng.New(11)
	a := randomSPD(g, 5)
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	recon := l.Mul(l.T())
	if recon.Sub(a).MaxAbs() > 1e-10 {
		t.Errorf("LLᵀ != A, max err %v", recon.Sub(a).MaxAbs())
	}
}

func TestCholeskySolve(t *testing.T) {
	g := rng.New(13)
	a := randomSPD(g, 6)
	xTrue := []float64{1, -1, 2, 0.5, -3, 0}
	b := a.MulVec(xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEqual(t, x, xTrue, 1e-8, "SolveSPD")
}

func TestCholeskyRejectsNonPD(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Errorf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 0, 0, 9})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(c.LogDet(), math.Log(36), 1e-12) {
		t.Errorf("LogDet = %v", c.LogDet())
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		2, 1, 1,
		1, 3, 2,
		1, 0, 0,
	})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	// det by cofactor: expand on last row: 1·(1·2−1·3) = -1
	if !mathx.AlmostEqual(f.Det(), -1, 1e-12) {
		t.Errorf("Det = %v, want -1", f.Det())
	}
	xTrue := []float64{1, 2, 3}
	b := a.MulVec(xTrue)
	x := f.Solve(b)
	vecAlmostEqual(t, x, xTrue, 1e-10, "LU.Solve")
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestLUInverse(t *testing.T) {
	g := rng.New(17)
	a := randomMatrix(g, 5, 5)
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := f.Inverse()
	prod := a.Mul(inv)
	if prod.Sub(Identity(5)).MaxAbs() > 1e-9 {
		t.Errorf("A·A⁻¹ != I, max err %v", prod.Sub(Identity(5)).MaxAbs())
	}
}

func TestQRLeastSquaresExact(t *testing.T) {
	// Square nonsingular system: LS solution is the exact solution.
	g := rng.New(19)
	a := randomMatrix(g, 4, 4)
	xTrue := []float64{2, -1, 0.5, 3}
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEqual(t, x, xTrue, 1e-9, "QR exact")
}

func TestQRLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 with noise-free data: recovery must be exact.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(5, 2)
	b := make([]float64, 5)
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 1 + 2*x
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEqual(t, coef, []float64{1, 2}, 1e-10, "line fit")
}

func TestQRNormalEquationsResidual(t *testing.T) {
	// The LS residual must be orthogonal to the column space: Aᵀ(Ax−b)=0.
	g := rng.New(23)
	a := randomMatrix(g, 10, 3)
	b := make([]float64, 10)
	for i := range b {
		b[i] = g.Normal(0, 1)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	normal := a.MulVecT(r)
	for i, v := range normal {
		if math.Abs(v) > 1e-10 {
			t.Errorf("normal equations residual[%d] = %v", i, v)
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := NewMatrixFrom(3, 2, []float64{1, 1, 2, 2, 3, 3})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestRidgeSolveShrinks(t *testing.T) {
	g := rng.New(29)
	a := randomMatrix(g, 20, 4)
	b := make([]float64, 20)
	for i := range b {
		b[i] = g.Normal(0, 1)
	}
	x0, err := RidgeSolve(a, b, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	xBig, err := RidgeSolve(a, b, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if mathx.L2Norm(xBig) >= mathx.L2Norm(x0) {
		t.Error("large lambda should shrink the solution")
	}
	if mathx.L2Norm(xBig) > 1e-3 {
		t.Errorf("huge lambda solution norm = %v", mathx.L2Norm(xBig))
	}
}

func TestRidgeMatchesLeastSquaresAtZero(t *testing.T) {
	g := rng.New(31)
	a := randomMatrix(g, 12, 3)
	b := make([]float64, 12)
	for i := range b {
		b[i] = g.Normal(0, 1)
	}
	xr, err := RidgeSolve(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	xq, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vecAlmostEqual(t, xr, xq, 1e-7, "ridge@0 vs LS")
}

func TestSolversAgreeProperty(t *testing.T) {
	// Property: for random SPD systems, Cholesky, LU and QR agree.
	g := rng.New(37)
	f := func(seed int64) bool {
		h := rng.New(seed)
		a := randomSPD(h, 4)
		b := []float64{h.Normal(0, 1), h.Normal(0, 1), h.Normal(0, 1), h.Normal(0, 1)}
		x1, err1 := SolveSPD(a, b)
		lu, err2 := NewLU(a)
		if err1 != nil || err2 != nil {
			return false
		}
		x2 := lu.Solve(b)
		x3, err3 := LeastSquares(a, b)
		if err3 != nil {
			return false
		}
		for i := range x1 {
			if !mathx.AlmostEqual(x1[i], x2[i], 1e-7) || !mathx.AlmostEqual(x1[i], x3[i], 1e-7) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: nil}
	_ = g
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{3, 0, 0, 4})
	if !mathx.AlmostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestScaleAddSub(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := a.Scale(2).Sub(a)
	if b.Sub(a).MaxAbs() > 1e-14 {
		t.Error("2A − A != A")
	}
	c := a.Add(a)
	if c.Sub(a.Scale(2)).MaxAbs() > 1e-14 {
		t.Error("A + A != 2A")
	}
}

func BenchmarkMul50(b *testing.B) {
	g := rng.New(1)
	x := randomMatrix(g, 50, 50)
	y := randomMatrix(g, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkCholesky50(b *testing.B) {
	g := rng.New(1)
	a := randomSPD(g, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
