// Package linalg implements the dense linear algebra the learning
// substrate needs: vectors, row-major matrices, a BLAS-like operation
// subset, and direct factorizations (Cholesky, partially-pivoted LU,
// Householder QR) with the triangular solves and least-squares driver
// built on them.
//
// Dimension mismatches are programmer errors and panic; rank and
// conditioning problems are data-dependent and return errors.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a factorization or solve encounters an
// (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// ErrNotPositiveDefinite is returned by Cholesky when the input is not
// symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-filled r×c matrix. It panics if r or c is
// non-positive.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic("linalg: NewMatrix with non-positive dimensions")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// copied. It panics if len(data) != r*c.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: NewMatrixFrom data length %d != %d×%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("linalg: Row index out of range")
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic("linalg: Col index out of range")
	}
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.rows, m.cols, m.data)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns m + other element-wise. Dimensions must match.
func (m *Matrix) Add(other *Matrix) *Matrix {
	m.sameShape(other)
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] += v
	}
	return out
}

// Sub returns m − other element-wise. Dimensions must match.
func (m *Matrix) Sub(other *Matrix) *Matrix {
	m.sameShape(other)
	out := m.Clone()
	for i, v := range other.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

func (m *Matrix) sameShape(other *Matrix) {
	if m.rows != other.rows || m.cols != other.cols {
		panic(fmt.Sprintf("linalg: shape mismatch %d×%d vs %d×%d", m.rows, m.cols, other.rows, other.cols))
	}
}

// Mul returns the matrix product m·other. m.Cols() must equal other.Rows().
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: Mul inner dimension mismatch %d vs %d", m.cols, other.rows))
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 { //dplint:ignore floateq sparsity skip: an exactly-zero factor contributes nothing either way
				continue
			}
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			rowB := other.data[k*other.cols : (k+1)*other.cols]
			for j, b := range rowB {
				rowOut[j] += a * b
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x. len(x) must equal m.Cols().
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns mᵀ·x without forming the transpose. len(x) must equal
// m.Rows().
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("linalg: MulVecT dimension mismatch %d vs %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 { //dplint:ignore floateq sparsity skip: an exactly-zero factor contributes nothing either way
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out
}

// AtA returns mᵀ·m (the Gram matrix), exploiting symmetry.
func (m *Matrix) AtA() *Matrix {
	out := NewMatrix(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a := 0; a < m.cols; a++ {
			ra := row[a]
			if ra == 0 { //dplint:ignore floateq sparsity skip: an exactly-zero factor contributes nothing either way
				continue
			}
			for b := a; b < m.cols; b++ {
				out.data[a*out.cols+b] += ra * row[b]
			}
		}
	}
	for a := 0; a < m.cols; a++ {
		for b := 0; b < a; b++ {
			out.data[a*out.cols+b] = out.data[b*out.cols+a]
		}
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}
