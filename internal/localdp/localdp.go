// Package localdp implements local differential privacy — the per-record
// regime where each individual randomizes their own record before it ever
// reaches the aggregator. In the paper's Figure-1 language, every record
// passes through its OWN small information channel, and the aggregate
// leakage is bounded by composition over records; the package exposes the
// per-record channel matrices so the information-theoretic analyses of
// internal/channel and internal/infotheory apply directly.
//
// Implemented protocols: k-ary randomized response (generalized Warner),
// optimized unary encoding (OUE, Wang et al. 2017), and a frequency
// oracle with unbiased debiasing on top of either.
package localdp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrBadConfig is returned for invalid protocol parameters.
var ErrBadConfig = errors.New("localdp: invalid configuration")

// KRR is k-ary randomized response: a record v ∈ {0..K−1} is reported
// truthfully with probability e^ε/(e^ε + K − 1) and otherwise replaced by
// a uniformly random other value. Each report is ε-LDP.
type KRR struct {
	// K is the domain size.
	K int
	// Epsilon is the per-record privacy level.
	Epsilon float64
}

// NewKRR validates the configuration.
func NewKRR(k int, epsilon float64) (*KRR, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: K must be at least 2", ErrBadConfig)
	}
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("%w: epsilon must be positive", ErrBadConfig)
	}
	return &KRR{K: k, Epsilon: epsilon}, nil
}

// TruthProbability returns p = e^ε / (e^ε + K − 1).
func (m *KRR) TruthProbability() float64 {
	e := math.Exp(m.Epsilon)
	return e / (e + float64(m.K) - 1)
}

// Perturb randomizes one record.
func (m *KRR) Perturb(v int, g *rng.RNG) int {
	if v < 0 || v >= m.K {
		panic("localdp: KRR value out of domain")
	}
	if g.Bernoulli(m.TruthProbability()) {
		return v
	}
	// Uniform over the other K−1 values.
	o := g.Intn(m.K - 1)
	if o >= v {
		o++
	}
	return o
}

// Channel returns the per-record channel matrix W[i][j] = P(report j |
// value i) — the Figure-1 channel of a single individual.
func (m *KRR) Channel() [][]float64 {
	p := m.TruthProbability()
	q := (1 - p) / float64(m.K-1)
	w := make([][]float64, m.K)
	for i := range w {
		w[i] = make([]float64, m.K)
		for j := range w[i] {
			if i == j {
				w[i][j] = p
			} else {
				w[i][j] = q
			}
		}
	}
	return w
}

// EstimateFrequencies debiases a histogram of perturbed reports into an
// unbiased estimate of the true value frequencies:
// f̂(v) = (c(v)/n − q) / (p − q), clamped to [0, 1] and renormalized.
func (m *KRR) EstimateFrequencies(reports []int) ([]float64, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("%w: no reports", ErrBadConfig)
	}
	counts := make([]float64, m.K)
	for _, r := range reports {
		if r < 0 || r >= m.K {
			return nil, fmt.Errorf("%w: report %d out of domain", ErrBadConfig, r)
		}
		counts[r]++
	}
	n := float64(len(reports))
	p := m.TruthProbability()
	q := (1 - p) / float64(m.K-1)
	est := make([]float64, m.K)
	var total float64
	for v := range est {
		e := (counts[v]/n - q) / (p - q)
		if e < 0 {
			e = 0
		}
		est[v] = e
		total += e
	}
	if total > 0 {
		for v := range est {
			est[v] /= total
		}
	}
	return est, nil
}

// Guarantee returns the per-record ε.
func (m *KRR) Guarantee() float64 { return m.Epsilon }

// OUE is optimized unary encoding (Wang et al. 2017): each record is
// one-hot encoded over the domain and every bit is perturbed
// independently — the set bit kept with probability 1/2, unset bits
// flipped on with probability 1/(e^ε + 1). Each report is ε-LDP, and OUE
// has lower estimation variance than KRR for large domains.
type OUE struct {
	// K is the domain size.
	K int
	// Epsilon is the per-record privacy level.
	Epsilon float64
}

// NewOUE validates the configuration.
func NewOUE(k int, epsilon float64) (*OUE, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: K must be at least 2", ErrBadConfig)
	}
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return nil, fmt.Errorf("%w: epsilon must be positive", ErrBadConfig)
	}
	return &OUE{K: k, Epsilon: epsilon}, nil
}

// FlipOnProbability returns q = 1/(e^ε + 1).
func (m *OUE) FlipOnProbability() float64 {
	return 1 / (math.Exp(m.Epsilon) + 1)
}

// Perturb encodes and randomizes one record into a bit vector.
func (m *OUE) Perturb(v int, g *rng.RNG) []bool {
	if v < 0 || v >= m.K {
		panic("localdp: OUE value out of domain")
	}
	q := m.FlipOnProbability()
	out := make([]bool, m.K)
	for b := range out {
		if b == v {
			out[b] = g.Bernoulli(0.5)
		} else {
			out[b] = g.Bernoulli(q)
		}
	}
	return out
}

// EstimateFrequencies debiases per-bit counts into frequency estimates:
// f̂(v) = (c(v)/n − q) / (1/2 − q), clamped and renormalized.
func (m *OUE) EstimateFrequencies(reports [][]bool) ([]float64, error) {
	if len(reports) == 0 {
		return nil, fmt.Errorf("%w: no reports", ErrBadConfig)
	}
	counts := make([]float64, m.K)
	for _, r := range reports {
		if len(r) != m.K {
			return nil, fmt.Errorf("%w: report width %d != %d", ErrBadConfig, len(r), m.K)
		}
		for b, set := range r {
			if set {
				counts[b]++
			}
		}
	}
	n := float64(len(reports))
	q := m.FlipOnProbability()
	est := make([]float64, m.K)
	var total float64
	for v := range est {
		e := (counts[v]/n - q) / (0.5 - q)
		if e < 0 {
			e = 0
		}
		est[v] = e
		total += e
	}
	if total > 0 {
		for v := range est {
			est[v] /= total
		}
	}
	return est, nil
}

// Guarantee returns the per-record ε.
func (m *OUE) Guarantee() float64 { return m.Epsilon }

// KRRVariance returns the per-value estimation variance of the KRR
// frequency oracle at true frequency f and n reports (Wang et al., eq. 5):
//
//	Var = [ q(1−q) + f·(p−q)(1−p−q) ] / (n·(p−q)²)
func KRRVariance(k int, epsilon, f float64, n int) float64 {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return math.NaN()
	}
	e := math.Exp(epsilon)
	p := e / (e + float64(k) - 1)
	q := (1 - p) / float64(k-1)
	return (q*(1-q) + f*(p-q)*(1-p-q)) / (float64(n) * (p - q) * (p - q))
}

// OUEVariance returns the per-value estimation variance of the OUE
// frequency oracle (Wang et al., eq. 8 with p = 1/2):
//
//	Var = [ q(1−q) + f·(1/2−q)(1/2+q−...) ] ≈ 4e^ε/(n(e^ε−1)²) for small f.
func OUEVariance(epsilon, f float64, n int) float64 {
	if epsilon <= 0 || math.IsNaN(epsilon) {
		return math.NaN()
	}
	q := 1 / (math.Exp(epsilon) + 1)
	p := 0.5
	return (q*(1-q) + f*(p-q)*(1-p-q)) / (float64(n) * (p - q) * (p - q))
}
